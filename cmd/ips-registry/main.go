// Command ips-registry runs the standalone service-discovery daemon (the
// Consul stand-in, §III) that multi-process deployments share: ipsd
// instances register and heartbeat against it; clients watch it for the
// live instance list.
//
//	ips-registry -addr :8500
//	ipsd         -addr :9500 -registry 127.0.0.1:8500 -region east
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ips/internal/discovery"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8500", "listen address")
	ttl := flag.Duration("ttl", 5*time.Second, "registration TTL; instances must heartbeat within it")
	flag.Parse()

	reg := discovery.NewRegistry(*ttl)
	srv := discovery.NewServer(reg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("ips-registry serving on %s (ttl %v)", bound, *ttl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	srv.Close()
}
