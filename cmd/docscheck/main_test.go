package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates path under root (making parents) with the given content.
func write(t *testing.T, root, path, content string) {
	t.Helper()
	full := filepath.Join(root, path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module fixture\n")
	write(t, root, "DESIGN.md", "# design\n")
	write(t, root, "docs/ops.md", "see [design](../DESIGN.md#cache) and [gone](missing.md)\n")
	write(t, root, "README.md", strings.Join([]string{
		"[ok](DESIGN.md)",
		"[ext](https://example.com/x.md)",
		"[anchor](#usage)",
		"[mail](mailto:a@b.c)",
		"![img](missing.png)",
	}, "\n"))

	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"README.md:5: broken link: missing.png",
		filepath.Join("docs", "ops.md") + ":1: broken link: missing.md",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"DESIGN.md does not resolve", "example.com", "#usage", "mailto"} {
		if strings.Contains(joined, reject) {
			t.Errorf("false positive %q in:\n%s", reject, joined)
		}
	}
}

func TestPackageComments(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module fixture\n")
	write(t, root, "internal/good/good.go", "// Package good is documented.\npackage good\n")
	write(t, root, "internal/bad/bad.go", "package bad\n")
	// A doc comment on any file in the package counts.
	write(t, root, "internal/split/a.go", "package split\n")
	write(t, root, "internal/split/b.go", "// Package split is documented elsewhere.\npackage split\n")
	// Test files and testdata fixtures are exempt.
	write(t, root, "internal/good/good_test.go", "package good\n")
	write(t, root, "internal/good/testdata/fix.go", "package fix\n")

	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	if want := "package bad has no package comment"; !strings.Contains(joined, want) {
		t.Errorf("missing finding %q in:\n%s", want, joined)
	}
	for _, reject := range []string{"good", "split", "fix"} {
		if strings.Contains(joined, "package "+reject+" has no") {
			t.Errorf("false positive on package %s in:\n%s", reject, joined)
		}
	}
}

// TestRepoClean runs docscheck against the real repository: the tree this
// test ships in must itself pass both checks.
func TestRepoClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		t.Errorf("repository has %d docs finding(s):\n%s", len(findings), strings.Join(findings, "\n"))
	}
}
