package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates path under root (making parents) with the given content.
func write(t *testing.T, root, path, content string) {
	t.Helper()
	full := filepath.Join(root, path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module fixture\n")
	write(t, root, "DESIGN.md", "# design\n")
	write(t, root, "docs/ops.md", "see [design](../DESIGN.md#cache) and [gone](missing.md)\n")
	write(t, root, "README.md", strings.Join([]string{
		"[ok](DESIGN.md)",
		"[ext](https://example.com/x.md)",
		"[anchor](#usage)",
		"[mail](mailto:a@b.c)",
		"![img](missing.png)",
	}, "\n"))

	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"README.md:5: broken link: missing.png",
		filepath.Join("docs", "ops.md") + ":1: broken link: missing.md",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"DESIGN.md does not resolve", "example.com", "#usage", "mailto"} {
		if strings.Contains(joined, reject) {
			t.Errorf("false positive %q in:\n%s", reject, joined)
		}
	}
}

func TestPackageComments(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module fixture\n")
	write(t, root, "internal/good/good.go", "// Package good is documented.\npackage good\n")
	write(t, root, "internal/bad/bad.go", "package bad\n")
	// A doc comment on any file in the package counts.
	write(t, root, "internal/split/a.go", "package split\n")
	write(t, root, "internal/split/b.go", "// Package split is documented elsewhere.\npackage split\n")
	// Test files and testdata fixtures are exempt.
	write(t, root, "internal/good/good_test.go", "package good\n")
	write(t, root, "internal/good/testdata/fix.go", "package fix\n")

	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	if want := "package bad has no package comment"; !strings.Contains(joined, want) {
		t.Errorf("missing finding %q in:\n%s", want, joined)
	}
	for _, reject := range []string{"good", "split", "fix"} {
		if strings.Contains(joined, "package "+reject+" has no") {
			t.Errorf("false positive on package %s in:\n%s", reject, joined)
		}
	}
}

func TestExportedDocs(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module fixture\n")
	// internal/sub is on the strict list: every exported symbol needs a
	// doc comment. Grouped declarations are covered by the group doc;
	// unexported symbols and test files are exempt.
	write(t, root, "internal/sub/sub.go", strings.Join([]string{
		"// Package sub is the fixture strict package.",
		"package sub",
		"",
		"// Documented is fine.",
		"type Documented struct{}",
		"",
		"type Naked struct{}",
		"",
		"// Limits bound the fixture. The group doc covers both.",
		"const (",
		"\tMaxA = 1",
		"\tMaxB = 2",
		")",
		"",
		"var Bare = 3",
		"",
		"func Undoc() {}",
		"",
		"// Doc'd method below is fine; the naked one is not.",
		"func (Documented) Fine() {}",
		"",
		"func (Documented) Sloppy() {}",
		"",
		"func private() {}",
		"",
		"var _ = private",
	}, "\n")+"\n")
	write(t, root, "internal/sub/sub_test.go", "package sub\n\nfunc TestOnlyHelper() {}\n")
	// Packages off the strict list are untouched by this check.
	write(t, root, "internal/loose/loose.go", "// Package loose is documented.\npackage loose\n\nfunc Undoc() {}\n")

	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"internal/sub/sub.go:7: exported type Naked has no doc comment",
		"internal/sub/sub.go:15: exported const/var Bare has no doc comment",
		"internal/sub/sub.go:17: exported function Undoc has no doc comment",
		"internal/sub/sub.go:22: exported method Sloppy has no doc comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"Documented", "MaxA", "MaxB", "Fine", "private", "TestOnlyHelper", "loose"} {
		if strings.Contains(joined, reject) {
			t.Errorf("false positive %q in:\n%s", reject, joined)
		}
	}
}

// TestRepoClean runs docscheck against the real repository: the tree this
// test ships in must itself pass both checks.
func TestRepoClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		t.Errorf("repository has %d docs finding(s):\n%s", len(findings), strings.Join(findings, "\n"))
	}
}
