// Command docscheck keeps the repository's documentation honest: it
// validates that every intra-repository markdown link resolves to a real
// file, that every Go package carries a package comment, and that every
// exported symbol in the strict-listed packages (strictDocDirs) carries
// a doc comment. It runs in CI alongside ipslint so docs rot — a renamed
// file breaking README links, a new package without a doc sentence, an
// undocumented export in a strict package — fails the build instead of
// waiting for a reader to trip over it.
//
// Usage:
//
//	go run ./cmd/docscheck [root]
//
// root defaults to the working directory's module root (located by
// walking up to go.mod). Findings print as file:line: message; the exit
// status is 1 if any finding survives, 2 on usage errors. Stdlib only.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := ""
	if len(os.Args) > 1 {
		root = os.Args[1]
	} else {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}
	findings, err := run(root)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "docscheck:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// run executes all checks and returns sorted findings, one per line,
// formatted file:line: message with paths relative to root.
func run(root string) ([]string, error) {
	var findings []string
	mdFindings, err := checkMarkdownLinks(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, mdFindings...)
	pkgFindings, err := checkPackageComments(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, pkgFindings...)
	expFindings, err := checkExportedDocs(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, expFindings...)
	sort.Strings(findings)
	return findings, nil
}

// skipDir names directories never scanned: VCS state, editor state, and
// vendored trees the repo does not own.
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || name == "vendor" || name == "node_modules"
}

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Angle-bracketed targets (<...>) are unwrapped later.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// checkMarkdownLinks validates every relative link target in every .md
// file under root. External schemes and pure anchors are skipped; a
// target with an anchor suffix is checked for the file part only.
func checkMarkdownLinks(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := strings.Trim(m[1], "<>")
				if bad := badLink(filepath.Dir(path), target); bad != "" {
					findings = append(findings, fmt.Sprintf("%s:%d: %s", rel, i+1, bad))
				}
			}
		}
		return nil
	})
	return findings, err
}

// badLink reports why target (relative to dir) is broken, or "" if it is
// fine or out of scope (external URL, anchor, template placeholder).
func badLink(dir, target string) string {
	switch {
	case target == "",
		strings.Contains(target, "://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"):
		return ""
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
		if target == "" {
			return ""
		}
	}
	if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
		return fmt.Sprintf("broken link: %s does not resolve", target)
	}
	return ""
}

// checkPackageComments requires every non-test package under root to
// carry a package comment on at least one of its files.
func checkPackageComments(root string) ([]string, error) {
	// Collect package directories: any directory with a non-test .go file.
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			// Analyzer fixtures are deliberately minimal packages; holding
			// them to doc standards would force comments into test vectors.
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		dirs[dir] = append(dirs[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var findings []string
	fset := token.NewFileSet()
	for dir, files := range dirs {
		documented := false
		pkgName := ""
		sort.Strings(files)
		for _, f := range files {
			// PackageClauseOnly keeps the scan fast; ParseComments retains
			// the doc comment attached to the clause.
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkgName = af.Name.Name
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			rel, _ := filepath.Rel(root, dir)
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", rel, pkgName))
		}
	}
	return findings, nil
}

// strictDocDirs lists package directories (slash-relative to root) held
// to the stricter documentation standard: every exported top-level
// symbol — funcs, methods, types, and const/var declarations — must
// carry a doc comment. New packages go on this list when they land;
// older packages join as they are brought up to it. (A repo-wide rule
// would be the end state, but grandfathering via an explicit list keeps
// the check enforceable from day one.)
var strictDocDirs = map[string]bool{
	"internal/sub": true,
}

// checkExportedDocs requires a doc comment on every exported top-level
// declaration in the strict-listed packages. A doc comment on a grouped
// declaration (`// Limits ... const (...)`) covers the whole group.
func checkExportedDocs(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	for dir := range strictDocDirs {
		entries, err := os.ReadDir(filepath.Join(root, filepath.FromSlash(dir)))
		if os.IsNotExist(err) {
			continue // fixture roots don't carry every strict package
		}
		if err != nil {
			return nil, fmt.Errorf("strict doc dir %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(root, filepath.FromSlash(dir), name)
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			rel := dir + "/" + name
			for _, d := range af.Decls {
				findings = append(findings, undocumentedExports(fset, rel, d)...)
			}
		}
	}
	return findings, nil
}

// undocumentedExports reports the exported symbols of one top-level
// declaration that lack a doc comment.
func undocumentedExports(fset *token.FileSet, rel string, d ast.Decl) []string {
	var findings []string
	finding := func(pos token.Pos, kind, name string) {
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			rel, fset.Position(pos).Line, kind, name))
	}
	switch d := d.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			finding(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil // a group doc covers every spec in the block
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					finding(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						finding(s.Pos(), "const/var", n.Name)
						break
					}
				}
			}
		}
	}
	return findings
}
