// Command ipsd runs one IPS server instance: it creates the configured
// tables, binds the RPC service, and (optionally) registers with an
// in-process discovery registry served for local experimentation. In the
// multi-process layout each ipsd serves a fraction of the key space behind
// consistent-hash routing in the clients.
//
//	ipsd -addr :9500 -tables user_profile:like,comment,share -data /var/lib/ips/kv.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ips/internal/config"
	"ips/internal/discovery"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/server"
	"ips/internal/trace"
	"ips/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9500", "listen address for the RPC service")
	name := flag.String("name", "ips-0", "instance name")
	region := flag.String("region", "local", "data-center region")
	dataPath := flag.String("data", "", "path to the disk-backed KV log (empty = in-memory)")
	journalPath := flag.String("journal", "", "path to the write-ahead mutation journal; acknowledged writes survive a crash and replay on restart (empty = journaling off)")
	journalSync := flag.Int("journal-sync", 0, "fsync the journal every N records (0 = flush without fsync)")
	tables := flag.String("tables", "user_profile:like,comment,share",
		"semicolon-separated table specs, each name:action1,action2,...")
	quota := flag.Float64("default-quota", 0, "default per-caller QPS quota (0 = unlimited)")
	isolation := flag.Bool("write-isolation", true, "enable read-write isolation (§III-F)")
	registry := flag.String("registry", "", "address of an ips-registry daemon to register with (empty = standalone)")
	advertise := flag.String("advertise", "", "address to advertise in the registry (default: the bound listen address)")
	heartbeat := flag.Duration("heartbeat", time.Second, "registry heartbeat interval")
	traceSample := flag.Int("trace-sample", 0, "trace one request in N for per-stage latency attribution (0 = tracing off)")
	traceSlow := flag.Duration("trace-slow", 0, "retain sampled traces at least this slow in the slow-query log (0 = slow log off)")
	debugAddr := flag.String("debug", "", "listen address for the plain-text debug endpoint (empty = off; query with ips-cli debug)")
	hotSlots := flag.Int("hot-slots", 0, "replicated read slots per hot profile; Zipf-head reads are served lock-free from immutable replicas (0 = off)")
	hotPromoteAfter := flag.Int("hot-promote-after", 0, "decayed read count that promotes a profile into hot slots (0 = gcache default)")
	memLimit := flag.Int64("mem-limit", 0, "decoded-tier cache budget in bytes; eviction demotes over-budget profiles hot -> warm -> KV (0 = unbounded)")
	warmLimit := flag.Int64("warm-limit", 0, "warm-tier budget in bytes for snap-compressed demoted profiles served without a KV round trip (0 = warm tier off)")
	subQueue := flag.Int("sub-queue", 0, "per-subscriber update queue length for continuous queries; a full queue drops and schedules a resync (0 = default 64)")
	subResync := flag.Duration("sub-resync", 0, "resync sweep interval recovering slow subscribers and failed standing-query evaluations (0 = default 250ms)")
	flag.Parse()

	var store kv.Store
	var err error
	if *dataPath != "" {
		store, err = kv.OpenDisk(*dataPath)
		if err != nil {
			log.Fatalf("open data file: %v", err)
		}
	} else {
		store = kv.NewMemory()
	}

	cfg := config.Default()
	cfg.WriteIsolation = *isolation
	cfgStore, err := config.NewStore(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var journal *wal.Journal
	if *journalPath != "" {
		journal, err = wal.Open(*journalPath, wal.Options{SyncEvery: *journalSync})
		if err != nil {
			log.Fatalf("open journal: %v", err)
		}
		log.Printf("mutation journal at %s (%d records pending replay)", *journalPath, journal.Stats().Records)
	}

	var tracer *trace.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = trace.NewTracer(trace.Config{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
		log.Printf("request tracing on: sampling 1/%d, slow threshold %v", *traceSample, *traceSlow)
	}

	inst, err := server.New(server.Options{
		Name:            *name,
		Region:          *region,
		Store:           store,
		Config:          cfgStore,
		DefaultQuotaQPS: *quota,
		Journal:         journal,
		Tracer:          tracer,
		SubQueue:        *subQueue,
		SubResync:       *subResync,
		Cache: gcache.Options{
			HotSlots:        *hotSlots,
			HotPromoteAfter: *hotPromoteAfter,
			MemLimit:        *memLimit,
			WarmLimit:       *warmLimit,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, spec := range strings.Split(*tables, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad table spec %q (want name:action1,action2)", spec)
		}
		actions := strings.Split(parts[1], ",")
		if err := inst.CreateTable(parts[0], model.NewSchema(actions...)); err != nil {
			log.Fatalf("create table %s: %v", parts[0], err)
		}
		log.Printf("table %q ready with actions %v", parts[0], actions)
	}

	svc := server.NewService(inst)
	bound, err := svc.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("%s (%s) serving IPS on %s", *name, *region, bound)

	dbg := server.NewDebugServer(inst)
	if *debugAddr != "" {
		dbgBound, err := dbg.Listen(*debugAddr)
		if err != nil {
			log.Fatalf("debug listen: %v", err)
		}
		log.Printf("debug endpoint on %s (ips-cli debug -addr %s)", dbgBound, dbgBound)
	}

	// Register with the shared discovery daemon so clients find this
	// instance (the paper's Consul integration, §III).
	var hb *discovery.Heartbeater
	if *registry != "" {
		announce := *advertise
		if announce == "" {
			announce = bound
		}
		rr := discovery.Dial(*registry)
		defer rr.Close()
		hb = discovery.StartHeartbeat(rr, discovery.Instance{
			Service: "ips", Addr: announce, Region: *region,
		}, *heartbeat)
		log.Printf("registered %s with registry %s", announce, *registry)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println()
	log.Print("shutting down: merging writes and flushing dirty profiles")
	if hb != nil {
		hb.Stop()
	}
	if err := dbg.Close(); err != nil {
		log.Printf("debug close: %v", err)
	}
	// Final latency attribution to stdout, so a traced run leaves its
	// per-stage breakdown in the logs even if nobody polled the endpoint.
	if tracer != nil {
		fmt.Println("--- final trace snapshot ---")
		_ = dbg.WriteSnapshot(os.Stdout, "all")
	}
	if err := svc.Close(); err != nil {
		log.Printf("service close: %v", err)
	}
	if err := inst.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
	log.Print("bye")
}
