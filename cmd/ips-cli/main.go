// Command ips-cli is a small operational client for a running ipsd: it
// issues writes, top-K / filter / decay queries and stats requests over
// the RPC protocol.
//
//	ips-cli -addr 127.0.0.1:9500 add -table user_profile -profile 42 -slot 1 -type 2 -fid 1001 -counts 1,0,0
//	ips-cli -addr 127.0.0.1:9500 topk -table user_profile -profile 42 -slot 1 -type 2 -window 240h -action like -k 5
//	ips-cli -addr 127.0.0.1:9500 stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"ips/internal/client"
	"ips/internal/discovery"
	"ips/internal/query"
	"ips/internal/rpc"
	"ips/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9500", "ipsd address (direct mode)")
	registry := flag.String("registry", "", "ips-registry address: route through the unified client instead of one ipsd")
	region := flag.String("region", "local", "local region for registry-routed reads")
	caller := flag.String("caller", "ips-cli", "caller identity for quota accounting")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)

	if *registry != "" {
		runViaRegistry(*registry, *region, *caller, cmd, flag.Args()[1:])
		return
	}

	c := rpc.NewClient(*addr)
	c.CallTimeout = 5 * time.Second
	defer c.Close()

	switch cmd {
	case "ping":
		resp, err := c.Call(wire.MethodPing, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(resp))
	case "add":
		runAdd(c, *caller, flag.Args()[1:])
	case "topk", "filter", "decay":
		runQuery(c, *caller, cmd, flag.Args()[1:])
	case "watch":
		runWatch(c, *caller, flag.Args()[1:])
	case "stats":
		raw, err := c.Call(wire.MethodStats, nil)
		if err != nil {
			log.Fatal(err)
		}
		st, err := wire.DecodeStats(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("instance: %s region: %s\n", st.Name, st.Region)
		fmt.Printf("profiles: %d  memory: %d bytes  hit ratio: %.1f%%\n", st.Profiles, st.MemUsage, st.HitRatioPct)
		fmt.Printf("queries: %d  writes: %d  rejected: %d  flush errors: %d\n",
			st.Queries, st.Writes, st.Rejected, st.FlushErrors)
	case "debug":
		runDebug(*addr, flag.Args()[1:])
	case "delete":
		runDelete(c, flag.Args()[1:])
	case "set-quota":
		runSetQuota(c, flag.Args()[1:])
	case "set-isolation":
		runSetIsolation(c, flag.Args()[1:])
	case "register-udaf":
		runRegisterUDAF(c, flag.Args()[1:])
	case "tables", "udafs":
		method := wire.MethodListTables
		if cmd == "udafs" {
			method = wire.MethodListUDAFs
		}
		raw, err := c.Call(method, nil)
		if err != nil {
			log.Fatal(err)
		}
		list, err := wire.DecodeStringList(raw)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range list.Names {
			fmt.Println(n)
		}
	default:
		usage()
	}
}

// watchFlags parses the shared watch flags: the pipeline program and an
// optional update cap.
func watchFlags(args []string) (pipeline string, n int) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	p := fs.String("pipeline", "", "pipeline program, e.g. 'source(user_profile, 42, 99) | slot(1) | decay(exp, 0.5) | topk(10)'")
	cap := fs.Int("n", 0, "exit after N updates (0 = run until interrupted)")
	_ = fs.Parse(args)
	if *p == "" {
		log.Fatal("watch needs -pipeline")
	}
	return *p, *cap
}

func printUpdate(u *wire.SubUpdate) {
	mark := " "
	if u.Resync {
		mark = "R" // full-state resync: replace everything held for this profile
	}
	fmt.Printf("[%s] profile=%d seq=%d %d features\n", mark, u.ProfileID, u.Seq, len(u.Result.Features))
	for _, f := range u.Result.Features {
		fmt.Printf("    fid=%-12d counts=%v\n", f.FID, f.Counts)
	}
}

// runWatch (direct mode) registers one standing query on a single ipsd
// and prints every pushed update. Direct mode has no resubscribe logic:
// the stream lives and dies with the one connection, which is exactly
// what you want when debugging a specific instance. Registry mode (see
// runViaRegistry) rides the unified client's transparent resubscribe.
func runWatch(c *rpc.Client, caller string, args []string) {
	pipeline, n := watchFlags(args)
	st, err := c.Stream(context.Background(), wire.MethodSubWatch,
		wire.EncodeSubscribe(&wire.SubscribeRequest{Caller: caller, Pipeline: pipeline}))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	for i := 0; n == 0 || i < n; i++ {
		raw, err := st.Recv(context.Background())
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		u, err := wire.DecodeSubUpdate(raw)
		if err != nil {
			log.Fatal(err)
		}
		printUpdate(u)
	}
}

// runDebug speaks the one-command-per-connection debug protocol: dial,
// send the command line, print until the server hangs up. The global
// -addr must point at ipsd's -debug endpoint, not its RPC port.
func runDebug(addr string, args []string) {
	fs := flag.NewFlagSet("debug", flag.ExitOnError)
	cmd := fs.String("cmd", "all", "debug command: help, stats, stages, slow, trace or all")
	_ = fs.Parse(args)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		log.Fatalf("dial debug endpoint %s: %v (is ipsd running with -debug?)", addr, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\n", *cmd); err != nil {
		log.Fatal(err)
	}
	if _, err := io.Copy(os.Stdout, conn); err != nil {
		log.Fatal(err)
	}
}

func runDelete(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	table := fs.String("table", "user_profile", "table name")
	profile := fs.Uint64("profile", 0, "profile ID")
	_ = fs.Parse(args)
	req := &wire.DeleteProfileRequest{Table: *table, ProfileID: *profile}
	if _, err := c.Call(wire.MethodDeleteProfile, wire.EncodeDeleteProfile(req)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deleted")
}

func runSetQuota(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("set-quota", flag.ExitOnError)
	who := fs.String("for", "", "caller identity the quota applies to")
	qps := fs.Float64("qps", 0, "QPS quota (0 removes it)")
	_ = fs.Parse(args)
	req := &wire.SetQuotaRequest{Caller: *who, QPS: *qps}
	if _, err := c.Call(wire.MethodSetQuota, wire.EncodeSetQuota(req)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}

func runSetIsolation(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("set-isolation", flag.ExitOnError)
	on := fs.Bool("on", true, "enable (true) or disable (false) write isolation")
	_ = fs.Parse(args)
	req := &wire.SetIsolationRequest{Enabled: *on}
	if _, err := c.Call(wire.MethodSetIsolation, wire.EncodeSetIsolation(req)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}

func runRegisterUDAF(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("register-udaf", flag.ExitOnError)
	name := fs.String("name", "", "UDAF name")
	weights := fs.String("weights", "", "comma-separated per-action weights")
	_ = fs.Parse(args)
	var ws []float64
	for _, s := range strings.Split(*weights, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			log.Fatalf("bad weight %q: %v", s, err)
		}
		ws = append(ws, v)
	}
	req := &wire.RegisterUDAFRequest{Name: *name, Weights: ws}
	if _, err := c.Call(wire.MethodRegisterUDAF, wire.EncodeRegisterUDAF(req)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}

// runViaRegistry executes add/topk/filter/decay through the unified
// client: instances are discovered from the registry daemon and each
// profile ID routes to its owner by consistent hashing, exactly like a
// production upstream (§III).
func runViaRegistry(registryAddr, region, caller, cmd string, args []string) {
	rr := discovery.Dial(registryAddr)
	defer rr.Close()
	c, err := client.New(client.Options{
		Caller:          caller,
		Service:         "ips",
		Region:          region,
		Registry:        rr,
		RefreshInterval: 200 * time.Millisecond,
		CallTimeout:     5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	// Give the first discovery poll a beat.
	c.RefreshNow()

	switch cmd {
	case "add":
		fs := flag.NewFlagSet("add", flag.ExitOnError)
		table := fs.String("table", "user_profile", "table name")
		profile := fs.Uint64("profile", 0, "profile ID")
		slot := fs.Uint("slot", 0, "slot ID")
		typ := fs.Uint("type", 0, "type ID")
		fid := fs.Uint64("fid", 0, "feature ID")
		counts := fs.String("counts", "1", "comma-separated action counts")
		ts := fs.Int64("ts", 0, "event timestamp in unix millis (0 = now)")
		_ = fs.Parse(args)
		when := *ts
		if when == 0 {
			when = time.Now().UnixMilli()
		}
		var cs []int64
		for _, s := range strings.Split(*counts, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				log.Fatalf("bad count %q: %v", s, err)
			}
			cs = append(cs, v)
		}
		err := c.Add(*table, *profile, wire.AddEntry{
			Timestamp: when, Slot: uint32(*slot), Type: uint32(*typ), FID: *fid, Counts: cs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")
	case "topk", "filter", "decay":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		table := fs.String("table", "user_profile", "table name")
		profile := fs.Uint64("profile", 0, "profile ID")
		slot := fs.Uint("slot", 0, "slot ID")
		typ := fs.Uint("type", 0, "type ID")
		window := fs.Duration("window", time.Hour, "CURRENT window length")
		action := fs.String("action", "", "action name to sort by")
		k := fs.Int("k", 10, "top K")
		_ = fs.Parse(args)
		req := &wire.QueryRequest{
			Table: *table, ProfileID: *profile,
			Slot: uint32(*slot), Type: uint32(*typ),
			RangeKind: query.Current, Span: window.Milliseconds(),
			SortBy: query.ByAction, Action: *action, K: *k,
		}
		var resp *wire.QueryResponse
		var err error
		switch cmd {
		case "filter":
			resp, err = c.Filter(req)
		case "decay":
			req.Decay, req.DecayFactor = query.DecayExp, 0.8
			resp, err = c.Decay(req)
		default:
			resp, err = c.TopK(req)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d features (%d slices scanned)\n", len(resp.Features), resp.SlicesScanned)
		for _, f := range resp.Features {
			fmt.Printf("  fid=%-12d counts=%v\n", f.FID, f.Counts)
		}
	case "batch":
		fs := flag.NewFlagSet("batch", flag.ExitOnError)
		table := fs.String("table", "user_profile", "table name")
		profiles := fs.String("profiles", "", "comma-separated profile IDs, one sub-query each")
		op := fs.String("op", "topk", "sub-query op: topk, filter or decay")
		slot := fs.Uint("slot", 0, "slot ID")
		typ := fs.Uint("type", 0, "type ID")
		window := fs.Duration("window", time.Hour, "CURRENT window length")
		action := fs.String("action", "", "action name to sort by")
		k := fs.Int("k", 10, "top K")
		minCount := fs.Int64("min-count", 0, "filter: minimum count")
		decayFactor := fs.Float64("decay-factor", 0.8, "decay factor")
		_ = fs.Parse(args)
		var subs []wire.SubQuery
		for _, s := range strings.Split(*profiles, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			id, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				log.Fatalf("bad profile ID %q: %v", s, err)
			}
			sub := wire.SubQuery{Query: wire.QueryRequest{
				Table: *table, ProfileID: id,
				Slot: uint32(*slot), Type: uint32(*typ),
				RangeKind: query.Current, Span: window.Milliseconds(),
				SortBy: query.ByAction, Action: *action, K: *k,
			}}
			switch *op {
			case "filter":
				sub.Op = wire.OpFilter
				sub.Query.MinCount = *minCount
			case "decay":
				sub.Op = wire.OpDecay
				sub.Query.Decay, sub.Query.DecayFactor = query.DecayExp, *decayFactor
			}
			subs = append(subs, sub)
		}
		if len(subs) == 0 {
			log.Fatal("batch needs -profiles")
		}
		resps, err := c.QueryBatch(subs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		}
		fmt.Printf("%d sub-queries, fan-out %d shard RPCs\n", len(subs), c.BatchFanOut.Value())
		served := 0
		for i, resp := range resps {
			if resp == nil {
				fmt.Printf("  profile=%-12d FAILED\n", subs[i].Query.ProfileID)
				continue
			}
			served++
			fmt.Printf("  profile=%-12d %d features (%d slices scanned)\n",
				subs[i].Query.ProfileID, len(resp.Features), resp.SlicesScanned)
		}
		if served == 0 {
			os.Exit(1)
		}
	case "watch":
		pipeline, n := watchFlags(args)
		s, err := c.Subscribe(context.Background(), pipeline)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		for i := 0; n == 0 || i < n; i++ {
			u, err := s.Recv(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			printUpdate(u)
		}
	case "stats":
		stats, err := c.Stats()
		if err != nil {
			if len(stats) == 0 {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "warning: partial stats: %v\n", err)
		}
		for _, st := range stats {
			fmt.Printf("%s (%s): profiles=%d queries=%d writes=%d hit=%.1f%%\n",
				st.Name, st.Region, st.Profiles, st.Queries, st.Writes, st.HitRatioPct)
		}
		rs := c.Resilience()
		fmt.Printf("client resilience: attempts=%d primaries=%d retries=%d (denied=%d) hedges=%d (wins=%d)\n",
			rs.Attempts, rs.Primaries, rs.Retries, rs.RetriesDenied, rs.Hedges, rs.HedgeWins)
		fmt.Printf("breakers: trips=%d reopens=%d probes=%d closes=%d skips=%d\n",
			rs.BreakerTrips, rs.BreakerReOpens, rs.BreakerProbes, rs.BreakerCloses, rs.BreakerSkips)
		for addr, st := range rs.BreakerStates {
			if st != client.BreakerClosed {
				fmt.Printf("  breaker %s: %s\n", addr, st)
			}
		}
	default:
		log.Fatalf("registry mode supports add/topk/filter/decay/batch/watch/stats, not %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ips-cli [-addr host:port] <command> [flags]")
	fmt.Fprintln(os.Stderr, "commands: ping add topk filter decay batch watch stats debug delete set-quota set-isolation register-udaf tables udafs")
	fmt.Fprintln(os.Stderr, "batch (registry mode only) coalesces one sub-query per -profiles ID into per-shard RPCs")
	fmt.Fprintln(os.Stderr, "watch registers a standing pipeline query and streams pushed updates: ips-cli watch -pipeline 'source(user_profile, 42) | slot(1) | topk(5)'")
	fmt.Fprintln(os.Stderr, "debug reads ipsd's -debug endpoint: ips-cli -addr host:debugport debug -cmd stages")
	os.Exit(2)
}

func runAdd(c *rpc.Client, caller string, args []string) {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	table := fs.String("table", "user_profile", "table name")
	profile := fs.Uint64("profile", 0, "profile ID")
	slot := fs.Uint("slot", 0, "slot ID")
	typ := fs.Uint("type", 0, "type ID")
	fid := fs.Uint64("fid", 0, "feature ID")
	counts := fs.String("counts", "1", "comma-separated action counts")
	ts := fs.Int64("ts", 0, "event timestamp in unix millis (0 = now)")
	_ = fs.Parse(args)

	when := *ts
	if when == 0 {
		when = time.Now().UnixMilli()
	}
	var cs []int64
	for _, s := range strings.Split(*counts, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			log.Fatalf("bad count %q: %v", s, err)
		}
		cs = append(cs, v)
	}
	req := &wire.AddRequest{
		Caller: caller, Table: *table, ProfileID: *profile,
		Entries: []wire.AddEntry{{
			Timestamp: when, Slot: uint32(*slot), Type: uint32(*typ),
			FID: *fid, Counts: cs,
		}},
	}
	if _, err := c.Call(wire.MethodAdd, wire.EncodeAdd(req)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}

func runQuery(c *rpc.Client, caller, kind string, args []string) {
	fs := flag.NewFlagSet(kind, flag.ExitOnError)
	table := fs.String("table", "user_profile", "table name")
	profile := fs.Uint64("profile", 0, "profile ID")
	slot := fs.Uint("slot", 0, "slot ID")
	typ := fs.Uint("type", 0, "type ID")
	allTypes := fs.Bool("all-types", false, "aggregate across all types in the slot")
	window := fs.Duration("window", time.Hour, "CURRENT window length")
	action := fs.String("action", "", "action name to sort by")
	k := fs.Int("k", 10, "top K")
	minCount := fs.Int64("min-count", 0, "filter: minimum count")
	decayFactor := fs.Float64("decay-factor", 0.8, "decay factor")
	_ = fs.Parse(args)

	req := &wire.QueryRequest{
		Caller: caller, Table: *table, ProfileID: *profile,
		Slot: uint32(*slot), Type: uint32(*typ), AllTypes: *allTypes,
		RangeKind: query.Current, Span: window.Milliseconds(),
		SortBy: query.ByAction, Action: *action, K: *k,
		MinCount: *minCount,
	}
	method := wire.MethodTopK
	switch kind {
	case "filter":
		method = wire.MethodFilter
	case "decay":
		method = wire.MethodDecay
		req.Decay = query.DecayExp
		req.DecayFactor = *decayFactor
	}
	raw, err := c.Call(method, wire.EncodeQuery(req))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := wire.DecodeQueryResponse(raw)
	if err != nil {
		log.Fatal(err)
	}
	hitStr := "miss"
	if resp.CacheHit {
		hitStr = "hit"
	}
	fmt.Printf("%d features (cache %s, %d slices scanned, server %.3fms)\n",
		len(resp.Features), hitStr, resp.SlicesScanned, float64(resp.ServerNanos)/1e6)
	for _, f := range resp.Features {
		fmt.Printf("  fid=%-12d counts=%v\n", f.FID, f.Counts)
	}
}
