// Command ips-bench regenerates the paper's evaluation artifacts: every
// table and figure of §IV plus the quantified claims of §III. Run a single
// experiment with -exp, or everything with -exp all. The -full flag uses
// larger, slower parameterizations; the default runs each experiment in
// seconds.
//
//	ips-bench -exp fig16
//	ips-bench -exp all -full
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ips/internal/bench"
)

type experiment struct {
	id, desc string
	run      func(full bool) error
}

func main() {
	exp := flag.String("exp", "", "experiment id (fig16, fig17, tab2, fig18, fig19, iso80, compaction, lambda, batch, tail, recovery, trace, hotkey, migrate, tiered, alloc, sub, fig10, fig11, all)")
	full := flag.Bool("full", false, "run the larger, slower parameterization")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	experiments := []experiment{
		{"fig16", "query throughput + p50/p99 under diurnal traffic", func(full bool) error {
			o := bench.Fig16Options{}
			if !full {
				o = bench.Fig16Options{Hours: 12, PeakQueriesPerHour: 1500, Profiles: 800, WritesPerProfile: 40}
			}
			_, err := bench.RunFig16(o, os.Stdout)
			return err
		}},
		{"fig17", "client-side error rate over days of injected failures", func(full bool) error {
			o := bench.Fig17Options{}
			if !full {
				o = bench.Fig17Options{Days: 5, RequestsPerDay: 800}
			}
			_, err := bench.RunFig17(o, os.Stdout)
			return err
		}},
		{"tab2", "client/server query latency by cache hit/miss", func(full bool) error {
			o := bench.Tab2Options{}
			if full {
				o.Queries = 3000
			}
			_, err := bench.RunTab2(o, os.Stdout)
			return err
		}},
		{"fig18", "cache hit ratio and memory usage", func(full bool) error {
			o := bench.Fig18Options{}
			if !full {
				o = bench.Fig18Options{Ticks: 20, RequestsPerTick: 2000, Profiles: 8000, MemLimit: 512 << 10}
			}
			_, err := bench.RunFig18(o, os.Stdout)
			return err
		}},
		{"fig19", "add throughput + p50/p99 under diurnal traffic", func(full bool) error {
			o := bench.Fig19Options{}
			if !full {
				o = bench.Fig19Options{Hours: 12, PeakWritesPerHour: 800, Profiles: 500}
			}
			_, err := bench.RunFig19(o, os.Stdout)
			return err
		}},
		{"iso80", "read-write isolation ablation (write p99 cut)", func(full bool) error {
			o := bench.Iso80Options{}
			if full {
				o.Requests = 60_000
			}
			_, err := bench.RunIso80(o, os.Stdout)
			return err
		}},
		{"compaction", "compact/truncate/shrink footprint vs raw growth", func(full bool) error {
			o := bench.CompactionOptions{}
			if !full {
				o = bench.CompactionOptions{Weeks: 16, EventsPerDay: 96, ActiveDaysPerWeek: 4}
			}
			_, err := bench.RunCompaction(o, os.Stdout)
			return err
		}},
		{"lambda", "baseline: legacy Lambda profile services vs IPS (§I)", func(full bool) error {
			o := bench.LambdaOptions{}
			if !full {
				o = bench.LambdaOptions{Users: 80, Days: 10, ClicksPerUserPerDay: 20}
			}
			_, err := bench.RunLambda(o, os.Stdout)
			return err
		}},
		{"batch", "batched multi-profile query vs sequential singles", func(full bool) error {
			o := bench.BatchOptions{}
			if full {
				o = bench.BatchOptions{BatchSize: 64, Rounds: 200, Profiles: 2000, Instances: 4}
			}
			_, err := bench.RunBatchVsSingle(o, os.Stdout)
			return err
		}},
		{"tail", "tail latency with one stalled replica: baseline vs hedged", func(full bool) error {
			o := bench.TailOptions{}
			if !full {
				o = bench.TailOptions{Requests: 600, Profiles: 120}
			}
			_, err := bench.RunTailLatency(o, os.Stdout)
			return err
		}},
		{"recovery", "journal write amplification on Add + recovery time vs dirty-set size", func(full bool) error {
			o := bench.RecoveryOptions{}
			if !full {
				o = bench.RecoveryOptions{Profiles: 100, AddsPerProfile: 20, DirtySweep: []int{100, 400, 1000}}
			}
			_, err := bench.RunRecovery(o, os.Stdout)
			return err
		}},
		{"trace", "request-tracing overhead: untraced vs sampled-out vs traced", func(full bool) error {
			o := bench.TraceOverheadOptions{}
			if full {
				o = bench.TraceOverheadOptions{Queries: 12_000, Profiles: 1000}
			}
			_, err := bench.RunTraceOverhead(o, os.Stdout)
			return err
		}},
		{"hotkey", "hot-key contention: single-flight, hot slots, batch v2 bytes", func(full bool) error {
			o := bench.HotkeyOptions{}
			if full {
				o = bench.HotkeyOptions{ColdKeys: 64, ReadersPerKey: 16, Readers: 12, ReadsPerReader: 5000, Profiles: 512, BatchRounds: 200}
			}
			_, err := bench.RunHotkey(o, os.Stdout)
			return err
		}},
		{"migrate", "read p99 during live resharding (join + drain) vs steady state", func(full bool) error {
			o := bench.MigrateOptions{}
			if full {
				o = bench.MigrateOptions{Instances: 4, Profiles: 1024, SteadyOps: 20000, Workers: 8}
			}
			_, err := bench.RunMigrate(o, os.Stdout)
			return err
		}},
		{"alloc", "per-stage allocs/op + ns/op of the hot read path (writes BENCH_alloc.json)", func(full bool) error {
			o := bench.AllocOptions{}
			if full {
				o.Warm = 1024
			}
			_, err := bench.RunAlloc(o, os.Stdout)
			return err
		}},
		{"tiered", "tiered cache: hit ratio vs memory per tier (hot/warm/KV)", func(full bool) error {
			o := bench.TieredOptions{}
			if !full {
				o = bench.TieredOptions{
					MemLimits: []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20},
					Profiles:  2000, Ticks: 6, RequestsPerTick: 800,
				}
			}
			_, err := bench.RunTiered(o, os.Stdout)
			return err
		}},
		{"sub", "continuous queries: push vs poll update propagation at 10k standing queries (writes BENCH_sub.json)", func(full bool) error {
			o := bench.SubscribeOptions{}
			if !full {
				o = bench.SubscribeOptions{Events: 120, ChurnPerEvent: 8}
			}
			_, err := bench.RunSubscribe(o, os.Stdout)
			return err
		}},
		{"fig10", "compaction mechanism demo (6 slices -> 3)", func(bool) error {
			_, err := bench.RunFig10(os.Stdout)
			return err
		}},
		{"fig11", "truncate-by-count mechanism demo", func(bool) error {
			_, err := bench.RunFig11(os.Stdout)
			return err
		}},
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-11s %s\n", e.id, e.desc)
		}
		fmt.Println("  all         run everything")
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	run := func(e experiment) {
		fmt.Printf("=== %s ===\n", e.id)
		start := time.Now()
		if err := e.run(*full); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments {
			run(e)
		}
		return
	}
	for _, e := range experiments {
		if e.id == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
	os.Exit(2)
}
