// Command ipslint runs the IPS invariant analyzers (internal/analysis)
// over the module and exits non-zero if any diagnostic survives.
//
// Usage:
//
//	go run ./cmd/ipslint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always loads and checks the whole module containing the working
// directory. Findings print as file:line:col: [analyzer] message, or as
// a JSON array with -json (one object per finding: file, line, col,
// analyzer, message) for editor and CI integration — the GitHub Actions
// problem matcher in .github/ipslint-matcher.json annotates PR diffs
// from the plain-text form.
// Suppress one with //ipslint:ignore <analyzer> <reason> on or above the
// offending line; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ips/internal/analysis"
)

// jsonDiag is the -json output shape, one object per finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ipslint [-list] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the IPS invariant analyzers over the enclosing module.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, _, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	diags := analysis.RunPackages(pkgs, analyzers)
	for i := range diags {
		// Print module-relative paths: stable across checkouts, and what
		// the fixture tests and CI logs key on.
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	if *asJSON {
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ipslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipslint:", err)
	os.Exit(2)
}
