// Command ipslint runs the IPS invariant analyzers (internal/analysis)
// over the module and exits non-zero if any diagnostic survives.
//
// Usage:
//
//	go run ./cmd/ipslint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always loads and checks the whole module containing the working
// directory. Findings print as file:line:col: [analyzer] message.
// Suppress one with //ipslint:ignore <analyzer> <reason> on or above the
// offending line; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ips/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ipslint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the IPS invariant analyzers over the enclosing module.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, _, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	diags := analysis.RunPackages(pkgs, analyzers)
	for _, d := range diags {
		// Print module-relative paths: stable across checkouts, and what
		// the fixture tests and CI logs key on.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ipslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipslint:", err)
	os.Exit(2)
}
