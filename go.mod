module ips

go 1.22
