// Package ips is a Go implementation of Instance Profile Service (IPS),
// the unified profile-management system for online recommendations
// described in "IPS: Unified Profile Management for Ubiquitous Online
// Recommendations" (ICDE 2021). It stores unstructured profile data as a
// time-serial list of slices embedding multi-level hash maps and computes
// features inline: multi-dimensional top-K, filtering and time-decayed
// aggregation over arbitrary time windows.
//
// The package offers two entry points:
//
//   - DB: an embedded single-node instance, the quickest way to use IPS
//     in-process (quickstart example).
//   - the Remote type (remote.go): the unified client to a distributed,
//     multi-region IPS cluster over RPC.
//
// Basic usage:
//
//	db, _ := ips.Open(ips.Options{})
//	t, _ := db.CreateTable("user_profile", "like", "comment", "share")
//	_ = t.Add(userID, ips.Entry{Timestamp: now, Slot: 1, Type: 2, FID: videoID, Counts: []int64{1, 0, 0}})
//	top, _ := t.TopK(userID, ips.Query{Window: ips.LastDays(10), SortByAction: "like", K: 5})
package ips

import (
	"errors"
	"fmt"
	"time"

	"ips/internal/config"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/server"
	"ips/internal/wal"
	"ips/internal/wire"
)

// Entry is one profile observation: at Timestamp, the feature FID in
// category (Slot, Type) received the action counts in Counts, whose width
// and meaning are fixed by the table's schema.
type Entry = wire.AddEntry

// Feature is one aggregated feature in a query result.
type Feature = query.Feature

// Window specifies the queried time range (§II-B of the paper): CURRENT
// windows end now, RELATIVE windows end at the profile's most recent
// action, ABSOLUTE windows are explicit.
type Window struct {
	kind     query.RangeKind
	span     model.Millis
	from, to model.Millis
}

// Last returns a CURRENT window covering the last d.
func Last(d time.Duration) Window {
	return Window{kind: query.Current, span: d.Milliseconds()}
}

// LastDays returns a CURRENT window covering the last n days.
func LastDays(n int) Window { return Last(time.Duration(n) * 24 * time.Hour) }

// SinceLastAction returns a RELATIVE window covering d back from the
// profile's most recent action.
func SinceLastAction(d time.Duration) Window {
	return Window{kind: query.Relative, span: d.Milliseconds()}
}

// Between returns an ABSOLUTE window [from, to).
func Between(from, to time.Time) Window {
	return Window{kind: query.Absolute, from: from.UnixMilli(), to: to.UnixMilli()}
}

// Decay selects the time-decay applied to older data in decay queries.
type Decay = query.DecayFunc

// Decay functions.
const (
	NoDecay     = query.DecayNone
	ExpDecay    = query.DecayExp
	LinearDecay = query.DecayLinear
	StepDecay   = query.DecayStep
)

// Query describes one feature read.
type Query struct {
	// Slot and Type select the feature category; AllTypes aggregates the
	// whole slot.
	Slot     model.SlotID
	Type     model.TypeID
	AllTypes bool
	// Window is required.
	Window Window
	// SortByAction orders by that action's count (descending); empty
	// sorts by the first action. SortByTime / SortByFID override.
	SortByAction string
	SortByTime   bool
	SortByFID    bool
	// K caps the result; 0 returns everything.
	K int
	// Decay and DecayFactor configure time decay.
	Decay       Decay
	DecayFactor float64
	// MinCount filters features below the bound on the sort attribute.
	MinCount int64
	// FIDs, when set, restricts results to these feature IDs.
	FIDs []model.FeatureID
	// UDAF names a registered user-defined aggregate function; results
	// carry its score and, when SortByUDAF is set, order by it.
	UDAF       string
	SortByUDAF bool
	// MinScore drops features scoring below the bound (requires UDAF).
	MinScore float64
}

func (q Query) toWire(table string, id model.ProfileID) *wire.QueryRequest {
	req := &wire.QueryRequest{
		Table: table, ProfileID: id,
		Slot: q.Slot, Type: q.Type, AllTypes: q.AllTypes,
		RangeKind: q.Window.kind, Span: q.Window.span,
		From: q.Window.from, To: q.Window.to,
		SortBy: query.ByAction, Action: q.SortByAction, K: q.K,
		Decay: q.Decay, DecayFactor: q.DecayFactor,
		MinCount: q.MinCount, FIDs: q.FIDs,
		UDAFName: q.UDAF, MinScore: q.MinScore,
	}
	if q.SortByTime {
		req.SortBy = query.ByTimestamp
	} else if q.SortByFID {
		req.SortBy = query.ByFeatureID
	} else if q.SortByUDAF {
		req.SortBy = query.ByUDAF
	}
	return req
}

// Options configures an embedded DB.
type Options struct {
	// Path, when set, persists profiles to a disk-backed store at this
	// file; empty keeps everything in an in-memory store.
	Path string
	// JournalPath, when set, write-ahead journals every mutation at this
	// file so acknowledged writes survive a crash of the write-back cache;
	// reopening replays the unflushed suffix. Empty disables journaling
	// (crash loses at most the dirty window, as in the paper).
	JournalPath string
	// JournalSyncEvery fsyncs the journal every N records (0 = never:
	// process-crash durable only, not power-loss durable).
	JournalSyncEvery int
	// MemLimit bounds the in-memory cache in bytes (0 = unbounded).
	MemLimit int64
	// Config overrides the default table maintenance configuration
	// (time-dimension compaction, truncation, shrink, write isolation).
	Config *config.Config
	// Clock overrides the time source (Unix millis), for simulations.
	Clock func() int64
	// Caller identifies this embedder for quota accounting.
	Caller string
}

// DB is an embedded single-node IPS instance.
type DB struct {
	inst    *server.Instance
	store   kv.Store
	journal *wal.Journal
	caller  string
	clock   func() int64
}

// Open creates an embedded instance.
func Open(opts Options) (*DB, error) {
	var store kv.Store
	var err error
	if opts.Path != "" {
		store, err = kv.OpenDisk(opts.Path)
		if err != nil {
			return nil, err
		}
	} else {
		store = kv.NewMemory()
	}
	cfg := config.Default()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	cfgStore, err := config.NewStore(cfg)
	if err != nil {
		return nil, err
	}
	caller := opts.Caller
	if caller == "" {
		caller = "embedded"
	}
	clock := opts.Clock
	var journal *wal.Journal
	if opts.JournalPath != "" {
		journal, err = wal.Open(opts.JournalPath, wal.Options{SyncEvery: opts.JournalSyncEvery})
		if err != nil {
			_ = store.Close()
			return nil, err
		}
	}
	inst, err := server.New(server.Options{
		Name:    "ips-embedded",
		Region:  "local",
		Store:   store,
		Config:  cfgStore,
		Clock:   clock,
		Cache:   gcache.Options{MemLimit: opts.MemLimit},
		Journal: journal,
	})
	if err != nil {
		if journal != nil {
			_ = journal.Close()
		}
		_ = store.Close()
		return nil, err
	}
	if clock == nil {
		clock = func() int64 { return time.Now().UnixMilli() }
	}
	return &DB{inst: inst, store: store, journal: journal, caller: caller, clock: clock}, nil
}

// CreateTable registers a table whose count vector has the named actions
// (all reducing by SUM) and returns its handle.
func (db *DB) CreateTable(name string, actions ...string) (*Table, error) {
	return db.CreateTableSchema(name, model.NewSchema(actions...))
}

// CreateTableSchema registers a table with a custom schema (per-action
// reduce functions, e.g. LAST for bid prices).
func (db *DB) CreateTableSchema(name string, schema *model.Schema) (*Table, error) {
	if err := db.inst.CreateTable(name, schema); err != nil {
		return nil, err
	}
	return &Table{db: db, name: name}, nil
}

// Table returns the handle for an existing table.
func (db *DB) Table(name string) (*Table, error) {
	for _, n := range db.inst.Tables() {
		if n == name {
			return &Table{db: db, name: name}, nil
		}
	}
	return nil, fmt.Errorf("ips: table %q does not exist", name)
}

// Instance exposes the underlying server instance for advanced use
// (quotas, config hot reload, stats).
func (db *DB) Instance() *server.Instance { return db.inst }

// Journal exposes the write-ahead mutation journal, or nil when
// Options.JournalPath was empty. Useful for checkpointing ingestion
// offsets alongside the writes they produced and for inspecting journal
// statistics.
func (db *DB) Journal() *wal.Journal { return db.journal }

// RegisterUDAF installs a user-defined aggregate function under name;
// queries reference it via Query.UDAF. Built-ins "sum", "max" and "ctr"
// are pre-registered.
func (db *DB) RegisterUDAF(name string, fn func(counts []int64) float64) error {
	return db.inst.UDAFs().Register(name, fn)
}

// RegisterWeightedUDAF installs a weighted-sum scoring function — the
// common multi-dimensional top-K shape (e.g. like=1, comment=3, share=5).
func (db *DB) RegisterWeightedUDAF(name string, weights ...float64) error {
	return db.inst.UDAFs().Register(name, query.WeightedSum(weights...))
}

// DeleteProfile removes a profile from cache and storage across the table.
func (db *DB) DeleteProfile(table string, id model.ProfileID) error {
	return db.inst.DeleteProfile(table, id)
}

// MergeWrites forces the write-isolation buffer into the main table,
// making recent writes immediately visible (they become visible within
// the configured merge interval otherwise).
func (db *DB) MergeWrites() { db.inst.MergeAll() }

// Flush persists all dirty profiles.
func (db *DB) Flush() error { return db.inst.FlushAll() }

// Close flushes and shuts down. The journal closes after the instance so
// flush-driven watermark advances land before the final sync, and before
// the store so its truncation rewrite reflects the flushed state.
func (db *DB) Close() error {
	err := db.inst.Close()
	if db.journal != nil {
		if jerr := db.journal.Close(); err == nil {
			err = jerr
		}
	}
	if cerr := db.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Table is a handle to one IPS table.
type Table struct {
	db   *DB
	name string
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Add appends one or more observations to a profile (add_profile /
// add_profiles).
func (t *Table) Add(id model.ProfileID, entries ...Entry) error {
	if len(entries) == 0 {
		return errors.New("ips: Add needs at least one entry")
	}
	return t.db.inst.Add(t.db.caller, t.name, id, entries)
}

// TopK returns the top-K features for the query (get_profile_topK).
func (t *Table) TopK(id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := t.db.inst.Query(q.toWire(t.name, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// Filter returns the features passing the query's filters
// (get_profile_filter).
func (t *Table) Filter(id model.ProfileID, q Query) ([]Feature, error) {
	return t.TopK(id, q)
}

// DecayQuery returns features with the query's decay function applied
// (get_profile_decay). The query must set Decay.
func (t *Table) DecayQuery(id model.ProfileID, q Query) ([]Feature, error) {
	if q.Decay == NoDecay {
		return nil, errors.New("ips: DecayQuery requires a decay function")
	}
	return t.TopK(id, q)
}

// Compact synchronously runs maintenance (compact/truncate/shrink) on one
// profile; background maintenance runs automatically as profiles grow.
func (t *Table) Compact(id model.ProfileID) error {
	_, err := t.db.inst.CompactNow(t.name, id)
	return err
}
