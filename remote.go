package ips

import (
	"time"

	"ips/internal/client"
	"ips/internal/discovery"
	"ips/internal/model"
	"ips/internal/wire"
)

// Remote is the unified IPS client to a distributed deployment: it
// discovers instances, routes profile IDs with consistent hashing, writes
// to every region and reads from the local region with failover (§III-G).
type Remote struct {
	c *client.Client
}

// RemoteOptions configures a Remote.
type RemoteOptions struct {
	// Caller identifies the upstream application for quota accounting.
	Caller string
	// Region is the caller's local region; reads prefer it.
	Region string
	// Registry is the discovery catalog: the in-process Registry shared
	// with an embedded cluster, or discovery.Dial(addr) for a registry
	// daemon.
	Registry discovery.Catalog
	// Service is the discovery service name; default "ips".
	Service string
	// CallTimeout bounds each RPC; default 1s.
	CallTimeout time.Duration
}

// Connect builds a Remote client.
func Connect(opts RemoteOptions) (*Remote, error) {
	c, err := client.New(client.Options{
		Caller:      opts.Caller,
		Service:     opts.Service,
		Region:      opts.Region,
		Registry:    opts.Registry,
		CallTimeout: opts.CallTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Remote{c: c}, nil
}

// Add appends observations to a profile in every region.
func (r *Remote) Add(table string, id model.ProfileID, entries ...Entry) error {
	return r.c.Add(table, id, entries...)
}

// TopK queries the top-K features.
func (r *Remote) TopK(table string, id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := r.c.TopK(q.toWire(table, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// Filter queries with filtering semantics.
func (r *Remote) Filter(table string, id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := r.c.Filter(q.toWire(table, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// DecayQuery queries with the configured decay applied.
func (r *Remote) DecayQuery(table string, id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := r.c.Decay(q.toWire(table, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// Stats fetches statistics from every live instance.
func (r *Remote) Stats() ([]*wire.StatsResponse, error) { return r.c.Stats() }

// ErrorRate reports the client-observed error fraction.
func (r *Remote) ErrorRate() float64 { return r.c.ErrorRate() }

// Client exposes the underlying client for advanced use.
func (r *Remote) Client() *client.Client { return r.c }

// Close shuts the client down.
func (r *Remote) Close() error { return r.c.Close() }
