package ips

import (
	"context"
	"time"

	"ips/internal/client"
	"ips/internal/discovery"
	"ips/internal/model"
	"ips/internal/wire"
)

// ErrPartial marks a fan-out operation that returned some results but not
// all (test with errors.Is); the concrete error is a *client.PartialError
// listing the failed units.
var ErrPartial = client.ErrPartial

// BatchOp selects the read semantics of one batch item.
type BatchOp = wire.BatchOp

// Batch operations, mirroring TopK / Filter / DecayQuery.
const (
	OpTopK   = wire.OpTopK
	OpFilter = wire.OpFilter
	OpDecay  = wire.OpDecay
)

// BatchItem is one element of a QueryBatch: which profile to read and how.
type BatchItem struct {
	Table string
	ID    model.ProfileID
	Op    BatchOp
	Query Query
}

// Remote is the unified IPS client to a distributed deployment: it
// discovers instances, routes profile IDs with consistent hashing, writes
// to every region and reads from the local region with failover (§III-G).
type Remote struct {
	c *client.Client
}

// RemoteOptions configures a Remote.
type RemoteOptions struct {
	// Caller identifies the upstream application for quota accounting.
	Caller string
	// Region is the caller's local region; reads prefer it.
	Region string
	// Registry is the discovery catalog: the in-process Registry shared
	// with an embedded cluster, or discovery.Dial(addr) for a registry
	// daemon.
	Registry discovery.Catalog
	// Service is the discovery service name; default "ips".
	Service string
	// CallTimeout bounds each RPC; default 1s.
	CallTimeout time.Duration
}

// Connect builds a Remote client.
func Connect(opts RemoteOptions) (*Remote, error) {
	c, err := client.New(client.Options{
		Caller:      opts.Caller,
		Service:     opts.Service,
		Region:      opts.Region,
		Registry:    opts.Registry,
		CallTimeout: opts.CallTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Remote{c: c}, nil
}

// Add appends observations to a profile in every region.
func (r *Remote) Add(table string, id model.ProfileID, entries ...Entry) error {
	return r.c.Add(table, id, entries...)
}

// TopK queries the top-K features.
func (r *Remote) TopK(table string, id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := r.c.TopK(q.toWire(table, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// Filter queries with filtering semantics.
func (r *Remote) Filter(table string, id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := r.c.Filter(q.toWire(table, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// DecayQuery queries with the configured decay applied.
func (r *Remote) DecayQuery(table string, id model.ProfileID, q Query) ([]Feature, error) {
	resp, err := r.c.Decay(q.toWire(table, id))
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// QueryBatch executes many profile reads in one coalesced pass: items are
// grouped by owning instance via the hash ring and each group travels in a
// single RPC — a ranking request for hundreds of candidates costs one RPC
// per shard touched instead of one per candidate (§II, §IV). Results come
// back in item order. On partial failure the successful slots are still
// returned, failed slots are nil, and the error satisfies
// errors.Is(err, ErrPartial) and lists the failed indices.
func (r *Remote) QueryBatch(items []BatchItem) ([][]Feature, error) {
	subs := make([]wire.SubQuery, len(items))
	for i, it := range items {
		subs[i] = wire.SubQuery{Op: it.Op, Query: *it.Query.toWire(it.Table, it.ID)}
	}
	resps, err := r.c.QueryBatch(subs)
	out := make([][]Feature, len(items))
	for i, resp := range resps {
		if resp != nil {
			out[i] = resp.Features
		}
	}
	return out, err
}

// Subscription is a standing query's client handle: updates arrive on
// Recv / Updates until Close. See Watch.
type Subscription = client.Subscription

// SubUpdate is one pushed standing-query update: the profile it is for,
// a per-profile sequence number, the Resync flag ("replace everything
// you hold for this profile"), and the full current answer.
type SubUpdate = wire.SubUpdate

// Watch registers a standing query written in the pipeline language
// (DESIGN.md "Continuous queries"), e.g.
//
//	source(user_profile, 42, 99) | slot(1) | decay(exp, 0.5) | topk(10)
//
// and returns a Subscription whose Recv yields a fresh answer whenever
// ingest changes a watched profile. The subscription shards its IDs
// across owning instances and transparently resubscribes through
// reconnects and migration windows; after any resubscribe the first
// update per profile carries Resync=true and replaces prior state.
func (r *Remote) Watch(ctx context.Context, pipeline string) (*Subscription, error) {
	return r.c.Subscribe(ctx, pipeline)
}

// Stats fetches statistics from every live instance.
func (r *Remote) Stats() ([]*wire.StatsResponse, error) { return r.c.Stats() }

// ErrorRate reports the client-observed error fraction.
func (r *Remote) ErrorRate() float64 { return r.c.ErrorRate() }

// Client exposes the underlying client for advanced use.
func (r *Remote) Client() *client.Client { return r.c }

// Close shuts the client down.
func (r *Remote) Close() error { return r.c.Close() }
