// Command cluster runs a miniature multi-region IPS deployment over real
// TCP (§III-G, Fig. 15): two regions with two instances each, a unified
// client that writes to all regions and reads locally, and a simulated
// regional outage the client fails over across.
package main

import (
	"fmt"
	"log"
	"time"

	"ips"
	"ips/internal/cluster"
	"ips/internal/model"
)

func main() {
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east", "west"},
		InstancesPerRegion: 2,
		Tables: map[string]*model.Schema{
			"user_profile": model.NewSchema("like", "share"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("cluster up: %d instances across %v\n", len(cl.Nodes()), cl.Regions())
	for _, n := range cl.Nodes() {
		fmt.Printf("  %s (%s) @ %s\n", n.Name, n.Region, n.Addr)
	}

	app, err := ips.Connect(ips.RemoteOptions{
		Caller:   "demo-app",
		Region:   "east",
		Registry: cl.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	// Write profiles: the client fans each write out to both regions.
	now := time.Now().UnixMilli()
	for user := uint64(1); user <= 100; user++ {
		err := app.Add("user_profile", user, ips.Entry{
			Timestamp: now - int64(user), Slot: 1, Type: 1,
			FID: 40_000 + user%10, Counts: []int64{int64(user % 5), 0},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		if err := n.Instance().FlushAll(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote 100 profiles to both regions")

	read := func(label string) {
		ok := 0
		for user := uint64(1); user <= 100; user++ {
			feats, err := app.TopK("user_profile", user, ips.Query{
				Slot: 1, Type: 1, Window: ips.Last(time.Hour), SortByAction: "like", K: 3,
			})
			if err == nil && len(feats) > 0 {
				ok++
			}
		}
		fmt.Printf("%s: %d/100 profiles served, client error rate %.4f%%\n",
			label, ok, app.ErrorRate()*100)
	}
	read("healthy cluster")

	// Data-center failure: the entire local (east) region goes dark.
	fmt.Println("\n*** crashing the east region ***")
	cl.CrashRegion("east")
	time.Sleep(1200 * time.Millisecond) // discovery TTL lapses
	app.Client().RefreshNow()
	read("after east outage (served by west)")

	// Region recovery: restart east; its caches refill from storage.
	fmt.Println("\n*** restarting east instances ***")
	for _, name := range []string{"ips-east-0", "ips-east-1"} {
		if _, err := cl.Restart(name); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	app.Client().RefreshNow()
	read("after east recovery")

	stats, err := app.Stats()
	if err != nil {
		// Partial results are fine right after a restart: some instances
		// may still be coming up.
		if len(stats) == 0 {
			log.Fatal(err)
		}
		fmt.Printf("(partial stats: %v)\n", err)
	}
	fmt.Println("\ninstance stats:")
	for _, s := range stats {
		fmt.Printf("  %s (%s): profiles=%d queries=%d hit=%.1f%%\n",
			s.Name, s.Region, s.Profiles, s.Queries, s.HitRatioPct)
	}
}
