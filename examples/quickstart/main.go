// Command quickstart demonstrates the embedded IPS API on the paper's
// motivating example (§II-A): Alice engages with basketball videos over
// ten days; the recommender asks for her most-liked team over various
// windows.
package main

import (
	"fmt"
	"log"
	"time"

	"ips"
)

const (
	slotSports = 1
	typeHoops  = 2

	lakers   = 1001 // feature IDs: in production these are hashed literals
	warriors = 1002
)

func main() {
	db, err := ips.Open(ips.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	table, err := db.CreateTable("user_profile", "like", "comment", "share")
	if err != nil {
		log.Fatal(err)
	}

	now := time.Now()
	alice := uint64(42)

	// Ten days ago Alice liked, commented on and re-shared a Lakers video.
	err = table.Add(alice, ips.Entry{
		Timestamp: now.Add(-10 * 24 * time.Hour).UnixMilli(),
		Slot:      slotSports, Type: typeHoops, FID: lakers,
		Counts: []int64{1, 1, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Two days ago she liked two Warriors videos.
	err = table.Add(alice, ips.Entry{
		Timestamp: now.Add(-2 * 24 * time.Hour).UnixMilli(),
		Slot:      slotSports, Type: typeHoops, FID: warriors,
		Counts: []int64{2, 0, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	db.MergeWrites() // make buffered writes queryable immediately

	// "Alice's topmost liked feature in Sports/Basketball over the last
	// 10 days" — the SQL query of the paper's Listing 1, answered inline.
	top, err := table.TopK(alice, ips.Query{
		Slot: slotSports, Type: typeHoops,
		Window:       ips.LastDays(11),
		SortByAction: "like",
		K:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top liked basketball team over the last 10 days:")
	for _, f := range top {
		fmt.Printf("  fid=%d likes=%d comments=%d shares=%d\n",
			f.FID, f.Counts[0], f.Counts[1], f.Counts[2])
	}
	if len(top) == 1 && top[0].FID == warriors {
		fmt.Println("  -> Golden State Warriors, matching the paper's example")
	}

	// A 5-day window excludes the older Lakers row entirely.
	recent, err := table.TopK(alice, ips.Query{
		Slot: slotSports, Type: typeHoops,
		Window: ips.LastDays(5), SortByAction: "like",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Features in the last 5 days: %d (Lakers aged out)\n", len(recent))

	// A decayed whole-history view balances short- and long-term interest.
	decayed, err := table.DecayQuery(alice, ips.Query{
		Slot: slotSports, Type: typeHoops,
		Window: ips.LastDays(30), SortByAction: "like",
		Decay: ips.ExpDecay, DecayFactor: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Exponentially decayed 30-day view:")
	for _, f := range decayed {
		fmt.Printf("  fid=%d decayed_likes=%d\n", f.FID, f.Counts[0])
	}
}
