// Command contentfeeds shows how a news/video feed ranker uses IPS as its
// feature hub (§I-c): quickly-updated short-term counters promote trending
// content, long-term windows capture latent interests, and decayed
// aggregates blend both. The example computes the click-through-rate
// features a wide-and-deep model would consume.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ips"
)

const (
	slotNews  = 1
	slotVideo = 2

	typeBreaking = 1
	typeCooking  = 2
	typeHiking   = 3
)

func main() {
	db, err := ips.Open(ips.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	// Schema: impressions and clicks to form CTR, plus dwell as an
	// engagement signal.
	table, err := db.CreateTable("feeds", "impression", "click", "dwell_sec")
	if err != nil {
		log.Fatal(err)
	}

	now := time.Now()
	user := uint64(7)
	rng := rand.New(rand.NewSource(1))

	// Long-term history: weeks of cooking content consumption.
	for day := 30; day >= 7; day-- {
		ts := now.Add(-time.Duration(day) * 24 * time.Hour).UnixMilli()
		for i := 0; i < 5; i++ {
			item := uint64(5000 + rng.Intn(50)) // cooking items
			_ = table.Add(user, ips.Entry{
				Timestamp: ts, Slot: slotVideo, Type: typeCooking, FID: item,
				Counts: []int64{1, boolToCount(rng.Float64() < 0.4), int64(rng.Intn(120))},
			})
		}
	}
	// Recent shift: the user started clicking hiking videos this week.
	for day := 6; day >= 0; day-- {
		ts := now.Add(-time.Duration(day) * 24 * time.Hour).UnixMilli()
		for i := 0; i < 8; i++ {
			item := uint64(7000 + rng.Intn(30)) // hiking items
			_ = table.Add(user, ips.Entry{
				Timestamp: ts, Slot: slotVideo, Type: typeHiking, FID: item,
				Counts: []int64{1, boolToCount(rng.Float64() < 0.7), int64(rng.Intn(300))},
			})
		}
	}
	// Breaking news item going viral in the last ten minutes.
	viral := uint64(9999)
	for i := 0; i < 20; i++ {
		_ = table.Add(user, ips.Entry{
			Timestamp: now.Add(-time.Duration(rng.Intn(600)) * time.Second).UnixMilli(),
			Slot:      slotNews, Type: typeBreaking, FID: viral,
			Counts: []int64{1, 1, 15},
		})
	}
	db.MergeWrites()

	// Short-term feature: clicks on breaking news in the last 10 minutes.
	// Real-time freshness is what lets the feed promote it immediately.
	hot, err := table.TopK(user, ips.Query{
		Slot: slotNews, Type: typeBreaking,
		Window: ips.Last(10 * time.Minute), SortByAction: "click", K: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Trending breaking-news items (10-minute window):")
	printCTR(hot)

	// Long-term feature: 30-day CTR per hiking item — the model input
	// "CTR of <category> contents in the last 30 days".
	hiking, err := table.TopK(user, ips.Query{
		Slot: slotVideo, Type: typeHiking,
		Window: ips.LastDays(30), SortByAction: "click", K: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top hiking items by 30-day clicks:")
	printCTR(hiking)

	// Blended interest: a decayed whole-slot aggregation ranks hiking
	// above cooking because recent behaviour is up-weighted, yet cooking
	// still appears — the "trail cooking recipes" blend of §I-c.
	blended, err := table.DecayQuery(user, ips.Query{
		Slot: slotVideo, AllTypes: true,
		Window: ips.LastDays(30), SortByAction: "click", K: 8,
		Decay: ips.ExpDecay, DecayFactor: 0.85,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Blended (decayed) cross-category interests:")
	printCTR(blended)

	// User-defined aggregate function: rank by CTR directly (the built-in
	// "ctr" UDAF divides counts[1] by counts[0]) with a minimum-score
	// floor — the inline feature computation the paper's contribution
	// list highlights.
	byCTR, err := table.TopK(user, ips.Query{
		Slot: slotVideo, AllTypes: true,
		Window: ips.LastDays(30),
		UDAF:   "ctr", SortByUDAF: true, MinScore: 0.5, K: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top items by CTR (UDAF-ranked, CTR >= 0.5):")
	for _, f := range byCTR {
		fmt.Printf("  fid=%d ctr=%.2f (imp=%d clk=%d)\n", f.FID, f.Score, f.Counts[0], f.Counts[1])
	}

	// Custom UDAF: engagement blends clicks with dwell time.
	if err := db.RegisterUDAF("engagement", func(counts []int64) float64 {
		return float64(counts[1]) + float64(counts[2])/60.0 // clicks + dwell-minutes
	}); err != nil {
		log.Fatal(err)
	}
	engaged, err := table.TopK(user, ips.Query{
		Slot: slotVideo, AllTypes: true,
		Window: ips.LastDays(30),
		UDAF:   "engagement", SortByUDAF: true, K: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top items by custom engagement score:")
	for _, f := range engaged {
		fmt.Printf("  fid=%d score=%.2f\n", f.FID, f.Score)
	}
}

func printCTR(feats []ips.Feature) {
	for _, f := range feats {
		imp, clk := f.Counts[0], f.Counts[1]
		ctr := 0.0
		if imp > 0 {
			ctr = float64(clk) / float64(imp)
		}
		fmt.Printf("  fid=%d impressions=%d clicks=%d ctr=%.2f\n", f.FID, imp, clk, ctr)
	}
}

func boolToCount(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
