// Command ingestion runs the end-to-end data-ingestion dataflow of §III-A:
// impression, action and feature events are produced onto partitioned log
// topics (the Kafka stand-in), a windowed streaming joiner (the Flink
// stand-in) joins them into instance data, and the joined instances are
// ingested into IPS where they immediately become queryable features.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ips"
	"ips/internal/ingest"
	"ips/internal/model"
	"ips/internal/wire"
)

func main() {
	db, err := ips.Open(ips.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	table, err := db.CreateTable("user_profile", "impression", "like", "share")
	if err != nil {
		log.Fatal(err)
	}

	logStore := ingest.NewLog()
	logStore.CreateTopic(ingest.TopicImpression, 4)
	logStore.CreateTopic(ingest.TopicAction, 4)
	logStore.CreateTopic(ingest.TopicFeature, 4)

	// Sink: joined instances become IPS writes through the same Add API
	// the unified client uses.
	sink := ingest.SinkFunc(func(caller, tbl string, id model.ProfileID, entries []wire.AddEntry) error {
		return table.Add(id, entries...)
	})
	pipe := ingest.NewPipeline(logStore, sink, "user_profile",
		"ingestion-job", model.NewSchema("impression", "like", "share"))

	// Produce a burst of traffic: 200 users see items; some engage.
	rng := rand.New(rand.NewSource(3))
	now := time.Now().UnixMilli()
	var produced int
	for u := uint64(1); u <= 200; u++ {
		for imp := 0; imp < 5; imp++ {
			item := uint64(100 + rng.Intn(40))
			ts := now - int64(rng.Intn(50_000))
			logStore.Append(ingest.TopicImpression, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
				ProfileID: u, ItemID: item, Timestamp: ts, Slot: 1, Type: 1,
			})})
			produced++
			if rng.Float64() < 0.5 {
				logStore.Append(ingest.TopicAction, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
					ProfileID: u, ItemID: item, Timestamp: ts + int64(rng.Intn(5000)), Action: "like",
				})})
				produced++
			}
			if rng.Float64() < 0.1 {
				logStore.Append(ingest.TopicAction, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
					ProfileID: u, ItemID: item, Timestamp: ts + int64(rng.Intn(8000)), Action: "share",
				})})
				produced++
			}
		}
	}
	fmt.Printf("produced %d raw events across 3 streams\n", produced)
	fmt.Printf("topic depths: impression=%d action=%d\n",
		logStore.Depth(ingest.TopicImpression), logStore.Depth(ingest.TopicAction))

	// One deterministic drain of the join job.
	start := time.Now()
	n := pipe.RunOnce()
	fmt.Printf("joined and ingested %d instances in %v (errors=%d)\n",
		n, time.Since(start).Round(time.Millisecond), pipe.Errors)
	fmt.Printf("instance topic depth (training data): %d\n", logStore.Depth(ingest.TopicInstance))
	db.MergeWrites()

	// The end-to-end latency between action and queryability is bounded by
	// the pipeline poll plus IPS's merge interval — "within a minute" in
	// production (§III-A); here it is immediate.
	feats, err := table.TopK(1, ips.Query{
		Slot: 1, Type: 1, Window: ips.Last(2 * time.Minute),
		SortByAction: "like", K: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user 1's freshly ingested features:")
	for _, f := range feats {
		fmt.Printf("  item=%d impressions=%d likes=%d shares=%d\n",
			f.FID, f.Counts[0], f.Counts[1], f.Counts[2])
	}
}
