// Command training demonstrates how IPS avoids training-serving skew
// (§I: "we can extract thousands of features for a single request,
// assemble them for serving and flush them into training data in
// parallel"). The same feature queries that score a request online are
// executed at example-assembly time, and the assembled example carries
// both the label (did the user engage?) and the exact feature values the
// model would have seen when serving.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ips"
	"ips/internal/ingest"
	"ips/internal/model"
	"ips/internal/wire"
)

// trainingExample is one assembled row: label + features, produced by the
// same query path serving uses.
type trainingExample struct {
	ProfileID uint64
	ItemID    uint64
	Label     int // 1 = engaged
	// Features: CTR over 1h and 24h for the item's category, computed by
	// IPS at assembly time.
	ShortCTR, LongCTR float64
}

func main() {
	db, err := ips.Open(ips.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	table, err := db.CreateTable("user_profile", "impression", "click")
	if err != nil {
		log.Fatal(err)
	}

	logStore := ingest.NewLog()
	sink := ingest.SinkFunc(func(caller, tbl string, id model.ProfileID, entries []wire.AddEntry) error {
		return table.Add(id, entries...)
	})
	pipe := ingest.NewPipeline(logStore, sink, "user_profile", "ingest",
		model.NewSchema("impression", "click"))

	// Simulate a day of traffic: users see items; clicks follow each
	// user's hidden affinity so the learned features are meaningful.
	rng := rand.New(rand.NewSource(7))
	now := time.Now().UnixMilli()
	affinity := map[uint64]float64{}
	for u := uint64(1); u <= 50; u++ {
		affinity[u] = rng.Float64()
	}
	for round := 0; round < 40; round++ {
		ts := now - int64(40-round)*90_000
		for u := uint64(1); u <= 50; u++ {
			item := uint64(300 + rng.Intn(20))
			logStore.Append(ingest.TopicImpression, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
				ProfileID: u, ItemID: item, Timestamp: ts, Slot: 1, Type: 1,
			})})
			if rng.Float64() < affinity[u] {
				logStore.Append(ingest.TopicAction, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
					ProfileID: u, ItemID: item, Timestamp: ts + 2000, Action: "click",
				})})
			}
		}
	}
	n := pipe.RunOnce()
	db.MergeWrites()
	fmt.Printf("ingested %d joined instances\n", n)

	// Assemble training examples by consuming the instance topic — the
	// same stream model trainers read in production — and computing each
	// example's features through the serving query path.
	ctrFeature := func(u uint64, window time.Duration) float64 {
		feats, err := table.TopK(u, ips.Query{
			Slot: 1, Type: 1, Window: ips.Last(window),
			UDAF: "ctr", SortByUDAF: true, K: 1,
		})
		if err != nil || len(feats) == 0 {
			return 0
		}
		return feats[0].Score
	}

	var examples []trainingExample
	parts := logStore.Partitions(ingest.TopicInstance)
	for part := 0; part < parts; part++ {
		msgs, err := logStore.Poll(ingest.TopicInstance, part, 0, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range msgs {
			ev, err := ingest.DecodeEvent(m.Value)
			if err != nil {
				continue
			}
			ex := trainingExample{
				ProfileID: ev.ProfileID,
				ItemID:    ev.ItemID,
				ShortCTR:  ctrFeature(ev.ProfileID, time.Hour),
				LongCTR:   ctrFeature(ev.ProfileID, 24*time.Hour),
			}
			examples = append(examples, ex)
		}
	}
	fmt.Printf("assembled %d training examples with serving-path features\n", len(examples))

	// Show that the features separate users by affinity: high-affinity
	// users have high CTR features, exactly what the model will also see
	// at serving time — no skew by construction.
	var loCTR, hiCTR float64
	var loN, hiN int
	for _, ex := range examples {
		if affinity[ex.ProfileID] < 0.3 {
			loCTR += ex.LongCTR
			loN++
		} else if affinity[ex.ProfileID] > 0.7 {
			hiCTR += ex.LongCTR
			hiN++
		}
	}
	if loN > 0 && hiN > 0 {
		fmt.Printf("avg 24h-CTR feature: low-affinity users %.2f, high-affinity users %.2f\n",
			loCTR/float64(loN), hiCTR/float64(hiN))
	}

	// At serving time, the ranker runs the *same* query:
	servingCTR := ctrFeature(1, 24*time.Hour)
	fmt.Printf("user 1 serving-time 24h-CTR feature: %.2f (identical query path as training)\n", servingCTR)
}
