// Command advertising shows the ads use case of §I-d: IPS captures
// impressions and conversions responsively so pacing (flow control) can
// smooth ad delivery over the day, and volatile auction bid prices are
// kept fresh with LAST-reduce semantics.
package main

import (
	"fmt"
	"log"
	"time"

	"ips"
	"ips/internal/model"
)

const (
	slotAds     = 1
	typeDisplay = 1
)

func main() {
	db, err := ips.Open(ips.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	// The bid price must not accumulate: it reduces with LAST so the most
	// recent auction price wins; impressions/conversions SUM as usual.
	schema := model.NewSchema("impression", "conversion", "bid_milli_cents").
		WithReducer("bid_milli_cents", model.ReduceLast)
	table, err := db.CreateTableSchema("ads", schema)
	if err != nil {
		log.Fatal(err)
	}

	now := time.Now()
	campaign := uint64(501) // profiles can hold any entity: here, a campaign
	adA, adB := uint64(1), uint64(2)

	// Morning: ad A delivers heavily with few conversions; ad B delivers
	// lightly but converts well. Bids reprice continuously.
	for minute := 0; minute < 240; minute++ {
		ts := now.Add(-4*time.Hour + time.Duration(minute)*time.Minute).UnixMilli()
		_ = table.Add(campaign, ips.Entry{
			Timestamp: ts, Slot: slotAds, Type: typeDisplay, FID: adA,
			Counts: []int64{3, boolCount(minute%40 == 0), 120_000 - int64(minute)*100},
		})
		if minute%3 == 0 {
			_ = table.Add(campaign, ips.Entry{
				Timestamp: ts, Slot: slotAds, Type: typeDisplay, FID: adB,
				Counts: []int64{1, boolCount(minute%12 == 0), 95_000 + int64(minute)*50},
			})
		}
	}
	db.MergeWrites()

	// Flow control: compare delivered impressions per ad over the last
	// hour against the pacing budget; throttle the over-delivering ad.
	lastHour, err := table.TopK(campaign, ips.Query{
		Slot: slotAds, Type: typeDisplay,
		Window: ips.Last(time.Hour), SortByAction: "impression",
	})
	if err != nil {
		log.Fatal(err)
	}
	const hourlyBudget = 150
	fmt.Println("Pacing check (1-hour window):")
	for _, f := range lastHour {
		imp := f.Counts[0]
		verdict := "ok"
		if imp > hourlyBudget {
			verdict = "THROTTLE (over hourly budget)"
		}
		fmt.Printf("  ad=%d impressions=%d budget=%d -> %s\n", f.FID, imp, hourlyBudget, verdict)
	}

	// Conversion-rate feature over the full flight for value estimation.
	flight, err := table.TopK(campaign, ips.Query{
		Slot: slotAds, Type: typeDisplay,
		Window: ips.Last(6 * time.Hour), SortByAction: "conversion",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Conversion performance (6-hour flight):")
	for _, f := range flight {
		imp, conv := f.Counts[0], f.Counts[1]
		cvr := 0.0
		if imp > 0 {
			cvr = float64(conv) / float64(imp)
		}
		fmt.Printf("  ad=%d conversions=%d cvr=%.3f\n", f.FID, conv, cvr)
	}

	// Bid freshness: the model reads the *current* price, not a sum of
	// history — LAST semantics keep it timely as auctions reprice.
	bids, err := table.TopK(campaign, ips.Query{
		Slot: slotAds, Type: typeDisplay,
		Window: ips.Last(6 * time.Hour), SortByFID: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Current bid prices (LAST-reduced, milli-cents):")
	for _, f := range bids {
		fmt.Printf("  ad=%d bid=%d\n", f.FID, f.Counts[2])
	}
}

func boolCount(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
