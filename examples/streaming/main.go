// Command streaming demonstrates continuous queries (DESIGN.md
// "Continuous queries"): a standing query in the pipeline language is
// registered once with Watch, and the cluster pushes a fresh answer
// whenever a write changes a watched profile — no polling. It also
// shows the two client-visible contracts worth internalizing:
//
//   - Resync baselines: the first update per profile after any
//     (re)subscribe carries Resync=true and replaces prior state, and
//     the same flag recovers slow consumers after server-side drops.
//   - Transparent resubscribe: when a node crashes (or joins/drains),
//     the subscription reassigns its profiles to the new owners and
//     re-baselines — the consumer loop never changes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ips"
	"ips/internal/cluster"
	"ips/internal/config"
	"ips/internal/model"
)

func main() {
	// Write isolation off so pushes fire at write-accept time; with it
	// on, pushes fire at merge time and inherit the merge interval,
	// exactly like polled reads (the §III-F freshness trade).
	cfg := config.Default()
	cfg.WriteIsolation = false
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"local"},
		InstancesPerRegion: 2,
		Config:             &cfg,
		Tables: map[string]*model.Schema{
			"user_profile": model.NewSchema("like", "share"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	app, err := ips.Connect(ips.RemoteOptions{
		Caller: "streaming-demo", Region: "local", Registry: cl.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	// One standing query over three profiles: their top liked features
	// in slot 1. The pipeline text is the wire form — the server parses
	// it into the same operators a polled TopK would run.
	const pipeline = "source(user_profile, 7, 8, 9) | slot(1) | sort(action, like) | topk(3)"
	sub, err := app.Watch(context.Background(), pipeline)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	fmt.Printf("watching: %s\n\n", pipeline)

	// Every (re)subscribed profile first delivers a Resync-flagged
	// baseline: the full current answer (empty here — nothing written).
	fmt.Println("--- baselines (one Resync per watched profile) ---")
	for i := 0; i < 3; i++ {
		printUpdate(recv(sub))
	}

	// A write to a watched profile pushes a fresh answer within the
	// ingest visibility window — no poll, no caller involvement.
	fmt.Println("\n--- write profile 7, the push arrives ---")
	now := time.Now().UnixMilli()
	mustAdd(app, 7, ips.Entry{
		Timestamp: now, Slot: 1, Type: 1, FID: 1001, Counts: []int64{3, 0},
	})
	printUpdate(recv(sub))

	mustAdd(app, 7, ips.Entry{
		Timestamp: now, Slot: 1, Type: 1, FID: 1002, Counts: []int64{5, 1},
	})
	printUpdate(recv(sub))

	// Flush so the shared KV holds the state, then crash one node. The
	// subscription notices the ring change, reassigns the crashed
	// owner's profiles to the survivor, and re-baselines them with
	// Resync updates — the receive loop above keeps working unchanged.
	fmt.Println("\n--- crash a node: transparent resubscribe ---")
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		if err := n.Instance().FlushAll(); err != nil {
			log.Fatal(err)
		}
	}
	victim := cl.Nodes()[0].Name
	cl.Crash(victim)
	fmt.Printf("crashed %s; waiting for discovery TTL + reassign\n", victim)
	time.Sleep(1200 * time.Millisecond) // registration TTL lapses
	app.Client().RefreshNow()

	// The crashed node owned some subset of {7,8,9}; each reassigned
	// profile re-baselines from the survivor (served out of shared KV).
	// Drain until the stream goes quiet so every baseline is in.
	for {
		select {
		case u := <-sub.Updates():
			printUpdate(u)
		case <-time.After(2 * time.Second):
			goto settled
		}
	}
settled:

	// Writes keep pushing after the failover.
	fmt.Println("\n--- write profile 8 after the failover ---")
	mustAdd(app, 8, ips.Entry{
		Timestamp: now, Slot: 1, Type: 1, FID: 2002, Counts: []int64{2, 0},
	})
	printUpdate(recv(sub))

	fmt.Printf("\nclient counters: subscriptions=%d streams=%d opens=%d resubscribes=%d updates=%d resyncs=%d\n",
		app.Client().Subscriptions.Value(), app.Client().SubStreams.Value(),
		app.Client().SubOpens.Value(), app.Client().SubResubscribes.Value(),
		app.Client().SubUpdates.Value(), app.Client().SubResyncs.Value())
}

// recv pulls the next pushed update with a liveness deadline.
func recv(sub *ips.Subscription) *ips.SubUpdate {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	u, err := sub.Recv(ctx)
	if err != nil {
		log.Fatalf("no update within deadline: %v", err)
	}
	return u
}

func printUpdate(u *ips.SubUpdate) {
	mark := "push  "
	if u.Resync {
		mark = "RESYNC" // replace everything held for this profile
	}
	fmt.Printf("  [%s] profile=%d seq=%d:", mark, u.ProfileID, u.Seq)
	if len(u.Result.Features) == 0 {
		fmt.Printf(" (empty)")
	}
	for _, f := range u.Result.Features {
		fmt.Printf(" fid=%d%v", f.FID, f.Counts)
	}
	fmt.Println()
}

func mustAdd(app *ips.Remote, id uint64, e ips.Entry) {
	if err := app.Add("user_profile", id, e); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote profile %d fid=%d\n", id, e.FID)
}
