package ips

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"ips/internal/cluster"
	"ips/internal/config"
	"ips/internal/model"
)

// fixedNow anchors embedded tests at a deterministic epoch.
const fixedNow = int64(1_700_000_000_000)

func openDB(t testing.TB) *DB {
	t.Helper()
	cfg := config.Default()
	cfg.WriteIsolation = false
	db, err := Open(Options{Config: &cfg, Clock: func() int64 { return fixedNow }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("user_profile", "like", "comment", "share")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating example: Lakers engagement ten days ago,
	// Warriors likes two days ago.
	const day = int64(24 * time.Hour / time.Millisecond)
	const lakers, warriors = 100, 200
	if err := tbl.Add(1,
		Entry{Timestamp: fixedNow - 10*day, Slot: 1, Type: 2, FID: lakers, Counts: []int64{1, 1, 1}},
		Entry{Timestamp: fixedNow - 2*day, Slot: 1, Type: 2, FID: warriors, Counts: []int64{2, 0, 0}},
	); err != nil {
		t.Fatal(err)
	}
	top, err := tbl.TopK(1, Query{Slot: 1, Type: 2, Window: LastDays(11), SortByAction: "like", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].FID != warriors {
		t.Fatalf("top = %+v, want Warriors", top)
	}
}

func TestWindowHelpers(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("t", "n")
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 5000, Slot: 1, Type: 1, FID: 9, Counts: []int64{1}})

	if got, _ := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: Last(10 * time.Second)}); len(got) != 1 {
		t.Fatal("Last window missed the write")
	}
	if got, _ := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: Last(time.Second)}); len(got) != 0 {
		t.Fatal("narrow Last window should miss")
	}
	if got, _ := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: SinceLastAction(time.Second)}); len(got) != 1 {
		t.Fatal("relative window should find the last action")
	}
	from := time.UnixMilli(fixedNow - 10_000)
	to := time.UnixMilli(fixedNow)
	if got, _ := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: Between(from, to)}); len(got) != 1 {
		t.Fatal("absolute window missed")
	}
}

func TestDecayQueryRequiresDecay(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("t", "n")
	if _, err := tbl.DecayQuery(1, Query{Slot: 1, Type: 1, Window: LastDays(1)}); err == nil {
		t.Fatal("DecayQuery without decay should fail")
	}
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 1, Counts: []int64{5}})
	got, err := tbl.DecayQuery(1, Query{Slot: 1, Type: 1, Window: LastDays(1), Decay: ExpDecay, DecayFactor: 0.9})
	if err != nil || len(got) != 1 {
		t.Fatalf("decay query = %+v, %v", got, err)
	}
}

func TestAddValidation(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("t", "n")
	if err := tbl.Add(1); err == nil {
		t.Fatal("empty Add should fail")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("missing table lookup should fail")
	}
	if tt, err := db.Table("t"); err != nil || tt.Name() != "t" {
		t.Fatalf("table lookup = %v, %v", tt, err)
	}
}

func TestCustomSchemaReducer(t *testing.T) {
	db := openDB(t)
	schema := model.NewSchema("bid", "clicks").WithReducer("bid", model.ReduceLast)
	tbl, err := db.CreateTableSchema("ads", schema)
	if err != nil {
		t.Fatal(err)
	}
	_ = tbl.Add(5, Entry{Timestamp: fixedNow - 3000, Slot: 1, Type: 1, FID: 7, Counts: []int64{100, 1}})
	_ = tbl.Add(5, Entry{Timestamp: fixedNow - 1000, Slot: 1, Type: 1, FID: 7, Counts: []int64{70, 1}})
	got, err := tbl.TopK(5, Query{Slot: 1, Type: 1, Window: LastDays(1), SortByAction: "clicks"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Counts[0] != 70 {
		t.Fatalf("bid = %d, want 70 (LAST semantics)", got[0].Counts[0])
	}
	if got[0].Counts[1] != 2 {
		t.Fatalf("clicks = %d, want 2 (SUM)", got[0].Counts[1])
	}
}

func TestDiskPersistenceAcrossOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ips.db")
	cfg := config.Default()
	cfg.WriteIsolation = false

	db, err := Open(Options{Path: path, Config: &cfg, Clock: func() int64 { return fixedNow }})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", "n")
	_ = tbl.Add(9, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 4, Counts: []int64{6}})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path, Config: &cfg, Clock: func() int64 { return fixedNow }})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", "n")
	got, err := tbl2.TopK(9, Query{Slot: 1, Type: 1, Window: LastDays(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Counts[0] != 6 {
		t.Fatalf("reopened data = %+v", got)
	}
}

func TestWriteIsolationFacade(t *testing.T) {
	cfg := config.Default()
	cfg.WriteIsolation = true
	cfg.MergeInterval = config.Duration(time.Hour)
	db, err := Open(Options{Config: &cfg, Clock: func() int64 { return fixedNow }})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", "n")
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 50, Slot: 1, Type: 1, FID: 2, Counts: []int64{1}})
	if got, _ := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1)}); len(got) != 0 {
		t.Fatal("write visible before merge")
	}
	db.MergeWrites()
	if got, _ := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1)}); len(got) != 1 {
		t.Fatal("write missing after merge")
	}
}

func TestRemoteFacade(t *testing.T) {
	clock := func() model.Millis { return fixedNow }
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: 2,
		Clock:              clock,
		Tables:             map[string]*model.Schema{"up": model.NewSchema("like", "share")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	r, err := Connect(RemoteOptions{Caller: "app", Region: "east", Registry: cl.Registry, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.Add("up", 11, Entry{Timestamp: fixedNow - 500, Slot: 1, Type: 1, FID: 3, Counts: []int64{8, 0}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
	}
	got, err := r.TopK("up", 11, Query{Slot: 1, Type: 1, Window: LastDays(1), SortByAction: "like", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Counts[0] != 8 {
		t.Fatalf("remote topk = %+v", got)
	}
	stats, err := r.Stats()
	if err != nil || len(stats) != 2 {
		t.Fatalf("stats = %d, %v", len(stats), err)
	}
	if r.ErrorRate() != 0 {
		t.Fatalf("error rate = %v", r.ErrorRate())
	}
	// Filter and DecayQuery paths.
	if _, err := r.Filter("up", 11, Query{Slot: 1, Type: 1, Window: LastDays(1), MinCount: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DecayQuery("up", 11, Query{Slot: 1, Type: 1, Window: LastDays(1), Decay: ExpDecay, DecayFactor: 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteQueryBatchFacade(t *testing.T) {
	clock := func() model.Millis { return fixedNow }
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: 2,
		Clock:              clock,
		Tables:             map[string]*model.Schema{"up": model.NewSchema("like", "share")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	r, err := Connect(RemoteOptions{Caller: "app", Region: "east", Registry: cl.Registry, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for id := uint64(1); id <= 8; id++ {
		err := r.Add("up", id, Entry{
			Timestamp: fixedNow - 500, Slot: 1, Type: 1,
			FID: 100 + id, Counts: []int64{int64(id), 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
	}

	q := Query{Slot: 1, Type: 1, Window: LastDays(1), SortByAction: "like", K: 5}
	items := make([]BatchItem, 0, 10)
	for id := uint64(1); id <= 8; id++ {
		items = append(items, BatchItem{Table: "up", ID: id, Op: OpTopK, Query: q})
	}
	items = append(items,
		BatchItem{Table: "up", ID: 3, Op: OpDecay,
			Query: Query{Slot: 1, Type: 1, Window: LastDays(1), Decay: ExpDecay, DecayFactor: 0.5}},
		BatchItem{Table: "ghost", ID: 1, Op: OpTopK, Query: q},
	)
	feats, err := r.QueryBatch(items)
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("err = %v, want ErrPartial (the ghost-table slot)", err)
	}
	if len(feats) != len(items) {
		t.Fatalf("got %d result slots for %d items", len(feats), len(items))
	}
	for i := 0; i < 8; i++ {
		if len(feats[i]) != 1 || feats[i][0].FID != 100+items[i].ID {
			t.Fatalf("slot %d = %+v", i, feats[i])
		}
	}
	if len(feats[8]) != 1 { // decay slot
		t.Fatalf("decay slot = %+v", feats[8])
	}
	if feats[9] != nil {
		t.Fatalf("failed slot carries features: %+v", feats[9])
	}
	// The 10-item batch coalesced to one first-round RPC per instance;
	// only the failing slot cost extra failover RPCs afterwards.
	if fan := r.Client().BatchFanOut.Value(); fan != 2 {
		t.Fatalf("first-round fan-out %d across 2 instances", fan)
	}
	if rpcs := r.Client().BatchRPCs.Value(); rpcs > 4 {
		t.Fatalf("batch cost %d RPCs for a 2-shard cluster", rpcs)
	}
}

func TestUDAFFacade(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("t", "impression", "click")
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 1, Counts: []int64{100, 5}})
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 2, Counts: []int64{10, 6}})

	// Built-in ctr UDAF: fid 2 (0.6) outranks fid 1 (0.05).
	got, err := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1), UDAF: "ctr", SortByUDAF: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].FID != 2 || got[0].Score != 0.6 {
		t.Fatalf("ctr top = %+v", got[0])
	}
	// MinScore filter.
	got, err = tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1), UDAF: "ctr", SortByUDAF: true, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("min-score kept %d", len(got))
	}
	// Custom weighted UDAF.
	if err := db.RegisterWeightedUDAF("value", 0.1, 10); err != nil {
		t.Fatal(err)
	}
	got, err = tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1), UDAF: "value", SortByUDAF: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].FID != 2 { // 0.1*10+10*6=61 vs 0.1*100+10*5=60
		t.Fatalf("weighted top = %+v", got[0])
	}
	// Unknown UDAF errors.
	if _, err := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1), UDAF: "ghost", SortByUDAF: true}); err == nil {
		t.Fatal("unknown UDAF should error")
	}
}

func TestDeleteProfileFacade(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("t", "n")
	_ = tbl.Add(5, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 1, Counts: []int64{1}})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteProfile("t", 5); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.TopK(5, Query{Slot: 1, Type: 1, Window: LastDays(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("deleted profile returned %+v", got)
	}
}

func TestFacadeCoverageGaps(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("t", "n")
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 4, Counts: []int64{3}})
	_ = tbl.Add(1, Entry{Timestamp: fixedNow - 100, Slot: 1, Type: 1, FID: 5, Counts: []int64{1}})

	// Instance() exposes the server for advanced use.
	if db.Instance() == nil || db.Instance().Name() == "" {
		t.Fatal("Instance() should expose the live server")
	}
	// RegisterUDAF with a custom function.
	if err := db.RegisterUDAF("double", func(counts []int64) float64 { return 2 * float64(counts[0]) }); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.TopK(1, Query{Slot: 1, Type: 1, Window: LastDays(1), UDAF: "double", SortByUDAF: true})
	if err != nil || got[0].Score != 6 {
		t.Fatalf("custom udaf = %+v, %v", got, err)
	}
	// Filter path on the Table handle.
	got, err = tbl.Filter(1, Query{Slot: 1, Type: 1, Window: LastDays(1), MinCount: 2})
	if err != nil || len(got) != 1 || got[0].FID != 4 {
		t.Fatalf("filter = %+v, %v", got, err)
	}
	// Compact path on the Table handle.
	if err := tbl.Compact(1); err != nil {
		t.Fatal(err)
	}
	// Invalid schema through CreateTableSchema.
	if _, err := db.CreateTableSchema("bad", &model.Schema{}); err == nil {
		t.Fatal("invalid schema should fail")
	}
}

func TestRemoteClientAccessor(t *testing.T) {
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: 1,
		Clock:              func() model.Millis { return fixedNow },
		Tables:             map[string]*model.Schema{"up": model.NewSchema("n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	r, err := Connect(RemoteOptions{Caller: "c", Region: "east", Registry: cl.Registry, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Client() == nil {
		t.Fatal("Client() accessor broken")
	}
	// A query against an unknown table surfaces a remote error and counts
	// toward the client-observed error rate.
	if _, err := r.TopK("ghost", 1, Query{Slot: 1, Type: 1, Window: LastDays(1)}); err == nil {
		t.Fatal("unknown table should fail")
	}
	if r.ErrorRate() == 0 {
		t.Fatal("error rate should reflect the failure")
	}
}
