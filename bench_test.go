package ips

// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation (each delegating to the shared harness in
// internal/bench, which cmd/ips-bench also uses) plus ablation benches for
// the design choices DESIGN.md calls out. Custom metrics are attached via
// b.ReportMetric so `go test -bench` output carries the paper-comparable
// numbers.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ips/internal/bench"
	"ips/internal/compact"
	"ips/internal/config"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/persist"
	"ips/internal/wire"
)

// BenchmarkFig16QueryLatency regenerates Fig. 16 (query throughput +
// p50/p99 under diurnal traffic) at reduced scale per iteration.
func BenchmarkFig16QueryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig16(bench.Fig16Options{
			Hours: 6, PeakQueriesPerHour: 400, Profiles: 300, WritesPerProfile: 30,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rep.Points[len(rep.Points)-1]
		b.ReportMetric(last.Throughput, "qps")
		b.ReportMetric(float64(last.P50.Microseconds()), "p50_us")
		b.ReportMetric(float64(last.P99.Microseconds()), "p99_us")
		b.ReportMetric(rep.P50Spread, "p50_spread")
	}
}

// BenchmarkFig17Availability regenerates Fig. 17 (error rate under
// failures) at reduced scale.
func BenchmarkFig17Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig17(bench.Fig17Options{
			Days: 2, RequestsPerDay: 300, Regions: 2, InstancesPerRegion: 1,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.AvgRate*100, "err_pct")
		b.ReportMetric(rep.SLA*100, "sla_pct")
	}
}

// BenchmarkTable2HitMiss regenerates Table II (client/server latency by
// cache hit/miss).
func BenchmarkTable2HitMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunTab2(bench.Tab2Options{
			Queries: 120, Profiles: 200, StoreDelay: 2 * time.Millisecond,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.HitSavingsAvg.Microseconds()), "hit_savings_us")
		b.ReportMetric(float64(rep.NetworkOverheadAvg.Microseconds()), "net_overhead_us")
	}
}

// BenchmarkFig18CacheHitRatio regenerates Fig. 18 (hit ratio + memory
// stability).
func BenchmarkFig18CacheHitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig18(bench.Fig18Options{
			Ticks: 8, RequestsPerTick: 1500, Profiles: 5000, MemLimit: 1 << 21,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.FinalHitRatio*100, "hit_pct")
		b.ReportMetric(rep.MemStability, "mem_maxmin")
	}
}

// BenchmarkFig19AddLatency regenerates Fig. 19 (write throughput +
// p50/p99).
func BenchmarkFig19AddLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig19(bench.Fig19Options{
			Hours: 4, PeakWritesPerHour: 200, Profiles: 200,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rep.Points[len(rep.Points)-1]
		b.ReportMetric(last.Throughput, "wps")
		b.ReportMetric(float64(last.P50.Microseconds()), "p50_us")
		b.ReportMetric(float64(last.P99.Microseconds()), "p99_us")
	}
}

// BenchmarkIsolationAblation regenerates the §IV-C claim (isolation cuts
// write p99 ~80%).
func BenchmarkIsolationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Contention only shows with enough concurrent requests against
		// heavy profiles; smaller runs measure merge overhead instead.
		rep, err := bench.RunIso80(bench.Iso80Options{Requests: 20_000, Profiles: 300}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.WriteP99ReductionPct, "write_p99_cut_pct")
		b.ReportMetric(rep.QueryP99ChangePct, "query_p99_move_pct")
	}
}

// BenchmarkCompactionFootprint regenerates the §III-D footprint numbers
// (slice count, bytes/slice, maintained-vs-raw reduction).
func BenchmarkCompactionFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunCompaction(bench.CompactionOptions{
			Weeks: 12, EventsPerDay: 96, ActiveDaysPerWeek: 4, ShrinkRetain: 30,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.MaintainedSlices), "slices")
		b.ReportMetric(float64(rep.AvgSliceBytes), "bytes_per_slice")
		b.ReportMetric(rep.ReductionFactor, "reduction_x")
	}
}

// BenchmarkLambdaBaseline regenerates the §I baseline comparison: IPS vs
// the legacy Lambda-architecture profile services it replaced.
func BenchmarkLambdaBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunLambda(bench.LambdaOptions{
			Users: 40, Days: 10, ClicksPerUserPerDay: 15,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.WindowRecallIPS*100, "ips_recall_pct")
		b.ReportMetric(rep.WindowRecallShort*100, "short_recall_pct")
		b.ReportMetric(rep.WindowRecallLong*100, "long_recall_pct")
		b.ReportMetric(rep.LookupsPerShortQuery, "lookups_per_query")
	}
}

// BenchmarkFig10Compact and BenchmarkFig11Truncate are the deterministic
// mechanism demos.
func BenchmarkFig10Compact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig10(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Truncate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig11(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchVsSingle measures the batched multi-profile query path
// against sequential single-profile queries for one 32-candidate ranking
// request (the coalescing claim: S shard RPCs instead of N round trips).
func BenchmarkBatchVsSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunBatchVsSingle(bench.BatchOptions{
			BatchSize: 32, Rounds: 40, Profiles: 300, Instances: 2,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Speedup, "speedup_x")
		b.ReportMetric(rep.AvgFanOut, "rpcs_per_batch")
		b.ReportMetric(float64(rep.BatchAvg.Microseconds()), "batch_us")
		b.ReportMetric(float64(rep.SinglesAvg.Microseconds()), "singles_us")
	}
}

// --- ablation benches -------------------------------------------------

// BenchmarkLRUSharding compares GCache throughput with a single global
// LRU shard versus the paper's sharded design (Fig. 7) under concurrent
// mixed load with continuous eviction pressure.
func BenchmarkLRUSharding(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tbl := model.NewTable("t", model.NewSchema("n"), 1000)
			ps := persist.New(kv.NewMemory(), "t")
			g, err := gcache.New(tbl, ps, gcache.Options{
				MemLimit: 256 << 10, LRUShards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			counts := []int64{1}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				i := 0
				for pb.Next() {
					id := model.ProfileID(rng.Intn(5000) + 1)
					_ = g.Add(id, model.Millis(1000+i), 1, 1, model.FeatureID(i%50), counts)
					if i%64 == 0 {
						g.EvictToWatermark()
					}
					i++
				}
			})
		})
	}
}

// BenchmarkSwapTryLock compares the paper's try_lock-and-skip eviction
// probe (Fig. 8) against a blocking-lock probe when a fraction of
// candidate profiles is held by concurrent writers.
func BenchmarkSwapTryLock(b *testing.B) {
	setup := func() []*model.Profile {
		profiles := make([]*model.Profile, 64)
		sch := model.NewSchema("n")
		for i := range profiles {
			p := model.NewProfile(model.ProfileID(i))
			p.Lock()
			_ = p.Add(sch, 1000, 1000, 1, 1, 1, []int64{1})
			p.Unlock()
			profiles[i] = p
		}
		return profiles
	}
	// Hold a quarter of the profiles "busy" from a background goroutine
	// that cycles their locks with small critical sections.
	runContention := func(profiles []*model.Profile, stop chan struct{}) {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < len(profiles); i += 4 {
					p := profiles[i]
					p.Lock()
					time.Sleep(20 * time.Microsecond)
					p.Unlock()
				}
			}
		}()
	}
	b.Run("trylock-skip", func(b *testing.B) {
		profiles := setup()
		stop := make(chan struct{})
		runContention(profiles, stop)
		defer close(stop)
		b.ResetTimer()
		processed := 0
		for i := 0; i < b.N; i++ {
			p := profiles[i%len(profiles)]
			if p.TryLock() {
				processed++
				p.Unlock()
			} // contended: skip to the next entry (Fig. 8)
		}
		b.ReportMetric(float64(processed)/float64(b.N)*100, "processed_pct")
	})
	b.Run("blocking", func(b *testing.B) {
		profiles := setup()
		stop := make(chan struct{})
		runContention(profiles, stop)
		defer close(stop)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := profiles[i%len(profiles)]
			p.Lock() // waits behind the writer
			p.Unlock()
		}
		b.ReportMetric(100, "processed_pct")
	})
}

// BenchmarkPersistGranularity compares flushing a large mutated profile in
// bulk (whole value) versus fine-grained incremental slice values
// (Figs 12-13): after a head-slice write, the fine-grained mode rewrites
// one small value instead of the entire profile.
func BenchmarkPersistGranularity(b *testing.B) {
	build := func() *model.Profile {
		sch := model.NewSchema("like", "comment", "share")
		p := model.NewProfile(1)
		p.Lock()
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 120; i++ {
			base := model.Millis(1000 + i*3_600_000)
			for f := 0; f < 40; f++ {
				_ = p.Add(sch, base+model.Millis(f), 3_600_000,
					model.SlotID(rng.Intn(4)), model.TypeID(rng.Intn(2)),
					model.FeatureID(rng.Intn(100_000)), []int64{1, 0, 1})
			}
		}
		p.Unlock()
		return p
	}
	sch := model.NewSchema("like", "comment", "share")
	for _, mode := range []string{"bulk", "fine-incremental"} {
		b.Run(mode, func(b *testing.B) {
			p := build()
			ps := persist.New(kv.NewMemory(), "t")
			if mode == "bulk" {
				ps.Mode = persist.Bulk
				ps.SplitThreshold = 0 // never auto-split
			} else {
				ps.Mode = persist.FineGrained
			}
			p.RLock()
			if _, err := ps.Save(p); err != nil {
				b.Fatal(err)
			}
			p.RUnlock()
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p.Lock()
				// Mutate only the head slice, merging into one fixed FID
				// so the profile's shape stays constant across iterations
				// (a growing head would blur the granularity comparison).
				_ = p.Add(sch, p.Slices()[0].Start+1, 3_600_000, 1, 1, 1, []int64{1, 0, 0})
				p.Unlock()
				b.StartTimer()
				p.RLock()
				n, err := ps.Save(p)
				p.RUnlock()
				if err != nil {
					b.Fatal(err)
				}
				bytes += int64(n)
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes_per_flush")
		})
	}
}

// BenchmarkCodecSnappy compares persisted profile size and speed with and
// without compression (§III-E).
func BenchmarkCodecSnappy(b *testing.B) {
	sch := model.NewSchema("like", "comment", "share")
	p := model.NewProfile(1)
	p.Lock()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		_ = p.Add(sch, model.Millis(1000+rng.Intn(3_600_000)), 60_000,
			model.SlotID(rng.Intn(4)), model.TypeID(rng.Intn(2)),
			model.FeatureID(rng.Intn(2000)), []int64{1, 0, 2})
	}
	p.Unlock()
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "snappy"
		}
		b.Run(name, func(b *testing.B) {
			ps := persist.New(kv.NewMemory(), "t")
			ps.Compress = compress
			var size int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.RLock()
				n, err := ps.Save(p)
				p.RUnlock()
				if err != nil {
					b.Fatal(err)
				}
				size = n
			}
			b.ReportMetric(float64(size), "stored_bytes")
		})
	}
}

// BenchmarkPartialCompaction compares a full recompaction against the
// load-aware partial pass that skips the coarsest band (§III-D).
func BenchmarkPartialCompaction(b *testing.B) {
	dim := config.DefaultTimeDimension()
	sch := model.NewSchema("n")
	const day = model.Millis(24 * 3600 * 1000)
	now := 400 * day
	build := func() *model.Profile {
		rng := rand.New(rand.NewSource(5))
		p := model.NewProfile(1)
		p.Lock()
		for i := 0; i < 4000; i++ {
			age := model.Millis(rng.Int63n(int64(360 * day)))
			_ = p.Add(sch, now-age, 1000, 1, 1, model.FeatureID(rng.Intn(300)), []int64{1})
		}
		p.Unlock()
		return p
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := build()
			b.StartTimer()
			p.Lock()
			compact.CompactProfile(p, sch, dim, now)
			p.Unlock()
		}
	})
	b.Run("partial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := build()
			b.StartTimer()
			p.Lock()
			compact.PartialCompactProfile(p, sch, dim, now)
			p.Unlock()
		}
	})
}

// BenchmarkBatchedWrites compares add_profile one-at-a-time against the
// batched add_profiles API over loopback RPC (§II-B1).
func BenchmarkBatchedWrites(b *testing.B) {
	const batch = 16
	for _, batched := range []bool{false, true} {
		name := "single"
		if batched {
			name = fmt.Sprintf("batch=%d", batch)
		}
		b.Run(name, func(b *testing.B) {
			env, err := bench.NewEnv(bench.EnvOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			now := env.Clock.Now()
			entries := make([]wire.AddEntry, batch)
			for i := range entries {
				entries[i] = env.Gen.WriteEntry(now)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := model.ProfileID(i%500 + 1)
				if batched {
					if err := env.Client.Add(bench.TableName, id, entries...); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, e := range entries {
						if err := env.Client.Add(bench.TableName, id, e); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			// Both variants move batch entries per iteration; ns/op is
			// directly comparable.
		})
	}
}
