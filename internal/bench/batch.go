package bench

import (
	"io"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/wire"
	"ips/internal/workload"
)

// BatchOptions scales the batch-vs-single comparison: one ranking request
// needing features for BatchSize candidate profiles, served either as
// BatchSize sequential single-profile RPCs or as one QueryBatch coalesced
// into one RPC per owning shard.
type BatchOptions struct {
	// BatchSize is the sub-queries per ranking request; default 32.
	BatchSize int
	// Rounds is how many ranking requests each mode serves; default 60.
	Rounds int
	// Profiles in the corpus; default 400.
	Profiles int
	// Instances (shards) in the single region; default 2.
	Instances int
	// WritesPerProfile seeds history; default 20.
	WritesPerProfile int
}

func (o *BatchOptions) fill() {
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.Rounds <= 0 {
		o.Rounds = 60
	}
	if o.Profiles <= 0 {
		o.Profiles = 400
	}
	if o.Instances <= 0 {
		o.Instances = 2
	}
	if o.WritesPerProfile <= 0 {
		o.WritesPerProfile = 20
	}
}

// BatchReport is the measured comparison.
type BatchReport struct {
	BatchSize, Instances   int
	SinglesAvg, SinglesP99 time.Duration // per ranking request (N RPCs)
	BatchAvg, BatchP99     time.Duration // per ranking request (1 batch)
	// Speedup is SinglesAvg / BatchAvg; > 1 means batching wins.
	Speedup float64
	// AvgFanOut is the mean shard RPCs one batch cost; the coalescing
	// claim is AvgFanOut ≈ Instances while BatchSize RPCs were saved.
	AvgFanOut float64
}

// RunBatchVsSingle measures a candidate-ranking read pattern (§II, §IV:
// features for many profiles per user request) over loopback TCP in both
// shapes. The shape being reproduced: batching N sub-queries into S shard
// RPCs beats N sequential round trips roughly by the round-trip factor
// N/S, with the win growing with batch size.
func RunBatchVsSingle(opts BatchOptions, w io.Writer) (*BatchReport, error) {
	opts.fill()
	clock := NewClock()
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"local"},
		InstancesPerRegion: opts.Instances,
		Clock:              clock.Now,
		Tables:             map[string]*model.Schema{TableName: model.NewSchema("like", "comment", "share")},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	c, err := client.New(client.Options{
		Caller: "bench", Service: "ips", Region: "local",
		Registry: cl.Registry, CallTimeout: 5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.RefreshNow()

	gen := workload.New(workload.Options{Seed: 11, Profiles: uint64(opts.Profiles), Actions: 3})
	now := clock.Now()
	for id := model.ProfileID(1); id <= model.ProfileID(opts.Profiles); id++ {
		entries := make([]wire.AddEntry, opts.WritesPerProfile)
		for j := range entries {
			en := gen.WriteEntry(now)
			en.Timestamp = now - model.Millis(int64(j)*3_600_000/int64(opts.WritesPerProfile)) - 1
			entries[j] = en
		}
		if err := c.Add(TableName, id, entries...); err != nil {
			return nil, err
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
	}

	// Pre-draw the request stream once so both modes serve identical work.
	reqs := make([][]wire.SubQuery, opts.Rounds)
	for r := range reqs {
		subs := make([]wire.SubQuery, opts.BatchSize)
		for i := range subs {
			q := gen.Query(TableName)
			q.ProfileID = gen.UniformProfileID()
			subs[i] = wire.SubQuery{Op: wire.OpTopK, Query: *q}
		}
		reqs[r] = subs
	}

	// Warm connections and the server-side caches for both modes so the
	// measured distributions compare steady-state behaviour, not dial cost.
	for i := range reqs[0] {
		req := reqs[0][i].Query
		if _, err := c.TopK(&req); err != nil {
			return nil, err
		}
	}
	if _, err := c.QueryBatch(reqs[0]); err != nil {
		return nil, err
	}

	var singles, batch metrics.Histogram
	for _, subs := range reqs {
		t0 := time.Now()
		for i := range subs {
			req := subs[i].Query
			if _, err := c.TopK(&req); err != nil {
				return nil, err
			}
		}
		singles.Observe(time.Since(t0))
	}
	rpcs0 := c.BatchRPCs.Value()
	for _, subs := range reqs {
		t0 := time.Now()
		if _, err := c.QueryBatch(subs); err != nil {
			return nil, err
		}
		batch.Observe(time.Since(t0))
	}
	fanOut := float64(c.BatchRPCs.Value()-rpcs0) / float64(opts.Rounds)

	rep := &BatchReport{
		BatchSize: opts.BatchSize, Instances: opts.Instances,
		SinglesAvg: singles.Mean(), SinglesP99: singles.P99(),
		BatchAvg: batch.Mean(), BatchP99: batch.P99(),
		Speedup:   float64(singles.Mean()) / float64(batch.Mean()),
		AvgFanOut: fanOut,
	}
	fprintf(w, "Batch vs single — %d-profile ranking request, %d shard(s)\n", opts.BatchSize, opts.Instances)
	fprintf(w, "%-22s %-12s %-12s %-8s\n", "mode", "avg", "p99", "rpcs/req")
	fprintf(w, "%-22s %-12s %-12s %-8d\n", "sequential singles", ms(rep.SinglesAvg), ms(rep.SinglesP99), opts.BatchSize)
	fprintf(w, "%-22s %-12s %-12s %-8.1f\n", "coalesced batch", ms(rep.BatchAvg), ms(rep.BatchP99), rep.AvgFanOut)
	fprintf(w, "\nshape: one batch costs ~%.1f RPCs instead of %d; batch is %.1fx faster per request\n",
		rep.AvgFanOut, opts.BatchSize, rep.Speedup)
	if rep.Speedup <= 1 {
		fprintf(w, "WARNING: batching did not win at this scale\n")
	}
	return rep, nil
}
