package bench

import (
	"errors"
	"io"
	"math/rand"

	"ips/internal/config"
	"ips/internal/kv"
	"ips/internal/legacy"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/server"
	"ips/internal/wire"
)

// LambdaOptions scales the baseline comparison against the legacy
// Lambda-architecture profile services of §I / Fig. 2.
type LambdaOptions struct {
	// Users in the corpus; default 200.
	Users int
	// Days of simulated activity; default 10.
	Days int
	// ClicksPerUserPerDay; default 30.
	ClicksPerUserPerDay int
	// ShortCapacity is the legacy recent-click list size; default 100
	// (the paper's "user's last 100 clicks").
	ShortCapacity int
}

func (o *LambdaOptions) fill() {
	if o.Users <= 0 {
		o.Users = 200
	}
	if o.Days <= 0 {
		o.Days = 10
	}
	if o.ClicksPerUserPerDay <= 0 {
		o.ClicksPerUserPerDay = 30
	}
	if o.ShortCapacity <= 0 {
		o.ShortCapacity = 100
	}
}

// LambdaReport compares the two designs.
type LambdaReport struct {
	// FreshnessIPSMillis / FreshnessLegacyMillis: simulated time between
	// an action and its visibility in long-horizon features.
	FreshnessIPSMillis    int64
	FreshnessLegacyMillis int64
	// Window accuracy for a 7-day top-K: fraction of ground-truth counts
	// recovered (recall) and, for the long path, the overcount from its
	// inability to scope to the window (reported counts outside it).
	WindowRecallIPS   float64
	WindowRecallShort float64
	WindowRecallLong  float64
	WindowExcessLong  float64
	// LookupsPerShortQuery is the legacy read amplification (content
	// store point reads per short-term query); IPS does zero.
	LookupsPerShortQuery float64
	// BatchEventsScanned is the legacy daily job's cumulative scan cost.
	BatchEventsScanned int64
}

// RunLambda drives the same click stream through IPS and through the
// legacy two-service stack, then asks both the questions the paper's §I
// says motivated IPS: fresh long-horizon features, arbitrary windows, and
// feature computation without client-side joins.
func RunLambda(opts LambdaOptions, w io.Writer) (*LambdaReport, error) {
	opts.fill()
	const day = model.Millis(24 * 3600 * 1000)
	clock := NewClock()

	// IPS side: one instance, isolation on (writes visible after merge).
	cfgStore, err := config.NewStore(config.Default())
	if err != nil {
		return nil, err
	}
	inst, err := server.New(server.Options{
		Name: "ips", Region: "local", Store: kv.NewMemory(),
		Config: cfgStore, Clock: clock.Now,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = inst.Close() }()
	if err := inst.CreateTable("up", model.NewSchema("click")); err != nil {
		return nil, err
	}

	// Legacy side.
	leg := legacy.NewService(opts.ShortCapacity, 100)
	const items = 500
	for id := uint64(1); id <= items; id++ {
		leg.Contents.Put(id, legacy.ContentInfo{Slot: 1, Type: 2})
	}

	// Ground truth: per (user, item) click counts inside the exact 7-day
	// window ending at the measurement instant (mid final half-day).
	type key struct {
		user model.ProfileID
		item uint64
	}
	truth := make(map[key]int64)
	endNow := clock.Now() + model.Millis(opts.Days)*day + day/2
	windowFrom := endNow - 7*day

	rng := rand.New(rand.NewSource(99))
	click := func(user model.ProfileID, item uint64, ts model.Millis) error {
		leg.RecordClick(user, item, item, ts)
		err := inst.Add("bench", "up", user, []wire.AddEntry{{
			Timestamp: ts, Slot: 1, Type: 2, FID: item, Counts: []int64{1},
		}})
		return err
	}

	// Simulate the days: traffic, then the nightly batch at each
	// midnight (the legacy long-term path's only refresh). The final
	// half-day of traffic lands after the last batch, as any mid-day
	// measurement would see it.
	for d := 0; d < opts.Days; d++ {
		for u := 1; u <= opts.Users; u++ {
			for c := 0; c < opts.ClicksPerUserPerDay; c++ {
				ts := clock.Now() + model.Millis(rng.Int63n(int64(day)))
				item := uint64(rng.Intn(items)) + 1
				if err := click(model.ProfileID(u), item, ts); err != nil {
					return nil, err
				}
				if ts >= windowFrom {
					truth[key{model.ProfileID(u), item}]++
				}
			}
		}
		clock.Advance(day)
		leg.RunDailyBatch(clock.Now())
		inst.MergeAll()
	}
	// Half a day of post-batch traffic (the mid-day state).
	for u := 1; u <= opts.Users; u++ {
		for c := 0; c < opts.ClicksPerUserPerDay/2; c++ {
			ts := clock.Now() + model.Millis(rng.Int63n(int64(day/2)))
			item := uint64(rng.Intn(items)) + 1
			if err := click(model.ProfileID(u), item, ts); err != nil {
				return nil, err
			}
			if ts >= windowFrom {
				truth[key{model.ProfileID(u), item}]++
			}
		}
	}
	clock.Advance(day / 2)
	inst.MergeAll()
	now := clock.Now()
	if now != endNow {
		return nil, errClockDrift
	}

	rep := &LambdaReport{}

	// --- Freshness: a click lands now; when does each system's
	// long-horizon view reflect it?
	probeUser, probeItem := model.ProfileID(opts.Users+1), uint64(7)
	if err := click(probeUser, probeItem, now); err != nil {
		return nil, err
	}
	inst.MergeAll() // IPS visibility: the next merge (seconds in prod)
	rep.FreshnessIPSMillis = int64(config.Default().MergeInterval.Millis())
	resp, err := inst.Query(&wire.QueryRequest{
		Caller: "bench", Table: "up", ProfileID: probeUser, Slot: 1, Type: 2,
		RangeKind: query.Current, Span: int64(30 * day), SortBy: query.ByAction, K: 1,
	})
	if err != nil {
		return nil, err
	}
	if len(resp.Features) == 0 {
		rep.FreshnessIPSMillis = -1 // should not happen
	}
	// Legacy long-term: invisible until the next nightly batch.
	if got := leg.TopKLong(probeUser, 1, 2, 1); len(got) != 0 {
		rep.FreshnessLegacyMillis = 0
	} else {
		rep.FreshnessLegacyMillis = int64(day) // next midnight
	}

	// --- 7-day window recall: how much of the ground truth does each
	// path recover? IPS answers the window exactly; legacy short misses
	// whatever aged out of the recent list; legacy long cannot scope to
	// 7 days at all (it returns all-history counts, overcounting) and
	// misses the final day (after the last batch).
	var truthTotal, ipsGot, shortGot, longGot, longReported int64
	from := now - 7*day
	for u := 1; u <= opts.Users; u++ {
		user := model.ProfileID(u)
		resp, err := inst.Query(&wire.QueryRequest{
			Caller: "bench", Table: "up", ProfileID: user, Slot: 1, Type: 2,
			RangeKind: query.Absolute, From: from, To: now + 1,
			SortBy: query.ByFeatureID, K: 0,
		})
		if err != nil {
			return nil, err
		}
		ipsCounts := map[uint64]int64{}
		for _, f := range resp.Features {
			ipsCounts[f.FID] = f.Counts[0]
		}
		shortCounts := map[uint64]int64{}
		for _, fc := range leg.TopKShort(user, 1, 2, from, 0) {
			shortCounts[fc.FID] = fc.Count
		}
		longCounts := map[uint64]int64{}
		for _, fc := range leg.TopKLong(user, 1, 2, 0) {
			longCounts[fc.FID] = fc.Count
			longReported += fc.Count
		}
		for k2, want := range truth {
			if k2.user != user {
				continue
			}
			truthTotal += want
			ipsGot += min64(ipsCounts[k2.item], want)
			shortGot += min64(shortCounts[k2.item], want)
			longGot += min64(longCounts[k2.item], want)
		}
	}
	if truthTotal > 0 {
		rep.WindowRecallIPS = float64(ipsGot) / float64(truthTotal)
		rep.WindowRecallShort = float64(shortGot) / float64(truthTotal)
		rep.WindowRecallLong = float64(longGot) / float64(truthTotal)
	}
	if longReported > 0 {
		rep.WindowExcessLong = float64(longReported-longGot) / float64(longReported)
	}

	// --- Read amplification of the short path.
	before := leg.Contents.Lookups
	const probes = 50
	for u := 1; u <= probes; u++ {
		leg.TopKShort(model.ProfileID(u), 1, 2, from, 10)
	}
	rep.LookupsPerShortQuery = float64(leg.Contents.Lookups-before) / probes
	rep.BatchEventsScanned = leg.Batch.EventsScanned

	fprintf(w, "Lambda baseline comparison (§I / Fig. 2: the two-service design IPS replaced)\n\n")
	fprintf(w, "%-38s %-16s %-16s\n", "question", "IPS", "legacy lambda")
	fprintf(w, "%-38s %-16s %-16s\n", "long-horizon feature freshness",
		fmtMillis(rep.FreshnessIPSMillis), fmtMillis(rep.FreshnessLegacyMillis))
	fprintf(w, "%-38s %-16.3f short: %.3f / long: %.3f\n", "7-day window recall (1.0 = exact)",
		rep.WindowRecallIPS, rep.WindowRecallShort, rep.WindowRecallLong)
	fprintf(w, "%-38s %-16.3f long path: %.3f outside the window\n", "7-day window overcount", 0.0, rep.WindowExcessLong)
	fprintf(w, "%-38s %-16d %.0f content lookups/query\n", "query-time joins", 0, rep.LookupsPerShortQuery)
	fprintf(w, "%-38s %-16s %d events rescanned by daily batches\n", "offline compute", "none", rep.BatchEventsScanned)
	fprintf(w, "\nshape: IPS answers arbitrary windows exactly and fresh; the legacy pair is stale by up to a day,\n")
	fprintf(w, "cannot express intermediate windows, and pays per-click joins plus full-history batch rescans (§I).\n")
	return rep, nil
}

// errClockDrift guards the experiment's time arithmetic.
var errClockDrift = errors.New("bench: lambda clock drifted from plan")

func fmtMillis(ms int64) string {
	switch {
	case ms < 0:
		return "broken"
	case ms >= 3_600_000:
		return itoa(ms/3_600_000) + "h"
	case ms >= 1000:
		return itoa(ms/1000) + "s"
	default:
		return itoa(ms) + "ms"
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
