// Hot-key contention experiment (batch architecture v2): quantifies the
// three server-side defenses against Zipf-headed read storms —
// single-flight cache fills, replicated hot-profile read slots, and the
// shared-structure batch response encoding.
package bench

import (
	"context"
	"io"
	"sort"
	"sync"
	"time"

	"ips/internal/client"
	"ips/internal/config"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/persist"
	"ips/internal/query"
	"ips/internal/rpc"
	"ips/internal/wire"
)

// HotkeyOptions scales the hot-key experiment.
type HotkeyOptions struct {
	// ColdKeys is the distinct cold profiles the single-flight phase
	// storms; default 32.
	ColdKeys int
	// ReadersPerKey is the concurrent readers aimed at each cold key;
	// default 8.
	ReadersPerKey int
	// Readers is the concurrent reader goroutines in the hot-slot phase;
	// default 8.
	Readers int
	// ReadsPerReader is each reader's operation count; default 2000.
	ReadsPerReader int
	// Profiles is the keyspace of the hot-slot and batch phases; default
	// 256.
	Profiles int
	// WritesPerProfile seeds history; default 48 (rich profiles so
	// responses carry a realistic feature count).
	WritesPerProfile int
	// HotSlots / HotPromoteAfter configure the treatment cache; defaults
	// 8 and 16.
	HotSlots, HotPromoteAfter int
	// DupFactors are the batch duplication factors compared in the wire
	// phase; default {1, 8, 64}.
	DupFactors []int
	// BatchRounds is the batch RPCs per (dup, encoding) cell; default 50.
	BatchRounds int
	// BatchSize is the sub-queries per batch; default 64.
	BatchSize int
}

func (o *HotkeyOptions) fill() {
	if o.ColdKeys <= 0 {
		o.ColdKeys = 32
	}
	if o.ReadersPerKey <= 0 {
		o.ReadersPerKey = 8
	}
	if o.Readers <= 0 {
		o.Readers = 8
	}
	if o.ReadsPerReader <= 0 {
		o.ReadsPerReader = 2000
	}
	if o.Profiles <= 0 {
		o.Profiles = 256
	}
	if o.WritesPerProfile <= 0 {
		o.WritesPerProfile = 48
	}
	if o.HotSlots <= 0 {
		o.HotSlots = 8
	}
	if o.HotPromoteAfter <= 0 {
		// Above the per-key read count of the storm's uniform tail, so
		// only the Zipf head promotes and promotion stays off the
		// common path.
		o.HotPromoteAfter = 32
	}
	if len(o.DupFactors) == 0 {
		o.DupFactors = []int{1, 8, 64}
	}
	if o.BatchRounds <= 0 {
		o.BatchRounds = 50
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
}

// HotkeyDup is the wire-bytes comparison at one duplication factor.
type HotkeyDup struct {
	Dup          int
	V1BytesPerOp int64 // total wire bytes per batch round, v1 encoding
	V2BytesPerOp int64 // same, shared-structure v2
	Reduction    float64
}

// HotkeyReport is the measured result of all three phases.
type HotkeyReport struct {
	// Phase A: single-flight.
	ColdKeys          int
	KVReadsPerColdKey float64 // the claim: exactly 1
	LoadWaits         int64   // requests that shared another's load

	// Phase B: hot-slot p99 under a Zipf-headed read storm with
	// interleaved writes.
	BaseAvg, BaseP99 time.Duration // HotSlots = 0
	HotAvg, HotP99   time.Duration // HotSlots on
	HotHits          int64
	HotPromotions    int64

	// Phase C: batch wire bytes, v1 vs v2, per duplication factor.
	Dups []HotkeyDup
}

// RunHotkey measures batch architecture v2 end to end. Phase A storms
// cold keys through a deliberately slow store and counts KV reads per
// key — single-flight makes it exactly one however many readers collide.
// Phase B aims a Zipf-headed read storm with interleaved writes at one
// instance twice — hot slots off, then on — and compares read p99.
// Phase C issues identical batches over loopback RPC under the v1 and v2
// response encodings at increasing duplication factors and compares
// total wire bytes per request.
func RunHotkey(opts HotkeyOptions, w io.Writer) (*HotkeyReport, error) {
	opts.fill()
	rep := &HotkeyReport{ColdKeys: opts.ColdKeys}

	if err := runHotkeySingleFlight(opts, rep); err != nil {
		return nil, err
	}
	if err := runHotkeySlots(opts, rep); err != nil {
		return nil, err
	}
	if err := runHotkeyWire(opts, rep); err != nil {
		return nil, err
	}

	fprintf(w, "Hot-key contention — batch architecture v2\n\n")
	fprintf(w, "single-flight: %d cold keys x %d concurrent readers -> %.2f KV reads/key (%d loads shared)\n",
		rep.ColdKeys, opts.ReadersPerKey, rep.KVReadsPerColdKey, rep.LoadWaits)
	fprintf(w, "\nhot slots (%d readers x %d reads, Zipf head, writer interleaved):\n", opts.Readers, opts.ReadsPerReader)
	fprintf(w, "%-22s %-12s %-12s\n", "mode", "avg", "p99")
	fprintf(w, "%-22s %-12s %-12s\n", "baseline (0 slots)", ms(rep.BaseAvg), ms(rep.BaseP99))
	fprintf(w, "%-22s %-12s %-12s  hits=%d promotions=%d\n", "hot slots", ms(rep.HotAvg), ms(rep.HotP99), rep.HotHits, rep.HotPromotions)
	fprintf(w, "\nbatch wire bytes per %d-sub-query request (v1 vs shared-structure v2):\n", opts.BatchSize)
	fprintf(w, "%-8s %-12s %-12s %-10s\n", "dup", "v1 bytes", "v2 bytes", "reduction")
	for _, d := range rep.Dups {
		fprintf(w, "%-8d %-12d %-12d %.1f%%\n", d.Dup, d.V1BytesPerOp, d.V2BytesPerOp, 100*d.Reduction)
	}
	fprintf(w, "\nshape: one KV read per cold key regardless of reader count; hot-slot p99 at or\n")
	fprintf(w, "below baseline under contention; v2 bytes shrink with the duplication factor\n")
	return rep, nil
}

// runHotkeySingleFlight is phase A: all readers of a cold key released at
// once against a slow store; single-flight must collapse them to one
// storage read per key.
func runHotkeySingleFlight(opts HotkeyOptions, rep *HotkeyReport) error {
	store := kv.NewMemory()
	schema := model.NewSchema("like", "comment", "share")
	ps := persist.New(store, TableName)

	seed, err := gcache.New(model.NewTable(TableName, schema, 1000), ps, gcache.Options{})
	if err != nil {
		return err
	}
	for id := model.ProfileID(1); id <= model.ProfileID(opts.ColdKeys); id++ {
		if err := seed.Add(id, 5000, 1, 1, model.FeatureID(id%50+1), []int64{1, 0, 0}); err != nil {
			return err
		}
	}
	if err := seed.FlushAll(); err != nil {
		return err
	}

	g, err := gcache.New(model.NewTable(TableName, schema, 1000), ps, gcache.Options{})
	if err != nil {
		return err
	}
	// A slow store widens the window misses must collide in, modelling
	// the 2-4ms KV round trip of Table II.
	store.BeforeOp = func(op, key string) {
		if op == "get" {
			time.Sleep(2 * time.Millisecond)
		}
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, opts.ColdKeys*opts.ReadersPerKey)
	for id := model.ProfileID(1); id <= model.ProfileID(opts.ColdKeys); id++ {
		for r := 0; r < opts.ReadersPerKey; r++ {
			wg.Add(1)
			go func(id model.ProfileID) {
				defer wg.Done()
				<-start
				if _, _, _, err := g.GetForRead(context.Background(), id); err != nil {
					errCh <- err
				}
			}(id)
		}
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	st := g.Stats()
	rep.KVReadsPerColdKey = float64(g.Loads.Value()) / float64(opts.ColdKeys)
	rep.LoadWaits = st.LoadWaits
	return nil
}

// hotkeyQuery is the fixed read the hot-slot storm issues.
func hotkeyQuery(id model.ProfileID) *wire.QueryRequest {
	return &wire.QueryRequest{
		Caller: "bench", Table: TableName, ProfileID: id, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 24 * 3_600_000,
		SortBy: query.ByAction, Action: "like", K: 50,
	}
}

// runHotkeySlots is phase B: the same Zipf-headed read storm with an
// interleaved writer, served twice — without and with hot slots.
func runHotkeySlots(opts HotkeyOptions, rep *HotkeyReport) error {
	// Write isolation off: writes journal and apply under the profile's
	// exclusive lock, the §III-F contention hot slots exist to shield
	// readers from. Baseline readers of a head key stall behind every
	// write's lock hold; hot-slot readers keep serving the pre-write
	// replica until the write acks (invalidation is the last step before
	// ack), so the same storm misses the stall entirely.
	cfg := config.Default()
	cfg.WriteIsolation = false
	run := func(cache gcache.Options) ([]time.Duration, gcache.Stats, error) {
		env, err := NewEnv(EnvOptions{Cache: cache, Config: &cfg})
		if err != nil {
			return nil, gcache.Stats{}, err
		}
		defer env.Close()
		if err := env.Prefill(opts.Profiles, opts.WritesPerProfile, 24*3_600_000); err != nil {
			return nil, gcache.Stats{}, err
		}

		stop := make(chan struct{})
		var writerWg sync.WaitGroup
		writerWg.Add(1)
		go func() { // writer hammering the Zipf head: exclusive-lock pressure
			defer writerWg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := model.ProfileID(i%4 + 1)
				// A batched add lengthens the exclusive-lock section —
				// the contention baseline readers feel and hot-slot
				// readers dodge.
				entries := make([]wire.AddEntry, 64)
				for j := range entries {
					entries[j] = wire.AddEntry{
						Timestamp: env.Clock.Now() - 1000, Slot: 1, Type: 1,
						FID: model.FeatureID((i*64+j)%50 + 1), Counts: []int64{1, 0, 0},
					}
				}
				_ = env.Instance.Add("bench", TableName, id, entries)
				i++
				time.Sleep(2 * time.Millisecond)
			}
		}()

		// Exact samples, not the log-bucketed metrics.Histogram: the
		// tail difference under test is finer than a bucket.
		var mu sync.Mutex
		lat := make([]time.Duration, 0, opts.Readers*opts.ReadsPerReader)
		var readerWg sync.WaitGroup
		errCh := make(chan error, opts.Readers)
		for r := 0; r < opts.Readers; r++ {
			readerWg.Add(1)
			go func(r int) {
				defer readerWg.Done()
				for i := 0; i < opts.ReadsPerReader; i++ {
					// Zipf-ish head focus without a shared generator:
					// 3 of 4 reads hit the 4-key head, the rest spread.
					id := model.ProfileID(i%4 + 1)
					if i%4 == 3 {
						id = model.ProfileID((i*7+r)%opts.Profiles + 1)
					}
					t0 := time.Now()
					if _, err := env.Instance.QueryCtx(context.Background(), hotkeyQuery(id)); err != nil {
						errCh <- err
						return
					}
					d := time.Since(t0)
					mu.Lock()
					lat = append(lat, d)
					mu.Unlock()
				}
			}(r)
		}
		readerWg.Wait()
		close(stop)
		writerWg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, gcache.Stats{}, err
		}
		cs, err := env.Instance.CacheStats(TableName)
		if err != nil {
			return nil, gcache.Stats{}, err
		}
		return lat, cs, nil
	}

	// Three interleaved trials per mode, medians reported: a single
	// trial on a busy box is hostage to scheduler drift, and
	// interleaving keeps slow minutes from charging one mode only.
	const trials = 3
	var baseAvg, baseP99, hotAvg, hotP99 []time.Duration
	var cs gcache.Stats
	for i := 0; i < trials; i++ {
		base, _, err := run(gcache.Options{})
		if err != nil {
			return err
		}
		a, p := exactMeanP99(base)
		baseAvg, baseP99 = append(baseAvg, a), append(baseP99, p)

		hot, s, err := run(gcache.Options{HotSlots: opts.HotSlots, HotPromoteAfter: opts.HotPromoteAfter})
		if err != nil {
			return err
		}
		a, p = exactMeanP99(hot)
		hotAvg, hotP99 = append(hotAvg, a), append(hotP99, p)
		cs.HotHits += s.HotHits
		cs.HotPromotions += s.HotPromotions
	}
	rep.BaseAvg, rep.BaseP99 = median(baseAvg), median(baseP99)
	rep.HotAvg, rep.HotP99 = median(hotAvg), median(hotP99)
	rep.HotHits, rep.HotPromotions = cs.HotHits, cs.HotPromotions
	return nil
}

// median returns the middle value of an odd-length sample set.
func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// exactMeanP99 computes the mean and the exact (sorted-sample) p99.
func exactMeanP99(samples []time.Duration) (mean, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return sum / time.Duration(len(sorted)), sorted[len(sorted)*99/100]
}

// runHotkeyWire is phase C: identical batches over loopback RPC, v1 vs
// v2 response encoding, at increasing duplication factors; compares
// total wire bytes (requests are identical, so the delta is the
// response encoding).
func runHotkeyWire(opts HotkeyOptions, rep *HotkeyReport) error {
	env, err := NewEnv(EnvOptions{Cache: gcache.Options{HotSlots: opts.HotSlots, HotPromoteAfter: opts.HotPromoteAfter}})
	if err != nil {
		return err
	}
	defer env.Close()
	if err := env.Prefill(opts.Profiles, opts.WritesPerProfile, 24*3_600_000); err != nil {
		return err
	}
	// Give the queried profiles a realistic feature breadth (the
	// generator's Zipf feature draw collapses onto a few FIDs): 40
	// distinct features matching the benchmark query, so each response
	// carries ranker-sized payloads.
	for id := model.ProfileID(1); id <= model.ProfileID(opts.BatchSize); id++ {
		entries := make([]wire.AddEntry, 40)
		for j := range entries {
			entries[j] = wire.AddEntry{
				Timestamp: env.Clock.Now() - model.Millis(j+1)*60_000,
				Slot:      1, Type: 1,
				FID: model.FeatureID(100 + j), Counts: []int64{int64(j + 1), 1, 0},
			}
		}
		if err := env.Instance.Add("bench", TableName, id, entries); err != nil {
			return err
		}
	}
	env.Instance.MergeAll()

	v1c, err := client.New(client.Options{
		Caller: "bench", Service: "ips", Region: "local",
		Registry: env.Registry, CallTimeout: 5 * time.Second,
		BatchV1: true,
	})
	if err != nil {
		return err
	}
	defer v1c.Close()
	v1c.RefreshNow()
	env.Client.RefreshNow()

	for _, dup := range opts.DupFactors {
		distinct := opts.BatchSize / dup
		if distinct < 1 {
			distinct = 1
		}
		subs := make([]wire.SubQuery, 0, distinct*dup)
		for d := 0; d < distinct; d++ {
			q := hotkeyQuery(model.ProfileID(d + 1))
			for k := 0; k < dup; k++ {
				subs = append(subs, wire.SubQuery{Op: wire.OpTopK, Query: *q})
			}
		}
		measure := func(c *client.Client) (int64, error) {
			if _, err := c.QueryBatch(subs); err != nil { // warm
				return 0, err
			}
			before := rpc.IOStats()
			for r := 0; r < opts.BatchRounds; r++ {
				if _, err := c.QueryBatch(subs); err != nil {
					return 0, err
				}
			}
			delta := rpc.IOStats().Sub(before)
			// Client and server share the process, so BytesWritten counts
			// each frame once (request by the client, response by the
			// server): total wire bytes per round.
			return int64(delta.BytesWritten) / int64(opts.BatchRounds), nil
		}
		v1b, err := measure(v1c)
		if err != nil {
			return err
		}
		v2b, err := measure(env.Client)
		if err != nil {
			return err
		}
		rep.Dups = append(rep.Dups, HotkeyDup{
			Dup: dup, V1BytesPerOp: v1b, V2BytesPerOp: v2b,
			Reduction: 1 - float64(v2b)/float64(v1b),
		})
	}
	return nil
}
