package bench

// The continuous-query experiment (`-exp sub`): update-propagation
// latency of push-based standing queries versus the poll loops they
// replace, at ten thousand standing queries against one instance.
//
// Shape being reproduced: a pushed update arrives event-driven — write
// visibility plus one standing-query evaluation plus one stream frame —
// while a poll loop pays half its interval in expected staleness before
// it even issues the read. And the cost asymmetry is the real story:
// polling N standing queries at interval T costs N/T reads per second
// forever, whereas the hub evaluates only profiles that actually
// changed. The report states both: ack-to-observed latency (push vs
// poll) and the read amplification equal-freshness polling would need.
//
// Method: every profile gets one standing query over a real
// ips.sub.watch RPC stream (the full wire path: notify -> eval ->
// queue -> pump -> frame -> client decode). A tagged write inserts a
// fresh feature ID; the moment a pushed update (or a poll response)
// first contains that FID is the observation time. Background churn
// writes to other watched profiles keep the subscriber index busy while
// the measured events run. The same tagged events then rerun against
// per-profile poll loops at a fixed interval, with the 10k streams
// still open so both phases carry the standing-query load.
//
// Freshness note: the environment runs with write isolation off, so
// notify fires at accept time and the measured push latency is the
// propagation cost itself. With isolation on (the production default)
// both push and poll visibility are bounded below by the merge window
// (§III-F) — the comparison shifts by the same constant on both sides.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/config"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/rpc"
	"ips/internal/sub"
	"ips/internal/wire"
)

// SubscribeOptions scales the continuous-query experiment.
type SubscribeOptions struct {
	// Queries is the number of standing queries, one watched profile
	// each, all held open over RPC streams; default 10_000.
	Queries int
	// Events is the number of measured tagged writes per phase;
	// default 240.
	Events int
	// Measured is how many profiles carry the tagged writes and the
	// poll loops; default 64 (capped at Queries/2 so churn has room).
	Measured int
	// PollInterval is the poll-loop cadence the push path is compared
	// against; default 50ms.
	PollInterval time.Duration
	// ChurnPerEvent is how many background writes land on other watched
	// profiles per measured event, keeping the hub's fan-out busy;
	// default 16.
	ChurnPerEvent int
	// Timeout bounds the wait for any single observation; an expiry
	// counts as a lost update and fails the run. Default 10s.
	Timeout time.Duration
	// Seed fixes the churn randomness; default 1.
	Seed int64
	// OutPath is where the JSON artifact lands; default BENCH_sub.json.
	OutPath string
}

func (o *SubscribeOptions) fill() {
	if o.Queries <= 0 {
		o.Queries = 10_000
	}
	if o.Events <= 0 {
		o.Events = 240
	}
	if o.Measured <= 0 {
		o.Measured = 64
	}
	if o.Measured > o.Queries/2 {
		o.Measured = (o.Queries + 1) / 2
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.ChurnPerEvent < 0 {
		o.ChurnPerEvent = 0
	} else if o.ChurnPerEvent == 0 {
		o.ChurnPerEvent = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.OutPath == "" {
		o.OutPath = "BENCH_sub.json"
	}
}

// SubscribeReport is the artifact written to BENCH_sub.json.
type SubscribeReport struct {
	Queries        int     `json:"standing_queries"`
	Events         int     `json:"events"`
	Measured       int     `json:"measured_profiles"`
	PollIntervalMs float64 `json:"poll_interval_ms"`

	// SetupMs is open-10k-streams to every baseline delivered.
	SetupMs float64 `json:"setup_ms"`

	PushP50 time.Duration `json:"-"`
	PushP99 time.Duration `json:"-"`
	PollP50 time.Duration `json:"-"`
	PollP99 time.Duration `json:"-"`

	PushP50Ms float64 `json:"push_p50_ms"`
	PushP99Ms float64 `json:"push_p99_ms"`
	PollP50Ms float64 `json:"poll_p50_ms"`
	PollP99Ms float64 `json:"poll_p99_ms"`

	// PushEvals counts standing-query evaluations during the push
	// window; PollEquivReadsPerSec is what equal-freshness polling
	// would cost across every standing query, forever.
	PushEvals            int64   `json:"push_evals"`
	PushWindowMs         float64 `json:"push_window_ms"`
	PollReads            int64   `json:"poll_reads"`
	PollWindowMs         float64 `json:"poll_window_ms"`
	PollEquivReadsPerSec float64 `json:"poll_equiv_reads_per_sec"`

	// Hub counters over the whole run (OPERATIONS.md sub_* catalog).
	Pushes  int64 `json:"pushes"`
	Drops   int64 `json:"drops"`
	Resyncs int64 `json:"resyncs"`
	Skips   int64 `json:"skips"`

	// Conservation: Lost counts tagged writes never observed within the
	// timeout; SeqGaps counts per-stream sequence discontinuities. Both
	// must be zero.
	Lost    int `json:"lost"`
	SeqGaps int `json:"seq_gaps"`
}

// tagObserver matches pushed or polled results against the one
// outstanding tagged FID per measured profile.
type tagObserver struct {
	mu      sync.Mutex
	pending map[model.ProfileID]pendingTag
}

type pendingTag struct {
	fid uint64
	ch  chan time.Time
}

func newTagObserver() *tagObserver {
	return &tagObserver{pending: make(map[model.ProfileID]pendingTag)}
}

// expect arms the observer: the next result for pid containing fid
// resolves the returned channel with its observation time.
func (o *tagObserver) expect(pid model.ProfileID, fid uint64) chan time.Time {
	ch := make(chan time.Time, 1)
	o.mu.Lock()
	o.pending[pid] = pendingTag{fid: fid, ch: ch}
	o.mu.Unlock()
	return ch
}

// observe checks one result against the pending tag for pid.
func (o *tagObserver) observe(pid model.ProfileID, features []query.Feature, now time.Time) {
	o.mu.Lock()
	p, ok := o.pending[pid]
	if ok {
		for i := range features {
			if features[i].FID == p.fid {
				delete(o.pending, pid)
				o.mu.Unlock()
				p.ch <- now
				return
			}
		}
	}
	o.mu.Unlock()
}

// tagFIDBase keeps measured feature IDs clear of prefill and churn FIDs.
const tagFIDBase = 1 << 40

// RunSubscribe measures push vs poll update propagation at 10k standing
// queries and writes BENCH_sub.json.
func RunSubscribe(opts SubscribeOptions, w io.Writer) (*SubscribeReport, error) {
	opts.fill()
	cfg := config.Default()
	cfg.WriteIsolation = false // notify at accept time; see freshness note above
	env, err := NewEnv(EnvOptions{Config: &cfg})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if err := env.Prefill(opts.Queries, 4, 3_600_000); err != nil {
		return nil, err
	}
	actions := 3 // EnvOptions default like/comment/share
	hub := env.Instance.Hub()

	rep := &SubscribeReport{
		Queries: opts.Queries, Events: opts.Events, Measured: opts.Measured,
		PollIntervalMs:       float64(opts.PollInterval) / 1e6,
		PollEquivReadsPerSec: float64(opts.Queries) / opts.PollInterval.Seconds(),
	}

	// --- setup: one standing query per profile, all over real streams ---
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	rcs := make([]*rpc.Client, 4)
	for i := range rcs {
		rc := rpc.NewClient(env.Addr)
		rc.PoolSize = 4
		rcs[i] = rc
		defer rc.Close()
	}
	pushObs := newTagObserver()
	var baselines, seqGaps atomic.Int64
	var wg sync.WaitGroup
	streams := make([]*rpc.ClientStream, 0, opts.Queries)
	setupStart := time.Now()
	for id := model.ProfileID(1); id <= model.ProfileID(opts.Queries); id++ {
		pipeline := fmt.Sprintf("source(%s, %d) | slot(1) | topk(64)", TableName, id)
		st, err := rcs[int(id)%len(rcs)].Stream(sctx, wire.MethodSubWatch,
			wire.EncodeSubscribe(&wire.SubscribeRequest{Caller: "bench-sub", Pipeline: pipeline}))
		if err != nil {
			return nil, fmt.Errorf("bench: open stream %d: %w", id, err)
		}
		streams = append(streams, st)
		wg.Add(1)
		go func(pid model.ProfileID, st *rpc.ClientStream) {
			defer wg.Done()
			var lastSeq uint64
			var u wire.SubUpdate
			for {
				raw, err := st.Recv(sctx)
				if err != nil {
					return
				}
				now := time.Now()
				if err := wire.DecodeSubUpdateInto(raw, &u); err != nil {
					return
				}
				// Delivered sequence numbers are gapless per (stream,
				// profile) even across drops; Resync, not a gap, signals
				// loss.
				if u.Seq != lastSeq+1 {
					seqGaps.Add(1)
				}
				lastSeq = u.Seq
				if u.Resync {
					baselines.Add(1)
				}
				pushObs.observe(pid, u.Result.Features, now)
			}
		}(id, st)
	}
	defer func() {
		scancel()
		for _, st := range streams {
			st.Close()
		}
		wg.Wait()
	}()
	for deadline := time.Now().Add(2 * time.Minute); baselines.Load() < int64(opts.Queries); {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: only %d/%d baselines after 2m", baselines.Load(), opts.Queries)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.SetupMs = float64(time.Since(setupStart)) / 1e6

	// Measured events cycle over profiles 1..Measured; churn lands on the
	// rest so it never races a pending tag.
	rng := rand.New(rand.NewSource(opts.Seed))
	churnSpan := opts.Queries - opts.Measured
	churn := func() error {
		for j := 0; j < opts.ChurnPerEvent && churnSpan > 0; j++ {
			pid := model.ProfileID(opts.Measured + 1 + rng.Intn(churnSpan))
			counts := make([]int64, actions)
			counts[rng.Intn(actions)] = 1
			if err := env.Instance.Add("bench-churn", TableName, pid, []wire.AddEntry{{
				Timestamp: env.Clock.Now() - 1000, Slot: 1, Type: 1,
				FID: uint64(1 + rng.Intn(512)), Counts: counts,
			}}); err != nil {
				return err
			}
		}
		return nil
	}
	fidSerial := uint64(0)
	runEvents := func(obs *tagObserver) ([]time.Duration, int, error) {
		samples := make([]time.Duration, 0, opts.Events)
		lost := 0
		for i := 0; i < opts.Events; i++ {
			pid := model.ProfileID(1 + i%opts.Measured)
			fidSerial++
			fid := tagFIDBase + fidSerial
			if err := churn(); err != nil {
				return nil, 0, err
			}
			ch := obs.expect(pid, fid)
			counts := make([]int64, actions)
			counts[0] = 1000 // dominate ByTotal so the tag stays inside topk
			t0 := time.Now()
			if err := env.Client.Add(TableName, pid, wire.AddEntry{
				Timestamp: env.Clock.Now() - 1000, Slot: 1, Type: 1, FID: fid, Counts: counts,
			}); err != nil {
				return nil, 0, err
			}
			select {
			case tr := <-ch:
				samples = append(samples, tr.Sub(t0))
			case <-time.After(opts.Timeout):
				lost++
			}
		}
		return samples, lost, nil
	}

	// --- push phase ---
	evalsBefore := hub.Evals.Value()
	pushStart := time.Now()
	pushSamples, pushLost, err := runEvents(pushObs)
	if err != nil {
		return nil, err
	}
	rep.PushWindowMs = float64(time.Since(pushStart)) / 1e6
	rep.PushEvals = hub.Evals.Value() - evalsBefore

	// --- poll phase: same tagged events, observed by poll loops; the 10k
	// streams stay open so both phases carry the standing-query load ---
	template, err := sub.Parse(fmt.Sprintf("source(%s, 1) | slot(1) | topk(64)", TableName))
	if err != nil {
		return nil, err
	}
	pollObs := newTagObserver()
	pollCtx, pollCancel := context.WithCancel(context.Background())
	var pollReads atomic.Int64
	var pollWG sync.WaitGroup
	for i := 0; i < opts.Measured; i++ {
		pollWG.Add(1)
		go func(pid model.ProfileID) {
			defer pollWG.Done()
			req := template.Req
			req.Table, req.ProfileID = TableName, pid
			t := time.NewTicker(opts.PollInterval)
			defer t.Stop()
			for {
				select {
				case <-pollCtx.Done():
					return
				case <-t.C:
				}
				resp, err := env.Client.TopK(&req)
				pollReads.Add(1)
				if err != nil {
					continue
				}
				pollObs.observe(pid, resp.Features, time.Now())
			}
		}(model.ProfileID(1 + i))
	}
	pollStart := time.Now()
	pollSamples, pollLost, err := runEvents(pollObs)
	pollCancel()
	pollWG.Wait()
	if err != nil {
		return nil, err
	}
	rep.PollWindowMs = float64(time.Since(pollStart)) / 1e6
	rep.PollReads = pollReads.Load()

	rep.Lost = pushLost + pollLost
	rep.SeqGaps = int(seqGaps.Load())
	rep.Pushes = hub.Pushes.Value()
	rep.Drops = hub.Drops.Value()
	rep.Resyncs = hub.Resyncs.Value()
	rep.Skips = hub.Skips.Value()
	if len(pushSamples) > 0 {
		_, rep.PushP99 = exactMeanP99(pushSamples)
		rep.PushP50 = median(pushSamples)
	}
	if len(pollSamples) > 0 {
		_, rep.PollP99 = exactMeanP99(pollSamples)
		rep.PollP50 = median(pollSamples)
	}
	rep.PushP50Ms = float64(rep.PushP50) / 1e6
	rep.PushP99Ms = float64(rep.PushP99) / 1e6
	rep.PollP50Ms = float64(rep.PollP50) / 1e6
	rep.PollP99Ms = float64(rep.PollP99) / 1e6

	f, err := os.Create(opts.OutPath)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close() // encode error wins; close error on the error path is noise
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	fprintf(w, "continuous queries vs polling: %d standing queries over loopback RPC streams\n", rep.Queries)
	fprintf(w, "setup: %d subscriptions baselined in %s\n", rep.Queries, ms(time.Duration(rep.SetupMs*1e6)))
	fprintf(w, "push:       p50 %s  p99 %s  (%d events; write issued -> pushed update decoded)\n",
		ms(rep.PushP50), ms(rep.PushP99), len(pushSamples))
	fprintf(w, "poll(%v):  p50 %s  p99 %s  (%d events; write issued -> next poll observes it)\n",
		opts.PollInterval, ms(rep.PollP50), ms(rep.PollP99), len(pollSamples))
	fprintf(w, "cost: push ran %d evals in its %s window; equal-freshness polling needs %.0f reads/s across %d queries (measured poll loops issued %d reads over %d profiles)\n",
		rep.PushEvals, ms(time.Duration(rep.PushWindowMs*1e6)),
		rep.PollEquivReadsPerSec, rep.Queries, rep.PollReads, rep.Measured)
	fprintf(w, "hub: pushes=%d drops=%d resyncs=%d skips=%d; lost=%d seq_gaps=%d\n",
		rep.Pushes, rep.Drops, rep.Resyncs, rep.Skips, rep.Lost, rep.SeqGaps)
	fprintf(w, "shape: pushed updates arrive event-driven while a poll loop pays ~interval/2 median staleness; the hub evaluates only changed profiles, polling pays N/T reads/s regardless of write rate\n")
	fprintf(w, "wrote %s\n", opts.OutPath)

	if rep.Lost > 0 {
		return rep, fmt.Errorf("bench: %d tagged writes never observed (conservation broken)", rep.Lost)
	}
	if rep.SeqGaps > 0 {
		return rep, fmt.Errorf("bench: %d sequence gaps on delivered streams", rep.SeqGaps)
	}
	return rep, nil
}
