package bench

import (
	"io"
	"math/rand"

	"ips/internal/compact"
	"ips/internal/config"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/persist"
)

// CompactionOptions scales the §III-D reproduction: the paper reports an
// average slice-list length of 62, ~730B per slice, ~45KB per profile held
// stable by compact/truncate/shrink — versus a projected 76MB per profile
// per year with neither.
type CompactionOptions struct {
	// Weeks of simulated activity; default 52 (one year, as the paper's
	// projection).
	Weeks int
	// EventsPerDay of user activity on active days; default one event per
	// 5 minutes (the paper's slice granularity assumption).
	EventsPerDay int
	// ActiveDaysPerWeek; default 5.
	ActiveDaysPerWeek int
	// ShrinkRetain per (slice, slot, type); default 8, which at the
	// default category space approximates the paper's ~730B slices.
	ShrinkRetain int
	// Slots and Types bound the category space; defaults 2 and 1.
	Slots, Types int
}

func (o *CompactionOptions) fill() {
	if o.Weeks <= 0 {
		o.Weeks = 52
	}
	if o.EventsPerDay <= 0 {
		o.EventsPerDay = 24 * 60 / 5
	}
	if o.ActiveDaysPerWeek <= 0 {
		o.ActiveDaysPerWeek = 5
	}
	if o.ShrinkRetain <= 0 {
		o.ShrinkRetain = 8
	}
	if o.Slots <= 0 {
		o.Slots = 2
	}
	if o.Types <= 0 {
		o.Types = 1
	}
}

// CompactionReport is the regenerated comparison.
type CompactionReport struct {
	// Maintained profile, after a year under Listing 3 + shrink.
	MaintainedSlices    int
	MaintainedMemBytes  int64
	MaintainedDiskBytes int
	AvgSliceBytes       int64
	// Raw profile: no compaction/truncation/shrink.
	RawSlices   int
	RawMemBytes int64
	// ReductionFactor is raw/maintained in memory.
	ReductionFactor float64
}

// RunCompaction regenerates the §III-D numbers: one user's year of
// activity is ingested twice — once with weekly maintenance under the
// production time-dimension config (paper Listing 3) plus shrink, once
// raw — and the footprints are compared.
func RunCompaction(opts CompactionOptions, w io.Writer) (*CompactionReport, error) {
	opts.fill()
	schema := model.NewSchema("like", "comment", "share")
	cfg := config.Default()
	cfg.Shrink.DefaultRetain = opts.ShrinkRetain

	const day = model.Millis(24 * 3600 * 1000)
	build := func(maintain bool) (*model.Profile, model.Millis) {
		rng := rand.New(rand.NewSource(33))
		p := model.NewProfile(1)
		p.Lock()
		defer p.Unlock()
		now := model.Millis(1_000_000_000)
		for week := 0; week < opts.Weeks; week++ {
			for d := 0; d < opts.ActiveDaysPerWeek; d++ {
				base := now + model.Millis(d)*day
				for e := 0; e < opts.EventsPerDay; e++ {
					ts := base + model.Millis(e)*day/model.Millis(opts.EventsPerDay)
					_ = p.Add(schema, ts, 1000,
						model.SlotID(rng.Intn(opts.Slots)), model.TypeID(rng.Intn(opts.Types)),
						model.FeatureID(rng.Intn(100_000)), []int64{1, 0, 0})
				}
			}
			now += 7 * day
			if maintain {
				compact.Maintain(p, schema, cfg, now)
			}
		}
		if maintain {
			compact.Maintain(p, schema, cfg, now)
		}
		return p, now
	}

	maintained, _ := build(true)
	raw, _ := build(false)

	// Persisted footprint of the maintained profile.
	ps := persist.New(kv.NewMemory(), "t")
	maintained.RLock()
	diskBytes, err := ps.Save(maintained)
	maintained.RUnlock()
	if err != nil {
		return nil, err
	}

	rep := &CompactionReport{
		MaintainedSlices:    maintained.NumSlices(),
		MaintainedMemBytes:  maintained.MemSize(),
		MaintainedDiskBytes: diskBytes,
		RawSlices:           raw.NumSlices(),
		RawMemBytes:         raw.MemSize(),
	}
	if rep.MaintainedSlices > 0 {
		rep.AvgSliceBytes = rep.MaintainedMemBytes / int64(rep.MaintainedSlices)
	}
	if rep.MaintainedMemBytes > 0 {
		rep.ReductionFactor = float64(rep.RawMemBytes) / float64(rep.MaintainedMemBytes)
	}

	fprintf(w, "Compaction / truncation / shrink footprint (§III-D)\n")
	fprintf(w, "%-22s %-12s %-14s\n", "profile", "slices", "memory")
	fprintf(w, "%-22s %-12d %-14d\n", "maintained (1 year)", rep.MaintainedSlices, rep.MaintainedMemBytes)
	fprintf(w, "%-22s %-12d %-14d\n", "raw (no maintenance)", rep.RawSlices, rep.RawMemBytes)
	fprintf(w, "\nmaintained: avg slice = %dB (paper: ~730B), slice-list length = %d (paper avg: 62), persisted = %dB (paper: <40KB)\n",
		rep.AvgSliceBytes, rep.MaintainedSlices, rep.MaintainedDiskBytes)
	fprintf(w, "shape: maintenance keeps the profile %.0fx smaller than unbounded growth (paper projects 45KB vs 76MB ≈ 1700x at production density)\n",
		rep.ReductionFactor)
	return rep, nil
}
