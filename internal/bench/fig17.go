package bench

import (
	"io"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/faultinject"
	"ips/internal/model"
	"ips/internal/workload"
)

// Fig17Options scales the Fig. 17 experiment (client-side error rate over
// 20 days of production-like failures).
type Fig17Options struct {
	// Days of simulated operation; default 20 (as in the paper).
	Days int
	// RequestsPerDay issued by the client; default 1500.
	RequestsPerDay int
	// Regions and InstancesPerRegion shape the cluster; defaults 2 and 2.
	Regions            int
	InstancesPerRegion int
	// Seed drives the failure schedule.
	Seed int64
}

func (o *Fig17Options) fill() {
	if o.Days <= 0 {
		o.Days = 20
	}
	if o.RequestsPerDay <= 0 {
		o.RequestsPerDay = 1500
	}
	if o.Regions <= 0 {
		o.Regions = 2
	}
	if o.InstancesPerRegion <= 0 {
		o.InstancesPerRegion = 2
	}
	if o.Seed == 0 {
		o.Seed = 17
	}
}

// Fig17Point is one day of the series.
type Fig17Point struct {
	Day       int
	Requests  int64
	Errors    int64
	ErrorRate float64
}

// Fig17Report is the regenerated figure.
type Fig17Report struct {
	Points  []Fig17Point
	MaxRate float64
	AvgRate float64
	// SLA is 1 - overall error rate; the paper reports >= 99.99% with a
	// max daily error rate ~0.025% and average < 0.01%.
	SLA float64
	// Failure schedule summary.
	Crashes, DropEpisodes, RegionOutages int
}

// RunFig17 regenerates Fig. 17: a multi-region cluster serves a steady
// query load while the fault injector crashes instances, drops responses
// and takes whole regions out; the client-side error rate is recorded per
// simulated day.
func RunFig17(opts Fig17Options, w io.Writer) (*Fig17Report, error) {
	opts.fill()
	regions := make([]string, opts.Regions)
	for i := range regions {
		regions[i] = string(rune('a'+i)) + "-region"
	}
	clock := NewClock()
	cl, err := cluster.New(cluster.Options{
		Regions:            regions,
		InstancesPerRegion: opts.InstancesPerRegion,
		Clock:              clock.Now,
		Tables:             map[string]*model.Schema{TableName: model.NewSchema("like", "comment", "share")},
		RegistryTTL:        300 * time.Millisecond,
		HeartbeatInterval:  50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	c, err := client.New(client.Options{
		Caller: "fig17", Service: "ips", Region: regions[0],
		Registry: cl.Registry, RefreshInterval: 50 * time.Millisecond,
		CallTimeout: 100 * time.Millisecond, Retries: 2,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	gen := workload.New(workload.Options{Seed: opts.Seed, Profiles: 500})
	inj := faultinject.New(cl, faultinject.Plan{
		Seed: opts.Seed, CrashProb: 0.30, RestartAfter: 1,
		DropProb: 0.40, DropRate: 0.02, DropTicks: 1,
		RegionOutageProb: 0.02, RegionOutageTicks: 1,
	})

	// Seed some data.
	now := clock.Now()
	for id := model.ProfileID(1); id <= 200; id++ {
		_ = c.Add(TableName, id, gen.WriteEntry(now))
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		_ = n.Instance().FlushAll()
	}

	rep := &Fig17Report{}
	fprintf(w, "Fig. 17 — client-side error rate under production-like failures\n")
	fprintf(w, "%-5s %-10s %-8s %-10s\n", "day", "requests", "errors", "error%%"+"")

	var totalReq, totalErr int64
	ticksPerDay := 4
	for day := 0; day < opts.Days; day++ {
		var dayReq, dayErr int64
		perTick := opts.RequestsPerDay / ticksPerDay
		for tick := 0; tick < ticksPerDay; tick++ {
			inj.Tick()
			// No convergence grace: requests race the failure the way
			// production traffic does; the client's periodic refresh and
			// ring failover absorb most, not all, of the window.
			for i := 0; i < perTick; i++ {
				dayReq++
				if i%11 == 0 {
					if err := c.Add(TableName, gen.ProfileID(), gen.WriteEntry(clock.Now())); err != nil {
						dayErr++
					}
					continue
				}
				if _, err := c.TopK(gen.Query(TableName)); err != nil {
					dayErr++
				}
			}
			clock.Advance(6 * 3_600_000) // a tick is 6 simulated hours
		}
		rate := float64(dayErr) / float64(dayReq)
		rep.Points = append(rep.Points, Fig17Point{Day: day + 1, Requests: dayReq, Errors: dayErr, ErrorRate: rate})
		totalReq += dayReq
		totalErr += dayErr
		if rate > rep.MaxRate {
			rep.MaxRate = rate
		}
		fprintf(w, "%-5d %-10d %-8d %-10.4f\n", day+1, dayReq, dayErr, rate*100)
	}
	inj.Quiesce()

	rep.AvgRate = float64(totalErr) / float64(totalReq)
	rep.SLA = 1 - rep.AvgRate
	rep.Crashes, rep.DropEpisodes, rep.RegionOutages = inj.Crashes, inj.DropEpisodes, inj.RegionOutages
	fprintf(w, "\ninjected: %d crashes, %d drop episodes, %d region outages\n",
		rep.Crashes, rep.DropEpisodes, rep.RegionOutages)
	fprintf(w, "max daily error rate = %.4f%% (paper: ~0.025%%), avg = %.4f%% (paper: <0.01%%), SLA = %.4f%% (paper: >=99.99%%)\n",
		rep.MaxRate*100, rep.AvgRate*100, rep.SLA*100)
	return rep, nil
}
