package bench

// The allocation-trajectory experiment: measures allocs/op, bytes/op and
// ns/op for each annotated stage of the hot read path and writes the
// machine-readable BENCH_alloc.json, so allocation regressions are
// visible across PRs the same way the latency artifacts are. The CI
// `alloc` job gates the hard invariants (AllocsPerRun == 0 in the stage
// tests); this artifact records the trajectory.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"text/tabwriter"

	"ips/internal/query"
	"ips/internal/trace"
	"ips/internal/wire"
)

// AllocOptions scales the allocation experiment.
type AllocOptions struct {
	// Features per profile; default 32.
	Features int
	// Warm iterations before measuring; default 256 (past the hot-slot
	// promotion threshold).
	Warm int
	// OutPath is where the JSON artifact lands; default BENCH_alloc.json
	// in the working directory. Empty string after fill means default.
	OutPath string
}

func (o *AllocOptions) fill() {
	if o.Features <= 0 {
		o.Features = 32
	}
	if o.Warm <= 0 {
		o.Warm = 256
	}
	if o.OutPath == "" {
		o.OutPath = "BENCH_alloc.json"
	}
}

// AllocStage is one measured stage of the read path.
type AllocStage struct {
	Stage       string  `json:"stage"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	NsPerOp     int64   `json:"ns_per_op"`
	Gated       bool    `json:"gated"` // true: CI requires 0 allocs/op
	Note        string  `json:"note,omitempty"`
	Ops         float64 `json:"-"`
}

// AllocReport is the artifact written to BENCH_alloc.json.
type AllocReport struct {
	Stages []AllocStage `json:"stages"`
}

// RunAlloc measures the per-stage allocation profile of a warmed
// cache-hit read and writes BENCH_alloc.json.
func RunAlloc(opts AllocOptions, w io.Writer) (*AllocReport, error) {
	opts.fill()
	env, err := NewEnv(EnvOptions{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if err := env.Prefill(4, opts.Features, 3_600_000); err != nil {
		return nil, err
	}
	if err := env.Instance.WarmProfile(TableName, 1); err != nil {
		return nil, err
	}

	req := &wire.QueryRequest{
		Caller: "bench", Table: TableName, ProfileID: 1,
		Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 7_200_000,
		SortBy: query.ByAction, K: 16,
	}
	payload := wire.EncodeQuery(req)
	ctx := context.Background()

	var interner wire.Interner
	var decoded wire.QueryRequest
	var resp wire.QueryResponse
	var sc query.Scratch
	var dst []byte

	// Warm every pooled layer, including hot-slot promotion.
	for i := 0; i < opts.Warm; i++ {
		if err := wire.DecodeQueryInto(payload, &decoded, &interner); err != nil {
			return nil, err
		}
		if err := env.Instance.QueryInto(ctx, &decoded, &resp, &sc); err != nil {
			return nil, err
		}
		dst = wire.AppendQueryResponse(dst[:0], &resp)
	}

	measure := func(stage string, gated bool, note string, f func()) AllocStage {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return AllocStage{
			Stage:       stage,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			NsPerOp:     r.NsPerOp(),
			Gated:       gated,
			Note:        note,
		}
	}

	report := &AllocReport{}
	report.Stages = append(report.Stages,
		measure("wire.decode_query", true, "request decode through the interner", func() {
			if err := wire.DecodeQueryInto(payload, &decoded, &interner); err != nil {
				panic(err)
			}
		}),
		measure("server.query_hit", true, "cache-hit read through pooled scratch", func() {
			if err := env.Instance.QueryInto(ctx, &decoded, &resp, &sc); err != nil {
				panic(err)
			}
		}),
		measure("wire.encode_response", true, "response encode into a reused buffer", func() {
			dst = wire.AppendQueryResponse(dst[:0], &resp)
		}),
		measure("trace.sampled_out", true, "span start/end on an unsampled request", func() {
			c2, sp := trace.StartSpan(ctx, trace.StageCacheCompute)
			leaf := trace.StartLeaf(c2, trace.StageCacheGet)
			leaf.End()
			sp.EndErr(nil)
		}),
		measure("client.roundtrip", false, "full RPC roundtrip incl. sockets and scheduler", func() {
			if _, err := env.Client.TopK(req); err != nil {
				panic(err)
			}
		}),
	)

	f, err := os.Create(opts.OutPath)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close() // encode error wins; close error on the error path is noise
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stage\tallocs/op\tB/op\tns/op\tgated\n")
	for _, s := range report.Stages {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%v\n", s.Stage, s.AllocsPerOp, s.BytesPerOp, s.NsPerOp, s.Gated)
	}
	tw.Flush()
	fmt.Fprintf(w, "wrote %s\n", opts.OutPath)
	for _, s := range report.Stages {
		if s.Gated && s.AllocsPerOp != 0 {
			return report, fmt.Errorf("bench: gated stage %s allocated %d/op; want 0", s.Stage, s.AllocsPerOp)
		}
	}
	return report, nil
}
