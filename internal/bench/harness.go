// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (§IV) plus the quantified
// claims of §III. One exported Run function per experiment; the ips-bench
// CLI and the repository's testing.B wrappers both call these, so the two
// entry points cannot drift apart.
//
// Absolute numbers differ from the paper by construction — the paper
// measured a 1000-machine production cluster, this harness measures a
// laptop-scale simulation — so every report states the *shape* being
// reproduced (who wins, rough factors, flat p50 vs load-following p99)
// alongside the measured values.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ips/internal/client"
	"ips/internal/config"
	"ips/internal/discovery"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/server"
	"ips/internal/trace"
	"ips/internal/wire"
	"ips/internal/workload"
)

// Clock is the simulated time source every experiment drives.
type Clock struct {
	mu  sync.Mutex
	now model.Millis
}

// NewClock starts a clock at an arbitrary fixed epoch.
func NewClock() *Clock { return &Clock{now: 1_700_000_000_000} }

// Now returns the current simulated time.
func (c *Clock) Now() model.Millis {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves simulated time forward.
func (c *Clock) Advance(d model.Millis) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Env is a single-instance IPS deployment reachable both in-process and
// over loopback TCP, with simulated time.
type Env struct {
	Clock    *Clock
	Store    *kv.Memory
	Instance *server.Instance
	Service  *server.Service
	Addr     string
	Registry *discovery.Registry
	Client   *client.Client
	Gen      *workload.Generator
}

// EnvOptions tunes the environment.
type EnvOptions struct {
	// Table schema actions; default like/comment/share.
	Actions []string
	// Cache options for GCache.
	Cache gcache.Options
	// Config override; nil uses Default with isolation on.
	Config *config.Config
	// Workload options.
	Workload workload.Options
	// StoreDelay injects latency into every KV operation, modelling the
	// HBase round trip behind cache misses (Table II).
	StoreDelay time.Duration
	// StoreHook, when set, replaces the StoreDelay sleep with an
	// arbitrary per-operation hook. It must be installed here rather
	// than assigned to Store.BeforeOp later: the instance's flush loops
	// read the hook concurrently from the moment the table exists.
	StoreHook func(op, key string)
	// Tracer, when set, is shared by the client and the instance so
	// sampled requests carry spans end to end (the trace experiment).
	Tracer *trace.Tracer
}

// TableName is the table every experiment uses.
const TableName = "user_profile"

// NewEnv builds the environment; callers must Close it.
func NewEnv(opts EnvOptions) (*Env, error) {
	if len(opts.Actions) == 0 {
		opts.Actions = []string{"like", "comment", "share"}
	}
	clock := NewClock()
	store := kv.NewMemory()
	if opts.StoreHook != nil {
		store.BeforeOp = opts.StoreHook
	} else if opts.StoreDelay > 0 {
		d := opts.StoreDelay
		store.BeforeOp = func(op, key string) { time.Sleep(d) }
	}
	cfg := config.Default()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	cfgStore, err := config.NewStore(cfg)
	if err != nil {
		return nil, err
	}
	inst, err := server.New(server.Options{
		Name:   "ips-bench-0",
		Region: "local",
		Store:  store,
		Config: cfgStore,
		Clock:  clock.Now,
		Cache:  opts.Cache,
		Tracer: opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	schema := model.NewSchema(opts.Actions...)
	if err := inst.CreateTable(TableName, schema); err != nil {
		_ = inst.Close()
		return nil, err
	}
	svc := server.NewService(inst)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		_ = inst.Close()
		return nil, err
	}
	reg := discovery.NewRegistry(time.Minute)
	reg.Register(discovery.Instance{Service: "ips", Addr: addr, Region: "local"})
	cl, err := client.New(client.Options{
		Caller: "bench", Service: "ips", Region: "local",
		Registry: reg, CallTimeout: 5 * time.Second,
		Tracer: opts.Tracer,
	})
	if err != nil {
		_ = svc.Close()
		_ = inst.Close()
		return nil, err
	}
	wopts := opts.Workload
	wopts.Actions = len(opts.Actions)
	return &Env{
		Clock: clock, Store: store, Instance: inst, Service: svc,
		Addr: addr, Registry: reg, Client: cl,
		Gen: workload.New(wopts),
	}, nil
}

// Close tears the environment down. Teardown errors are dropped: the
// measurements were already taken.
func (e *Env) Close() {
	e.Client.Close()
	_ = e.Service.Close()
	_ = e.Instance.Close()
	_ = e.Store.Close()
}

// Prefill writes history for n profiles so queries have data to chew on:
// per profile, writes spread over spreadMs of simulated past time.
func (e *Env) Prefill(n int, writesPer int, spreadMs model.Millis) error {
	now := e.Clock.Now()
	for id := model.ProfileID(1); id <= model.ProfileID(n); id++ {
		entries := make([]wire.AddEntry, writesPer)
		for j := range entries {
			en := e.Gen.WriteEntry(now)
			en.Timestamp = now - model.Millis(int64(j)*int64(spreadMs)/int64(writesPer)) - 1
			entries[j] = en
		}
		if err := e.Instance.Add("bench", TableName, id, entries); err != nil {
			return err
		}
	}
	e.Instance.MergeAll()
	return nil
}

// fprintf writes to w, tolerating a nil writer.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// ms renders a duration in fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}
