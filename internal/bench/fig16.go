package bench

import (
	"fmt"
	"io"
	"time"

	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/workload"
)

// Fig16Options scales the Fig. 16 experiment (query throughput and
// latency percentiles under fluctuating Spring-Festival-style traffic).
type Fig16Options struct {
	// Hours of simulated wall time; default 24.
	Hours int
	// PeakQueriesPerHour is the request budget of the busiest hour;
	// default 4000.
	PeakQueriesPerHour int
	// Profiles in the corpus; default 2000.
	Profiles int
	// WritesPerProfile of prefill history; default 60.
	WritesPerProfile int
}

func (o *Fig16Options) fill() {
	if o.Hours <= 0 {
		o.Hours = 24
	}
	if o.PeakQueriesPerHour <= 0 {
		o.PeakQueriesPerHour = 4000
	}
	if o.Profiles <= 0 {
		o.Profiles = 2000
	}
	if o.WritesPerProfile <= 0 {
		o.WritesPerProfile = 60
	}
}

// Fig16Point is one hour of the series.
type Fig16Point struct {
	Hour       int
	Throughput float64 // queries per wall second during the hour's burst
	P50, P99   time.Duration
}

// Fig16Report is the regenerated figure.
type Fig16Report struct {
	Points []Fig16Point
	// P50Spread and P99Spread are max/min ratios across hours — the
	// paper's shape is a flat p50 (~1ms throughout) with a p99 that
	// follows load (9→10ms).
	P50Spread, P99Spread float64
}

// RunFig16 regenerates Fig. 16: queries flow over loopback RPC (network +
// compute, like the production measurement), paced by the diurnal curve
// with a festival boost, against a Zipf corpus with a 10:1 background
// write mix.
func RunFig16(opts Fig16Options, w io.Writer) (*Fig16Report, error) {
	opts.fill()
	env, err := NewEnv(EnvOptions{
		Workload: workload.Options{Seed: 16, Profiles: uint64(opts.Profiles)},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if err := env.Prefill(opts.Profiles, opts.WritesPerProfile, 30*24*3_600_000); err != nil {
		return nil, err
	}

	curve := workload.Diurnal{Base: 0.35, FestivalBoost: 1.2}
	rep := &Fig16Report{}
	fprintf(w, "Fig. 16 — query throughput and latency under diurnal traffic\n")
	fprintf(w, "%-5s %-12s %-10s %-10s\n", "hour", "qps", "p50", "p99")

	for h := 0; h < opts.Hours; h++ {
		msOfDay := model.Millis(h) * 3_600_000
		intensity := curve.Intensity(msOfDay)
		n := int(float64(opts.PeakQueriesPerHour) * intensity)
		var hist metrics.Histogram
		start := time.Now()
		for i := 0; i < n; i++ {
			req := env.Gen.Query(TableName)
			t0 := time.Now()
			if _, err := env.Client.TopK(req); err != nil {
				return nil, fmt.Errorf("hour %d query: %w", h, err)
			}
			hist.Observe(time.Since(t0))
			// Background writes at the paper's ~10:1 read:write mix.
			if i%10 == 0 {
				id := env.Gen.ProfileID()
				if err := env.Client.Add(TableName, id, env.Gen.WriteEntry(env.Clock.Now())); err != nil {
					return nil, err
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		qps := float64(n) / elapsed
		pt := Fig16Point{Hour: h, Throughput: qps, P50: hist.P50(), P99: hist.P99()}
		rep.Points = append(rep.Points, pt)
		fprintf(w, "%-5d %-12.0f %-10s %-10s\n", h, qps, ms(pt.P50), ms(pt.P99))
		env.Clock.Advance(3_600_000)
		env.Instance.MergeAll()
	}

	rep.P50Spread = spread(rep.Points, func(p Fig16Point) time.Duration { return p.P50 })
	rep.P99Spread = spread(rep.Points, func(p Fig16Point) time.Duration { return p.P99 })
	fprintf(w, "\nshape: p50 max/min spread = %.2fx (paper: flat ~1ms), p99 spread = %.2fx (paper: 9-10ms, follows load)\n",
		rep.P50Spread, rep.P99Spread)
	return rep, nil
}

func spread[T any](pts []T, get func(T) time.Duration) float64 {
	var lo, hi time.Duration
	for i, p := range pts {
		v := get(p)
		if i == 0 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo <= 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}
