// Live-resharding latency experiment: what does an ownership change cost
// the read path? A journaled single-region cluster serves a steady
// read-heavy workload; its exact read p99 is measured three times — in
// steady state, while a node joins (content passes, dual-read window,
// cutover, release), and while a founding member drains. The acceptance
// criterion is that migration-time p99 stays within 2× the steady-state
// p99, with the denominator floored so sub-millisecond loopback baselines
// don't turn the ratio into scheduler noise.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/model"
	"ips/internal/workload"
)

// MigrateOptions scales the live-resharding experiment.
type MigrateOptions struct {
	// Instances in the single region before the join; default 3.
	Instances int
	// Profiles is the keyspace; default 256.
	Profiles int
	// SteadyOps is the total sampled operations of the steady-state
	// baseline; default 4000.
	Workers   int // concurrent workload goroutines; default 4
	SteadyOps int
	// WriteEvery issues one (unsampled) write per N operations per
	// worker, so the migration windows see real dual-write traffic;
	// default 8.
	WriteEvery int
	// Floor is the minimum denominator of the p99 ratio; default 2ms.
	Floor time.Duration
	// Seed draws the workload.
	Seed int64
}

func (o *MigrateOptions) fill() {
	if o.Instances <= 0 {
		o.Instances = 3
	}
	if o.Profiles <= 0 {
		o.Profiles = 256
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.SteadyOps <= 0 {
		o.SteadyOps = 4000
	}
	if o.WriteEvery <= 0 {
		o.WriteEvery = 8
	}
	if o.Floor <= 0 {
		o.Floor = 2 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 31
	}
}

// MigratePhase is the read-latency distribution observed during one
// phase of the experiment.
type MigratePhase struct {
	Name          string
	Reads         int
	Avg, P50, P99 time.Duration
	Max           time.Duration
	Errors        int64
}

// MigrateReport compares steady-state reads with reads taken while the
// cluster resharded underfoot.
type MigrateReport struct {
	Steady, Join, Drain MigratePhase

	JoinMoves, DrainMoves   int
	JoinPasses, DrainPasses int

	// P99Ratio is the worst migration-phase p99 over the steady-state
	// p99, the latter floored at Floor. Acceptance: <= 2.
	P99Ratio float64
	Floor    time.Duration
}

// RunMigrate measures read p99 while the cluster reshards live. The
// workload never pauses: the join and the drain each run concurrently
// with it, and every read issued while the coordinator works lands in
// that phase's distribution — dual-read windows, content passes and
// cutover included.
func RunMigrate(opts MigrateOptions, w io.Writer) (*MigrateReport, error) {
	opts.fill()
	dir, err := os.MkdirTemp("", "ips-bench-migrate")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: opts.Instances,
		Tables:             map[string]*model.Schema{TableName: model.NewSchema("like", "comment", "share")},
		JournalDir:         dir,
		HeartbeatInterval:  20 * time.Millisecond,
		SettleInterval:     120 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	c, err := client.New(client.Options{
		Caller: "migrate-bench", Service: "ips", Region: "east",
		Registry:        cl.Registry,
		RefreshInterval: 25 * time.Millisecond,
		CallTimeout:     2 * time.Second,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Seed and persist so any replica can serve any profile.
	gen := workload.New(workload.Options{Seed: opts.Seed, Profiles: uint64(opts.Profiles)})
	now := model.Millis(time.Now().UnixMilli())
	for id := model.ProfileID(1); id <= model.ProfileID(opts.Profiles); id++ {
		if err := c.Add(TableName, id, gen.WriteEntry(now)); err != nil {
			return nil, err
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		if err := n.Instance().FlushAll(); err != nil {
			return nil, err
		}
	}

	// sample runs the mixed workload until done closes (or, with done
	// nil, until maxOps operations) and returns the read distribution.
	sample := func(name string, done <-chan struct{}, maxOps int64) MigratePhase {
		var (
			ops   atomic.Int64
			errs  atomic.Int64
			wg    sync.WaitGroup
			mu    sync.Mutex
			reads []time.Duration
		)
		for wk := 0; wk < opts.Workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				// Generators are not goroutine-safe: one per worker.
				gen := workload.New(workload.Options{Seed: opts.Seed + int64(wk)*104729 + 1, Profiles: uint64(opts.Profiles)})
				rng := rand.New(rand.NewSource(opts.Seed + int64(wk)*104729 + 1))
				var mine []time.Duration
				for i := 0; ; i++ {
					if done != nil {
						select {
						case <-done:
							mu.Lock()
							reads = append(reads, mine...)
							mu.Unlock()
							return
						default:
						}
					} else if ops.Add(1) > maxOps {
						mu.Lock()
						reads = append(reads, mine...)
						mu.Unlock()
						return
					}
					id := model.ProfileID(rng.Intn(opts.Profiles) + 1)
					if i%opts.WriteEvery == opts.WriteEvery-1 {
						// Unsampled write: keeps the dual-write window
						// honest without mixing two latency populations.
						if err := c.Add(TableName, id, gen.WriteEntry(model.Millis(time.Now().UnixMilli()))); err != nil {
							errs.Add(1)
						}
						continue
					}
					q := gen.Query(TableName)
					q.ProfileID = id
					start := time.Now()
					if _, err := c.TopK(q); err != nil {
						errs.Add(1)
						continue
					}
					mine = append(mine, time.Since(start))
				}
			}(wk)
		}
		wg.Wait()
		ph := MigratePhase{Name: name, Reads: len(reads), Errors: errs.Load()}
		if len(reads) > 0 {
			ph.Avg, ph.P99 = exactMeanP99(reads)
			ph.P50 = median(reads)
			for _, d := range reads {
				if d > ph.Max {
					ph.Max = d
				}
			}
		}
		return ph
	}

	rep := &MigrateReport{Floor: opts.Floor}
	rep.Steady = sample("steady", nil, int64(opts.SteadyOps))

	joinDone := make(chan struct{})
	var joinRep *cluster.MigrationReport
	var joinErr error
	go func() {
		defer close(joinDone)
		_, joinRep, joinErr = cl.Join("east")
	}()
	rep.Join = sample("join", joinDone, 0)
	if joinErr != nil {
		return nil, fmt.Errorf("bench: join under load: %w", joinErr)
	}
	rep.JoinMoves, rep.JoinPasses = len(joinRep.Moves), joinRep.Passes

	drainDone := make(chan struct{})
	var drainRep *cluster.MigrationReport
	var drainErr error
	go func() {
		defer close(drainDone)
		drainRep, drainErr = cl.Drain("ips-east-0")
	}()
	rep.Drain = sample("drain", drainDone, 0)
	if drainErr != nil {
		return nil, fmt.Errorf("bench: drain under load: %w", drainErr)
	}
	rep.DrainMoves, rep.DrainPasses = len(drainRep.Moves), drainRep.Passes

	worst := rep.Join.P99
	if rep.Drain.P99 > worst {
		worst = rep.Drain.P99
	}
	base := rep.Steady.P99
	if base < opts.Floor {
		base = opts.Floor
	}
	rep.P99Ratio = float64(worst) / float64(base)

	fprintf(w, "migrate — read p99 during live resharding (%d→%d→%d instances, %d profiles)\n",
		opts.Instances, opts.Instances+1, opts.Instances, opts.Profiles)
	fprintf(w, "%-8s %-8s %-10s %-10s %-10s %-10s %-8s\n", "phase", "reads", "avg", "p50", "p99", "max", "errors")
	for _, ph := range []MigratePhase{rep.Steady, rep.Join, rep.Drain} {
		fprintf(w, "%-8s %-8d %-10v %-10v %-10v %-10v %-8d\n",
			ph.Name, ph.Reads, ph.Avg, ph.P50, ph.P99, ph.Max, ph.Errors)
	}
	fprintf(w, "join: %d moves over %d passes; drain: %d moves over %d passes\n",
		rep.JoinMoves, rep.JoinPasses, rep.DrainMoves, rep.DrainPasses)
	fprintf(w, "migration p99 / steady p99 = %.3f (acceptance: <= 2.0; denominator floored at %v)\n",
		rep.P99Ratio, opts.Floor)
	return rep, nil
}
