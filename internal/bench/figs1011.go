package bench

import (
	"io"

	"ips/internal/compact"
	"ips/internal/config"
	"ips/internal/model"
)

// Fig10Report is the deterministic compaction demo of Fig. 10: six
// five-minute slices merged into three ten-minute slices under the
// Listing-2 config, with no count lost.
type Fig10Report struct {
	Before, After []string // rendered slice intervals
	CountBefore   int64
	CountAfter    int64
}

// RunFig10 regenerates Fig. 10.
func RunFig10(w io.Writer) (*Fig10Report, error) {
	schema := model.NewSchema("n")
	dim, err := config.ParseTimeDimension(map[string][2]string{
		"5m":  {"0s", "10m"},
		"10m": {"10m", "1h"},
	})
	if err != nil {
		return nil, err
	}
	const min = model.Millis(60_000)
	now := 100 * min
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	for i := 0; i < 6; i++ {
		ts := now - 50*min + model.Millis(i)*5*min + 1
		if err := p.Add(schema, ts, 5*min, 1, 1, 7, []int64{1}); err != nil {
			return nil, err
		}
	}
	rep := &Fig10Report{Before: renderSlices(p, now), CountBefore: countAll(p)}
	compact.CompactProfile(p, schema, dim, now)
	rep.After = renderSlices(p, now)
	rep.CountAfter = countAll(p)

	fprintf(w, "Fig. 10 — compaction merges consecutive slices (Listing 2 config: 5m slices in the 10m-1h age band merge to 10m)\n")
	fprintf(w, "before (%d slices): %v\n", len(rep.Before), rep.Before)
	fprintf(w, "after  (%d slices): %v\n", len(rep.After), rep.After)
	fprintf(w, "total count %d -> %d (compaction drops no data)\n", rep.CountBefore, rep.CountAfter)
	return rep, nil
}

// Fig11Report is the truncate-by-count demo of Fig. 11: only the newest
// five slices survive.
type Fig11Report struct {
	Before, After []string
}

// RunFig11 regenerates Fig. 11.
func RunFig11(w io.Writer) (*Fig11Report, error) {
	schema := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	for i := 0; i < 8; i++ {
		ts := model.Millis(1000 + i*1000)
		if err := p.Add(schema, ts, 1000, 1, 1, model.FeatureID(i), []int64{1}); err != nil {
			return nil, err
		}
	}
	now := model.Millis(10_000)
	rep := &Fig11Report{Before: renderSlices(p, now)}
	compact.TruncateByCount(p, 5)
	rep.After = renderSlices(p, now)

	fprintf(w, "Fig. 11 — truncate by count keeps the newest five slices\n")
	fprintf(w, "before (%d slices): %v\n", len(rep.Before), rep.Before)
	fprintf(w, "after  (%d slices): %v\n", len(rep.After), rep.After)
	return rep, nil
}

func renderSlices(p *model.Profile, now model.Millis) []string {
	out := make([]string, 0, p.NumSlices())
	for _, s := range p.Slices() {
		out = append(out, sliceLabel(now, s))
	}
	return out
}

func sliceLabel(now model.Millis, s *model.Slice) string {
	ageMin := (now - s.End) / 60_000
	widthMin := s.Width() / 60_000
	if widthMin > 0 {
		return itoa(widthMin) + "m@-" + itoa(ageMin) + "m"
	}
	return itoa(s.Width()/1000) + "s@-" + itoa((now-s.End)/1000) + "s"
}

func itoa(v model.Millis) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for v > 0 {
		n--
		b[n] = byte('0' + v%10)
		v /= 10
	}
	return string(b[n:])
}

func countAll(p *model.Profile) int64 {
	var total int64
	for _, s := range p.Slices() {
		if set := s.Slot(1); set != nil {
			if fs := set.Get(1); fs != nil {
				fs.Each(func(st model.FeatureStat) { total += st.Counts[0] })
			}
		}
	}
	return total
}
