package bench

import (
	"io"
	"math/rand"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/workload"
)

// TailOptions scales the tail-latency experiment: one replica of a
// single-region cluster is stalled (it answers everything, hundreds of
// milliseconds late) and the same pre-drawn query stream is replayed twice
// — once with the resilience layer disabled, once with hedged reads on.
type TailOptions struct {
	// Instances in the single region; default 3.
	Instances int
	// Requests per arm; default 2000.
	Requests int
	// Profiles is the keyspace; default 200.
	Profiles int
	// StallDelay is the injected per-RPC latency on the victim replica;
	// default 500ms.
	StallDelay time.Duration
	// HedgeDelay is the hedged arm's fixed hedge trigger; default 20ms.
	HedgeDelay time.Duration
	// Seed draws the query stream.
	Seed int64
}

func (o *TailOptions) fill() {
	if o.Instances <= 0 {
		o.Instances = 3
	}
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.Profiles <= 0 {
		o.Profiles = 200
	}
	if o.StallDelay <= 0 {
		o.StallDelay = 500 * time.Millisecond
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = 20 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 23
	}
}

// TailArm is one run over the stalled cluster.
type TailArm struct {
	Name                string
	P50, P99, P999, Max time.Duration
	Hedges, HedgeWins   int64
	Errors              int64
}

// TailReport compares the two arms.
type TailReport struct {
	Baseline, Hedged TailArm
	StallDelay       time.Duration
	VictimAddr       string
	// P99Ratio is hedged p99 / baseline p99 — the acceptance criterion is
	// < 0.5 with one 500ms-stalled replica.
	P99Ratio float64
}

// RunTailLatency measures p50/p99/p999 with one injected slow replica,
// baseline vs hedged (§IV tail-latency SLOs). The stalled instance still
// answers — this is exactly the failure hedged reads exist for, and the one
// a timeout-and-retry ladder converts into a full added timeout instead.
func RunTailLatency(opts TailOptions, w io.Writer) (*TailReport, error) {
	opts.fill()
	clock := NewClock()
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: opts.Instances,
		Clock:              clock.Now,
		RegistryTTL:        300 * time.Millisecond,
		HeartbeatInterval:  50 * time.Millisecond,
		Tables:             map[string]*model.Schema{TableName: model.NewSchema("like", "comment", "share")},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Seed and persist so every replica can serve every profile.
	gen := workload.New(workload.Options{Seed: opts.Seed, Profiles: uint64(opts.Profiles)})
	seedClient, err := client.New(client.Options{
		Caller: "tail-seed", Service: "ips", Region: "east",
		Registry: cl.Registry, RefreshInterval: 50 * time.Millisecond,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	now := clock.Now()
	for id := model.ProfileID(1); id <= model.ProfileID(opts.Profiles); id++ {
		if err := seedClient.Add(TableName, id, gen.WriteEntry(now)); err != nil {
			seedClient.Close()
			return nil, err
		}
	}
	seedClient.Close()
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		if err := n.Instance().FlushAll(); err != nil {
			return nil, err
		}
	}

	// Stall one replica for the whole experiment.
	victim := cl.Nodes()[0]
	stall := opts.StallDelay
	victim.Service().RPC().SetDelay(func(method string) time.Duration { return stall })
	defer victim.Service().RPC().SetDelay(nil)

	// Pre-draw one query stream and replay it in both arms, so the two
	// latency distributions disagree only in how the client copes.
	rng := rand.New(rand.NewSource(opts.Seed))
	ids := make([]model.ProfileID, opts.Requests)
	for i := range ids {
		ids[i] = model.ProfileID(rng.Intn(opts.Profiles) + 1)
	}

	callTimeout := 2*stall + time.Second
	runArm := func(name string, copts client.Options) (TailArm, error) {
		copts.Caller = "tail-" + name
		copts.Service = "ips"
		copts.Region = "east"
		copts.Registry = cl.Registry
		copts.RefreshInterval = 50 * time.Millisecond
		copts.CallTimeout = callTimeout
		c, err := client.New(copts)
		if err != nil {
			return TailArm{}, err
		}
		defer c.Close()
		var hist metrics.Histogram
		arm := TailArm{Name: name}
		for _, id := range ids {
			q := gen.Query(TableName)
			q.ProfileID = id
			start := time.Now()
			if _, err := c.TopK(q); err != nil {
				arm.Errors++
			}
			hist.Observe(time.Since(start))
		}
		arm.P50, arm.P99, arm.P999, arm.Max = hist.P50(), hist.P99(), hist.P999(), hist.Max()
		arm.Hedges, arm.HedgeWins = c.Hedges.Value(), c.HedgeWins.Value()
		return arm, nil
	}

	rep := &TailReport{StallDelay: stall, VictimAddr: victim.Addr}
	fprintf(w, "tail — read latency with one %v-stalled replica (%d instances, %d requests/arm)\n",
		stall, opts.Instances, opts.Requests)
	// Baseline: the pre-armor client — no hedging, no breakers, no
	// budgeted retries. A stalled primary is simply waited out.
	rep.Baseline, err = runArm("baseline", client.Options{
		HedgeDelay:       -1,
		BreakerThreshold: -1,
		RetryBudgetRatio: -1,
		Seed:             opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Hedged: fixed hedge trigger, everything else stock.
	rep.Hedged, err = runArm("hedged", client.Options{
		HedgeDelay: opts.HedgeDelay,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	if rep.Baseline.P99 > 0 {
		rep.P99Ratio = float64(rep.Hedged.P99) / float64(rep.Baseline.P99)
	}
	fprintf(w, "%-10s %-10s %-10s %-10s %-10s %-8s %-8s\n", "arm", "p50", "p99", "p999", "max", "hedges", "errors")
	for _, arm := range []TailArm{rep.Baseline, rep.Hedged} {
		fprintf(w, "%-10s %-10v %-10v %-10v %-10v %-8d %-8d\n",
			arm.Name, arm.P50, arm.P99, arm.P999, arm.Max, arm.Hedges, arm.Errors)
	}
	fprintf(w, "hedged p99 / baseline p99 = %.3f (acceptance: < 0.5)\n", rep.P99Ratio)
	return rep, nil
}
