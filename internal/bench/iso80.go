package bench

import (
	"io"
	"time"

	"ips/internal/config"
	"ips/internal/metrics"
	"ips/internal/wire"
	"ips/internal/workload"
)

// Iso80Options scales the read-write-isolation ablation (§IV-C: enabling
// isolation cut write p99 ~80% while query latency stayed stable).
type Iso80Options struct {
	// Requests per configuration; default 20000.
	Requests int
	// Profiles in the corpus; default 1000.
	Profiles int
}

func (o *Iso80Options) fill() {
	if o.Requests <= 0 {
		o.Requests = 20_000
	}
	if o.Profiles <= 0 {
		o.Profiles = 1000
	}
}

// Iso80Side is one configuration's measurements.
type Iso80Side struct {
	Isolation bool
	WriteP99  time.Duration
	WriteP50  time.Duration
	QueryP99  time.Duration
	QueryP50  time.Duration
}

// Iso80Report is the ablation result.
type Iso80Report struct {
	Off, On Iso80Side
	// WriteP99ReductionPct is how much isolation cut the write p99; the
	// paper reports ~80%.
	WriteP99ReductionPct float64
	// QueryP99ChangePct is the query p99 movement; the paper reports
	// "fairly stable".
	QueryP99ChangePct float64
}

// RunIso80 measures the same mixed in-process workload with write
// isolation off and on. With isolation off, writes contend with reads on
// the main-table profiles (big, many slices); with isolation on, writes
// land in the small write table and merge in the background.
func RunIso80(opts Iso80Options, w io.Writer) (*Iso80Report, error) {
	opts.fill()

	run := func(isolation bool) (Iso80Side, error) {
		cfg := config.Default()
		cfg.WriteIsolation = isolation
		cfg.MergeInterval = config.Duration(20 * time.Millisecond)
		env, err := NewEnv(EnvOptions{
			Config:   &cfg,
			Workload: workload.Options{Seed: 80, Profiles: uint64(opts.Profiles), ZipfS: 1.5},
		})
		if err != nil {
			return Iso80Side{}, err
		}
		defer env.Close()
		// Heavy profiles: contention on them is what isolation removes.
		if err := env.Prefill(opts.Profiles, 200, 30*24*3_600_000); err != nil {
			return Iso80Side{}, err
		}

		var wh, qh metrics.Histogram
		now := env.Clock.Now()
		// Reads and writes race on the same hot profiles from concurrent
		// goroutines, like the production serving path.
		const workers = 4
		errCh := make(chan error, workers)
		per := opts.Requests / workers
		for wk := 0; wk < workers; wk++ {
			go func(seed int64) {
				gen := workload.New(workload.Options{
					Seed: seed, Profiles: uint64(opts.Profiles), ZipfS: 1.5, Actions: 3,
				})
				for i := 0; i < per; i++ {
					if i%11 == 0 { // ~10:1 mix
						entry := gen.WriteEntry(now)
						t0 := time.Now()
						err := env.Instance.Add("bench", TableName, gen.ProfileID(), []wire.AddEntry{entry})
						if err != nil {
							errCh <- err
							return
						}
						wh.Observe(time.Since(t0))
					} else {
						req := gen.Query(TableName)
						t0 := time.Now()
						if _, err := env.Instance.Query(req); err != nil {
							errCh <- err
							return
						}
						qh.Observe(time.Since(t0))
					}
				}
				errCh <- nil
			}(int64(wk) + 100)
		}
		for wk := 0; wk < workers; wk++ {
			if err := <-errCh; err != nil {
				return Iso80Side{}, err
			}
		}
		return Iso80Side{
			Isolation: isolation,
			WriteP99:  wh.P99(), WriteP50: wh.P50(),
			QueryP99: qh.P99(), QueryP50: qh.P50(),
		}, nil
	}

	off, err := run(false)
	if err != nil {
		return nil, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	rep := &Iso80Report{Off: off, On: on}
	if off.WriteP99 > 0 {
		rep.WriteP99ReductionPct = 100 * (1 - float64(on.WriteP99)/float64(off.WriteP99))
	}
	if off.QueryP99 > 0 {
		rep.QueryP99ChangePct = 100 * (float64(on.QueryP99)/float64(off.QueryP99) - 1)
	}

	fprintf(w, "Read-write isolation ablation (§IV-C)\n")
	fprintf(w, "%-12s %-12s %-12s %-12s %-12s\n", "isolation", "write p50", "write p99", "query p50", "query p99")
	for _, s := range []Iso80Side{off, on} {
		fprintf(w, "%-12v %-12s %-12s %-12s %-12s\n", s.Isolation, ms(s.WriteP50), ms(s.WriteP99), ms(s.QueryP50), ms(s.QueryP99))
	}
	fprintf(w, "\nshape: isolation cut write p99 by %.1f%% (paper: ~80%%); query p99 moved %+.1f%% (paper: fairly stable)\n",
		rep.WriteP99ReductionPct, rep.QueryP99ChangePct)
	return rep, nil
}
