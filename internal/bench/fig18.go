package bench

import (
	"io"

	"ips/internal/gcache"
	"ips/internal/wire"
	"ips/internal/workload"
)

// Fig18Options scales the Fig. 18 experiment (cache hit ratio and memory
// usage over time).
type Fig18Options struct {
	// Ticks of the series; default 30.
	Ticks int
	// RequestsPerTick; default 3000.
	RequestsPerTick int
	// Profiles in the corpus; default 20000 — much larger than the cache
	// budget so eviction is continuously active.
	Profiles int
	// MemLimit is the cache budget in bytes; default 4MB.
	MemLimit int64
}

func (o *Fig18Options) fill() {
	if o.Ticks <= 0 {
		o.Ticks = 40
	}
	if o.RequestsPerTick <= 0 {
		o.RequestsPerTick = 3000
	}
	if o.Profiles <= 0 {
		o.Profiles = 20_000
	}
	if o.MemLimit <= 0 {
		// Small enough that the working set overflows it mid-run, so the
		// series shows the paper's flat at-watermark memory line.
		o.MemLimit = 1 << 20
	}
}

// Fig18Point is one tick of the series.
type Fig18Point struct {
	Tick        int
	HitRatio    float64
	MemUsagePct float64 // of the configured limit
	Resident    int
}

// Fig18Report is the regenerated figure.
type Fig18Report struct {
	Points        []Fig18Point
	FinalHitRatio float64
	// MemStability is max/min memory usage over the steady-state second
	// half of the run — the paper's memory line is flat at ~85%.
	MemStability float64
}

// RunFig18 regenerates Fig. 18: Zipf reads and writes against a corpus
// several times larger than the cache budget, with swap threads holding
// usage at the watermark; the hit ratio stays high (>90% in the paper)
// because the popular head fits in memory.
func RunFig18(opts Fig18Options, w io.Writer) (*Fig18Report, error) {
	opts.fill()
	env, err := NewEnv(EnvOptions{
		Workload: workload.Options{Seed: 18, Profiles: uint64(opts.Profiles), ZipfS: 1.4},
		Cache: gcache.Options{
			MemLimit:    opts.MemLimit,
			MemLowWater: opts.MemLimit * 85 / 100, // the paper's ~85% set point
		},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()

	rep := &Fig18Report{}
	fprintf(w, "Fig. 18 — cache hit ratio and memory usage (hit%% is per-tick, i.e. steady-state once warm)\n")
	fprintf(w, "%-5s %-10s %-10s %-10s\n", "tick", "hit%", "mem%", "resident")

	now := env.Clock.Now()
	var prevHits, prevTotal int64
	for tick := 0; tick < opts.Ticks; tick++ {
		for i := 0; i < opts.RequestsPerTick; i++ {
			if env.Gen.IsRead() {
				req := env.Gen.Query(TableName)
				if _, err := env.Instance.Query(req); err != nil {
					return nil, err
				}
			} else {
				id := env.Gen.ProfileID()
				if err := env.Instance.Add("bench", TableName, id,
					[]wire.AddEntry{env.Gen.WriteEntry(now)}); err != nil {
					return nil, err
				}
			}
		}
		env.Instance.MergeAll()
		// One deterministic eviction pass per tick: the simulation
		// compresses hours into milliseconds, so the swap cadence must
		// compress with it (real-time swap threads also run).
		if err := env.Instance.EvictToWatermark(TableName); err != nil {
			return nil, err
		}
		st, err := env.Instance.CacheStats(TableName)
		if err != nil {
			return nil, err
		}
		// Windowed (per-tick) hit ratio: the paper's chart shows steady
		// state, not the cumulative cold-start average.
		dHits, dTotal := st.Hits-prevHits, st.Total-prevTotal
		prevHits, prevTotal = st.Hits, st.Total
		hr := 0.0
		if dTotal > 0 {
			hr = float64(dHits) / float64(dTotal)
		}
		pt := Fig18Point{
			Tick:        tick,
			HitRatio:    hr,
			MemUsagePct: 100 * float64(st.Usage) / float64(opts.MemLimit),
			Resident:    st.Resident,
		}
		rep.Points = append(rep.Points, pt)
		fprintf(w, "%-5d %-10.2f %-10.1f %-10d\n", tick, pt.HitRatio*100, pt.MemUsagePct, pt.Resident)
		env.Clock.Advance(600_000)
		now = env.Clock.Now()
	}

	rep.FinalHitRatio = rep.Points[len(rep.Points)-1].HitRatio
	half := rep.Points[len(rep.Points)/2:]
	var lo, hi float64
	for i, p := range half {
		if i == 0 || p.MemUsagePct < lo {
			lo = p.MemUsagePct
		}
		if p.MemUsagePct > hi {
			hi = p.MemUsagePct
		}
	}
	if lo > 0 {
		rep.MemStability = hi / lo
	}
	fprintf(w, "\nshape: final hit ratio %.1f%% (paper: >90%%); steady-state memory max/min = %.2fx (paper: flat ~85%%)\n",
		rep.FinalHitRatio*100, rep.MemStability)
	return rep, nil
}
