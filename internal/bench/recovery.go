package bench

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ips/internal/config"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/server"
	"ips/internal/wal"
	"ips/internal/wire"
)

// RecoveryOptions scales the crash-consistency experiment: the cost the
// mutation journal adds to the Add path (latency and write
// amplification), and how recovery time grows with the dirty-set size the
// crash left behind.
type RecoveryOptions struct {
	// Profiles and AddsPerProfile shape the write-amplification phase;
	// defaults 200 and 50.
	Profiles       int
	AddsPerProfile int
	// EntriesPerAdd is the batch size per Add request; default 1 (the
	// worst case for journal framing overhead).
	EntriesPerAdd int
	// DirtySweep lists dirty-profile counts for the recovery-time sweep;
	// default {250, 1000, 4000}.
	DirtySweep []int
}

func (o *RecoveryOptions) fill() {
	if o.Profiles <= 0 {
		o.Profiles = 200
	}
	if o.AddsPerProfile <= 0 {
		o.AddsPerProfile = 50
	}
	if o.EntriesPerAdd <= 0 {
		o.EntriesPerAdd = 1
	}
	if len(o.DirtySweep) == 0 {
		o.DirtySweep = []int{250, 1000, 4000}
	}
}

// RecoveryPoint is one dirty-set size in the recovery sweep.
type RecoveryPoint struct {
	DirtyProfiles int
	Records       int
	RecoverMillis float64
}

// RecoveryReport captures both phases.
type RecoveryReport struct {
	// Add-path cost, journal off vs on (same workload, memory KV).
	AddNoJournalNs float64
	AddJournalNs   float64
	// Journal bytes per payload byte on the Add path. Payload counts the
	// observation itself (timestamp, slot, type, fid, counts); the
	// journal adds framing, table/profile addressing and the LSN.
	JournalBytes int64
	PayloadBytes int64
	WriteAmp     float64
	Points       []RecoveryPoint
}

// entryPayloadBytes is the canonical size of one observation: u64
// timestamp + u32 slot + u32 type + u64 fid + 8 bytes per count.
func entryPayloadBytes(e wire.AddEntry) int64 {
	return 8 + 4 + 4 + 8 + 8*int64(len(e.Counts))
}

// RunRecovery measures the tentpole's two costs. Phase one replays an
// identical write workload into two instances — journal off and journal
// on (real file, no fsync) — and compares Add latency and bytes written.
// Phase two builds increasingly large unflushed dirty sets over a
// disk-backed store, kills the instance without flushing, and times the
// reopen-and-replay until the instance serves again.
func RunRecovery(opts RecoveryOptions, w io.Writer) (*RecoveryReport, error) {
	opts.fill()
	schema := model.NewSchema("like", "share")
	cfg := config.Default()
	cfg.WriteIsolation = false
	clock := NewClock()

	dir, err := os.MkdirTemp("", "ips-recovery")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	newInstance := func(store kv.Store, jn *wal.Journal) (*server.Instance, error) {
		cfgStore, err := config.NewStore(cfg)
		if err != nil {
			return nil, err
		}
		inst, err := server.New(server.Options{
			Name: "bench-recovery", Region: "local",
			Store: store, Config: cfgStore, Clock: clock.Now, Journal: jn,
			Cache: gcache.Options{FlushInterval: time.Hour, SwapInterval: time.Hour},
		})
		if err != nil {
			return nil, err
		}
		if err := inst.CreateTable("up", schema); err != nil {
			_ = inst.Close()
			return nil, err
		}
		return inst, nil
	}

	makeEntries := func(p, a int) []wire.AddEntry {
		entries := make([]wire.AddEntry, opts.EntriesPerAdd)
		for i := range entries {
			entries[i] = wire.AddEntry{
				Timestamp: clock.Now() - model.Millis(a*1000+i),
				Slot:      1, Type: 1,
				FID:    model.FeatureID(1 + (p*7+a*3+i)%512),
				Counts: []int64{1, int64(a % 3)},
			}
		}
		return entries
	}

	writeAll := func(inst *server.Instance) (time.Duration, int64, error) {
		var payload int64
		start := time.Now()
		for p := 0; p < opts.Profiles; p++ {
			for a := 0; a < opts.AddsPerProfile; a++ {
				entries := makeEntries(p, a)
				if err := inst.Add("bench", "up", model.ProfileID(p+1), entries); err != nil {
					return 0, 0, err
				}
				for _, e := range entries {
					payload += entryPayloadBytes(e)
				}
			}
		}
		return time.Since(start), payload, nil
	}

	rep := &RecoveryReport{}
	adds := float64(opts.Profiles * opts.AddsPerProfile)

	// Phase one: journal off.
	plain, err := newInstance(kv.NewMemory(), nil)
	if err != nil {
		return nil, err
	}
	elapsed, _, err := writeAll(plain)
	if err != nil {
		return nil, err
	}
	if err := plain.Close(); err != nil {
		return nil, err
	}
	rep.AddNoJournalNs = float64(elapsed.Nanoseconds()) / adds

	// Phase one: journal on (a real file: the bufio flush per append is
	// part of the cost being measured).
	jn, err := wal.Open(filepath.Join(dir, "amp.wal"), wal.Options{})
	if err != nil {
		return nil, err
	}
	journaled, err := newInstance(kv.NewMemory(), jn)
	if err != nil {
		return nil, err
	}
	elapsed, payload, err := writeAll(journaled)
	if err != nil {
		return nil, err
	}
	st := jn.Stats()
	if err := journaled.Close(); err != nil {
		return nil, err
	}
	if err := jn.Close(); err != nil {
		return nil, err
	}
	rep.AddJournalNs = float64(elapsed.Nanoseconds()) / adds
	rep.JournalBytes = st.AppendBytes
	rep.PayloadBytes = payload
	rep.WriteAmp = float64(st.AppendBytes) / float64(payload)

	// Phase two: recovery time vs dirty-set size.
	for _, dirty := range opts.DirtySweep {
		caseDir := filepath.Join(dir, "sweep", strconv.Itoa(dirty))
		if err := os.MkdirAll(caseDir, 0o755); err != nil {
			return nil, err
		}
		store, err := kv.OpenDisk(filepath.Join(caseDir, "kv.log"))
		if err != nil {
			return nil, err
		}
		sjn, err := wal.Open(filepath.Join(caseDir, "wal.log"), wal.Options{})
		if err != nil {
			return nil, err
		}
		inst, err := newInstance(store, sjn)
		if err != nil {
			return nil, err
		}
		for p := 0; p < dirty; p++ {
			if err := inst.Add("bench", "up", model.ProfileID(p+1), makeEntries(p, 0)); err != nil {
				return nil, err
			}
		}
		records := sjn.Stats().Records
		inst.Abort() // crash: nothing flushed
		sjn.Abort()

		start := time.Now()
		store2, err := kv.OpenDisk(filepath.Join(caseDir, "kv.log"))
		if err != nil {
			return nil, err
		}
		rjn, err := wal.Open(filepath.Join(caseDir, "wal.log"), wal.Options{})
		if err != nil {
			return nil, err
		}
		inst2, err := newInstance(store2, rjn)
		if err != nil {
			return nil, err
		}
		recoverMs := float64(time.Since(start).Microseconds()) / 1000
		if got := inst2.Stats().Profiles; got != int64(dirty) {
			_ = inst2.Close()
			return nil, errProfileCount{want: dirty, got: int(got)}
		}
		if err := inst2.Close(); err != nil {
			return nil, err
		}
		if err := rjn.Close(); err != nil {
			return nil, err
		}
		if err := store2.Close(); err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, RecoveryPoint{DirtyProfiles: dirty, Records: records, RecoverMillis: recoverMs})
	}

	fprintf(w, "Crash recovery: journal cost on the Add path and replay time (tentpole)\n")
	fprintf(w, "add path (%d adds, %d entr/add): no journal %.0fns/add, journal %.0fns/add (+%.0f%%)\n",
		int(adds), opts.EntriesPerAdd, rep.AddNoJournalNs, rep.AddJournalNs,
		100*(rep.AddJournalNs-rep.AddNoJournalNs)/rep.AddNoJournalNs)
	fprintf(w, "write amplification: %dB journal for %dB payload = %.2fx\n",
		rep.JournalBytes, rep.PayloadBytes, rep.WriteAmp)
	fprintf(w, "%-16s %-12s %-14s\n", "dirty profiles", "records", "recover (ms)")
	for _, pt := range rep.Points {
		fprintf(w, "%-16d %-12d %-14.2f\n", pt.DirtyProfiles, pt.Records, pt.RecoverMillis)
	}
	fprintf(w, "shape: recovery replays only the unflushed suffix, so time grows linearly with the dirty set, not the journal's lifetime size\n")
	return rep, nil
}

type errProfileCount struct{ want, got int }

func (e errProfileCount) Error() string {
	return "bench: recovery replayed " + strconv.Itoa(e.got) + " profiles, want " + strconv.Itoa(e.want)
}
