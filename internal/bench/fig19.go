package bench

import (
	"io"
	"time"

	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/workload"
)

// Fig19Options scales the Fig. 19 experiment (add/write throughput and
// latency percentiles over multi-day diurnal traffic).
type Fig19Options struct {
	// Hours of simulated time; default 48 (the paper shows five days).
	Hours int
	// PeakWritesPerHour; default 3000.
	PeakWritesPerHour int
	// Profiles in the corpus; default 2000.
	Profiles int
}

func (o *Fig19Options) fill() {
	if o.Hours <= 0 {
		o.Hours = 48
	}
	if o.PeakWritesPerHour <= 0 {
		o.PeakWritesPerHour = 3000
	}
	if o.Profiles <= 0 {
		o.Profiles = 2000
	}
}

// Fig19Point is one hour of the series.
type Fig19Point struct {
	Hour       int
	Throughput float64
	P50, P99   time.Duration
}

// Fig19Report is the regenerated figure.
type Fig19Report struct {
	Points               []Fig19Point
	P50Spread, P99Spread float64
	// ReadWriteRatio is the concurrent read:write mix maintained during
	// the run (the paper reports reads ≈ 10x writes, §IV-C).
	ReadWriteRatio float64
}

// RunFig19 regenerates Fig. 19: diurnal write traffic over loopback RPC
// with concurrent reads at the production 10:1 mix; the shape target is a
// flat write p50 (~0.5ms in the paper) with a load-following p99 (4-6ms).
func RunFig19(opts Fig19Options, w io.Writer) (*Fig19Report, error) {
	opts.fill()
	env, err := NewEnv(EnvOptions{
		Workload: workload.Options{Seed: 19, Profiles: uint64(opts.Profiles)},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if err := env.Prefill(opts.Profiles, 40, 30*24*3_600_000); err != nil {
		return nil, err
	}

	curve := workload.Diurnal{Base: 0.4}
	rep := &Fig19Report{}
	fprintf(w, "Fig. 19 — add (write) throughput and latency under diurnal traffic\n")
	fprintf(w, "%-5s %-12s %-10s %-10s\n", "hour", "wps", "p50", "p99")

	var reads, writes int64
	for h := 0; h < opts.Hours; h++ {
		msOfDay := model.Millis(h%24) * 3_600_000
		n := int(float64(opts.PeakWritesPerHour) * curve.Intensity(msOfDay))
		var hist metrics.Histogram
		start := time.Now()
		for i := 0; i < n; i++ {
			id := env.Gen.ProfileID()
			entry := env.Gen.WriteEntry(env.Clock.Now())
			t0 := time.Now()
			if err := env.Client.Add(TableName, id, entry); err != nil {
				return nil, err
			}
			hist.Observe(time.Since(t0))
			writes++
			// Concurrent reads at the 10:1 production mix.
			for r := 0; r < 10; r++ {
				if r >= 3 && i%3 != 0 {
					break // keep runtime bounded while preserving ~10:1
				}
				if _, err := env.Client.TopK(env.Gen.Query(TableName)); err != nil {
					return nil, err
				}
				reads++
			}
		}
		elapsed := time.Since(start).Seconds()
		pt := Fig19Point{Hour: h, Throughput: float64(n) / elapsed, P50: hist.P50(), P99: hist.P99()}
		rep.Points = append(rep.Points, pt)
		fprintf(w, "%-5d %-12.0f %-10s %-10s\n", h, pt.Throughput, ms(pt.P50), ms(pt.P99))
		env.Clock.Advance(3_600_000)
		env.Instance.MergeAll()
	}

	rep.P50Spread = spread(rep.Points, func(p Fig19Point) time.Duration { return p.P50 })
	rep.P99Spread = spread(rep.Points, func(p Fig19Point) time.Duration { return p.P99 })
	if writes > 0 {
		rep.ReadWriteRatio = float64(reads) / float64(writes)
	}
	fprintf(w, "\nshape: write p50 spread = %.2fx (paper: flat ~0.5ms), p99 spread = %.2fx (paper: 4-6ms, follows load); read:write = %.1f:1 (paper: ~10:1)\n",
		rep.P50Spread, rep.P99Spread, rep.ReadWriteRatio)
	return rep, nil
}
