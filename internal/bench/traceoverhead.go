package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ips/internal/model"
	"ips/internal/trace"
	"ips/internal/wire"
)

// TraceOverheadOptions scales the tracing-overhead experiment.
type TraceOverheadOptions struct {
	// Queries per configuration; default 3000.
	Queries int
	// Profiles in the corpus; default 500.
	Profiles int
	// BatchSize for the attribution check; default 16.
	BatchSize int
	// SampledOutEvery is the sparse sampling rate for the middle
	// configuration; default 1024 (so virtually every request loses the
	// draw and pays only the sampling counter).
	SampledOutEvery int
}

func (o *TraceOverheadOptions) fill() {
	if o.Queries <= 0 {
		o.Queries = 3000
	}
	if o.Profiles <= 0 {
		o.Profiles = 500
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.SampledOutEvery <= 0 {
		o.SampledOutEvery = 1024
	}
}

// TraceOverheadRow is one configuration's measured query latency.
type TraceOverheadRow struct {
	Config string // "untraced", "sampled-out", "traced"
	P50    time.Duration
	P99    time.Duration
	Mean   time.Duration
}

// TraceOverheadReport compares the three tracing configurations and
// records the latency attribution a fully-traced batch query produced.
type TraceOverheadReport struct {
	Rows []TraceOverheadRow
	// TracedOverheadP50 is traced p50 / untraced p50 - 1; the design goal
	// is under 5% with SampleEvery=1, ~0% when sampled out.
	TracedOverheadP50     float64
	SampledOutOverheadP50 float64
	// BatchStages counts distinct stages the traced batch query
	// attributed latency to (acceptance: at least 5).
	BatchStages int
	// BatchTree is the rendered span tree of that batch query.
	BatchTree string
}

// runTraceConfig measures single-query p50/p99 under one tracer setting.
func runTraceConfig(opts TraceOverheadOptions, tracer *trace.Tracer) (TraceOverheadRow, *Env, error) {
	env, err := NewEnv(EnvOptions{Tracer: tracer})
	if err != nil {
		return TraceOverheadRow{}, nil, err
	}
	if err := env.Prefill(opts.Profiles, 40, 24*3_600_000); err != nil {
		env.Close()
		return TraceOverheadRow{}, nil, err
	}
	// Warm every profile so the comparison measures the hot path, not
	// cold-cache KV loads that would drown the instrumentation cost.
	for id := 1; id <= opts.Profiles; id++ {
		if err := env.Instance.WarmProfile(TableName, model.ProfileID(id)); err != nil {
			env.Close()
			return TraceOverheadRow{}, nil, err
		}
	}
	env.Client.QueryLat.Reset()
	for i := 0; i < opts.Queries; i++ {
		req := env.Gen.Query(TableName)
		req.ProfileID = model.ProfileID(i%opts.Profiles) + 1
		if _, err := env.Client.TopK(req); err != nil {
			env.Close()
			return TraceOverheadRow{}, nil, err
		}
	}
	return TraceOverheadRow{
		P50:  env.Client.QueryLat.P50(),
		P99:  env.Client.QueryLat.P99(),
		Mean: env.Client.QueryLat.Mean(),
	}, env, nil
}

// RunTraceOverhead measures what request tracing costs on the hot query
// path, across three configurations on identical corpora and workloads:
// tracing off (the seed baseline), tracing on but sampled out
// (SampleEvery = 1024: the steady-state production setting), and tracing
// every request (SampleEvery = 1: the debugging setting). It then runs
// one fully-traced batch query and reports how many distinct stages its
// span tree attributes latency to.
func RunTraceOverhead(opts TraceOverheadOptions, w io.Writer) (*TraceOverheadReport, error) {
	opts.fill()

	configs := []struct {
		name   string
		tracer *trace.Tracer
	}{
		{"untraced", nil},
		{"sampled-out", trace.NewTracer(trace.Config{SampleEvery: opts.SampledOutEvery})},
		{"traced", trace.NewTracer(trace.Config{SampleEvery: 1})},
	}
	rep := &TraceOverheadReport{}
	var tracedEnv *Env
	for _, cfg := range configs {
		row, env, err := runTraceConfig(opts, cfg.tracer)
		if err != nil {
			return nil, err
		}
		row.Config = cfg.name
		rep.Rows = append(rep.Rows, row)
		if cfg.name == "traced" {
			tracedEnv = env // kept for the batch attribution check
		} else {
			env.Close()
		}
	}
	defer tracedEnv.Close()

	base := rep.Rows[0]
	rep.SampledOutOverheadP50 = overhead(rep.Rows[1].P50, base.P50)
	rep.TracedOverheadP50 = overhead(rep.Rows[2].P50, base.P50)

	// Attribution check: one traced batch query must break its latency
	// down into at least five distinct stages.
	subs := make([]wire.SubQuery, opts.BatchSize)
	for i := range subs {
		req := tracedEnv.Gen.Query(TableName)
		req.ProfileID = model.ProfileID(i%opts.Profiles) + 1
		subs[i] = wire.SubQuery{Op: wire.OpTopK, Query: *req}
	}
	if _, err := tracedEnv.Client.QueryBatch(subs); err != nil {
		return nil, fmt.Errorf("traced batch: %w", err)
	}
	last := tracedEnv.Client.Tracer().LastSampled()
	if last == nil {
		return nil, fmt.Errorf("traced batch left no sampled trace")
	}
	stages := map[trace.Stage]bool{}
	for _, sp := range last.Spans() {
		stages[sp.Stage] = true
	}
	rep.BatchStages = len(stages)
	var b strings.Builder
	trace.RenderTree(&b, last.ID, last.Spans())
	rep.BatchTree = b.String()

	fprintf(w, "trace overhead — %d warmed single queries per configuration\n", opts.Queries)
	fprintf(w, "%-12s %-12s %-12s %-12s\n", "config", "p50", "p99", "mean")
	for _, r := range rep.Rows {
		fprintf(w, "%-12s %-12s %-12s %-12s\n", r.Config, ms(r.P50), ms(r.P99), ms(r.Mean))
	}
	fprintf(w, "\np50 overhead vs untraced: sampled-out %+.1f%%, traced %+.1f%% (goal: ~0%% and <5%%)\n",
		100*rep.SampledOutOverheadP50, 100*rep.TracedOverheadP50)
	fprintf(w, "traced batch query attributed %d distinct stages (goal: >=5):\n%s",
		rep.BatchStages, rep.BatchTree)
	return rep, nil
}

// overhead returns (measured - base) / base, guarding a zero base.
func overhead(measured, base time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return float64(measured-base) / float64(base)
}
