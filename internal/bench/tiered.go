// Tiered-cache experiment: the hit-ratio-vs-memory scaling law of the
// hot/warm/KV hierarchy (DESIGN.md "Entry lifecycle"). Sweeps the memory
// budget across a grid with the warm tier sized as a fraction of the hot
// tier, drives a Zipf/diurnal workload at each point, and classifies
// every read by the tier that served it — decoded (hot), compressed
// in-process (warm), or KV reload (miss) — with per-class p50 latency.
// The claim under test: a warm hit re-inflates in process and is
// strictly cheaper than a KV round trip, so the warm tier buys back a
// band of the miss curve at a fraction of the decoded tier's bytes.
package bench

import (
	"io"
	"sort"
	"sync/atomic"
	"time"

	"ips/internal/gcache"
	"ips/internal/wire"
	"ips/internal/workload"
)

// TieredOptions scales the tiered-cache sweep.
type TieredOptions struct {
	// MemLimits is the decoded-tier budget grid; default 256KB..2MB.
	MemLimits []int64
	// WarmFrac sizes the warm tier as a fraction of each MemLimit;
	// default 1.0 (equal budgets — the warm tier still holds several
	// times more profiles because entries are snap-compressed).
	WarmFrac float64
	// Profiles in the corpus; default 4000 — larger than any grid point
	// so every point evicts.
	Profiles int
	// Ticks of simulated hours per grid point; default 8.
	Ticks int
	// RequestsPerTick at peak intensity; the diurnal curve scales each
	// tick's actual count. Default 1200.
	RequestsPerTick int
	// WritesPerProfile seeds history; default 24.
	WritesPerProfile int
	// ZipfS is the popularity skew; default 1.3.
	ZipfS float64
	// StoreDelay is the injected KV read latency behind misses,
	// modelling the HBase round trip of Table II; default 800µs.
	StoreDelay time.Duration
	// EvictEvery is the request cadence of deterministic eviction
	// passes within a tick; default 200.
	EvictEvery int
}

func (o *TieredOptions) fill() {
	if len(o.MemLimits) == 0 {
		o.MemLimits = []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	}
	if o.WarmFrac <= 0 {
		o.WarmFrac = 1.0
	}
	if o.Profiles <= 0 {
		o.Profiles = 4000
	}
	if o.Ticks <= 0 {
		o.Ticks = 8
	}
	if o.RequestsPerTick <= 0 {
		o.RequestsPerTick = 1200
	}
	if o.WritesPerProfile <= 0 {
		o.WritesPerProfile = 24
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.3
	}
	if o.StoreDelay <= 0 {
		o.StoreDelay = 800 * time.Microsecond
	}
	if o.EvictEvery <= 0 {
		o.EvictEvery = 200
	}
}

// TieredPoint is one grid point: the tier-by-tier read breakdown at one
// memory budget.
type TieredPoint struct {
	MemLimit  int64
	WarmLimit int64
	// Read fractions by serving tier (sum to 1).
	HotRatio, WarmRatio, MissRatio float64
	// Exact p50 read latency by serving tier (0 when the class is empty).
	HotP50, WarmP50, MissP50 time.Duration
	// Samples per class.
	HotN, WarmN, MissN int
	// Lifecycle churn over the run.
	Demotions, WarmEvictions int64
	WarmResident             int64
}

// TieredReport is the measured sweep.
type TieredReport struct {
	Points []TieredPoint
	// WarmCheaperThanMiss holds when every grid point with enough
	// samples in both classes (>= 20) measured warm p50 strictly below
	// miss p50 — the tier ordering the hierarchy exists to buy.
	WarmCheaperThanMiss bool
}

// RunTiered regenerates the tiered-cache scaling law: for each memory
// budget it drives the same Zipf/diurnal read-write mix single-threaded
// (so per-request counter deltas classify the serving tier exactly) and
// reports hit-ratio-vs-memory curves for the decoded and warm tiers plus
// per-tier p50s.
func RunTiered(opts TieredOptions, w io.Writer) (*TieredReport, error) {
	opts.fill()
	rep := &TieredReport{WarmCheaperThanMiss: true}

	fprintf(w, "Tiered cache — hit ratio vs memory per tier (warm frac %.2f, KV delay %s)\n", opts.WarmFrac, opts.StoreDelay)
	fprintf(w, "%-10s %-7s %-7s %-7s %-11s %-11s %-11s %-10s %-8s\n",
		"mem", "hot%", "warm%", "miss%", "hot p50", "warm p50", "miss p50", "demotions", "warmres")

	for _, limit := range opts.MemLimits {
		pt, err := runTieredPoint(opts, limit)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, *pt)
		fprintf(w, "%-10d %-7.1f %-7.1f %-7.1f %-11s %-11s %-11s %-10d %-8d\n",
			pt.MemLimit, 100*pt.HotRatio, 100*pt.WarmRatio, 100*pt.MissRatio,
			ms(pt.HotP50), ms(pt.WarmP50), ms(pt.MissP50), pt.Demotions, pt.WarmResident)
		if pt.WarmN >= 20 && pt.MissN >= 20 && pt.WarmP50 >= pt.MissP50 {
			rep.WarmCheaperThanMiss = false
		}
	}

	fprintf(w, "\nshape: hot%% grows with memory while miss%% shrinks; the warm curve peaks where the\n")
	fprintf(w, "decoded tier overflows; warm p50 strictly below miss p50 at every point: %v\n", rep.WarmCheaperThanMiss)
	return rep, nil
}

// runTieredPoint measures one grid point. Single-threaded on purpose:
// the CacheStats delta around each read is then an exact classifier of
// which tier served it (decoded hit bumps Hits, a warm re-inflate bumps
// WarmHits, and a read bumping neither went to KV).
func runTieredPoint(opts TieredOptions, limit int64) (*TieredPoint, error) {
	warmLimit := int64(float64(limit) * opts.WarmFrac)
	// KV read latency is injected only after prefill and only on gets:
	// the quantity under test is the read path's miss penalty, not a
	// slowed-down seeding phase. The atomic gate (rather than swapping
	// BeforeOp mid-run) keeps the hook race-free against flush loops.
	var delayOn atomic.Bool
	env, err := NewEnv(EnvOptions{
		Workload: workload.Options{Seed: 31, Profiles: uint64(opts.Profiles), ZipfS: opts.ZipfS},
		Cache: gcache.Options{
			MemLimit:    limit,
			MemLowWater: limit * 85 / 100,
			WarmLimit:   warmLimit,
		},
		StoreHook: func(op, key string) {
			if op == "get" && delayOn.Load() {
				time.Sleep(opts.StoreDelay)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if err := env.Prefill(opts.Profiles, opts.WritesPerProfile, 24*3_600_000); err != nil {
		return nil, err
	}
	delayOn.Store(true)

	pt := &TieredPoint{MemLimit: limit, WarmLimit: warmLimit}
	var hotLat, warmLat, missLat []time.Duration
	diurnal := workload.Diurnal{}
	now := env.Clock.Now()
	prev, err := env.Instance.CacheStats(TableName)
	if err != nil {
		return nil, err
	}
	base := prev

	for tick := 0; tick < opts.Ticks; tick++ {
		n := int(float64(opts.RequestsPerTick) * diurnal.Intensity(now%86_400_000))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if env.Gen.IsRead() {
				req := env.Gen.Query(TableName)
				t0 := time.Now()
				if _, err := env.Instance.Query(req); err != nil {
					return nil, err
				}
				d := time.Since(t0)
				st, err := env.Instance.CacheStats(TableName)
				if err != nil {
					return nil, err
				}
				switch {
				case st.WarmHits > prev.WarmHits:
					warmLat = append(warmLat, d)
				case st.Hits > prev.Hits:
					hotLat = append(hotLat, d)
				default:
					missLat = append(missLat, d)
				}
				prev = st
			} else {
				id := env.Gen.ProfileID()
				if err := env.Instance.Add("bench", TableName, id,
					[]wire.AddEntry{env.Gen.WriteEntry(now)}); err != nil {
					return nil, err
				}
				// Writes move counters too (a write to a warm profile
				// re-inflates it); resync so the next read's delta is
				// clean.
				if prev, err = env.Instance.CacheStats(TableName); err != nil {
					return nil, err
				}
			}
			if (i+1)%opts.EvictEvery == 0 {
				if err := env.Instance.EvictToWatermark(TableName); err != nil {
					return nil, err
				}
			}
		}
		env.Instance.MergeAll()
		if err := env.Instance.EvictToWatermark(TableName); err != nil {
			return nil, err
		}
		if prev, err = env.Instance.CacheStats(TableName); err != nil {
			return nil, err
		}
		env.Clock.Advance(3_600_000) // one simulated hour per tick
		now = env.Clock.Now()
	}

	final, err := env.Instance.CacheStats(TableName)
	if err != nil {
		return nil, err
	}
	total := len(hotLat) + len(warmLat) + len(missLat)
	if total > 0 {
		pt.HotRatio = float64(len(hotLat)) / float64(total)
		pt.WarmRatio = float64(len(warmLat)) / float64(total)
		pt.MissRatio = float64(len(missLat)) / float64(total)
	}
	pt.HotN, pt.WarmN, pt.MissN = len(hotLat), len(warmLat), len(missLat)
	pt.HotP50, pt.WarmP50, pt.MissP50 = exactP50(hotLat), exactP50(warmLat), exactP50(missLat)
	pt.Demotions = final.Demotions - base.Demotions
	pt.WarmEvictions = final.WarmEvictions - base.WarmEvictions
	pt.WarmResident = final.WarmResident
	return pt, nil
}

// exactP50 returns the sorted-sample median, 0 on an empty class.
func exactP50(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
