package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunFig10(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunFig10(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Before) != 6 || len(rep.After) != 3 {
		t.Fatalf("slices %d -> %d, want 6 -> 3", len(rep.Before), len(rep.After))
	}
	if rep.CountBefore != rep.CountAfter {
		t.Fatalf("compaction lost data: %d -> %d", rep.CountBefore, rep.CountAfter)
	}
	if !strings.Contains(buf.String(), "Fig. 10") {
		t.Fatal("report text missing")
	}
}

func TestRunFig11(t *testing.T) {
	rep, err := RunFig11(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Before) != 8 || len(rep.After) != 5 {
		t.Fatalf("slices %d -> %d, want 8 -> 5", len(rep.Before), len(rep.After))
	}
}

func TestRunFig16Small(t *testing.T) {
	rep, err := RunFig16(Fig16Options{Hours: 4, PeakQueriesPerHour: 150, Profiles: 100, WritesPerProfile: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Throughput <= 0 || p.P50 <= 0 || p.P99 < p.P50 {
			t.Fatalf("bad point: %+v", p)
		}
	}
}

func TestRunFig17Small(t *testing.T) {
	rep, err := RunFig17(Fig17Options{Days: 2, RequestsPerDay: 200, Regions: 2, InstancesPerRegion: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.SLA < 0.9 {
		t.Fatalf("SLA = %v; cluster badly broken", rep.SLA)
	}
}

func TestRunTab2Small(t *testing.T) {
	rep, err := RunTab2(Tab2Options{Queries: 60, Profiles: 120, StoreDelay: 2 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	// The defining shape: misses cost more than hits on both sides.
	var ch, cm, sh, sm time.Duration
	for _, c := range rep.Cells {
		switch c.Side + "/" + c.Kind {
		case "client/hit":
			ch = c.Avg
		case "client/miss":
			cm = c.Avg
		case "server/hit":
			sh = c.Avg
		case "server/miss":
			sm = c.Avg
		}
	}
	if cm <= ch || sm <= sh {
		t.Fatalf("miss not slower than hit: client %v/%v server %v/%v", ch, cm, sh, sm)
	}
	if rep.HitSavingsAvg < time.Millisecond {
		t.Fatalf("hit savings = %v, want >= injected store delay", rep.HitSavingsAvg)
	}
}

func TestRunFig18Small(t *testing.T) {
	rep, err := RunFig18(Fig18Options{Ticks: 6, RequestsPerTick: 800, Profiles: 3000, MemLimit: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalHitRatio < 0.5 {
		t.Fatalf("hit ratio = %v; Zipf cache behaviour broken", rep.FinalHitRatio)
	}
}

func TestRunFig19Small(t *testing.T) {
	rep, err := RunFig19(Fig19Options{Hours: 3, PeakWritesPerHour: 100, Profiles: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.ReadWriteRatio < 2 {
		t.Fatalf("read:write = %v; mix generation broken", rep.ReadWriteRatio)
	}
}

func TestRunIso80Small(t *testing.T) {
	rep, err := RunIso80(Iso80Options{Requests: 4000, Profiles: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Off.WriteP99 <= 0 || rep.On.WriteP99 <= 0 {
		t.Fatalf("missing measurements: %+v", rep)
	}
}

func TestRunCompactionSmall(t *testing.T) {
	rep, err := RunCompaction(CompactionOptions{Weeks: 8, EventsPerDay: 48, ActiveDaysPerWeek: 3, ShrinkRetain: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReductionFactor < 2 {
		t.Fatalf("reduction = %.1fx; maintenance ineffective", rep.ReductionFactor)
	}
	if rep.MaintainedSlices >= rep.RawSlices {
		t.Fatalf("slices %d vs raw %d", rep.MaintainedSlices, rep.RawSlices)
	}
}

func TestEnvPrefillAndClose(t *testing.T) {
	env, err := NewEnv(EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if err := env.Prefill(10, 5, 3_600_000); err != nil {
		t.Fatal(err)
	}
	st := env.Instance.Stats()
	if st.Profiles != 10 {
		t.Fatalf("profiles = %d, want 10", st.Profiles)
	}
}

func TestRunLambdaSmall(t *testing.T) {
	rep, err := RunLambda(LambdaOptions{Users: 30, Days: 10, ClicksPerUserPerDay: 15, ShortCapacity: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// IPS must answer the window (near-)exactly; both legacy paths lose.
	if rep.WindowRecallIPS < 0.999 {
		t.Fatalf("IPS recall = %v, want ~1.0", rep.WindowRecallIPS)
	}
	if rep.WindowRecallShort >= rep.WindowRecallIPS {
		t.Fatalf("short recall %v should trail IPS %v", rep.WindowRecallShort, rep.WindowRecallIPS)
	}
	if rep.WindowRecallLong >= rep.WindowRecallIPS {
		t.Fatalf("long recall %v should trail IPS %v", rep.WindowRecallLong, rep.WindowRecallIPS)
	}
	// The long path cannot scope to the window: it reports counts from
	// outside it (days 8-10 of history).
	if rep.WindowExcessLong <= 0 {
		t.Fatalf("long excess = %v, want > 0 (all-history overcount)", rep.WindowExcessLong)
	}
	// Freshness: IPS within seconds, legacy waits for the nightly batch.
	if rep.FreshnessIPSMillis <= 0 || rep.FreshnessIPSMillis > 60_000 {
		t.Fatalf("IPS freshness = %dms", rep.FreshnessIPSMillis)
	}
	if rep.FreshnessLegacyMillis < 3_600_000 {
		t.Fatalf("legacy freshness = %dms, want >= hours", rep.FreshnessLegacyMillis)
	}
	// Legacy short path joins per click; the batch rescans history.
	if rep.LookupsPerShortQuery < 1 {
		t.Fatalf("lookups/query = %v", rep.LookupsPerShortQuery)
	}
	if rep.BatchEventsScanned == 0 {
		t.Fatal("batch scanned nothing")
	}
}

func TestRunTailSmall(t *testing.T) {
	rep, err := RunTailLatency(TailOptions{
		Requests:   200,
		Profiles:   60,
		StallDelay: 120 * time.Millisecond,
		HedgeDelay: 8 * time.Millisecond,
		Seed:       7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline p50=%v p99=%v p999=%v; hedged p50=%v p99=%v p999=%v hedges=%d ratio=%.3f",
		rep.Baseline.P50, rep.Baseline.P99, rep.Baseline.P999,
		rep.Hedged.P50, rep.Hedged.P99, rep.Hedged.P999, rep.Hedged.Hedges, rep.P99Ratio)
	if rep.Baseline.Errors != 0 || rep.Hedged.Errors != 0 {
		t.Fatalf("errors: baseline=%d hedged=%d", rep.Baseline.Errors, rep.Hedged.Errors)
	}
	// ~1/3 of reads route to the stalled replica, so baseline p99 sits at
	// the stall (less histogram bucket quantization) while the hedged arm
	// escapes after its hedge delay.
	if rep.Baseline.P99 < rep.StallDelay*3/4 {
		t.Fatalf("baseline p99 %v never hit the %v stall", rep.Baseline.P99, rep.StallDelay)
	}
	if rep.Hedged.Hedges == 0 {
		t.Fatal("hedged arm never hedged")
	}
	if rep.Hedged.P99 >= rep.Baseline.P99/2 {
		t.Fatalf("hedged p99 %v not < half of baseline p99 %v", rep.Hedged.P99, rep.Baseline.P99)
	}
}

func TestRunRecoverySmall(t *testing.T) {
	rep, err := RunRecovery(RecoveryOptions{
		Profiles:       40,
		AddsPerProfile: 10,
		DirtySweep:     []int{50, 150},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("add: plain %.0fns journal %.0fns; amp %.2fx; points %+v",
		rep.AddNoJournalNs, rep.AddJournalNs, rep.WriteAmp, rep.Points)
	if rep.WriteAmp <= 1 {
		t.Fatalf("write amplification %.2f should exceed 1 (framing + addressing overhead)", rep.WriteAmp)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 sweep points, got %d", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Records < pt.DirtyProfiles {
			t.Fatalf("dirty=%d produced only %d journal records", pt.DirtyProfiles, pt.Records)
		}
	}
}

func TestRunTraceSmall(t *testing.T) {
	rep, err := RunTraceOverhead(TraceOverheadOptions{Queries: 400, Profiles: 60, BatchSize: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 configurations", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.P50 <= 0 {
			t.Fatalf("%s: no latency measured: %+v", r.Config, r)
		}
	}
	// The acceptance target is <5%% p50 overhead; CI boxes are noisy at
	// the tens-of-microseconds scale this measures, so the test only
	// guards against an order-of-magnitude regression (e.g. tracing
	// accidentally enabled on the untraced path, or per-span syscalls).
	if rep.TracedOverheadP50 > 1.0 {
		t.Fatalf("traced p50 overhead = %+.1f%%, tracing is not low-overhead",
			100*rep.TracedOverheadP50)
	}
	if rep.BatchStages < 5 {
		t.Fatalf("traced batch attributed %d stages, want >= 5:\n%s",
			rep.BatchStages, rep.BatchTree)
	}
	if !strings.Contains(rep.BatchTree, "client.query") ||
		!strings.Contains(rep.BatchTree, "server.dispatch") {
		t.Fatalf("batch tree missing client/server stages:\n%s", rep.BatchTree)
	}
}

func TestRunHotkeySmall(t *testing.T) {
	rep, err := RunHotkey(HotkeyOptions{
		ColdKeys: 8, ReadersPerKey: 8,
		Readers: 4, ReadsPerReader: 300, Profiles: 64, WritesPerProfile: 4,
		HotSlots: 4, HotPromoteAfter: 8,
		DupFactors: []int{1, 8}, BatchRounds: 5, BatchSize: 16,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic invariant of single-flight: however many readers
	// collide on a cold key, storage is read exactly once per key.
	if rep.KVReadsPerColdKey != 1 {
		t.Fatalf("KV reads per cold key = %.2f, want exactly 1 (single-flight broken)", rep.KVReadsPerColdKey)
	}
	if rep.LoadWaits == 0 {
		t.Fatal("no reader shared another's load; the storm never collided")
	}
	// Latency comparisons are logged, not gated: CI boxes are too noisy
	// at this scale for a p99 assertion to be stable.
	t.Logf("p99 baseline=%v hotslots=%v (hits=%d promotions=%d)",
		rep.BaseP99, rep.HotP99, rep.HotHits, rep.HotPromotions)
	if rep.HotPromotions == 0 || rep.HotHits == 0 {
		t.Fatalf("hot-slot layer never engaged: hits=%d promotions=%d", rep.HotHits, rep.HotPromotions)
	}
	// The v2 encoding must beat v1 once duplication is real.
	for _, d := range rep.Dups {
		t.Logf("dup %d: v1=%dB v2=%dB reduction=%.1f%%", d.Dup, d.V1BytesPerOp, d.V2BytesPerOp, 100*d.Reduction)
		if d.Dup >= 8 && d.V2BytesPerOp >= d.V1BytesPerOp {
			t.Fatalf("dup %d: v2 wire bytes %d not below v1's %d", d.Dup, d.V2BytesPerOp, d.V1BytesPerOp)
		}
	}
}

func TestRunMigrateSmall(t *testing.T) {
	rep, err := RunMigrate(MigrateOptions{
		Instances: 2, Profiles: 64, Workers: 2, SteadyOps: 400,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The workload must never see an error while ownership moves: the
	// dual-read/dual-write window is exactly what makes resharding
	// invisible to callers.
	for _, ph := range []MigratePhase{rep.Steady, rep.Join, rep.Drain} {
		if ph.Errors != 0 {
			t.Fatalf("%s phase saw %d errors", ph.Name, ph.Errors)
		}
		if ph.Reads == 0 {
			t.Fatalf("%s phase sampled no reads", ph.Name)
		}
	}
	if rep.JoinMoves == 0 || rep.DrainMoves == 0 {
		t.Fatalf("resharding moved nothing: join=%d drain=%d", rep.JoinMoves, rep.DrainMoves)
	}
	// Latency is logged, not gated: CI boxes are too noisy at this scale
	// for a stable p99 assertion — ips-bench -exp migrate prints the
	// acceptance ratio at full scale.
	t.Logf("steady p99=%v join p99=%v drain p99=%v ratio=%.3f (floor %v)",
		rep.Steady.P99, rep.Join.P99, rep.Drain.P99, rep.P99Ratio, rep.Floor)
}

func TestRunSubscribeSmall(t *testing.T) {
	rep, err := RunSubscribe(SubscribeOptions{
		Queries: 600, Events: 40, Measured: 16,
		PollInterval: 40 * time.Millisecond, ChurnPerEvent: 4,
		OutPath: t.TempDir() + "/BENCH_sub.json",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: every tagged write observed, delivered streams gapless.
	if rep.Lost != 0 || rep.SeqGaps != 0 {
		t.Fatalf("lost=%d seq_gaps=%d, want 0/0", rep.Lost, rep.SeqGaps)
	}
	// The defining shape: a pushed update beats the poll loop's median
	// (which pays ~interval/2 staleness before it even issues the read).
	t.Logf("push p50=%v p99=%v; poll p50=%v p99=%v; push evals=%d poll reads=%d",
		rep.PushP50, rep.PushP99, rep.PollP50, rep.PollP99, rep.PushEvals, rep.PollReads)
	if rep.PushP50 >= rep.PollP50 {
		t.Fatalf("push median %v not below poll median %v", rep.PushP50, rep.PollP50)
	}
	if rep.Pushes == 0 || rep.PushEvals == 0 {
		t.Fatalf("hub idle: pushes=%d evals=%d", rep.Pushes, rep.PushEvals)
	}
}

func TestRunTieredSmall(t *testing.T) {
	rep, err := RunTiered(TieredOptions{
		MemLimits: []int64{96 << 10, 384 << 10},
		Profiles:  800, Ticks: 4, RequestsPerTick: 400,
		WritesPerProfile: 12, StoreDelay: 500 * time.Microsecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	small, big := rep.Points[0], rep.Points[1]
	// The scaling law's shape: more decoded memory means a higher hot
	// ratio and fewer KV round trips.
	if big.HotRatio <= small.HotRatio {
		t.Fatalf("hot ratio did not grow with memory: %.3f -> %.3f", small.HotRatio, big.HotRatio)
	}
	if big.MissRatio > small.MissRatio {
		t.Fatalf("miss ratio grew with memory: %.3f -> %.3f", small.MissRatio, big.MissRatio)
	}
	// The tight point must churn the lifecycle: demotions feed the warm
	// tier and warm hits come back out of it.
	if small.Demotions == 0 || small.WarmN == 0 {
		t.Fatalf("no warm traffic at the tight point: %+v", small)
	}
	// The hierarchy's reason to exist: a warm re-inflate is strictly
	// cheaper than the injected KV round trip.
	if !rep.WarmCheaperThanMiss {
		t.Fatalf("warm p50 not below miss p50: %+v", rep.Points)
	}
	if small.WarmN >= 20 && small.MissN >= 20 && small.WarmP50 >= small.MissP50 {
		t.Fatalf("warm p50 %v >= miss p50 %v", small.WarmP50, small.MissP50)
	}
}
