package bench

import (
	"io"
	"time"

	"ips/internal/gcache"
	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/workload"
)

// Tab2Options scales the Table II experiment (client vs server query
// latency split by cache hit / miss).
type Tab2Options struct {
	// Queries per cell; default 800.
	Queries int
	// Profiles in the corpus; default 2000.
	Profiles int
	// StoreDelay models the KV (HBase) round trip behind a miss; the
	// paper's hit/miss gap is 2-4ms, so default 2ms.
	StoreDelay time.Duration
}

func (o *Tab2Options) fill() {
	if o.Queries <= 0 {
		o.Queries = 800
	}
	if o.Profiles <= 0 {
		o.Profiles = 2000
	}
	if o.StoreDelay <= 0 {
		o.StoreDelay = 2 * time.Millisecond
	}
}

// Tab2Cell is one row of the regenerated table.
type Tab2Cell struct {
	Side string // "client" or "server"
	Kind string // "hit" or "miss"
	Avg  time.Duration
	P99  time.Duration
}

// Tab2Report is the regenerated Table II.
type Tab2Report struct {
	Cells []Tab2Cell
	// HitSavingsAvg is (miss - hit) on the client side; the paper reports
	// cache hits saving approximately 2-4ms per query.
	HitSavingsAvg time.Duration
	// NetworkOverheadAvg is (client - server) for hits; the paper's
	// package-transmission overhead is ~3ms on their network.
	NetworkOverheadAvg time.Duration
}

// RunTab2 regenerates Table II. Hits query resident profiles; misses are
// forced by evicting the target profile before each query so the server
// reloads it from the (latency-injected) KV store.
func RunTab2(opts Tab2Options, w io.Writer) (*Tab2Report, error) {
	opts.fill()
	env, err := NewEnv(EnvOptions{
		Workload:   workload.Options{Seed: 2, Profiles: uint64(opts.Profiles)},
		StoreDelay: opts.StoreDelay,
		Cache:      gcache.Options{},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if err := env.Prefill(opts.Profiles, 60, 30*24*3_600_000); err != nil {
		return nil, err
	}
	if err := env.Instance.FlushAll(); err != nil {
		return nil, err
	}

	var clientHit, clientMiss, serverHit, serverMiss metrics.Histogram

	runOne := func(id model.ProfileID) error {
		req := env.Gen.Query(TableName)
		req.ProfileID = id
		t0 := time.Now()
		resp, err := env.Client.TopK(req)
		if err != nil {
			return err
		}
		total := time.Since(t0)
		srv := time.Duration(resp.ServerNanos)
		if resp.CacheHit {
			clientHit.Observe(total)
			serverHit.Observe(srv)
		} else {
			clientMiss.Observe(total)
			serverMiss.Observe(srv)
		}
		return nil
	}

	// Hit pass: warm each profile first, then measure.
	for i := 0; i < opts.Queries; i++ {
		id := model.ProfileID(i%opts.Profiles) + 1
		if err := env.Instance.WarmProfile(TableName, id); err != nil {
			return nil, err
		}
		if err := runOne(id); err != nil {
			return nil, err
		}
	}
	// Miss pass: evict the target before each query.
	for i := 0; i < opts.Queries; i++ {
		id := model.ProfileID(i%opts.Profiles) + 1
		if _, err := env.Instance.EvictProfile(TableName, id); err != nil {
			return nil, err
		}
		if err := runOne(id); err != nil {
			return nil, err
		}
	}

	rep := &Tab2Report{
		Cells: []Tab2Cell{
			{"client", "hit", clientHit.Mean(), clientHit.P99()},
			{"client", "miss", clientMiss.Mean(), clientMiss.P99()},
			{"server", "hit", serverHit.Mean(), serverHit.P99()},
			{"server", "miss", serverMiss.Mean(), serverMiss.P99()},
		},
		HitSavingsAvg:      clientMiss.Mean() - clientHit.Mean(),
		NetworkOverheadAvg: clientHit.Mean() - serverHit.Mean(),
	}
	fprintf(w, "Table II — query latency by side and cache outcome\n")
	fprintf(w, "%-8s %-6s %-12s %-12s %-8s\n", "side", "kind", "avg", "p99", "n")
	counts := []int64{clientHit.Count(), clientMiss.Count(), serverHit.Count(), serverMiss.Count()}
	for i, c := range rep.Cells {
		fprintf(w, "%-8s %-6s %-12s %-12s %-8d\n", c.Side, c.Kind, ms(c.Avg), ms(c.P99), counts[i])
	}
	fprintf(w, "\nshape: hits save %.3fms on average (paper: ~2-4ms);\n", f64ms(rep.HitSavingsAvg))
	fprintf(w, "client-server gap on hits %.3fms = network overhead (paper: ~3ms on their fabric)\n", f64ms(rep.NetworkOverheadAvg))
	return rep, nil
}

func f64ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
