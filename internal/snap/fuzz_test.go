package snap

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks Encode/Decode inversion on arbitrary inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("hello world"))
	f.Add(bytes.Repeat([]byte("ab"), 500))
	f.Add(bytes.Repeat([]byte{0}, 70_000))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(dec))
		}
		if len(enc) > MaxEncodedLen(len(src)) {
			t.Fatalf("encoded %d > MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
		}
	})
}

// FuzzDecode checks the decoder never panics or over-allocates on hostile
// input.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{5, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0x07, 1, 2, 3})
	f.Add(Encode(nil, []byte("seed")))
	f.Fuzz(func(t *testing.T, junk []byte) {
		out, err := Decode(nil, junk)
		if err == nil {
			// Valid decodings must satisfy the declared length.
			n, lerr := DecodedLen(junk)
			if lerr != nil || n != len(out) {
				t.Fatalf("declared %d (err %v) but decoded %d", n, lerr, len(out))
			}
		}
	})
}
