package snap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Encode(nil, src)
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("Decode(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(dec), len(src))
	}
	return enc
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []byte{})
}

func TestRoundTripShort(t *testing.T) {
	for _, s := range []string{"a", "ab", "abc", "abcd", "abcde", "hello!"} {
		roundTrip(t, []byte(s))
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := []byte(strings.Repeat("abcdefgh", 1000))
	enc := roundTrip(t, src)
	if len(enc) >= len(src)/4 {
		t.Fatalf("repetitive input compressed to %d of %d bytes; expected strong compression", len(enc), len(src))
	}
}

func TestRoundTripAllSame(t *testing.T) {
	src := bytes.Repeat([]byte{0x42}, 100_000)
	enc := roundTrip(t, src)
	if len(enc) >= len(src)/10 {
		t.Fatalf("constant input compressed to %d of %d bytes", len(enc), len(src))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 10, 100, 1000, 65_536, 200_000} {
		src := make([]byte, n)
		rng.Read(src)
		enc := roundTrip(t, src)
		if len(enc) > MaxEncodedLen(n) {
			t.Fatalf("encoded %d bytes exceeds MaxEncodedLen(%d)=%d", len(enc), n, MaxEncodedLen(n))
		}
	}
}

func TestRoundTripProfileLike(t *testing.T) {
	// Profile payloads are sequences of varint-ish small integers with
	// repeating slot/type structure: should compress meaningfully.
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		buf.Write([]byte{0x08, byte(rng.Intn(16)), 0x10, byte(rng.Intn(4)), 0x18})
		buf.WriteByte(byte(rng.Intn(128)))
	}
	src := buf.Bytes()
	enc := roundTrip(t, src)
	if len(enc) >= len(src) {
		t.Fatalf("structured input did not compress: %d >= %d", len(enc), len(src))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyRepetitive(t *testing.T) {
	// Force match-heavy inputs: small alphabet, long strings.
	rng := rand.New(rand.NewSource(3))
	f := func(seed uint32) bool {
		n := 100 + int(seed%50_000)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Intn(4))
		}
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	enc := Encode(nil, []byte("payload"))
	out, err := Decode(prefix, enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "prefixpayload" {
		t.Fatalf("got %q", out)
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	prefix := []byte{1, 2, 3}
	enc := Encode(prefix, []byte("x"))
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("Encode should append to dst")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{}, // no header
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // bad varint
		{5},                       // header says 5 bytes, no body
		{5, 0x00},                 // literal op truncated
		{5, 63<<2 | 0x01},         // copy1 truncated
		{5, 63<<2 | 0x02, 0x01},   // copy2 truncated
		{5, 0x03, 0, 0, 0, 0, 0},  // invalid tag 0b11
		{1, 0x01<<2 | 0x01, 0x05}, // copy with offset beyond output
		{2, 0, 'a', 0, 'b'},       // decodes to 2 ok... craft mismatch below
	}
	// Length mismatch: declared 3, only 2 literal bytes.
	cases = append(cases, []byte{3, 1<<2 | 0x00, 'a', 'b'})
	for i, c := range cases {
		if i == 8 {
			continue // that one is actually valid; skip
		}
		if _, err := Decode(nil, c); err == nil {
			t.Errorf("case %d: Decode(%v) succeeded, want error", i, c)
		}
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		// Decode must return an error or a value, never panic.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %v: %v", junk, r)
			}
		}()
		_, _ = Decode(nil, junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodedLen(t *testing.T) {
	enc := Encode(nil, bytes.Repeat([]byte("z"), 12345))
	n, err := DecodedLen(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12345 {
		t.Fatalf("DecodedLen = %d, want 12345", n)
	}
}

func TestOverlappingCopy(t *testing.T) {
	// "aaaa..." style inputs require overlapping copy semantics.
	src := append([]byte("ab"), bytes.Repeat([]byte("ab"), 500)...)
	roundTrip(t, src)
}

func BenchmarkEncode64K(b *testing.B) {
	src := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(1))
	for i := range src {
		src[i] = byte(rng.Intn(32)) // mildly compressible
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(nil, src)
	}
}

func BenchmarkDecode64K(b *testing.B) {
	src := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(1))
	for i := range src {
		src[i] = byte(rng.Intn(32))
	}
	enc := Encode(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(nil, enc); err != nil {
			b.Fatal(err)
		}
	}
}
