// Package snap implements a from-scratch LZ77 block compressor that stands
// in for the Snappy library the paper uses to compress serialized profile
// values before persisting them (§III-E). It targets the same design point:
// very fast, byte-oriented, moderate ratio, no entropy coding.
//
// Format (not wire-compatible with Snappy, but the same style):
//
//	header : uvarint decoded length
//	stream : a sequence of ops
//	  literal: tag byte 0b_LLLLLL00 for short lengths (1..60 encoded as
//	           L+1), or 61/62 in the length field followed by 1 or 2
//	           little-endian extra length bytes; then the literal bytes.
//	  copy:    tag byte 0b_OOOLLL01: length 4..11 (LLL+4), offset high 3
//	           bits in OOO plus one extra offset byte (offset 1..2047), or
//	           tag 0b_LLLLLL10: 2-byte little-endian offset with length
//	           1..64 (L+1) for longer matches and offsets up to 65535.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a compressed block cannot be decoded.
var ErrCorrupt = errors.New("snap: corrupt input")

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02

	maxOffset1 = 1 << 11 // copy1 offset limit (3 high bits + 1 byte)
	maxOffset2 = 1<<16 - 1

	minMatch = 4
	// hashTableBits sizes the match-finder table; 14 bits = 16K entries,
	// the same ballpark real Snappy uses per 64K block.
	hashTableBits = 14
	hashTableSize = 1 << hashTableBits
)

// MaxEncodedLen returns an upper bound on the size of Encode's output for an
// input of length n.
func MaxEncodedLen(n int) int {
	// Worst case: one long literal; 5 bytes varint header + 3 bytes literal
	// header per 64K, rounded up generously.
	return n + n/6 + 16
}

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// Encode compresses src, appending to dst (which may be nil) and returning
// the resulting slice.
func Encode(dst, src []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	dst = append(dst, hdr[:n]...)
	if len(src) == 0 {
		return dst
	}
	if len(src) < minMatch+3 {
		return emitLiteral(dst, src)
	}

	var table [hashTableSize]int32 // candidate positions + 1 (0 = empty)
	s := 0                         // next byte to process
	lit := 0                       // start of pending literal run

	// Stop looking for matches near the end; tail is emitted as literal.
	sLimit := len(src) - minMatch
	for s < sLimit {
		h := hash4(load32(src, s))
		cand := int(table[h]) - 1
		table[h] = int32(s + 1)
		if cand >= 0 && s-cand <= maxOffset2 && load32(src, cand) == load32(src, s) {
			// Extend the match forward.
			length := minMatch
			for s+length < len(src) && src[cand+length] == src[s+length] {
				length++
			}
			if lit < s {
				dst = emitLiteral(dst, src[lit:s])
			}
			dst = emitCopy(dst, s-cand, length)
			s += length
			lit = s
			// Seed the table inside the match so later data can refer
			// back into it (one probe, keeps encoding O(n)).
			if s < sLimit {
				table[hash4(load32(src, s-1))] = int32(s)
			}
			continue
		}
		s++
	}
	if lit < len(src) {
		dst = emitLiteral(dst, src[lit:])
	}
	return dst
}

func emitLiteral(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		const max = 1 << 16 // per-op literal cap
		if n > max {
			n = max
		}
		switch {
		case n <= 60:
			dst = append(dst, byte(n-1)<<2|tagLiteral)
		case n <= 1<<8:
			dst = append(dst, 61<<2|tagLiteral, byte(n-1))
		default:
			dst = append(dst, 62<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
		}
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches are split into 64-byte copy2 ops; a final short piece
	// can use the compact copy1 form when the offset allows.
	for length >= 64 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length == 0 {
		return dst
	}
	if length >= minMatch && length <= 11 && offset < maxOffset1 {
		dst = append(dst,
			byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1,
			byte(offset))
		return dst
	}
	if length < minMatch {
		// Too short for a copy op on its own after splitting: fold into a
		// copy2 anyway (lengths 1..64 are representable there).
		dst = append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
		return dst
	}
	dst = append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
	return dst
}

// DecodedLen returns the declared decoded length of the block.
func DecodedLen(src []byte) (int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	const maxBlock = 1 << 31
	if v > maxBlock {
		return 0, fmt.Errorf("snap: declared length %d too large: %w", v, ErrCorrupt)
	}
	return int(v), nil
}

// Decode decompresses src, appending to dst (which may be nil) and returning
// the resulting slice.
func Decode(dst, src []byte) ([]byte, error) {
	declared, err := DecodedLen(src)
	if err != nil {
		return nil, err
	}
	_, hn := binary.Uvarint(src)
	src = src[hn:]

	// Cap the initial allocation: a hostile header may declare a huge
	// length, but a genuine block can only expand as the ops are decoded.
	capHint := declared
	if capHint > len(src)*64 {
		capHint = len(src) * 64
	}
	out := make([]byte, 0, capHint)
	for len(src) > 0 {
		tag := src[0]
		switch tag & 0x03 {
		case tagLiteral:
			l := int(tag >> 2)
			var n int
			switch {
			case l <= 60:
				n = l + 1
				src = src[1:]
			case l == 61:
				if len(src) < 2 {
					return nil, ErrCorrupt
				}
				n = int(src[1]) + 1
				src = src[2:]
			case l == 62:
				if len(src) < 3 {
					return nil, ErrCorrupt
				}
				n = int(src[1]) | int(src[2])<<8
				n++
				src = src[3:]
			default:
				return nil, ErrCorrupt
			}
			if n > len(src) {
				return nil, ErrCorrupt
			}
			out = append(out, src[:n]...)
			src = src[n:]
		case tagCopy1:
			if len(src) < 2 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2&0x07) + 4
			offset := int(tag>>5)<<8 | int(src[1])
			src = src[2:]
			if err := copyBack(&out, offset, length); err != nil {
				return nil, err
			}
		case tagCopy2:
			if len(src) < 3 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(src[1]) | int(src[2])<<8
			src = src[3:]
			if err := copyBack(&out, offset, length); err != nil {
				return nil, err
			}
		default:
			return nil, ErrCorrupt
		}
		if len(out) > declared {
			return nil, ErrCorrupt
		}
	}
	if len(out) != declared {
		return nil, ErrCorrupt
	}
	return append(dst, out...), nil
}

// copyBack appends length bytes starting offset bytes back from the end of
// *out. Overlapping copies (offset < length) replicate, matching LZ77
// semantics.
func copyBack(out *[]byte, offset, length int) error {
	if offset <= 0 || offset > len(*out) {
		return ErrCorrupt
	}
	b := *out
	pos := len(b) - offset
	for i := 0; i < length; i++ {
		b = append(b, b[pos+i])
	}
	*out = b
	return nil
}
