package wire

import (
	"reflect"
	"testing"

	"ips/internal/query"
)

// FuzzDecodeAdd checks the add decoder on hostile bytes and round-trips
// re-encoded values.
func FuzzDecodeAdd(f *testing.F) {
	f.Add(EncodeAdd(&AddRequest{Caller: "c", Table: "t", ProfileID: 9,
		Entries: []AddEntry{{Timestamp: 5, Slot: 1, Type: 2, FID: 3, Counts: []int64{1, -2}}}}))
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAdd(data)
		if err != nil {
			return
		}
		// Whatever decoded must survive a re-encode/re-decode cycle.
		again, err := DecodeAdd(EncodeAdd(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeAdd(req), normalizeAdd(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", req, again)
		}
	})
}

// normalizeAdd maps empty slices to nil so DeepEqual compares semantics.
func normalizeAdd(r *AddRequest) *AddRequest {
	if len(r.Entries) == 0 {
		r.Entries = nil
	}
	for i := range r.Entries {
		if len(r.Entries[i].Counts) == 0 {
			r.Entries[i].Counts = nil
		}
	}
	return r
}

// FuzzDecodeQuery does the same for query requests.
func FuzzDecodeQuery(f *testing.F) {
	f.Add(EncodeQuery(&QueryRequest{Caller: "c", Table: "t", ProfileID: 1,
		RangeKind: query.Current, Span: 100, SortBy: query.ByAction, K: 5}))
	f.Add([]byte{0x0a, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeQuery(data)
		if err != nil {
			return
		}
		again, err := DecodeQuery(EncodeQuery(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(req.FIDs) == 0 {
			req.FIDs = nil
		}
		if len(again.FIDs) == 0 {
			again.FIDs = nil
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", req, again)
		}
	})
}

// FuzzDecodeQueryResponse covers the response path.
func FuzzDecodeQueryResponse(f *testing.F) {
	f.Add(EncodeQueryResponse(&QueryResponse{SlicesScanned: 3, CacheHit: true, ServerNanos: 42}))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeQueryResponse(data)
		if err != nil {
			return
		}
		if _, err := DecodeQueryResponse(EncodeQueryResponse(resp)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
