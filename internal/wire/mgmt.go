package wire

import (
	"ips/internal/codec"
	"ips/internal/model"
)

// Management methods (the paper's §II-B notes IPS also exposes internal
// management operations; these are the ones a production operator needs:
// profile deletion for privacy compliance, live quota changes, the
// isolation hot switch (§III-F), and remote registration of weighted-sum
// UDAFs).
const (
	MethodDeleteProfile = "ips.mgmt.delete_profile"
	MethodSetQuota      = "ips.mgmt.set_quota"
	MethodSetIsolation  = "ips.mgmt.set_isolation"
	MethodRegisterUDAF  = "ips.mgmt.register_udaf"
	MethodListTables    = "ips.mgmt.tables"
	MethodListUDAFs     = "ips.mgmt.udafs"
)

// DeleteProfileRequest removes one profile from cache and storage.
type DeleteProfileRequest struct {
	Table     string
	ProfileID model.ProfileID
}

// SetQuotaRequest installs a per-caller QPS quota (QPS <= 0 removes it).
type SetQuotaRequest struct {
	Caller string
	QPS    float64
}

// SetIsolationRequest toggles read-write isolation live.
type SetIsolationRequest struct {
	Enabled bool
}

// RegisterUDAFRequest registers a weighted-sum UDAF under a name.
type RegisterUDAFRequest struct {
	Name    string
	Weights []float64
}

// StringList is a generic names response.
type StringList struct {
	Names []string
}

const (
	fDelTable   = 1
	fDelProfile = 2

	fQuotaCaller = 1
	fQuotaQPS    = 2

	fIsoEnabled = 1

	fUDAFName2   = 1
	fUDAFWeights = 2

	fListName = 1
)

// EncodeDeleteProfile serializes the request.
func EncodeDeleteProfile(r *DeleteProfileRequest) []byte {
	var e codec.Buffer
	e.String(fDelTable, r.Table)
	e.Uint64(fDelProfile, r.ProfileID)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeDeleteProfile parses the request.
func DecodeDeleteProfile(data []byte) (*DeleteProfileRequest, error) {
	r := &DeleteProfileRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("delete", err)
		}
		switch f {
		case fDelTable:
			r.Table, err = rd.String()
		case fDelProfile:
			r.ProfileID, err = rd.Uint64()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("delete field", err)
		}
	}
	return r, nil
}

// EncodeSetQuota serializes the request.
func EncodeSetQuota(r *SetQuotaRequest) []byte {
	var e codec.Buffer
	e.String(fQuotaCaller, r.Caller)
	e.Float64(fQuotaQPS, r.QPS)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeSetQuota parses the request.
func DecodeSetQuota(data []byte) (*SetQuotaRequest, error) {
	r := &SetQuotaRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("quota", err)
		}
		switch f {
		case fQuotaCaller:
			r.Caller, err = rd.String()
		case fQuotaQPS:
			r.QPS, err = rd.Float64()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("quota field", err)
		}
	}
	return r, nil
}

// EncodeSetIsolation serializes the request.
func EncodeSetIsolation(r *SetIsolationRequest) []byte {
	var e codec.Buffer
	e.Bool(fIsoEnabled, r.Enabled)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeSetIsolation parses the request.
func DecodeSetIsolation(data []byte) (*SetIsolationRequest, error) {
	r := &SetIsolationRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("isolation", err)
		}
		switch f {
		case fIsoEnabled:
			r.Enabled, err = rd.Bool()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("isolation field", err)
		}
	}
	return r, nil
}

// EncodeRegisterUDAF serializes the request.
func EncodeRegisterUDAF(r *RegisterUDAFRequest) []byte {
	var e codec.Buffer
	e.String(fUDAFName2, r.Name)
	for _, w := range r.Weights {
		e.Float64(fUDAFWeights, w)
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeRegisterUDAF parses the request.
func DecodeRegisterUDAF(data []byte) (*RegisterUDAFRequest, error) {
	r := &RegisterUDAFRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("udaf", err)
		}
		switch f {
		case fUDAFName2:
			r.Name, err = rd.String()
		case fUDAFWeights:
			var w float64
			if w, err = rd.Float64(); err == nil {
				r.Weights = append(r.Weights, w)
			}
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("udaf field", err)
		}
	}
	return r, nil
}

// EncodeStringList serializes a names response.
func EncodeStringList(r *StringList) []byte {
	var e codec.Buffer
	for _, n := range r.Names {
		e.String(fListName, n)
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeStringList parses a names response.
func DecodeStringList(data []byte) (*StringList, error) {
	r := &StringList{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("list", err)
		}
		switch f {
		case fListName:
			var n string
			if n, err = rd.String(); err == nil {
				r.Names = append(r.Names, n)
			}
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("list field", err)
		}
	}
	return r, nil
}
