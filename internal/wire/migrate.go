package wire

import (
	"fmt"

	"ips/internal/codec"
	"ips/internal/model"
)

// Migration methods (elastic resharding, DESIGN.md "Elastic resharding").
// A rebalance coordinator drives the handoff in passes: `snapshot` asks
// the current owner to drain a set of profiles through its flush path
// (journal watermarks advance, blobs become durable) and ship the flushed
// blobs; `install` lands them on the new owner. The final pass sets
// Release on the snapshot (the old owner drops the profiles after
// flushing) and Mark on the install (the new owner only raises its
// migration watermark — the dual-write window already delivered the
// content).
const (
	MethodMigrateSnapshot = "ips.migrate.snapshot"
	MethodMigrateInstall  = "ips.migrate.install"
)

// MigrateRequest asks the owner to snapshot (and optionally release) a
// set of profiles in one table.
type MigrateRequest struct {
	Table string
	IDs   []model.ProfileID
	// Release drops each profile from the owner's cache after its flush,
	// invalidating hot slots — the cutover step.
	Release bool
}

// MigrateFrame is one handed-off profile: the flushed blob plus the
// owner's journal watermarks at drain time. WalLSN is the freshness
// token the conservation suite tracks: every write the owner acked for
// this profile has an LSN <= WalLSN.
type MigrateFrame struct {
	ProfileID model.ProfileID
	WalLSN    uint64
	MergedLSN uint64
	MigLSN    uint64
	Blob      []byte
	// Compressed marks Blob as snap-compressed: a warm-tier export ships
	// the already-compressed form instead of re-encoding the profile,
	// and the installer inflates before decoding.
	Compressed bool
}

// MigrateFrames is the snapshot response: the drained frames plus the
// owner's journal truncation watermark (0 when journaling is off).
type MigrateFrames struct {
	Watermark uint64
	Frames    []MigrateFrame
}

// MigrateInstallRequest lands frames on the new owner. Mark selects
// watermark-only installs: the profile's MigLSN is raised without
// touching its content (used by the release pass, when dual writes have
// already delivered every effect and a content replace could discard
// post-cutover writes).
type MigrateInstallRequest struct {
	Table  string
	Mark   bool
	Frames []MigrateFrame
}

// MigrateInstalled reports what the install applied.
type MigrateInstalled struct {
	Installed int64 // content installs (replace or insert)
	Marked    int64 // watermark-only raises
}

// Field numbers.
const (
	fMigTable   = 1
	fMigID      = 2
	fMigRelease = 3

	fMigWatermark = 1
	fMigFrame     = 2

	fFrameID     = 1
	fFrameWal    = 2
	fFrameMerged = 3
	fFrameMig    = 4
	fFrameBlob   = 5
	fFrameComp   = 6

	fInstTable2 = 1
	fInstMark   = 2
	fInstFrame  = 3

	fInstDone   = 1
	fInstMarked = 2
)

// EncodeMigrateRequest serializes the snapshot request.
func EncodeMigrateRequest(r *MigrateRequest) []byte {
	var e codec.Buffer
	e.String(fMigTable, r.Table)
	for _, id := range r.IDs {
		e.Uint64(fMigID, id)
	}
	e.Bool(fMigRelease, r.Release)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeMigrateRequest parses the snapshot request.
func DecodeMigrateRequest(data []byte) (*MigrateRequest, error) {
	r := &MigrateRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("migrate req", err)
		}
		switch f {
		case fMigTable:
			r.Table, err = rd.String()
		case fMigID:
			var id uint64
			if id, err = rd.Uint64(); err == nil {
				r.IDs = append(r.IDs, id)
			}
		case fMigRelease:
			r.Release, err = rd.Bool()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("migrate req field", err)
		}
	}
	if r.Table == "" {
		return nil, decodeErr("migrate req", fmt.Errorf("missing table"))
	}
	return r, nil
}

func encodeFrame(e *codec.Buffer, fr *MigrateFrame) {
	e.Uint64(fFrameID, fr.ProfileID)
	e.Uint64(fFrameWal, fr.WalLSN)
	if fr.MergedLSN != 0 {
		e.Uint64(fFrameMerged, fr.MergedLSN)
	}
	if fr.MigLSN != 0 {
		e.Uint64(fFrameMig, fr.MigLSN)
	}
	if len(fr.Blob) > 0 {
		e.Raw(fFrameBlob, fr.Blob)
	}
	if fr.Compressed {
		e.Bool(fFrameComp, true)
	}
}

// decodeFrame parses one frame, enforcing the structural invariants the
// install path relies on: a frame must name a profile (ID 0 is a
// dangling reference — nothing can anchor its watermark), and a
// mark-mode consumer additionally requires a nonzero watermark (checked
// by the caller, which knows the mode).
func decodeFrame(rd *codec.Reader) (MigrateFrame, error) {
	var fr MigrateFrame
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return fr, decodeErr("migrate frame", err)
		}
		switch f {
		case fFrameID:
			fr.ProfileID, err = rd.Uint64()
		case fFrameWal:
			fr.WalLSN, err = rd.Uint64()
		case fFrameMerged:
			fr.MergedLSN, err = rd.Uint64()
		case fFrameMig:
			fr.MigLSN, err = rd.Uint64()
		case fFrameBlob:
			var b []byte
			if b, err = rd.Bytes(); err == nil {
				fr.Blob = append([]byte(nil), b...)
			}
		case fFrameComp:
			fr.Compressed, err = rd.Bool()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return fr, decodeErr("migrate frame field", err)
		}
	}
	if fr.ProfileID == 0 {
		return fr, decodeErr("migrate frame", fmt.Errorf("frame without profile id"))
	}
	return fr, nil
}

// EncodeMigrateFrames serializes the snapshot response.
func EncodeMigrateFrames(r *MigrateFrames) []byte {
	var e codec.Buffer
	if r.Watermark != 0 {
		e.Uint64(fMigWatermark, r.Watermark)
	}
	for i := range r.Frames {
		fr := &r.Frames[i]
		e.Message(fMigFrame, func(b *codec.Buffer) { encodeFrame(b, fr) })
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeMigrateFrames parses the snapshot response.
func DecodeMigrateFrames(data []byte) (*MigrateFrames, error) {
	r := &MigrateFrames{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("migrate frames", err)
		}
		switch f {
		case fMigWatermark:
			r.Watermark, err = rd.Uint64()
		case fMigFrame:
			var sub *codec.Reader
			if sub, err = rd.Message(); err == nil {
				var fr MigrateFrame
				if fr, err = decodeFrame(sub); err == nil {
					r.Frames = append(r.Frames, fr)
				}
			}
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("migrate frames field", err)
		}
	}
	return r, nil
}

// EncodeMigrateInstall serializes the install request.
func EncodeMigrateInstall(r *MigrateInstallRequest) []byte {
	var e codec.Buffer
	e.String(fInstTable2, r.Table)
	e.Bool(fInstMark, r.Mark)
	for i := range r.Frames {
		fr := &r.Frames[i]
		e.Message(fInstFrame, func(b *codec.Buffer) { encodeFrame(b, fr) })
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeMigrateInstall parses the install request. Mark-mode frames with
// a zero watermark are rejected: a watermark-only install that names no
// watermark is a dangling reference and would silently do nothing.
func DecodeMigrateInstall(data []byte) (*MigrateInstallRequest, error) {
	r := &MigrateInstallRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("migrate install", err)
		}
		switch f {
		case fInstTable2:
			r.Table, err = rd.String()
		case fInstMark:
			r.Mark, err = rd.Bool()
		case fInstFrame:
			var sub *codec.Reader
			if sub, err = rd.Message(); err == nil {
				var fr MigrateFrame
				if fr, err = decodeFrame(sub); err == nil {
					r.Frames = append(r.Frames, fr)
				}
			}
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("migrate install field", err)
		}
	}
	if r.Table == "" {
		return nil, decodeErr("migrate install", fmt.Errorf("missing table"))
	}
	if r.Mark {
		for i := range r.Frames {
			if r.Frames[i].WalLSN == 0 && r.Frames[i].MigLSN == 0 {
				return nil, decodeErr("migrate install", fmt.Errorf("mark frame for profile %d without watermark", r.Frames[i].ProfileID))
			}
		}
	}
	return r, nil
}

// EncodeMigrateInstalled serializes the install response.
func EncodeMigrateInstalled(r *MigrateInstalled) []byte {
	var e codec.Buffer
	e.Int64(fInstDone, r.Installed)
	e.Int64(fInstMarked, r.Marked)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeMigrateInstalled parses the install response.
func DecodeMigrateInstalled(data []byte) (*MigrateInstalled, error) {
	r := &MigrateInstalled{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("migrate installed", err)
		}
		switch f {
		case fInstDone:
			r.Installed, err = rd.Int64()
		case fInstMarked:
			r.Marked, err = rd.Int64()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("migrate installed field", err)
		}
	}
	return r, nil
}
