package wire

import (
	"errors"

	"ips/internal/codec"
	"ips/internal/model"
)

// errPipelineTooLong rejects oversized pipeline programs at decode time.
var errPipelineTooLong = errors.New("pipeline text exceeds MaxPipelineLen")

// Continuous-query subscription messages (DESIGN.md "Continuous
// queries"). A subscription opens an rpc stream on MethodSubWatch whose
// opening payload is a SubscribeRequest: the standing query travels as
// pipeline text (the language is its own wire form; the server parses
// it). Every pushed stream-data frame is one SubUpdate.
const (
	// MethodSubWatch is the stream method a client opens to register a
	// standing query and receive pushed updates.
	MethodSubWatch = "ips.sub.watch"
)

// MaxPipelineLen bounds the pipeline text a SubscribeRequest may carry;
// longer programs are rejected at decode time before parsing.
const MaxPipelineLen = 1 << 16

// SubscribeRequest opens one subscription: Pipeline is the standing
// query in the pipeline language (`source(table, ids) | ... | topk(n)`),
// Caller attributes the subscription's server-side evaluations for
// quota and metrics.
type SubscribeRequest struct {
	Caller   string
	Pipeline string
}

// SubUpdate is one pushed update: the re-evaluated standing-query result
// for ProfileID. Seq increases by one per delivered update per
// (stream, profile); it never gaps — lost updates are signalled by
// Resync instead. Resync marks a full-state baseline the client must
// replace its view with: the first update for each profile after
// (re)subscribe, and the recovery update after the server dropped
// pushes for a slow consumer.
type SubUpdate struct {
	ProfileID model.ProfileID
	Seq       uint64
	Resync    bool
	// Result is the standing query's current answer for ProfileID,
	// reusing the read path's response message.
	Result QueryResponse
}

const (
	fSubCaller   = 1
	fSubPipeline = 2

	fSubUpdProfile = 1
	fSubUpdSeq     = 2
	fSubUpdResync  = 3
	fSubUpdResult  = 4
)

// EncodeSubscribe serializes a SubscribeRequest.
func EncodeSubscribe(r *SubscribeRequest) []byte {
	var e codec.Buffer
	e.String(fSubCaller, r.Caller)
	e.String(fSubPipeline, r.Pipeline)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeSubscribe parses a SubscribeRequest.
func DecodeSubscribe(data []byte) (*SubscribeRequest, error) {
	r := &SubscribeRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("subscribe", err)
		}
		switch f {
		case fSubCaller:
			r.Caller, err = rd.String()
		case fSubPipeline:
			r.Pipeline, err = rd.String()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("subscribe field", err)
		}
	}
	if len(r.Pipeline) > MaxPipelineLen {
		return nil, decodeErr("subscribe", errPipelineTooLong)
	}
	return r, nil
}

// AppendSubUpdate serializes a SubUpdate into dst's storage and returns
// the extended slice; with a reused dst the push path encodes without
// per-update allocations.
func AppendSubUpdate(dst []byte, u *SubUpdate) []byte {
	var e codec.Buffer
	e.Attach(dst)
	e.Uint64(fSubUpdProfile, u.ProfileID)
	e.Uint64(fSubUpdSeq, u.Seq)
	e.Bool(fSubUpdResync, u.Resync)
	start := e.BeginMessage(fSubUpdResult)
	appendQueryResponseFields(&e, &u.Result)
	e.EndMessage(start)
	return e.Detach()
}

// EncodeSubUpdate serializes a SubUpdate into fresh storage.
func EncodeSubUpdate(u *SubUpdate) []byte {
	return AppendSubUpdate(nil, u)
}

// DecodeSubUpdateInto parses a SubUpdate into u, reusing u.Result's
// feature storage.
func DecodeSubUpdateInto(data []byte, u *SubUpdate) error {
	u.ProfileID, u.Seq, u.Resync = 0, 0, false
	u.Result.Features = u.Result.Features[:0]
	u.Result.SlicesScanned, u.Result.CacheHit, u.Result.ServerNanos, u.Result.WalLSN = 0, false, 0, 0
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return decodeErr("subupdate", err)
		}
		switch f {
		case fSubUpdProfile:
			u.ProfileID, err = rd.Uint64()
		case fSubUpdSeq:
			u.Seq, err = rd.Uint64()
		case fSubUpdResync:
			u.Resync, err = rd.Bool()
		case fSubUpdResult:
			var b []byte
			if b, err = rd.Bytes(); err == nil {
				err = DecodeQueryResponseInto(b, &u.Result)
			}
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return decodeErr("subupdate field", err)
		}
	}
	return nil
}

// DecodeSubUpdate parses a SubUpdate into fresh storage.
func DecodeSubUpdate(data []byte) (*SubUpdate, error) {
	u := &SubUpdate{}
	if err := DecodeSubUpdateInto(data, u); err != nil {
		return nil, err
	}
	return u, nil
}
