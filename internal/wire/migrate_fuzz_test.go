package wire

import (
	"reflect"
	"testing"

	"ips/internal/codec"
	"ips/internal/model"
	"ips/internal/snap"
)

// migFrame hand-builds a migration frame from raw field values — for
// corpus entries the encoder would never produce (zero profile IDs,
// mark frames without watermarks, blobs that are not valid profiles).
func migFrame(id, wal, mig uint64, blob []byte) func(*codec.Buffer) {
	return func(b *codec.Buffer) {
		if id != 0 {
			b.Uint64(fFrameID, id)
		}
		b.Uint64(fFrameWal, wal)
		if mig != 0 {
			b.Uint64(fFrameMig, mig)
		}
		if blob != nil {
			b.Raw(fFrameBlob, blob)
		}
	}
}

func migInstallFrame(mark bool, frames ...func(*codec.Buffer)) []byte {
	var e codec.Buffer
	e.String(fInstTable2, "user")
	e.Bool(fInstMark, mark)
	for _, fr := range frames {
		e.Message(fInstFrame, fr)
	}
	return append([]byte(nil), e.Bytes()...)
}

func sampleProfileBlob(t testing.TB) []byte {
	p := model.NewProfile(42)
	sch := model.NewSchema("click", "like")
	if err := p.Add(sch, 1000, 1000, 1, 2, 7, []int64{3, 4}); err != nil {
		t.Fatalf("seed profile: %v", err)
	}
	p.WalLSN = 9
	p.MigLSN = 5
	return MarshalProfileLocked(p)
}

// MarshalProfileLocked marshals under RLock, as gcache does.
func MarshalProfileLocked(p *model.Profile) []byte {
	p.RLock()
	defer p.RUnlock()
	return model.MarshalProfile(p)
}

// FuzzDecodeMigrateInstall covers the install decoder on hostile frames:
// truncated blobs, frames without profile IDs (dangling watermark refs —
// a watermark nothing can anchor), mark frames with zero watermarks, and
// raw garbage. Whatever decodes must re-encode to a fixpoint, every
// frame must name a profile, and every blob that survives decoding must
// either unmarshal as a profile or error cleanly — never panic.
func FuzzDecodeMigrateInstall(f *testing.F) {
	blob := sampleProfileBlob(f)

	// Encoder-shaped seeds.
	f.Add(EncodeMigrateInstall(&MigrateInstallRequest{Table: "user", Frames: []MigrateFrame{
		{ProfileID: 42, WalLSN: 9, MergedLSN: 3, MigLSN: 5, Blob: blob},
		{ProfileID: 7, WalLSN: 1},
	}}))
	f.Add(EncodeMigrateInstall(&MigrateInstallRequest{Table: "user", Mark: true, Frames: []MigrateFrame{
		{ProfileID: 42, WalLSN: 9},
	}}))
	f.Add(EncodeMigrateInstall(&MigrateInstallRequest{Table: "user"}))
	// Warm-tier export: the blob ships snap-compressed.
	f.Add(EncodeMigrateInstall(&MigrateInstallRequest{Table: "user", Frames: []MigrateFrame{
		{ProfileID: 42, WalLSN: 9, MigLSN: 5, Blob: snap.Encode(nil, blob), Compressed: true},
		// Compressed flag on raw bytes (install must error, not panic).
		{ProfileID: 7, WalLSN: 1, Blob: []byte{0xff, 0x00, 0x13}, Compressed: true},
	}}))

	// Hostile hand-built frames.
	// Frame without a profile ID: dangling watermark ref.
	f.Add(migInstallFrame(false, migFrame(0, 9, 0, blob)))
	// Mark frame with zero watermark.
	f.Add(migInstallFrame(true, migFrame(42, 0, 0, nil)))
	// Truncated blob: cut a valid profile encoding mid-varint.
	f.Add(migInstallFrame(false, migFrame(42, 9, 0, blob[:len(blob)/2])))
	// Blob that is itself an install frame (nesting confusion).
	self := migInstallFrame(false, migFrame(42, 9, 0, blob))
	f.Add(migInstallFrame(false, migFrame(42, 9, 0, self)))
	// Hostile raw bytes: bad tags, length prefixes past the buffer.
	f.Add([]byte{0x0a, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x1a, 0x05, 0x08, 0x01, 0x10})
	f.Add([]byte{0x12, 0x01, 0x01, 0x1a, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeMigrateInstall(data)
		if err != nil {
			return
		}
		for i := range r.Frames {
			if r.Frames[i].ProfileID == 0 {
				t.Fatalf("frame %d: decoded without a profile id", i)
			}
			if r.Mark && r.Frames[i].WalLSN == 0 && r.Frames[i].MigLSN == 0 {
				t.Fatalf("frame %d: mark frame decoded with zero watermark", i)
			}
			if len(r.Frames[i].Blob) > 0 {
				// Must never panic; errors are fine (hostile blobs).
				_, _ = model.UnmarshalProfile(r.Frames[i].Blob)
			}
		}
		again, err := DecodeMigrateInstall(EncodeMigrateInstall(r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeInstall(r), normalizeInstall(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", r, again)
		}
	})
}

// normalizeInstall maps empty and nil slices to a canonical form for
// fixpoint comparison (the encoder drops empty blobs).
func normalizeInstall(r *MigrateInstallRequest) *MigrateInstallRequest {
	c := &MigrateInstallRequest{Table: r.Table, Mark: r.Mark}
	for _, fr := range r.Frames {
		if len(fr.Blob) == 0 {
			fr.Blob = nil
		}
		c.Frames = append(c.Frames, fr)
	}
	return c
}

// FuzzDecodeMigrateFrames covers the snapshot-response decoder the same
// way: truncations, garbage watermarks, and hostile lengths must decode
// cleanly or error — and a successful decode must round-trip.
func FuzzDecodeMigrateFrames(f *testing.F) {
	blob := sampleProfileBlob(f)
	f.Add(EncodeMigrateFrames(&MigrateFrames{Watermark: 12, Frames: []MigrateFrame{
		{ProfileID: 42, WalLSN: 9, Blob: blob},
		{ProfileID: 43, WalLSN: 11, MergedLSN: 2},
		{ProfileID: 44, WalLSN: 13, Blob: snap.Encode(nil, blob), Compressed: true},
	}}))
	f.Add(EncodeMigrateFrames(&MigrateFrames{}))
	var hostile codec.Buffer
	hostile.Uint64(fMigWatermark, 1<<63)
	hostile.Message(fMigFrame, migFrame(0, 0, 0, nil))
	f.Add(append([]byte(nil), hostile.Bytes()...))
	f.Add([]byte{0x12, 0xff, 0x01, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeMigrateFrames(data)
		if err != nil {
			return
		}
		for i := range r.Frames {
			if r.Frames[i].ProfileID == 0 {
				t.Fatalf("frame %d: decoded without a profile id", i)
			}
		}
		again, err := DecodeMigrateFrames(EncodeMigrateFrames(r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		norm := func(m *MigrateFrames) *MigrateFrames {
			c := &MigrateFrames{Watermark: m.Watermark}
			for _, fr := range m.Frames {
				if len(fr.Blob) == 0 {
					fr.Blob = nil
				}
				c.Frames = append(c.Frames, fr)
			}
			return c
		}
		if !reflect.DeepEqual(norm(r), norm(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", r, again)
		}
	})
}

// TestMigrateRequestRoundTrip pins the snapshot-request encoding.
func TestMigrateRequestRoundTrip(t *testing.T) {
	r := &MigrateRequest{Table: "user", IDs: []model.ProfileID{3, 1, 4, 1, 5}, Release: true}
	got, err := DecodeMigrateRequest(EncodeMigrateRequest(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, r)
	}
	if _, err := DecodeMigrateRequest(nil); err == nil {
		t.Fatal("empty request (no table) must not decode")
	}
}

// TestMigrateInstallDanglingWatermark pins that mark-mode frames without
// any watermark are a decode error, not a silent no-op: an installer
// that accepted them would report Marked counts for installs that
// changed nothing, and the conservation suite would pass vacuously.
func TestMigrateInstallDanglingWatermark(t *testing.T) {
	if _, err := DecodeMigrateInstall(migInstallFrame(true, migFrame(42, 0, 0, nil))); err == nil {
		t.Fatal("mark frame with zero watermark must not decode")
	}
	// The same frame in content mode is fine: a zero watermark just means
	// the source never journaled.
	if _, err := DecodeMigrateInstall(migInstallFrame(false, migFrame(42, 0, 0, nil))); err != nil {
		t.Fatalf("content frame with zero watermark must decode: %v", err)
	}
	// And a frame without a profile ID is always an error.
	if _, err := DecodeMigrateInstall(migInstallFrame(false, migFrame(0, 9, 0, nil))); err == nil {
		t.Fatal("frame without profile id must not decode")
	}
}

// TestMigrateFrameCompressedRoundTrip pins the Compressed flag's wire
// behavior: it survives a round trip alongside its blob, and its absence
// decodes as false (frames from pre-tiered senders are raw blobs).
func TestMigrateFrameCompressedRoundTrip(t *testing.T) {
	blob := sampleProfileBlob(t)
	r := &MigrateInstallRequest{Table: "user", Frames: []MigrateFrame{
		{ProfileID: 42, WalLSN: 9, Blob: snap.Encode(nil, blob), Compressed: true},
		{ProfileID: 43, WalLSN: 10, Blob: blob},
	}}
	got, err := DecodeMigrateInstall(EncodeMigrateInstall(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Frames[0].Compressed {
		t.Fatal("Compressed flag lost in round trip")
	}
	if got.Frames[1].Compressed {
		t.Fatal("raw frame decoded as compressed")
	}
	inflated, err := snap.Decode(nil, got.Frames[0].Blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inflated, blob) {
		t.Fatal("compressed blob does not inflate back to the original")
	}
}

// TestMigrateInstalledRoundTrip pins the install-response encoding.
func TestMigrateInstalledRoundTrip(t *testing.T) {
	r := &MigrateInstalled{Installed: 17, Marked: 5}
	got, err := DecodeMigrateInstalled(EncodeMigrateInstalled(r))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip mismatch: %+v != %+v", got, r)
	}
}

// TestMigrateFrameTruncatedBlob pins that a truncated profile blob
// inside an otherwise valid frame decodes at the wire layer (the blob is
// opaque bytes there) and then fails cleanly in UnmarshalProfile.
func TestMigrateFrameTruncatedBlob(t *testing.T) {
	blob := sampleProfileBlob(t)
	for cut := 1; cut < len(blob); cut += 3 {
		frame := migInstallFrame(false, migFrame(42, 9, 0, blob[:cut]))
		r, err := DecodeMigrateInstall(frame)
		if err != nil {
			t.Fatalf("cut %d: wire decode failed: %v", cut, err)
		}
		// Opaque at the wire layer; the install path must surface the
		// unmarshal error rather than panic. (Some prefixes happen to be
		// valid encodings of a smaller profile — that is fine too.)
		_, _ = model.UnmarshalProfile(r.Frames[0].Blob)
	}
}
