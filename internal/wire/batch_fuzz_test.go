package wire

import (
	"reflect"
	"testing"

	"ips/internal/model"
	"ips/internal/query"
)

// normalizeBatchReq maps empty slices to nil so DeepEqual compares
// semantics, mirroring normalizeAdd.
func normalizeBatchReq(r *BatchQueryRequest) *BatchQueryRequest {
	if len(r.Subs) == 0 {
		r.Subs = nil
	}
	for i := range r.Subs {
		if len(r.Subs[i].Query.FIDs) == 0 {
			r.Subs[i].Query.FIDs = nil
		}
	}
	return r
}

func normalizeBatchResp(r *BatchQueryResponse) *BatchQueryResponse {
	if len(r.Results) == 0 {
		r.Results = nil
	}
	for i := range r.Results {
		resp := r.Results[i].Resp
		if resp == nil {
			continue
		}
		if len(resp.Features) == 0 {
			resp.Features = nil
		}
		for j := range resp.Features {
			if len(resp.Features[j].Counts) == 0 {
				resp.Features[j].Counts = nil
			}
		}
	}
	return r
}

// FuzzDecodeQueryBatch checks the batch request decoder on hostile bytes
// and round-trips whatever decodes.
func FuzzDecodeQueryBatch(f *testing.F) {
	f.Add(EncodeQueryBatch(&BatchQueryRequest{Caller: "c", Subs: []SubQuery{
		{Op: OpTopK, Query: QueryRequest{Table: "t", ProfileID: 1,
			RangeKind: query.Current, Span: 100, SortBy: query.ByAction, Action: "like", K: 5}},
		{Op: OpFilter, Query: QueryRequest{Table: "t", ProfileID: 2, MinCount: 3}},
		{Op: OpDecay, Query: QueryRequest{Table: "t", ProfileID: 3,
			Decay: query.DecayExp, DecayFactor: 0.5}},
	}}))
	f.Add(EncodeQueryBatch(&BatchQueryRequest{}))
	f.Add([]byte{0x0a, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeQueryBatch(data)
		if err != nil {
			return
		}
		again, err := DecodeQueryBatch(EncodeQueryBatch(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeBatchReq(req), normalizeBatchReq(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", req, again)
		}
	})
}

// FuzzDecodeQueryBatchResponse covers the batch response path, including
// the Err=="" / Resp==nil distinction failed slots rely on.
func FuzzDecodeQueryBatchResponse(f *testing.F) {
	f.Add(EncodeQueryBatchResponse(&BatchQueryResponse{Results: []BatchResult{
		{Resp: &QueryResponse{SlicesScanned: 2, CacheHit: true, ServerNanos: 42,
			Features: []query.Feature{{FID: 7, Counts: []int64{3, -1}, LastSeen: 9}}}},
		{Err: "unknown table \"ghost\""},
		{Resp: &QueryResponse{}},
	}}))
	f.Add(EncodeQueryBatchResponse(&BatchQueryResponse{}))
	f.Add([]byte{0xff, 0x00, 0x12})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeQueryBatchResponse(data)
		if err != nil {
			return
		}
		again, err := DecodeQueryBatchResponse(EncodeQueryBatchResponse(resp))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeBatchResp(resp), normalizeBatchResp(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", resp, again)
		}
		// A slot is "failed" iff Err is non-empty; a failed slot never
		// carries a response object after a round-trip.
		for i, br := range again.Results {
			if br.Err != "" && br.Resp != nil {
				t.Fatalf("slot %d: error %q alongside a response", i, br.Err)
			}
		}
	})
}

// TestBatchCodecRoundTrip pins the happy-path encoding deterministically
// (the fuzzers only see it if coverage drives them there).
func TestBatchCodecRoundTrip(t *testing.T) {
	req := &BatchQueryRequest{Caller: "ranker", Subs: []SubQuery{
		{Op: OpDecay, Query: QueryRequest{Caller: "ranker", Table: "up", ProfileID: 12,
			Slot: 1, Type: 2, RangeKind: query.Relative, Span: 5000,
			SortBy: query.ByTotal, K: 3, Decay: query.DecayLinear, DecayFactor: 0.25,
			FIDs: []model.FeatureID{4, 5}}},
		{Op: OpTopK, Query: QueryRequest{Table: "up", ProfileID: 13}},
	}}
	got, err := DecodeQueryBatch(EncodeQueryBatch(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("request round-trip:\n%+v\n%+v", req, got)
	}

	resp := &BatchQueryResponse{Results: []BatchResult{
		{Resp: &QueryResponse{Features: []query.Feature{{FID: 9, Counts: []int64{1, 2}, LastSeen: 77, Score: 1.5}},
			SlicesScanned: 4, CacheHit: true, ServerNanos: 1234}},
		{Err: "query: CURRENT range needs positive span"},
	}}
	rgot, err := DecodeQueryBatchResponse(EncodeQueryBatchResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, rgot) {
		t.Fatalf("response round-trip:\n%+v\n%+v", resp, rgot)
	}
	if m := OpFilter.Method(); m != MethodFilter {
		t.Fatalf("OpFilter.Method() = %q", m)
	}
}
