// Package wire defines the request/response messages of the IPS RPC API
// (§II-B) and their binary encoding, shared by the server and the unified
// client. Method names:
//
//	ips.add              — add_profile
//	ips.add_batch        — add_profiles
//	ips.topk             — get_profile_topK
//	ips.filter           — get_profile_filter
//	ips.decay            — get_profile_decay
//	ips.query_batch      — coalesced multi-profile reads (batch.go)
//	ips.sub.watch        — continuous-query stream (sub.go); the one
//	                       stream-kind method: updates are pushed, not
//	                       polled, over the rpc package's stream frames
//	ips.stats            — instance statistics (management)
//	ips.ping             — liveness probe
//	ips.mgmt.*           — delete_profile, set_quota, set_isolation,
//	                       register_udaf, tables, udafs (mgmt.go)
//	ips.migrate.*        — snapshot, install (migrate.go, resharding)
//
// Every method except ips.sub.watch is request/response; the watch
// stream's open payload is a SubscribeRequest and each pushed frame is
// one SubUpdate.
package wire

import (
	"errors"
	"fmt"
	"sync"

	"ips/internal/codec"
	"ips/internal/model"
	"ips/internal/query"
)

// Method names served by an IPS instance.
const (
	MethodAdd      = "ips.add"
	MethodAddBatch = "ips.add_batch"
	MethodTopK     = "ips.topk"
	MethodFilter   = "ips.filter"
	MethodDecay    = "ips.decay"
	MethodStats    = "ips.stats"
	MethodPing     = "ips.ping"
)

// AddRequest is one add_profile write (§II-B1). A batched request carries
// multiple entries for one profile.
type AddRequest struct {
	Caller    string
	Table     string
	ProfileID model.ProfileID
	Entries   []AddEntry
}

// AddEntry is one (timestamp, slot, type, fid, counts) observation.
type AddEntry struct {
	Timestamp model.Millis
	Slot      model.SlotID
	Type      model.TypeID
	FID       model.FeatureID
	Counts    []int64
}

// QueryRequest covers topK, filter and decay reads (§II-B2); the method
// name selects which semantics the server applies.
type QueryRequest struct {
	Caller    string
	Table     string
	ProfileID model.ProfileID
	Slot      model.SlotID
	Type      model.TypeID
	AllTypes  bool

	RangeKind query.RangeKind
	Span      model.Millis
	From, To  model.Millis

	SortBy query.SortBy
	Action string
	K      int

	Decay       query.DecayFunc
	DecayFactor float64

	MinCount int64
	FIDs     []model.FeatureID

	// UDAFName selects a server-registered user-defined aggregate
	// function; with SortBy == ByUDAF results order by its score.
	UDAFName string
	// MinScore drops features scoring below the bound (requires
	// UDAFName).
	MinScore float64
}

// ToQuery converts the wire request into the engine's Request.
//
//ips:hotpath
func (q *QueryRequest) ToQuery() query.Request {
	req := query.Request{
		Slot:        q.Slot,
		Type:        q.Type,
		AllTypes:    q.AllTypes,
		Range:       query.TimeRange{Kind: q.RangeKind, Span: q.Span, From: q.From, To: q.To},
		SortBy:      q.SortBy,
		Action:      q.Action,
		K:           q.K,
		Decay:       q.Decay,
		DecayFactor: q.DecayFactor,
	}
	if q.MinCount > 0 || len(q.FIDs) > 0 {
		//ipslint:ignore hotpathalloc filtered queries leave the steady-state topK path
		f := &query.Filter{MinCount: q.MinCount}
		if len(q.FIDs) > 0 {
			//ipslint:ignore hotpathalloc filtered queries leave the steady-state topK path
			f.FIDs = make(map[model.FeatureID]bool, len(q.FIDs))
			for _, fid := range q.FIDs {
				f.FIDs[fid] = true
			}
		}
		req.Filter = f
	}
	req.MinScore = q.MinScore
	// The UDAF itself is resolved by the server from UDAFName.
	return req
}

// Interner dedupes the small vocabulary of wire strings — caller names,
// table names, actions, UDAF names — so a steady-state decode returns a
// resident string with zero allocations: the read-path map lookup keyed
// by string(b) is the compiler-recognized no-copy form. The table is
// bounded; beyond maxInterned distinct strings, first sights are copied
// but not retained (an abusive caller vocabulary cannot grow the map
// without bound).
type Interner struct {
	mu sync.RWMutex
	m  map[string]string
}

const maxInterned = 4096

// Intern returns a resident string equal to b. A nil *Interner degrades
// to a plain copying conversion.
//
//ips:hotpath-trust first-sight strings copy once; steady state is the RLock map hit
func (in *Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	in.mu.RLock()
	s, ok := in.m[string(b)]
	in.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	in.mu.Lock()
	if in.m == nil {
		in.m = make(map[string]string, 64)
	}
	if len(in.m) < maxInterned {
		in.m[s] = s
	}
	in.mu.Unlock()
	return s
}

// QueryResponse carries the aggregated features back to the caller.
type QueryResponse struct {
	Features      []query.Feature
	SlicesScanned int
	// CacheHit reports whether the profile was resident (Table II).
	CacheHit bool
	// ServerNanos is the server-side processing time, letting clients
	// split network from compute cost as Table II does.
	ServerNanos int64
	// WalLSN is the profile's freshness watermark at read time: the max of
	// its own journal watermark and the migration watermark carried over
	// from a previous owner (elastic resharding). During a dual-read
	// window the client prefers the fresher of two answers by this field,
	// and the migration-storm suite asserts post-cutover reads report a
	// value >= every pre-cutover ack. 0 when journaling is disabled and
	// the profile never migrated.
	WalLSN uint64
}

// StatsResponse summarises one instance's health for dashboards.
type StatsResponse struct {
	Name        string
	Region      string
	Profiles    int64
	MemUsage    int64
	HitRatioPct float64 // 0..100
	Queries     int64
	Writes      int64
	Rejected    int64
	FlushErrors int64
}

// --- encoding ---

// Field numbers per message.
const (
	fAddCaller  = 1
	fAddTable   = 2
	fAddProfile = 3
	fAddEntry   = 4

	fEntryTS     = 1
	fEntrySlot   = 2
	fEntryType   = 3
	fEntryFID    = 4
	fEntryCounts = 5

	fQCaller    = 1
	fQTable     = 2
	fQProfile   = 3
	fQSlot      = 4
	fQType      = 5
	fQAllTypes  = 6
	fQRangeKind = 7
	fQSpan      = 8
	fQFrom      = 9
	fQTo        = 10
	fQSortBy    = 11
	fQAction    = 12
	fQK         = 13
	fQDecay     = 14
	fQDecayF    = 15
	fQMinCount  = 16
	fQFIDs      = 17
	fQUDAFName  = 18
	fQMinScore  = 19

	fRFeature = 1
	fRScanned = 2
	fRHit     = 3
	fRNanos   = 4
	fRWal     = 5

	fFeatFID      = 1
	fFeatCounts   = 2
	fFeatLastSeen = 3
	fFeatScore    = 4

	fStName     = 1
	fStRegion   = 2
	fStProfiles = 3
	fStMem      = 4
	fStHit      = 5
	fStQueries  = 6
	fStWrites   = 7
	fStRejected = 8
	fStFlushErr = 9
)

// ErrDecode wraps malformed message errors.
var ErrDecode = errors.New("wire: malformed message")

//ips:hotpath-trust malformed-input error construction never runs on the steady-state path
func decodeErr(what string, err error) error {
	return fmt.Errorf("%w: %s: %v", ErrDecode, what, err)
}

// EncodeAdd serializes an AddRequest.
func EncodeAdd(r *AddRequest) []byte {
	var e codec.Buffer
	e.String(fAddCaller, r.Caller)
	e.String(fAddTable, r.Table)
	e.Uint64(fAddProfile, r.ProfileID)
	for _, en := range r.Entries {
		e.Message(fAddEntry, func(b *codec.Buffer) {
			b.Int64(fEntryTS, en.Timestamp)
			b.Uint32(fEntrySlot, en.Slot)
			b.Uint32(fEntryType, en.Type)
			b.Uint64(fEntryFID, en.FID)
			b.PackedI64(fEntryCounts, en.Counts)
		})
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeAdd parses an AddRequest.
func DecodeAdd(data []byte) (*AddRequest, error) {
	r := &AddRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("add", err)
		}
		switch f {
		case fAddCaller:
			if r.Caller, err = rd.String(); err != nil {
				return nil, decodeErr("caller", err)
			}
		case fAddTable:
			if r.Table, err = rd.String(); err != nil {
				return nil, decodeErr("table", err)
			}
		case fAddProfile:
			if r.ProfileID, err = rd.Uint64(); err != nil {
				return nil, decodeErr("profile", err)
			}
		case fAddEntry:
			sub, err := rd.Message()
			if err != nil {
				return nil, decodeErr("entry", err)
			}
			en, err := decodeEntry(sub)
			if err != nil {
				return nil, err
			}
			r.Entries = append(r.Entries, en)
		default:
			if err := rd.Skip(wt); err != nil {
				return nil, decodeErr("skip", err)
			}
		}
	}
	return r, nil
}

func decodeEntry(rd *codec.Reader) (AddEntry, error) {
	var en AddEntry
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return en, decodeErr("entry field", err)
		}
		switch f {
		case fEntryTS:
			if en.Timestamp, err = rd.Int64(); err != nil {
				return en, decodeErr("ts", err)
			}
		case fEntrySlot:
			if en.Slot, err = rd.Uint32(); err != nil {
				return en, decodeErr("slot", err)
			}
		case fEntryType:
			if en.Type, err = rd.Uint32(); err != nil {
				return en, decodeErr("type", err)
			}
		case fEntryFID:
			if en.FID, err = rd.Uint64(); err != nil {
				return en, decodeErr("fid", err)
			}
		case fEntryCounts:
			if en.Counts, err = rd.PackedI64(); err != nil {
				return en, decodeErr("counts", err)
			}
		default:
			if err := rd.Skip(wt); err != nil {
				return en, decodeErr("skip", err)
			}
		}
	}
	return en, nil
}

// EncodeQuery serializes a QueryRequest.
func EncodeQuery(q *QueryRequest) []byte {
	return AppendQuery(nil, q)
}

// AppendQuery serializes a QueryRequest into dst's storage and returns
// the extended slice — allocation-free when dst has capacity, which is
// how the client's pooled call scratch encodes requests.
//
//ips:hotpath
func AppendQuery(dst []byte, q *QueryRequest) []byte {
	var e codec.Buffer
	e.Attach(dst)
	e.String(fQCaller, q.Caller)
	e.String(fQTable, q.Table)
	e.Uint64(fQProfile, q.ProfileID)
	e.Uint32(fQSlot, q.Slot)
	e.Uint32(fQType, q.Type)
	e.Bool(fQAllTypes, q.AllTypes)
	e.Uint32(fQRangeKind, uint32(q.RangeKind))
	e.Int64(fQSpan, q.Span)
	e.Int64(fQFrom, q.From)
	e.Int64(fQTo, q.To)
	e.Uint32(fQSortBy, uint32(q.SortBy))
	e.String(fQAction, q.Action)
	e.Int64(fQK, int64(q.K))
	e.Uint32(fQDecay, uint32(q.Decay))
	e.Float64(fQDecayF, q.DecayFactor)
	e.Int64(fQMinCount, q.MinCount)
	if len(q.FIDs) > 0 {
		e.Packed64(fQFIDs, q.FIDs)
	}
	e.String(fQUDAFName, q.UDAFName)
	e.Float64(fQMinScore, q.MinScore)
	return e.Detach()
}

// DecodeQuery parses a QueryRequest.
func DecodeQuery(data []byte) (*QueryRequest, error) {
	q := &QueryRequest{}
	if err := DecodeQueryInto(data, q, nil); err != nil {
		return nil, err
	}
	return q, nil
}

// DecodeQueryInto parses a QueryRequest into a caller-owned (typically
// pooled) struct, reusing its FIDs storage. String fields go through
// the Interner so the steady-state vocabulary decodes without copies;
// a nil interner falls back to plain copying conversions.
//
//ips:hotpath
func DecodeQueryInto(data []byte, q *QueryRequest, in *Interner) error {
	fids := q.FIDs[:0]
	*q = QueryRequest{}
	q.FIDs = fids
	var rd codec.Reader
	rd.Reset(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return decodeErr("query", err)
		}
		switch f {
		case fQCaller:
			var b []byte
			if b, err = rd.Bytes(); err == nil {
				q.Caller = in.Intern(b)
			}
		case fQTable:
			var b []byte
			if b, err = rd.Bytes(); err == nil {
				q.Table = in.Intern(b)
			}
		case fQProfile:
			q.ProfileID, err = rd.Uint64()
		case fQSlot:
			q.Slot, err = rd.Uint32()
		case fQType:
			q.Type, err = rd.Uint32()
		case fQAllTypes:
			q.AllTypes, err = rd.Bool()
		case fQRangeKind:
			var v uint32
			v, err = rd.Uint32()
			q.RangeKind = query.RangeKind(v)
		case fQSpan:
			q.Span, err = rd.Int64()
		case fQFrom:
			q.From, err = rd.Int64()
		case fQTo:
			q.To, err = rd.Int64()
		case fQSortBy:
			var v uint32
			v, err = rd.Uint32()
			q.SortBy = query.SortBy(v)
		case fQAction:
			var b []byte
			if b, err = rd.Bytes(); err == nil {
				q.Action = in.Intern(b)
			}
		case fQK:
			var v int64
			v, err = rd.Int64()
			q.K = int(v)
		case fQDecay:
			var v uint32
			v, err = rd.Uint32()
			q.Decay = query.DecayFunc(v)
		case fQDecayF:
			q.DecayFactor, err = rd.Float64()
		case fQMinCount:
			q.MinCount, err = rd.Int64()
		case fQFIDs:
			q.FIDs, err = rd.Packed64Into(q.FIDs)
		case fQUDAFName:
			var b []byte
			if b, err = rd.Bytes(); err == nil {
				q.UDAFName = in.Intern(b)
			}
		case fQMinScore:
			q.MinScore, err = rd.Float64()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return decodeErr("query field", err)
		}
	}
	return nil
}

// EncodeQueryResponse serializes a QueryResponse.
func EncodeQueryResponse(r *QueryResponse) []byte {
	return AppendQueryResponse(nil, r)
}

// AppendQueryResponse serializes a QueryResponse into dst's storage and
// returns the extended slice. Nested feature messages go through the
// closure-free BeginMessage/EndMessage pair, so a warmed response
// encode performs zero allocations.
//
//ips:hotpath
func AppendQueryResponse(dst []byte, r *QueryResponse) []byte {
	var e codec.Buffer
	e.Attach(dst)
	appendQueryResponseFields(&e, r)
	return e.Detach()
}

// appendQueryResponseFields writes r's fields into an attached buffer;
// shared by the top-level response encode and the nested result message
// inside a SubUpdate (sub.go).
//
//ips:hotpath
func appendQueryResponseFields(e *codec.Buffer, r *QueryResponse) {
	for i := range r.Features {
		feat := &r.Features[i]
		start := e.BeginMessage(fRFeature)
		e.Uint64(fFeatFID, feat.FID)
		e.PackedI64(fFeatCounts, feat.Counts)
		e.Int64(fFeatLastSeen, feat.LastSeen)
		e.Float64(fFeatScore, feat.Score)
		e.EndMessage(start)
	}
	e.Int64(fRScanned, int64(r.SlicesScanned))
	e.Bool(fRHit, r.CacheHit)
	e.Int64(fRNanos, r.ServerNanos)
	if r.WalLSN != 0 {
		e.Uint64(fRWal, r.WalLSN)
	}
}

// DecodeQueryResponse parses a QueryResponse.
func DecodeQueryResponse(data []byte) (*QueryResponse, error) {
	r := &QueryResponse{}
	if err := DecodeQueryResponseInto(data, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeQueryResponseInto parses a QueryResponse into a caller-owned
// (typically pooled) struct, reusing the Features slice AND each
// element's Counts storage from previous decodes — a warmed client
// decode of a steady-state topK answer performs zero allocations.
//
//ips:hotpath
func DecodeQueryResponseInto(data []byte, r *QueryResponse) error {
	feats := r.Features[:0]
	n := 0
	*r = QueryResponse{}
	var rd codec.Reader
	rd.Reset(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return decodeErr("resp", err)
		}
		switch f {
		case fRFeature:
			var sub codec.Reader
			if err := rd.Sub(&sub); err != nil {
				return decodeErr("feature", err)
			}
			// Reuse the element (and its Counts backing) when one is
			// resident from an earlier decode.
			if n < cap(feats) {
				feats = feats[:n+1]
				feats[n] = query.Feature{Counts: feats[n].Counts[:0]}
			} else {
				feats = append(feats, query.Feature{})
			}
			feat := &feats[n]
			n++
			for !sub.Done() {
				f2, wt2, err := sub.Next()
				if err != nil {
					return decodeErr("feature field", err)
				}
				switch f2 {
				case fFeatFID:
					feat.FID, err = sub.Uint64()
				case fFeatCounts:
					feat.Counts, err = sub.PackedI64Into(feat.Counts)
				case fFeatLastSeen:
					feat.LastSeen, err = sub.Int64()
				case fFeatScore:
					feat.Score, err = sub.Float64()
				default:
					err = sub.Skip(wt2)
				}
				if err != nil {
					return decodeErr("feature field", err)
				}
			}
		case fRScanned:
			v, err := rd.Int64()
			if err != nil {
				return decodeErr("scanned", err)
			}
			r.SlicesScanned = int(v)
		case fRHit:
			var err error
			if r.CacheHit, err = rd.Bool(); err != nil {
				return decodeErr("hit", err)
			}
		case fRNanos:
			var err error
			if r.ServerNanos, err = rd.Int64(); err != nil {
				return decodeErr("nanos", err)
			}
		case fRWal:
			var err error
			if r.WalLSN, err = rd.Uint64(); err != nil {
				return decodeErr("wal", err)
			}
		default:
			if err := rd.Skip(wt); err != nil {
				return decodeErr("skip", err)
			}
		}
	}
	r.Features = feats
	return nil
}

// EncodeStats serializes a StatsResponse.
func EncodeStats(s *StatsResponse) []byte {
	var e codec.Buffer
	e.String(fStName, s.Name)
	e.String(fStRegion, s.Region)
	e.Int64(fStProfiles, s.Profiles)
	e.Int64(fStMem, s.MemUsage)
	e.Float64(fStHit, s.HitRatioPct)
	e.Int64(fStQueries, s.Queries)
	e.Int64(fStWrites, s.Writes)
	e.Int64(fStRejected, s.Rejected)
	e.Int64(fStFlushErr, s.FlushErrors)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeStats parses a StatsResponse.
func DecodeStats(data []byte) (*StatsResponse, error) {
	s := &StatsResponse{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("stats", err)
		}
		switch f {
		case fStName:
			s.Name, err = rd.String()
		case fStRegion:
			s.Region, err = rd.String()
		case fStProfiles:
			s.Profiles, err = rd.Int64()
		case fStMem:
			s.MemUsage, err = rd.Int64()
		case fStHit:
			s.HitRatioPct, err = rd.Float64()
		case fStQueries:
			s.Queries, err = rd.Int64()
		case fStWrites:
			s.Writes, err = rd.Int64()
		case fStRejected:
			s.Rejected, err = rd.Int64()
		case fStFlushErr:
			s.FlushErrors, err = rd.Int64()
		default:
			err = rd.Skip(wt)
		}
		if err != nil {
			return nil, decodeErr("stats field", err)
		}
	}
	return s, nil
}
