package wire

import (
	"reflect"
	"testing"

	"ips/internal/codec"
	"ips/internal/query"
)

// v2Frame hand-builds a shared-structure frame from raw blob payloads and
// (err, ref) result pairs — for corpus entries the encoder would never
// produce (dangling refs, duplicate refs to one blob, ref-before-blob
// field order).
func v2Frame(blobs [][]byte, results [][2]interface{}) []byte {
	var e codec.Buffer
	for _, b := range blobs {
		e.Raw(fB2Blob, b)
	}
	for _, r := range results {
		errStr := r[0].(string)
		ref := r[1].(uint32)
		e.Message(fB2Result, func(b *codec.Buffer) {
			b.String(fB2RErr, errStr)
			if ref != 0 {
				b.Uint32(fB2RRef, ref)
			}
		})
	}
	return append([]byte(nil), e.Bytes()...)
}

// FuzzDecodeQueryBatchResponseV2 covers the shared-structure decoder on
// hostile frames: duplicate references (two slots, one blob), dangling
// references past the pool, self-referential garbage, and truncations.
// Whatever decodes must re-encode to a fixpoint and uphold the failed-
// slot invariant (Err != "" => Resp == nil).
func FuzzDecodeQueryBatchResponseV2(f *testing.F) {
	shared := &QueryResponse{SlicesScanned: 2, CacheHit: true, ServerNanos: 42,
		Features: []query.Feature{{FID: 7, Counts: []int64{3, -1}, LastSeen: 9}}}

	// Encoder-shaped seeds: high duplication, failed slots, empty batch.
	f.Add(EncodeQueryBatchResponseV2(&BatchQueryResponse{Results: []BatchResult{
		{Resp: shared}, {Resp: shared}, {Resp: shared},
		{Err: "unknown table \"ghost\""},
		{Resp: &QueryResponse{}},
	}}))
	f.Add(EncodeQueryBatchResponseV2(&BatchQueryResponse{}))

	blob := EncodeQueryResponse(shared)
	// Duplicate refs: four slots sharing one blob.
	f.Add(v2Frame([][]byte{blob}, [][2]interface{}{
		{"", uint32(1)}, {"", uint32(1)}, {"", uint32(1)}, {"", uint32(1)},
	}))
	// Dangling ref: points past the pool — must be a decode error.
	f.Add(v2Frame([][]byte{blob}, [][2]interface{}{{"", uint32(2)}}))
	// Ref with an empty pool.
	f.Add(v2Frame(nil, [][2]interface{}{{"", uint32(7)}}))
	// Err alongside a valid ref: decodes with Resp == nil.
	f.Add(v2Frame([][]byte{blob}, [][2]interface{}{{"boom", uint32(1)}}))
	// A blob that is itself a v2 frame (ref "cycle" shape): the pool
	// decoder must treat it as a QueryResponse payload, never recurse.
	self := v2Frame([][]byte{blob}, [][2]interface{}{{"", uint32(1)}})
	f.Add(v2Frame([][]byte{self}, [][2]interface{}{{"", uint32(1)}}))
	// Hostile raw bytes.
	f.Add([]byte{0x0a, 0xff, 0x01})
	f.Add([]byte{0x12, 0x02, 0x10, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeQueryBatchResponseV2(data)
		if err != nil {
			return
		}
		again, err := DecodeQueryBatchResponseV2(EncodeQueryBatchResponseV2(resp))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeBatchResp(resp), normalizeBatchResp(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", resp, again)
		}
		for i, br := range again.Results {
			if br.Err != "" && br.Resp != nil {
				t.Fatalf("slot %d: error %q alongside a response", i, br.Err)
			}
		}
	})
}

// TestBatchV2DanglingRef pins that a reference past the blob pool is a
// decode error, not a nil slot — a decoder that silently nils the slot
// would mask server bugs as empty results.
func TestBatchV2DanglingRef(t *testing.T) {
	blob := EncodeQueryResponse(&QueryResponse{ServerNanos: 1})
	for _, ref := range []uint32{2, 3, 1 << 20} {
		frame := v2Frame([][]byte{blob}, [][2]interface{}{{"", ref}})
		if _, err := DecodeQueryBatchResponseV2(frame); err == nil {
			t.Fatalf("ref %d of 1 blob decoded without error", ref)
		}
	}
}

// TestBatchV2SharesDecodedBlobs: duplicate references resolve to the
// SAME decoded object — the codec-CPU half of the v2 win (decode once,
// point many times).
func TestBatchV2SharesDecodedBlobs(t *testing.T) {
	shared := &QueryResponse{CacheHit: true, ServerNanos: 7,
		Features: []query.Feature{{FID: 3, Counts: []int64{9, 9}}}}
	enc := EncodeQueryBatchResponseV2(&BatchQueryResponse{Results: []BatchResult{
		{Resp: shared}, {Resp: shared}, {Err: "x"}, {Resp: shared},
	}})
	got, err := DecodeQueryBatchResponseV2(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(got.Results))
	}
	if got.Results[0].Resp == nil || got.Results[0].Resp != got.Results[1].Resp || got.Results[1].Resp != got.Results[3].Resp {
		t.Fatal("duplicate refs must share one decoded response object")
	}
	if got.Results[2].Resp != nil || got.Results[2].Err != "x" {
		t.Fatalf("failed slot decoded as %+v", got.Results[2])
	}
}

// TestBatchV2MatchesV1 proves semantic equality of the two encodings:
// for any response, decode(encodeV2(r)) == decode(encodeV1(r)) — and
// quantifies the byte win at duplication factors 1, 8 and 64.
func TestBatchV2MatchesV1(t *testing.T) {
	big := &QueryResponse{SlicesScanned: 12, CacheHit: true, ServerNanos: 98765}
	for i := 0; i < 40; i++ {
		big.Features = append(big.Features, query.Feature{
			FID: uint64(i + 1), Counts: []int64{int64(i), int64(2 * i), 7}, LastSeen: 1000 + int64(i), Score: float64(i) / 3,
		})
	}
	for _, dup := range []int{1, 8, 64} {
		r := &BatchQueryResponse{}
		for i := 0; i < dup; i++ {
			r.Results = append(r.Results, BatchResult{Resp: big})
		}
		r.Results = append(r.Results, BatchResult{Err: "tail slot failed"})

		v1 := EncodeQueryBatchResponse(r)
		v2 := EncodeQueryBatchResponseV2(r)
		d1, err := DecodeQueryBatchResponse(v1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := DecodeQueryBatchResponseV2(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeBatchResp(d1), normalizeBatchResp(d2)) {
			t.Fatalf("dup %d: v1 and v2 decode to different responses", dup)
		}
		if dup >= 8 && len(v2)*2 > len(v1) {
			t.Errorf("dup %d: v2 frame %dB not under half of v1's %dB", dup, len(v2), len(v1))
		}
		t.Logf("dup %d: v1=%dB v2=%dB (%.1f%%)", dup, len(v1), len(v2), 100*float64(len(v2))/float64(len(v1)))
	}
}
