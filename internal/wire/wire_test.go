package wire

import (
	"reflect"
	"testing"
	"testing/quick"

	"ips/internal/query"
)

func TestAddRoundTrip(t *testing.T) {
	in := &AddRequest{
		Caller:    "feeds",
		Table:     "user_profile",
		ProfileID: 0xdeadbeef,
		Entries: []AddEntry{
			{Timestamp: 123456, Slot: 1, Type: 2, FID: 99, Counts: []int64{1, -2, 3}},
			{Timestamp: 123457, Slot: 4, Type: 5, FID: 100, Counts: []int64{7}},
		},
	}
	out, err := DecodeAdd(EncodeAdd(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestAddEmptyEntries(t *testing.T) {
	in := &AddRequest{Caller: "c", Table: "t", ProfileID: 1}
	out, err := DecodeAdd(EncodeAdd(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 0 {
		t.Fatalf("entries = %v", out.Entries)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	in := &QueryRequest{
		Caller: "ads", Table: "t", ProfileID: 7,
		Slot: 3, Type: 4, AllTypes: true,
		RangeKind: query.Absolute, Span: 1000, From: 50, To: 900,
		SortBy: query.ByTimestamp, Action: "like", K: 10,
		Decay: query.DecayExp, DecayFactor: 0.75,
		MinCount: 5, FIDs: []uint64{1, 2, 3},
	}
	out, err := DecodeQuery(EncodeQuery(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	f := func(profile uint64, slot, typ uint32, span int64, k uint8, action string) bool {
		in := &QueryRequest{
			Caller: "c", Table: "t", ProfileID: profile,
			Slot: slot, Type: typ,
			RangeKind: query.Current, Span: span,
			SortBy: query.ByAction, Action: action, K: int(k),
		}
		out, err := DecodeQuery(EncodeQuery(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestToQueryFilterMapping(t *testing.T) {
	q := &QueryRequest{MinCount: 3, FIDs: []uint64{9, 10}, RangeKind: query.Current, Span: 100}
	req := q.ToQuery()
	if req.Filter == nil {
		t.Fatal("filter not built")
	}
	if req.Filter.MinCount != 3 {
		t.Fatalf("min count = %d", req.Filter.MinCount)
	}
	if !req.Filter.FIDs[9] || !req.Filter.FIDs[10] || req.Filter.FIDs[11] {
		t.Fatalf("fids = %v", req.Filter.FIDs)
	}
	// No filter fields: nil filter.
	q2 := &QueryRequest{RangeKind: query.Current, Span: 100}
	if q2.ToQuery().Filter != nil {
		t.Fatal("empty filter should map to nil")
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	in := &QueryResponse{
		Features: []query.Feature{
			{FID: 1, Counts: []int64{5, 6}, LastSeen: 1000},
			{FID: 2, Counts: []int64{-1}, LastSeen: 2000},
		},
		SlicesScanned: 17,
		CacheHit:      true,
		ServerNanos:   123456789,
	}
	out, err := DecodeQueryResponse(EncodeQueryResponse(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestEmptyQueryResponse(t *testing.T) {
	out, err := DecodeQueryResponse(EncodeQueryResponse(&QueryResponse{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Features) != 0 || out.CacheHit {
		t.Fatalf("out = %+v", out)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := &StatsResponse{
		Name: "ips-0", Region: "east",
		Profiles: 100, MemUsage: 1 << 30, HitRatioPct: 93.5,
		Queries: 1e6, Writes: 1e5, Rejected: 42, FlushErrors: 1,
	}
	out, err := DecodeStats(EncodeStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeGarbage(t *testing.T) {
	junk := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeAdd(junk); err == nil {
		t.Fatal("DecodeAdd should fail on garbage")
	}
	if _, err := DecodeQuery(junk); err == nil {
		t.Fatal("DecodeQuery should fail on garbage")
	}
	if _, err := DecodeQueryResponse(junk); err == nil {
		t.Fatal("DecodeQueryResponse should fail on garbage")
	}
	if _, err := DecodeStats(junk); err == nil {
		t.Fatal("DecodeStats should fail on garbage")
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = DecodeAdd(junk)
		_, _ = DecodeQuery(junk)
		_, _ = DecodeQueryResponse(junk)
		_, _ = DecodeStats(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
