package wire

import (
	"ips/internal/codec"
)

// MethodQueryBatch carries N independent sub-queries (any mix of topK /
// filter / decay semantics) in one RPC. Ranking requests need features for
// hundreds of candidates per user request (§II, §IV); batching turns N
// per-profile round trips into one per owning instance, which is the
// dominant tail-latency lever for that workload.
const MethodQueryBatch = "ips.query_batch"

// BatchOp names the read semantics of one sub-query, mirroring the three
// single-query methods. The server resolves semantics from the request
// fields themselves (exactly as the single-query handlers do), so Op is
// carried for symmetry with the single-call API and for tooling.
type BatchOp uint8

// Sub-query operations.
const (
	OpTopK BatchOp = iota
	OpFilter
	OpDecay
)

// Method returns the single-query method name equivalent to the op.
func (op BatchOp) Method() string {
	switch op {
	case OpFilter:
		return MethodFilter
	case OpDecay:
		return MethodDecay
	default:
		return MethodTopK
	}
}

// SubQuery is one element of a batch: an operation plus its request.
type SubQuery struct {
	Op    BatchOp
	Query QueryRequest
}

// BatchQueryRequest is the ips.query_batch request payload. The top-level
// Caller applies to every sub-query (one upstream application issues the
// whole batch); per-sub Caller fields are ignored by the server.
type BatchQueryRequest struct {
	Caller string
	Subs   []SubQuery
}

// BatchResult is the outcome of one sub-query. Err is empty on success;
// when set, Resp is nil and the sub-query failed server-side (unknown
// table, bad range, quota rejection, ...). Failures are per-slot: one bad
// sub-query never poisons its batch.
type BatchResult struct {
	Err  string
	Resp *QueryResponse
}

// BatchQueryResponse carries one BatchResult per sub-query, in request
// order.
type BatchQueryResponse struct {
	Results []BatchResult
}

// Field numbers for the batch messages.
const (
	fBQCaller = 1
	fBQSub    = 2

	fSubOp    = 1
	fSubQuery = 2

	fBRResult = 1

	fBRErr  = 1
	fBRResp = 2
)

// EncodeQueryBatch serializes a BatchQueryRequest. Each sub-query embeds
// its QueryRequest via the single-query codec, so the two paths cannot
// drift apart.
func EncodeQueryBatch(r *BatchQueryRequest) []byte {
	var e codec.Buffer
	e.String(fBQCaller, r.Caller)
	for i := range r.Subs {
		sub := &r.Subs[i]
		e.Message(fBQSub, func(b *codec.Buffer) {
			b.Uint32(fSubOp, uint32(sub.Op))
			b.Raw(fSubQuery, EncodeQuery(&sub.Query))
		})
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeQueryBatch parses a BatchQueryRequest.
func DecodeQueryBatch(data []byte) (*BatchQueryRequest, error) {
	r := &BatchQueryRequest{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("batch", err)
		}
		switch f {
		case fBQCaller:
			if r.Caller, err = rd.String(); err != nil {
				return nil, decodeErr("batch caller", err)
			}
		case fBQSub:
			sub, err := rd.Message()
			if err != nil {
				return nil, decodeErr("batch sub", err)
			}
			sq, err := decodeSubQuery(sub)
			if err != nil {
				return nil, err
			}
			r.Subs = append(r.Subs, sq)
		default:
			if err := rd.Skip(wt); err != nil {
				return nil, decodeErr("batch skip", err)
			}
		}
	}
	return r, nil
}

func decodeSubQuery(rd *codec.Reader) (SubQuery, error) {
	var sq SubQuery
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return sq, decodeErr("sub field", err)
		}
		switch f {
		case fSubOp:
			var v uint32
			if v, err = rd.Uint32(); err != nil {
				return sq, decodeErr("sub op", err)
			}
			sq.Op = BatchOp(v)
		case fSubQuery:
			raw, err := rd.Bytes()
			if err != nil {
				return sq, decodeErr("sub query", err)
			}
			q, err := DecodeQuery(raw)
			if err != nil {
				return sq, err
			}
			sq.Query = *q
		default:
			if err := rd.Skip(wt); err != nil {
				return sq, decodeErr("sub skip", err)
			}
		}
	}
	return sq, nil
}

// EncodeQueryBatchResponse serializes a BatchQueryResponse. The response
// field is only written for successful slots, so a decoded failure keeps
// Resp == nil.
func EncodeQueryBatchResponse(r *BatchQueryResponse) []byte {
	var e codec.Buffer
	for i := range r.Results {
		br := &r.Results[i]
		e.Message(fBRResult, func(b *codec.Buffer) {
			b.String(fBRErr, br.Err)
			if br.Resp != nil {
				b.Raw(fBRResp, EncodeQueryResponse(br.Resp))
			}
		})
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeQueryBatchResponse parses a BatchQueryResponse.
func DecodeQueryBatchResponse(data []byte) (*BatchQueryResponse, error) {
	r := &BatchQueryResponse{}
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("batch resp", err)
		}
		switch f {
		case fBRResult:
			sub, err := rd.Message()
			if err != nil {
				return nil, decodeErr("batch result", err)
			}
			br, err := decodeBatchResult(sub)
			if err != nil {
				return nil, err
			}
			r.Results = append(r.Results, br)
		default:
			if err := rd.Skip(wt); err != nil {
				return nil, decodeErr("batch resp skip", err)
			}
		}
	}
	return r, nil
}

func decodeBatchResult(rd *codec.Reader) (BatchResult, error) {
	var br BatchResult
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return br, decodeErr("result field", err)
		}
		switch f {
		case fBRErr:
			if br.Err, err = rd.String(); err != nil {
				return br, decodeErr("result err", err)
			}
		case fBRResp:
			raw, err := rd.Bytes()
			if err != nil {
				return br, decodeErr("result resp", err)
			}
			resp, err := DecodeQueryResponse(raw)
			if err != nil {
				return br, err
			}
			br.Resp = resp
		default:
			if err := rd.Skip(wt); err != nil {
				return br, decodeErr("result skip", err)
			}
		}
	}
	// Enforce the slot invariant on arbitrary input: a failed slot never
	// carries a response.
	if br.Err != "" {
		br.Resp = nil
	}
	return br, nil
}
