package wire

import (
	"fmt"

	"ips/internal/codec"
)

// MethodQueryBatchV2 is the shared-structure batch read (batch
// architecture v2, part c). The request payload is identical to
// ips.query_batch; only the response encoding differs: instead of
// embedding one QueryResponse per slot, the server encodes each DISTINCT
// response once in a blob pool and each slot carries a small reference
// into it. Ranking batches at high duplication factors (many sub-queries
// scoring windows of the same hot profile) ask the same question many
// times and get the same answer — v2 pays the codec CPU and wire bytes
// for that answer once.
const MethodQueryBatchV2 = "ips.query_batch2"

// Field numbers for the v2 batch response.
const (
	// fB2Blob is a repeated bytes field: the pool of distinct encoded
	// QueryResponse payloads, in first-use order.
	fB2Blob = 1
	// fB2Result is a repeated message: one per sub-query, in request
	// order.
	fB2Result = 2

	// Inside a result message: the error string, and a 1-based reference
	// into the blob pool (0 = no response, the failed-slot shape).
	fB2RErr = 1
	fB2RRef = 2
)

// EncodeQueryBatchResponseV2 serializes a BatchQueryResponse with
// shared-structure encoding: each distinct response body is encoded and
// written once, and duplicate slots cost one varint reference each.
// Distinctness is judged on the encoded bytes, so two slots share a blob
// exactly when the v1 encoding would have carried identical copies.
func EncodeQueryBatchResponseV2(r *BatchQueryResponse) []byte {
	var e codec.Buffer
	refs := make([]uint32, len(r.Results))
	seen := make(map[string]uint32, len(r.Results))
	for i := range r.Results {
		br := &r.Results[i]
		if br.Resp == nil {
			continue // ref stays 0
		}
		enc := EncodeQueryResponse(br.Resp)
		if ref, ok := seen[string(enc)]; ok {
			refs[i] = ref
			continue
		}
		e.Raw(fB2Blob, enc)
		ref := uint32(len(seen) + 1)
		seen[string(enc)] = ref
		refs[i] = ref
	}
	for i := range r.Results {
		br := &r.Results[i]
		ref := refs[i]
		e.Message(fB2Result, func(b *codec.Buffer) {
			b.String(fB2RErr, br.Err)
			if ref != 0 {
				b.Uint32(fB2RRef, ref)
			}
		})
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeQueryBatchResponseV2 parses a shared-structure batch response.
// Each blob is decoded once; slots referencing the same blob SHARE the
// decoded *QueryResponse, so callers must treat batch results as
// read-only (the client does). A reference past the blob pool is a
// decode error — references are resolved after the full frame is read,
// so blob/result field order does not matter on hostile input. The
// failed-slot invariant of v1 holds here too: a slot with a non-empty
// Err never carries a response, whatever its ref says.
func DecodeQueryBatchResponseV2(data []byte) (*BatchQueryResponse, error) {
	var blobs [][]byte
	type rawResult struct {
		err string
		ref uint32
	}
	var raws []rawResult
	rd := codec.NewReader(data)
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return nil, decodeErr("batch2", err)
		}
		switch f {
		case fB2Blob:
			b, err := rd.Bytes()
			if err != nil {
				return nil, decodeErr("batch2 blob", err)
			}
			blobs = append(blobs, b)
		case fB2Result:
			sub, err := rd.Message()
			if err != nil {
				return nil, decodeErr("batch2 result", err)
			}
			var rr rawResult
			for !sub.Done() {
				sf, swt, err := sub.Next()
				if err != nil {
					return nil, decodeErr("batch2 result field", err)
				}
				switch sf {
				case fB2RErr:
					if rr.err, err = sub.String(); err != nil {
						return nil, decodeErr("batch2 result err", err)
					}
				case fB2RRef:
					if rr.ref, err = sub.Uint32(); err != nil {
						return nil, decodeErr("batch2 result ref", err)
					}
				default:
					if err := sub.Skip(swt); err != nil {
						return nil, decodeErr("batch2 result skip", err)
					}
				}
			}
			raws = append(raws, rr)
		default:
			if err := rd.Skip(wt); err != nil {
				return nil, decodeErr("batch2 skip", err)
			}
		}
	}

	// Decode the pool once, then resolve references.
	decoded := make([]*QueryResponse, len(blobs))
	for i, b := range blobs {
		resp, err := DecodeQueryResponse(b)
		if err != nil {
			return nil, err
		}
		decoded[i] = resp
	}
	r := &BatchQueryResponse{}
	if len(raws) > 0 {
		r.Results = make([]BatchResult, len(raws))
	}
	for i, rr := range raws {
		br := BatchResult{Err: rr.err}
		if rr.ref != 0 && rr.err == "" {
			if int(rr.ref) > len(decoded) {
				return nil, fmt.Errorf("wire: batch2 result %d references blob %d of %d", i, rr.ref, len(decoded))
			}
			br.Resp = decoded[rr.ref-1]
		}
		r.Results[i] = br
	}
	return r, nil
}
