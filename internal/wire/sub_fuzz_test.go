package wire

import (
	"reflect"
	"strings"
	"testing"

	"ips/internal/query"
)

// FuzzDecodeSubscribe covers the subscription-open decoder on hostile
// payloads: oversized pipelines, raw garbage, and encoder-shaped seeds.
// Whatever decodes must respect the pipeline length bound and re-encode
// to a fixpoint — never panic.
func FuzzDecodeSubscribe(f *testing.F) {
	f.Add(EncodeSubscribe(&SubscribeRequest{Caller: "feed", Pipeline: "source(user_profile, 1, 2) | topk(10)"}))
	f.Add(EncodeSubscribe(&SubscribeRequest{Pipeline: "source(t, 1) | filter(min=2) | decay(exp, 0.5) | topk(3)"}))
	f.Add(EncodeSubscribe(&SubscribeRequest{}))
	// A long (but small enough to keep fuzz throughput sane) pipeline;
	// the MaxPipelineLen rejection itself is pinned by TestSubscribeBound.
	f.Add(EncodeSubscribe(&SubscribeRequest{Pipeline: strings.Repeat("x", 512)}))
	// Hostile raw bytes: bad tags, length prefixes past the buffer.
	f.Add([]byte{0x0a, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x12, 0x05, 0x08, 0x01})
	f.Add([]byte{0x08, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeSubscribe(data)
		if err != nil {
			return
		}
		if len(r.Pipeline) > MaxPipelineLen {
			t.Fatalf("decoded pipeline of %d bytes, over MaxPipelineLen", len(r.Pipeline))
		}
		again, err := DecodeSubscribe(EncodeSubscribe(r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", r, again)
		}
	})
}

// FuzzDecodeSubUpdate covers the pushed-update decoder: truncated nested
// results, hostile feature messages, and encoder-shaped seeds. Decoded
// updates must re-encode to a fixpoint and never panic, including when
// decoding into a reused struct with stale feature storage.
func FuzzDecodeSubUpdate(f *testing.F) {
	f.Add(EncodeSubUpdate(&SubUpdate{ProfileID: 42, Seq: 7, Resync: true, Result: QueryResponse{
		Features: []query.Feature{
			{FID: 1, Counts: []int64{3, 4}, LastSeen: 1000, Score: 2.5},
			{FID: 9, Counts: []int64{1}, LastSeen: 2000},
		},
		SlicesScanned: 2, ServerNanos: 55, WalLSN: 12,
	}}))
	f.Add(EncodeSubUpdate(&SubUpdate{ProfileID: 1, Seq: 1}))
	f.Add(EncodeSubUpdate(&SubUpdate{}))
	full := EncodeSubUpdate(&SubUpdate{ProfileID: 3, Seq: 2, Result: QueryResponse{
		Features: []query.Feature{{FID: 5, Counts: []int64{1, 2, 3}}},
	}})
	// Truncations at every boundary the varint framing makes interesting.
	f.Add(full[:len(full)/2])
	f.Add(full[:1])
	// Hostile raw bytes.
	f.Add([]byte{0x22, 0xff, 0x01})
	f.Add([]byte{0x22, 0x03, 0x0a, 0x80, 0x80})
	f.Add([]byte{0x08, 0x01, 0x10, 0x02, 0x18, 0x01, 0x22, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeSubUpdate(data)
		if err != nil {
			return
		}
		again, err := DecodeSubUpdate(EncodeSubUpdate(u))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeSubUpdate(u), normalizeSubUpdate(again)) {
			t.Fatalf("fixpoint mismatch:\n%+v\n%+v", u, again)
		}
		// Reused-struct decode must agree with the fresh one.
		reused := &SubUpdate{Result: QueryResponse{Features: []query.Feature{
			{FID: 99, Counts: []int64{9, 9, 9}}, {FID: 98},
		}}}
		if err := DecodeSubUpdateInto(data, reused); err != nil {
			t.Fatalf("reused decode failed where fresh succeeded: %v", err)
		}
		if !reflect.DeepEqual(normalizeSubUpdate(u), normalizeSubUpdate(reused)) {
			t.Fatalf("reused decode mismatch:\n%+v\n%+v", u, reused)
		}
	})
}

// normalizeSubUpdate maps empty and nil slices to a canonical form for
// fixpoint comparison (the encoder drops empty counts and a zero WalLSN).
func normalizeSubUpdate(u *SubUpdate) *SubUpdate {
	c := &SubUpdate{ProfileID: u.ProfileID, Seq: u.Seq, Resync: u.Resync}
	c.Result.SlicesScanned = u.Result.SlicesScanned
	c.Result.CacheHit = u.Result.CacheHit
	c.Result.ServerNanos = u.Result.ServerNanos
	c.Result.WalLSN = u.Result.WalLSN
	for _, ft := range u.Result.Features {
		if len(ft.Counts) == 0 {
			ft.Counts = nil
		}
		c.Result.Features = append(c.Result.Features, ft)
	}
	if len(c.Result.Features) == 0 {
		c.Result.Features = nil
	}
	return c
}
