package wire

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"ips/internal/query"
)

func TestSubscribeRoundTrip(t *testing.T) {
	r := &SubscribeRequest{Caller: "feed-ranker", Pipeline: "source(user_profile, 1, 2) | decay(exp, 0.5) | topk(10)"}
	got, err := DecodeSubscribe(EncodeSubscribe(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestSubscribeBound(t *testing.T) {
	ok := &SubscribeRequest{Pipeline: strings.Repeat("x", MaxPipelineLen)}
	if _, err := DecodeSubscribe(EncodeSubscribe(ok)); err != nil {
		t.Fatalf("at-bound pipeline rejected: %v", err)
	}
	over := &SubscribeRequest{Pipeline: strings.Repeat("x", MaxPipelineLen+1)}
	if _, err := DecodeSubscribe(EncodeSubscribe(over)); !errors.Is(err, ErrDecode) {
		t.Fatalf("over-bound pipeline: err = %v, want ErrDecode", err)
	}
}

func TestSubUpdateRoundTrip(t *testing.T) {
	u := &SubUpdate{ProfileID: 42, Seq: 3, Resync: true, Result: QueryResponse{
		Features: []query.Feature{
			{FID: 7, Counts: []int64{1, 2}, LastSeen: 5000, Score: 1.5},
			{FID: 8, Counts: []int64{9}, LastSeen: 6000, Score: 0.25},
		},
		SlicesScanned: 4, CacheHit: true, ServerNanos: 123, WalLSN: 77,
	}}
	got, err := DecodeSubUpdate(EncodeSubUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u, got) {
		t.Fatalf("round trip:\n%+v\n%+v", got, u)
	}
	// Reused-struct decode with stale storage must fully overwrite.
	reused := &SubUpdate{Resync: true, Result: QueryResponse{Features: []query.Feature{{FID: 99, Counts: []int64{9, 9, 9, 9}}}}}
	empty := &SubUpdate{ProfileID: 1, Seq: 1}
	if err := DecodeSubUpdateInto(EncodeSubUpdate(empty), reused); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeSubUpdate(empty), normalizeSubUpdate(reused)) {
		t.Fatalf("stale storage leaked:\n%+v\n%+v", reused, empty)
	}
}
