package trace

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestStageNames(t *testing.T) {
	seen := map[string]Stage{}
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || name == "stage.unknown" {
			t.Fatalf("stage %d has no name", s)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("stages %d and %d share name %q", prev, s, name)
		}
		seen[name] = s
	}
	if Stage(200).String() != "stage.unknown" {
		t.Fatal("out-of-range stage should render stage.unknown")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var tc *Tracer
	var ref SpanRef
	// None of these may panic, and all must be cheap no-ops.
	ref.End()
	ref.EndErr(nil)
	ref.SetFlags(FlagErr)
	if ref.Active() || ref.ID() != 0 {
		t.Fatal("zero SpanRef should be inert")
	}
	tr.Graft([]Span{{ID: 1}}, 0)
	if tr.Spans() != nil || tr.Duration() != 0 {
		t.Fatal("nil trace should report empty")
	}
	if tc.Sample() {
		t.Fatal("nil tracer must not sample")
	}
	ctx, got := tc.StartRequest(context.Background())
	if got != nil || FromContext(ctx) != nil {
		t.Fatal("nil tracer StartRequest should return untraced ctx")
	}
	tc.Observe(StageKVFlush, time.Millisecond)
	tc.Done(New())
	if tc.LastSampled() != nil {
		t.Fatal("nil tracer has no last trace")
	}
	if entries, seen := tc.SlowDump(); entries != nil || seen != 0 {
		t.Fatal("nil tracer has no slow log")
	}
	// Untraced context: StartSpan/StartLeaf are no-ops returning the
	// same ctx.
	ctx2, ref2 := StartSpan(context.Background(), StageClientQuery)
	if ref2.Active() || ctx2 != context.Background() {
		t.Fatal("StartSpan on untraced ctx should be a no-op")
	}
	if StartLeaf(context.Background(), StageKVRead).Active() {
		t.Fatal("StartLeaf on untraced ctx should be a no-op")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	ctx1, root := StartSpan(ctx, StageClientQuery)
	ctx2, child := StartSpan(ctx1, StageClientPrimary)
	leaf := StartLeaf(ctx2, StageRPCRoundtrip)
	leaf.End()
	child.EndErr(nil)
	root.End()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID || spans[2].Parent != spans[1].ID {
		t.Fatalf("bad parent chain: %+v", spans)
	}
	if err := Validate(spans, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGraftRemap(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, StageClientQuery)
	rpcSpan := StartLeaf(ctx, StageRPCRoundtrip)

	// A remote trace with its own ID space 1..3, roots at Parent 0.
	srv := Adopt(tr.ID, rpcSpan.ID())
	sctx := NewContext(context.Background(), srv)
	sctx, disp := StartSpan(sctx, StageServerDispatch)
	get := StartLeaf(sctx, StageCacheGet)
	get.SetFlags(FlagCacheMiss)
	get.End()
	disp.End()
	if srv.ID != tr.ID {
		t.Fatal("adopted trace must keep the caller's trace ID")
	}

	rpcSpan.End()
	tr.Graft(srv.Spans(), rpcSpan.ID())
	root.End()

	spans := tr.Spans()
	if err := Validate(spans, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var dispatch *Span
	for i := range spans {
		if spans[i].Stage == StageServerDispatch {
			dispatch = &spans[i]
		}
	}
	if dispatch == nil || dispatch.Parent != rpcSpan.ID() {
		t.Fatalf("grafted dispatch span not parented under the rpc span: %+v", spans)
	}
	// New local spans allocated after the graft must not collide.
	post := StartLeaf(NewContext(context.Background(), tr), StageClientPick)
	post.End()
	if err := Validate(tr.Spans(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spans := make([]Span, int(n)%40)
		for i := range spans {
			spans[i] = Span{
				ID:     rng.Uint64()%1000 + 1,
				Parent: rng.Uint64() % 1000,
				Stage:  Stage(rng.Intn(int(NumStages))),
				Flags:  uint8(rng.Intn(8)),
				Start:  time.Unix(0, rng.Int63()),
				Dur:    time.Duration(rng.Int63n(int64(time.Hour))),
			}
		}
		got, err := DecodeSpans(EncodeSpans(spans))
		if err != nil || len(got) != len(spans) {
			return false
		}
		for i := range spans {
			a, b := spans[i], got[i]
			if a.ID != b.ID || a.Parent != b.Parent || a.Stage != b.Stage ||
				a.Flags != b.Flags || a.Dur != b.Dur || !a.Start.Equal(b.Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 0}, {1, 0, 0xff}, make([]byte, 2+spanWireSize+1)} {
		if _, err := DecodeSpans(b); err == nil {
			t.Fatalf("DecodeSpans(%v) accepted garbage", b)
		}
	}
}

// TestRandomTreesWellFormed drives the public API with random nesting
// and checks Validate holds for whatever comes out — including after an
// encode/decode/graft round trip.
func TestRandomTreesWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var grow func(ctx context.Context, depth int)
		grow = func(ctx context.Context, depth int) {
			n := rng.Intn(3) + 1
			for i := 0; i < n; i++ {
				st := Stage(rng.Intn(int(NumStages)))
				if depth < 3 && rng.Intn(2) == 0 {
					cctx, ref := StartSpan(ctx, st)
					grow(cctx, depth+1)
					ref.End()
				} else {
					StartLeaf(ctx, st).End()
				}
			}
		}
		grow(NewContext(context.Background(), tr), 0)
		if err := Validate(tr.Spans(), 0); err != nil {
			t.Logf("local tree: %v", err)
			return false
		}
		// Ship the spans across a simulated hop and graft them into a
		// fresh client trace.
		client := New()
		ctx, rpcSpan := StartSpan(NewContext(context.Background(), client), StageRPCRoundtrip)
		_ = ctx
		decoded, err := DecodeSpans(EncodeSpans(tr.Spans()))
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		rpcSpan.End()
		client.Graft(decoded, rpcSpan.ID())
		if err := Validate(client.Spans(), time.Second); err != nil {
			t.Logf("grafted tree: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSampling(t *testing.T) {
	tc := NewTracer(Config{SampleEvery: 4})
	hits := 0
	for i := 0; i < 400; i++ {
		if tc.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("SampleEvery=4 over 400 draws: want 100 hits, got %d", hits)
	}
	off := NewTracer(Config{SampleEvery: 0})
	if off.Sample() {
		t.Fatal("SampleEvery=0 must never sample")
	}
	all := NewTracer(Config{SampleEvery: 1})
	if !all.Sample() {
		t.Fatal("SampleEvery=1 must always sample")
	}
}

func TestTracerDoneAggregates(t *testing.T) {
	tc := NewTracer(Config{SampleEvery: 1})
	ctx, tr := tc.StartRequest(context.Background())
	if tr == nil {
		t.Fatal("expected a sampled trace")
	}
	_, sp := StartSpan(ctx, StageClientQuery)
	sp.End()
	tc.Done(tr)
	st := tc.Stats()
	if st.Traces != 1 {
		t.Fatalf("want 1 finished trace, got %d", st.Traces)
	}
	var found bool
	for _, s := range st.Stages {
		if s.Stage == StageClientQuery && s.Snapshot.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("client.query histogram did not record the span")
	}
	if tc.LastSampled() != tr {
		t.Fatal("LastSampled should return the finished trace")
	}
	tc.Observe(StageKVFlush, 3*time.Millisecond)
	for _, s := range tc.Stats().Stages {
		if s.Stage == StageKVFlush && s.Snapshot.Count != 1 {
			t.Fatal("Observe did not reach the kv.flush histogram")
		}
	}
}

func TestSlowRing(t *testing.T) {
	tc := NewTracer(Config{SampleEvery: 1, SlowThreshold: time.Nanosecond, SlowLogSize: 4})
	for i := 0; i < 10; i++ {
		_, tr := tc.StartRequest(context.Background())
		sp := StartLeaf(NewContext(context.Background(), tr), StageClientQuery)
		time.Sleep(50 * time.Microsecond)
		sp.End()
		tc.Done(tr)
	}
	entries, seen := tc.SlowDump()
	if seen != 10 {
		t.Fatalf("want 10 slow queries seen, got %d", seen)
	}
	if len(entries) != 4 {
		t.Fatalf("ring size 4, got %d entries", len(entries))
	}
	for _, e := range entries {
		if !strings.Contains(e.Rendered, "client.query") {
			t.Fatalf("rendered dump missing span line:\n%s", e.Rendered)
		}
		if e.Total <= 0 {
			t.Fatalf("slow entry with non-positive total %v", e.Total)
		}
	}
	// Fast traces stay out when the threshold is high.
	hi := NewTracer(Config{SampleEvery: 1, SlowThreshold: time.Hour})
	_, tr := hi.StartRequest(context.Background())
	StartLeaf(NewContext(context.Background(), tr), StageClientQuery).End()
	hi.Done(tr)
	if _, seen := hi.SlowDump(); seen != 0 {
		t.Fatal("fast trace crossed an hour-long threshold")
	}
}

func TestRenderTreeOrphan(t *testing.T) {
	var b strings.Builder
	RenderTree(&b, 0xabc, []Span{
		{ID: 1, Parent: 0, Stage: StageClientQuery, Dur: time.Millisecond},
		{ID: 2, Parent: 99, Stage: StageKVRead, Dur: time.Microsecond},
	})
	out := b.String()
	if !strings.Contains(out, "orphan") {
		t.Fatalf("orphan span not flagged:\n%s", out)
	}
	if !strings.Contains(out, "trace 0xabc") {
		t.Fatalf("trace id missing:\n%s", out)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, StageClientQuery)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := StartLeaf(ctx, StageClientHedge)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != 8*50+1 {
		t.Fatalf("want %d spans, got %d", 8*50+1, len(spans))
	}
	if err := Validate(spans, 0); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	now := time.Now()
	cases := map[string][]Span{
		"zero id":    {{ID: 0, Stage: StageKVRead}},
		"dup id":     {{ID: 1}, {ID: 1}},
		"orphan":     {{ID: 1, Parent: 7}},
		"neg dur":    {{ID: 1, Dur: -time.Second}},
		"early kid":  {{ID: 1, Start: now, Dur: time.Second}, {ID: 2, Parent: 1, Start: now.Add(-time.Minute), Dur: 0}},
		"late child": {{ID: 1, Start: now, Dur: time.Millisecond}, {ID: 2, Parent: 1, Start: now, Dur: time.Minute}},
	}
	for name, spans := range cases {
		if Validate(spans, 0) == nil {
			t.Fatalf("Validate accepted %s", name)
		}
	}
}
