// Package trace is the per-request latency-attribution layer (the
// instrumentation behind the paper's §IV per-stage evaluation tables).
// A Trace is a flat, append-only list of spans — one per stage a request
// passes through — identified by a process-unique trace ID and
// sequentially allocated span IDs. Traces propagate through the stack via
// a context.Context seam (NewContext / FromContext / StartSpan) and
// across the RPC hop via an optional traced frame header (EncodeSpans /
// DecodeSpans in wire.go); the server's spans are grafted back under the
// client's roundtrip span with Graft, which remaps IDs so the merged tree
// stays well-formed while the trace ID is stable end to end.
//
// The layer is allocation-conscious: an unsampled request carries a nil
// Trace and every operation on the zero SpanRef or a nil Trace/Tracer is
// a no-op, so the disabled/sampled-out cost is a context lookup and a
// nil check per stage. Sampled traces preallocate their span slice and
// allocate only when a request outgrows it.
//
// Invariants (checked by TestSpanTreeWellFormed and the integration
// property test):
//
//   - span IDs within one Trace are unique and non-zero;
//   - every span's Parent is 0 (a root) or the ID of an earlier span;
//   - a child's [Start, Start+Dur] interval nests inside its parent's.
//
// See DESIGN.md ("Request tracing") for the stage taxonomy and the wire
// format.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies the pipeline stage a span measures. The numbering is
// part of the wire format for traced responses; append new stages, never
// reorder.
type Stage uint8

// Stages, ordered roughly by position in the request path.
const (
	// StageClientQuery is the whole client-side read: encode, pick,
	// attempts, decode.
	StageClientQuery Stage = iota
	// StageClientWrite is the whole client-side write fan-out.
	StageClientWrite
	// StageClientPick is candidate selection (registry snapshot, shard
	// hash, breaker filtering).
	StageClientPick
	// StageClientPrimary is one primary attempt: RPC call on the first
	// candidate.
	StageClientPrimary
	// StageClientRetry is one budgeted retry attempt, including its
	// backoff sleep.
	StageClientRetry
	// StageClientHedge is one hedged attempt racing a slow primary.
	StageClientHedge
	// StageClientDual is the dual-read attempt to the outgoing owner of a
	// key inside an elastic-resharding migration window.
	StageClientDual
	// StageRPCDial is a TCP connect performed (or waited on) inline with
	// a request.
	StageRPCDial
	// StageRPCRoundtrip is write-frame to read-frame on one connection.
	StageRPCRoundtrip
	// StageServerDispatch is the server-side handler, queueing included.
	StageServerDispatch
	// StageCacheGet is a gcache lookup, flagged FlagCacheHit or
	// FlagCacheMiss; on a miss it contains a StageKVRead child.
	StageCacheGet
	// StageCacheCompute is the inline feature computation over the
	// cached profile (the paper's compute-cache pass).
	StageCacheCompute
	// StageCacheApply is a write applied to the cached profile,
	// journal append included.
	StageCacheApply
	// StageMergeInline is a write-isolation merge forced inline by the
	// write-table cap.
	StageMergeInline
	// StageCompactPass is one background/inline compaction maintenance
	// pass.
	StageCompactPass
	// StageWALAppend is a mutation-journal append (encode, write,
	// flush, and any fsync).
	StageWALAppend
	// StageWALSync is the fsync portion of a journal append.
	StageWALSync
	// StageKVRead is a backing-store profile load on a cache miss.
	StageKVRead
	// StageKVFlush is a dirty-profile write-back to the backing store.
	StageKVFlush
	// StageSingleflightWait is time spent waiting on another request's
	// in-flight storage load for the same profile (batch architecture
	// v2's cross-request coalescing): the waiter shares the leader's
	// result instead of issuing its own KV read.
	StageSingleflightWait
	// StageHotSlotHit tags a read served from a replicated hot-profile
	// read slot — an immutable snapshot that bypasses the live profile's
	// lock entirely.
	StageHotSlotHit
	// StageWarmHit tags a cache fill served by re-inflating a
	// snap-compressed warm-tier blob in process — no storage round trip;
	// the duration covers decompress + decode + install.
	StageWarmHit

	// NumStages bounds the per-stage aggregation arrays.
	NumStages
)

var stageNames = [NumStages]string{
	StageClientQuery:      "client.query",
	StageClientWrite:      "client.write",
	StageClientPick:       "client.pick",
	StageClientPrimary:    "client.primary",
	StageClientRetry:      "client.retry",
	StageClientHedge:      "client.hedge",
	StageClientDual:       "client.dual",
	StageRPCDial:          "rpc.dial",
	StageRPCRoundtrip:     "rpc.roundtrip",
	StageServerDispatch:   "server.dispatch",
	StageCacheGet:         "cache.get",
	StageCacheCompute:     "cache.compute",
	StageCacheApply:       "cache.apply",
	StageMergeInline:      "merge.inline",
	StageCompactPass:      "compact.pass",
	StageWALAppend:        "wal.append",
	StageWALSync:          "wal.sync",
	StageKVRead:           "kv.read",
	StageKVFlush:          "kv.flush",
	StageSingleflightWait: "singleflight.wait",
	StageHotSlotHit:       "hotslot.hit",
	StageWarmHit:          "gcache.warmhit",
}

// String returns the stage's dotted metric name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage.unknown"
}

// Span flags.
const (
	// FlagCacheHit marks a StageCacheGet span served from the cache.
	FlagCacheHit uint8 = 1 << iota
	// FlagCacheMiss marks a StageCacheGet span that loaded from the KV
	// store.
	FlagCacheMiss
	// FlagErr marks a span whose stage returned an error.
	FlagErr
)

// Span is one timed stage of a traced request.
type Span struct {
	ID     uint64
	Parent uint64 // 0 for roots
	Stage  Stage
	Flags  uint8
	Start  time.Time
	Dur    time.Duration
}

// Trace accumulates the spans of one request. Safe for concurrent use:
// hedged attempts and batch worker goroutines append concurrently.
type Trace struct {
	// ID is the process-unique trace ID, stable across the RPC hop.
	ID uint64
	// RemoteParent is, on the server side of a traced RPC, the client's
	// roundtrip span ID this trace's roots will be grafted under. Zero
	// for locally originated traces.
	RemoteParent uint64

	mu    sync.Mutex
	next  uint64 // last span ID handed out
	spans []Span
}

// idCounter feeds process-unique trace IDs. Seeded once from the wall
// clock so IDs from successive process runs rarely collide in logs.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(uint64(time.Now().UnixNano()) << 20)
}

// newTraceID returns a fresh process-unique trace ID.
func newTraceID() uint64 { return idCounter.Add(1) }

// New returns an empty Trace with a fresh ID.
func New() *Trace {
	return &Trace{ID: newTraceID(), spans: make([]Span, 0, 16)}
}

// Adopt returns a Trace continuing a remote caller's trace: same trace
// ID, spans rooted locally (Parent 0) to be grafted under remoteParent
// by the caller once shipped back. It works without a Tracer so a server
// with tracing disabled still answers traced requests.
func Adopt(traceID, remoteParent uint64) *Trace {
	return &Trace{ID: traceID, RemoteParent: remoteParent, spans: make([]Span, 0, 16)}
}

// start appends a new span and returns its ID and index.
func (t *Trace) start(parent uint64, stage Stage, now time.Time) (uint64, int) {
	t.mu.Lock()
	t.next++
	id := t.next
	idx := len(t.spans)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Stage: stage, Start: now})
	t.mu.Unlock()
	return id, idx
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Graft splices spans returned by a remote server into this trace under
// the local span `under` (the roundtrip span that carried them). Remote
// IDs are remapped past this trace's ID watermark so the merged tree
// keeps unique IDs; remote roots (Parent 0) become children of `under`.
func (t *Trace) Graft(remote []Span, under uint64) {
	if t == nil || len(remote) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.next
	var maxID uint64
	for _, sp := range remote {
		id := base + sp.ID
		if id > maxID {
			maxID = id
		}
		parent := under
		if sp.Parent != 0 {
			parent = base + sp.Parent
		}
		sp.ID, sp.Parent = id, parent
		t.spans = append(t.spans, sp)
	}
	if maxID > t.next {
		t.next = maxID
	}
}

// Duration returns the wall-clock extent of the trace: latest span end
// minus earliest span start.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return 0
	}
	first := t.spans[0].Start
	var last time.Time
	for _, sp := range t.spans {
		if sp.Start.Before(first) {
			first = sp.Start
		}
		if end := sp.Start.Add(sp.Dur); end.After(last) {
			last = end
		}
	}
	return last.Sub(first)
}

// SpanRef is a live handle on one span of a Trace. The zero SpanRef is a
// valid no-op: every method is nil-safe so unsampled requests pay no
// branches beyond the check itself.
type SpanRef struct {
	tr  *Trace
	idx int
	id  uint64
}

// ID returns the span's ID, 0 for the zero SpanRef.
//
//ips:hotpath
func (s SpanRef) ID() uint64 { return s.id }

// Active reports whether the ref points at a sampled span.
//
//ips:hotpath
func (s SpanRef) Active() bool { return s.tr != nil }

// End records the span's duration as time since its start.
//
//ips:hotpath
func (s SpanRef) End() {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	sp := &s.tr.spans[s.idx]
	sp.Dur = time.Since(sp.Start)
	s.tr.mu.Unlock()
}

// EndErr is End plus FlagErr when err is non-nil.
//
//ips:hotpath
func (s SpanRef) EndErr(err error) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	sp := &s.tr.spans[s.idx]
	sp.Dur = time.Since(sp.Start)
	if err != nil {
		sp.Flags |= FlagErr
	}
	s.tr.mu.Unlock()
}

// SetFlags ORs flags into the span.
//
//ips:hotpath
func (s SpanRef) SetFlags(flags uint8) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.spans[s.idx].Flags |= flags
	s.tr.mu.Unlock()
}

// ctxKey carries a (trace, current-parent-span) pair through a context.
type ctxKey struct{}

type spanCtx struct {
	tr     *Trace
	parent uint64
}

// NewContext returns ctx carrying tr; subsequent StartSpan calls create
// root spans (Parent 0). A nil tr returns ctx unchanged.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: tr})
}

// FromContext returns the Trace carried by ctx, or nil.
//
//ips:hotpath
func FromContext(ctx context.Context) *Trace {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	return sc.tr
}

// StartSpan opens a span under ctx's current parent and returns a
// derived context in which the new span is the parent, plus the span's
// ref. On an untraced ctx it returns ctx unchanged and the no-op ref —
// no allocation.
//
//ips:hotpath-trust sampled-in spans allocate a derived context by design; the sampled-out branch returns the shared no-op with zero allocations
func StartSpan(ctx context.Context, stage Stage) (context.Context, SpanRef) {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if sc.tr == nil {
		return ctx, SpanRef{}
	}
	id, idx := sc.tr.start(sc.parent, stage, time.Now())
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: sc.tr, parent: id}),
		SpanRef{tr: sc.tr, idx: idx, id: id}
}

// StartLeaf opens a span under ctx's current parent without deriving a
// new context — for leaf stages that start no children. Cheaper than
// StartSpan on the sampled path (no context allocation).
//
//ips:hotpath
func StartLeaf(ctx context.Context, stage Stage) SpanRef {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if sc.tr == nil {
		return SpanRef{}
	}
	//ipslint:ignore hotpathalloc sampled-in span storage is off the sampled-out steady state
	id, idx := sc.tr.start(sc.parent, stage, time.Now())
	return SpanRef{tr: sc.tr, idx: idx, id: id}
}
