package trace

// Allocation pin for the sampled-out path: when a request loses the
// sampling draw (or tracing is disabled entirely), starting and ending
// spans must be free — no context allocation, no span storage, nothing.
// This is the contract that lets the read path keep its tracing
// call sites unconditionally.

import (
	"context"
	"testing"
	"time"
)

func TestSampledOutAllocFree(t *testing.T) {
	// An untraced context: FromContext finds nothing, every span is the
	// shared no-op.
	ctx := context.Background()
	allocs := testing.AllocsPerRun(500, func() {
		c2, sp := StartSpan(ctx, StageCacheCompute)
		leaf := StartLeaf(c2, StageCacheGet)
		leaf.End()
		sp.EndErr(nil)
	})
	if allocs != 0 {
		t.Fatalf("sampled-out span path: %.2f allocs/run, want 0", allocs)
	}
}

func TestSamplerDrawAllocFree(t *testing.T) {
	// A tracer whose draw loses on every call but the Nth: the losing
	// draws themselves must not allocate.
	tc := NewTracer(Config{SampleEvery: 1 << 30})
	allocs := testing.AllocsPerRun(500, func() {
		if tc.Sample() {
			t.Fatal("draw unexpectedly won")
		}
	})
	if allocs != 0 {
		t.Fatalf("losing sampler draw: %.2f allocs/run, want 0", allocs)
	}
}

func TestObserveAllocFree(t *testing.T) {
	tc := NewTracer(Config{})
	allocs := testing.AllocsPerRun(500, func() {
		tc.Observe(StageKVFlush, 5*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("background-stage observe: %.2f allocs/run, want 0", allocs)
	}
}
