package trace

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/metrics"
)

// Config tunes a Tracer.
type Config struct {
	// SampleEvery samples one request in every SampleEvery. 1 traces
	// everything; 0 or negative disables sampling (the tracer still
	// aggregates Observe'd background stages and adopted remote traces).
	SampleEvery int
	// SlowThreshold enters traces at least this slow into the slow-query
	// log. 0 or negative disables the slow log.
	SlowThreshold time.Duration
	// SlowLogSize caps the slow-query ring buffer; default 64.
	SlowLogSize int
}

// SlowEntry is one retained slow-query record, rendered at capture time
// so the ring holds no live Trace references.
type SlowEntry struct {
	TraceID  uint64
	Total    time.Duration
	Rendered string // RenderTree output
}

// Tracer samples requests, aggregates finished traces into per-stage
// histograms, and retains slow queries. All methods are nil-receiver
// safe: a component holding a nil *Tracer is simply untraced.
type Tracer struct {
	cfg    Config
	ticker atomic.Uint64 // sampling round-robin
	traces metrics.Counter
	stages [NumStages]metrics.Histogram

	slowMu   sync.Mutex
	slow     []SlowEntry // ring, slowNext is the next overwrite slot
	slowNext int
	slowSeen int64

	last atomic.Pointer[Trace]
}

// NewTracer builds a Tracer from cfg.
func NewTracer(cfg Config) *Tracer {
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 64
	}
	return &Tracer{cfg: cfg}
}

// Sample reports whether the next request should carry a trace.
//
//ips:hotpath
func (t *Tracer) Sample() bool {
	if t == nil || t.cfg.SampleEvery <= 0 {
		return false
	}
	if t.cfg.SampleEvery == 1 {
		return true
	}
	return t.ticker.Add(1)%uint64(t.cfg.SampleEvery) == 0
}

// StartRequest starts a sampled trace and returns ctx carrying it. When
// the tracer is nil or this request loses the sampling draw it returns
// (ctx, nil) and the request proceeds untraced. The caller owns the
// returned trace and must pass it to Done.
func (t *Tracer) StartRequest(ctx context.Context) (context.Context, *Trace) {
	if !t.Sample() {
		return ctx, nil
	}
	tr := New()
	return NewContext(ctx, tr), tr
}

// Observe aggregates one background-stage duration (kv.flush,
// compact.pass, …) that runs outside any request context.
func (t *Tracer) Observe(stage Stage, d time.Duration) {
	if t == nil || stage >= NumStages {
		return
	}
	t.stages[stage].Observe(d)
}

// Done finishes tr: folds its spans into the per-stage histograms,
// retains it if slow, and publishes it as the last sampled trace. Safe
// to call with a nil trace (the unsampled case).
func (t *Tracer) Done(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		return
	}
	t.traces.Inc()
	for _, sp := range spans {
		if sp.Stage < NumStages {
			t.stages[sp.Stage].Observe(sp.Dur)
		}
	}
	total := tr.Duration()
	if t.cfg.SlowThreshold > 0 && total >= t.cfg.SlowThreshold {
		var b strings.Builder
		RenderTree(&b, tr.ID, spans)
		t.slowMu.Lock()
		t.slowSeen++
		if len(t.slow) < t.cfg.SlowLogSize {
			t.slow = append(t.slow, SlowEntry{TraceID: tr.ID, Total: total, Rendered: b.String()})
		} else {
			t.slow[t.slowNext] = SlowEntry{TraceID: tr.ID, Total: total, Rendered: b.String()}
			t.slowNext = (t.slowNext + 1) % t.cfg.SlowLogSize
		}
		t.slowMu.Unlock()
	}
	t.last.Store(tr)
}

// LastSampled returns the most recently finished sampled trace, or nil.
func (t *Tracer) LastSampled() *Trace {
	if t == nil {
		return nil
	}
	return t.last.Load()
}

// SlowDump returns the retained slow queries, oldest first, plus how
// many slow queries were seen in total (the ring may have evicted some).
func (t *Tracer) SlowDump() ([]SlowEntry, int64) {
	if t == nil {
		return nil, 0
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	out := make([]SlowEntry, 0, len(t.slow))
	out = append(out, t.slow[t.slowNext:]...)
	out = append(out, t.slow[:t.slowNext]...)
	return out, t.slowSeen
}

// StageStat is one stage's aggregated latency distribution.
type StageStat struct {
	Stage    Stage
	Snapshot metrics.Snapshot
}

// Stats is a point-in-time snapshot of the tracer's aggregation.
type Stats struct {
	Traces int64 // finished sampled traces
	Stages []StageStat
}

// Stats snapshots every stage, including ones with no observations yet
// (their snapshots render with the explicit n=0 marker).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	s := Stats{Traces: t.traces.Value(), Stages: make([]StageStat, 0, NumStages)}
	for st := Stage(0); st < NumStages; st++ {
		s.Stages = append(s.Stages, StageStat{Stage: st, Snapshot: t.stages[st].Snapshot()})
	}
	return s
}

// Format writes the snapshot as one aligned line per stage.
func (s Stats) Format(w io.Writer) {
	fmt.Fprintf(w, "traces sampled: %d\n", s.Traces)
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%-16s %s\n", st.Stage, st.Snapshot)
	}
}

// RenderTree writes the span tree in indented single-line-per-span form:
//
//	trace 0x5f3a total=12.4ms
//	  client.query 12.4ms
//	    client.pick 11µs
//	    client.primary 12.3ms
//	      rpc.roundtrip 12.2ms
//	        server.dispatch 12.0ms
//	          cache.get [miss] 11.1ms
//	            kv.read 11.0ms
//	          cache.compute 641µs
//
// Spans whose parent is missing from the set are rendered at the root
// flagged [orphan] rather than dropped.
func RenderTree(w io.Writer, traceID uint64, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintf(w, "trace %#x (empty)\n", traceID)
		return
	}
	byID := make(map[uint64]int, len(spans))
	children := make(map[uint64][]int, len(spans))
	for i, sp := range spans {
		byID[sp.ID] = i
	}
	var roots []int
	first, last := spans[0].Start, spans[0].Start
	for i, sp := range spans {
		if sp.Start.Before(first) {
			first = sp.Start
		}
		if end := sp.Start.Add(sp.Dur); end.After(last) {
			last = end
		}
		if _, ok := byID[sp.Parent]; sp.Parent == 0 || !ok {
			roots = append(roots, i)
		} else {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
	}
	sortByStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return spans[idx[a]].Start.Before(spans[idx[b]].Start) })
	}
	sortByStart(roots)
	for _, idx := range children {
		sortByStart(idx)
	}
	fmt.Fprintf(w, "trace %#x total=%v\n", traceID, last.Sub(first))
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := spans[i]
		fmt.Fprintf(w, "%s%s%s %v\n", strings.Repeat("  ", depth+1), sp.Stage, renderFlags(sp, byID), sp.Dur)
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func renderFlags(sp Span, byID map[uint64]int) string {
	var tags []string
	if sp.Flags&FlagCacheHit != 0 {
		tags = append(tags, "hit")
	}
	if sp.Flags&FlagCacheMiss != 0 {
		tags = append(tags, "miss")
	}
	if sp.Flags&FlagErr != 0 {
		tags = append(tags, "err")
	}
	if sp.Parent != 0 {
		if _, ok := byID[sp.Parent]; !ok {
			tags = append(tags, "orphan")
		}
	}
	if len(tags) == 0 {
		return ""
	}
	return " [" + strings.Join(tags, ",") + "]"
}
