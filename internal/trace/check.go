package trace

import (
	"fmt"
	"time"
)

// Validate checks the structural well-formedness invariants of a span
// set (one Trace's spans, possibly grafted across an RPC hop):
//
//   - IDs are unique and non-zero;
//   - every Parent is 0 or the ID of another span in the set;
//   - durations are non-negative;
//   - every child's [Start, Start+Dur] interval nests inside its
//     parent's, within slack (grafted spans carry wall-clock times from
//     the peer process; pass a small slack when validating those).
//
// It returns nil for a well-formed set or an error naming the first
// violated invariant.
func Validate(spans []Span, slack time.Duration) error {
	byID := make(map[uint64]Span, len(spans))
	for _, sp := range spans {
		if sp.ID == 0 {
			return fmt.Errorf("span with zero ID (stage %s)", sp.Stage)
		}
		if _, dup := byID[sp.ID]; dup {
			return fmt.Errorf("duplicate span ID %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Dur < 0 {
			return fmt.Errorf("span %d (%s) has negative duration %v", sp.ID, sp.Stage, sp.Dur)
		}
		if sp.Parent == 0 {
			continue
		}
		par, ok := byID[sp.Parent]
		if !ok {
			return fmt.Errorf("orphan span %d (%s): parent %d not in trace", sp.ID, sp.Stage, sp.Parent)
		}
		if sp.Start.Add(slack).Before(par.Start) {
			return fmt.Errorf("span %d (%s) starts %v before its parent %d (%s)",
				sp.ID, sp.Stage, par.Start.Sub(sp.Start), par.ID, par.Stage)
		}
		childEnd, parEnd := sp.Start.Add(sp.Dur), par.Start.Add(par.Dur)
		if childEnd.After(parEnd.Add(slack)) {
			return fmt.Errorf("span %d (%s) ends %v after its parent %d (%s)",
				sp.ID, sp.Stage, childEnd.Sub(parEnd), par.ID, par.Stage)
		}
	}
	return nil
}

// ChildSums returns, for every span with children, the sum of its direct
// children's durations keyed by parent span ID. For a request whose
// stages run sequentially (no hedging, no batch fan-out) each sum is
// bounded by the parent's own duration.
func ChildSums(spans []Span) map[uint64]time.Duration {
	sums := make(map[uint64]time.Duration)
	for _, sp := range spans {
		if sp.Parent != 0 {
			sums[sp.Parent] += sp.Dur
		}
	}
	return sums
}
