package trace

import (
	"encoding/binary"
	"errors"
	"time"
)

// Wire format for span blobs carried in traced RPC response frames
// (little-endian, matching the rpc frame codec):
//
//	u16 count
//	count × { u8 stage, u8 flags, u64 id, u64 parent,
//	          i64 start-unix-nano, i64 dur-nanos }
//
// Span Start times cross the wire as absolute unix nanos; client and
// server share a host in every test/bench topology, and across real
// hosts the durations — not the absolute offsets — are the payload.

const spanWireSize = 1 + 1 + 8 + 8 + 8 + 8

// maxWireSpans caps a decoded blob; a request touching more stages than
// this is corrupt or hostile.
const maxWireSpans = 4096

var errBadSpanBlob = errors.New("trace: malformed span blob")

// EncodeSpans serializes spans for a traced response frame.
func EncodeSpans(spans []Span) []byte {
	if len(spans) > maxWireSpans {
		spans = spans[:maxWireSpans]
	}
	buf := make([]byte, 2+len(spans)*spanWireSize)
	binary.LittleEndian.PutUint16(buf, uint16(len(spans)))
	off := 2
	for _, sp := range spans {
		buf[off] = byte(sp.Stage)
		buf[off+1] = sp.Flags
		binary.LittleEndian.PutUint64(buf[off+2:], sp.ID)
		binary.LittleEndian.PutUint64(buf[off+10:], sp.Parent)
		binary.LittleEndian.PutUint64(buf[off+18:], uint64(sp.Start.UnixNano()))
		binary.LittleEndian.PutUint64(buf[off+26:], uint64(sp.Dur))
		off += spanWireSize
	}
	return buf
}

// DecodeSpans parses a span blob produced by EncodeSpans.
func DecodeSpans(b []byte) ([]Span, error) {
	if len(b) < 2 {
		return nil, errBadSpanBlob
	}
	n := int(binary.LittleEndian.Uint16(b))
	if n > maxWireSpans || len(b) != 2+n*spanWireSize {
		return nil, errBadSpanBlob
	}
	spans := make([]Span, n)
	off := 2
	for i := range spans {
		spans[i] = Span{
			Stage:  Stage(b[off]),
			Flags:  b[off+1],
			ID:     binary.LittleEndian.Uint64(b[off+2:]),
			Parent: binary.LittleEndian.Uint64(b[off+10:]),
			Start:  time.Unix(0, int64(binary.LittleEndian.Uint64(b[off+18:]))),
			Dur:    time.Duration(binary.LittleEndian.Uint64(b[off+26:])),
		}
		off += spanWireSize
	}
	return spans, nil
}
