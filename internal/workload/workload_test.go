package workload

import (
	"math"
	"testing"

	"ips/internal/model"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := New(Options{Seed: 7})
	b := New(Options{Seed: 7})
	for i := 0; i < 100; i++ {
		if a.ProfileID() != b.ProfileID() {
			t.Fatal("same seed should reproduce profile IDs")
		}
		qa, qb := a.Query("t"), b.Query("t")
		if qa.ProfileID != qb.ProfileID || qa.Span != qb.Span {
			t.Fatal("same seed should reproduce queries")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Options{Seed: 1, Profiles: 10_000})
	counts := map[model.ProfileID]int{}
	const draws = 50_000
	for i := 0; i < draws; i++ {
		counts[g.ProfileID()]++
	}
	// The hottest profile should absorb a large share; the distinct count
	// should be far below the corpus.
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < draws/20 {
		t.Fatalf("hottest profile got %d of %d draws; not skewed", max, draws)
	}
	if len(counts) > draws/2 {
		t.Fatalf("%d distinct profiles; not Zipf-like", len(counts))
	}
}

// TestZipfHeadShare pins the share of draws the Zipf head receives: at
// the default skew (s=1.2) over 10k profiles, the top 1% of the keyspace
// (IDs 1..100, since draws are rank-ordered) must absorb ~75% of draws,
// stable across seeds. The hot-key experiments (singleflight, hot slots,
// batch v2 dedup) are calibrated against this concentration; if it
// drifts, their duplication factors and promotion thresholds lose their
// meaning — so a change here must be deliberate, not incidental.
func TestZipfHeadShare(t *testing.T) {
	const (
		profiles = 10_000
		draws    = 200_000
		topKeys  = profiles / 100 // top 1% of the keyspace
		wantLo   = 0.70
		wantHi   = 0.80
	)
	for _, seed := range []int64{1, 2, 3, 42, 999} {
		g := New(Options{Seed: seed, Profiles: profiles})
		head := 0
		for i := 0; i < draws; i++ {
			if g.ProfileID() <= topKeys {
				head++
			}
		}
		share := float64(head) / draws
		if share < wantLo || share > wantHi {
			t.Errorf("seed %d: top-1%% share = %.4f, want within [%.2f, %.2f]",
				seed, share, wantLo, wantHi)
		}
	}
}

func TestReadWriteMixDefault(t *testing.T) {
	g := New(Options{Seed: 3})
	reads := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if g.IsRead() {
			reads++
		}
	}
	ratio := float64(reads) / float64(n-reads)
	// The paper's §IV-C mix: reads ≈ 10x writes.
	if ratio < 8 || ratio > 12 {
		t.Fatalf("read:write = %.1f:1, want ~10:1", ratio)
	}
}

func TestWriteEntryShape(t *testing.T) {
	g := New(Options{Seed: 5, Actions: 3, Slots: 4, Types: 2})
	now := model.Millis(1_000_000_000)
	for i := 0; i < 1000; i++ {
		e := g.WriteEntry(now)
		if e.Timestamp > now || e.Timestamp < now-30_000 {
			t.Fatalf("timestamp %d outside ingestion-lag window", e.Timestamp)
		}
		if e.Slot >= 4 || e.Type >= 2 {
			t.Fatalf("slot/type out of range: %d/%d", e.Slot, e.Type)
		}
		if len(e.Counts) != 3 {
			t.Fatalf("counts width = %d", len(e.Counts))
		}
		var total int64
		for _, c := range e.Counts {
			if c < 0 {
				t.Fatal("negative count")
			}
			total += c
		}
		if total < 1 || total > 2 {
			t.Fatalf("total counts = %d", total)
		}
	}
}

func TestQueryShape(t *testing.T) {
	g := New(Options{Seed: 9})
	var decays, filters, allTypes int
	for i := 0; i < 10_000; i++ {
		q := g.Query("up")
		if q.Table != "up" || q.K == 0 || q.Span == 0 {
			t.Fatalf("query = %+v", q)
		}
		if q.Decay != 0 {
			decays++
		}
		if q.MinCount > 0 {
			filters++
		}
		if q.AllTypes {
			allTypes++
		}
	}
	if decays == 0 || filters == 0 || allTypes == 0 {
		t.Fatalf("query variety missing: decay=%d filter=%d allTypes=%d", decays, filters, allTypes)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Base: 0.3}
	const hour = 3_600_000
	trough := d.Intensity(4*hour + 30*60_000) // ~4:30am
	lunch := d.Intensity(12*hour + 30*60_000)
	evening := d.Intensity(21 * hour)
	if !(trough < lunch && lunch < evening) {
		t.Fatalf("shape wrong: trough=%.2f lunch=%.2f evening=%.2f", trough, lunch, evening)
	}
	if evening < 0.8 {
		t.Fatalf("evening peak = %.2f, want near 1", evening)
	}
	if trough > 0.5 {
		t.Fatalf("trough = %.2f, want deep", trough)
	}
	// The curve is periodic across days.
	if math.Abs(d.Intensity(hour)-d.Intensity(25*hour)) > 1e-9 {
		t.Fatal("curve not periodic")
	}
}

func TestDiurnalFestivalBoost(t *testing.T) {
	plain := Diurnal{Base: 0.3}
	fest := Diurnal{Base: 0.3, FestivalBoost: 1.4}
	const t21 = 21 * 3_600_000
	if fest.Intensity(t21) <= plain.Intensity(t21) {
		t.Fatal("festival boost has no effect")
	}
}

func TestDiurnalBounds(t *testing.T) {
	d := Diurnal{Base: 0.3}
	for ms := model.Millis(0); ms < 86_400_000; ms += 600_000 {
		v := d.Intensity(ms)
		if v <= 0 || v > 1 {
			t.Fatalf("intensity(%d) = %f out of (0,1]", ms, v)
		}
	}
}
