// Package workload generates the synthetic traffic the benchmark harness
// drives IPS with, shaped after the production loads behind the paper's
// evaluation (§IV): Zipf-distributed profile popularity (a few very hot
// users, a long cold tail), a diurnal traffic curve with the sharp peaks
// of the 2020 Spring Festival (Fig. 16), and the ~10:1 read:write mix the
// paper reports (§IV-C).
package workload

import (
	"math"
	"math/rand"

	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// Options shapes a generator.
type Options struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Profiles is the corpus size (distinct profile IDs).
	Profiles uint64
	// ZipfS is the popularity skew (>1); default 1.2.
	ZipfS float64
	// Features is the feature vocabulary size per slot.
	Features uint64
	// Slots and Types bound the category space.
	Slots, Types uint32
	// Actions is the schema's action count (count-vector width).
	Actions int
	// ReadFraction is the probability a request is a query; default 10:1
	// reads:writes (0.909...).
	ReadFraction float64
	// Windows are the CURRENT spans queries pick from, in milliseconds;
	// default {10m, 1h, 24h, 7d, 30d}.
	Windows []model.Millis
	// TopK is the K used by generated queries; default 20.
	TopK int
}

func (o *Options) fill() {
	if o.Profiles == 0 {
		o.Profiles = 10_000
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.Features == 0 {
		o.Features = 10_000
	}
	if o.Slots == 0 {
		o.Slots = 8
	}
	if o.Types == 0 {
		o.Types = 4
	}
	if o.Actions == 0 {
		o.Actions = 3
	}
	if o.ReadFraction == 0 {
		o.ReadFraction = 10.0 / 11.0
	}
	if len(o.Windows) == 0 {
		o.Windows = []model.Millis{
			10 * 60 * 1000, 3_600_000, 24 * 3_600_000,
			7 * 24 * 3_600_000, 30 * 24 * 3_600_000,
		}
	}
	if o.TopK == 0 {
		o.TopK = 20
	}
}

// Generator produces requests.
type Generator struct {
	opts  Options
	rng   *rand.Rand
	zipfP *rand.Zipf // profile popularity
	zipfF *rand.Zipf // feature popularity
}

// New creates a generator.
func New(opts Options) *Generator {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))
	return &Generator{
		opts:  opts,
		rng:   rng,
		zipfP: rand.NewZipf(rng, opts.ZipfS, 1, opts.Profiles-1),
		zipfF: rand.NewZipf(rng, opts.ZipfS, 1, opts.Features-1),
	}
}

// ProfileID draws a Zipf-popular profile. Draws are rank-ordered —
// profile 1 is the hottest — so "the top P% of the keyspace" is simply
// IDs 1..Profiles*P/100. At the default skew (ZipfS 1.2, 10k profiles)
// the top 1% of profiles absorbs ≈75% of draws; the Zipf-head regression
// test pins that share so a distribution change can't silently reshape
// every contention experiment built on this generator.
func (g *Generator) ProfileID() model.ProfileID {
	return g.zipfP.Uint64() + 1
}

// UniformProfileID draws uniformly, for cache-adversarial scans.
func (g *Generator) UniformProfileID() model.ProfileID {
	return uint64(g.rng.Int63n(int64(g.opts.Profiles))) + 1
}

// FeatureID draws a Zipf-popular feature.
func (g *Generator) FeatureID() model.FeatureID {
	return g.zipfF.Uint64() + 1
}

// IsRead draws the read/write coin at the configured mix.
func (g *Generator) IsRead() bool {
	return g.rng.Float64() < g.opts.ReadFraction
}

// WriteEntry builds one add entry stamped at now.
func (g *Generator) WriteEntry(now model.Millis) wire.AddEntry {
	counts := make([]int64, g.opts.Actions)
	// One primary action per event, occasionally more (a like plus a
	// share), matching instance-data shape.
	counts[g.rng.Intn(g.opts.Actions)] = 1
	if g.rng.Float64() < 0.15 {
		counts[g.rng.Intn(g.opts.Actions)] += 1
	}
	return wire.AddEntry{
		Timestamp: now - model.Millis(g.rng.Int63n(30_000)), // ingestion lag ≤30s
		Slot:      g.rng.Uint32() % g.opts.Slots,
		Type:      g.rng.Uint32() % g.opts.Types,
		FID:       g.FeatureID(),
		Counts:    counts,
	}
}

// Query builds one read request mixing windows, sorts and decay the way
// upstream rankers do ("different combinations of filtering, sorting and
// decaying", §II-B2).
func (g *Generator) Query(table string) *wire.QueryRequest {
	req := &wire.QueryRequest{
		Table:     table,
		ProfileID: g.ProfileID(),
		Slot:      g.rng.Uint32() % g.opts.Slots,
		Type:      g.rng.Uint32() % g.opts.Types,
		RangeKind: query.Current,
		Span:      g.opts.Windows[g.rng.Intn(len(g.opts.Windows))],
		SortBy:    query.ByAction,
		K:         g.opts.TopK,
	}
	switch g.rng.Intn(10) {
	case 0, 1: // 20% decay queries
		req.Decay = query.DecayExp
		req.DecayFactor = 0.8
	case 2: // 10% filter queries
		req.MinCount = 2
	case 3: // 10% whole-slot aggregations
		req.AllTypes = true
	}
	return req
}

// Diurnal is a 24-hour traffic curve normalized to [base, 1]: a deep
// trough in the early morning, a morning ramp, and evening peak hours —
// the shape of the Fig. 16/19 load lines.
type Diurnal struct {
	// Base is the trough fraction of peak; default 0.3 (the paper's
	// throughput floor is roughly 30 of the 40M peak... i.e. ~0.75 of
	// 40M; production floors differ per figure, so Base is settable).
	Base float64
	// FestivalBoost multiplies the curve during "festival" days to model
	// the Spring Festival surge; default 1 (off).
	FestivalBoost float64
}

// Intensity returns the relative load in (0, Boost] at a time of day given
// in milliseconds since midnight.
func (d Diurnal) Intensity(msOfDay model.Millis) float64 {
	base := d.Base
	if base <= 0 || base >= 1 {
		base = 0.3
	}
	h := float64(msOfDay%86_400_000) / 3_600_000.0
	// Two-humped curve: lunchtime bump and a taller evening peak at 21h,
	// trough around 4-5am.
	lunch := math.Exp(-sq(h-12.5) / 8)
	evening := math.Exp(-sq(h-21) / 6)
	morningTrough := 1 - 0.9*math.Exp(-sq(h-4.5)/4)
	v := base + (1-base)*clamp01(0.55*lunch+0.95*evening)
	v *= morningTrough
	if v < base*0.1 {
		v = base * 0.1
	}
	boost := d.FestivalBoost
	if boost > 1 {
		v *= boost
	}
	return clampTo(v, 0.01, math.Max(1, boost))
}

func sq(x float64) float64 { return x * x }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampTo(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
