package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	var e Buffer
	e.Uint64(1, 42)
	e.Int64(2, -7)
	e.Uint32(3, math.MaxUint32)
	e.Bool(4, true)
	e.Float64(5, 3.5)
	e.String(6, "alice")
	e.Raw(7, []byte{0xde, 0xad})

	r := NewReader(e.Bytes())

	f, wt, err := r.Next()
	if err != nil || f != 1 || wt != Varint {
		t.Fatalf("field 1: f=%d wt=%d err=%v", f, wt, err)
	}
	if v, _ := r.Uint64(); v != 42 {
		t.Fatalf("field 1 value = %d", v)
	}

	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Int64(); v != -7 {
		t.Fatalf("field 2 value = %d", v)
	}

	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Uint32(); v != math.MaxUint32 {
		t.Fatalf("field 3 value = %d", v)
	}

	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Bool(); !v {
		t.Fatal("field 4 should be true")
	}

	f, wt, err = r.Next()
	if err != nil || f != 5 || wt != Fixed64 {
		t.Fatalf("field 5: f=%d wt=%d err=%v", f, wt, err)
	}
	if v, _ := r.Float64(); v != 3.5 {
		t.Fatalf("field 5 value = %v", v)
	}

	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.String(); v != "alice" {
		t.Fatalf("field 6 value = %q", v)
	}

	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Bytes(); !bytes.Equal(v, []byte{0xde, 0xad}) {
		t.Fatalf("field 7 value = %x", v)
	}

	if !r.Done() {
		t.Fatal("reader should be done")
	}
}

func TestNestedMessage(t *testing.T) {
	var e Buffer
	e.Uint64(1, 9)
	e.Message(2, func(inner *Buffer) {
		inner.String(1, "nested")
		inner.Message(2, func(inner2 *Buffer) {
			inner2.Int64(1, -100)
		})
	})
	e.Uint64(3, 10)

	r := NewReader(e.Bytes())
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Uint64(); v != 9 {
		t.Fatalf("outer field 1 = %d", v)
	}
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	sub, err := r.Message()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := sub.String(); v != "nested" {
		t.Fatalf("nested string = %q", v)
	}
	if _, _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}
	sub2, err := sub.Message()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sub2.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := sub2.Int64(); v != -100 {
		t.Fatalf("deep int = %d", v)
	}
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Uint64(); v != 10 {
		t.Fatalf("outer field 3 = %d", v)
	}
}

func TestPacked(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	var e Buffer
	e.Packed64(1, vals)
	r := NewReader(e.Bytes())
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Packed64()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestPackedLongPayload(t *testing.T) {
	// Payload length > 127 exercises the length-rewrite shift path.
	vals := make([]uint64, 200)
	for i := range vals {
		vals[i] = uint64(i) * 1_000_003
	}
	var e Buffer
	e.Packed64(7, vals)
	e.Uint64(8, 999) // field after the shifted payload must survive
	r := NewReader(e.Bytes())
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Packed64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
	if f, _, err := r.Next(); err != nil || f != 8 {
		t.Fatalf("trailing field = %d err=%v", f, err)
	}
	if v, _ := r.Uint64(); v != 999 {
		t.Fatalf("trailing value = %d", v)
	}
}

func TestPackedI64(t *testing.T) {
	vals := []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -123456}
	var e Buffer
	e.PackedI64(1, vals)
	r := NewReader(e.Bytes())
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.PackedI64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes must encode small.
	if zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(0) != 0 {
		t.Fatal("zigzag encoding of small values is wrong")
	}
}

func TestInt64RoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		var e Buffer
		e.Int64(1, v)
		r := NewReader(e.Bytes())
		if _, _, err := r.Next(); err != nil {
			return false
		}
		got, err := r.Int64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkip(t *testing.T) {
	var e Buffer
	e.Uint64(1, 5)
	e.Float64(2, 1.5)
	e.Raw(3, []byte("skipme"))
	e.Uint64(4, 6)
	r := NewReader(e.Bytes())
	for i := 0; i < 3; i++ {
		_, wt, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Skip(wt); err != nil {
			t.Fatal(err)
		}
	}
	f, _, err := r.Next()
	if err != nil || f != 4 {
		t.Fatalf("after skips f=%d err=%v", f, err)
	}
	if v, _ := r.Uint64(); v != 6 {
		t.Fatalf("value = %d", v)
	}
}

func TestTruncatedErrors(t *testing.T) {
	var e Buffer
	e.Raw(1, []byte("hello"))
	full := e.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_, wt, err := r.Next()
		if err != nil {
			continue // tag itself truncated: fine
		}
		if _, err := r.Bytes(); err == nil && cut < len(full) {
			t.Fatalf("cut=%d: expected truncation error, wt=%d", cut, wt)
		}
	}
}

func TestReaderNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		r := NewReader(junk)
		for !r.Done() {
			_, wt, err := r.Next()
			if err != nil {
				return true
			}
			if err := r.Skip(wt); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferReset(t *testing.T) {
	var e Buffer
	e.Uint64(1, 1)
	if e.Len() == 0 {
		t.Fatal("buffer should be nonempty")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset should empty the buffer")
	}
	e.Grow(1024)
	if cap(e.b) < 1024 {
		t.Fatal("grow should reserve capacity")
	}
}

func TestMessageScratchReuse(t *testing.T) {
	// Encoding many sibling messages should not grow the free list beyond
	// the nesting depth and must produce correct output.
	var e Buffer
	for i := 0; i < 100; i++ {
		e.Message(1, func(inner *Buffer) {
			inner.Uint64(1, uint64(i))
		})
	}
	r := NewReader(e.Bytes())
	for i := 0; i < 100; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		sub, err := r.Message()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sub.Next(); err != nil {
			t.Fatal(err)
		}
		v, _ := sub.Uint64()
		if v != uint64(i) {
			t.Fatalf("message %d: got %d", i, v)
		}
	}
	if e.free == nil || len(*e.free) > 2 {
		t.Fatalf("free list = %v; scratch reuse is broken", e.free)
	}
}

func BenchmarkEncodeProfileShaped(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Buffer
		for s := 0; s < 10; s++ {
			e.Message(1, func(slice *Buffer) {
				slice.Uint64(1, uint64(s))
				for f := 0; f < 20; f++ {
					slice.Message(2, func(feat *Buffer) {
						feat.Uint64(1, uint64(f))
						feat.PackedI64(2, []int64{1, 2, 3})
					})
				}
			})
		}
	}
}
