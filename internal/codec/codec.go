// Package codec implements the binary wire format IPS uses to serialize the
// profile hierarchy for persistence (§III-E). It plays the role Protocol
// Buffers plays in the paper: a compact tag/varint encoding of nested
// records, implemented from scratch on the standard library.
//
// The format is a stream of fields. Each field starts with a tag byte
// combining a field number and a wire type:
//
//	tag     = fieldNumber<<3 | wireType (as uvarint)
//	VARINT  = unsigned LEB128 integer
//	BYTES   = uvarint length followed by raw bytes (also used for nested
//	          messages, which are themselves encoded field streams)
//	FIXED64 = 8 little-endian bytes
//
// Signed integers use zigzag encoding so small negative counts stay small
// on the wire.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// WireType identifies how a field's payload is encoded.
type WireType byte

// Wire types.
const (
	Varint  WireType = 0
	Fixed64 WireType = 1
	Bytes   WireType = 2
)

// Errors returned by the decoder.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrOverflow  = errors.New("codec: varint overflows 64 bits")
	ErrBadWire   = errors.New("codec: unknown wire type")
)

// Buffer accumulates an encoded message. The zero value is ready to use.
type Buffer struct {
	b []byte
	// free points to a scratch pool shared across the whole message tree:
	// nested buffers at any depth return their storage here, so encoding
	// a deep hierarchy allocates one scratch buffer per level, total.
	free *[][]byte
}

// Bytes returns the encoded contents. The slice aliases the buffer.
//
//ips:hotpath
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
//
//ips:hotpath
func (e *Buffer) Len() int { return len(e.b) }

// Reset clears the buffer for reuse, retaining capacity.
//
//ips:hotpath
func (e *Buffer) Reset() { e.b = e.b[:0] }

// Attach points the buffer at caller-owned storage: subsequent fields
// append after dst's current length. With Detach this lets encoders
// build directly into pooled slices instead of copying out of an
// internal buffer.
//
//ips:hotpath
func (e *Buffer) Attach(dst []byte) { e.b = dst }

// Detach returns the accumulated bytes and releases the buffer's hold
// on them. The pair `e.Attach(dst); ...; return e.Detach()` is the
// allocation-free replacement for `append([]byte(nil), e.Bytes()...)`.
//
//ips:hotpath
func (e *Buffer) Detach() []byte {
	b := e.b
	e.b = nil
	return b
}

// Grow ensures capacity for at least n more bytes.
//
//ips:hotpath-trust growth into a pooled buffer is amortized away by reuse
func (e *Buffer) Grow(n int) {
	if cap(e.b)-len(e.b) < n {
		nb := make([]byte, len(e.b), len(e.b)+n)
		copy(nb, e.b)
		e.b = nb
	}
}

//ips:hotpath
func (e *Buffer) tag(field uint32, wt WireType) {
	e.uvarint(uint64(field)<<3 | uint64(wt))
}

//ips:hotpath
func (e *Buffer) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

// Uint64 encodes an unsigned varint field.
//
//ips:hotpath
func (e *Buffer) Uint64(field uint32, v uint64) {
	e.tag(field, Varint)
	e.uvarint(v)
}

// Int64 encodes a signed varint field using zigzag encoding.
//
//ips:hotpath
func (e *Buffer) Int64(field uint32, v int64) {
	e.Uint64(field, zigzag(v))
}

// Uint32 encodes a 32-bit unsigned varint field.
//
//ips:hotpath
func (e *Buffer) Uint32(field uint32, v uint32) { e.Uint64(field, uint64(v)) }

// Bool encodes a boolean as a 0/1 varint field.
//
//ips:hotpath
func (e *Buffer) Bool(field uint32, v bool) {
	var x uint64
	if v {
		x = 1
	}
	e.Uint64(field, x)
}

// Float64 encodes a float as a fixed64 field.
//
//ips:hotpath
func (e *Buffer) Float64(field uint32, v float64) {
	e.tag(field, Fixed64)
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// Raw encodes a length-delimited byte field.
//
//ips:hotpath
func (e *Buffer) Raw(field uint32, v []byte) {
	e.tag(field, Bytes)
	e.uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// String encodes a length-delimited string field.
//
//ips:hotpath
func (e *Buffer) String(field uint32, v string) {
	e.tag(field, Bytes)
	e.uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// BeginMessage starts a nested message field without the closure (and
// the per-level scratch shuffling) Message takes: it writes the tag and
// a one-byte length placeholder and returns the payload start to hand
// back to EndMessage. The hot response encoder uses this pair so a
// per-feature nested message costs zero allocations.
//
//ips:hotpath
func (e *Buffer) BeginMessage(field uint32) int {
	e.tag(field, Bytes)
	e.b = append(e.b, 0) // length placeholder
	return len(e.b)
}

// EndMessage patches the placeholder written by the matching
// BeginMessage, shifting the payload right only when its length needs
// more than one varint byte (payloads over 127 bytes).
//
//ips:hotpath
func (e *Buffer) EndMessage(payloadStart int) {
	payload := len(e.b) - payloadStart
	var lenBuf [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(lenBuf[:], uint64(payload))
	if ln == 1 {
		e.b[payloadStart-1] = lenBuf[0]
		return
	}
	for i := 1; i < ln; i++ {
		e.b = append(e.b, 0)
	}
	copy(e.b[payloadStart+ln-1:], e.b[payloadStart:payloadStart+payload])
	copy(e.b[payloadStart-1:], lenBuf[:ln])
}

// Message encodes a nested message field by invoking fn on a scratch buffer.
// Scratch buffers are reused per parent Buffer (one per nesting level), so
// sequential siblings in a deep profile hierarchy encode without per-message
// allocations.
func (e *Buffer) Message(field uint32, fn func(*Buffer)) {
	if e.free == nil {
		e.free = new([][]byte)
	}
	nested := Buffer{b: e.scratch(), free: e.free}
	fn(&nested)
	e.Raw(field, nested.b)
	e.releaseScratch(nested.b)
}

func (e *Buffer) scratch() []byte {
	if n := len(*e.free); n > 0 {
		s := (*e.free)[n-1]
		*e.free = (*e.free)[:n-1]
		return s[:0]
	}
	return make([]byte, 0, 256)
}

func (e *Buffer) releaseScratch(s []byte) {
	if cap(s) <= 1<<20 {
		*e.free = append(*e.free, s)
	}
}

// Packed64 encodes a packed repeated uint64 field. It encodes in place
// through the BeginMessage/EndMessage placeholder mechanics.
//
//ips:hotpath
func (e *Buffer) Packed64(field uint32, vs []uint64) {
	payloadStart := e.BeginMessage(field)
	for _, v := range vs {
		e.uvarint(v)
	}
	e.EndMessage(payloadStart)
}

// PackedI64 encodes a packed repeated int64 field with zigzag encoding,
// in place via the same placeholder mechanics as Packed64.
//
//ips:hotpath
func (e *Buffer) PackedI64(field uint32, vs []int64) {
	payloadStart := e.BeginMessage(field)
	for _, v := range vs {
		e.uvarint(zigzag(v))
	}
	e.EndMessage(payloadStart)
}

//ips:hotpath
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

//ips:hotpath
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Reader decodes an encoded message field by field. The zero value is
// an empty Reader; Reset points an existing value at new input, so hot
// decoders keep Reader values on the stack or in pooled scratch instead
// of allocating through NewReader.
type Reader struct {
	b   []byte
	pos int
}

// NewReader creates a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset points the Reader at b and rewinds it, retaining no state.
//
//ips:hotpath
func (r *Reader) Reset(b []byte) {
	r.b = b
	r.pos = 0
}

// Done reports whether the entire input has been consumed.
//
//ips:hotpath
func (r *Reader) Done() bool { return r.pos >= len(r.b) }

// Next reads the next field tag, returning the field number and wire type.
//
//ips:hotpath
func (r *Reader) Next() (field uint32, wt WireType, err error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	wt = WireType(v & 0x7)
	if wt > Bytes {
		//ipslint:ignore hotpathalloc malformed-input error formatting is off the steady-state path
		return 0, 0, fmt.Errorf("%w: %d", ErrBadWire, wt)
	}
	f := v >> 3
	if f > math.MaxUint32 {
		//ipslint:ignore hotpathalloc malformed-input error formatting is off the steady-state path
		return 0, 0, fmt.Errorf("codec: field number %d too large", f)
	}
	return uint32(f), wt, nil
}

//ips:hotpath
func (r *Reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, ErrOverflow
	}
	r.pos += n
	return v, nil
}

// Uint64 reads a varint payload.
//
//ips:hotpath
func (r *Reader) Uint64() (uint64, error) { return r.uvarint() }

// Int64 reads a zigzag varint payload.
//
//ips:hotpath
func (r *Reader) Int64() (int64, error) {
	u, err := r.uvarint()
	return unzigzag(u), err
}

// Uint32 reads a varint payload, failing if it exceeds 32 bits.
//
//ips:hotpath
func (r *Reader) Uint32() (uint32, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if u > math.MaxUint32 {
		//ipslint:ignore hotpathalloc malformed-input error formatting is off the steady-state path
		return 0, fmt.Errorf("codec: value %d overflows uint32", u)
	}
	return uint32(u), nil
}

// Bool reads a boolean payload.
//
//ips:hotpath
func (r *Reader) Bool() (bool, error) {
	u, err := r.uvarint()
	return u != 0, err
}

// Float64 reads a fixed64 payload as a float.
//
//ips:hotpath
func (r *Reader) Float64() (float64, error) {
	if r.pos+8 > len(r.b) {
		return 0, ErrTruncated
	}
	u := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return math.Float64frombits(u), nil
}

// Bytes reads a length-delimited payload. The returned slice aliases the
// Reader's input.
//
//ips:hotpath
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, ErrTruncated
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// String reads a length-delimited payload as a string (copied).
func (r *Reader) String() (string, error) {
	b, err := r.Bytes()
	return string(b), err
}

// Message reads a nested message payload and returns a sub-Reader over it.
func (r *Reader) Message() (*Reader, error) {
	b, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	return NewReader(b), nil
}

// Sub reads a nested message payload into a caller-owned Reader value —
// the allocation-free form of Message for hot decoders that keep the
// sub-Reader on the stack.
//
//ips:hotpath
func (r *Reader) Sub(sub *Reader) error {
	b, err := r.Bytes()
	if err != nil {
		return err
	}
	sub.Reset(b)
	return nil
}

// Packed64 reads a packed repeated uint64 payload.
func (r *Reader) Packed64() ([]uint64, error) {
	b, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	sub := NewReader(b)
	var out []uint64
	for !sub.Done() {
		v, err := sub.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// PackedI64 reads a packed repeated zigzag int64 payload.
func (r *Reader) PackedI64() ([]int64, error) {
	us, err := r.Packed64()
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(us))
	for i, u := range us {
		out[i] = unzigzag(u)
	}
	return out, nil
}

// Packed64Into reads a packed repeated uint64 payload by appending
// into dst's storage (dst[:0]); allocation-free when dst has capacity.
//
//ips:hotpath
func (r *Reader) Packed64Into(dst []uint64) ([]uint64, error) {
	b, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	var sub Reader
	sub.Reset(b)
	out := dst[:0]
	for !sub.Done() {
		u, err := sub.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}

// PackedI64Into reads a packed repeated zigzag int64 payload by
// appending into dst's storage (dst[:0]); when dst has enough capacity
// the read is allocation-free, which is how the hot response decoder
// reuses one arena across requests.
//
//ips:hotpath
func (r *Reader) PackedI64Into(dst []int64) ([]int64, error) {
	b, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	var sub Reader
	sub.Reset(b)
	out := dst[:0]
	for !sub.Done() {
		u, err := sub.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, unzigzag(u))
	}
	return out, nil
}

// Skip discards the payload of a field with the given wire type; decoders
// use it for forward compatibility with unknown field numbers.
//
//ips:hotpath
func (r *Reader) Skip(wt WireType) error {
	switch wt {
	case Varint:
		_, err := r.uvarint()
		return err
	case Fixed64:
		if r.pos+8 > len(r.b) {
			return ErrTruncated
		}
		r.pos += 8
		return nil
	case Bytes:
		_, err := r.Bytes()
		return err
	default:
		return ErrBadWire
	}
}
