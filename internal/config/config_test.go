package config

import (
	"encoding/json"
	"testing"
	"time"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"1s", time.Second},
		{"1m", time.Minute},
		{"24h", 24 * time.Hour},
		{"1d", 24 * time.Hour},
		{"30d", 30 * 24 * time.Hour},
		{"365d", 365 * 24 * time.Hour},
		{"0s", 0},
		{"1.5d", 36 * time.Hour},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", c.in, err)
		}
		if time.Duration(got) != c.want {
			t.Fatalf("ParseDuration(%q) = %v, want %v", c.in, time.Duration(got), c.want)
		}
	}
	for _, bad := range []string{"", "abc", "5x", "d"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Fatalf("ParseDuration(%q) should fail", bad)
		}
	}
}

func TestDurationString(t *testing.T) {
	if got := Duration(30 * 24 * time.Hour).String(); got != "30d" {
		t.Fatalf("String = %q, want 30d", got)
	}
	if got := Duration(90 * time.Minute).String(); got != "1h30m0s" {
		t.Fatalf("String = %q", got)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1d"`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 24*time.Hour {
		t.Fatalf("unmarshal = %v", time.Duration(d))
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1d"` {
		t.Fatalf("marshal = %s", b)
	}
	if err := json.Unmarshal([]byte(`"zzz"`), &d); err == nil {
		t.Fatal("bad duration should fail unmarshal")
	}
	if err := json.Unmarshal([]byte(`42`), &d); err == nil {
		t.Fatal("number should fail unmarshal")
	}
}

func TestDefaultTimeDimension(t *testing.T) {
	// Listing 3 from the paper: 1s/1m/1h/1d/30d bands.
	td := DefaultTimeDimension()
	if err := td.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(td) != 5 {
		t.Fatalf("bands = %d, want 5", len(td))
	}
	if td.HeadWidth() != 1000 {
		t.Fatalf("head width = %d, want 1000", td.HeadWidth())
	}
	if td.Horizon() != 365*24*3600*1000 {
		t.Fatalf("horizon = %d", td.Horizon())
	}
	// Age 30 minutes falls into the 1m band.
	if w := td.WidthForAge(30 * 60 * 1000); w != 60_000 {
		t.Fatalf("width at 30m = %d, want 60000", w)
	}
	// Age 2 days falls into the 1d band.
	if w := td.WidthForAge(2 * 24 * 3600 * 1000); w != 24*3600*1000 {
		t.Fatalf("width at 2d = %d", w)
	}
	// Past the horizon uses the coarsest band.
	if w := td.WidthForAge(500 * 24 * 3600 * 1000); w != 30*24*3600*1000 {
		t.Fatalf("width past horizon = %d", w)
	}
}

func TestTimeDimensionValidate(t *testing.T) {
	mk := func(rows ...[3]string) TimeDimension {
		var td TimeDimension
		for _, r := range rows {
			w, _ := ParseDuration(r[0])
			f, _ := ParseDuration(r[1])
			to, _ := ParseDuration(r[2])
			td = append(td, TimeBand{Width: w, From: f, To: to})
		}
		return td
	}
	if err := (TimeDimension{}).Validate(); err == nil {
		t.Fatal("empty dimension should fail")
	}
	// First band must start at age 0.
	if err := mk([3]string{"1s", "1m", "1h"}).Validate(); err == nil {
		t.Fatal("nonzero first From should fail")
	}
	// Gap between bands.
	if err := mk([3]string{"1s", "0s", "1m"}, [3]string{"1h", "2m", "1h"}).Validate(); err == nil {
		t.Fatal("gap should fail")
	}
	// Width decreasing with age.
	if err := mk([3]string{"1m", "0s", "1h"}, [3]string{"1s", "1h", "2h"}).Validate(); err == nil {
		t.Fatal("decreasing width should fail")
	}
	// Empty age range.
	if err := mk([3]string{"1s", "0s", "0s"}).Validate(); err == nil {
		t.Fatal("empty range should fail")
	}
}

func TestParseTimeDimensionBadInputs(t *testing.T) {
	if _, err := ParseTimeDimension(map[string][2]string{"zz": {"0s", "1m"}}); err == nil {
		t.Fatal("bad width should fail")
	}
	if _, err := ParseTimeDimension(map[string][2]string{"1s": {"x", "1m"}}); err == nil {
		t.Fatal("bad from should fail")
	}
	if _, err := ParseTimeDimension(map[string][2]string{"1s": {"0s", "y"}}); err == nil {
		t.Fatal("bad to should fail")
	}
}

func TestShrinkPolicyRetainFor(t *testing.T) {
	sp := ShrinkPolicy{PerSlot: map[uint32]int{1: 100, 2: 50}, DefaultRetain: 10}
	if sp.RetainFor(1) != 100 || sp.RetainFor(2) != 50 || sp.RetainFor(9) != 10 {
		t.Fatal("RetainFor lookup wrong")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	c := Default()
	c.MergeInterval = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero merge interval should fail")
	}
	c = Default()
	c.CompactParallelism = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero parallelism should fail")
	}
	c = Default()
	c.TimeDimension = nil
	if err := c.Validate(); err == nil {
		t.Fatal("nil time dimension should fail")
	}
}

func TestStoreHotReload(t *testing.T) {
	s, err := NewStore(Default())
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("initial version = %d", s.Version())
	}
	w := s.Watch()

	cfg := s.Get()
	cfg.WriteIsolation = false
	if err := s.Update(cfg); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Fatalf("version = %d, want 2", s.Version())
	}
	if s.Get().WriteIsolation {
		t.Fatal("update not visible")
	}
	select {
	case got := <-w:
		if got.WriteIsolation {
			t.Fatal("watcher got stale config")
		}
	case <-time.After(time.Second):
		t.Fatal("watcher not notified")
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s, err := NewStore(Default())
	if err != nil {
		t.Fatal(err)
	}
	bad := s.Get()
	bad.CompactParallelism = -1
	if err := s.Update(bad); err == nil {
		t.Fatal("invalid update should be rejected")
	}
	if s.Version() != 1 {
		t.Fatal("rejected update must not bump version")
	}
	if _, err := NewStore(Config{}); err == nil {
		t.Fatal("NewStore with invalid config should fail")
	}
}

func TestStoreMutate(t *testing.T) {
	s, _ := NewStore(Default())
	if err := s.Mutate(func(c *Config) { c.CompactParallelism = 7 }); err != nil {
		t.Fatal(err)
	}
	if got := s.Get().CompactParallelism; got != 7 {
		t.Fatalf("parallelism = %d, want 7", got)
	}
}

func TestWatcherNonBlocking(t *testing.T) {
	s, _ := NewStore(Default())
	_ = s.Watch() // never drained
	for i := 0; i < 20; i++ {
		if err := s.Mutate(func(c *Config) { c.CompactParallelism = i + 1 }); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Get().CompactParallelism; got != 20 {
		t.Fatalf("parallelism = %d, want 20 (updates must not block on slow watcher)", got)
	}
}
