// Package config holds the feature-dependent configuration IPS exposes to
// operators: the time-dimension compaction schedule (Listings 2–3 in the
// paper), the shrink retention policy (Listing 4), truncation limits, and
// the read-write-isolation switch. Configurations support hot reload
// (§V-b): a Store hands out immutable snapshots and notifies watchers when
// a new version is installed, so most changes go live without a restart.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Duration wraps time.Duration with the paper's config spelling ("1s",
// "10m", "24h", "30d", "365d") including the day unit JSON durations lack.
type Duration time.Duration

// ParseDuration parses the config spelling, supporting the "d" (day)
// suffix used throughout the paper's examples.
func ParseDuration(s string) (Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errors.New("config: empty duration")
	}
	if strings.HasSuffix(s, "d") && !strings.HasSuffix(s, "nd") {
		n, err := strconv.ParseFloat(strings.TrimSuffix(s, "d"), 64)
		if err != nil {
			return 0, fmt.Errorf("config: bad day duration %q: %v", s, err)
		}
		return Duration(time.Duration(n * 24 * float64(time.Hour))), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("config: bad duration %q: %v", s, err)
	}
	return Duration(d), nil
}

// Millis returns the duration in milliseconds.
func (d Duration) Millis() int64 { return int64(time.Duration(d) / time.Millisecond) }

// String renders the duration, preferring the day unit for whole days.
func (d Duration) String() string {
	td := time.Duration(d)
	if td >= 24*time.Hour && td%(24*time.Hour) == 0 {
		return fmt.Sprintf("%dd", td/(24*time.Hour))
	}
	return td.String()
}

// UnmarshalJSON accepts the paper's string spelling.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseDuration(s)
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// MarshalJSON renders the string spelling.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// TimeBand is one row of the time-dimension config: slices whose age falls
// within [From, To) are compacted to width Width.
type TimeBand struct {
	// Width is the target slice width for this band.
	Width Duration
	// From and To bound the age range (distance back from "now") the band
	// applies to; From inclusive, To exclusive.
	From, To Duration
}

// TimeDimension is the ordered compaction schedule (paper Listing 3). Bands
// are sorted by From ascending; the first band's width is also the table's
// head-slice granularity.
type TimeDimension []TimeBand

// ParseTimeDimension parses the paper's JSON shape:
//
//	{"1s": ["0s","1m"], "1m": ["1m","1h"], ...}
func ParseTimeDimension(raw map[string][2]string) (TimeDimension, error) {
	var td TimeDimension
	for w, bounds := range raw {
		width, err := ParseDuration(w)
		if err != nil {
			return nil, err
		}
		from, err := ParseDuration(bounds[0])
		if err != nil {
			return nil, err
		}
		to, err := ParseDuration(bounds[1])
		if err != nil {
			return nil, err
		}
		td = append(td, TimeBand{Width: width, From: from, To: to})
	}
	sort.Slice(td, func(i, j int) bool { return td[i].From < td[j].From })
	if err := td.Validate(); err != nil {
		return nil, err
	}
	return td, nil
}

// DefaultTimeDimension is the production config from the paper's Listing 3.
func DefaultTimeDimension() TimeDimension {
	td, err := ParseTimeDimension(map[string][2]string{
		"1s":  {"0s", "1m"},
		"1m":  {"1m", "1h"},
		"1h":  {"1h", "24h"},
		"1d":  {"24h", "30d"},
		"30d": {"30d", "365d"},
	})
	if err != nil {
		panic(err) // static config cannot fail
	}
	return td
}

// Validate checks that bands are contiguous, widths positive and
// non-decreasing with age.
func (td TimeDimension) Validate() error {
	if len(td) == 0 {
		return errors.New("config: time dimension needs at least one band")
	}
	if td[0].From != 0 {
		return errors.New("config: first time band must start at age 0")
	}
	for i, b := range td {
		if b.Width <= 0 {
			return fmt.Errorf("config: band %d has non-positive width", i)
		}
		if b.To <= b.From {
			return fmt.Errorf("config: band %d has empty age range", i)
		}
		if i > 0 {
			if b.From != td[i-1].To {
				return fmt.Errorf("config: band %d not contiguous with previous", i)
			}
			if b.Width < td[i-1].Width {
				return fmt.Errorf("config: band %d width decreases with age", i)
			}
		}
	}
	return nil
}

// WidthForAge returns the target slice width in milliseconds for a slice of
// the given age (milliseconds back from now). Ages beyond the last band use
// the last band's width.
func (td TimeDimension) WidthForAge(age int64) int64 {
	for _, b := range td {
		if age >= b.From.Millis() && age < b.To.Millis() {
			return b.Width.Millis()
		}
	}
	if len(td) == 0 {
		return 1000
	}
	return td[len(td)-1].Width.Millis()
}

// HeadWidth returns the finest (first band) width in milliseconds, used as
// the head-slice granularity for new writes.
func (td TimeDimension) HeadWidth() int64 {
	if len(td) == 0 {
		return 1000
	}
	return td[0].Width.Millis()
}

// Horizon returns the oldest age covered in milliseconds; slices older than
// the horizon are eligible for truncation by age.
func (td TimeDimension) Horizon() int64 {
	if len(td) == 0 {
		return 0
	}
	return td[len(td)-1].To.Millis()
}

// ShrinkPolicy is the long-tail feature elimination config (paper Listing
// 4): how many features to retain per slot, and the weights that implement
// multi-dimensional sorting across actions.
type ShrinkPolicy struct {
	// PerSlot maps a slot ID to the number of features retained in each
	// (slice, slot, type). Slots not listed use DefaultRetain.
	PerSlot map[uint32]int
	// DefaultRetain applies to unlisted slots; 0 disables shrinking for
	// them.
	DefaultRetain int
	// ActionWeights scores a feature as the weighted sum of its counts,
	// implementing the paper's multi-dimensional sorting. A nil slice
	// weights all actions equally.
	ActionWeights []float64
	// FreshnessBoost adds to the score of features seen in the newest
	// portion of the profile, implementing the data-freshness principle:
	// recent low-count features survive over stale ones.
	FreshnessBoost float64
}

// RetainFor returns how many features to keep for slot.
func (sp ShrinkPolicy) RetainFor(slot uint32) int {
	if n, ok := sp.PerSlot[slot]; ok {
		return n
	}
	return sp.DefaultRetain
}

// TruncatePolicy bounds profile history (§III-D Truncate).
type TruncatePolicy struct {
	// MaxSlices keeps at most this many newest slices; 0 disables.
	MaxSlices int
	// MaxAge drops slices entirely older than this; 0 disables.
	MaxAge Duration
}

// Config is one immutable configuration snapshot for a table.
type Config struct {
	TimeDimension TimeDimension
	Shrink        ShrinkPolicy
	Truncate      TruncatePolicy
	// WriteIsolation enables the separate write table (§III-F).
	WriteIsolation bool
	// WriteTableMaxBytes caps the write table's memory (§III-F).
	WriteTableMaxBytes int64
	// MergeInterval is how often the write table merges into the main
	// table ("every a few seconds").
	MergeInterval Duration
	// CompactEvery is the cadence of background compaction sweeps.
	CompactEvery Duration
	// CompactParallelism caps the dedicated compaction pool (§III-D).
	CompactParallelism int
	// PartialCompactThreshold: profiles with at most this many slices get
	// a partial (head-bands-only) compaction instead of a full one.
	PartialCompactThreshold int
}

// Default returns the production-flavoured default configuration.
func Default() Config {
	return Config{
		TimeDimension:           DefaultTimeDimension(),
		Shrink:                  ShrinkPolicy{DefaultRetain: 0, FreshnessBoost: 0.5},
		Truncate:                TruncatePolicy{},
		WriteIsolation:          true,
		WriteTableMaxBytes:      64 << 20,
		MergeInterval:           Duration(2 * time.Second),
		CompactEvery:            Duration(10 * time.Second),
		CompactParallelism:      2,
		PartialCompactThreshold: 16,
	}
}

// Validate checks the whole snapshot.
func (c Config) Validate() error {
	if err := c.TimeDimension.Validate(); err != nil {
		return err
	}
	if c.MergeInterval <= 0 {
		return errors.New("config: merge interval must be positive")
	}
	if c.CompactParallelism < 1 {
		return errors.New("config: compact parallelism must be >= 1")
	}
	return nil
}

// Store hands out immutable snapshots and supports hot reload. Watchers
// receive a notification after each successful Update.
type Store struct {
	cur      atomic.Pointer[Config]
	mu       sync.Mutex
	watchers []chan Config
	version  atomic.Int64
}

// NewStore creates a store seeded with cfg.
func NewStore(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{}
	s.cur.Store(&cfg)
	s.version.Store(1)
	return s, nil
}

// Get returns the current snapshot.
func (s *Store) Get() Config { return *s.cur.Load() }

// Version returns the monotonically increasing config version.
func (s *Store) Version() int64 { return s.version.Load() }

// Update validates and installs a new snapshot, notifying watchers. This is
// the hot-reload entry point: callers pick up the change on their next Get
// or via Watch.
func (s *Store) Update(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.Store(&cfg)
	s.version.Add(1)
	for _, w := range s.watchers {
		select {
		case w <- cfg:
		default: // watcher is slow; it will Get() the latest anyway
		}
	}
	return nil
}

// Watch returns a channel that receives each newly installed snapshot. The
// channel is buffered; slow consumers miss intermediate versions but never
// block Update.
func (s *Store) Watch() <-chan Config {
	ch := make(chan Config, 4)
	s.mu.Lock()
	s.watchers = append(s.watchers, ch)
	s.mu.Unlock()
	return ch
}

// Mutate applies fn to a copy of the current snapshot and installs the
// result, serialized against concurrent Mutate calls.
func (s *Store) Mutate(fn func(*Config)) error {
	s.mu.Lock()
	cfg := *s.cur.Load()
	s.mu.Unlock()
	fn(&cfg)
	return s.Update(cfg)
}
