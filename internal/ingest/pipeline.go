package ingest

import (
	"sync"
	"time"

	"ips/internal/model"
	"ips/internal/wire"
)

// Topic names of the three input streams (§III-A) and the joined output.
const (
	TopicImpression = "impression"
	TopicAction     = "action"
	TopicFeature    = "feature"
	TopicInstance   = "instance"
)

// Sink receives joined instances converted to IPS writes; both the
// in-process Instance and the remote unified client satisfy it.
type Sink interface {
	Add(caller, table string, id model.ProfileID, entries []wire.AddEntry) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(caller, table string, id model.ProfileID, entries []wire.AddEntry) error

// Add implements Sink.
func (f SinkFunc) Add(caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
	return f(caller, table, id, entries)
}

// Pipeline is the end-to-end ingestion dataflow of §III-A: it consumes the
// impression/action/feature topics from the log, joins them into instance
// data, republishes instances to the instance topic, and writes them into
// IPS through a Sink with user-defined extraction logic.
type Pipeline struct {
	Log    *Log
	Sink   Sink
	Table  string
	Caller string
	// Schema maps joined action counts onto the table's count vector.
	Schema *model.Schema
	// Window is the join window in milliseconds; default 60s.
	Window model.Millis
	// Lateness is the joiner's out-of-order allowance; default 5m, which
	// absorbs the shuffling a partitioned log introduces between streams.
	Lateness model.Millis
	// Extract converts one joined instance into IPS write entries. The
	// default maps each schema action count and uses the instance's
	// (slot, type, item) as the feature coordinate.
	Extract func(*Instance) []wire.AddEntry
	// PollBatch is the per-poll message cap; default 256.
	PollBatch int

	joiner *Joiner
	// offsets[topic][partition] is the consumer position, guarded by
	// offMu so checkpointers can snapshot it while the drain loop runs.
	offMu   sync.Mutex
	offsets map[string][]int64

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}

	// Ingested counts instances written into IPS; Errors counts failed
	// sink writes.
	Ingested int64
	Errors   int64
}

// NewPipeline wires a pipeline; call Start for continuous consumption or
// RunOnce for deterministic batch draining.
func NewPipeline(log *Log, sink Sink, table, caller string, schema *model.Schema) *Pipeline {
	p := &Pipeline{
		Log: log, Sink: sink, Table: table, Caller: caller, Schema: schema,
		Window: 60_000, Lateness: 300_000, PollBatch: 256,
		offsets: make(map[string][]int64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	p.joiner = NewJoiner(p.Window, p.emit)
	p.joiner.Lateness = p.Lateness
	return p
}

// defaultExtract maps an instance's action counts through the schema. An
// "impression" action, when present in the schema, receives the window's
// impression count so CTR-style features divide cleanly.
func (p *Pipeline) defaultExtract(inst *Instance) []wire.AddEntry {
	counts := make([]int64, p.Schema.NumActions())
	var any bool
	for name, n := range inst.Actions {
		if i, err := p.Schema.ActionIndex(name); err == nil {
			counts[i] += n
			any = true
		}
	}
	if i, err := p.Schema.ActionIndex("impression"); err == nil && inst.Impressions > 0 {
		counts[i] += inst.Impressions
		any = true
	}
	if !any && len(inst.Signals) == 0 {
		return nil
	}
	return []wire.AddEntry{{
		Timestamp: inst.Timestamp,
		Slot:      inst.Slot,
		Type:      inst.Type,
		FID:       inst.ItemID,
		Counts:    counts,
	}}
}

// emit handles one joined instance: republish + sink write.
func (p *Pipeline) emit(inst *Instance) {
	// Republish to the instance topic for downstream consumers (model
	// training in the paper).
	p.Log.Append(TopicInstance, Message{Key: inst.ProfileID, Value: encodeInstance(inst)})

	extract := p.Extract
	if extract == nil {
		extract = p.defaultExtract
	}
	entries := extract(inst)
	if len(entries) == 0 {
		return
	}
	if err := p.Sink.Add(p.Caller, p.Table, inst.ProfileID, entries); err != nil {
		p.Errors++
		return
	}
	p.Ingested++
}

// encodeInstance renders an instance for the instance topic; the format is
// a compact event-like record (actions flattened to repeated events).
func encodeInstance(inst *Instance) []byte {
	// Reuse the Event encoding with one record per action type; adequate
	// for downstream tests that only need counts.
	e := Event{ProfileID: inst.ProfileID, ItemID: inst.ItemID, Timestamp: inst.Timestamp, Slot: inst.Slot, Type: inst.Type}
	return EncodeEvent(&e)
}

// RunOnce drains everything currently in the three topics through the
// joiner, then flushes open windows. Deterministic: used by tests and the
// harness. Returns the number of instances ingested during the call.
func (p *Pipeline) RunOnce() int64 {
	before := p.Ingested
	for {
		n := 0
		n += p.drainTopic(TopicImpression, p.joiner.OnImpression)
		n += p.drainTopic(TopicAction, p.joiner.OnAction)
		n += p.drainTopic(TopicFeature, p.joiner.OnFeature)
		if n == 0 {
			break
		}
	}
	p.joiner.Flush()
	return p.Ingested - before
}

func (p *Pipeline) drainTopic(topic string, handle func(*Event)) int {
	parts := p.Log.Partitions(topic)
	if parts == 0 {
		return 0
	}
	p.offMu.Lock()
	for len(p.offsets[topic]) < parts {
		p.offsets[topic] = append(p.offsets[topic], 0)
	}
	p.offMu.Unlock()
	total := 0
	for part := 0; part < parts; part++ {
		for {
			p.offMu.Lock()
			off := p.offsets[topic][part]
			p.offMu.Unlock()
			msgs, err := p.Log.Poll(topic, part, off, p.PollBatch)
			if err != nil || len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				if ev, err := DecodeEvent(m.Value); err == nil {
					handle(ev)
				}
				off = m.Offset + 1
			}
			// Advance only after the batch was handed to the joiner; the
			// lock is not held across handle so a concurrent checkpoint
			// never observes positions ahead of delivered events.
			p.offMu.Lock()
			p.offsets[topic][part] = off
			p.offMu.Unlock()
			total += len(msgs)
		}
	}
	return total
}

// Offsets returns a deep copy of the consumer positions per topic, for
// checkpointing (e.g. into the mutation journal alongside the writes the
// consumed events produced).
func (p *Pipeline) Offsets() map[string][]int64 {
	p.offMu.Lock()
	defer p.offMu.Unlock()
	out := make(map[string][]int64, len(p.offsets))
	for t, offs := range p.offsets {
		out[t] = append([]int64(nil), offs...)
	}
	return out
}

// SetOffsets restores checkpointed consumer positions. Call before Start
// or the first RunOnce so a restarted pipeline resumes where the previous
// incarnation stopped instead of re-reading every topic from offset 0.
func (p *Pipeline) SetOffsets(offsets map[string][]int64) {
	p.offMu.Lock()
	defer p.offMu.Unlock()
	for t, offs := range offsets {
		p.offsets[t] = append([]int64(nil), offs...)
	}
}

// Start launches continuous consumption at the given poll interval.
func (p *Pipeline) Start(interval time.Duration) {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.runOnceNoFlush()
			case <-p.stop:
				p.RunOnce()
				return
			}
		}
	}()
}

// runOnceNoFlush drains topics without force-closing join windows, so
// windows close on event-time as intended during continuous operation.
func (p *Pipeline) runOnceNoFlush() {
	for {
		n := 0
		n += p.drainTopic(TopicImpression, p.joiner.OnImpression)
		n += p.drainTopic(TopicAction, p.joiner.OnAction)
		n += p.drainTopic(TopicFeature, p.joiner.OnFeature)
		if n == 0 {
			return
		}
	}
}

// Close stops continuous consumption, draining and flushing first.
func (p *Pipeline) Close() {
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if !started {
		return
	}
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}
