package ingest

import (
	"sync"

	"ips/internal/codec"
	"ips/internal/model"
)

// Event is one record on the impression, action or feature streams
// (§III-A): impressions mark content shown to a user, actions are user
// behaviours ('like', 'comment', ...), features carry ranking signals from
// back-end servers.
type Event struct {
	ProfileID model.ProfileID
	ItemID    uint64 // the article/video the event refers to
	Timestamp model.Millis
	// Kind-specific payloads.
	Action string // actions: the action name
	Slot   model.SlotID
	Type   model.TypeID
	Signal float64 // features: a back-end ranking signal
}

// Event wire encoding for transport through the Log.
const (
	fEvProfile = 1
	fEvItem    = 2
	fEvTS      = 3
	fEvAction  = 4
	fEvSlot    = 5
	fEvType    = 6
	fEvSignal  = 7
)

// EncodeEvent serializes an Event.
func EncodeEvent(e *Event) []byte {
	var b codec.Buffer
	b.Uint64(fEvProfile, e.ProfileID)
	b.Uint64(fEvItem, e.ItemID)
	b.Int64(fEvTS, e.Timestamp)
	b.String(fEvAction, e.Action)
	b.Uint32(fEvSlot, e.Slot)
	b.Uint32(fEvType, e.Type)
	b.Float64(fEvSignal, e.Signal)
	return append([]byte(nil), b.Bytes()...)
}

// DecodeEvent parses an Event.
func DecodeEvent(data []byte) (*Event, error) {
	e := &Event{}
	r := codec.NewReader(data)
	for !r.Done() {
		f, wt, err := r.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case fEvProfile:
			e.ProfileID, err = r.Uint64()
		case fEvItem:
			e.ItemID, err = r.Uint64()
		case fEvTS:
			e.Timestamp, err = r.Int64()
		case fEvAction:
			e.Action, err = r.String()
		case fEvSlot:
			e.Slot, err = r.Uint32()
		case fEvType:
			e.Type, err = r.Uint32()
		case fEvSignal:
			e.Signal, err = r.Float64()
		default:
			err = r.Skip(wt)
		}
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Instance is one joined training/profile record: an impression enriched
// with the actions it received and the back-end features, keyed by
// (profile, item) — the "instance data" of §III-A.
type Instance struct {
	ProfileID model.ProfileID
	ItemID    uint64
	Timestamp model.Millis
	Slot      model.SlotID
	Type      model.TypeID
	// Impressions counts how many times the item was shown within the
	// window (server + client impressions in the paper's terms).
	Impressions int64
	// Actions maps action name to occurrence count within the window.
	Actions map[string]int64
	// Signals are the back-end feature values seen for the pair.
	Signals []float64
}

// Joiner is the windowed stream joiner standing in for the Flink join job:
// impressions open a join window per (profile, item); actions and features
// arriving within the window enrich it; when the window closes (event time
// advances past Timestamp+Window) the joined Instance is emitted.
//
// Late actions for an unseen impression are buffered briefly (out-of-order
// tolerance) and dropped after the window, matching at-most-once join
// semantics — IPS's tolerance for small data loss makes this acceptable.
type Joiner struct {
	// Window is the join window length in milliseconds.
	Window model.Millis
	// Lateness is the extra out-of-order allowance: a window stays open
	// until the watermark passes Timestamp+Window+Lateness, so events
	// arriving up to Lateness behind the watermark still join.
	Lateness model.Millis
	// Emit receives each completed instance.
	Emit func(*Instance)

	mu        sync.Mutex
	open      map[joinKey]*Instance
	pending   map[joinKey][]*Event // events that arrived before their impression
	watermark model.Millis

	// Joined / DroppedLate count emitted instances and discarded orphan
	// events.
	Joined      int64
	DroppedLate int64
}

type joinKey struct {
	profile model.ProfileID
	item    uint64
}

// NewJoiner creates a joiner with the given window.
func NewJoiner(window model.Millis, emit func(*Instance)) *Joiner {
	return &Joiner{
		Window:  window,
		Emit:    emit,
		open:    make(map[joinKey]*Instance),
		pending: make(map[joinKey][]*Event),
	}
}

// OnImpression opens a join window.
func (j *Joiner) OnImpression(e *Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	k := joinKey{e.ProfileID, e.ItemID}
	inst, ok := j.open[k]
	if !ok {
		inst = &Instance{
			ProfileID: e.ProfileID, ItemID: e.ItemID, Timestamp: e.Timestamp,
			Slot: e.Slot, Type: e.Type,
			Actions: make(map[string]int64),
		}
		j.open[k] = inst
	}
	inst.Impressions++
	// Apply any buffered early arrivals.
	for _, buf := range j.pending[k] {
		j.applyLocked(inst, buf)
	}
	delete(j.pending, k)
	j.advanceLocked(e.Timestamp)
}

// OnAction enriches an open window or buffers an early action.
func (j *Joiner) OnAction(e *Event) { j.onEnrich(e) }

// OnFeature enriches an open window or buffers an early feature.
func (j *Joiner) OnFeature(e *Event) { j.onEnrich(e) }

func (j *Joiner) onEnrich(e *Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	k := joinKey{e.ProfileID, e.ItemID}
	if inst, ok := j.open[k]; ok {
		j.applyLocked(inst, e)
	} else {
		j.pending[k] = append(j.pending[k], e)
	}
	j.advanceLocked(e.Timestamp)
}

func (j *Joiner) applyLocked(inst *Instance, e *Event) {
	if e.Action != "" {
		inst.Actions[e.Action]++
	} else {
		inst.Signals = append(inst.Signals, e.Signal)
	}
}

// advanceLocked moves the event-time watermark and closes expired windows.
func (j *Joiner) advanceLocked(ts model.Millis) {
	if ts <= j.watermark {
		return
	}
	j.watermark = ts
	for k, inst := range j.open {
		if inst.Timestamp+j.Window+j.Lateness <= ts {
			delete(j.open, k)
			j.Joined++
			if j.Emit != nil {
				j.Emit(inst)
			}
		}
	}
	for k, evs := range j.pending {
		keep := evs[:0]
		for _, e := range evs {
			if e.Timestamp+j.Window+j.Lateness > ts {
				keep = append(keep, e)
			} else {
				j.DroppedLate++
			}
		}
		if len(keep) == 0 {
			delete(j.pending, k)
		} else {
			j.pending[k] = keep
		}
	}
}

// Flush force-closes every open window, emitting all joined instances —
// end-of-stream behaviour.
func (j *Joiner) Flush() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for k, inst := range j.open {
		delete(j.open, k)
		j.Joined++
		if j.Emit != nil {
			j.Emit(inst)
		}
	}
	for k, evs := range j.pending {
		j.DroppedLate += int64(len(evs))
		delete(j.pending, k)
	}
}

// OpenWindows reports the number of in-flight join windows.
func (j *Joiner) OpenWindows() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.open)
}
