package ingest

import (
	"errors"
	"sync"
	"testing"

	"ips/internal/model"
	"ips/internal/wire"
)

// tallySink counts entries per profile, optionally failing some profiles.
type tallySink struct {
	mu      sync.Mutex
	perID   map[model.ProfileID]int
	failIDs map[model.ProfileID]bool
}

func (s *tallySink) Add(caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failIDs[id] {
		return errors.New("sink refused")
	}
	if s.perID == nil {
		s.perID = make(map[model.ProfileID]int)
	}
	s.perID[id] += len(entries)
	return nil
}

func records(n, entriesPer int) []BulkRecord {
	out := make([]BulkRecord, n)
	for i := range out {
		entries := make([]wire.AddEntry, entriesPer)
		for j := range entries {
			entries[j] = wire.AddEntry{Timestamp: int64(1000 + j), Slot: 1, Type: 1, FID: uint64(j), Counts: []int64{1}}
		}
		out[i] = BulkRecord{ProfileID: model.ProfileID(i + 1), Entries: entries}
	}
	return out
}

func TestBulkLoadAllRecords(t *testing.T) {
	sink := &tallySink{}
	l := &BulkLoader{Sink: sink, Table: "t", Caller: "backfill", Parallelism: 4}
	if err := l.Run(&SliceSource{Records: records(100, 7)}); err != nil {
		t.Fatal(err)
	}
	if l.Records.Load() != 100 || l.Entries.Load() != 700 {
		t.Fatalf("records=%d entries=%d", l.Records.Load(), l.Entries.Load())
	}
	for id := model.ProfileID(1); id <= 100; id++ {
		if sink.perID[id] != 7 {
			t.Fatalf("profile %d got %d entries", id, sink.perID[id])
		}
	}
}

func TestBulkLoadSplitsBatches(t *testing.T) {
	sink := &tallySink{}
	l := &BulkLoader{Sink: sink, Table: "t", Caller: "backfill", BatchEntries: 10}
	recs := records(1, 35)
	if err := l.Run(&SliceSource{Records: recs}); err != nil {
		t.Fatal(err)
	}
	if sink.perID[1] != 35 {
		t.Fatalf("entries = %d, want 35", sink.perID[1])
	}
}

func TestBulkLoadErrorsSurfaceButDoNotAbort(t *testing.T) {
	sink := &tallySink{failIDs: map[model.ProfileID]bool{5: true}}
	l := &BulkLoader{Sink: sink, Table: "t", Caller: "backfill"}
	err := l.Run(&SliceSource{Records: records(10, 3)})
	if err == nil {
		t.Fatal("expected first error to surface")
	}
	if l.Errors.Load() != 1 {
		t.Fatalf("errors = %d", l.Errors.Load())
	}
	// The other nine profiles still loaded.
	loaded := 0
	for id := model.ProfileID(1); id <= 10; id++ {
		if sink.perID[id] == 3 {
			loaded++
		}
	}
	if loaded != 9 {
		t.Fatalf("loaded = %d, want 9", loaded)
	}
}

func TestBulkLoadHooks(t *testing.T) {
	var order []string
	sink := &tallySink{}
	l := &BulkLoader{
		Sink: sink, Table: "t", Caller: "backfill",
		BeforeRun: func() { order = append(order, "before") },
		AfterRun:  func() { order = append(order, "after") },
	}
	if err := l.Run(&SliceSource{Records: records(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "before" || order[1] != "after" {
		t.Fatalf("hook order = %v", order)
	}
}

func TestBulkLoadNeedsSink(t *testing.T) {
	l := &BulkLoader{}
	if err := l.Run(&SliceSource{}); err == nil {
		t.Fatal("missing sink should fail")
	}
}
