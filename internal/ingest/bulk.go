package ingest

import (
	"errors"
	"sync"
	"sync/atomic"

	"ips/internal/model"
	"ips/internal/wire"
)

// BulkRecord is one row of a historical snapshot: a profile plus a batch
// of observations, the unit a Spark/MapReduce back-fill job emits
// (§III-A's bulk import path).
type BulkRecord struct {
	ProfileID model.ProfileID
	Entries   []wire.AddEntry
}

// BulkSource iterates snapshot records. Next returns (record, true) until
// the source is exhausted.
type BulkSource interface {
	Next() (BulkRecord, bool)
}

// SliceSource adapts an in-memory record slice to BulkSource.
type SliceSource struct {
	Records []BulkRecord
	pos     int
}

// Next implements BulkSource.
func (s *SliceSource) Next() (BulkRecord, bool) {
	if s.pos >= len(s.Records) {
		return BulkRecord{}, false
	}
	r := s.Records[s.pos]
	s.pos++
	return r, true
}

// BulkLoader drives a back-fill of historical profile data into IPS with
// bounded parallelism. §III-F recommends enabling write isolation during
// bulk imports so the batch traffic cannot disturb online serving — the
// loader exposes hooks so the caller can flip the hot switch around the
// run.
type BulkLoader struct {
	Sink   Sink
	Table  string
	Caller string
	// Parallelism is the worker count; default 2.
	Parallelism int
	// BatchEntries splits oversized records into add_profiles batches of
	// at most this many entries; default 128.
	BatchEntries int
	// BeforeRun and AfterRun bracket the import, e.g. to enable isolation
	// and force a merge afterwards.
	BeforeRun func()
	AfterRun  func()

	// Progress counters.
	Records atomic.Int64
	Entries atomic.Int64
	Errors  atomic.Int64
}

// Run drains the source. It returns the first sink error encountered
// (after all workers stop pulling), while counting every failure.
func (l *BulkLoader) Run(src BulkSource) error {
	if l.Sink == nil {
		return errors.New("ingest: BulkLoader needs a Sink")
	}
	parallelism := l.Parallelism
	if parallelism <= 0 {
		parallelism = 2
	}
	batch := l.BatchEntries
	if batch <= 0 {
		batch = 128
	}
	if l.BeforeRun != nil {
		l.BeforeRun()
	}
	defer func() {
		if l.AfterRun != nil {
			l.AfterRun()
		}
	}()

	recs := make(chan BulkRecord, parallelism*2)
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range recs {
				l.Records.Add(1)
				for off := 0; off < len(rec.Entries); off += batch {
					end := off + batch
					if end > len(rec.Entries) {
						end = len(rec.Entries)
					}
					part := rec.Entries[off:end]
					if err := l.Sink.Add(l.Caller, l.Table, rec.ProfileID, part); err != nil {
						l.Errors.Add(1)
						e := err
						firstErr.CompareAndSwap(nil, &e)
						continue
					}
					l.Entries.Add(int64(len(part)))
				}
			}
		}()
	}
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs <- rec
	}
	close(recs)
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}
