// Package ingest implements the data-ingestion substrate of §III-A: the
// partitioned, offset-addressed message log standing in for Kafka, and the
// windowed stream joiner standing in for the Flink jobs that join
// impression, action and feature streams into instance data before it is
// written into IPS.
//
// Reads are no longer pull-only downstream of this pipeline: once a
// joined write lands and becomes query-visible (at accept time, or at
// merge time under write isolation), the server's subscription hub
// pushes fresh answers to any continuous queries standing over the
// profile (DESIGN.md "Continuous queries"). The freshness of those
// pushed updates is therefore bounded by this pipeline's join window
// plus the server's merge window — ingest lag is push lag.
package ingest

import (
	"errors"
	"sync"
)

// ErrNoTopic reports an operation on an unknown topic.
var ErrNoTopic = errors.New("ingest: unknown topic")

// Message is one log entry.
type Message struct {
	// Key selects the partition (e.g. the profile ID rendered as bytes).
	Key uint64
	// Value is the payload, opaque to the log.
	Value []byte
	// Offset is assigned by the log at append time.
	Offset int64
}

// Log is an in-memory partitioned message log: the Kafka stand-in. Topics
// are created on demand; each partition is an append-only sequence with
// dense offsets. Consumers poll by (topic, partition, offset), so
// independent consumer groups replay independently — the property IPS's
// ingestion (and training-data) pipelines rely on.
type Log struct {
	mu     sync.RWMutex
	topics map[string]*topic
	// PartitionsPerTopic is used when auto-creating topics; default 4.
	PartitionsPerTopic int
}

type topic struct {
	mu         sync.RWMutex
	partitions [][]Message
}

// NewLog creates an empty log.
func NewLog() *Log {
	return &Log{topics: make(map[string]*topic), PartitionsPerTopic: 4}
}

// CreateTopic creates a topic with the given partition count; creating an
// existing topic is a no-op.
func (l *Log) CreateTopic(name string, partitions int) {
	if partitions <= 0 {
		partitions = l.PartitionsPerTopic
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.topics[name]; !ok {
		l.topics[name] = &topic{partitions: make([][]Message, partitions)}
	}
}

func (l *Log) topic(name string, create bool) *topic {
	l.mu.RLock()
	t := l.topics[name]
	l.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if t = l.topics[name]; t == nil {
		t = &topic{partitions: make([][]Message, l.PartitionsPerTopic)}
		l.topics[name] = t
	}
	return t
}

// Append adds a message to the partition selected by its key and returns
// the (partition, offset) it landed at. The topic is auto-created.
func (l *Log) Append(topicName string, msg Message) (partition int, offset int64) {
	t := l.topic(topicName, true)
	t.mu.Lock()
	defer t.mu.Unlock()
	p := int(msg.Key % uint64(len(t.partitions)))
	msg.Offset = int64(len(t.partitions[p]))
	t.partitions[p] = append(t.partitions[p], msg)
	return p, msg.Offset
}

// Poll returns up to max messages from (topic, partition) starting at
// offset. An empty result means the consumer is caught up.
func (l *Log) Poll(topicName string, partition int, offset int64, max int) ([]Message, error) {
	t := l.topic(topicName, false)
	if t == nil {
		return nil, ErrNoTopic
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if partition < 0 || partition >= len(t.partitions) {
		return nil, errors.New("ingest: partition out of range")
	}
	part := t.partitions[partition]
	if offset >= int64(len(part)) {
		return nil, nil
	}
	end := offset + int64(max)
	if end > int64(len(part)) {
		end = int64(len(part))
	}
	out := make([]Message, end-offset)
	copy(out, part[offset:end])
	return out, nil
}

// Partitions returns the partition count of a topic (0 when absent).
func (l *Log) Partitions(topicName string) int {
	t := l.topic(topicName, false)
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.partitions)
}

// Depth returns the total message count of a topic.
func (l *Log) Depth(topicName string) int64 {
	t := l.topic(topicName, false)
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, p := range t.partitions {
		n += int64(len(p))
	}
	return n
}
