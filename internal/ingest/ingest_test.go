package ingest

import (
	"sync"
	"testing"
	"testing/quick"

	"ips/internal/model"
	"ips/internal/wire"
)

func TestLogAppendPoll(t *testing.T) {
	l := NewLog()
	l.CreateTopic("t", 2)
	p0, o0 := l.Append("t", Message{Key: 0, Value: []byte("a")})
	p1, o1 := l.Append("t", Message{Key: 1, Value: []byte("b")})
	p2, o2 := l.Append("t", Message{Key: 2, Value: []byte("c")})
	if p0 != 0 || p1 != 1 || p2 != 0 {
		t.Fatalf("partitions = %d %d %d", p0, p1, p2)
	}
	if o0 != 0 || o1 != 0 || o2 != 1 {
		t.Fatalf("offsets = %d %d %d", o0, o1, o2)
	}
	msgs, err := l.Poll("t", 0, 0, 10)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("poll = %d msgs, %v", len(msgs), err)
	}
	if string(msgs[0].Value) != "a" || string(msgs[1].Value) != "c" {
		t.Fatalf("poll values = %q %q", msgs[0].Value, msgs[1].Value)
	}
	// Caught-up consumer gets nothing.
	msgs, err = l.Poll("t", 0, 2, 10)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("caught-up poll = %d, %v", len(msgs), err)
	}
	if l.Depth("t") != 3 {
		t.Fatalf("depth = %d", l.Depth("t"))
	}
}

func TestLogErrors(t *testing.T) {
	l := NewLog()
	if _, err := l.Poll("missing", 0, 0, 1); err != ErrNoTopic {
		t.Fatalf("err = %v", err)
	}
	l.CreateTopic("t", 1)
	if _, err := l.Poll("t", 5, 0, 1); err == nil {
		t.Fatal("out-of-range partition should fail")
	}
	if l.Partitions("nope") != 0 {
		t.Fatal("missing topic should report 0 partitions")
	}
}

func TestLogAutoCreate(t *testing.T) {
	l := NewLog()
	l.PartitionsPerTopic = 3
	l.Append("auto", Message{Key: 7, Value: []byte("x")})
	if l.Partitions("auto") != 3 {
		t.Fatalf("auto partitions = %d", l.Partitions("auto"))
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	l := NewLog()
	l.CreateTopic("t", 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append("t", Message{Key: uint64(i), Value: []byte{byte(w)}})
			}
		}(w)
	}
	wg.Wait()
	if l.Depth("t") != 800 {
		t.Fatalf("depth = %d, want 800", l.Depth("t"))
	}
	// Offsets are dense per partition.
	for p := 0; p < 4; p++ {
		msgs, err := l.Poll("t", p, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range msgs {
			if m.Offset != int64(i) {
				t.Fatalf("partition %d offset %d at index %d", p, m.Offset, i)
			}
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	in := &Event{ProfileID: 7, ItemID: 9, Timestamp: 1234, Action: "like", Slot: 2, Type: 3, Signal: 0.5}
	out, err := DecodeEvent(EncodeEvent(in))
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestEventDecodeNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = DecodeEvent(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinerBasicJoin(t *testing.T) {
	var got []*Instance
	j := NewJoiner(1000, func(i *Instance) { got = append(got, i) })

	j.OnImpression(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100, Slot: 2, Type: 3})
	j.OnAction(&Event{ProfileID: 1, ItemID: 10, Timestamp: 200, Action: "like"})
	j.OnAction(&Event{ProfileID: 1, ItemID: 10, Timestamp: 300, Action: "like"})
	j.OnAction(&Event{ProfileID: 1, ItemID: 10, Timestamp: 350, Action: "share"})
	j.OnFeature(&Event{ProfileID: 1, ItemID: 10, Timestamp: 400, Signal: 0.7})
	if len(got) != 0 {
		t.Fatal("window should still be open")
	}
	// Advance event time past the window: the instance closes.
	j.OnImpression(&Event{ProfileID: 2, ItemID: 20, Timestamp: 2000})
	if len(got) != 1 {
		t.Fatalf("joined = %d, want 1", len(got))
	}
	inst := got[0]
	if inst.ProfileID != 1 || inst.ItemID != 10 || inst.Slot != 2 || inst.Type != 3 {
		t.Fatalf("instance = %+v", inst)
	}
	if inst.Actions["like"] != 2 || inst.Actions["share"] != 1 {
		t.Fatalf("actions = %v", inst.Actions)
	}
	if len(inst.Signals) != 1 || inst.Signals[0] != 0.7 {
		t.Fatalf("signals = %v", inst.Signals)
	}
}

func TestJoinerOutOfOrderAction(t *testing.T) {
	var got []*Instance
	j := NewJoiner(1000, func(i *Instance) { got = append(got, i) })
	// Action arrives before its impression (out-of-order streams).
	j.OnAction(&Event{ProfileID: 1, ItemID: 10, Timestamp: 150, Action: "like"})
	j.OnImpression(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100})
	j.Flush()
	if len(got) != 1 || got[0].Actions["like"] != 1 {
		t.Fatalf("out-of-order join = %+v", got)
	}
}

func TestJoinerDropsOrphanedLateEvents(t *testing.T) {
	j := NewJoiner(1000, nil)
	j.OnAction(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100, Action: "like"})
	// Advance watermark far: the orphan ages out.
	j.OnImpression(&Event{ProfileID: 2, ItemID: 20, Timestamp: 10_000})
	if j.DroppedLate != 1 {
		t.Fatalf("dropped = %d, want 1", j.DroppedLate)
	}
	if j.OpenWindows() != 1 {
		t.Fatalf("open windows = %d", j.OpenWindows())
	}
}

func TestJoinerFlushCountsPending(t *testing.T) {
	j := NewJoiner(1000, nil)
	j.OnAction(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100, Action: "like"})
	j.Flush()
	if j.DroppedLate != 1 || j.Joined != 0 {
		t.Fatalf("flush: dropped=%d joined=%d", j.DroppedLate, j.Joined)
	}
}

// memorySink collects writes for assertions.
type memorySink struct {
	mu      sync.Mutex
	entries map[model.ProfileID][]wire.AddEntry
	fail    bool
}

func (s *memorySink) Add(caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errSinkDown
	}
	if s.entries == nil {
		s.entries = make(map[model.ProfileID][]wire.AddEntry)
	}
	s.entries[id] = append(s.entries[id], entries...)
	return nil
}

var errSinkDown = &sinkErr{}

type sinkErr struct{}

func (*sinkErr) Error() string { return "sink down" }

func TestPipelineEndToEnd(t *testing.T) {
	log := NewLog()
	sink := &memorySink{}
	schema := model.NewSchema("like", "share")
	p := NewPipeline(log, sink, "up", "ingest", schema)

	// Produce the three streams: user 1 saw item 10 and liked it twice;
	// user 2 saw item 20 and did nothing.
	log.Append(TopicImpression, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100, Slot: 3, Type: 4})})
	log.Append(TopicAction, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 120, Action: "like"})})
	log.Append(TopicAction, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 140, Action: "like"})})
	log.Append(TopicAction, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 150, Action: "share"})})
	log.Append(TopicImpression, Message{Key: 2, Value: EncodeEvent(&Event{ProfileID: 2, ItemID: 20, Timestamp: 130, Slot: 3, Type: 4})})

	n := p.RunOnce()
	if n != 1 {
		// User 2's impression-only instance has no mappable action and no
		// "impression" action in the schema, so only user 1 ingests.
		t.Fatalf("ingested = %d, want 1", n)
	}
	got := sink.entries[1]
	if len(got) != 1 {
		t.Fatalf("entries = %+v", got)
	}
	e := got[0]
	if e.FID != 10 || e.Slot != 3 || e.Type != 4 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Counts[0] != 2 || e.Counts[1] != 1 {
		t.Fatalf("counts = %v", e.Counts)
	}
	// The instance topic received the joined records (both users).
	if log.Depth(TopicInstance) != 2 {
		t.Fatalf("instance topic depth = %d, want 2", log.Depth(TopicInstance))
	}
}

func TestPipelineImpressionCounting(t *testing.T) {
	// With an "impression" action in the schema, exposure-only instances
	// are recorded too (the advertising flow-control use case, §I-d).
	log := NewLog()
	sink := &memorySink{}
	schema := model.NewSchema("impression", "click")
	p := NewPipeline(log, sink, "ads", "ingest", schema)
	log.Append(TopicImpression, Message{Key: 5, Value: EncodeEvent(&Event{ProfileID: 5, ItemID: 50, Timestamp: 100})})
	p.RunOnce()
	got := sink.entries[5]
	if len(got) != 1 || got[0].Counts[0] != 1 {
		t.Fatalf("impression not counted: %+v", got)
	}
}

func TestPipelineCustomExtract(t *testing.T) {
	log := NewLog()
	sink := &memorySink{}
	schema := model.NewSchema("n")
	p := NewPipeline(log, sink, "up", "ingest", schema)
	p.Extract = func(inst *Instance) []wire.AddEntry {
		// User-defined extraction logic (§III-A): one entry per signal.
		var out []wire.AddEntry
		for range inst.Signals {
			out = append(out, wire.AddEntry{Timestamp: inst.Timestamp, Slot: 9, Type: 9, FID: inst.ItemID, Counts: []int64{1}})
		}
		return out
	}
	log.Append(TopicImpression, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100})})
	log.Append(TopicFeature, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 110, Signal: 1.5})})
	log.Append(TopicFeature, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 120, Signal: 2.5})})
	p.RunOnce()
	if len(sink.entries[1]) != 2 {
		t.Fatalf("custom extract entries = %+v", sink.entries[1])
	}
}

func TestPipelineSinkErrorsCounted(t *testing.T) {
	log := NewLog()
	sink := &memorySink{fail: true}
	schema := model.NewSchema("like")
	p := NewPipeline(log, sink, "up", "ingest", schema)
	log.Append(TopicImpression, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100})})
	log.Append(TopicAction, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 110, Action: "like"})})
	p.RunOnce()
	if p.Errors != 1 || p.Ingested != 0 {
		t.Fatalf("errors=%d ingested=%d", p.Errors, p.Ingested)
	}
}

func TestPipelineIncrementalOffsets(t *testing.T) {
	// Consuming twice must not double-ingest.
	log := NewLog()
	sink := &memorySink{}
	schema := model.NewSchema("like")
	p := NewPipeline(log, sink, "up", "ingest", schema)
	log.Append(TopicImpression, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100})})
	log.Append(TopicAction, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 110, Action: "like"})})
	p.RunOnce()
	p.RunOnce()
	if len(sink.entries[1]) != 1 {
		t.Fatalf("double ingestion: %+v", sink.entries[1])
	}
}

func TestPipelineOffsetsRestart(t *testing.T) {
	// A restarted pipeline seeded with the previous incarnation's
	// checkpointed offsets must neither re-ingest consumed events nor
	// skip events produced after the checkpoint.
	log := NewLog()
	sink := &memorySink{}
	schema := model.NewSchema("like")
	p := NewPipeline(log, sink, "up", "ingest", schema)
	log.Append(TopicImpression, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 100})})
	log.Append(TopicAction, Message{Key: 1, Value: EncodeEvent(&Event{ProfileID: 1, ItemID: 10, Timestamp: 110, Action: "like"})})
	if n := p.RunOnce(); n != 1 {
		t.Fatalf("first run ingested %d, want 1", n)
	}
	checkpoint := p.Offsets()
	if len(checkpoint) == 0 {
		t.Fatal("empty checkpoint")
	}
	// Mutating the snapshot must not reach the live pipeline (deep copy).
	checkpoint[TopicImpression][0]++
	saved := p.Offsets()

	// Events arriving after the checkpoint was taken.
	log.Append(TopicImpression, Message{Key: 2, Value: EncodeEvent(&Event{ProfileID: 2, ItemID: 20, Timestamp: 200})})
	log.Append(TopicAction, Message{Key: 2, Value: EncodeEvent(&Event{ProfileID: 2, ItemID: 20, Timestamp: 210, Action: "like"})})

	// "Restart": a fresh pipeline seeded from the checkpoint.
	p2 := NewPipeline(log, sink, "up", "ingest", schema)
	p2.SetOffsets(saved)
	if n := p2.RunOnce(); n != 1 {
		t.Fatalf("restarted run ingested %d, want 1", n)
	}
	if len(sink.entries[1]) != 1 {
		t.Fatalf("profile 1 re-ingested after restart: %+v", sink.entries[1])
	}
	if len(sink.entries[2]) != 1 {
		t.Fatalf("profile 2 missing after restart: %+v", sink.entries[2])
	}

	// Without the checkpoint the restart replays from offset 0 — the loss
	// mode SetOffsets exists to prevent.
	p3 := NewPipeline(log, sink, "up", "ingest", schema)
	p3.RunOnce()
	if len(sink.entries[1]) == 1 {
		t.Fatal("expected duplicate ingestion without checkpoint (control)")
	}
}

func TestJoinerLatenessAbsorbsOutOfOrder(t *testing.T) {
	// Without lateness, an event 2 windows behind the watermark is lost;
	// with lateness, it still joins.
	var strictGot, laxGot []*Instance
	strict := NewJoiner(1000, func(i *Instance) { strictGot = append(strictGot, i) })
	lax := NewJoiner(1000, func(i *Instance) { laxGot = append(laxGot, i) })
	lax.Lateness = 10_000

	feed := func(j *Joiner) {
		j.OnImpression(&Event{ProfileID: 1, ItemID: 10, Timestamp: 5000}) // watermark 5000
		j.OnImpression(&Event{ProfileID: 1, ItemID: 20, Timestamp: 3000}) // 2s behind
		j.OnAction(&Event{ProfileID: 1, ItemID: 20, Timestamp: 3100, Action: "like"})
		j.OnImpression(&Event{ProfileID: 2, ItemID: 30, Timestamp: 8000}) // advances watermark
		j.Flush()
	}
	feed(strict)
	feed(lax)

	find := func(got []*Instance, item uint64) *Instance {
		for _, i := range got {
			if i.ItemID == item {
				return i
			}
		}
		return nil
	}
	// Strict joiner closed item 20's window at watermark 8000 > 3000+1000
	// — but the action was applied before that. The genuinely lost case is
	// an action arriving after the close; emulate by checking pending
	// drops instead: feed an orphan action behind the watermark.
	strict2 := NewJoiner(1000, nil)
	strict2.OnImpression(&Event{ProfileID: 9, ItemID: 1, Timestamp: 50_000})
	strict2.OnAction(&Event{ProfileID: 9, ItemID: 2, Timestamp: 10_000, Action: "like"}) // orphan, far behind
	strict2.OnImpression(&Event{ProfileID: 9, ItemID: 3, Timestamp: 60_000})
	if strict2.DroppedLate != 1 {
		t.Fatalf("strict joiner dropped = %d, want 1", strict2.DroppedLate)
	}
	lax2 := NewJoiner(1000, nil)
	lax2.Lateness = 100_000
	lax2.OnImpression(&Event{ProfileID: 9, ItemID: 1, Timestamp: 50_000})
	lax2.OnAction(&Event{ProfileID: 9, ItemID: 2, Timestamp: 10_000, Action: "like"})
	lax2.OnImpression(&Event{ProfileID: 9, ItemID: 3, Timestamp: 60_000})
	if lax2.DroppedLate != 0 {
		t.Fatalf("lax joiner dropped = %d, want 0", lax2.DroppedLate)
	}
	// And the lax path joined item 20's like.
	if inst := find(laxGot, 20); inst == nil || inst.Actions["like"] != 1 {
		t.Fatalf("lax join lost the out-of-order like: %+v", inst)
	}
	_ = strictGot
}
