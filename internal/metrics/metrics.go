// Package metrics provides the low-overhead instrumentation primitives IPS
// uses to report the production-style numbers in the paper's evaluation
// (§IV): p50/p99 latencies, throughput, error rates, cache hit ratios and
// memory usage. Everything is safe for concurrent use and allocation-free
// on the hot path. The same Histogram/Snapshot types back the per-stage
// tracing aggregates and the operator debug endpoint (OPERATIONS.md lists
// the full metrics catalog).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
//
//ips:hotpath
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta to the counter.
//
//ips:hotpath
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.n.Swap(0) }

// Gauge is a settable instantaneous value, e.g. current memory usage.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//ips:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value.
//
//ips:hotpath
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Ratio tracks hits out of a total, e.g. cache hit ratio.
type Ratio struct {
	hit, total Counter
}

// Observe records one observation; hit says whether it counts toward the
// numerator.
//
//ips:hotpath
func (r *Ratio) Observe(hit bool) {
	r.total.Inc()
	if hit {
		r.hit.Inc()
	}
}

// Value returns the hit ratio in [0,1], or 0 when nothing was observed.
func (r *Ratio) Value() float64 {
	t := r.total.Value()
	if t == 0 {
		return 0
	}
	return float64(r.hit.Value()) / float64(t)
}

// Hits returns the numerator.
func (r *Ratio) Hits() int64 { return r.hit.Value() }

// Total returns the denominator.
func (r *Ratio) Total() int64 { return r.total.Value() }

// Reset clears both sides of the ratio.
func (r *Ratio) Reset() {
	r.hit.Reset()
	r.total.Reset()
}

// bucketCount is the number of log-scaled histogram buckets. Bucket i covers
// durations in [lowerBound(i), lowerBound(i+1)). With a growth factor of
// about 1.15 per bucket starting at 1us, 160 buckets reach past 1000s, which
// comfortably covers every latency IPS can produce.
const bucketCount = 160

// growth is the per-bucket multiplicative width.
const growth = 1.15

// bucketBounds[i] is the inclusive lower bound of bucket i in nanoseconds.
var bucketBounds = func() [bucketCount]int64 {
	var b [bucketCount]int64
	lo := 1000.0 // 1us in ns
	for i := 0; i < bucketCount; i++ {
		b[i] = int64(lo)
		lo *= growth
	}
	return b
}()

// bucketFor returns the histogram bucket index for d.
//
//ips:hotpath
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < bucketBounds[0] {
		return 0
	}
	// log(ns/1000)/log(growth), clamped.
	i := int(math.Log(float64(ns)/1000.0) / math.Log(growth))
	if i < 0 {
		i = 0
	}
	if i >= bucketCount {
		i = bucketCount - 1
	}
	for i+1 < bucketCount && bucketBounds[i+1] <= ns {
		i++
	}
	for i > 0 && bucketBounds[i] > ns {
		i--
	}
	return i
}

// Histogram is a fixed-bucket, log-scaled latency histogram. Recording is a
// single atomic add; quantile reads scan the buckets. Relative quantile
// error is bounded by the bucket growth factor (~15%), which is plenty for
// reproducing the p50/p99 shapes the paper reports.
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	max     atomic.Int64
}

// Observe records one duration.
//
//ips:hotpath
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		cur := h.max.Load()
		if d.Nanoseconds() <= cur || h.max.CompareAndSwap(cur, d.Nanoseconds()) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the maximum observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the approximate q-quantile (q in [0,1]) of the recorded
// durations. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			// Midpoint of the bucket is a better point estimate than
			// either bound.
			hi := int64(float64(bucketBounds[i]) * growth)
			return time.Duration((bucketBounds[i] + hi) / 2)
		}
	}
	return time.Duration(h.max.Load())
}

// P50 is shorthand for Quantile(0.50).
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 is shorthand for Quantile(0.95), the hedge-delay trigger quantile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// P999 is shorthand for Quantile(0.999), the deep-tail quantile the
// tail-latency experiment reports.
func (h *Histogram) P999() time.Duration { return h.Quantile(0.999) }

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot is an immutable copy of a histogram's summary statistics.
type Snapshot struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot captures the current summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// String renders the snapshot in a compact human-readable form. An empty
// window says so explicitly instead of rendering all-zero quantiles,
// which read like real (impossibly fast) latencies in operator output.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0 (no samples)"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// IntHist is a power-of-two-bucketed histogram of non-negative integer
// sample values — batch sizes, fan-out widths and other count-shaped
// distributions where Histogram's nanosecond buckets make no sense.
// Bucket i holds values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i).
// Recording is a single atomic add.
type IntHist struct {
	buckets [65]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one sample; negative values clamp to zero.
func (h *IntHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *IntHist) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *IntHist) Sum() int64 { return h.sum.Load() }

// Mean returns the mean sample, or 0 when empty.
func (h *IntHist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest sample observed.
func (h *IntHist) Max() int64 { return h.max.Load() }

// Quantile returns an approximate q-quantile (q in [0,1]): the upper bound
// of the bucket containing the ranked sample, clamped to Max. Relative
// error is bounded by the power-of-two bucket width.
func (h *IntHist) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			hi := int64(1)<<i - 1 // largest value with bit length i
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// P50 is shorthand for Quantile(0.50).
func (h *IntHist) P50() int64 { return h.Quantile(0.50) }

// P95 is shorthand for Quantile(0.95).
func (h *IntHist) P95() int64 { return h.Quantile(0.95) }

// P99 is shorthand for Quantile(0.99).
func (h *IntHist) P99() int64 { return h.Quantile(0.99) }

// Reset clears all samples.
func (h *IntHist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Meter measures event rates over a sliding window, used for QPS-style
// series (Figs 16 and 19).
type Meter struct {
	mu     sync.Mutex
	window time.Duration
	events []meterPoint
	now    func() time.Time
}

type meterPoint struct {
	t time.Time
	n int64
}

// NewMeter creates a meter with the given sliding window.
func NewMeter(window time.Duration) *Meter {
	return &Meter{window: window, now: time.Now}
}

// Mark records n events at the current time.
func (m *Meter) Mark(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.events = append(m.events, meterPoint{now, n})
	m.trimLocked(now)
}

// Rate returns events per second over the window.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.trimLocked(now)
	var total int64
	for _, e := range m.events {
		total += e.n
	}
	return float64(total) / m.window.Seconds()
}

func (m *Meter) trimLocked(now time.Time) {
	cutoff := now.Add(-m.window)
	i := sort.Search(len(m.events), func(i int) bool { return m.events[i].t.After(cutoff) })
	if i > 0 {
		m.events = append(m.events[:0], m.events[i:]...)
	}
}

// Registry is a named collection of metrics, one per IPS instance, so the
// harness and the server's stats endpoint can enumerate them.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	ratios     map[string]*Ratio
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		ratios:     make(map[string]*Ratio),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// Ratio returns the ratio registered under name, creating it if needed.
func (r *Registry) Ratio(name string) *Ratio {
	r.mu.RLock()
	x, ok := r.ratios[name]
	r.mu.RUnlock()
	if ok {
		return x
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if x, ok = r.ratios[name]; ok {
		return x
	}
	x = &Ratio{}
	r.ratios[name] = x
	return x
}

// Names returns the sorted names of all registered metrics, prefixed with
// their kind.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.counters {
		out = append(out, "counter/"+n)
	}
	for n := range r.gauges {
		out = append(out, "gauge/"+n)
	}
	for n := range r.histograms {
		out = append(out, "histogram/"+n)
	}
	for n := range r.ratios {
		out = append(out, "ratio/"+n)
	}
	sort.Strings(out)
	return out
}
