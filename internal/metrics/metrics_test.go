package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := c.Reset(); got != 5 {
		t.Fatalf("reset returned %d, want 5", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
	if got := g.Add(-2); got != 40 {
		t.Fatalf("gauge after add = %d, want 40", got)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if got := r.Value(); got != 0 {
		t.Fatalf("empty ratio = %v, want 0", got)
	}
	for i := 0; i < 90; i++ {
		r.Observe(true)
	}
	for i := 0; i < 10; i++ {
		r.Observe(false)
	}
	if got := r.Value(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.9", got)
	}
	if r.Hits() != 90 || r.Total() != 100 {
		t.Fatalf("hits/total = %d/%d, want 90/100", r.Hits(), r.Total())
	}
	r.Reset()
	if r.Total() != 0 {
		t.Fatalf("total after reset = %d, want 0", r.Total())
	}
}

func TestBucketForMonotonic(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		0, time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 100 * time.Millisecond,
		time.Second, time.Minute, time.Hour,
	} {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor(%v) = %d, below previous %d", d, b, prev)
		}
		if b < 0 || b >= bucketCount {
			t.Fatalf("bucketFor(%v) = %d out of range", d, b)
		}
		prev = b
	}
}

func TestBucketForBoundsProperty(t *testing.T) {
	// Property: every duration lands in a bucket whose bounds contain it.
	f := func(ns int64) bool {
		if ns < 0 {
			ns = -ns
		}
		ns %= int64(2 * time.Hour)
		d := time.Duration(ns)
		i := bucketFor(d)
		if i < 0 || i >= bucketCount {
			return false
		}
		if d.Nanoseconds() >= bucketBounds[0] && bucketBounds[i] > d.Nanoseconds() {
			return false
		}
		if i+1 < bucketCount && bucketBounds[i+1] <= d.Nanoseconds() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms ... 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := h.P50()
	if p50 < 40*time.Millisecond || p50 > 65*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", p50)
	}
	p99 := h.P99()
	if p99 < 80*time.Millisecond || p99 > 120*time.Millisecond {
		t.Fatalf("p99 = %v, want ~99ms", p99)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", got)
	}
	mean := h.Mean()
	if mean < 48*time.Millisecond || mean > 53*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if h.Quantile(-1) == 0 {
		t.Fatal("Quantile(-1) should clamp to q=0, not return 0 duration for nonempty histogram")
	}
	if h.Quantile(2) == 0 {
		t.Fatal("Quantile(2) should clamp to q=1")
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// Property: for a point mass at d, every quantile is within one bucket
	// width (factor ~1.15 plus midpoint rounding) of d.
	f := func(us uint32) bool {
		d := time.Duration(1+us%1_000_000) * time.Microsecond
		var h Histogram
		for i := 0; i < 10; i++ {
			h.Observe(d)
		}
		q := h.Quantile(0.5)
		ratio := float64(q) / float64(d)
		return ratio > 0.80 && ratio < 1.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j%20+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d, want 1", s.Count)
	}
	if s.String() == "" {
		t.Fatal("snapshot string should be nonempty")
	}
	if !strings.Contains(s.String(), "p50=") {
		t.Fatalf("populated snapshot should carry quantiles: %q", s)
	}
}

// An empty histogram must say so rather than render zero quantiles that
// read like real sub-nanosecond latencies in ips-cli stats output.
func TestSnapshotStringEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	got := s.String()
	if !strings.Contains(got, "n=0") || !strings.Contains(got, "no samples") {
		t.Fatalf("empty snapshot = %q, want explicit n=0 marker", got)
	}
	if strings.Contains(got, "p50=") {
		t.Fatalf("empty snapshot = %q, must not render quantiles", got)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(time.Second)
	base := time.Unix(1000, 0)
	now := base
	m.now = func() time.Time { return now }

	m.Mark(100)
	now = base.Add(500 * time.Millisecond)
	m.Mark(100)
	if got := m.Rate(); math.Abs(got-200) > 1e-6 {
		t.Fatalf("rate = %v, want 200", got)
	}
	// Advance past the window: first mark ages out.
	now = base.Add(1100 * time.Millisecond)
	if got := m.Rate(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("rate after aging = %v, want 100", got)
	}
	// Advance far: everything ages out.
	now = base.Add(time.Minute)
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate after full aging = %v, want 0", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("queries")
	c2 := r.Counter("queries")
	if c1 != c2 {
		t.Fatal("Counter should return the same instance for the same name")
	}
	r.Gauge("mem")
	r.Histogram("lat")
	r.Ratio("hit")
	names := r.Names()
	want := []string{"counter/queries", "gauge/mem", "histogram/lat", "ratio/hit"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}
