package chaostest

import (
	"testing"
	"time"

	"ips/internal/client"
	"ips/internal/faultinject"
)

// TestChaosExactReconciliation is the tentpole proof: a crash-free storm
// of stall and drop episodes over a live 2-region cluster with the full
// resilience layer on, a mixed Add/TopK/QueryBatch workload running
// throughout (run it with -race). Afterwards every call is bounded, every
// hedge/retry/breaker counter reconciles exactly, and no write effect was
// lost or duplicated.
func TestChaosExactReconciliation(t *testing.T) {
	const callTimeout = 250 * time.Millisecond
	rep, err := Run(Options{
		Regions:            []string{"east", "west"},
		InstancesPerRegion: 3,
		Profiles:           48,
		Workers:            4,
		Ticks:              30,
		TickEvery:          40 * time.Millisecond,
		Seed:               11,
		Plan: faultinject.Plan{
			// Crash-free on purpose: stalls and drops fire after the
			// server applies the effect, so delivered == applied and the
			// write ledger must balance to the last RPC.
			Seed:       11,
			DropProb:   0.4,
			DropRate:   1.0, // total response loss: breakers must trip
			DropTicks:  3,
			StallProb:  0.5,
			StallDelay: 100 * time.Millisecond,
			StallTicks: 2,
		},
		Client: client.Options{
			CallTimeout: callTimeout,
			HedgeDelay:  25 * time.Millisecond,
			// Cooldown > CallTimeout so a hung probe always records its
			// outcome before a second probe can be admitted — that keeps
			// the probe-flow identity exact under concurrency.
			BreakerThreshold: 4,
			BreakerCooldown:  400 * time.Millisecond,
			RetryBudgetRatio: 0.3,
			RetryBudgetBurst: 20,
			BackoffBase:      2 * time.Millisecond,
			BackoffCap:       20 * time.Millisecond,
			Seed:             11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("calls=%d failures=%d maxLat=%v errorRate=%.4f stalls=%d drops=%d",
		rep.Calls, rep.Failures, rep.MaxLatency, rep.ErrorRate, rep.StallEpisodes, rep.DropEpisodes)
	t.Logf("resilience: %+v openNow=%d halfNow=%d serverWrites=%d",
		rep.Resilience, rep.BreakerOpenNow, rep.BreakerHalfOpenNow, rep.ServerWrites)

	if rep.Calls < 100 {
		t.Fatalf("workload barely ran: %d calls", rep.Calls)
	}
	if rep.StallEpisodes == 0 || rep.DropEpisodes == 0 {
		t.Fatalf("storm too quiet: stalls=%d drops=%d", rep.StallEpisodes, rep.DropEpisodes)
	}
	if rep.Crashes != 0 || rep.RegionOutages != 0 {
		t.Fatalf("crash-free plan crashed: crashes=%d outages=%d", rep.Crashes, rep.RegionOutages)
	}

	// Bounded per-call latency: the ladder is finite (candidates ×
	// (timeout + backoff cap) plus hedge overlap), nothing may hang.
	if bound := 8 * callTimeout; rep.MaxLatency > bound {
		t.Fatalf("call latency unbounded: max %v > %v", rep.MaxLatency, bound)
	}

	// Availability: with stalls and mild drops only, nearly everything
	// succeeds after hedging/retries.
	if rep.ErrorRate > 0.05 {
		t.Fatalf("error rate %.4f > 0.05", rep.ErrorRate)
	}

	// The storm must actually have provoked every layer of the armor:
	// stalls the hedger, blackout episodes the breakers.
	if rep.Resilience.Hedges == 0 {
		t.Fatal("no hedges under repeated stall episodes")
	}
	if rep.Resilience.BreakerTrips == 0 {
		t.Fatal("no breaker trips under total-response-loss episodes")
	}

	// Exact reconciliation.
	if err := rep.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckWriteConservation(); err != nil {
		t.Fatal(err)
	}
	if rep.ServerRejected != 0 {
		t.Fatalf("unexpected quota rejections: %d", rep.ServerRejected)
	}
}
