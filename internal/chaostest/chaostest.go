// Package chaostest is the deterministic proof layer for the client's
// tail-latency armor: it runs a real multi-region cluster, drives
// faultinject episodes into it tick by tick, and keeps a mixed
// Add/TopK/QueryBatch workload running the whole time. After the storm it
// returns a Report whose numbers a test can reconcile EXACTLY — every
// read-path RPC is a primary, a retry, a hedge or a dual-read leg; every write RPC the
// client issued is accounted for server-side (writes are never hedged, so
// chaos must not duplicate or lose effects); every breaker transition
// balances against the counters.
//
// Exact write reconciliation requires a crash-free plan (stalls + drops
// only): both fault types fire after the server has applied the effect, so
// a delivered RPC is an applied RPC. Crashing plans sever connections with
// frames in flight and are covered by the integration chaos smoke instead.
//
// The armor under test is the read-path degradation ladder of §III-G —
// see DESIGN.md ("Degradation ladder: the read path under failure") for
// the retry-budget, hedging and breaker design this package reconciles.
package chaostest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/faultinject"
	"ips/internal/gcache"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// Options configures one chaos run.
type Options struct {
	// Regions and InstancesPerRegion shape the cluster; defaults: two
	// regions ("east", "west") with three instances each.
	Regions            []string
	InstancesPerRegion int
	// Profiles is the keyspace the workload reads and writes; default 64.
	Profiles int
	// Workers is the concurrent workload goroutine count; default 4.
	Workers int
	// Ticks and TickEvery pace the fault schedule; defaults 30 × 50ms.
	Ticks     int
	TickEvery time.Duration
	// Seed drives the workload mix; the fault schedule's own seed lives in
	// Plan.Seed.
	Seed int64
	// Plan is the fault schedule, applied as given.
	Plan faultinject.Plan
	// Client carries the resilience knobs under test. Registry, Service
	// and Caller are filled in by Run.
	Client client.Options
	// ZipfS, when > 0, skews worker key choice with a Zipf(s) draw over
	// the keyspace (rank-ordered: profile 1 hottest) instead of uniform —
	// the hot-key storm shape that exercises single-flight and hot-slot
	// replication under faults.
	ZipfS float64
	// Cache tunes every instance's GCache (e.g. HotSlots /
	// HotPromoteAfter for hot-key runs); zero values use gcache defaults.
	Cache gcache.Options
}

// Report is what a chaos run measured. All client counters are read at a
// quiescent point: workload stopped, faults healed, in-flight calls
// drained.
type Report struct {
	Calls      int64         // workload operations issued
	Failures   int64         // operations that returned an error
	MaxLatency time.Duration // slowest single operation, wall clock

	// Server-side ground truth, summed over every instance.
	ServerWrites   int64 // write entries applied
	ServerRejected int64 // writes refused by quota (should stay 0 here)

	// Cache-layer activity summed over every instance, for hot-key runs:
	// single-flight shared loads, hot-slot reads, and promotions.
	LoadWaits     int64
	HotHits       int64
	HotPromotions int64

	// Fault episodes actually injected.
	Crashes, Restarts           int
	DropEpisodes, StallEpisodes int
	RegionOutages               int

	Resilience client.ResilienceStats
	ErrorRate  float64

	// Breaker states at the quiescent point, for flow conservation.
	BreakerOpenNow, BreakerHalfOpenNow int64
}

// CheckIdentities verifies the exact counter reconciliation the resilience
// layer promises; it returns the first broken identity, nil if all hold.
func (r *Report) CheckIdentities() error {
	rs := r.Resilience
	if rs.Attempts != rs.Primaries+rs.Retries+rs.Hedges+rs.Duals {
		return fmt.Errorf("attempt identity: attempts=%d != primaries=%d + retries=%d + hedges=%d + duals=%d",
			rs.Attempts, rs.Primaries, rs.Retries, rs.Hedges, rs.Duals)
	}
	// Every entry into open is matched by an admitted probe, except a
	// breaker still sitting open; every probe resolved to close or re-open,
	// except one still waiting half-open.
	if rs.BreakerTrips+rs.BreakerReOpens != rs.BreakerProbes+r.BreakerOpenNow {
		return fmt.Errorf("breaker open-entry flow: trips=%d + reopens=%d != probes=%d + openNow=%d",
			rs.BreakerTrips, rs.BreakerReOpens, rs.BreakerProbes, r.BreakerOpenNow)
	}
	if rs.BreakerProbes != rs.BreakerCloses+rs.BreakerReOpens+r.BreakerHalfOpenNow {
		return fmt.Errorf("breaker probe flow: probes=%d != closes=%d + reopens=%d + halfOpenNow=%d",
			rs.BreakerProbes, rs.BreakerCloses, rs.BreakerReOpens, r.BreakerHalfOpenNow)
	}
	if rs.HedgeWins > rs.Hedges {
		return fmt.Errorf("hedge wins=%d exceed hedges=%d", rs.HedgeWins, rs.Hedges)
	}
	if rs.DualWins > rs.Duals {
		return fmt.Errorf("dual wins=%d exceed duals=%d", rs.DualWins, rs.Duals)
	}
	return nil
}

// CheckWriteConservation verifies that chaos neither lost nor duplicated
// write effects: every write RPC the client issued was applied (or
// quota-refused) exactly once server-side. Only meaningful for crash-free
// plans.
func (r *Report) CheckWriteConservation() error {
	if got := r.ServerWrites + r.ServerRejected; got != r.Resilience.WriteRPCs {
		return fmt.Errorf("write conservation: client issued %d write RPCs, servers applied %d (+%d rejected)",
			r.Resilience.WriteRPCs, r.ServerWrites, r.ServerRejected)
	}
	return nil
}

func chaosQuery(id model.ProfileID) *wire.QueryRequest {
	return &wire.QueryRequest{
		Table: "up", ProfileID: id, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 3_600_000,
		SortBy: query.ByAction, Action: "like", K: 10,
	}
}

// withDefaults fills every unset knob with the documented default.
func (o Options) withDefaults() Options {
	if len(o.Regions) == 0 {
		o.Regions = []string{"east", "west"}
	}
	if o.InstancesPerRegion <= 0 {
		o.InstancesPerRegion = 3
	}
	if o.Profiles <= 0 {
		o.Profiles = 64
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Ticks <= 0 {
		o.Ticks = 30
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 50 * time.Millisecond
	}
	return o
}

// Run executes one chaos experiment and returns its report.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()

	cl, err := cluster.New(cluster.Options{
		Regions:            o.Regions,
		InstancesPerRegion: o.InstancesPerRegion,
		Tables:             map[string]*model.Schema{"up": model.NewSchema("like", "share")},
		Cache:              o.Cache,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	c, err := newStormClient(cl, o)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	if err := seedKeyspace(c, cl, o.Profiles); err != nil {
		return nil, err
	}

	inj := faultinject.New(cl, o.Plan)
	s := newStorm()
	s.startWorkers(c, o)
	for t := 0; t < o.Ticks; t++ {
		inj.Tick()
		time.Sleep(o.TickEvery)
	}
	s.halt()
	inj.Quiesce()
	quiesceSettle(o)
	return harvest(s, cl, c, inj), nil
}

// newStormClient builds the workload client over the cluster's registry
// with the run's resilience knobs.
func newStormClient(cl *cluster.Cluster, o Options) (*client.Client, error) {
	copts := o.Client
	copts.Caller = "chaos"
	copts.Service = "ips"
	copts.Registry = cl.Registry
	copts.Region = o.Regions[0]
	if copts.RefreshInterval == 0 {
		copts.RefreshInterval = 25 * time.Millisecond
	}
	return client.New(copts)
}

// seedKeyspace seeds one entry per profile so reads have something to
// find, then persists everything so ANY replica can serve any profile —
// hedges and failovers must be able to answer from the shared regional
// store.
func seedKeyspace(c *client.Client, cl *cluster.Cluster, profiles int) error {
	nowMs := time.Now().UnixMilli()
	for id := 1; id <= profiles; id++ {
		if err := c.Add("up", model.ProfileID(id), wire.AddEntry{
			Timestamp: model.Millis(nowMs - 1000), Slot: 1, Type: 1,
			FID: model.FeatureID(id%50 + 1), Counts: []int64{1, 0},
		}); err != nil {
			return fmt.Errorf("chaostest: seeding profile %d: %w", id, err)
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		if err := n.Instance().FlushAll(); err != nil {
			return fmt.Errorf("chaostest: flush: %w", err)
		}
	}
	return nil
}

// storm owns the shared workload machinery of a chaos run: the worker
// pool, its stop switch, and the call/failure/latency tallies.
type storm struct {
	calls, fails atomic.Int64
	maxLatNanos  atomic.Int64
	stop         chan struct{}
	wg           sync.WaitGroup
}

func newStorm() *storm { return &storm{stop: make(chan struct{})} }

func (s *storm) observe(start time.Time, err error) {
	s.calls.Add(1)
	if err != nil {
		s.fails.Add(1)
	}
	lat := time.Since(start).Nanoseconds()
	for {
		cur := s.maxLatNanos.Load()
		if lat <= cur || s.maxLatNanos.CompareAndSwap(cur, lat) {
			return
		}
	}
}

// startWorkers launches the mixed Add/TopK/QueryBatch workload; it runs
// until halt.
func (s *storm) startWorkers(c *client.Client, o Options) {
	for w := 0; w < o.Workers; w++ {
		s.wg.Add(1)
		go func(w int) {
			defer s.wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919 + 1))
			// pick draws the next key: uniform by default, Zipf-skewed
			// (rank-ordered, profile 1 hottest) when o.ZipfS is set.
			pick := func() model.ProfileID {
				return model.ProfileID(rng.Intn(o.Profiles) + 1)
			}
			if o.ZipfS > 1 {
				zipf := rand.NewZipf(rng, o.ZipfS, 1, uint64(o.Profiles-1))
				pick = func() model.ProfileID {
					return model.ProfileID(zipf.Uint64() + 1)
				}
			}
			for {
				select {
				case <-s.stop:
					return
				default:
				}
				id := pick()
				start := time.Now()
				switch p := rng.Float64(); {
				case p < 0.2: // write
					s.observe(start, c.Add("up", id, wire.AddEntry{
						Timestamp: model.Millis(time.Now().UnixMilli() - 500),
						Slot:      1, Type: 1,
						FID: model.FeatureID(rng.Intn(50) + 1), Counts: []int64{1, 0},
					}))
				case p < 0.7: // single read
					_, err := c.TopK(chaosQuery(id))
					s.observe(start, err)
				default: // batch read
					subs := make([]wire.SubQuery, rng.Intn(6)+3)
					for i := range subs {
						subs[i] = wire.SubQuery{Query: *chaosQuery(pick())}
					}
					_, err := c.QueryBatch(subs)
					s.observe(start, err)
				}
				time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
			}
		}(w)
	}
}

// halt stops the workload and waits for every worker to exit.
func (s *storm) halt() {
	close(s.stop)
	s.wg.Wait()
}

// quiesceSettle sleeps to a quiescent point: the last stalled dispatches
// finish, the last timed-out calls record their breaker outcomes, the
// last hedges settle. Counter identities are only exact once nothing is
// in flight.
func quiesceSettle(o Options) {
	settle := o.Client.CallTimeout
	if settle <= 0 {
		settle = time.Second
	}
	time.Sleep(settle + o.Plan.StallDelay + 200*time.Millisecond)
}

// harvest reads every counter at the quiescent point into a Report.
// Drained and freshly joined nodes are still listed by the cluster, so
// server-side sums cover every instance that ever took a write.
func harvest(s *storm, cl *cluster.Cluster, c *client.Client, inj *faultinject.Injector) *Report {
	rep := &Report{
		Calls:         s.calls.Load(),
		Failures:      s.fails.Load(),
		MaxLatency:    time.Duration(s.maxLatNanos.Load()),
		Crashes:       inj.Crashes,
		Restarts:      inj.Restarts,
		DropEpisodes:  inj.DropEpisodes,
		StallEpisodes: inj.StallEpisodes,
		RegionOutages: inj.RegionOutages,
		Resilience:    c.Resilience(),
		ErrorRate:     c.ErrorRate(),
	}
	for _, n := range cl.Nodes() {
		st := n.Instance().Stats()
		rep.ServerWrites += st.Writes
		rep.ServerRejected += st.Rejected
		if cs, err := n.Instance().CacheStats("up"); err == nil {
			rep.LoadWaits += cs.LoadWaits
			rep.HotHits += cs.HotHits
			rep.HotPromotions += cs.HotPromotions
		}
	}
	for _, st := range rep.Resilience.BreakerStates {
		switch st {
		case client.BreakerOpen:
			rep.BreakerOpenNow++
		case client.BreakerHalfOpen:
			rep.BreakerHalfOpenNow++
		}
	}
	return rep
}
