package chaostest

import (
	"runtime"
	"testing"
	"time"

	"ips/internal/client"
	"ips/internal/faultinject"
)

// TestMigrationStorm is the tentpole proof for elastic resharding: while
// a stall storm rages and the mixed workload runs at full tilt, a node
// joins the master region and a founding member drains out of it — live
// profile migration, dual-read/dual-write windows, cutover, release.
// Afterwards (run it with -race):
//
//   - request conservation: ZERO failed requests, and every read-path
//     attempt reconciles as a primary, retry, hedge, or dual-read leg;
//   - write-effect conservation: every write RPC the client issued —
//     including both legs of every dual write — was applied exactly once
//     server-side, summed over ALL nodes, drained and joined included;
//   - post-cutover freshness: every migrated profile's new owner answers
//     at or above its release watermark;
//   - no goroutine outlives the storm.
func TestMigrationStorm(t *testing.T) {
	before := runtime.NumGoroutine()

	const callTimeout = 400 * time.Millisecond
	rep, err := RunMigration(MigrationOptions{
		JournalDir: t.TempDir(),
		Options: Options{
			Regions:            []string{"east", "west"},
			InstancesPerRegion: 2,
			Profiles:           96,
			Workers:            4,
			Ticks:              24,
			TickEvery:          40 * time.Millisecond,
			Seed:               7,
			Plan: faultinject.Plan{
				// Stall-only on purpose: the bar is zero failed requests,
				// so no drops (a lost response fails the caller even
				// though the server applied the write) and no crashes.
				// Stalls stay well under the call timeout.
				Seed:       7,
				StallProb:  0.5,
				StallDelay: 60 * time.Millisecond,
				StallTicks: 2,
			},
			Client: client.Options{
				CallTimeout:      callTimeout,
				HedgeDelay:       25 * time.Millisecond,
				BreakerThreshold: 4,
				BreakerCooldown:  800 * time.Millisecond,
				RetryBudgetRatio: 0.3,
				RetryBudgetBurst: 20,
				BackoffBase:      2 * time.Millisecond,
				BackoffCap:       20 * time.Millisecond,
				Seed:             7,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("calls=%d failures=%d maxLat=%v stalls=%d", rep.Calls, rep.Failures, rep.MaxLatency, rep.StallEpisodes)
	t.Logf("resilience: %+v", rep.Resilience)
	t.Logf("join: %d moves, %d installed over %d passes; drain: %d moves, %d installed over %d passes; %d freshness probes",
		len(rep.Join.Moves), rep.Join.Installed, rep.Join.Passes,
		len(rep.Drain.Moves), rep.Drain.Installed, rep.Drain.Passes, rep.FreshnessProbes)

	// The storm must have been a storm: real traffic, real stalls, and a
	// real migration window (dual-read legs prove the window was hot).
	if rep.Calls < 200 {
		t.Fatalf("workload barely ran: %d calls", rep.Calls)
	}
	if rep.StallEpisodes == 0 {
		t.Fatal("storm too quiet: no stall episodes")
	}
	if rep.Resilience.Duals == 0 {
		t.Fatal("no dual-read legs: the migration window never saw traffic")
	}
	if len(rep.Join.Moves) == 0 || rep.Join.Installed == 0 {
		t.Fatalf("join moved nothing: %+v", rep.Join)
	}
	if len(rep.Drain.Moves) == 0 {
		t.Fatalf("drain moved nothing: %+v", rep.Drain)
	}

	// Request conservation: nothing failed, so Calls == successes, and
	// the client-observed error rate is exactly zero.
	if rep.Failures != 0 {
		t.Fatalf("%d of %d requests failed during migration", rep.Failures, rep.Calls)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("error rate %v != 0", rep.ErrorRate)
	}
	if err := rep.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckWriteConservation(); err != nil {
		t.Fatal(err)
	}

	// Bounded per-call latency even while ownership moves underfoot.
	if bound := 8 * callTimeout; rep.MaxLatency > bound {
		t.Fatalf("call latency unbounded: max %v > %v", rep.MaxLatency, bound)
	}

	// Every move was freshness-probed (RunMigration fails on the first
	// stale answer, so reaching here with full coverage is the proof).
	if want := len(rep.Join.Moves) + len(rep.Drain.Moves); rep.FreshnessProbes != want {
		t.Fatalf("freshness probes %d != moves %d", rep.FreshnessProbes, want)
	}

	// No goroutine leaks: cluster (including the joined and drained
	// nodes), coordinator passes, retired client conns, workload — all
	// must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
