package chaostest

import (
	"fmt"
	"time"

	"ips/internal/cluster"
	"ips/internal/faultinject"
	"ips/internal/model"
	"ips/internal/rpc"
	"ips/internal/wire"
)

// Migration storm: the proof layer for elastic resharding (DESIGN.md
// "Elastic resharding"). RunMigration is Run with two membership changes
// injected at workload peak — a node joins the master region, then a
// founding member drains — while the fault schedule keeps firing. The
// report reconciles exactly like a plain chaos run (the dual-read leg is
// part of the attempt identity, dual-write RPCs are part of the write
// ledger), and every move recorded by the coordinator is probed for
// post-cutover freshness: the new owner must answer at or above the
// release watermark.

// MigrationOptions configures a migration storm.
type MigrationOptions struct {
	Options

	// JournalDir is required: resharding refuses to run without
	// journals, because installs could not tell fresh frames from stale.
	JournalDir string

	// JoinAtTick and DrainAtTick place the membership changes inside the
	// fault schedule; defaults are one third and two thirds through.
	JoinAtTick, DrainAtTick int
}

// MigrationReport is a chaos Report plus the coordinator's account of
// both membership changes.
type MigrationReport struct {
	Report
	Join  *cluster.MigrationReport
	Drain *cluster.MigrationReport

	// FreshnessProbes counts the moves whose new owner was probed
	// directly and answered at or above the release watermark.
	FreshnessProbes int
}

// RunMigration executes one migration storm and returns its report. The
// join and drain both happen in the master region (Regions[0], where the
// workload client lives), so every dual-read/dual-write window is on the
// hot path.
func RunMigration(o MigrationOptions) (*MigrationReport, error) {
	o.Options = o.Options.withDefaults()
	if o.JournalDir == "" {
		return nil, fmt.Errorf("chaostest: migration storm needs JournalDir — resharding is journal-gated")
	}
	if o.JoinAtTick <= 0 {
		o.JoinAtTick = o.Ticks / 3
	}
	if o.DrainAtTick <= 0 {
		o.DrainAtTick = 2 * o.Ticks / 3
	}
	if o.JoinAtTick >= o.DrainAtTick || o.DrainAtTick >= o.Ticks {
		return nil, fmt.Errorf("chaostest: migration schedule out of order: join@%d, drain@%d, %d ticks",
			o.JoinAtTick, o.DrainAtTick, o.Ticks)
	}

	cl, err := cluster.New(cluster.Options{
		Regions:            o.Regions,
		InstancesPerRegion: o.InstancesPerRegion,
		Tables:             map[string]*model.Schema{"up": model.NewSchema("like", "share")},
		Cache:              o.Cache,
		JournalDir:         o.JournalDir,
		// Discovery must outpace the workload client's refresh (25ms
		// default) so both sides of a membership change see the window
		// open before the coordinator starts shipping content.
		HeartbeatInterval: 20 * time.Millisecond,
		SettleInterval:    120 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	c, err := newStormClient(cl, o.Options)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	if err := seedKeyspace(c, cl, o.Profiles); err != nil {
		return nil, err
	}

	inj := faultinject.New(cl, o.Plan)
	s := newStorm()
	s.startWorkers(c, o.Options)
	region := o.Regions[0]
	rep := &MigrationReport{}
	for t := 0; t < o.Ticks; t++ {
		inj.Tick()
		switch t {
		case o.JoinAtTick:
			if _, rep.Join, err = cl.Join(region); err != nil {
				s.halt()
				return nil, fmt.Errorf("chaostest: join mid-storm: %w", err)
			}
		case o.DrainAtTick:
			// Drain a founding member, never the fresh joiner — that is
			// the storm shape: ownership moves twice in one run.
			if rep.Drain, err = cl.Drain(fmt.Sprintf("ips-%s-0", region)); err != nil {
				s.halt()
				return nil, fmt.Errorf("chaostest: drain mid-storm: %w", err)
			}
		}
		time.Sleep(o.TickEvery)
	}
	s.halt()
	inj.Quiesce()
	quiesceSettle(o.Options)
	rep.Report = *harvest(s, cl, c, inj)

	for _, mr := range []*cluster.MigrationReport{rep.Join, rep.Drain} {
		n, err := probeFreshness(mr)
		rep.FreshnessProbes += n
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// probeFreshness asks each move's new owner directly for the moved
// profile and checks the response watermark caught up to the release
// watermark — the guarantee that no acknowledged pre-cutover write was
// left behind on the old owner.
func probeFreshness(mr *cluster.MigrationReport) (int, error) {
	conns := make(map[string]*rpc.Client)
	defer func() {
		for _, conn := range conns {
			conn.Close()
		}
	}()
	probed := 0
	for _, mv := range mr.Moves {
		conn := conns[mv.To]
		if conn == nil {
			conn = rpc.NewClient(mv.To)
			conns[mv.To] = conn
		}
		q := chaosQuery(mv.ID)
		q.Caller = "chaos"
		raw, err := conn.Call(wire.MethodTopK, wire.EncodeQuery(q))
		if err != nil {
			return probed, fmt.Errorf("chaostest: freshness probe %d@%s: %w", mv.ID, mv.To, err)
		}
		resp, err := wire.DecodeQueryResponse(raw)
		if err != nil {
			return probed, fmt.Errorf("chaostest: freshness probe %d@%s: %w", mv.ID, mv.To, err)
		}
		if resp.WalLSN < mv.Watermark {
			return probed, fmt.Errorf("chaostest: profile %d on %s answers at watermark %d < release watermark %d",
				mv.ID, mv.To, resp.WalLSN, mv.Watermark)
		}
		probed++
	}
	return probed, nil
}
