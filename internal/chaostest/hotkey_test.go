package chaostest

import (
	"runtime"
	"testing"
	"time"

	"ips/internal/client"
	"ips/internal/faultinject"
	"ips/internal/gcache"
)

// TestHotKeyStorm aims a Zipf-headed read storm at a live 2-region
// cluster with hot-slot replication on while stall episodes periodically
// freeze a replica (run it with -race). The batch architecture v2 layers
// are all load-bearing here: misses for the storm's head coalesce via
// single-flight, its hottest profiles promote into read slots, and batch
// reads travel the shared-structure v2 encoding. Afterwards the exact
// reconciliation of the chaos harness must still hold — request
// accounting balances to the last RPC, no write is lost or duplicated —
// and the storm must not leak a single goroutine.
func TestHotKeyStorm(t *testing.T) {
	before := runtime.NumGoroutine()

	const callTimeout = 250 * time.Millisecond
	rep, err := Run(Options{
		Regions:            []string{"east", "west"},
		InstancesPerRegion: 3,
		Profiles:           64,
		Workers:            6,
		Ticks:              25,
		TickEvery:          40 * time.Millisecond,
		Seed:               23,
		// Zipf-headed key choice: most traffic lands on a handful of
		// profiles, the contention shape hot slots exist for.
		ZipfS: 1.4,
		Cache: gcache.Options{
			HotSlots:        4,
			HotPromoteAfter: 8,
		},
		Plan: faultinject.Plan{
			// Stall-only: a stalled replica fires after the server applied
			// the effect, so delivered == applied and write conservation
			// stays exact (crashes would void that ledger).
			Seed:       23,
			StallProb:  0.5,
			StallDelay: 100 * time.Millisecond,
			StallTicks: 2,
		},
		Client: client.Options{
			CallTimeout:      callTimeout,
			HedgeDelay:       25 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  400 * time.Millisecond,
			RetryBudgetRatio: 0.3,
			RetryBudgetBurst: 20,
			BackoffBase:      2 * time.Millisecond,
			BackoffCap:       20 * time.Millisecond,
			Seed:             23,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("calls=%d failures=%d maxLat=%v errorRate=%.4f stalls=%d",
		rep.Calls, rep.Failures, rep.MaxLatency, rep.ErrorRate, rep.StallEpisodes)
	t.Logf("cache: loadWaits=%d hotHits=%d hotPromotions=%d", rep.LoadWaits, rep.HotHits, rep.HotPromotions)

	if rep.Calls < 100 {
		t.Fatalf("workload barely ran: %d calls", rep.Calls)
	}
	if rep.StallEpisodes == 0 {
		t.Fatal("storm too quiet: no stall episodes")
	}
	if rep.Crashes != 0 || rep.RegionOutages != 0 {
		t.Fatalf("stall-only plan crashed: crashes=%d outages=%d", rep.Crashes, rep.RegionOutages)
	}

	// The hot-key machinery must actually have engaged: the Zipf head
	// promotes and serves replica reads. (Single-flight shares are
	// workload-dependent — misses must collide in-flight — so LoadWaits
	// is reported above but not gated.)
	if rep.HotPromotions == 0 {
		t.Fatal("no profile promoted into hot slots under a Zipf-headed storm")
	}
	if rep.HotHits == 0 {
		t.Fatal("no read served from a hot slot")
	}

	// Reconciliation: the same exact identities the uniform chaos test
	// pins must survive the hot-key path (replica reads, coalesced loads,
	// v2 batch responses change none of the accounting).
	if err := rep.CheckIdentities(); err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckWriteConservation(); err != nil {
		t.Fatal(err)
	}
	if rep.ServerRejected != 0 {
		t.Fatalf("unexpected quota rejections: %d", rep.ServerRejected)
	}
	if bound := 8 * callTimeout; rep.MaxLatency > bound {
		t.Fatalf("call latency unbounded: max %v > %v", rep.MaxLatency, bound)
	}

	// No goroutine leaks: everything Run started (cluster, flush/swap
	// threads, heartbeats, RPC conns, workload) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
