package server

import (
	"context"
	"sync"
	"time"

	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/trace"
	"ips/internal/wire"
)

// batchWorkers bounds how many per-profile groups of one batch execute
// concurrently inside the instance. Batches are already one of many
// concurrent RPCs; a small pool exploits multi-core without letting a
// single fat batch monopolise the instance.
const batchWorkers = 8

// QueryBatch executes a batch of sub-queries (§II-B2 reads, any mix of
// topK / filter / decay semantics) and returns one BatchResult per
// sub-query, in input order. Failures are per-slot: a bad sub-query never
// fails its siblings.
//
// Sub-queries are grouped by (table, profile) so each profile is fetched
// from GCache exactly once and its lock taken once for the whole group
// (query.RunMany); groups run on a bounded worker pool. Quota is charged
// per sub-query, exactly as N single calls would be.
func (in *Instance) QueryBatch(caller string, subs []wire.SubQuery) []wire.BatchResult {
	return in.QueryBatchCtx(context.Background(), caller, subs)
}

// QueryBatchCtx is QueryBatch with a request context carrying the
// request's trace, if sampled. Groups run concurrently, so their spans
// are siblings whose durations overlap: each nests inside the dispatch
// span, but their sum can exceed it.
func (in *Instance) QueryBatchCtx(ctx context.Context, caller string, subs []wire.SubQuery) []wire.BatchResult {
	results := make([]wire.BatchResult, len(subs))
	if in.closed.Load() {
		for i := range results {
			results[i].Err = ErrClosed.Error()
		}
		return results
	}
	// Group by (table, profile), preserving first-seen order.
	type groupKey struct {
		table string
		id    model.ProfileID
	}
	groups := make(map[groupKey][]int, len(subs))
	order := make([]groupKey, 0, len(subs))
	for i := range subs {
		k := groupKey{subs[i].Query.Table, subs[i].Query.ProfileID}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	workers := batchWorkers
	if len(order) < workers {
		workers = len(order)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, k := range order {
		idxs := groups[k]
		wg.Add(1)
		sem <- struct{}{}
		go func(table string, id model.ProfileID, idxs []int) {
			defer wg.Done()
			defer func() { <-sem }()
			in.queryGroup(ctx, caller, table, id, subs, idxs, results)
		}(k.table, k.id, idxs)
	}
	wg.Wait()
	return results
}

// queryGroup runs one (table, profile) group of a batch. Each goroutine
// writes only its own disjoint result slots.
func (in *Instance) queryGroup(ctx context.Context, caller, table string, id model.ProfileID, subs []wire.SubQuery, idxs []int, results []wire.BatchResult) {
	start := time.Now()
	failAll := func(err error) {
		for _, i := range idxs {
			results[i].Err = err.Error()
		}
	}
	ts, err := in.table(table)
	if err != nil {
		failAll(err)
		return
	}
	// Hot profiles come back as immutable read replicas, so concurrent
	// groups for the same Zipf-head profile each compute on their own
	// slot instead of serializing on one profile lock.
	p, hit, hot, err := ts.cache.GetForRead(ctx, id)
	if err != nil {
		failAll(err)
		return
	}
	// Resolve requests, charging quota per sub-query like the single path.
	reqs := make([]query.Request, 0, len(idxs))
	live := make([]int, 0, len(idxs))
	for _, i := range idxs {
		if err := in.limiter.Allow(caller); err != nil {
			in.Rejected.Inc()
			results[i].Err = err.Error()
			continue
		}
		q := subs[i].Query.ToQuery()
		if name := subs[i].Query.UDAFName; name != "" {
			fn, err := in.udafs.Lookup(name)
			if err != nil {
				results[i].Err = err.Error()
				continue
			}
			q.UDAF = fn
		}
		reqs = append(reqs, q)
		live = append(live, i)
	}
	var res []query.Result
	var errs []error
	if p != nil {
		csp := trace.StartLeaf(ctx, trace.StageCacheCompute)
		if hot {
			res, errs = query.RunManySealed(p, ts.schema, reqs, in.clock())
		} else {
			res, errs = query.RunMany(p, ts.schema, reqs, in.clock())
		}
		csp.End()
	}
	elapsed := time.Since(start)
	for j, i := range live {
		if p != nil && errs[j] != nil {
			results[i].Err = errs[j].Error()
			continue
		}
		resp := &wire.QueryResponse{CacheHit: hit, ServerNanos: elapsed.Nanoseconds()}
		if p != nil {
			resp.Features = res[j].Features
			resp.SlicesScanned = res[j].SlicesScanned
		}
		results[i].Resp = resp
	}
	// One latency observation per group (the unit of server work), one
	// query count per executed sub-query, matching what N singles report.
	in.QueryLat.Observe(elapsed)
	in.Queries.Add(int64(len(live)))
}
