package server

import (
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/query"
	"ips/internal/wire"
)

func TestDeleteProfileRemovesEverywhere(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	addOne(t, in, 9, now-100, 5, []int64{3, 0})
	if err := in.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := in.DeleteProfile("up", 9); err != nil {
		t.Fatal(err)
	}
	// No data from cache...
	resp := topK(t, in, 9, 60_000, 10)
	if len(resp.Features) != 0 {
		t.Fatalf("deleted profile still serves %+v", resp.Features)
	}
	// ...and a cold read from storage finds nothing either.
	if _, err := in.EvictProfile("up", 9); err != nil {
		t.Fatal(err)
	}
	resp = topK(t, in, 9, 60_000, 10)
	if len(resp.Features) != 0 {
		t.Fatal("deleted profile reloaded from storage")
	}
	// Deleting again (absent) is fine; unknown table errors.
	if err := in.DeleteProfile("up", 9); err != nil {
		t.Fatal(err)
	}
	if err := in.DeleteProfile("nope", 9); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestDeleteProfileClearsWriteBuffer(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(time.Hour)
	})
	now := clock.Now()
	addOne(t, in, 3, now-100, 5, []int64{1, 0})
	if err := in.DeleteProfile("up", 3); err != nil {
		t.Fatal(err)
	}
	in.MergeAll()
	resp := topK(t, in, 3, 60_000, 10)
	if len(resp.Features) != 0 {
		t.Fatal("buffered write survived deletion")
	}
}

func TestUDAFQueryInProcess(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	addOne(t, in, 1, now-100, 10, []int64{10, 0}) // weighted 10
	addOne(t, in, 1, now-100, 20, []int64{2, 3})  // weighted 2+3*5=17
	if err := in.UDAFs().Register("engagement", query.WeightedSum(1, 5)); err != nil {
		t.Fatal(err)
	}
	resp, err := in.Query(&wire.QueryRequest{
		Caller: "t", Table: "up", ProfileID: 1, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 60_000,
		SortBy: query.ByUDAF, UDAFName: "engagement",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Features[0].FID != 20 || resp.Features[0].Score != 17 {
		t.Fatalf("udaf result = %+v", resp.Features)
	}
	// Unknown UDAF errors.
	if _, err := in.Query(&wire.QueryRequest{
		Caller: "t", Table: "up", ProfileID: 1, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 60_000,
		SortBy: query.ByUDAF, UDAFName: "ghost",
	}); err == nil {
		t.Fatal("unknown UDAF should error")
	}
}

func TestManagementOverRPC(t *testing.T) {
	in, clock := newInstance(t, nil)
	svc := NewService(in)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cl := newTestRPCClient(t, addr)
	now := clock.Now()

	// Register a weighted UDAF remotely, then query by it.
	_, err = cl.Call(wire.MethodRegisterUDAF, wire.EncodeRegisterUDAF(&wire.RegisterUDAFRequest{
		Name: "w", Weights: []float64{1, 5},
	}))
	if err != nil {
		t.Fatal(err)
	}
	addOne(t, in, 1, now-100, 10, []int64{2, 3})
	raw, err := cl.Call(wire.MethodTopK, wire.EncodeQuery(&wire.QueryRequest{
		Caller: "t", Table: "up", ProfileID: 1, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 60_000,
		SortBy: query.ByUDAF, UDAFName: "w",
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeQueryResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Features) != 1 || resp.Features[0].Score != 17 {
		t.Fatalf("remote udaf = %+v", resp.Features)
	}

	// Set a quota remotely; the caller gets throttled.
	_, err = cl.Call(wire.MethodSetQuota, wire.EncodeSetQuota(&wire.SetQuotaRequest{Caller: "greedy", QPS: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Limiter().Quota("greedy"); got != 1 {
		t.Fatalf("quota = %v", got)
	}

	// Toggle isolation remotely.
	_, err = cl.Call(wire.MethodSetIsolation, wire.EncodeSetIsolation(&wire.SetIsolationRequest{Enabled: false}))
	if err != nil {
		t.Fatal(err)
	}
	if in.Config().Get().WriteIsolation {
		t.Fatal("isolation not toggled")
	}

	// List tables and UDAFs remotely.
	raw, err = cl.Call(wire.MethodListTables, nil)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := wire.DecodeStringList(raw)
	if err != nil || len(tables.Names) != 1 || tables.Names[0] != "up" {
		t.Fatalf("tables = %+v, %v", tables, err)
	}
	raw, err = cl.Call(wire.MethodListUDAFs, nil)
	if err != nil {
		t.Fatal(err)
	}
	udafs, err := wire.DecodeStringList(raw)
	if err != nil || len(udafs.Names) < 4 {
		t.Fatalf("udafs = %+v, %v", udafs, err)
	}

	// Delete a profile remotely.
	_, err = cl.Call(wire.MethodDeleteProfile, wire.EncodeDeleteProfile(&wire.DeleteProfileRequest{
		Table: "up", ProfileID: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := topK(t, in, 1, 60_000, 10); len(got.Features) != 0 {
		t.Fatal("remote delete ineffective")
	}
}
