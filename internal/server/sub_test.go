package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/model"
	"ips/internal/rpc"
	"ips/internal/wire"
)

func startWatchService(t *testing.T, in *Instance) *rpc.Client {
	t.Helper()
	svc := NewService(in)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return newTestRPCClient(t, addr)
}

func openWatch(t *testing.T, c *rpc.Client, pipeline string) *rpc.ClientStream {
	t.Helper()
	st, err := c.Stream(context.Background(), wire.MethodSubWatch,
		wire.EncodeSubscribe(&wire.SubscribeRequest{Caller: "test", Pipeline: pipeline}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func recvSubUpdate(t *testing.T, st *rpc.ClientStream) *wire.SubUpdate {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := st.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	u, err := wire.DecodeSubUpdate(raw)
	if err != nil {
		t.Fatalf("DecodeSubUpdate: %v", err)
	}
	return u
}

// TestWatchStreamEndToEnd subscribes over RPC, then drives writes and a
// delete through the instance and observes the pushed updates.
func TestWatchStreamEndToEnd(t *testing.T) {
	in, clock := newInstance(t, nil)
	c := startWatchService(t, in)
	st := openWatch(t, c, "source(up, 1, 2) | slot(1) | topk(5)")

	// Baselines: one Resync-flagged update per watched profile, in any
	// order, both currently empty.
	seen := map[model.ProfileID]bool{}
	for i := 0; i < 2; i++ {
		u := recvSubUpdate(t, st)
		if !u.Resync || u.Seq != 1 || len(u.Result.Features) != 0 {
			t.Fatalf("baseline = %+v", u)
		}
		seen[u.ProfileID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("baselines covered %v", seen)
	}

	// A write to a watched profile pushes an incremental update.
	addOne(t, in, 1, clock.Now()-10, 7, []int64{3, 0})
	u := recvSubUpdate(t, st)
	if u.ProfileID != 1 || u.Resync || u.Seq != 2 {
		t.Fatalf("incremental = %+v", u)
	}
	if len(u.Result.Features) != 1 || u.Result.Features[0].FID != 7 {
		t.Fatalf("incremental features = %+v", u.Result.Features)
	}

	// Deleting the profile pushes the now-empty answer.
	if err := in.DeleteProfile("up", 1); err != nil {
		t.Fatal(err)
	}
	u = recvSubUpdate(t, st)
	if u.ProfileID != 1 || u.Seq != 3 || len(u.Result.Features) != 0 {
		t.Fatalf("post-delete = %+v", u)
	}

	// Writes to unwatched profiles push nothing.
	addOne(t, in, 99, clock.Now()-10, 7, []int64{1, 0})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if raw, err := st.Recv(ctx); err == nil {
		t.Fatalf("unexpected push %x for unwatched profile", raw)
	}
}

// TestWatchMergeTimeVisibility pins the freshness contract under write
// isolation (§III-F): isolated adds push at merge time — when they
// become query-visible — not at accept time.
func TestWatchMergeTimeVisibility(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(time.Hour) // only explicit merges
	})
	c := startWatchService(t, in)
	st := openWatch(t, c, "source(up, 1) | slot(1)")
	if u := recvSubUpdate(t, st); !u.Resync {
		t.Fatalf("baseline = %+v", u)
	}

	addOne(t, in, 1, clock.Now()-10, 7, []int64{3, 0})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := st.Recv(ctx); err == nil {
		t.Fatal("isolated add pushed before merge")
	}

	in.MergeAll()
	u := recvSubUpdate(t, st)
	if u.Resync || len(u.Result.Features) != 1 || u.Result.Features[0].FID != 7 {
		t.Fatalf("post-merge update = %+v", u)
	}
}

// TestWatchBadPipeline: parse errors surface as the stream's close error.
func TestWatchBadPipeline(t *testing.T) {
	in, _ := newInstance(t, nil)
	c := startWatchService(t, in)
	st := openWatch(t, c, "topk(5)")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := st.Recv(ctx)
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Recv err = %v, want RemoteError", err)
	}
}

// TestWatchInstanceCloseTearsDown: closing the instance ends live
// streams with an error close, not silence.
func TestWatchInstanceCloseTearsDown(t *testing.T) {
	in, _ := newInstance(t, nil)
	c := startWatchService(t, in)
	st := openWatch(t, c, "source(up, 1) | slot(1)")
	recvSubUpdate(t, st) // baseline
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		if _, err := st.Recv(ctx); err != nil {
			var re *rpc.RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("stream ended with %v, want RemoteError", err)
			}
			return
		}
	}
}

// TestWatchClientCloseUnsubscribes: closing the stream removes the
// subscriber from the hub.
func TestWatchClientCloseUnsubscribes(t *testing.T) {
	in, _ := newInstance(t, nil)
	c := startWatchService(t, in)
	st := openWatch(t, c, "source(up, 1) | slot(1)")
	recvSubUpdate(t, st)
	if got := in.Hub().Active.Value(); got != 1 {
		t.Fatalf("active = %d", got)
	}
	st.Close()
	deadline := time.Now().Add(5 * time.Second)
	for in.Hub().Active.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := in.Hub().Active.Value(); got != 0 {
		t.Fatalf("active = %d after client close", got)
	}
}
