package server

import (
	"testing"
	"time"

	"ips/internal/config"
)

// TestTimeDimensionHotReloadChangesHeadWidth verifies the §V-b behaviour:
// changing the time-dimension config live changes the granularity new
// writes land at, without restarting the instance.
func TestTimeDimensionHotReloadChangesHeadWidth(t *testing.T) {
	in, clock := newInstance(t, nil) // default head width: 1s
	now := clock.Now()

	// Two writes 10s apart under the default 1s head width: two slices.
	addOne(t, in, 1, now-20_000, 1, []int64{1, 0})
	addOne(t, in, 1, now-10_000, 2, []int64{1, 0})
	resp := topK(t, in, 1, 60_000, 10)
	if resp.SlicesScanned != 2 {
		t.Fatalf("default width: scanned %d slices, want 2", resp.SlicesScanned)
	}

	// Hot-reload a coarser time dimension: 1-minute head slices.
	td, err := config.ParseTimeDimension(map[string][2]string{
		"1m": {"0s", "1h"},
		"1h": {"1h", "365d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Config().Mutate(func(c *config.Config) { c.TimeDimension = td }); err != nil {
		t.Fatal(err)
	}
	// The config loop applies asynchronously; wait for pickup, probing
	// with a fresh profile each attempt: two writes 10s apart must land
	// in one 1-minute slice once the new width is live.
	deadline := time.After(2 * time.Second)
	for probe := uint64(7000); ; probe++ {
		select {
		case <-deadline:
			t.Fatal("head width never hot-reloaded")
		default:
		}
		// Offsets chosen inside one minute bucket of the simulated epoch
		// (now is minute-aligned), 5s apart: one slice at 1m width, two
		// at 1s width.
		addOne(t, in, probe, now-50_000, 1, []int64{1, 0})
		addOne(t, in, probe, now-45_000, 2, []int64{1, 0})
		r := topK(t, in, probe, 60_000, 10)
		if r.SlicesScanned == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
