package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/quota"
	"ips/internal/wire"
)

// simClock is a controllable millisecond clock.
type simClock struct {
	mu  sync.Mutex
	now model.Millis
}

func (c *simClock) Now() model.Millis {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d model.Millis) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newInstance(t testing.TB, mutate func(*config.Config)) (*Instance, *simClock) {
	t.Helper()
	cfg := config.Default()
	cfg.WriteIsolation = false // most tests want immediate visibility
	if mutate != nil {
		mutate(&cfg)
	}
	store, err := config.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := &simClock{now: 1_000_000_000} // arbitrary epoch
	in, err := New(Options{
		Name:   "ips-test-0",
		Region: "east",
		Store:  kv.NewMemory(),
		Config: store,
		Clock:  clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	if err := in.CreateTable("up", model.NewSchema("like", "share")); err != nil {
		t.Fatal(err)
	}
	return in, clock
}

func addOne(t testing.TB, in *Instance, id model.ProfileID, ts model.Millis, fid model.FeatureID, counts []int64) {
	t.Helper()
	err := in.Add("test", "up", id, []wire.AddEntry{{Timestamp: ts, Slot: 1, Type: 1, FID: fid, Counts: counts}})
	if err != nil {
		t.Fatal(err)
	}
}

func topK(t testing.TB, in *Instance, id model.ProfileID, span model.Millis, k int) *wire.QueryResponse {
	t.Helper()
	resp, err := in.Query(&wire.QueryRequest{
		Caller: "test", Table: "up", ProfileID: id,
		Slot: 1, Type: 1,
		RangeKind: query.Current, Span: span,
		SortBy: query.ByAction, Action: "like", K: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWriteThenRead(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	addOne(t, in, 7, now-1000, 100, []int64{5, 0})
	addOne(t, in, 7, now-2000, 200, []int64{9, 0})

	resp := topK(t, in, 7, 60_000, 10)
	if len(resp.Features) != 2 {
		t.Fatalf("features = %d, want 2", len(resp.Features))
	}
	if resp.Features[0].FID != 200 {
		t.Fatalf("top = %d, want 200", resp.Features[0].FID)
	}
}

func TestQueryUnknownProfileEmpty(t *testing.T) {
	in, _ := newInstance(t, nil)
	resp := topK(t, in, 404, 60_000, 10)
	if len(resp.Features) != 0 {
		t.Fatalf("unknown profile returned %d features", len(resp.Features))
	}
	if resp.CacheHit {
		t.Fatal("unknown profile cannot be a hit")
	}
}

func TestUnknownTable(t *testing.T) {
	in, _ := newInstance(t, nil)
	err := in.Add("test", "nope", 1, []wire.AddEntry{{Timestamp: 1, Slot: 1, Type: 1, FID: 1, Counts: []int64{1, 0}}})
	if !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v, want ErrNoTable", err)
	}
	_, err = in.Query(&wire.QueryRequest{Table: "nope", RangeKind: query.Current, Span: 1})
	if !errors.Is(err, ErrNoTable) {
		t.Fatalf("query err = %v", err)
	}
}

func TestCreateTableTwice(t *testing.T) {
	in, _ := newInstance(t, nil)
	if err := in.CreateTable("up", model.NewSchema("x")); err == nil {
		t.Fatal("duplicate table should fail")
	}
	if err := in.CreateTable("bad", &model.Schema{}); err == nil {
		t.Fatal("invalid schema should fail")
	}
}

func TestWriteIsolationDelayedVisibility(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(time.Hour) // manual merges only
	})
	now := clock.Now()
	addOne(t, in, 7, now-1000, 100, []int64{5, 0})

	// Not yet visible: the write sits in the write table (§III-F).
	resp := topK(t, in, 7, 60_000, 10)
	if len(resp.Features) != 0 {
		t.Fatalf("write visible before merge: %+v", resp.Features)
	}
	in.MergeAll()
	resp = topK(t, in, 7, 60_000, 10)
	if len(resp.Features) != 1 || resp.Features[0].Counts[0] != 5 {
		t.Fatalf("after merge: %+v", resp.Features)
	}
}

func TestWriteIsolationMergePreservesCounts(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(time.Hour)
	})
	now := clock.Now()
	// Interleave merges with writes; totals must be exact.
	for i := 0; i < 50; i++ {
		addOne(t, in, 3, now-model.Millis(i*10), 42, []int64{1, 0})
		if i%7 == 0 {
			in.MergeAll()
		}
	}
	in.MergeAll()
	resp := topK(t, in, 3, 60_000, 1)
	if len(resp.Features) != 1 || resp.Features[0].Counts[0] != 50 {
		t.Fatalf("merged total = %+v, want 50", resp.Features)
	}
}

func TestWriteIsolationMemoryCapForcesMerge(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(time.Hour)
		c.WriteTableMaxBytes = 2048 // tiny cap
	})
	now := clock.Now()
	for i := 0; i < 200; i++ {
		addOne(t, in, model.ProfileID(i), now-1000, model.FeatureID(i), []int64{1, 0})
	}
	// The cap must have forced merges: data visible without MergeAll.
	resp := topK(t, in, 0, 60_000, 1)
	if len(resp.Features) == 0 {
		t.Fatal("cap-forced merge did not happen")
	}
}

func TestHotSwitchIsolationOff(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(time.Hour)
	})
	now := clock.Now()
	// Turn isolation off live (§III-F hot switch).
	if err := in.Config().Mutate(func(c *config.Config) { c.WriteIsolation = false }); err != nil {
		t.Fatal(err)
	}
	addOne(t, in, 8, now-1000, 5, []int64{1, 0})
	resp := topK(t, in, 8, 60_000, 1)
	if len(resp.Features) != 1 {
		t.Fatal("write should be immediately visible with isolation off")
	}
}

func TestQuotaRejection(t *testing.T) {
	in, clock := newInstance(t, nil)
	in.Limiter().SetQuota("greedy", 5)
	now := clock.Now()
	var rejected int
	for i := 0; i < 20; i++ {
		err := in.Add("greedy", "up", 1, []wire.AddEntry{{Timestamp: now, Slot: 1, Type: 1, FID: 1, Counts: []int64{1, 0}}})
		if errors.Is(err, quota.ErrOverQuota) {
			rejected++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Fatal("quota never rejected")
	}
	if in.Rejected.Value() != int64(rejected) {
		t.Fatalf("rejected counter = %d, want %d", in.Rejected.Value(), rejected)
	}
	// Another caller is unaffected.
	addOne(t, in, 2, now, 1, []int64{1, 0})
}

func TestBatchedAdd(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	entries := make([]wire.AddEntry, 10)
	for i := range entries {
		entries[i] = wire.AddEntry{Timestamp: now - model.Millis(i*100), Slot: 1, Type: 1, FID: 9, Counts: []int64{1, 0}}
	}
	if err := in.Add("test", "up", 4, entries); err != nil {
		t.Fatal(err)
	}
	resp := topK(t, in, 4, 60_000, 1)
	if resp.Features[0].Counts[0] != 10 {
		t.Fatalf("batched total = %d, want 10", resp.Features[0].Counts[0])
	}
	if in.Writes.Value() != 10 {
		t.Fatalf("writes counter = %d, want 10", in.Writes.Value())
	}
}

func TestCompactionTriggeredByWrites(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.PartialCompactThreshold = 8
	})
	// Spread writes over many head-width windows to grow the slice list.
	base := clock.Now()
	for i := 0; i < 100; i++ {
		addOne(t, in, 5, base-model.Millis(i)*60_000, 7, []int64{1, 0})
	}
	// Force synchronous maintenance and verify the slice list shrank.
	st, err := in.CompactNow("up", 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.SlicesAfter >= st.SlicesBefore && st.SlicesBefore > 8 {
		t.Fatalf("compaction ineffective: %d -> %d", st.SlicesBefore, st.SlicesAfter)
	}
	// All data still present.
	resp := topK(t, in, 5, 365*24*3_600_000, 1)
	if resp.Features[0].Counts[0] != 100 {
		t.Fatalf("count after compaction = %d, want 100", resp.Features[0].Counts[0])
	}
}

func TestStats(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	addOne(t, in, 1, now, 1, []int64{1, 0})
	topK(t, in, 1, 60_000, 1)
	st := in.Stats()
	if st.Name != "ips-test-0" || st.Region != "east" {
		t.Fatalf("identity = %s/%s", st.Name, st.Region)
	}
	if st.Profiles != 1 || st.Queries != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MemUsage <= 0 {
		t.Fatal("mem usage should be positive")
	}
	if _, err := in.CacheStats("up"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.CacheStats("nope"); err == nil {
		t.Fatal("CacheStats of unknown table should fail")
	}
}

func TestPersistenceAcrossInstances(t *testing.T) {
	store := kv.NewMemory()
	cfg := config.Default()
	cfg.WriteIsolation = false
	cstore, _ := config.NewStore(cfg)
	clock := &simClock{now: 1_000_000_000}

	in1, err := New(Options{Name: "a", Store: store, Config: cstore, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := in1.CreateTable("up", model.NewSchema("like", "share")); err != nil {
		t.Fatal(err)
	}
	addOne(t, in1, 77, clock.Now()-500, 9, []int64{3, 0})
	if err := in1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh instance over the same store serves the data (cache miss →
	// storage fill).
	in2, err := New(Options{Name: "b", Store: store, Config: cstore, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	if err := in2.CreateTable("up", model.NewSchema("like", "share")); err != nil {
		t.Fatal(err)
	}
	resp := topK(t, in2, 77, 60_000, 1)
	if len(resp.Features) != 1 || resp.Features[0].Counts[0] != 3 {
		t.Fatalf("restart lost data: %+v", resp.Features)
	}
	if resp.CacheHit {
		t.Fatal("first read after restart must be a miss")
	}
	// Second read is a hit.
	resp = topK(t, in2, 77, 60_000, 1)
	if !resp.CacheHit {
		t.Fatal("second read should hit")
	}
}

func TestClosedInstanceErrors(t *testing.T) {
	in, _ := newInstance(t, nil)
	in.Close()
	if err := in.Add("c", "up", 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after close = %v", err)
	}
	if _, err := in.Query(&wire.QueryRequest{Table: "up"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after close = %v", err)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(20 * time.Millisecond)
	})
	now := clock.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := model.ProfileID(i % 20)
				if i%3 == 0 {
					err := in.Add("load", "up", id, []wire.AddEntry{{
						Timestamp: now - model.Millis(i), Slot: 1, Type: 1,
						FID: model.FeatureID(i % 10), Counts: []int64{1, 0},
					}})
					if err != nil {
						errs <- err
						return
					}
				} else {
					_, err := in.Query(&wire.QueryRequest{
						Caller: "load", Table: "up", ProfileID: id,
						Slot: 1, Type: 1, RangeKind: query.Current, Span: 60_000,
						SortBy: query.ByAction, Action: "like", K: 5,
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestServiceOverRPC(t *testing.T) {
	in, clock := newInstance(t, nil)
	svc := NewService(in)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cl := newTestRPCClient(t, addr)
	now := clock.Now()

	// Ping.
	if resp, err := cl.Call(wire.MethodPing, nil); err != nil || string(resp) != "pong" {
		t.Fatalf("ping = %q, %v", resp, err)
	}
	// Add over RPC.
	addReq := &wire.AddRequest{
		Caller: "rpc", Table: "up", ProfileID: 55,
		Entries: []wire.AddEntry{{Timestamp: now - 100, Slot: 1, Type: 1, FID: 3, Counts: []int64{4, 0}}},
	}
	if _, err := cl.Call(wire.MethodAdd, wire.EncodeAdd(addReq)); err != nil {
		t.Fatal(err)
	}
	// Query over RPC.
	qReq := &wire.QueryRequest{
		Caller: "rpc", Table: "up", ProfileID: 55,
		Slot: 1, Type: 1, RangeKind: query.Current, Span: 60_000,
		SortBy: query.ByAction, Action: "like", K: 1,
	}
	raw, err := cl.Call(wire.MethodTopK, wire.EncodeQuery(qReq))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeQueryResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Features) != 1 || resp.Features[0].Counts[0] != 4 {
		t.Fatalf("rpc query = %+v", resp.Features)
	}
	if resp.ServerNanos <= 0 {
		t.Fatal("server nanos missing")
	}
	// Stats over RPC.
	raw, err = cl.Call(wire.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := wire.DecodeStats(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "ips-test-0" {
		t.Fatalf("stats name = %q", st.Name)
	}
	// Bad table over RPC surfaces as a remote error.
	qReq.Table = "nope"
	if _, err := cl.Call(wire.MethodTopK, wire.EncodeQuery(qReq)); err == nil {
		t.Fatal("unknown table over RPC should error")
	}
}

func BenchmarkServerAdd(b *testing.B) {
	in, clock := newInstance(b, nil)
	now := clock.Now()
	entry := []wire.AddEntry{{Timestamp: now, Slot: 1, Type: 1, FID: 1, Counts: []int64{1, 0}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entry[0].Timestamp = now - model.Millis(i%10_000)
		entry[0].FID = model.FeatureID(i % 100)
		if err := in.Add("bench", "up", model.ProfileID(i%1000), entry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerQuery(b *testing.B) {
	in, clock := newInstance(b, nil)
	now := clock.Now()
	for i := 0; i < 10_000; i++ {
		_ = in.Add("bench", "up", model.ProfileID(i%100), []wire.AddEntry{{
			Timestamp: now - model.Millis(i*10), Slot: 1, Type: 1,
			FID: model.FeatureID(i % 200), Counts: []int64{1, 0},
		}})
	}
	req := &wire.QueryRequest{
		Caller: "bench", Table: "up", ProfileID: 1,
		Slot: 1, Type: 1, RangeKind: query.Current, Span: 3_600_000,
		SortBy: query.ByAction, Action: "like", K: 20,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ProfileID = model.ProfileID(i % 100)
		if _, err := in.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}
