package server

import (
	"testing"
	"time"

	"ips/internal/rpc"
)

// newTestRPCClient dials addr with a generous timeout and closes on
// cleanup.
func newTestRPCClient(t testing.TB, addr string) *rpc.Client {
	t.Helper()
	c := rpc.NewClient(addr)
	c.CallTimeout = 5 * time.Second
	t.Cleanup(func() { c.Close() })
	return c
}
