package server

import (
	"context"

	"ips/internal/model"
	"ips/internal/wire"
)

// Elastic-resharding handlers (DESIGN.md "Elastic resharding"): the
// server half of the `ips.migrate` protocol. MigrateSnapshot runs on
// the current owner — it drains the requested profiles through the
// flush path and ships their blobs plus journal watermarks.
// MigrateInstall runs on the new owner — it lands shipped frames,
// guarded by the per-profile migration watermark.

//ips:hotpath
func maxLSN(a, b uint64) uint64 {
	if b > a {
		return b
	}
	return a
}

// ResidentProfiles returns the resident profile IDs of one table — the
// candidate set the rebalance planner filters by ring ownership.
func (in *Instance) ResidentProfiles(table string) ([]model.ProfileID, error) {
	ts, err := in.table(table)
	if err != nil {
		return nil, err
	}
	return ts.cache.ResidentIDs(), nil
}

// MigrateSnapshot exports the requested profiles (all resident profiles
// when req.IDs is empty). Pending write-isolation state is merged first
// so the shipped blobs are complete; each profile's dirty state drains
// through the flush path, advancing the journal truncation watermark,
// before its blob is captured. With req.Release set, each profile is
// additionally dropped from the cache (hot slots invalidated) — the old
// owner's cutover step.
//
// Absent profiles are skipped, not errors: the coordinator's passes may
// race with eviction, and a profile that is neither resident nor in
// storage has nothing to hand off.
func (in *Instance) MigrateSnapshot(ctx context.Context, req *wire.MigrateRequest) (*wire.MigrateFrames, error) {
	if in.closed.Load() {
		return nil, ErrClosed
	}
	ts, err := in.table(req.Table)
	if err != nil {
		return nil, err
	}
	// Fold buffered write-isolation adds into the main profiles so the
	// exported blobs contain them (and their MergedLSN watermarks).
	ts.writeMu.Lock()
	in.mergeWriteTableLocked(ts)
	ts.writeMu.Unlock()

	ids := req.IDs
	if len(ids) == 0 {
		ids = ts.cache.ResidentIDs()
	}
	out := &wire.MigrateFrames{}
	for _, id := range ids {
		fr, ok, err := ts.cache.Export(ctx, id, req.Release)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out.Frames = append(out.Frames, fr)
		in.MigratedOut.Inc()
		in.MigrateBytesOut.Add(int64(len(fr.Blob)))
		if req.Release {
			in.MigrateReleased.Inc()
		}
	}
	if in.journal != nil {
		out.Watermark = in.journal.Watermark()
	}
	return out, nil
}

// MigrateInstall lands shipped frames. In content mode each fresher
// frame replaces the resident profile's slices wholesale (idempotent —
// see gcache.Install); in mark mode (req.Mark, the release pass) only
// the migration watermark is raised, so writes the new owner took after
// cutover are never discarded.
func (in *Instance) MigrateInstall(ctx context.Context, req *wire.MigrateInstallRequest) (*wire.MigrateInstalled, error) {
	if in.closed.Load() {
		return nil, ErrClosed
	}
	ts, err := in.table(req.Table)
	if err != nil {
		return nil, err
	}
	out := &wire.MigrateInstalled{}
	for i := range req.Frames {
		fr := req.Frames[i]
		installed, marked, err := ts.cache.Install(ctx, fr, req.Mark)
		if err != nil {
			return nil, err
		}
		if installed {
			out.Installed++
			in.MigratedIn.Inc()
			in.MigrateBytesIn.Add(int64(len(fr.Blob)))
			// An installed frame replaces the resident profile's slices:
			// standing queries that resubscribed here during the migration
			// window must observe the shipped state, not a stale answer.
			in.hub.Notify(req.Table, fr.ProfileID)
		}
		if marked {
			out.Marked++
			in.MigrateMarked.Inc()
		}
	}
	return out, nil
}
