package server

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/trace"
	"ips/internal/wire"
)

// newTracedInstance builds an instance that samples every request and
// retains everything in the slow log.
func newTracedInstance(t testing.TB) (*Instance, *simClock) {
	t.Helper()
	cfg := config.Default()
	cfg.WriteIsolation = false
	store, err := config.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := &simClock{now: 1_000_000_000}
	in, err := New(Options{
		Name:   "ips-debug-0",
		Region: "east",
		Store:  kv.NewMemory(),
		Config: store,
		Clock:  clock.Now,
		Tracer: trace.NewTracer(trace.Config{SampleEvery: 1, SlowThreshold: time.Nanosecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	if err := in.CreateTable("up", model.NewSchema("like", "share")); err != nil {
		t.Fatal(err)
	}
	return in, clock
}

// runTraced pushes one write and one query through the instance under a
// sampled trace, finishing it so the tracer aggregates and retains it.
func runTraced(t testing.TB, in *Instance, clock *simClock) {
	t.Helper()
	now := clock.Now()
	ctx, tr := in.Tracer().StartRequest(context.Background())
	if tr == nil {
		t.Fatal("SampleEvery=1 tracer did not sample")
	}
	ctx, root := trace.StartSpan(ctx, trace.StageServerDispatch)
	err := in.AddCtx(ctx, "test", "up", 7, []wire.AddEntry{
		{Timestamp: now - 1000, Slot: 1, Type: 1, FID: 100, Counts: []int64{5, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.QueryCtx(ctx, &wire.QueryRequest{
		Caller: "test", Table: "up", ProfileID: 7,
		Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 60_000,
		SortBy: query.ByAction, Action: "like", K: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	in.Tracer().Done(tr)
}

func TestDebugSnapshotSections(t *testing.T) {
	in, clock := newTracedInstance(t)
	runTraced(t, in, clock)
	d := NewDebugServer(in)

	get := func(cmd string) string {
		var b strings.Builder
		if err := d.WriteSnapshot(&b, cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		return b.String()
	}

	if out := get("stats"); !strings.Contains(out, "instance ips-debug-0") ||
		!strings.Contains(out, "queries=1") {
		t.Fatalf("stats output missing fields:\n%s", out)
	}
	out := get("stages")
	if !strings.Contains(out, "traces sampled: 1") {
		t.Fatalf("stages output missing trace count:\n%s", out)
	}
	// The traced query must have attributed at least the dispatch and
	// cache stages; untouched stages render the explicit empty marker.
	for _, stage := range []string{"server.dispatch", "cache.get", "cache.compute"} {
		if !strings.Contains(out, stage) {
			t.Fatalf("stages output missing %s:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, "n=0 (no samples)") {
		t.Fatalf("stages output should mark untouched stages n=0:\n%s", out)
	}
	if out := get("slow"); !strings.Contains(out, "slow queries: 1 seen") ||
		!strings.Contains(out, "server.dispatch") {
		t.Fatalf("slow output missing retained trace:\n%s", out)
	}
	if out := get("trace"); !strings.Contains(out, "trace 0x") ||
		!strings.Contains(out, "cache.get") {
		t.Fatalf("trace output missing span tree:\n%s", out)
	}
	if out := get("all"); !strings.Contains(out, "instance ips-debug-0") ||
		!strings.Contains(out, "traces sampled") || !strings.Contains(out, "slow queries") {
		t.Fatalf("all output missing sections:\n%s", out)
	}
	var b strings.Builder
	if err := d.WriteSnapshot(&b, "bogus"); err == nil {
		t.Fatal("unknown command should error")
	}
	if !strings.Contains(b.String(), "unknown command") {
		t.Fatalf("unknown command output = %q", b.String())
	}
}

// TestDebugSnapshotUntraced covers the surface on an instance with no
// tracer: every command must still answer.
func TestDebugSnapshotUntraced(t *testing.T) {
	in, _ := newInstance(t, nil)
	d := NewDebugServer(in)
	out := map[string]string{}
	for _, cmd := range DebugCommands {
		var b strings.Builder
		if err := d.WriteSnapshot(&b, cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		out[cmd] = b.String()
	}
	if !strings.Contains(out["stages"], "tracing disabled") {
		t.Fatalf("stages without tracer = %q", out["stages"])
	}
	if !strings.Contains(out["slow"], "slow-query log empty") {
		t.Fatalf("slow without tracer = %q", out["slow"])
	}
	if !strings.Contains(out["trace"], "no sampled trace") {
		t.Fatalf("trace without tracer = %q", out["trace"])
	}
}

// TestDebugTCP exercises the one-command-per-connection protocol over a
// real socket, the way ips-cli debug and netcat reach it.
func TestDebugTCP(t *testing.T) {
	in, clock := newTracedInstance(t)
	runTraced(t, in, clock)
	d := NewDebugServer(in)
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ask := func(cmd string) string {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		sc := bufio.NewScanner(conn)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		return b.String()
	}

	if out := ask("stages"); !strings.Contains(out, "traces sampled: 1") {
		t.Fatalf("stages over TCP:\n%s", out)
	}
	if out := ask("help"); !strings.Contains(out, "ips debug commands") {
		t.Fatalf("help over TCP:\n%s", out)
	}
	// An empty line (bare newline from `nc`) answers with help too.
	if out := ask(""); !strings.Contains(out, "ips debug commands") {
		t.Fatalf("empty command over TCP:\n%s", out)
	}
}
