package server

import (
	"context"

	"ips/internal/config"
	"ips/internal/query"
	"ips/internal/rpc"
	"ips/internal/wire"
)

// Service exposes an Instance over the RPC framework, registering one
// handler per API method (§II-B).
type Service struct {
	in  *Instance
	srv *rpc.Server
}

// NewService wraps in and registers its handlers on a fresh RPC server.
// The instance's tracer (if any) becomes the RPC server's, so untraced
// requests can still be sampled server-side.
func NewService(in *Instance) *Service {
	s := &Service{in: in, srv: rpc.NewServer()}
	s.srv.Tracer = in.Tracer()
	s.register()
	return s
}

// RPC returns the underlying RPC server, e.g. for fault injection hooks.
func (s *Service) RPC() *rpc.Server { return s.srv }

// Listen binds the service to addr (":0" for ephemeral) and returns the
// bound address.
func (s *Service) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Close stops the RPC server (the Instance is closed separately).
func (s *Service) Close() error { return s.srv.Close() }

func (s *Service) register() {
	s.srv.Handle(wire.MethodPing, func(p []byte) ([]byte, error) {
		return []byte("pong"), nil
	})
	addHandler := func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeAdd(payload)
		if err != nil {
			return nil, err
		}
		if err := s.in.AddCtx(ctx, req.Caller, req.Table, req.ProfileID, req.Entries); err != nil {
			return nil, err
		}
		return nil, nil
	}
	s.srv.HandleCtx(wire.MethodAdd, addHandler)
	s.srv.HandleCtx(wire.MethodAddBatch, addHandler)

	queryHandler := func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeQuery(payload)
		if err != nil {
			return nil, err
		}
		resp, err := s.in.QueryCtx(ctx, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeQueryResponse(resp), nil
	}
	s.srv.HandleCtx(wire.MethodTopK, queryHandler)
	s.srv.HandleCtx(wire.MethodFilter, queryHandler)
	s.srv.HandleCtx(wire.MethodDecay, queryHandler)

	s.srv.HandleCtx(wire.MethodQueryBatch, func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeQueryBatch(payload)
		if err != nil {
			return nil, err
		}
		resp := &wire.BatchQueryResponse{Results: s.in.QueryBatchCtx(ctx, req.Caller, req.Subs)}
		return wire.EncodeQueryBatchResponse(resp), nil
	})

	// Batch v2: identical request payload, shared-structure response —
	// each distinct response body is encoded once and duplicate slots
	// carry references (DESIGN.md "Batch v2").
	s.srv.HandleCtx(wire.MethodQueryBatchV2, func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeQueryBatch(payload)
		if err != nil {
			return nil, err
		}
		resp := &wire.BatchQueryResponse{Results: s.in.QueryBatchCtx(ctx, req.Caller, req.Subs)}
		return wire.EncodeQueryBatchResponseV2(resp), nil
	})

	s.srv.Handle(wire.MethodStats, func(p []byte) ([]byte, error) {
		return wire.EncodeStats(s.in.Stats()), nil
	})

	// Management operations.
	s.srv.Handle(wire.MethodDeleteProfile, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeDeleteProfile(p)
		if err != nil {
			return nil, err
		}
		return nil, s.in.DeleteProfile(req.Table, req.ProfileID)
	})
	s.srv.Handle(wire.MethodSetQuota, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeSetQuota(p)
		if err != nil {
			return nil, err
		}
		s.in.Limiter().SetQuota(req.Caller, req.QPS)
		return nil, nil
	})
	s.srv.Handle(wire.MethodSetIsolation, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeSetIsolation(p)
		if err != nil {
			return nil, err
		}
		return nil, s.in.Config().Mutate(func(c *config.Config) {
			c.WriteIsolation = req.Enabled
		})
	})
	s.srv.Handle(wire.MethodRegisterUDAF, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeRegisterUDAF(p)
		if err != nil {
			return nil, err
		}
		return nil, s.in.UDAFs().Register(req.Name, query.WeightedSum(req.Weights...))
	})
	// Elastic resharding: snapshot on the old owner, install on the new.
	s.srv.HandleCtx(wire.MethodMigrateSnapshot, func(ctx context.Context, p []byte) ([]byte, error) {
		req, err := wire.DecodeMigrateRequest(p)
		if err != nil {
			return nil, err
		}
		resp, err := s.in.MigrateSnapshot(ctx, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeMigrateFrames(resp), nil
	})
	s.srv.HandleCtx(wire.MethodMigrateInstall, func(ctx context.Context, p []byte) ([]byte, error) {
		req, err := wire.DecodeMigrateInstall(p)
		if err != nil {
			return nil, err
		}
		resp, err := s.in.MigrateInstall(ctx, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeMigrateInstalled(resp), nil
	})

	s.srv.Handle(wire.MethodListTables, func(p []byte) ([]byte, error) {
		return wire.EncodeStringList(&wire.StringList{Names: s.in.Tables()}), nil
	})
	s.srv.Handle(wire.MethodListUDAFs, func(p []byte) ([]byte, error) {
		return wire.EncodeStringList(&wire.StringList{Names: s.in.UDAFs().Names()}), nil
	})
}
