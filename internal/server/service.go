package server

import (
	"context"
	"errors"
	"sync"

	"ips/internal/config"
	"ips/internal/query"
	"ips/internal/rpc"
	"ips/internal/sub"
	"ips/internal/wire"
)

// Service exposes an Instance over the RPC framework, registering one
// handler per API method (§II-B).
type Service struct {
	in  *Instance
	srv *rpc.Server
	// interner dedupes the request string vocabulary (callers, tables,
	// actions, UDAF names) so steady-state decodes return resident
	// strings without copying.
	interner wire.Interner
}

// queryScratch bundles every reusable piece of the fast read path: the
// decoded request, the engine's working storage, and the response the
// engine fills. One pooled struct serves one request at a time; the
// response's feature vectors alias the scratch arenas, which is safe
// because the handler encodes them into the connection's response
// buffer before the struct goes back to the pool.
type queryScratch struct {
	req  wire.QueryRequest
	sc   query.Scratch
	resp wire.QueryResponse
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// fastQuery is the steady-state read handler: decode into pooled
// request storage, execute through pooled engine scratch, append the
// encoded response into the connection's reusable buffer. The pooled
// struct recycles as the handler returns — safe because the encode has
// already copied every feature out of the scratch arenas into dst.
//
//ips:hotpath-trust the pool round-trip and deferred put are the pooled-scratch contract; every stage inside is individually hot-checked
func (s *Service) fastQuery(ctx context.Context, payload, dst []byte) ([]byte, error) {
	qs := queryScratchPool.Get().(*queryScratch)
	defer queryScratchPool.Put(qs)
	if err := wire.DecodeQueryInto(payload, &qs.req, &s.interner); err != nil {
		return dst, err
	}
	if err := s.in.QueryInto(ctx, &qs.req, &qs.resp, &qs.sc); err != nil {
		return dst, err
	}
	return wire.AppendQueryResponse(dst, &qs.resp), nil
}

// NewService wraps in and registers its handlers on a fresh RPC server.
// The instance's tracer (if any) becomes the RPC server's, so untraced
// requests can still be sampled server-side.
func NewService(in *Instance) *Service {
	s := &Service{in: in, srv: rpc.NewServer()}
	s.srv.Tracer = in.Tracer()
	s.register()
	return s
}

// RPC returns the underlying RPC server, e.g. for fault injection hooks.
func (s *Service) RPC() *rpc.Server { return s.srv }

// Listen binds the service to addr (":0" for ephemeral) and returns the
// bound address.
func (s *Service) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Close stops the RPC server (the Instance is closed separately).
func (s *Service) Close() error { return s.srv.Close() }

// errSubTorn reports a server-side subscription teardown (sink write
// failure or instance shutdown) to the client's stream as a close error,
// distinguishing it from a clean client-initiated close.
var errSubTorn = errors.New("server: subscription torn down")

// streamSink adapts one RPC server stream to the hub's Sink. Push runs
// on the subscriber's pump goroutine only, so the encode buffer is
// reused without locking; ServerStream.Send copies the payload into the
// connection's write buffer before returning.
type streamSink struct {
	st  *rpc.ServerStream
	buf []byte
}

func (ss *streamSink) Push(u *wire.SubUpdate) error {
	ss.buf = wire.AppendSubUpdate(ss.buf[:0], u)
	return ss.st.Send(ss.buf)
}

// watch is the ips.sub.watch stream handler: one standing query per
// stream, updates pushed as kindStreamData frames carrying SubUpdate.
func (s *Service) watch(ctx context.Context, payload []byte, st *rpc.ServerStream) error {
	req, err := wire.DecodeSubscribe(payload)
	if err != nil {
		return err
	}
	q, err := sub.Parse(req.Pipeline)
	if err != nil {
		return err
	}
	sb, err := s.in.Hub().Subscribe(q, &streamSink{st: st})
	if err != nil {
		return err
	}
	defer s.in.Hub().Unsubscribe(sb)
	select {
	case <-ctx.Done():
		// Client closed the stream (or the connection died): a clean end.
		return ctx.Err()
	case <-sb.Done():
		return errSubTorn
	}
}

func (s *Service) register() {
	s.srv.HandleFast(wire.MethodPing, func(_ context.Context, _, dst []byte) ([]byte, error) {
		return append(dst, "pong"...), nil
	})
	addHandler := func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeAdd(payload)
		if err != nil {
			return nil, err
		}
		if err := s.in.AddCtx(ctx, req.Caller, req.Table, req.ProfileID, req.Entries); err != nil {
			return nil, err
		}
		return nil, nil
	}
	s.srv.HandleCtx(wire.MethodAdd, addHandler)
	s.srv.HandleCtx(wire.MethodAddBatch, addHandler)

	// The query handler is the paper's steady-state read path, so it is
	// registered as a fast handler: decode, compute, and encode all run
	// through pooled scratch storage with the response appended into the
	// connection's reusable buffer — a warmed cache-hit read is
	// allocation-free end to end (see TestServedQueryAllocFree).
	s.srv.HandleFast(wire.MethodTopK, s.fastQuery)
	s.srv.HandleFast(wire.MethodFilter, s.fastQuery)
	s.srv.HandleFast(wire.MethodDecay, s.fastQuery)

	s.srv.HandleCtx(wire.MethodQueryBatch, func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeQueryBatch(payload)
		if err != nil {
			return nil, err
		}
		resp := &wire.BatchQueryResponse{Results: s.in.QueryBatchCtx(ctx, req.Caller, req.Subs)}
		return wire.EncodeQueryBatchResponse(resp), nil
	})

	// Batch v2: identical request payload, shared-structure response —
	// each distinct response body is encoded once and duplicate slots
	// carry references (DESIGN.md "Batch v2").
	s.srv.HandleCtx(wire.MethodQueryBatchV2, func(ctx context.Context, payload []byte) ([]byte, error) {
		req, err := wire.DecodeQueryBatch(payload)
		if err != nil {
			return nil, err
		}
		resp := &wire.BatchQueryResponse{Results: s.in.QueryBatchCtx(ctx, req.Caller, req.Subs)}
		return wire.EncodeQueryBatchResponseV2(resp), nil
	})

	s.srv.Handle(wire.MethodStats, func(p []byte) ([]byte, error) {
		return wire.EncodeStats(s.in.Stats()), nil
	})

	// Management operations.
	s.srv.Handle(wire.MethodDeleteProfile, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeDeleteProfile(p)
		if err != nil {
			return nil, err
		}
		return nil, s.in.DeleteProfile(req.Table, req.ProfileID)
	})
	s.srv.Handle(wire.MethodSetQuota, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeSetQuota(p)
		if err != nil {
			return nil, err
		}
		s.in.Limiter().SetQuota(req.Caller, req.QPS)
		return nil, nil
	})
	s.srv.Handle(wire.MethodSetIsolation, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeSetIsolation(p)
		if err != nil {
			return nil, err
		}
		return nil, s.in.Config().Mutate(func(c *config.Config) {
			c.WriteIsolation = req.Enabled
		})
	})
	s.srv.Handle(wire.MethodRegisterUDAF, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeRegisterUDAF(p)
		if err != nil {
			return nil, err
		}
		return nil, s.in.UDAFs().Register(req.Name, query.WeightedSum(req.Weights...))
	})
	// Elastic resharding: snapshot on the old owner, install on the new.
	s.srv.HandleCtx(wire.MethodMigrateSnapshot, func(ctx context.Context, p []byte) ([]byte, error) {
		req, err := wire.DecodeMigrateRequest(p)
		if err != nil {
			return nil, err
		}
		resp, err := s.in.MigrateSnapshot(ctx, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeMigrateFrames(resp), nil
	})
	s.srv.HandleCtx(wire.MethodMigrateInstall, func(ctx context.Context, p []byte) ([]byte, error) {
		req, err := wire.DecodeMigrateInstall(p)
		if err != nil {
			return nil, err
		}
		resp, err := s.in.MigrateInstall(ctx, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeMigrateInstalled(resp), nil
	})

	// Continuous queries: a long-lived stream per subscription. The
	// handler parses the pipeline, registers it on the hub, and stays
	// parked until the client closes the stream (or the subscriber is
	// torn down server-side); the hub's pump goroutine does the pushing.
	s.srv.HandleStream(wire.MethodSubWatch, s.watch)

	s.srv.Handle(wire.MethodListTables, func(p []byte) ([]byte, error) {
		return wire.EncodeStringList(&wire.StringList{Names: s.in.Tables()}), nil
	})
	s.srv.Handle(wire.MethodListUDAFs, func(p []byte) ([]byte, error) {
		return wire.EncodeStringList(&wire.StringList{Names: s.in.UDAFs().Names()}), nil
	})
}
