package server

// Allocation gates for the served read path — the tentpole claim the
// hotpathalloc analyzer enforces statically, proven dynamically here:
// a warmed, steady-state, cache-hit single read allocates NOTHING on the
// server, end to end (request decode → cache lookup → feature compute →
// response encode). CI runs these with the race-free default build; a
// regression in any pooled layer (interner, query scratch, response
// buffer, hot slots) fails the gate.

import (
	"context"
	"testing"

	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// warmQueryPayload builds an instance with one resident profile and
// returns the service plus an encoded topK request against it.
func warmQueryPayload(t testing.TB) (*Service, []byte) {
	t.Helper()
	in, _ := newInstance(t, nil)
	for f := 1; f <= 16; f++ {
		addOne(t, in, 7, 1_000_000_000, model.FeatureID(f), []int64{int64(f), int64(f % 3)})
	}
	svc := NewService(in)
	t.Cleanup(func() { svc.Close() })
	req := &wire.QueryRequest{
		Caller: "test", Table: "up", ProfileID: 7,
		Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 10_000,
		SortBy: query.ByAction, Action: "like", K: 8,
	}
	return svc, wire.EncodeQuery(req)
}

// TestServedQueryAllocFree is the headline gate: AllocsPerRun over the
// full fast-path handler must be exactly zero once every pooled layer is
// warm. Warming runs past the hot-slot promotion threshold (default 64
// reads) so the one-time promotion snapshot happens before measurement.
func TestServedQueryAllocFree(t *testing.T) {
	svc, payload := warmQueryPayload(t)
	ctx := context.Background()
	var dst []byte
	var err error
	for i := 0; i < 128; i++ {
		dst, err = svc.fastQuery(ctx, payload, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	var resp wire.QueryResponse
	if err := wire.DecodeQueryResponseInto(dst, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Features) == 0 || !resp.CacheHit {
		t.Fatalf("warmed query must be a cache hit with features; got hit=%v n=%d", resp.CacheHit, len(resp.Features))
	}
	allocs := testing.AllocsPerRun(200, func() {
		dst, err = svc.fastQuery(ctx, payload, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed cache-hit served query: %.2f allocs/run, want 0", allocs)
	}
}

// TestQueryScratchAllocFree gates the compute stage alone: a warmed
// Scratch runs the engine with zero allocations.
func TestQueryScratchAllocFree(t *testing.T) {
	in, _ := newInstance(t, nil)
	for f := 1; f <= 16; f++ {
		addOne(t, in, 9, 1_000_000_000, model.FeatureID(f), []int64{int64(f), 1})
	}
	req := &wire.QueryRequest{
		Caller: "test", Table: "up", ProfileID: 9,
		Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 10_000,
		SortBy: query.ByAction, Action: "like", K: 8,
	}
	resp := &wire.QueryResponse{}
	var sc query.Scratch
	ctx := context.Background()
	for i := 0; i < 128; i++ {
		if err := in.QueryInto(ctx, req, resp, &sc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := in.QueryInto(ctx, req, resp, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed QueryInto: %.2f allocs/run, want 0", allocs)
	}
}

// TestWireCodecAllocFree gates the codec stage: request decode through a
// warmed interner and response encode into a reused buffer.
func TestWireCodecAllocFree(t *testing.T) {
	svc, payload := warmQueryPayload(t)
	var req wire.QueryRequest
	if err := wire.DecodeQueryInto(payload, &req, &svc.interner); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.in.QueryCtx(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	var dst []byte
	dst = wire.AppendQueryResponse(dst[:0], resp)
	allocs := testing.AllocsPerRun(200, func() {
		if err := wire.DecodeQueryInto(payload, &req, &svc.interner); err != nil {
			t.Fatal(err)
		}
		dst = wire.AppendQueryResponse(dst[:0], resp)
	})
	if allocs != 0 {
		t.Fatalf("warmed wire decode+encode: %.2f allocs/run, want 0", allocs)
	}
	var back wire.QueryResponse
	if err := wire.DecodeQueryResponseInto(dst, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Features) != len(resp.Features) {
		t.Fatalf("codec roundtrip lost features: %d != %d", len(back.Features), len(resp.Features))
	}
}

// BenchmarkServedQuery measures the full fast-path handler; run with
// -benchmem — the gate above pins allocs/op at 0, this reports ns/op.
func BenchmarkServedQuery(b *testing.B) {
	svc, payload := warmQueryPayload(b)
	ctx := context.Background()
	var dst []byte
	var err error
	for i := 0; i < 128; i++ {
		if dst, err = svc.fastQuery(ctx, payload, dst[:0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = svc.fastQuery(ctx, payload, dst[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
