package server

import (
	"sync"
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// TestStressAllPathsConcurrently drives every mutating path at once —
// writes (isolated and direct), queries of all kinds, merges, synchronous
// compaction, eviction, profile deletion, quota changes and config hot
// reloads — to flush out lock-ordering and accounting races. Run with
// -race; the assertions at the end check only invariants that must hold
// under any interleaving.
func TestStressAllPathsConcurrently(t *testing.T) {
	in, clock := newInstance(t, func(c *config.Config) {
		c.WriteIsolation = true
		c.MergeInterval = config.Duration(10 * time.Millisecond)
		c.PartialCompactThreshold = 4
	})
	now := clock.Now()
	const profiles = 30

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				id := model.ProfileID(i%profiles + 1)
				err := in.Add("stress", "up", id, []wire.AddEntry{{
					Timestamp: now - model.Millis(i%100_000),
					Slot:      1, Type: 1, FID: model.FeatureID(i % 50), Counts: []int64{1, 0},
				}})
				if err != nil {
					report(err)
					return
				}
			}
		}(w)
	}
	// Readers: topK / filter / decay / relative windows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			req := &wire.QueryRequest{
				Caller: "stress", Table: "up", ProfileID: model.ProfileID(i%profiles + 1),
				Slot: 1, Type: 1,
				RangeKind: query.Current, Span: 3_600_000,
				SortBy: query.ByAction, Action: "like", K: 10,
			}
			switch i % 4 {
			case 1:
				req.Decay, req.DecayFactor = query.DecayExp, 0.8
			case 2:
				req.MinCount = 1
			case 3:
				req.RangeKind, req.Span = query.Relative, 60_000
			}
			if _, err := in.Query(req); err != nil {
				report(err)
				return
			}
		}
	}()
	// Maintenance: merges, compaction, eviction, deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			switch i % 4 {
			case 0:
				in.MergeAll()
			case 1:
				if _, err := in.CompactNow("up", model.ProfileID(i%profiles+1)); err != nil {
					report(err)
					return
				}
			case 2:
				if _, err := in.EvictProfile("up", model.ProfileID(i%profiles+1)); err != nil {
					report(err)
					return
				}
			case 3:
				if err := in.DeleteProfile("up", model.ProfileID(profiles+1)); err != nil {
					report(err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Config churn: isolation flaps, quota changes, clock advances.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			on := i%2 == 0
			if err := in.Config().Mutate(func(c *config.Config) { c.WriteIsolation = on }); err != nil {
				report(err)
				return
			}
			in.Limiter().SetQuota("other", float64(i%1000+1))
			clock.Advance(1000)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Invariants after the dust settles: every resident profile is
	// structurally sound and the instance still serves.
	in.MergeAll()
	for id := model.ProfileID(1); id <= profiles; id++ {
		resp := topK(t, in, id, 365*24*3_600_000, 100)
		for _, f := range resp.Features {
			if f.Counts[0] < 0 {
				t.Fatalf("profile %d fid %d has negative count", id, f.FID)
			}
		}
	}
	if err := in.FlushAll(); err != nil {
		t.Fatal(err)
	}
}
