package server

import (
	"reflect"
	"strings"
	"testing"

	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

func batchSub(id model.ProfileID, span model.Millis, k int) wire.SubQuery {
	return wire.SubQuery{Op: wire.OpTopK, Query: wire.QueryRequest{
		Caller: "test", Table: "up", ProfileID: id,
		Slot: 1, Type: 1,
		RangeKind: query.Current, Span: span,
		SortBy: query.ByAction, Action: "like", K: k,
	}}
}

func TestQueryBatchMatchesSingles(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	for id := model.ProfileID(1); id <= 10; id++ {
		for f := 0; f < 4; f++ {
			addOne(t, in, id, now-model.Millis(f*1000), model.FeatureID(f+1), []int64{int64(f + 1), 0})
		}
	}

	// Mixed batch: several sub-queries per profile exercise the
	// single-cache-pass grouping; the unknown table and the bad span are
	// per-slot failures.
	subs := []wire.SubQuery{
		batchSub(1, 3_600_000, 2),
		batchSub(2, 3_600_000, 0),
		{Op: wire.OpFilter, Query: wire.QueryRequest{
			Caller: "test", Table: "up", ProfileID: 1, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 3_600_000,
			SortBy: query.ByAction, Action: "like", MinCount: 3,
		}},
		{Op: wire.OpTopK, Query: wire.QueryRequest{
			Caller: "test", Table: "nope", ProfileID: 3, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 3_600_000,
			SortBy: query.ByAction, Action: "like",
		}},
		batchSub(4, -5, 1),         // bad span: per-slot error
		batchSub(99, 3_600_000, 3), // unknown profile: empty success
		{Op: wire.OpDecay, Query: wire.QueryRequest{
			Caller: "test", Table: "up", ProfileID: 2, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 3_600_000,
			SortBy: query.ByAction, Action: "like",
			Decay: query.DecayExp, DecayFactor: 0.5,
		}},
	}
	results := in.QueryBatch("test", subs)
	if len(results) != len(subs) {
		t.Fatalf("got %d results for %d subs", len(results), len(subs))
	}
	for i, sub := range subs {
		single, err := in.Query(&sub.Query)
		br := results[i]
		if err != nil {
			if br.Err == "" {
				t.Fatalf("sub %d: single errored (%v) but batch succeeded", i, err)
			}
			if br.Resp != nil {
				t.Fatalf("sub %d: failed slot carries a response", i)
			}
			continue
		}
		if br.Err != "" {
			t.Fatalf("sub %d: single succeeded but batch failed: %s", i, br.Err)
		}
		if !reflect.DeepEqual(single.Features, br.Resp.Features) {
			t.Fatalf("sub %d: features differ\nsingle: %+v\nbatch:  %+v", i, single.Features, br.Resp.Features)
		}
		if single.SlicesScanned != br.Resp.SlicesScanned {
			t.Fatalf("sub %d: scanned %d vs %d", i, single.SlicesScanned, br.Resp.SlicesScanned)
		}
	}
}

func TestQueryBatchUnknownTableSlots(t *testing.T) {
	in, _ := newInstance(t, nil)
	subs := []wire.SubQuery{
		{Query: wire.QueryRequest{Caller: "test", Table: "ghost", ProfileID: 1,
			RangeKind: query.Current, Span: 1000}},
		batchSub(1, 3_600_000, 1),
	}
	results := in.QueryBatch("test", subs)
	if results[0].Err == "" || !strings.Contains(results[0].Err, "unknown table") {
		t.Fatalf("slot 0 = %+v, want unknown-table error", results[0])
	}
	if results[1].Err != "" {
		t.Fatalf("slot 1 failed: %s", results[1].Err)
	}
}

func TestQueryBatchCountsQueries(t *testing.T) {
	in, clock := newInstance(t, nil)
	addOne(t, in, 1, clock.Now()-10, 1, []int64{1, 0})
	before := in.Queries.Value()
	subs := []wire.SubQuery{batchSub(1, 3_600_000, 1), batchSub(1, 3_600_000, 2), batchSub(2, 3_600_000, 1)}
	in.QueryBatch("test", subs)
	if got := in.Queries.Value() - before; got != int64(len(subs)) {
		t.Fatalf("Queries advanced by %d, want %d", got, len(subs))
	}
}

// TestQueryBatchOverRPC exercises the wire handler end to end.
func TestQueryBatchOverRPC(t *testing.T) {
	in, clock := newInstance(t, nil)
	now := clock.Now()
	addOne(t, in, 7, now-10, 5, []int64{3, 0})
	svc := NewService(in)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	c := newTestRPCClient(t, addr)

	req := &wire.BatchQueryRequest{Caller: "test", Subs: []wire.SubQuery{
		batchSub(7, 3_600_000, 5),
		{Query: wire.QueryRequest{Caller: "test", Table: "ghost", ProfileID: 7,
			RangeKind: query.Current, Span: 1000}},
	}}
	raw, err := c.Call(wire.MethodQueryBatch, wire.EncodeQueryBatch(req))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeQueryBatchResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if resp.Results[0].Err != "" || len(resp.Results[0].Resp.Features) != 1 {
		t.Fatalf("slot 0 = %+v", resp.Results[0])
	}
	if resp.Results[0].Resp.Features[0].FID != 5 {
		t.Fatalf("slot 0 fid = %d", resp.Results[0].Resp.Features[0].FID)
	}
	if resp.Results[1].Err == "" || resp.Results[1].Resp != nil {
		t.Fatalf("slot 1 = %+v, want error slot", resp.Results[1])
	}
}
