// Package server implements one IPS instance: the compute-cache layer node
// that owns a fraction of the cluster's profiles (§III). An Instance ties
// together the profile tables, GCache, the query engine, background
// compaction, per-caller quotas and hot-reloadable configuration, and
// exposes the write/read APIs both in-process and over the RPC framework.
//
// Read-write isolation (§III-F): when enabled, add traffic lands in a
// separate write-only table that a merge worker folds into the main table
// every few seconds, keeping write contention off the query path at the
// cost of slightly delayed visibility.
//
// Observability: an Instance accepts a trace.Tracer (DESIGN.md "Request
// tracing") and hosts the plain-text DebugServer endpoint ipsd exposes
// with -debug; OPERATIONS.md is the operator runbook for both.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/compact"
	"ips/internal/config"
	"ips/internal/gcache"
	"ips/internal/kv"
	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/persist"
	"ips/internal/query"
	"ips/internal/quota"
	"ips/internal/sub"
	"ips/internal/trace"
	"ips/internal/wal"
	"ips/internal/wire"
)

// Errors returned by the instance.
var (
	ErrNoTable = errors.New("server: unknown table")
	ErrClosed  = errors.New("server: instance closed")
)

// Options configures an Instance.
type Options struct {
	// Name identifies the instance (e.g. "ips-east-0").
	Name string
	// Region is the data-center the instance serves (§III-G).
	Region string
	// Store is the persistent KV backing; required.
	Store kv.Store
	// Config is the hot-reloadable configuration store; nil uses defaults.
	Config *config.Store
	// Cache tunes GCache; zero values use gcache defaults.
	Cache gcache.Options
	// DefaultQuotaQPS applies to unknown callers (0 = unlimited).
	DefaultQuotaQPS float64
	// Clock supplies "now" in Unix millis; nil uses wall time. The
	// benchmark harness injects accelerated clocks here.
	Clock func() model.Millis
	// Journal, when set, is the write-ahead mutation journal: every add,
	// delete and compaction is logged before it is applied, closing the
	// write-back loss window, and CreateTable replays the unflushed
	// journal suffix into the cache before serving (crash recovery).
	Journal *wal.Journal
	// Tracer, when set, is the per-stage latency-attribution layer: it
	// samples requests, aggregates span durations into stage histograms,
	// and retains slow queries. Nil disables tracing with no overhead.
	Tracer *trace.Tracer
	// SubQueue bounds each continuous-query subscriber's update queue
	// (DESIGN.md "Continuous queries"); a full queue drops the update and
	// schedules a resync. 0 uses the sub package default.
	SubQueue int
	// SubResync paces the resync sweep that recovers slow subscribers and
	// failed standing-query evaluations. 0 uses the sub package default.
	SubResync time.Duration
}

// Instance is one IPS server node.
type Instance struct {
	name    string
	region  string
	cfgs    *config.Store
	store   kv.Store
	clock   func() model.Millis
	journal *wal.Journal
	tracer  *trace.Tracer

	mu     sync.RWMutex
	tables map[string]*tableState
	closed atomic.Bool

	limiter *quota.Limiter
	udafs   *query.Registry

	// hub is the continuous-query subscriber index (DESIGN.md "Continuous
	// queries"): every write path notifies it so standing queries over the
	// touched profile are re-evaluated and pushed. Always non-nil.
	hub *sub.Hub

	cacheOpts gcache.Options

	// Metrics (shared across tables).
	Queries     metrics.Counter
	Writes      metrics.Counter
	Rejected    metrics.Counter
	QueryLat    metrics.Histogram
	WriteLat    metrics.Histogram
	MergeRuns   metrics.Counter
	MergedSlabs metrics.Counter // profiles merged from write tables

	// Migration counters (elastic resharding; OPERATIONS.md "Elastic
	// resharding runbook"). Out-counters tick on the old owner as it
	// snapshots and releases profiles; in-counters tick on the new owner
	// as frames land.
	MigratedOut     metrics.Counter // profiles snapshotted for handoff
	MigratedIn      metrics.Counter // frames whose content was installed
	MigrateBytesOut metrics.Counter
	MigrateBytesIn  metrics.Counter
	MigrateMarked   metrics.Counter // watermark-only installs (release pass)
	MigrateReleased metrics.Counter // profiles dropped at cutover

	wg   sync.WaitGroup
	stop chan struct{}
}

// tableState holds one table's main and write-isolation structures.
type tableState struct {
	schema *model.Schema
	main   *model.Table
	cache  *gcache.GCache
	comp   *compact.Compactor
	ps     *persist.Persister

	// Write isolation (§III-F): writeTbl buffers adds; writeBytes tracks
	// its memory so it can be capped.
	writeMu    sync.Mutex
	writeTbl   *model.Table
	writeBytes int64
}

// New creates and starts an instance.
func New(opts Options) (*Instance, error) {
	if opts.Store == nil {
		return nil, errors.New("server: Store is required")
	}
	cfgs := opts.Config
	if cfgs == nil {
		var err error
		cfgs, err = config.NewStore(config.Default())
		if err != nil {
			return nil, err
		}
	}
	clock := opts.Clock
	if clock == nil {
		clock = func() model.Millis { return time.Now().UnixMilli() }
	}
	in := &Instance{
		name:      opts.Name,
		region:    opts.Region,
		cfgs:      cfgs,
		store:     opts.Store,
		clock:     clock,
		journal:   opts.Journal,
		tracer:    opts.Tracer,
		tables:    make(map[string]*tableState),
		limiter:   quota.NewLimiter(opts.DefaultQuotaQPS),
		udafs:     query.NewRegistry(),
		cacheOpts: opts.Cache,
		stop:      make(chan struct{}),
	}
	in.hub = sub.NewHub(sub.Options{
		Eval:           in.subEval,
		QueueLen:       opts.SubQueue,
		ResyncInterval: opts.SubResync,
	})
	in.wg.Add(1)
	go in.mergeLoop()
	// Register the config watch before returning so no update can slip
	// between construction and the loop starting.
	watch := cfgs.Watch()
	in.wg.Add(1)
	go in.configLoop(watch)
	return in, nil
}

// configLoop applies hot-reloaded configuration that cannot be read lazily
// on each operation: today, the time-dimension head width every table
// writes at (§V-b: feature time precision is tunable live). The watcher
// channel may drop intermediate versions under bursts, so each wake-up
// applies the *latest* snapshot rather than the delivered one.
func (in *Instance) configLoop(watch <-chan config.Config) {
	defer in.wg.Done()
	for {
		select {
		case <-watch:
			in.applyConfig(in.cfgs.Get())
		case <-in.stop:
			return
		}
	}
}

func (in *Instance) applyConfig(cfg config.Config) {
	head := cfg.TimeDimension.HeadWidth()
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, ts := range in.tables {
		ts.main.SetHeadWidth(head)
		ts.writeMu.Lock()
		ts.writeTbl.SetHeadWidth(head)
		ts.writeMu.Unlock()
	}
}

// Name returns the instance name.
func (in *Instance) Name() string { return in.name }

// Region returns the instance's region.
func (in *Instance) Region() string { return in.region }

// Config returns the instance's configuration store for hot reloads.
func (in *Instance) Config() *config.Store { return in.cfgs }

// Limiter returns the per-caller quota limiter for runtime quota changes.
func (in *Instance) Limiter() *quota.Limiter { return in.limiter }

// UDAFs returns the instance's user-defined aggregate function registry;
// applications register scoring functions here and reference them by name
// in queries.
func (in *Instance) UDAFs() *query.Registry { return in.udafs }

// Tracer returns the instance's latency-attribution tracer, nil when
// tracing is disabled.
func (in *Instance) Tracer() *trace.Tracer { return in.tracer }

// Hub returns the continuous-query subscriber hub. The RPC service
// registers subscriptions here; every write path notifies it.
func (in *Instance) Hub() *sub.Hub { return in.hub }

// subEval is the hub's evaluation callback: one standing-query
// re-evaluation through the normal read path. The scratch is per-call —
// the response's feature storage aliases it, and queued updates hold the
// response long after this returns, so it must never be pooled or
// reused. Evaluations run under the hub's reserved caller identity
// (sub.EvalCaller), so operators can quota push-side load like any
// other caller.
func (in *Instance) subEval(ctx context.Context, req *wire.QueryRequest, resp *wire.QueryResponse) error {
	var sc query.Scratch
	return in.QueryInto(ctx, req, resp, &sc)
}

// CreateTable registers a table with the given schema. The head-slice
// width comes from the current time-dimension config.
func (in *Instance) CreateTable(name string, schema *model.Schema) error {
	if err := schema.Validate(); err != nil {
		return err
	}
	cfg := in.cfgs.Get()
	head := cfg.TimeDimension.HeadWidth()

	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.tables[name]; ok {
		return fmt.Errorf("server: table %q already exists", name)
	}
	main := model.NewTable(name, schema, head)
	ps := persist.New(in.store, name)
	cache, err := gcache.New(main, ps, in.cacheOpts)
	if err != nil {
		return err
	}
	cache.Tracer = in.tracer
	comp := compact.NewCompactor(schema, in.cfgs, in.clock)
	// Background maintenance must keep cache accounting truthful and
	// queue the compacted profile for re-flush.
	comp.OnMaintain = func(id model.ProfileID, delta int64) {
		cache.NoteSizeChange(id, delta)
		cache.MarkDirty(id)
	}
	if tc := in.tracer; tc != nil {
		comp.Observe = func(d time.Duration) { tc.Observe(trace.StageCompactPass, d) }
	}
	ts := &tableState{
		schema:   schema,
		main:     main,
		cache:    cache,
		comp:     comp,
		ps:       ps,
		writeTbl: model.NewTable(name+"#write", schema, head),
	}
	if jn := in.journal; jn != nil {
		// Replay the unflushed journal suffix BEFORE wiring the hooks (so
		// replayed mutations are not re-journaled) and before background
		// threads start.
		if err := in.replayTable(ts); err != nil {
			return fmt.Errorf("server: journal replay for table %q: %w", name, err)
		}
		cache.OnApply = func(ctx context.Context, id model.ProfileID, entries []wire.AddEntry) (uint64, error) {
			return jn.AppendAdd(ctx, name, id, entries)
		}
		cache.OnFlush = func(id model.ProfileID, walLSN, mergedLSN uint64) {
			jn.NoteFlushed(name, id, walLSN, mergedLSN)
		}
		comp.LogMaintain = func(id model.ProfileID, now model.Millis, cfg config.Config) (uint64, error) {
			return jn.AppendCompact(name, id, now, cfg)
		}
	}
	cache.Start()
	comp.Start()
	in.tables[name] = ts
	return nil
}

// replayTable re-applies the journal's records for one table in LSN order
// into a freshly built tableState. Each record is applied only when its
// LSN exceeds the relevant watermark of the profile's persisted base
// (WalLSN for the main stream, MergedLSN for write-isolation adds) —
// records whose effects already reached storage are skipped and marked
// flushed. Isolated adds are folded straight into the main profile: they
// represent the merge the crash pre-empted. Called from CreateTable with
// in.mu held; uses ts directly.
func (in *Instance) replayTable(ts *tableState) error {
	name := ts.main.Name
	for _, rec := range in.journal.Records() {
		if rec.Table != name {
			continue
		}
		switch rec.Op {
		case wal.OpAdd:
			applied, err := ts.cache.ApplyLogged(rec.Profile, rec.Entries, rec.LSN, rec.Isolated)
			if err != nil && !applied {
				return err // storage load failure, not a per-entry reject
			}
			if !applied {
				// The loaded base already contains this record: retire it in
				// its own stream only. An isolated add is vouched for by the
				// merged watermark, a direct add by the main one.
				if rec.Isolated {
					in.journal.NoteFlushed(name, rec.Profile, 0, rec.LSN)
				} else {
					in.journal.NoteFlushed(name, rec.Profile, rec.LSN, 0)
				}
			}
		case wal.OpDelete:
			p, _, err := ts.cache.Get(rec.Profile)
			if err != nil {
				return err
			}
			if p != nil {
				p.Lock()
				if p.WalLSN >= rec.LSN {
					// The persisted base postdates the delete: the profile
					// was recreated and flushed again before the crash. The
					// delete superseded every earlier record in both streams.
					p.Unlock()
					in.journal.NoteFlushed(name, rec.Profile, rec.LSN, rec.LSN)
					continue
				}
				p.Dirty = false
				ts.main.Delete(rec.Profile)
				p.Unlock()
				ts.cache.Discard(rec.Profile)
			}
			if err := ts.ps.Delete(rec.Profile); err != nil && !errors.Is(err, kv.ErrNotFound) {
				return err
			}
			// The synchronous storage delete supersedes every earlier record
			// in both streams.
			in.journal.NoteFlushed(name, rec.Profile, rec.LSN, rec.LSN)
		case wal.OpCompact:
			p, _, err := ts.cache.Get(rec.Profile)
			if err != nil {
				return err
			}
			applied := false
			var delta int64
			if p != nil {
				// Replay with the config the pass originally ran under (the
				// journaled snapshot); the live config may have been
				// hot-reloaded since, and a different truncation here would
				// diverge from the partially flushed effects of the original.
				cfg := in.cfgs.Get()
				if rec.Cfg != nil {
					cfg = *rec.Cfg
				}
				p.Lock()
				if rec.LSN > p.WalLSN {
					st := compact.Maintain(p, ts.schema, cfg, rec.Now)
					p.WalLSN = rec.LSN
					p.Dirty = true
					delta = st.BytesAfter - st.BytesBefore
					applied = true
				}
				p.Unlock()
			}
			if applied {
				ts.cache.NoteSizeChange(rec.Profile, delta)
				ts.cache.MarkDirty(rec.Profile)
			} else {
				in.journal.NoteFlushed(name, rec.Profile, rec.LSN, 0)
			}
		}
	}
	return nil
}

// Tables returns the registered table names.
func (in *Instance) Tables() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, 0, len(in.tables))
	for n := range in.tables {
		out = append(out, n)
	}
	return out
}

//ips:hotpath
func (in *Instance) table(name string) (*tableState, error) {
	in.mu.RLock()
	ts := in.tables[name]
	in.mu.RUnlock()
	if ts == nil {
		//ipslint:ignore hotpathalloc the unknown-table error is off the steady state
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return ts, nil
}

// Add implements add_profile / add_profiles (§II-B1) for one profile.
func (in *Instance) Add(caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
	return in.AddCtx(context.Background(), caller, table, id, entries)
}

// AddCtx is Add with a request context carrying the request's trace, if
// sampled: cache apply, journal append/fsync and any inline write-table
// merge are attributed to their own spans.
func (in *Instance) AddCtx(ctx context.Context, caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
	if in.closed.Load() {
		return ErrClosed
	}
	if err := in.limiter.AllowN(caller, len(entries)); err != nil {
		in.Rejected.Inc()
		return err
	}
	start := time.Now()
	defer func() {
		in.WriteLat.Observe(time.Since(start))
		in.Writes.Add(int64(len(entries)))
	}()

	ts, err := in.table(table)
	if err != nil {
		return err
	}
	cfg := in.cfgs.Get()
	if cfg.WriteIsolation {
		return in.addIsolated(ctx, ts, cfg, id, entries)
	}
	// One batched cache write: the whole request is journaled and applied
	// under a single profile lock hold, so the journal's record order
	// matches the apply order.
	if err := ts.cache.AddEntriesCtx(ctx, id, entries); err != nil {
		return err
	}
	// Direct adds are immediately visible to reads, so this is the
	// freshness point for standing queries over the profile. (Isolated
	// adds notify at merge time instead — see mergeWriteTableLocked —
	// because that is when they become query-visible.)
	in.hub.Notify(table, id)
	in.maybeCompact(ts, id)
	return nil
}

// addIsolated buffers the write in the write table (§III-F). All write
// table operations are lightweight: no persistence, no compaction.
func (in *Instance) addIsolated(ctx context.Context, ts *tableState, cfg config.Config, id model.ProfileID, entries []wire.AddEntry) error {
	ts.writeMu.Lock()
	defer ts.writeMu.Unlock()
	// Journal before mutating; writeMu orders isolated appends, so log
	// order equals apply order. The record is marked isolated: its data
	// lives only in the write table until merge, so the journal must not
	// retire it on a main-profile flush (whose WalLSN a concurrent
	// compaction may have pushed past this LSN). The write profile carries
	// the LSN until merge folds it into the main profile's MergedLSN.
	var lsn uint64
	if in.journal != nil {
		var jerr error
		lsn, jerr = in.journal.AppendIsolatedAdd(ctx, ts.main.Name, id, entries)
		if jerr != nil {
			return jerr
		}
	}
	p, _ := ts.writeTbl.GetOrCreate(id)
	p.Lock()
	before := p.MemSize()
	var err error
	for _, en := range entries {
		// Skip invalid entries rather than stopping: replay applies the
		// whole journaled batch the same way, so live and recovered
		// states stay identical.
		if e := p.Add(ts.schema, en.Timestamp, ts.writeTbl.HeadWidth(), en.Slot, en.Type, en.FID, en.Counts); e != nil && err == nil {
			err = e
		}
	}
	if lsn > p.WalLSN {
		p.WalLSN = lsn
	}
	ts.writeBytes += p.MemSize() - before
	p.Unlock()
	if err != nil {
		return err
	}
	// Cap the write table's memory (§III-F): over the limit, merge now.
	// The merge runs on this request's clock — attribute it.
	if cfg.WriteTableMaxBytes > 0 && ts.writeBytes > cfg.WriteTableMaxBytes {
		sp := trace.StartLeaf(ctx, trace.StageMergeInline)
		in.mergeWriteTableLocked(ts)
		sp.End()
	}
	return nil
}

// mergeLoop periodically folds write tables into main tables.
func (in *Instance) mergeLoop() {
	defer in.wg.Done()
	for {
		interval := time.Duration(in.cfgs.Get().MergeInterval)
		if interval <= 0 {
			interval = time.Second
		}
		select {
		case <-time.After(interval):
			in.MergeAll()
		case <-in.stop:
			return
		}
	}
}

// MergeAll folds every table's write buffer into its main table. Exposed
// so tests and the harness can force visibility deterministically.
func (in *Instance) MergeAll() {
	in.mu.RLock()
	tables := make([]*tableState, 0, len(in.tables))
	for _, ts := range in.tables {
		tables = append(tables, ts)
	}
	in.mu.RUnlock()
	for _, ts := range tables {
		ts.writeMu.Lock()
		in.mergeWriteTableLocked(ts)
		ts.writeMu.Unlock()
	}
	in.MergeRuns.Inc()
}

// mergeWriteTableLocked drains ts.writeTbl into the main table; caller
// holds ts.writeMu.
func (in *Instance) mergeWriteTableLocked(ts *tableState) {
	if ts.writeTbl.Len() == 0 {
		return
	}
	old := ts.writeTbl
	ts.writeTbl = model.NewTable(old.Name, ts.schema, old.HeadWidth())
	ts.writeBytes = 0

	old.Each(func(wp *model.Profile) bool {
		var mp *model.Profile
		for {
			var err error
			mp, _, err = ts.cache.GetOrLoadForWrite(wp.ID)
			if err != nil || mp == nil {
				return true // drop on storage error: next write retries
			}
			mp.Lock()
			// Re-validate: a concurrent eviction may have detached mp while
			// we waited for its lock; folding into a detached object would
			// silently lose the write-table data.
			if ts.main.Get(wp.ID) == mp {
				break
			}
			mp.Unlock()
		}
		before := mp.MemSize()
		for _, s := range wp.Slices() {
			s.EachSlot(func(slot model.SlotID, set *model.InstanceSet) {
				set.Each(func(typ model.TypeID, fs *model.FeatureStats) {
					fs.Each(func(st model.FeatureStat) {
						// Reconstruct a representative timestamp inside
						// the slice for placement.
						tsMid := s.Latest
						if tsMid == 0 {
							tsMid = s.Start
						}
						_ = mp.Add(ts.schema, tsMid, ts.main.HeadWidth(), slot, typ, st.FID, st.Counts)
					})
				})
			})
		}
		// The merge is the point where isolated adds become part of the
		// main profile's state: advance BOTH watermarks so the next flush
		// vouches for them (MergedLSN retires the isolated journal records;
		// WalLSN keeps replay's main-stream skip logic monotonic).
		if wp.WalLSN > mp.MergedLSN {
			mp.MergedLSN = wp.WalLSN
		}
		if wp.WalLSN > mp.WalLSN {
			mp.WalLSN = wp.WalLSN
		}
		delta := mp.MemSize() - before
		mp.Unlock()
		ts.cache.NoteSizeChange(wp.ID, delta)
		ts.cache.MarkDirty(wp.ID)
		// Merge is the visibility point for isolated adds (§III-F): only
		// now can a standing query observe them, so only now is a push
		// warranted. Update freshness under write isolation is therefore
		// bounded by the merge interval, exactly like poll freshness.
		in.hub.Notify(ts.main.Name, wp.ID)
		in.MergedSlabs.Inc()
		in.maybeCompact(ts, wp.ID)
		return true
	})
}

// maybeCompact enqueues background maintenance when a profile's slice list
// has grown past the partial-compaction threshold.
func (in *Instance) maybeCompact(ts *tableState, id model.ProfileID) {
	p := ts.main.Get(id)
	if p == nil {
		return
	}
	cfg := in.cfgs.Get()
	threshold := cfg.PartialCompactThreshold
	if threshold <= 0 {
		threshold = 16
	}
	p.RLock()
	n := p.NumSlices()
	p.RUnlock()
	if n > threshold {
		ts.comp.Enqueue(p)
	}
}

// Query executes a read (§II-B2). The method semantics (topK / filter /
// decay) are fully described by the request itself.
func (in *Instance) Query(req *wire.QueryRequest) (*wire.QueryResponse, error) {
	return in.QueryCtx(context.Background(), req)
}

// QueryCtx is Query with a request context carrying the request's trace,
// if sampled: the cache lookup (hit/miss flagged, storage read broken
// out) and the feature computation get their own spans. The returned
// response is freshly allocated and caller-owned; the zero-allocation
// form is QueryInto.
func (in *Instance) QueryCtx(ctx context.Context, req *wire.QueryRequest) (*wire.QueryResponse, error) {
	resp := &wire.QueryResponse{}
	var sc query.Scratch
	if err := in.QueryInto(ctx, req, resp, &sc); err != nil {
		return nil, err
	}
	return resp, nil
}

// QueryInto executes a read into resp, using sc for all working storage.
// resp's feature list and every Counts vector alias sc's arenas: they
// are valid until the scratch's next run, which lets the service layer
// decode, compute, and encode a steady-state cache-hit read with zero
// heap allocations. resp is reset (capacity preserved) before use.
//
//ips:hotpath
func (in *Instance) QueryInto(ctx context.Context, req *wire.QueryRequest, resp *wire.QueryResponse, sc *query.Scratch) error {
	if in.closed.Load() {
		return ErrClosed
	}
	if err := in.limiter.Allow(req.Caller); err != nil {
		in.Rejected.Inc()
		return err
	}
	start := time.Now()
	ts, err := in.table(req.Table)
	if err != nil {
		return err
	}
	p, hit, hot, err := ts.cache.GetForRead(ctx, req.ProfileID)
	if err != nil {
		return err
	}
	*resp = wire.QueryResponse{Features: resp.Features[:0]}
	resp.CacheHit = hit
	if p != nil {
		// Surface the freshness watermark: the local journal ack plus the
		// migration watermark carried over from a previous owner. Dual
		// readers prefer the fresher side during a resharding window, and
		// the migration-storm suite asserts post-cutover reads observe a
		// watermark >= every pre-cutover ack. Hot replicas are immutable
		// snapshots, so their fields are safe to read without the lock.
		if hot {
			resp.WalLSN = maxLSN(p.WalLSN, p.MigLSN)
		} else {
			p.RLock()
			resp.WalLSN = maxLSN(p.WalLSN, p.MigLSN)
			p.RUnlock()
		}
		q := req.ToQuery()
		if req.UDAFName != "" {
			fn, err := in.udafs.Lookup(req.UDAFName)
			if err != nil {
				return err
			}
			q.UDAF = fn
		}
		csp := trace.StartLeaf(ctx, trace.StageCacheCompute)
		var res query.Result
		//ipslint:ignore hotpathalloc the clock is an injected func value; the default model.Now does not allocate
		now := in.clock()
		if hot {
			// Hot replicas are immutable, so the per-profile read lock —
			// the very thing the replica exists to relieve — is skipped.
			res, err = query.RunSealedScratch(p, ts.schema, q, now, sc)
		} else {
			res, err = query.RunScratch(p, ts.schema, q, now, sc)
		}
		csp.EndErr(err)
		if err != nil {
			return err
		}
		resp.Features = res.Features
		resp.SlicesScanned = res.SlicesScanned
	}
	elapsed := time.Since(start)
	resp.ServerNanos = elapsed.Nanoseconds()
	in.QueryLat.Observe(elapsed)
	in.Queries.Inc()
	return nil
}

// Stats summarises the instance.
func (in *Instance) Stats() *wire.StatsResponse {
	var profiles int64
	var mem int64
	var hit float64
	var flushErr int64
	in.mu.RLock()
	nt := 0
	for _, ts := range in.tables {
		profiles += int64(ts.main.Len())
		mem += ts.cache.Usage()
		hit += ts.cache.HitRatio.Value()
		flushErr += ts.cache.FlushErrors.Value()
		nt++
	}
	in.mu.RUnlock()
	if nt > 0 {
		hit /= float64(nt)
	}
	return &wire.StatsResponse{
		Name:        in.name,
		Region:      in.region,
		Profiles:    profiles,
		MemUsage:    mem,
		HitRatioPct: hit * 100,
		Queries:     in.Queries.Value(),
		Writes:      in.Writes.Value(),
		Rejected:    in.Rejected.Value(),
		FlushErrors: flushErr,
	}
}

// CacheStats returns the GCache statistics for table.
func (in *Instance) CacheStats(table string) (gcache.Stats, error) {
	ts, err := in.table(table)
	if err != nil {
		return gcache.Stats{}, err
	}
	return ts.cache.Stats(), nil
}

// CompactNow synchronously maintains one profile, for tests/harness.
func (in *Instance) CompactNow(table string, id model.ProfileID) (compact.Stats, error) {
	ts, err := in.table(table)
	if err != nil {
		return compact.Stats{}, err
	}
	p := ts.main.Get(id)
	if p == nil {
		return compact.Stats{}, nil
	}
	st := ts.comp.RunSync(p)
	ts.cache.NoteSizeChange(id, st.BytesAfter-st.BytesBefore)
	return st, nil
}

// DeleteProfile removes one profile from the cache, the write buffer and
// persistent storage — the privacy-compliance management operation.
func (in *Instance) DeleteProfile(table string, id model.ProfileID) error {
	ts, err := in.table(table)
	if err != nil {
		return err
	}
	// Journal the delete under BOTH locks that order the profile's
	// mutation streams: writeMu serializes isolated adds and the main
	// profile's write lock serializes direct adds (which journal inside
	// AddEntries under that lock). Appending the OpDelete without them
	// would let a concurrent add obtain a higher LSN yet apply first —
	// live state says "deleted", but strict-LSN-order replay would
	// resurrect the profile with the add's entries. Lock order here
	// (writeMu → profile lock → journal) matches addIsolated and the
	// merge worker, so there is no inversion.
	ts.writeMu.Lock()
	// Materialize the main profile so non-resident deletes still serialize
	// against adds through the same profile lock the add path uses.
	var mp *model.Profile
	for {
		var lerr error
		mp, _, lerr = ts.cache.GetOrLoadForWrite(id)
		if lerr != nil {
			ts.writeMu.Unlock()
			return lerr
		}
		mp.Lock()
		// Re-validate against a concurrent eviction detaching mp while we
		// waited for its lock (same pattern as the add and merge paths).
		if ts.main.Get(id) == mp {
			break
		}
		mp.Unlock()
	}
	var lsn uint64
	if in.journal != nil {
		if lsn, err = in.journal.AppendDelete(ts.main.Name, id); err != nil {
			mp.Unlock()
			ts.writeMu.Unlock()
			return err
		}
	}
	if wp := ts.writeTbl.Get(id); wp != nil {
		wp.Lock()
		size := wp.MemSize()
		ts.writeTbl.Delete(id)
		ts.writeBytes -= size
		wp.Unlock()
	}
	// Drop from cache without flushing the dirty state we are deleting.
	mp.Dirty = false
	ts.main.Delete(id)
	mp.Unlock()
	// Discard retires the LRU entry (at its recorded charge), any warm
	// blob, and the hot replicas — a deleted profile must vanish from
	// every tier, or a later miss could resurrect it from a stale blob.
	ts.cache.Discard(id)
	ts.writeMu.Unlock()
	// The storage delete is synchronous, so on success the record — and
	// everything before it in both streams, which it supersedes — is
	// immediately marked flushed.
	if err := ts.ps.Delete(id); err != nil && !errors.Is(err, kv.ErrNotFound) {
		return err
	}
	if in.journal != nil {
		in.journal.NoteFlushed(ts.main.Name, id, lsn, lsn)
	}
	// A delete changes the profile's standing answers (to empty) just like
	// any other mutation — push it.
	in.hub.Notify(table, id)
	return nil
}

// EvictProfile flushes and drops one profile from table's cache so the
// next read misses; used by tests and the benchmark harness (Table II).
func (in *Instance) EvictProfile(table string, id model.ProfileID) (bool, error) {
	ts, err := in.table(table)
	if err != nil {
		return false, err
	}
	return ts.cache.Drop(id), nil
}

// EvictToWatermark runs one synchronous eviction pass on table's cache.
// The background swap threads do this continuously in real time; harnesses
// that compress simulated time call it explicitly so maintenance cadence
// matches the accelerated clock.
func (in *Instance) EvictToWatermark(table string) error {
	ts, err := in.table(table)
	if err != nil {
		return err
	}
	ts.cache.EvictToWatermark()
	return nil
}

// WarmProfile loads one profile into table's cache (a deliberate miss),
// so subsequent reads hit.
func (in *Instance) WarmProfile(table string, id model.ProfileID) error {
	ts, err := in.table(table)
	if err != nil {
		return err
	}
	_, _, err = ts.cache.Get(id)
	return err
}

// FlushAll persists all dirty profiles in every table.
func (in *Instance) FlushAll() error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, ts := range in.tables {
		if err := ts.cache.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// Abort stops background work WITHOUT merging write buffers or flushing
// dirty profiles, simulating a process crash for recovery tests. Only
// journaled state survives an Abort.
func (in *Instance) Abort() {
	if in.closed.Swap(true) {
		return
	}
	in.hub.Close()
	close(in.stop)
	in.wg.Wait()
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, ts := range in.tables {
		ts.comp.Close()
		ts.cache.Abort()
	}
}

// Close merges pending writes, stops background work and flushes.
func (in *Instance) Close() error {
	if in.closed.Swap(true) {
		return nil
	}
	// Stop pushes first: subscriber pumps write to client streams, and
	// every path below mutates state they would otherwise re-evaluate.
	in.hub.Close()
	close(in.stop)
	in.wg.Wait()
	in.MergeAll()
	in.mu.RLock()
	defer in.mu.RUnlock()
	var firstErr error
	for _, ts := range in.tables {
		ts.comp.Close()
		if err := ts.cache.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
