package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"

	"ips/internal/trace"
)

// DebugServer is the operator debug surface of one instance: a plain-text
// snapshot of the tracer's per-stage latency attribution (§IV latency
// breakdown), the slow-query log, the last sampled span tree, and the
// instance counters. It speaks one-command-per-connection TCP — dial,
// send a command line, read the response until EOF — so a bare
// `ips-cli debug` or `echo stages | nc host port` both work. Stdlib only;
// no HTTP, no new dependencies.
//
// The surface is read-only and allocates nothing on the serving path
// beyond the rendered snapshot, so leaving it enabled in production costs
// one idle goroutine.
type DebugServer struct {
	in *Instance

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewDebugServer wraps in. The instance's tracer (possibly nil — then
// stage output reports tracing disabled) supplies all trace-derived
// sections.
func NewDebugServer(in *Instance) *DebugServer {
	return &DebugServer{in: in}
}

// DebugCommands lists every command WriteSnapshot accepts, in help order.
var DebugCommands = []string{"help", "stats", "stages", "slow", "trace", "all"}

// WriteSnapshot renders one debug command to w. Unknown commands render
// the help text with an error line and return a non-nil error.
func (d *DebugServer) WriteSnapshot(w io.Writer, cmd string) error {
	switch strings.TrimSpace(cmd) {
	case "", "help":
		d.writeHelp(w)
	case "stats":
		d.writeStats(w)
	case "stages":
		d.writeStages(w)
	case "slow":
		d.writeSlow(w)
	case "trace":
		d.writeTrace(w)
	case "all":
		d.writeStats(w)
		fmt.Fprintln(w)
		d.writeStages(w)
		fmt.Fprintln(w)
		d.writeSlow(w)
		fmt.Fprintln(w)
		d.writeTrace(w)
	default:
		fmt.Fprintf(w, "unknown command %q\n", strings.TrimSpace(cmd))
		d.writeHelp(w)
		return fmt.Errorf("debug: unknown command %q", strings.TrimSpace(cmd))
	}
	return nil
}

func (d *DebugServer) writeHelp(w io.Writer) {
	fmt.Fprintln(w, "ips debug commands (one per connection):")
	fmt.Fprintln(w, "  help    this text")
	fmt.Fprintln(w, "  stats   instance counters (profiles, queries, writes, hit ratio)")
	fmt.Fprintln(w, "  stages  per-stage latency histograms from the request tracer")
	fmt.Fprintln(w, "  slow    retained slow-query span trees, oldest first")
	fmt.Fprintln(w, "  trace   the most recently sampled request's span tree")
	fmt.Fprintln(w, "  all     everything above")
}

func (d *DebugServer) writeStats(w io.Writer) {
	st := d.in.Stats()
	fmt.Fprintf(w, "instance %s region %s\n", st.Name, st.Region)
	fmt.Fprintf(w, "profiles=%d mem=%dB hit=%.1f%%\n", st.Profiles, st.MemUsage, st.HitRatioPct)
	fmt.Fprintf(w, "queries=%d writes=%d rejected=%d flush_errors=%d\n",
		st.Queries, st.Writes, st.Rejected, st.FlushErrors)
	fmt.Fprintf(w, "migrate: out=%d in=%d marked=%d released=%d bytes_out=%d bytes_in=%d\n",
		d.in.MigratedOut.Value(), d.in.MigratedIn.Value(), d.in.MigrateMarked.Value(),
		d.in.MigrateReleased.Value(), d.in.MigrateBytesOut.Value(), d.in.MigrateBytesIn.Value())
	h := d.in.Hub()
	fmt.Fprintf(w, "sub: active=%d watched=%d evals=%d eval_errors=%d skips=%d pushes=%d drops=%d resyncs=%d push_p99=%v\n",
		h.Active.Value(), h.Watched.Value(), h.Evals.Value(), h.EvalErrs.Value(),
		h.Skips.Value(), h.Pushes.Value(), h.Drops.Value(), h.Resyncs.Value(),
		h.NotifyLat.Quantile(0.99))
	tables := d.in.Tables()
	sort.Strings(tables)
	for _, tbl := range tables {
		cs, err := d.in.CacheStats(tbl)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "table %s: load_waits=%d hot_resident=%d hot_hits=%d hot_promotions=%d hot_invalidations=%d\n",
			tbl, cs.LoadWaits, cs.HotResident, cs.HotHits, cs.HotPromotions, cs.HotInvalidations)
		fmt.Fprintf(w, "table %s tiers: warm_usage=%dB warm_resident=%d demotions=%d warm_hits=%d warm_misses=%d warm_evictions=%d shard_scans=%d\n",
			tbl, cs.WarmUsage, cs.WarmResident, cs.Demotions, cs.WarmHits, cs.WarmMisses, cs.WarmEvictions, cs.ShardScans)
	}
}

func (d *DebugServer) writeStages(w io.Writer) {
	tr := d.in.Tracer()
	if tr == nil {
		fmt.Fprintln(w, "tracing disabled (start ipsd with -trace-sample N)")
		return
	}
	tr.Stats().Format(w)
}

func (d *DebugServer) writeSlow(w io.Writer) {
	entries, seen := d.in.Tracer().SlowDump()
	if seen == 0 {
		fmt.Fprintln(w, "slow-query log empty")
		return
	}
	fmt.Fprintf(w, "slow queries: %d seen, %d retained\n", seen, len(entries))
	// Oldest first as SlowDump returns them; a duration index up front so
	// an operator can spot the worst retained trace without scrolling.
	worst := 0
	for i, e := range entries {
		if e.Total > entries[worst].Total {
			worst = i
		}
	}
	fmt.Fprintf(w, "worst retained: trace %#x total=%v\n", entries[worst].TraceID, entries[worst].Total)
	for _, e := range entries {
		io.WriteString(w, e.Rendered)
	}
}

func (d *DebugServer) writeTrace(w io.Writer) {
	tr := d.in.Tracer().LastSampled()
	if tr == nil {
		fmt.Fprintln(w, "no sampled trace yet")
		return
	}
	spans := tr.Spans()
	// Spans() returns append order; render wants no particular order but
	// stable output helps operators diff two snapshots.
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].ID < spans[b].ID })
	trace.RenderTree(w, tr.ID, spans)
}

// Listen binds the debug endpoint to addr (":0" for ephemeral) and starts
// the accept loop. It returns the bound address.
func (d *DebugServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (d *DebugServer) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			// A debug snapshot is advisory output on a connection the peer
			// is about to discard — nothing durable rides on Close/Flush.
			defer func() { _ = conn.Close() }()
			// One command per connection: read a line, answer, hang up.
			sc := bufio.NewScanner(conn)
			cmd := ""
			if sc.Scan() {
				cmd = sc.Text()
			}
			bw := bufio.NewWriter(conn)
			_ = d.WriteSnapshot(bw, cmd)
			_ = bw.Flush()
		}()
	}
}

// Close stops the accept loop and waits for in-flight connections.
func (d *DebugServer) Close() error {
	d.mu.Lock()
	ln := d.ln
	d.ln = nil
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	d.wg.Wait()
	return err
}
