package compact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ips/internal/config"
	"ips/internal/model"
	"ips/internal/query"
)

// TestCompactionQueryEquivalenceProperty is the strongest statement of
// "compaction does not drop any data" (§III-D): for SUM-reduced schemas,
// a full-horizon top-K query returns the identical feature list — same
// FIDs, same counts, same order — before and after compaction.
func TestCompactionQueryEquivalenceProperty(t *testing.T) {
	sch := model.NewSchema("like", "share")
	dim := config.DefaultTimeDimension()
	const day = model.Millis(24 * 3600 * 1000)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		now := 400 * day
		p := model.NewProfile(1)
		p.Lock()
		for i := 0; i < 300; i++ {
			age := model.Millis(rng.Int63n(int64(300 * day)))
			if err := p.Add(sch, now-age, 1000,
				model.SlotID(rng.Intn(3)), model.TypeID(rng.Intn(2)),
				model.FeatureID(rng.Intn(40)), []int64{rng.Int63n(5), rng.Int63n(3)}); err != nil {
				p.Unlock()
				return false
			}
		}
		p.Unlock()

		req := query.Request{
			Slot: 1, Type: 1,
			Range:  query.AbsoluteRange(0, now+1),
			SortBy: query.ByAction, Action: "like",
		}
		before, err := query.Run(p, sch, req, now)
		if err != nil {
			return false
		}
		p.Lock()
		CompactProfile(p, sch, dim, now)
		p.Unlock()
		after, err := query.Run(p, sch, req, now)
		if err != nil {
			return false
		}
		if len(before.Features) != len(after.Features) {
			return false
		}
		for i := range before.Features {
			b, a := before.Features[i], after.Features[i]
			if b.FID != a.FID || len(b.Counts) != len(a.Counts) {
				return false
			}
			for j := range b.Counts {
				if b.Counts[j] != a.Counts[j] {
					return false
				}
			}
		}
		// Compaction must also actually compact (fewer slices scanned).
		return after.SlicesScanned <= before.SlicesScanned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkMonotoneProperty: shrinking with a larger retain budget never
// keeps fewer features, and every kept feature under the smaller budget is
// also kept under the larger one (per slice/slot/type, scores are fixed,
// so retained sets are nested).
func TestShrinkMonotoneProperty(t *testing.T) {
	sch := model.NewSchema("n")
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		build := func() *model.Profile {
			rng := rand.New(rand.NewSource(seed))
			p := model.NewProfile(1)
			p.Lock()
			for i := 0; i < 100; i++ {
				_ = p.Add(sch, model.Millis(1+rng.Intn(5000)), 100_000, 1, 1,
					model.FeatureID(rng.Intn(50)), []int64{rng.Int63n(20)})
			}
			p.Unlock()
			return p
		}
		small, large := build(), build()
		small.Lock()
		ShrinkProfile(small, config.ShrinkPolicy{DefaultRetain: k}, 10_000)
		small.Unlock()
		large.Lock()
		ShrinkProfile(large, config.ShrinkPolicy{DefaultRetain: k + 5}, 10_000)
		large.Unlock()

		if small.NumFeatures() > large.NumFeatures() {
			return false
		}
		// Nesting: every fid surviving the small budget survives the
		// large one.
		smallSet := map[model.FeatureID]bool{}
		for _, s := range small.Slices() {
			if set := s.Slot(1); set != nil {
				if fs := set.Get(1); fs != nil {
					fs.Each(func(st model.FeatureStat) { smallSet[st.FID] = true })
				}
			}
		}
		largeSet := map[model.FeatureID]bool{}
		for _, s := range large.Slices() {
			if set := s.Slot(1); set != nil {
				if fs := set.Get(1); fs != nil {
					fs.Each(func(st model.FeatureStat) { largeSet[st.FID] = true })
				}
			}
		}
		for fid := range smallSet {
			if !largeSet[fid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
