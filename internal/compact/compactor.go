package compact

import (
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/config"
	"ips/internal/metrics"
	"ips/internal/model"
)

// Compactor runs profile maintenance asynchronously in a dedicated worker
// pool with capped parallelism, keeping compaction off the serving path
// (§III-D: "migrate the compaction out of the main serving path and
// delegate them to run asynchronously in a dedicated thread pool with
// capped parallelism").
type Compactor struct {
	schema *model.Schema
	cfgs   *config.Store
	now    func() model.Millis

	// OnMaintain, when set, is called after each maintenance pass with
	// the profile's memory delta (after - before). The cache layer uses
	// it to keep its usage accounting truthful and to re-queue the
	// compacted profile for flushing. Must be set before Start.
	OnMaintain func(id model.ProfileID, delta int64)

	// LogMaintain, when set, journals the maintenance pass (with the
	// wall-clock AND config snapshot it will run with) under the profile
	// lock before Maintain mutates anything, so crash recovery can re-run
	// the same truncation deterministically even if the config was
	// hot-reloaded between the pass and the crash. The returned LSN
	// becomes the profile's WalLSN watermark; an error skips the pass (the
	// next write re-enqueues it). Must be set before Start.
	LogMaintain func(id model.ProfileID, now model.Millis, cfg config.Config) (uint64, error)

	// Observe, when set, receives each maintenance pass's wall-clock
	// duration (the tracing layer aggregates these into the compact.pass
	// histogram). Must be set before Start.
	Observe func(d time.Duration)

	queue   chan *model.Profile
	queued  sync.Map // ProfileID -> struct{}, dedupes pending work
	wg      sync.WaitGroup
	stop    chan struct{}
	stopped atomic.Bool

	// Metrics.
	Runs     metrics.Counter
	Partial  metrics.Counter
	Dropped  metrics.Counter // enqueue attempts rejected because the queue was full
	BytesCut metrics.Counter
}

// NewCompactor creates a compactor reading live config from cfgs; now
// supplies query time (injectable for simulation). Call Start to launch the
// pool and Close to drain it.
func NewCompactor(schema *model.Schema, cfgs *config.Store, now func() model.Millis) *Compactor {
	return &Compactor{
		schema: schema,
		cfgs:   cfgs,
		now:    now,
		queue:  make(chan *model.Profile, 4096),
		stop:   make(chan struct{}),
	}
}

// Start launches the worker pool sized by the current config's
// CompactParallelism.
func (c *Compactor) Start() {
	n := c.cfgs.Get().CompactParallelism
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		c.wg.Add(1)
		go c.worker()
	}
}

// Enqueue schedules maintenance for p. Duplicate requests for a profile
// already queued are coalesced; a full queue drops the request (the next
// write will retry), which bounds memory under overload.
func (c *Compactor) Enqueue(p *model.Profile) {
	if c.stopped.Load() {
		return
	}
	if _, loaded := c.queued.LoadOrStore(p.ID, struct{}{}); loaded {
		return
	}
	select {
	case c.queue <- p:
	default:
		c.queued.Delete(p.ID)
		c.Dropped.Inc()
	}
}

// Close stops the pool after draining queued work.
func (c *Compactor) Close() {
	if c.stopped.Swap(true) {
		return
	}
	close(c.stop)
	c.wg.Wait()
}

func (c *Compactor) worker() {
	defer c.wg.Done()
	for {
		select {
		case p := <-c.queue:
			c.queued.Delete(p.ID)
			c.runOne(p)
		case <-c.stop:
			// Drain remaining work before exiting.
			for {
				select {
				case p := <-c.queue:
					c.queued.Delete(p.ID)
					c.runOne(p)
				default:
					return
				}
			}
		}
	}
}

// runOne performs one maintenance pass under the profile lock.
func (c *Compactor) runOne(p *model.Profile) {
	cfg := c.cfgs.Get()
	now := c.now()
	start := time.Now()
	defer func() {
		if c.Observe != nil {
			c.Observe(time.Since(start))
		}
	}()
	p.Lock()
	if c.LogMaintain != nil {
		lsn, err := c.LogMaintain(p.ID, now, cfg)
		if err != nil {
			p.Unlock()
			return
		}
		if lsn > p.WalLSN {
			p.WalLSN = lsn
		}
	}
	st := Maintain(p, c.schema, cfg, now)
	p.Dirty = true // the compacted shape must reach storage eventually
	p.Unlock()
	c.Runs.Inc()
	if st.Partial {
		c.Partial.Inc()
	}
	if cut := st.BytesBefore - st.BytesAfter; cut > 0 {
		c.BytesCut.Add(cut)
	}
	if c.OnMaintain != nil {
		c.OnMaintain(p.ID, st.BytesAfter-st.BytesBefore)
	}
}

// RunSync performs one synchronous maintenance pass, for tests and the
// harness.
func (c *Compactor) RunSync(p *model.Profile) Stats {
	cfg := c.cfgs.Get()
	now := c.now()
	p.Lock()
	defer p.Unlock()
	if c.LogMaintain != nil {
		lsn, err := c.LogMaintain(p.ID, now, cfg)
		if err != nil {
			return Stats{}
		}
		if lsn > p.WalLSN {
			p.WalLSN = lsn
		}
	}
	return Maintain(p, c.schema, cfg, now)
}
