// Package compact implements the profile-maintenance mechanisms of §III-D:
//
//   - Compact merges runs of consecutive slices into coarser slices
//     according to the table's time-dimension config, trading time
//     precision for memory (Fig. 10, Listings 2–3).
//   - Truncate drops history past a slice-count or age bound (Fig. 11).
//   - Shrink eliminates low-value long-tail features while honouring data
//     freshness, multi-dimensional sorting and long-term/short-term balance
//     (Listing 4).
//
// A Compactor runs these asynchronously in a dedicated pool with capped
// parallelism so maintenance never runs on the serving path, and chooses
// between full and partial compaction based on profile size.
package compact

import (
	"sort"

	"ips/internal/config"
	"ips/internal/model"
)

// Stats summarises what one maintenance pass changed.
type Stats struct {
	SlicesBefore, SlicesAfter     int
	FeaturesBefore, FeaturesAfter int
	BytesBefore, BytesAfter       int64
	// Partial reports that only the recent bands were compacted.
	Partial bool
}

// CompactProfile merges the profile's slices to the widths prescribed by
// the time-dimension config, evaluated at the given "now". The head band
// (finest width) is left slice-aligned as written; older slices merge into
// aligned buckets of their band's width. Caller must hold the profile's
// Lock.
//
// Compaction drops no data: every feature count lands in exactly one output
// slice, aggregated under the schema's reduce functions.
func CompactProfile(p *model.Profile, schema *model.Schema, td config.TimeDimension, now model.Millis) Stats {
	return compactProfile(p, schema, td, now, false)
}

// PartialCompactProfile compacts only slices younger than the coarsest
// band, leaving deep history untouched. The paper uses partial compaction
// to bound CPU time per request under load (§III-D); the trade-off is that
// old bands may temporarily hold more slices than the config prescribes.
func PartialCompactProfile(p *model.Profile, schema *model.Schema, td config.TimeDimension, now model.Millis) Stats {
	return compactProfile(p, schema, td, now, true)
}

func compactProfile(p *model.Profile, schema *model.Schema, td config.TimeDimension, now model.Millis, partial bool) Stats {
	st := Stats{
		SlicesBefore:   p.NumSlices(),
		FeaturesBefore: p.NumFeatures(),
		BytesBefore:    p.MemSize(),
		Partial:        partial,
	}
	slices := p.Slices()
	if len(slices) == 0 {
		st.SlicesAfter, st.FeaturesAfter, st.BytesAfter = 0, 0, st.BytesBefore
		return st
	}

	// partialCutoff: in partial mode, slices older than this age are kept
	// verbatim (skip the coarsest band, which is the most expensive to
	// rebuild and changes least often).
	partialCutoff := int64(1) << 62
	if partial && len(td) > 1 {
		partialCutoff = td[len(td)-1].From.Millis()
	}

	var out []*model.Slice
	var cur *model.Slice // current accumulation bucket
	var curBucketEnd, curBucketStart model.Millis

	flush := func() {
		if cur != nil {
			out = append(out, cur)
			cur = nil
		}
	}

	// Slices are newest first. Walk them, assigning each to an aligned
	// bucket of its band's width; consecutive slices in the same bucket
	// merge (Fig. 10).
	for _, s := range slices {
		age := now - s.End
		if age < 0 {
			age = 0
		}
		if age >= partialCutoff {
			flush()
			out = append(out, s)
			continue
		}
		w := td.WidthForAge(age)
		if w <= 0 {
			w = 1000
		}
		bStart := s.Start - s.Start%w
		bEnd := bStart + w
		if s.End > bEnd {
			// Slice wider than its target bucket (already coarser, e.g.
			// after a config change): keep it whole.
			flush()
			out = append(out, s)
			continue
		}
		if cur != nil && bStart == curBucketStart && bEnd == curBucketEnd {
			cur.MergeFrom(schema, s)
			continue
		}
		flush()
		if s.Width() == w && s.Start == bStart {
			// Already exactly the target bucket: adopt without copying.
			cur = s
		} else {
			cur = model.NewSlice(s.Start, s.End)
			cur.MergeFrom(schema, s)
		}
		curBucketStart, curBucketEnd = bStart, bEnd
	}
	flush()

	p.ReplaceSlices(out)
	st.SlicesAfter = p.NumSlices()
	st.FeaturesAfter = p.NumFeatures()
	st.BytesAfter = p.MemSize()
	return st
}

// TruncateByCount keeps only the newest n slices (Fig. 11). Caller must
// hold the profile's Lock.
func TruncateByCount(p *model.Profile, n int) Stats {
	st := Stats{SlicesBefore: p.NumSlices(), FeaturesBefore: p.NumFeatures(), BytesBefore: p.MemSize()}
	if n >= 0 && p.NumSlices() > n {
		p.ReplaceSlices(append([]*model.Slice(nil), p.Slices()[:n]...))
	}
	st.SlicesAfter = p.NumSlices()
	st.FeaturesAfter = p.NumFeatures()
	st.BytesAfter = p.MemSize()
	return st
}

// TruncateByAge drops slices that ended more than maxAge milliseconds
// before now. Caller must hold the profile's Lock.
func TruncateByAge(p *model.Profile, maxAge model.Millis, now model.Millis) Stats {
	st := Stats{SlicesBefore: p.NumSlices(), FeaturesBefore: p.NumFeatures(), BytesBefore: p.MemSize()}
	cutoff := now - maxAge
	slices := p.Slices()
	keep := len(slices)
	for keep > 0 && slices[keep-1].End <= cutoff {
		keep--
	}
	if keep < len(slices) {
		p.ReplaceSlices(append([]*model.Slice(nil), slices[:keep]...))
	}
	st.SlicesAfter = p.NumSlices()
	st.FeaturesAfter = p.NumFeatures()
	st.BytesAfter = p.MemSize()
	return st
}

// ShrinkProfile eliminates long-tail features per the policy: within each
// (slice, slot, type) it scores features by the weighted sum of their
// counts plus a freshness boost for recent slices, then keeps the top
// RetainFor(slot). Caller must hold the profile's Lock.
//
// Freshness (§III-D): a feature observed recently keeps a boosted score
// even with low counts, so shrink preferentially drops old cold features —
// while features in old slices with high counts (long-term interests)
// still survive, balancing short and long term.
func ShrinkProfile(p *model.Profile, policy config.ShrinkPolicy, now model.Millis) Stats {
	st := Stats{SlicesBefore: p.NumSlices(), FeaturesBefore: p.NumFeatures(), BytesBefore: p.MemSize()}
	horizon := now - oldestStart(p)
	if horizon <= 0 {
		horizon = 1
	}
	for _, s := range p.Slices() {
		// Freshness in [0,1]: 1 for the newest slice, →0 for the oldest.
		age := float64(now - s.End)
		if age < 0 {
			age = 0
		}
		fresh := 1 - age/float64(horizon)
		if fresh < 0 {
			fresh = 0
		}
		s.EachSlot(func(slot model.SlotID, set *model.InstanceSet) {
			retain := policy.RetainFor(slot)
			if retain <= 0 {
				return // shrinking disabled for this slot
			}
			set.Each(func(_ model.TypeID, fs *model.FeatureStats) {
				shrinkStats(fs, retain, policy, fresh)
			})
		})
	}
	// Recompute cached sizes after in-place feature removal.
	p.ReplaceSlices(p.Slices())
	st.SlicesAfter = p.NumSlices()
	st.FeaturesAfter = p.NumFeatures()
	st.BytesAfter = p.MemSize()
	return st
}

func oldestStart(p *model.Profile) model.Millis {
	slices := p.Slices()
	if len(slices) == 0 {
		return 0
	}
	return slices[len(slices)-1].Start
}

func shrinkStats(fs *model.FeatureStats, retain int, policy config.ShrinkPolicy, fresh float64) {
	if fs.Len() <= retain {
		return
	}
	type scored struct {
		fid   model.FeatureID
		score float64
	}
	scoredList := make([]scored, 0, fs.Len())
	fs.Each(func(st model.FeatureStat) {
		scoredList = append(scoredList, scored{st.FID, score(st.Counts, policy, fresh)})
	})
	sort.Slice(scoredList, func(i, j int) bool {
		if scoredList[i].score != scoredList[j].score {
			return scoredList[i].score > scoredList[j].score
		}
		return scoredList[i].fid < scoredList[j].fid
	})
	keep := make(map[model.FeatureID]bool, retain)
	for _, sc := range scoredList[:retain] {
		keep[sc.fid] = true
	}
	fs.Retain(func(st model.FeatureStat) bool { return keep[st.FID] })
}

// score implements multi-dimensional sorting: a weighted sum across action
// counts, boosted by slice freshness.
func score(counts []int64, policy config.ShrinkPolicy, fresh float64) float64 {
	var s float64
	for i, c := range counts {
		w := 1.0
		if policy.ActionWeights != nil && i < len(policy.ActionWeights) {
			w = policy.ActionWeights[i]
		}
		s += w * float64(c)
	}
	return s * (1 + policy.FreshnessBoost*fresh)
}

// Maintain runs the full maintenance pass — compact (full or partial by
// slice count), truncate, shrink — in the order production uses. Caller
// must hold the profile's Lock.
func Maintain(p *model.Profile, schema *model.Schema, cfg config.Config, now model.Millis) Stats {
	before := Stats{SlicesBefore: p.NumSlices(), FeaturesBefore: p.NumFeatures(), BytesBefore: p.MemSize()}

	partial := cfg.PartialCompactThreshold > 0 && p.NumSlices() <= cfg.PartialCompactThreshold
	var st Stats
	if partial {
		st = PartialCompactProfile(p, schema, cfg.TimeDimension, now)
	} else {
		st = CompactProfile(p, schema, cfg.TimeDimension, now)
	}
	if cfg.Truncate.MaxSlices > 0 {
		TruncateByCount(p, cfg.Truncate.MaxSlices)
	}
	if cfg.Truncate.MaxAge > 0 {
		TruncateByAge(p, cfg.Truncate.MaxAge.Millis(), now)
	} else if h := cfg.TimeDimension.Horizon(); h > 0 {
		// Data past the time-dimension horizon has no configured band and
		// is dropped, matching production behaviour.
		TruncateByAge(p, h, now)
	}
	if cfg.Shrink.DefaultRetain > 0 || len(cfg.Shrink.PerSlot) > 0 {
		ShrinkProfile(p, cfg.Shrink, now)
	}

	return Stats{
		SlicesBefore:   before.SlicesBefore,
		SlicesAfter:    p.NumSlices(),
		FeaturesBefore: before.FeaturesBefore,
		FeaturesAfter:  p.NumFeatures(),
		BytesBefore:    before.BytesBefore,
		BytesAfter:     p.MemSize(),
		Partial:        st.Partial,
	}
}
