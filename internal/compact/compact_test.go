package compact

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ips/internal/config"
	"ips/internal/model"
)

func td(t *testing.T, raw map[string][2]string) config.TimeDimension {
	t.Helper()
	d, err := config.ParseTimeDimension(raw)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// totalCount sums a fid's count across all slices — compaction must keep
// this invariant ("Compaction does not drop any data").
func totalCount(p *model.Profile, slot model.SlotID, typ model.TypeID, fid model.FeatureID) int64 {
	var total int64
	for _, s := range p.Slices() {
		if set := s.Slot(slot); set != nil {
			if fs := set.Get(typ); fs != nil {
				if c := fs.Get(fid); c != nil {
					total += c[0]
				}
			}
		}
	}
	return total
}

func TestCompactFig10(t *testing.T) {
	// Fig. 10 / Listing 2: slices in the 10m..1h age band are merged into
	// 10-minute buckets; a list of six 5-minute slices becomes three.
	sch := model.NewSchema("n")
	dim := td(t, map[string][2]string{
		"5m":  {"0s", "10m"},
		"10m": {"10m", "1h"},
	})
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	const min = 60_000
	now := model.Millis(100 * min)
	// Six 5-minute slices covering [50m,80m), i.e. ages 20m..50m (all
	// inside the 10m band), aligned so pairs share 10-minute buckets.
	for i := 0; i < 6; i++ {
		ts := now - model.Millis(50*min) + model.Millis(i*5*min) + 1
		if err := p.Add(sch, ts, 5*min, 1, 1, 42, []int64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumSlices() != 6 {
		t.Fatalf("setup slices = %d, want 6", p.NumSlices())
	}
	st := CompactProfile(p, sch, dim, now)
	if st.SlicesAfter != 3 {
		t.Fatalf("slices after compact = %d, want 3 (Fig. 10)", st.SlicesAfter)
	}
	if got := totalCount(p, 1, 1, 42); got != 6 {
		t.Fatalf("total count = %d, want 6 (no data loss)", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactPreservesCountsProperty(t *testing.T) {
	// Property: compaction never changes any fid's windowed SUM total.
	sch := model.NewSchema("n")
	dim := config.DefaultTimeDimension()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := model.NewProfile(1)
		p.Lock()
		defer p.Unlock()
		now := model.Millis(400 * 24 * 3600 * 1000)
		writes := int(n)%100 + 1
		for i := 0; i < writes; i++ {
			age := model.Millis(rng.Int63n(360 * 24 * 3600 * 1000))
			if err := p.Add(sch, now-age, 1000, 1, 1, model.FeatureID(rng.Intn(5)), []int64{1}); err != nil {
				return false
			}
		}
		var before [5]int64
		for fid := model.FeatureID(0); fid < 5; fid++ {
			before[fid] = totalCount(p, 1, 1, fid)
		}
		CompactProfile(p, sch, dim, now)
		if err := p.CheckInvariants(); err != nil {
			return false
		}
		for fid := model.FeatureID(0); fid < 5; fid++ {
			if totalCount(p, 1, 1, fid) != before[fid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactIdempotent(t *testing.T) {
	sch := model.NewSchema("n")
	dim := config.DefaultTimeDimension()
	rng := rand.New(rand.NewSource(4))
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	now := model.Millis(40 * 24 * 3600 * 1000)
	for i := 0; i < 500; i++ {
		age := model.Millis(rng.Int63n(29 * 24 * 3600 * 1000))
		_ = p.Add(sch, now-age, 1000, 1, 1, 7, []int64{1})
	}
	CompactProfile(p, sch, dim, now)
	first := p.NumSlices()
	CompactProfile(p, sch, dim, now)
	if p.NumSlices() != first {
		t.Fatalf("second compact changed slice count %d -> %d", first, p.NumSlices())
	}
}

func TestCompactReducesSliceCount(t *testing.T) {
	// A year of hourly activity collapses dramatically under Listing 3.
	sch := model.NewSchema("n")
	dim := config.DefaultTimeDimension()
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	const hour = 3600 * 1000
	now := model.Millis(366 * 24 * hour)
	for h := 0; h < 364*24; h += 6 {
		_ = p.Add(sch, now-model.Millis(h)*hour-5, 1000, 1, 1, 3, []int64{1})
	}
	before := p.NumSlices()
	st := CompactProfile(p, sch, dim, now)
	if st.SlicesAfter >= before/10 {
		t.Fatalf("compact %d -> %d; expected >10x reduction", before, st.SlicesAfter)
	}
	if totalCount(p, 1, 1, 3) != 364*24/6 {
		t.Fatal("compaction lost data")
	}
}

func TestPartialCompactLeavesOldBands(t *testing.T) {
	sch := model.NewSchema("n")
	dim := config.DefaultTimeDimension() // coarsest band starts at 30d
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	const day = 24 * 3600 * 1000
	now := model.Millis(400 * day)
	// Ten 1-day-aligned slices at ages 40..49 days (inside 30d..365d band)
	// and some recent minutes.
	for i := 0; i < 10; i++ {
		_ = p.Add(sch, now-model.Millis(40+i)*day, day, 1, 1, 9, []int64{1})
	}
	for i := 0; i < 5; i++ {
		_ = p.Add(sch, now-model.Millis(i*90_000), 1000, 1, 1, 9, []int64{1})
	}
	st := PartialCompactProfile(p, sch, dim, now)
	if !st.Partial {
		t.Fatal("stats should mark partial")
	}
	// The ten day-old slices are older than the coarsest band's From (30d)
	// so they are untouched; a full compact would merge them into one 30d
	// bucket.
	var oldSlices int
	for _, s := range p.Slices() {
		if now-s.End >= 30*day {
			oldSlices++
		}
	}
	if oldSlices != 10 {
		t.Fatalf("old slices = %d, want 10 (untouched by partial)", oldSlices)
	}
	full := CompactProfile(p, sch, dim, now)
	var oldAfterFull int
	for _, s := range p.Slices() {
		if now-s.End >= 30*day {
			oldAfterFull++
		}
	}
	if oldAfterFull >= 10 {
		t.Fatalf("full compact kept %d old slices (stats: %+v)", oldAfterFull, full)
	}
}

func TestTruncateByCountFig11(t *testing.T) {
	// Fig. 11: truncate-by-count keeps the first (newest) five slices.
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	for i := 0; i < 8; i++ {
		_ = p.Add(sch, model.Millis(1000+i*1000), 1000, 1, 1, model.FeatureID(i), []int64{1})
	}
	st := TruncateByCount(p, 5)
	if st.SlicesAfter != 5 {
		t.Fatalf("slices = %d, want 5", st.SlicesAfter)
	}
	// The newest five survive: fids 3..7 wrote slices with the highest
	// timestamps.
	for fid := model.FeatureID(3); fid <= 7; fid++ {
		if totalCount(p, 1, 1, fid) != 1 {
			t.Fatalf("fid %d should survive truncate", fid)
		}
	}
	if totalCount(p, 1, 1, 0) != 0 {
		t.Fatal("oldest slice should be dropped")
	}
	// No-op when already under the bound.
	st = TruncateByCount(p, 100)
	if st.SlicesAfter != 5 {
		t.Fatal("over-large bound should be a no-op")
	}
}

func TestTruncateByAge(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	const day = 24 * 3600 * 1000
	now := model.Millis(100 * day)
	for _, age := range []model.Millis{1, 5, 40, 80} {
		_ = p.Add(sch, now-age*day, 1000, 1, 1, model.FeatureID(age), []int64{1})
	}
	st := TruncateByAge(p, 30*day, now)
	if st.SlicesAfter != 2 {
		t.Fatalf("slices = %d, want 2", st.SlicesAfter)
	}
	if totalCount(p, 1, 1, 40) != 0 || totalCount(p, 1, 1, 1) != 1 {
		t.Fatal("wrong slices dropped")
	}
}

func TestShrinkKeepsTopFeatures(t *testing.T) {
	sch := model.NewSchema("like", "share")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	// One slice, 20 features with increasing like counts.
	for fid := model.FeatureID(1); fid <= 20; fid++ {
		_ = p.Add(sch, 5000, 1000, 1, 1, fid, []int64{int64(fid), 0})
	}
	policy := config.ShrinkPolicy{DefaultRetain: 5}
	st := ShrinkProfile(p, policy, 6000)
	if st.FeaturesAfter != 5 {
		t.Fatalf("features after shrink = %d, want 5", st.FeaturesAfter)
	}
	for fid := model.FeatureID(16); fid <= 20; fid++ {
		if totalCount(p, 1, 1, fid) == 0 {
			t.Fatalf("high-count fid %d should survive", fid)
		}
	}
	if totalCount(p, 1, 1, 1) != 0 {
		t.Fatal("long-tail fid 1 should be eliminated")
	}
}

func TestShrinkPerSlotConfig(t *testing.T) {
	// Listing 4: per-slot retention counts.
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	for fid := model.FeatureID(1); fid <= 10; fid++ {
		_ = p.Add(sch, 5000, 1000, 1, 1, fid, []int64{int64(fid)})
		_ = p.Add(sch, 5000, 1000, 2, 1, fid, []int64{int64(fid)})
		_ = p.Add(sch, 5000, 1000, 3, 1, fid, []int64{int64(fid)})
	}
	policy := config.ShrinkPolicy{PerSlot: map[uint32]int{1: 2, 2: 7}, DefaultRetain: 0}
	ShrinkProfile(p, policy, 6000)
	count := func(slot model.SlotID) int {
		n := 0
		for fid := model.FeatureID(1); fid <= 10; fid++ {
			if totalCount(p, slot, 1, fid) > 0 {
				n++
			}
		}
		return n
	}
	if count(1) != 2 || count(2) != 7 {
		t.Fatalf("per-slot retain = %d/%d, want 2/7", count(1), count(2))
	}
	if count(3) != 10 {
		t.Fatalf("slot 3 (retain 0 = disabled) = %d, want 10", count(3))
	}
}

func TestShrinkMultiDimensionalWeights(t *testing.T) {
	// A feature with many shares must outrank one with slightly more likes
	// when shares are weighted heavily.
	sch := model.NewSchema("like", "share")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	_ = p.Add(sch, 5000, 1000, 1, 1, 100, []int64{10, 0}) // liked
	_ = p.Add(sch, 5000, 1000, 1, 1, 200, []int64{2, 5})  // shared
	policy := config.ShrinkPolicy{DefaultRetain: 1, ActionWeights: []float64{1, 10}}
	ShrinkProfile(p, policy, 6000)
	if totalCount(p, 1, 1, 200) == 0 {
		t.Fatal("share-weighted feature should survive")
	}
	if totalCount(p, 1, 1, 100) != 0 {
		t.Fatal("like-only feature should be eliminated")
	}
}

func TestShrinkFreshnessBalance(t *testing.T) {
	// Data freshness: within the same retain budget, a recent low-count
	// feature beats an old feature with the same count, because the recent
	// slice's score is boosted. Both are in separate slices; shrink is
	// per-slice so craft one slice with two features and tie counts, then
	// check the boost applies via slice age across two profiles.
	sch := model.NewSchema("n")

	// Profile A: tie in an old slice vs fresh slice — keep budgets at 1
	// per (slice,slot,type); the per-slice shrink keeps the best feature
	// in each slice independently, so we verify the boost through scores:
	// an old slice with counts {5} loses to a fresh slice with counts {4}
	// only if shrink removed across slices — it does not. Instead verify
	// the score function directly.
	policy := config.ShrinkPolicy{DefaultRetain: 1, FreshnessBoost: 1.0}
	oldScore := score([]int64{5}, policy, 0.0)
	freshScore := score([]int64{4}, policy, 1.0)
	if freshScore <= oldScore {
		t.Fatalf("freshness boost broken: fresh %f <= old %f", freshScore, oldScore)
	}
	_ = sch
}

func TestMaintainFullPipeline(t *testing.T) {
	sch := model.NewSchema("n")
	cfg := config.Default()
	cfg.Shrink.DefaultRetain = 50
	cfg.Truncate.MaxSlices = 70
	p := model.NewProfile(1)
	p.Lock()
	rng := rand.New(rand.NewSource(8))
	const day = 24 * 3600 * 1000
	now := model.Millis(400 * day)
	for i := 0; i < 3000; i++ {
		age := model.Millis(rng.Int63n(380 * day))
		_ = p.Add(sch, now-age, 1000, model.SlotID(rng.Intn(3)), 1, model.FeatureID(rng.Intn(200)), []int64{1})
	}
	st := Maintain(p, sch, cfg, now)
	err := p.CheckInvariants()
	p.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if st.SlicesAfter > 70 {
		t.Fatalf("slices = %d, beyond truncate bound", st.SlicesAfter)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("maintenance did not reduce memory: %d -> %d", st.BytesBefore, st.BytesAfter)
	}
}

func TestMaintainDropsPastHorizon(t *testing.T) {
	// With no explicit truncate policy, data past the time-dimension
	// horizon (365d in Listing 3) is dropped.
	sch := model.NewSchema("n")
	cfg := config.Default()
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	const day = 24 * 3600 * 1000
	now := model.Millis(1000 * day)
	_ = p.Add(sch, now-500*day, 1000, 1, 1, 1, []int64{1})
	_ = p.Add(sch, now-2*day, 1000, 1, 1, 2, []int64{1})
	Maintain(p, sch, cfg, now)
	if totalCount(p, 1, 1, 1) != 0 {
		t.Fatal("data past the horizon should be dropped")
	}
	if totalCount(p, 1, 1, 2) != 1 {
		t.Fatal("recent data should survive")
	}
}

func TestCompactorAsync(t *testing.T) {
	sch := model.NewSchema("n")
	cfg := config.Default()
	cfg.CompactParallelism = 2
	store, err := config.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const day = 24 * 3600 * 1000
	now := model.Millis(40 * day)
	c := NewCompactor(sch, store, func() model.Millis { return now })
	c.Start()

	profiles := make([]*model.Profile, 20)
	for i := range profiles {
		p := model.NewProfile(model.ProfileID(i))
		p.Lock()
		for h := 0; h < 200; h++ {
			_ = p.Add(sch, now-model.Millis(h)*3600*1000-7, 1000, 1, 1, 5, []int64{1})
		}
		p.Unlock()
		profiles[i] = p
		c.Enqueue(p)
		c.Enqueue(p) // duplicate: must coalesce
	}
	c.Close()

	if got := c.Runs.Value(); got != 20 {
		t.Fatalf("runs = %d, want 20 (dedupe + drain)", got)
	}
	for _, p := range profiles {
		p.RLock()
		n := p.NumSlices()
		p.RUnlock()
		if n >= 200 {
			t.Fatalf("profile not compacted: %d slices", n)
		}
	}
}

func TestCompactorEnqueueAfterClose(t *testing.T) {
	store, _ := config.NewStore(config.Default())
	c := NewCompactor(model.NewSchema("n"), store, func() model.Millis { return 1000 })
	c.Start()
	c.Close()
	c.Close()                      // double close is safe
	c.Enqueue(model.NewProfile(1)) // no-op, no panic
	if c.Runs.Value() != 0 {
		t.Fatal("no runs expected after close")
	}
}

func TestCompactorRunSync(t *testing.T) {
	store, _ := config.NewStore(config.Default())
	sch := model.NewSchema("n")
	now := model.Millis(40 * 24 * 3600 * 1000)
	c := NewCompactor(sch, store, func() model.Millis { return now })
	p := model.NewProfile(1)
	p.Lock()
	for h := 0; h < 100; h++ {
		_ = p.Add(sch, now-model.Millis(h)*3600*1000-7, 1000, 1, 1, 5, []int64{1})
	}
	p.Unlock()
	st := c.RunSync(p)
	if st.SlicesAfter >= st.SlicesBefore {
		t.Fatalf("sync run did not compact: %d -> %d", st.SlicesBefore, st.SlicesAfter)
	}
}

func TestCompactorHotReloadPickup(t *testing.T) {
	// A config change (e.g. adding truncation) applies to the next run
	// without restarting the compactor — the hot-reload behaviour of §V-b.
	store, _ := config.NewStore(config.Default())
	sch := model.NewSchema("n")
	now := model.Millis(40 * 24 * 3600 * 1000)
	c := NewCompactor(sch, store, func() model.Millis { return now })
	p := model.NewProfile(1)
	p.Lock()
	for h := 0; h < 50; h++ {
		_ = p.Add(sch, now-model.Millis(h)*3600*1000-7, 1000, 1, 1, 5, []int64{1})
	}
	p.Unlock()
	c.RunSync(p)
	p.RLock()
	before := p.NumSlices()
	p.RUnlock()
	if before <= 3 {
		t.Fatalf("setup: expected >3 slices, got %d", before)
	}
	if err := store.Mutate(func(cfg *config.Config) { cfg.Truncate.MaxSlices = 3 }); err != nil {
		t.Fatal(err)
	}
	c.RunSync(p)
	p.RLock()
	after := p.NumSlices()
	p.RUnlock()
	if after != 3 {
		t.Fatalf("hot-reloaded truncate not applied: %d slices", after)
	}
}

func TestMemoryFootprintClaim(t *testing.T) {
	// §III-D: with compaction+truncation a year of activity stays bounded
	// (~45KB/profile in production); without, it grows unboundedly (the
	// paper projects 76MB). Verify the *shape*: maintained footprint is at
	// least 50x smaller than unmaintained for a dense write stream.
	if testing.Short() {
		t.Skip("long simulation")
	}
	sch := model.NewSchema("like", "comment", "share")
	cfg := config.Default()
	cfg.Shrink.DefaultRetain = 10
	rng := rand.New(rand.NewSource(42))

	const day = 24 * 3600 * 1000
	build := func(maintain bool) int64 {
		p := model.NewProfile(1)
		p.Lock()
		defer p.Unlock()
		now := model.Millis(day)
		// 52 weeks; a burst of actions every 5 minutes of one day per week.
		for week := 0; week < 52; week++ {
			for m := 0; m < 24*60; m += 5 {
				ts := now + model.Millis(m)*60_000
				_ = p.Add(sch, ts, 1000, model.SlotID(rng.Intn(2)), 0,
					model.FeatureID(rng.Intn(5000)), []int64{1, 0, 0})
			}
			now += 7 * day
			if maintain {
				Maintain(p, sch, cfg, now)
			}
		}
		return p.MemSize()
	}
	raw := build(false)
	kept := build(true)
	if kept*50 > raw {
		t.Fatalf("maintained %d bytes vs raw %d: expected >50x reduction", kept, raw)
	}
}

func BenchmarkCompactProfile(b *testing.B) {
	sch := model.NewSchema("n")
	dim := config.DefaultTimeDimension()
	rng := rand.New(rand.NewSource(1))
	const day = 24 * 3600 * 1000
	now := model.Millis(40 * day)
	base := model.NewProfile(1)
	base.Lock()
	for i := 0; i < 2000; i++ {
		_ = base.Add(sch, now-model.Millis(rng.Int63n(29*day)), 1000, 1, 1, model.FeatureID(rng.Intn(100)), []int64{1})
	}
	base.Unlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := base.Clone()
		b.StartTimer()
		p.Lock()
		CompactProfile(p, sch, dim, now)
		p.Unlock()
	}
}

var _ = time.Now // keep time import if unused in future edits
