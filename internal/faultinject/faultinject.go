// Package faultinject drives failures into a running cluster the way two
// production-years drive them into IPS (§III-G, Fig. 17): instance
// crashes followed by restarts, transient network response loss, and
// full-region outages with later recovery. The injector is deterministic
// given a seed, so availability experiments are reproducible.
package faultinject

import (
	"math/rand"
	"sync"
	"time"

	"ips/internal/cluster"
)

// Plan configures the failure mix.
type Plan struct {
	Seed int64
	// CrashProb is the per-tick probability of crashing one random
	// instance (restarted after RestartAfter ticks).
	CrashProb float64
	// RestartAfter is how many ticks a crashed instance stays down.
	RestartAfter int
	// DropProb is the per-tick probability of starting a transient
	// response-drop episode on one instance.
	DropProb float64
	// DropRate is the response-drop fraction during an episode.
	DropRate float64
	// DropTicks is the episode length in ticks.
	DropTicks int
	// RegionOutageProb is the per-tick probability of a full-region
	// outage (the most severe event the paper reports surviving).
	RegionOutageProb float64
	// RegionOutageTicks is how long a region stays dark.
	RegionOutageTicks int
	// StallProb is the per-tick probability of starting a slow-instance
	// episode: the victim answers everything, but only after StallDelay.
	// This is the failure mode hedged reads exist for — the instance is
	// alive, just in the latency tail.
	StallProb float64
	// StallDelay is the added per-RPC latency during a stall episode.
	StallDelay time.Duration
	// StallTicks is the episode length in ticks.
	StallTicks int
}

// DefaultPlan approximates a production-like failure rate when ticked once
// per simulated "hour".
func DefaultPlan(seed int64) Plan {
	return Plan{
		Seed:              seed,
		CrashProb:         0.02,
		RestartAfter:      2,
		DropProb:          0.05,
		DropRate:          0.005,
		DropTicks:         1,
		RegionOutageProb:  0.002,
		RegionOutageTicks: 3,
		StallProb:         0.05,
		StallDelay:        40 * time.Millisecond,
		StallTicks:        1,
	}
}

// Injector applies a Plan to a cluster tick by tick.
type Injector struct {
	plan Plan
	c    *cluster.Cluster
	rng  *rand.Rand

	mu          sync.Mutex
	downNodes   map[string]int // name -> ticks remaining
	dropNodes   map[string]int
	stallNodes  map[string]int
	downRegions map[string]int

	// Event counters for the experiment report.
	Crashes       int
	Restarts      int
	DropEpisodes  int
	StallEpisodes int
	RegionOutages int
}

// New creates an injector over c.
func New(c *cluster.Cluster, plan Plan) *Injector {
	return &Injector{
		plan:        plan,
		c:           c,
		rng:         rand.New(rand.NewSource(plan.Seed)),
		downNodes:   make(map[string]int),
		dropNodes:   make(map[string]int),
		stallNodes:  make(map[string]int),
		downRegions: make(map[string]int),
	}
}

// Tick advances the failure schedule one step: recovers expired failures,
// then rolls the dice for new ones.
func (in *Injector) Tick() {
	in.mu.Lock()
	defer in.mu.Unlock()

	// Recover nodes whose downtime elapsed.
	for name, left := range in.downNodes {
		if left <= 1 {
			if _, err := in.c.Restart(name); err == nil {
				in.Restarts++
			}
			delete(in.downNodes, name)
		} else {
			in.downNodes[name] = left - 1
		}
	}
	// End drop episodes.
	for name, left := range in.dropNodes {
		if left <= 1 {
			if n := in.c.Node(name); n != nil {
				n.Service().RPC().SetDropRate(nil)
			}
			delete(in.dropNodes, name)
		} else {
			in.dropNodes[name] = left - 1
		}
	}
	// End stall episodes.
	for name, left := range in.stallNodes {
		if left <= 1 {
			if n := in.c.Node(name); n != nil {
				n.Service().RPC().SetDelay(nil)
			}
			delete(in.stallNodes, name)
		} else {
			in.stallNodes[name] = left - 1
		}
	}
	// Recover regions.
	for region, left := range in.downRegions {
		if left <= 1 {
			for _, n := range in.allNodesInRegion(region) {
				if _, err := in.c.Restart(n); err == nil {
					in.Restarts++
				}
			}
			delete(in.downRegions, region)
		} else {
			in.downRegions[region] = left - 1
		}
	}

	live := in.c.Nodes()
	if len(live) == 0 {
		return
	}

	// New single-node crash.
	if in.rng.Float64() < in.plan.CrashProb {
		victim := live[in.rng.Intn(len(live))]
		if _, already := in.downNodes[victim.Name]; !already {
			if err := in.c.Crash(victim.Name); err == nil {
				in.Crashes++
				in.downNodes[victim.Name] = in.plan.RestartAfter
			}
		}
	}
	// New drop episode.
	if in.rng.Float64() < in.plan.DropProb {
		live = in.c.Nodes()
		if len(live) > 0 {
			victim := live[in.rng.Intn(len(live))]
			if _, already := in.dropNodes[victim.Name]; !already {
				rate := in.plan.DropRate
				victim.Service().RPC().SetDropRate(func() float64 { return rate })
				in.DropEpisodes++
				in.dropNodes[victim.Name] = in.plan.DropTicks
			}
		}
	}
	// New stall episode: the victim stays alive but slips into the tail.
	if in.rng.Float64() < in.plan.StallProb {
		live = in.c.Nodes()
		if len(live) > 0 {
			victim := live[in.rng.Intn(len(live))]
			if _, already := in.stallNodes[victim.Name]; !already {
				delay := in.plan.StallDelay
				victim.Service().RPC().SetDelay(func(method string) time.Duration { return delay })
				in.StallEpisodes++
				in.stallNodes[victim.Name] = in.plan.StallTicks
			}
		}
	}
	// New region outage (never the last live region).
	if in.rng.Float64() < in.plan.RegionOutageProb {
		regions := in.c.Regions()
		if len(regions) > 1 && len(in.downRegions) < len(regions)-1 {
			region := regions[in.rng.Intn(len(regions))]
			if _, already := in.downRegions[region]; !already {
				in.c.CrashRegion(region)
				in.RegionOutages++
				in.downRegions[region] = in.plan.RegionOutageTicks
			}
		}
	}
}

// allNodesInRegion lists node names (live or down) in region.
func (in *Injector) allNodesInRegion(region string) []string {
	var out []string
	// Names are deterministic: ips-<region>-<i>.
	for i := 0; ; i++ {
		name := nodeName(region, i)
		if in.c.Node(name) == nil {
			break
		}
		out = append(out, name)
	}
	return out
}

func nodeName(region string, i int) string {
	return "ips-" + region + "-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// Quiesce recovers every outstanding failure, for clean shutdown.
func (in *Injector) Quiesce() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for name := range in.downNodes {
		if _, err := in.c.Restart(name); err == nil {
			in.Restarts++
		}
		delete(in.downNodes, name)
	}
	for name := range in.dropNodes {
		if n := in.c.Node(name); n != nil {
			n.Service().RPC().SetDropRate(nil)
		}
		delete(in.dropNodes, name)
	}
	for name := range in.stallNodes {
		if n := in.c.Node(name); n != nil {
			n.Service().RPC().SetDelay(nil)
		}
		delete(in.stallNodes, name)
	}
	for region := range in.downRegions {
		for _, n := range in.allNodesInRegion(region) {
			if _, err := in.c.Restart(n); err == nil {
				in.Restarts++
			}
		}
		delete(in.downRegions, region)
	}
	// Give discovery a beat to re-register.
	time.Sleep(50 * time.Millisecond)
}
