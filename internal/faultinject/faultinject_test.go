package faultinject

import (
	"testing"
	"time"

	"ips/internal/cluster"
	"ips/internal/model"
)

func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		Regions:            []string{"east", "west"},
		InstancesPerRegion: 2,
		Tables:             map[string]*model.Schema{"up": model.NewSchema("n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCrashAndRecover(t *testing.T) {
	c := newTestCluster(t)
	in := New(c, Plan{Seed: 1, CrashProb: 1.0, RestartAfter: 2})

	in.Tick() // must crash exactly one node
	if in.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", in.Crashes)
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("live nodes = %d, want 3", got)
	}
	in.Tick() // countdown 2 -> 1 (another node may crash; allow it)
	in.Tick() // first victim restarts
	if in.Restarts == 0 {
		t.Fatal("victim never restarted")
	}
	in.Quiesce()
	if got := len(c.Nodes()); got != 4 {
		t.Fatalf("after quiesce live nodes = %d, want 4", got)
	}
}

func TestDropEpisode(t *testing.T) {
	c := newTestCluster(t)
	in := New(c, Plan{Seed: 2, DropProb: 1.0, DropRate: 1.0, DropTicks: 1})
	in.Tick()
	if in.DropEpisodes != 1 {
		t.Fatalf("episodes = %d, want 1", in.DropEpisodes)
	}
	in.Tick() // episode ends
	in.Quiesce()
}

func TestRegionOutageNeverKillsAll(t *testing.T) {
	c := newTestCluster(t)
	in := New(c, Plan{Seed: 3, RegionOutageProb: 1.0, RegionOutageTicks: 1})
	for i := 0; i < 5; i++ {
		in.Tick()
		if len(c.Nodes()) == 0 {
			t.Fatal("injector killed every region")
		}
	}
	if in.RegionOutages == 0 {
		t.Fatal("no region outage occurred at probability 1")
	}
	in.Quiesce()
	time.Sleep(100 * time.Millisecond)
	if got := len(c.Nodes()); got != 4 {
		t.Fatalf("after quiesce live nodes = %d, want 4", got)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() (int, int) {
		c := newTestCluster(t)
		in := New(c, Plan{Seed: 42, CrashProb: 0.5, RestartAfter: 1, DropProb: 0.3, DropRate: 0.1, DropTicks: 1})
		for i := 0; i < 10; i++ {
			in.Tick()
		}
		in.Quiesce()
		return in.Crashes, in.DropEpisodes
	}
	c1, d1 := run()
	c2, d2 := run()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("schedule not deterministic: (%d,%d) vs (%d,%d)", c1, d1, c2, d2)
	}
}

func TestDefaultPlanSane(t *testing.T) {
	p := DefaultPlan(7)
	if p.CrashProb <= 0 || p.CrashProb > 0.5 {
		t.Fatalf("crash prob = %v", p.CrashProb)
	}
	if p.DropRate <= 0 || p.DropRate > 0.1 {
		t.Fatalf("drop rate = %v", p.DropRate)
	}
}

func TestStallEpisode(t *testing.T) {
	c := newTestCluster(t)
	in := New(c, Plan{Seed: 4, StallProb: 1.0, StallDelay: 30 * time.Millisecond, StallTicks: 1})
	in.Tick()
	if in.StallEpisodes != 1 {
		t.Fatalf("stall episodes = %d, want 1", in.StallEpisodes)
	}
	// Exactly one node is stalled; find it and verify the injected latency
	// is live, then gone after the episode ends.
	var victim string
	for name := range in.stallNodes {
		victim = name
	}
	if victim == "" {
		t.Fatal("no stalled node recorded")
	}
	n := c.Node(victim)
	if n == nil {
		t.Fatalf("stalled node %s not found", victim)
	}
	in.Tick() // episode ends (a new one may start on another node)
	in.Quiesce()
	if len(in.stallNodes) != 0 {
		t.Fatalf("stall episodes outstanding after quiesce: %v", in.stallNodes)
	}
}
