package integration

// The subscription conservation suite: under a stall storm — slow
// consumers wedging their sinks while writers hammer acked mutations
// over RPC — every acked mutation is either pushed to or explicitly
// resynced for every live matching subscriber. Concretely: once the hub
// quiesces (PendingResync == 0 and queues drained), each subscriber's
// last received state for every watched profile must equal a fresh
// oracle evaluation of the same standing query, delivered sequence
// numbers must be gapless per (subscriber, profile) — drops never
// consume a Seq; the Resync flag, not a gap, is the loss signal — and
// the storm must actually have overflowed queues (Drops > 0) and
// recovered them (Resyncs > 0), or the test proved nothing.

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/rpc"
	"ips/internal/server"
	"ips/internal/sub"
	"ips/internal/wire"
)

// stallSink is a hub sink that can be wedged mid-storm: while stalled,
// Push blocks, the subscriber's pump stops draining, and the bounded
// queue behind it overflows into drop-and-resync.
type stallSink struct {
	stalled atomic.Bool

	mu      sync.Mutex
	last    map[model.ProfileID][]query.Feature
	seq     map[model.ProfileID]uint64
	gaps    int
	resyncs int
	updates int
}

func newStallSink() *stallSink {
	return &stallSink{
		last: make(map[model.ProfileID][]query.Feature),
		seq:  make(map[model.ProfileID]uint64),
	}
}

func (s *stallSink) Push(u *wire.SubUpdate) error {
	for s.stalled.Load() {
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Seq != s.seq[u.ProfileID]+1 {
		s.gaps++
	}
	s.seq[u.ProfileID] = u.Seq
	if u.Resync {
		s.resyncs++
	}
	s.updates++
	// The hub shares one result across a multicast group read-only; copy
	// before retaining.
	s.last[u.ProfileID] = append([]query.Feature(nil), u.Result.Features...)
	return nil
}

func (s *stallSink) snapshotUpdates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates
}

// featureTotals flattens a result to FID -> per-action counts for
// order-insensitive comparison (equal totals may tie-break differently
// between evaluations).
func featureTotals(feats []query.Feature) map[uint64][]int64 {
	out := make(map[uint64][]int64, len(feats))
	for i := range feats {
		out[feats[i].FID] = feats[i].Counts
	}
	return out
}

func totalsEqual(a, b map[uint64][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for fid, ca := range a {
		cb, ok := b[fid]
		if !ok || len(ca) != len(cb) {
			return false
		}
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}

func TestSubscriptionConservationStorm(t *testing.T) {
	const (
		profiles      = 48
		subscribers   = 16
		idsPerSub     = 12
		writers       = 4
		writesPer     = 250
		tinyQueue     = 2 // overflow is the point
		stallCycles   = 3
		stallDuration = 120 * time.Millisecond
	)

	clock := &simClock{now: 1_700_000_000_000}
	cfg := config.Default()
	cfg.WriteIsolation = false // notify at accept: the storm measures the hub, not the merge window
	cfgStore, err := config.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := server.New(server.Options{
		Name: "cons-0", Region: "local",
		Store: kv.NewMemory(), Config: cfgStore, Clock: clock.Now,
		SubQueue:  tinyQueue,
		SubResync: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.CreateTable("up", model.NewSchema("like", "share")); err != nil {
		t.Fatal(err)
	}
	svc := server.NewService(in)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Subscribers watch overlapping windows of the profile space, so most
	// profiles multicast to several standing queries.
	sinks := make([]*stallSink, subscribers)
	queries := make([]*sub.Query, subscribers)
	for i := 0; i < subscribers; i++ {
		pipeline := "source(up"
		for j := 0; j < idsPerSub; j++ {
			pipeline += ", " + strconv.Itoa((i*3+j)%profiles+1)
		}
		pipeline += ") | slot(1) | topk(128)"
		q, err := sub.Parse(pipeline)
		if err != nil {
			t.Fatal(err)
		}
		sinks[i] = newStallSink()
		queries[i] = q
		if _, err := in.Hub().Subscribe(q, sinks[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Writers ack mutations over real RPC while a controller wedges half
	// the sinks in cycles.
	rc := rpc.NewClient(addr)
	rc.CallTimeout = 5 * time.Second
	defer rc.Close()
	var writerErr atomic.Value
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // stall controller
		for c := 0; c < stallCycles; c++ {
			for i := 0; i < subscribers; i += 2 {
				sinks[i].stalled.Store(true)
			}
			time.Sleep(stallDuration)
			for i := 0; i < subscribers; i += 2 {
				sinks[i].stalled.Store(false)
			}
			select {
			case <-stop:
				return
			case <-time.After(60 * time.Millisecond):
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < writesPer; n++ {
				counts := make([]int64, 2)
				counts[rng.Intn(2)] = 1
				payload := wire.EncodeAdd(&wire.AddRequest{
					Caller: "storm", Table: "up",
					ProfileID: model.ProfileID(1 + rng.Intn(profiles)),
					Entries: []wire.AddEntry{{
						Timestamp: clock.Now() - 1000, Slot: 1, Type: 1,
						FID: uint64(1 + rng.Intn(32)), Counts: counts,
					}},
				})
				if _, err := rc.Call(wire.MethodAdd, payload); err != nil {
					writerErr.Store(err)
					return
				}
				if n%50 == 49 {
					time.Sleep(5 * time.Millisecond) // spread the storm across stall cycles
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatalf("acked write failed mid-storm: %v", err)
	}

	// Quiesce: no (subscriber, profile) pair awaits a resync and no queue
	// is still draining.
	totalUpdates := func() int {
		n := 0
		for _, s := range sinks {
			n += s.snapshotUpdates()
		}
		return n
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("hub never quiesced: pending=%d", in.Hub().PendingResync())
		}
		if in.Hub().PendingResync() == 0 {
			before := totalUpdates()
			time.Sleep(100 * time.Millisecond)
			if in.Hub().PendingResync() == 0 && totalUpdates() == before {
				break
			}
			continue
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The storm must have actually exercised drop-and-resync.
	if in.Hub().Drops.Value() == 0 {
		t.Fatal("stall storm never overflowed a queue; the test proved nothing")
	}
	if in.Hub().Resyncs.Value() == 0 {
		t.Fatal("drops without resyncs: slow consumers were never recovered")
	}

	// Conservation: every subscriber's last state per watched profile
	// equals the oracle's fresh evaluation; sequences were gapless.
	ctx := context.Background()
	for i, s := range sinks {
		s.mu.Lock()
		if s.gaps != 0 {
			s.mu.Unlock()
			t.Fatalf("subscriber %d saw %d sequence gaps", i, s.gaps)
		}
		for _, id := range queries[i].IDs {
			got, ok := s.last[id]
			if !ok {
				s.mu.Unlock()
				t.Fatalf("subscriber %d never received profile %d (not even a baseline)", i, id)
			}
			req := queries[i].Req
			req.Caller, req.Table, req.ProfileID = "oracle", "up", id
			var resp wire.QueryResponse
			var sc query.Scratch
			if err := in.QueryInto(ctx, &req, &resp, &sc); err != nil {
				s.mu.Unlock()
				t.Fatalf("oracle query: %v", err)
			}
			if !totalsEqual(featureTotals(got), featureTotals(resp.Features)) {
				s.mu.Unlock()
				t.Fatalf("subscriber %d profile %d diverged from oracle:\n  got  %v\n  want %v",
					i, id, featureTotals(got), featureTotals(resp.Features))
			}
		}
		s.mu.Unlock()
	}
	t.Logf("storm: drops=%d resyncs=%d pushes=%d skips=%d updates=%d",
		in.Hub().Drops.Value(), in.Hub().Resyncs.Value(),
		in.Hub().Pushes.Value(), in.Hub().Skips.Value(), totalUpdates())
}
