// Kill-and-reopen recovery harness: every test acknowledges writes into a
// journaled instance, simulates a process crash at a chosen point (no
// merge, no flush, no journal sync), reopens the same files, and checks
// that the recovered state contains EXACTLY the acknowledged writes —
// none lost, none duplicated.
package integration

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ips/internal/config"
	"ips/internal/gcache"
	"ips/internal/ingest"
	"ips/internal/kv"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/server"
	"ips/internal/wal"
	"ips/internal/wire"
)

const recBase = model.Millis(1_700_000_000_000)

// recoveryEnv is one incarnation of a journaled single-node instance over
// durable files in dir. Background flush/swap cadences are set to an hour
// so the tests control persistence explicitly.
type recoveryEnv struct {
	t      *testing.T
	dir    string
	clock  *simClock
	store  *kv.Disk
	jn     *wal.Journal
	inst   *server.Instance
	cfgMut func(*config.Config)
}

func openRecovery(t *testing.T, dir string, clock *simClock) *recoveryEnv {
	return openRecoveryCfg(t, dir, clock, nil)
}

// openRecoveryCfg opens an incarnation whose config is the harness default
// (write isolation off, explicit persistence cadence) further shaped by
// mutate; the mutation is remembered so reopen starts the next incarnation
// under the same config.
func openRecoveryCfg(t *testing.T, dir string, clock *simClock, mutate func(*config.Config)) *recoveryEnv {
	t.Helper()
	store, err := kv.OpenDisk(filepath.Join(dir, "kv.log"))
	if err != nil {
		t.Fatal(err)
	}
	jn, err := wal.Open(filepath.Join(dir, "wal.log"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.WriteIsolation = false
	if mutate != nil {
		mutate(&cfg)
	}
	cfgStore, err := config.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := server.New(server.Options{
		Name: "rec", Region: "local",
		Store: store, Config: cfgStore, Clock: clock.Now, Journal: jn,
		Cache: gcache.Options{FlushInterval: time.Hour, SwapInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.CreateTable("up", model.NewSchema("like", "share")); err != nil {
		t.Fatal(err)
	}
	return &recoveryEnv{t: t, dir: dir, clock: clock, store: store, jn: jn, inst: inst, cfgMut: mutate}
}

// crash kills this incarnation without flushing anything: background
// threads stop, the journal fd closes unsynced, and the KV store is
// simply abandoned (its bufio layer flushes per append, like a process
// kill would leave it).
func (e *recoveryEnv) crash() {
	e.inst.Abort()
	e.jn.Abort()
}

// reopen starts the next incarnation over the same files; CreateTable
// inside openRecovery replays the journal.
func (e *recoveryEnv) reopen() *recoveryEnv {
	return openRecoveryCfg(e.t, e.dir, e.clock, e.cfgMut)
}

// oracle tracks acknowledged writes: profile -> FID -> summed counts.
// Entries all use slot 1, type 1 so one AllTypes query reads everything.
type oracle map[model.ProfileID]map[model.FeatureID][]int64

func (o oracle) ack(id model.ProfileID, entries ...wire.AddEntry) {
	m := o[id]
	if m == nil {
		m = make(map[model.FeatureID][]int64)
		o[id] = m
	}
	for _, en := range entries {
		c := m[en.FID]
		if c == nil {
			c = make([]int64, len(en.Counts))
		}
		for i, n := range en.Counts {
			c[i] += n
		}
		m[en.FID] = c
	}
}

func (o oracle) delete(id model.ProfileID) { delete(o, id) }

// add writes entries through the instance and records them in the oracle
// only when acknowledged.
func (e *recoveryEnv) add(o oracle, id model.ProfileID, entries ...wire.AddEntry) {
	e.t.Helper()
	if err := e.inst.Add("rec", "up", id, entries); err != nil {
		e.t.Fatal(err)
	}
	o.ack(id, entries...)
}

func recEntry(tsOff int64, fid model.FeatureID, like, share int64) wire.AddEntry {
	return wire.AddEntry{Timestamp: recBase + model.Millis(tsOff), Slot: 1, Type: 1, FID: fid, Counts: []int64{like, share}}
}

// counts reads one profile's full per-FID state back through the query
// path.
func (e *recoveryEnv) counts(id model.ProfileID) map[model.FeatureID][]int64 {
	e.t.Helper()
	resp, err := e.inst.Query(&wire.QueryRequest{
		Caller: "rec", Table: "up", ProfileID: id,
		Slot: 1, AllTypes: true,
		RangeKind: query.Absolute, From: 1, To: 1 << 62,
		SortBy: query.ByFeatureID,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	got := make(map[model.FeatureID][]int64, len(resp.Features))
	for _, f := range resp.Features {
		got[f.FID] = f.Counts
	}
	return got
}

// verify asserts the instance state equals the oracle exactly, including
// profiles the oracle says must be absent or empty.
func (e *recoveryEnv) verify(o oracle, ids []model.ProfileID) {
	e.t.Helper()
	for _, id := range ids {
		got := e.counts(id)
		want := o[id]
		if len(want) == 0 {
			if len(got) != 0 {
				e.t.Fatalf("profile %d: want empty, got %v", id, got)
			}
			continue
		}
		if len(got) != len(want) {
			e.t.Fatalf("profile %d: %d features, want %d (got %v want %v)", id, len(got), len(want), got, want)
		}
		for fid, wc := range want {
			if !reflect.DeepEqual(got[fid], wc) {
				e.t.Fatalf("profile %d fid %d: counts %v, want %v", id, fid, got[fid], wc)
			}
		}
	}
}

func TestRecoveryPostAckPreFlush(t *testing.T) {
	// Crash point 1: everything acknowledged, nothing flushed. Without
	// the journal every write would be lost; with it, all must return.
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecovery(t, dir, clock)
	o := make(oracle)
	ids := []model.ProfileID{1, 2, 3, 4, 5}
	for i, id := range ids {
		e.add(o, id, recEntry(int64(i)*100, 10, 1, 0), recEntry(int64(i)*100+1, 11, 0, 2))
		e.add(o, id, recEntry(int64(i)*100+2, 10, 3, 1))
	}
	if st := e.store.Len(); st != 0 {
		t.Fatalf("pre-crash store has %d keys; flush cadence should have kept it empty", st)
	}
	e.crash()

	e2 := e.reopen()
	e2.verify(o, ids)
	// The recovered instance keeps working: more writes, another crash,
	// and the journal LSNs keep everything straight across generations.
	e2.add(o, 2, recEntry(500, 12, 7, 7))
	e2.crash()
	e3 := e2.reopen()
	e3.verify(o, ids)
	if err := e3.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryMidFlush(t *testing.T) {
	// Crash point 2: some profiles flushed, some dirty, with more writes
	// landing after the flush. The flushed profile's journal prefix must
	// NOT be re-applied (its WalLSN watermark rode the KV write), while
	// the post-flush suffix and the never-flushed profile must replay.
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecovery(t, dir, clock)
	o := make(oracle)
	e.add(o, 1, recEntry(0, 10, 1, 0), recEntry(1, 11, 2, 0))
	e.add(o, 2, recEntry(2, 10, 5, 5))
	// Flush profile 1 only (Drop persists and evicts).
	if ok, err := e.inst.EvictProfile("up", 1); err != nil || !ok {
		t.Fatalf("evict: %v %v", ok, err)
	}
	// Post-flush writes: profile 1 reloads from storage mid-run.
	e.add(o, 1, recEntry(3, 10, 10, 0))
	e.add(o, 2, recEntry(4, 11, 0, 1))
	e.crash()

	e2 := e.reopen()
	e2.verify(o, []model.ProfileID{1, 2})
	if err := e2.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryTornJournalAppend(t *testing.T) {
	// Crash point 3: the process dies mid-journal-append. The torn frame
	// belongs to a write that was never acknowledged, so recovery must
	// discard it and recover the acknowledged prefix exactly.
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecovery(t, dir, clock)
	o := make(oracle)
	e.add(o, 1, recEntry(0, 10, 1, 0))
	e.add(o, 1, recEntry(1, 11, 0, 1))
	e.crash()

	// Simulate the torn in-flight append: a prefix of plausible frame
	// bytes at the tail of the journal.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x3c, 0x9a, 0x01, 0x00, 0x01, 0x07}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2 := e.reopen()
	e2.verify(o, []model.ProfileID{1})
	// The reopened journal accepts appends after the discarded tail.
	e2.add(o, 1, recEntry(2, 12, 4, 4))
	e2.crash()
	e3 := e2.reopen()
	e3.verify(o, []model.ProfileID{1})
	if err := e3.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryPipelineOffsets(t *testing.T) {
	// Ingestion recovery: consumer offsets are checkpointed into the
	// journal; after a crash the restarted pipeline resumes where it
	// stopped (no re-ingestion) while the journal replays the writes the
	// consumed events produced (no loss).
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecovery(t, dir, clock)
	o := make(oracle)

	log := ingest.NewLog()
	schema := model.NewSchema("like", "share")
	sink := ingest.SinkFunc(func(caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
		if err := e.inst.Add(caller, table, id, entries); err != nil {
			return err
		}
		o.ack(id, entries...)
		return nil
	})
	pipe := ingest.NewPipeline(log, sink, "up", "rec", schema)

	feed := func(id model.ProfileID, item model.FeatureID, ts model.Millis) {
		log.Append(ingest.TopicImpression, ingest.Message{Key: uint64(id), Value: ingest.EncodeEvent(&ingest.Event{ProfileID: id, ItemID: item, Timestamp: ts, Slot: 1, Type: 1})})
		log.Append(ingest.TopicAction, ingest.Message{Key: uint64(id), Value: ingest.EncodeEvent(&ingest.Event{ProfileID: id, ItemID: item, Timestamp: ts + 10, Action: "like"})})
	}
	feed(1, 100, recBase)
	feed(2, 200, recBase+1000)
	if n := pipe.RunOnce(); n != 2 {
		t.Fatalf("ingested %d, want 2", n)
	}
	if err := e.jn.SaveOffsets("pipe", pipe.Offsets()); err != nil {
		t.Fatal(err)
	}
	e.crash()

	// Restart: cache state replays from the journal, the pipeline resumes
	// from the checkpointed offsets.
	e2 := e.reopen()
	pipe2 := ingest.NewPipeline(log, ingest.SinkFunc(func(caller, table string, id model.ProfileID, entries []wire.AddEntry) error {
		if err := e2.inst.Add(caller, table, id, entries); err != nil {
			return err
		}
		o.ack(id, entries...)
		return nil
	}), "up", "rec", schema)
	offs := e2.jn.Offsets("pipe")
	if offs == nil {
		t.Fatal("offsets checkpoint lost across crash")
	}
	pipe2.SetOffsets(offs)
	feed(1, 101, recBase+2000)
	if n := pipe2.RunOnce(); n != 1 {
		t.Fatalf("post-restart ingested %d, want 1 (offsets should skip consumed events)", n)
	}
	e2.verify(o, []model.ProfileID{1, 2})
	if err := e2.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRandomizedKillReopen(t *testing.T) {
	// Seeded chaos: random adds, flush-evictions, deletes and compactions
	// interleaved with crashes. After every reopen the recovered state
	// must equal the oracle of acknowledged operations exactly.
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	clock := &simClock{now: recBase + 86_400_000}
	e := openRecovery(t, dir, clock)
	o := make(oracle)
	ids := []model.ProfileID{1, 2, 3, 4, 5, 6}

	for round := 0; round < 4; round++ {
		for op := 0; op < 30; op++ {
			id := ids[rng.Intn(len(ids))]
			switch r := rng.Float64(); {
			case r < 0.80:
				n := 1 + rng.Intn(3)
				entries := make([]wire.AddEntry, n)
				for i := range entries {
					entries[i] = recEntry(int64(rng.Intn(86_400_000)), model.FeatureID(1+rng.Intn(8)), int64(rng.Intn(5)), int64(rng.Intn(5)))
				}
				e.add(o, id, entries...)
			case r < 0.90:
				if _, err := e.inst.EvictProfile("up", id); err != nil {
					t.Fatal(err)
				}
			case r < 0.95:
				if err := e.inst.DeleteProfile("up", id); err != nil {
					t.Fatal(err)
				}
				o.delete(id)
			default:
				if _, err := e.inst.CompactNow("up", id); err != nil {
					t.Fatal(err)
				}
			}
		}
		e.crash()
		e = e.reopen()
		e.verify(o, ids)
	}
	if err := e.inst.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.jn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.store.Close(); err != nil {
		t.Fatal(err)
	}
	// After a clean close everything is flushed; reopening replays the
	// journal against the flushed base and must change nothing.
	e = e.reopen()
	e.verify(o, ids)
	if err := e.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryWriteIsolationUnmergedAdd(t *testing.T) {
	// Crash point 4: an acknowledged isolated add is still sitting in the
	// write table when the process dies, and — crucially — a compaction has
	// pushed the MAIN profile's WalLSN past that add's LSN before a flush.
	// The flush must not vouch for write-table data it never contained: the
	// isolated journal record has to survive both the flush's retirement
	// and a journal compaction, and replay has to fold it back in.
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecoveryCfg(t, dir, clock, func(c *config.Config) { c.WriteIsolation = true })
	o := make(oracle)

	// Add A (isolated, lsn 1) and make it part of the main profile.
	e.add(o, 1, recEntry(0, 10, 1, 0))
	e.inst.MergeAll()
	// Add B (isolated, lsn 2): acknowledged, but only in the write table.
	e.add(o, 1, recEntry(1, 11, 0, 2))
	// Compaction journals lsn 3 onto the MAIN profile, advancing its WalLSN
	// past B's lsn while B remains unmerged.
	if _, err := e.inst.CompactNow("up", 1); err != nil {
		t.Fatal(err)
	}
	// Flush the main profile. It persists (WalLSN=3, MergedLSN=1): the
	// flushed state contains A and the compaction but NOT B.
	if ok, err := e.inst.EvictProfile("up", 1); err != nil || !ok {
		t.Fatalf("evict: %v %v", ok, err)
	}
	// Journal compaction must retain B's record (pending in the isolated
	// stream) even though the main watermark moved past it.
	if err := e.jn.Compact(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range e.jn.Records() {
		if rec.Op == wal.OpAdd && rec.Isolated && rec.LSN == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("journal compaction dropped the unmerged isolated add")
	}
	e.crash() // the write table (holding B) evaporates

	e2 := e.reopen()
	e2.verify(o, []model.ProfileID{1}) // both A and B recovered
	// The recovered instance keeps the streams straight: more isolated
	// writes, a merge, another crash.
	e2.add(o, 1, recEntry(2, 12, 3, 3))
	e2.inst.MergeAll()
	e2.crash()
	e3 := e2.reopen()
	e3.verify(o, []model.ProfileID{1})
	if err := e3.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryCompactReplayUsesJournaledConfig(t *testing.T) {
	// A maintenance pass runs under config X, then the process crashes and
	// restarts under a hot-reloaded, far more aggressive config Y. Replay
	// must re-run the pass with the journaled snapshot of X — re-running it
	// with Y would truncate slices the live instance kept, silently losing
	// acknowledged writes.
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecovery(t, dir, clock)
	o := make(oracle)
	// Three features, tens of seconds apart, so they occupy distinct time
	// slices: an aggressive MaxSlices=1 truncation would drop two of them.
	e.add(o, 1, recEntry(-60_000, 10, 1, 0))
	e.add(o, 1, recEntry(-30_000, 11, 2, 0))
	e.add(o, 1, recEntry(0, 12, 0, 3))
	// Maintenance under the (permissive) default config: journals the pass
	// with its config snapshot; nothing is truncated.
	if _, err := e.inst.CompactNow("up", 1); err != nil {
		t.Fatal(err)
	}
	e.crash()

	// The next incarnation boots under the aggressive config. Replay of the
	// OpCompact record must ignore it in favour of the journaled snapshot.
	e.cfgMut = func(c *config.Config) { c.Truncate.MaxSlices = 1 }
	e2 := e.reopen()
	e2.verify(o, []model.ProfileID{1})
	if err := e2.inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryConcurrentAddDeleteEvict(t *testing.T) {
	// Adds, deletes and flush-evictions race on one profile while every
	// mutation is journaled. Whatever interleaving the scheduler picks, the
	// journal's LSN order must equal the apply order — so the state replay
	// reconstructs after a crash must equal the live state at the moment of
	// the crash (deletes neither resurrect earlier adds nor eat later ones).
	dir := t.TempDir()
	clock := &simClock{now: recBase + 1000}
	e := openRecovery(t, dir, clock)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				en := recEntry(int64(g*100+i), model.FeatureID(1+(g+i)%6), 1, int64(i%3))
				if err := e.inst.Add("rec", "up", 1, []wire.AddEntry{en}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := e.inst.DeleteProfile("up", 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			if _, err := e.inst.EvictProfile("up", 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	live := e.counts(1)
	e.crash()

	e2 := e.reopen()
	if got := e2.counts(1); !reflect.DeepEqual(got, live) {
		t.Fatalf("recovered state diverged from live state:\n got %v\nlive %v", got, live)
	}
	if err := e2.inst.Close(); err != nil {
		t.Fatal(err)
	}
}
