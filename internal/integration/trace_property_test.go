package integration

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/trace"
	"ips/internal/wire"
)

// TestTracedSpanTreesWellFormed is the property layer over the tracing
// tentpole: for random queries through a real cluster (client → RPC →
// server → gcache, spans grafted back over the wire), every sampled span
// tree must be structurally well-formed:
//
//   - trace.Validate holds: unique non-zero IDs, no orphans, every
//     child's interval nests inside its parent's;
//   - the root is the client.query span and server-side spans hang under
//     an rpc.roundtrip span, i.e. span identity survived the RPC hop;
//   - with hedging disabled every request's stages run sequentially, so
//     each parent's direct children sum to at most the parent's own
//     duration (plus scheduling slack).
func TestTracedSpanTreesWellFormed(t *testing.T) {
	clock := &simClock{now: 1_700_000_000_000}
	schema := model.NewSchema("like", "share")
	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: 2,
		Clock:              clock.Now,
		Tables:             map[string]*model.Schema{"up": schema},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	app, err := client.New(client.Options{
		Caller: "trace-prop", Service: "ips", Region: "east",
		Registry: cl.Registry, CallTimeout: 3 * time.Second,
		RefreshInterval: 20 * time.Millisecond,
		// Hedge attempts overlap the primary by design, which breaks the
		// sequential sum-of-children bound this property asserts.
		HedgeDelay: -1,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	const maxProfile = 20
	now := clock.Now()
	for id := model.ProfileID(1); id <= maxProfile; id++ {
		err := app.Add("up", id, wire.AddEntry{
			Timestamp: now - 1000, Slot: 1, Type: 1,
			FID: model.FeatureID(id), Counts: []int64{int64(id), 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
	}

	// Wall-clock slack for interval nesting and child sums: spans are
	// stamped in two goroutines (client and server) of one process, so a
	// millisecond absorbs scheduler noise without masking real breakage.
	const slack = time.Millisecond

	checkTree := func(tr *trace.Trace, sequential bool) string {
		spans := tr.Spans()
		if len(spans) == 0 {
			return "sampled trace has no spans"
		}
		if err := trace.Validate(spans, slack); err != nil {
			return err.Error()
		}
		byID := make(map[uint64]trace.Span, len(spans))
		roots := 0
		for _, sp := range spans {
			byID[sp.ID] = sp
		}
		for _, sp := range spans {
			if sp.Parent == 0 {
				roots++
				if sp.Stage != trace.StageClientQuery && sp.Stage != trace.StageClientWrite {
					return "root span is " + sp.Stage.String() + ", want a client root"
				}
			}
			if sp.Stage == trace.StageServerDispatch {
				par, ok := byID[sp.Parent]
				if !ok || par.Stage != trace.StageRPCRoundtrip {
					return "server.dispatch not parented under rpc.roundtrip: hop lost span identity"
				}
			}
		}
		if roots != 1 {
			return "trace has more than one root"
		}
		if sequential {
			durs := trace.ChildSums(spans)
			for parent, sum := range durs {
				if par, ok := byID[parent]; ok && sum > par.Dur+slack {
					return "children of " + par.Stage.String() + " sum past their parent"
				}
			}
		}
		return ""
	}

	property := func(s int64) bool {
		rnd := rand.New(rand.NewSource(s))
		req := &wire.QueryRequest{
			Table:     "up",
			ProfileID: model.ProfileID(1 + rnd.Intn(maxProfile)),
			Slot:      1, Type: 1,
			RangeKind: query.Current, Span: model.Millis(1 + rnd.Intn(10_000)),
			SortBy: query.ByAction, Action: []string{"like", "share"}[rnd.Intn(2)],
			K: 1 + rnd.Intn(5),
		}
		if _, err := app.TopK(req); err != nil {
			t.Logf("seed %d: query: %v", s, err)
			return false
		}
		tr := tracer.LastSampled()
		if tr == nil {
			t.Logf("seed %d: no sampled trace despite SampleEvery=1", s)
			return false
		}
		if msg := checkTree(tr, true); msg != "" {
			var b strings.Builder
			trace.RenderTree(&b, tr.ID, tr.Spans())
			t.Logf("seed %d single: %s\n%s", s, msg, b.String())
			return false
		}

		// Batch fan-out: groups run concurrently so sibling durations may
		// overlap; structural invariants must still hold.
		subs := make([]wire.SubQuery, 1+rnd.Intn(8))
		for i := range subs {
			q := *req
			q.ProfileID = model.ProfileID(1 + rnd.Intn(maxProfile))
			subs[i] = wire.SubQuery{Op: wire.OpTopK, Query: q}
		}
		if _, err := app.QueryBatch(subs); err != nil {
			t.Logf("seed %d: batch: %v", s, err)
			return false
		}
		tr = tracer.LastSampled()
		if msg := checkTree(tr, false); msg != "" {
			var b strings.Builder
			trace.RenderTree(&b, tr.ID, tr.Spans())
			t.Logf("seed %d batch: %s\n%s", s, msg, b.String())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
