package integration

import (
	"runtime"
	"testing"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/faultinject"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// TestChaosSmoke runs the full DefaultPlan failure mix — crashes, drops,
// stalls, region outages — over a 2-region cluster for 30 ticks with the
// resilience layer on, while a read/write workload hammers the client. It
// asserts the client-observed error rate stays low (the sequential-failover
// client without hedges/breakers blows well past it when its primary dies
// mid-window) and that the whole exercise leaks no goroutines.
func TestChaosSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		cl, err := cluster.New(cluster.Options{
			Regions:            []string{"east", "west"},
			InstancesPerRegion: 2,
			Tables:             map[string]*model.Schema{"up": model.NewSchema("like", "share")},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		c, err := client.New(client.Options{
			Caller: "smoke", Service: "ips", Region: "east",
			Registry:         cl.Registry,
			RefreshInterval:  25 * time.Millisecond,
			CallTimeout:      250 * time.Millisecond,
			HedgeDelay:       20 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  400 * time.Millisecond,
			RetryBudgetRatio: 0.5,
			RetryBudgetBurst: 20,
			BackoffBase:      2 * time.Millisecond,
			BackoffCap:       20 * time.Millisecond,
			Seed:             21,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		now := time.Now().UnixMilli()
		const profiles = 32
		for id := model.ProfileID(1); id <= profiles; id++ {
			if err := c.Add("up", id, wire.AddEntry{
				Timestamp: model.Millis(now - 1000), Slot: 1, Type: 1,
				FID: model.FeatureID(id), Counts: []int64{1, 0},
			}); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range cl.Nodes() {
			n.Instance().MergeAll()
			if err := n.Instance().FlushAll(); err != nil {
				t.Fatal(err)
			}
		}

		req := func(id model.ProfileID) *wire.QueryRequest {
			return &wire.QueryRequest{
				Table: "up", ProfileID: id, Slot: 1, Type: 1,
				RangeKind: query.Current, Span: 3_600_000,
				SortBy: query.ByAction, Action: "like", K: 10,
			}
		}

		// Crank probabilities so 30 ticks reliably produce every failure
		// kind the DefaultPlan models.
		plan := faultinject.DefaultPlan(21)
		plan.CrashProb = 0.2
		plan.DropProb = 0.2
		plan.StallProb = 0.3
		inj := faultinject.New(cl, plan)

		for tick := 0; tick < 30; tick++ {
			inj.Tick()
			for i := 0; i < 6; i++ {
				id := model.ProfileID(tick*6+i)%profiles + 1
				switch i % 3 {
				case 0:
					// Best effort: during an outage a write can fail; the
					// client's Errors counter tracks it.
					_ = c.Add("up", id, wire.AddEntry{
						Timestamp: model.Millis(time.Now().UnixMilli() - 500),
						Slot:      1, Type: 1, FID: 3, Counts: []int64{1, 0},
					})
				case 1:
					_, _ = c.TopK(req(id))
				case 2:
					_, _ = c.QueryBatch([]wire.SubQuery{
						{Query: *req(id)}, {Query: *req(id%profiles + 1)}, {Query: *req(id%profiles + 2)},
					})
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		inj.Quiesce()

		if rate := c.ErrorRate(); rate > 0.25 {
			t.Fatalf("error rate %.3f > 0.25 under DefaultPlan chaos", rate)
		}
		rs := c.Resilience()
		if rs.Attempts != rs.Primaries+rs.Retries+rs.Hedges {
			t.Fatalf("attempt identity broken: %+v", rs)
		}
		t.Logf("errorRate=%.4f crashes=%d stalls=%d drops=%d outages=%d resilience=%+v",
			c.ErrorRate(), inj.Crashes, inj.StallEpisodes, inj.DropEpisodes, inj.RegionOutages, rs)
	}()

	// Everything is closed; all goroutines (watchers, read loops, hedge
	// launches, server dispatchers) must drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after chaos\n%s", before, after, buf[:n])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
