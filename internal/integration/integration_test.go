// Package integration exercises the whole system end to end: raw events
// through the streaming join substrate, over RPC into a multi-region
// cluster, through compaction and persistence, across crashes and
// restarts, out through every query type — the full life of a profile.
package integration

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"ips/internal/client"
	"ips/internal/cluster"
	"ips/internal/config"
	"ips/internal/ingest"
	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

type simClock struct {
	mu  sync.Mutex
	now model.Millis
}

func (c *simClock) Now() model.Millis {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d model.Millis) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestFullPipelineLifecycle(t *testing.T) {
	clock := &simClock{now: 1_700_000_000_000}
	schema := model.NewSchema("impression", "like", "share")
	cfg := config.Default()
	cfg.PartialCompactThreshold = 4

	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east", "west"},
		InstancesPerRegion: 2,
		Clock:              clock.Now,
		Config:             &cfg,
		Tables:             map[string]*model.Schema{"up": schema},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	app, err := client.New(client.Options{
		Caller: "integration", Service: "ips", Region: "east",
		Registry: cl.Registry, CallTimeout: 3 * time.Second,
		RefreshInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	// Stage 1 — ingestion: raw events stream through the log + joiner and
	// land in the cluster via the unified client (the §III-A dataflow).
	logStore := ingest.NewLog()
	sink := ingest.SinkFunc(func(caller, tbl string, id model.ProfileID, entries []wire.AddEntry) error {
		return app.Add(tbl, id, entries...)
	})
	pipe := ingest.NewPipeline(logStore, sink, "up", "flink-job", schema)

	now := clock.Now()
	const users = 40
	for u := uint64(1); u <= users; u++ {
		for item := uint64(0); item < 5; item++ {
			ts := now - model.Millis(item)*60_000
			logStore.Append(ingest.TopicImpression, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
				ProfileID: u, ItemID: 100 + item, Timestamp: ts, Slot: 1, Type: 1,
			})})
			if item%2 == 0 {
				logStore.Append(ingest.TopicAction, ingest.Message{Key: u, Value: ingest.EncodeEvent(&ingest.Event{
					ProfileID: u, ItemID: 100 + item, Timestamp: ts + 1000, Action: "like",
				})})
			}
		}
	}
	if n := pipe.RunOnce(); n != users*5 {
		t.Fatalf("ingested %d instances, want %d", n, users*5)
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
	}

	// Stage 2 — queries: every user's features are queryable through
	// every read API.
	for u := uint64(1); u <= users; u++ {
		topk, err := app.TopK(&wire.QueryRequest{
			Table: "up", ProfileID: u, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 24 * 3_600_000,
			SortBy: query.ByAction, Action: "like", K: 3,
		})
		if err != nil {
			t.Fatalf("user %d topk: %v", u, err)
		}
		if len(topk.Features) != 3 {
			t.Fatalf("user %d topk = %d features", u, len(topk.Features))
		}
		// Liked items rank above unliked ones.
		if topk.Features[0].Counts[1] != 1 {
			t.Fatalf("user %d top feature has no like: %+v", u, topk.Features[0])
		}
		filtered, err := app.Filter(&wire.QueryRequest{
			Table: "up", ProfileID: u, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 24 * 3_600_000,
			SortBy: query.ByAction, Action: "like", MinCount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(filtered.Features) != 3 { // items 100, 102, 104 were liked
			t.Fatalf("user %d filter = %d features, want 3", u, len(filtered.Features))
		}
		decayed, err := app.Decay(&wire.QueryRequest{
			Table: "up", ProfileID: u, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 24 * 3_600_000,
			SortBy: query.ByAction, Action: "impression",
			Decay: query.DecayExp, DecayFactor: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(decayed.Features) == 0 {
			t.Fatalf("user %d decay query empty", u)
		}
	}

	// Stage 2b — batched ranking read: the same features fetched as one
	// coalesced QueryBatch (a 40-candidate ranking request) must be
	// element-wise identical to the single-query answers.
	subs := make([]wire.SubQuery, 0, users*2)
	for u := uint64(1); u <= users; u++ {
		subs = append(subs,
			wire.SubQuery{Op: wire.OpTopK, Query: wire.QueryRequest{
				Table: "up", ProfileID: u, Slot: 1, Type: 1,
				RangeKind: query.Current, Span: 24 * 3_600_000,
				SortBy: query.ByAction, Action: "like", K: 3,
			}},
			wire.SubQuery{Op: wire.OpFilter, Query: wire.QueryRequest{
				Table: "up", ProfileID: u, Slot: 1, Type: 1,
				RangeKind: query.Current, Span: 24 * 3_600_000,
				SortBy: query.ByAction, Action: "like", MinCount: 1,
			}})
	}
	batched, err := app.QueryBatch(subs)
	if err != nil {
		t.Fatalf("query batch: %v", err)
	}
	for i := range subs {
		req := subs[i].Query
		var single *wire.QueryResponse
		if subs[i].Op == wire.OpFilter {
			single, err = app.Filter(&req)
		} else {
			single, err = app.TopK(&req)
		}
		if err != nil {
			t.Fatalf("sub %d single: %v", i, err)
		}
		if !reflect.DeepEqual(single.Features, batched[i].Features) {
			t.Fatalf("sub %d: batch differs from single\nsingle: %+v\nbatch:  %+v",
				i, single.Features, batched[i].Features)
		}
	}

	// Stage 3 — growth and maintenance: months of additional activity,
	// then compaction, with totals preserved.
	for m := 0; m < 50; m++ {
		clock.Advance(12 * 3_600_000)
		if err := app.Add("up", 1, wire.AddEntry{
			Timestamp: clock.Now() - 5000, Slot: 1, Type: 1, FID: 999, Counts: []int64{1, 1, 0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range cl.Nodes() {
		n.Instance().MergeAll()
		if _, err := n.Instance().CompactNow("up", 1); err != nil {
			t.Fatal(err)
		}
	}
	total, err := app.TopK(&wire.QueryRequest{
		Table: "up", ProfileID: 1, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 365 * 24 * 3_600_000,
		SortBy: query.ByAction, Action: "like", K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Features[0].FID != 999 || total.Features[0].Counts[1] != 50 {
		t.Fatalf("post-compaction total = %+v, want fid 999 with 50 likes", total.Features[0])
	}

	// Stage 4 — durability: flush, crash every node, restart, verify.
	for _, n := range cl.Nodes() {
		if err := n.Instance().FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	names := make([]string, 0, 4)
	for _, n := range cl.Nodes() {
		names = append(names, n.Name)
	}
	for _, name := range names {
		if err := cl.Crash(name); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		if _, err := cl.Restart(name); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	app.RefreshNow()

	reloaded, err := app.TopK(&wire.QueryRequest{
		Table: "up", ProfileID: 1, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 365 * 24 * 3_600_000,
		SortBy: query.ByAction, Action: "like", K: 1,
	})
	if err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
	if len(reloaded.Features) == 0 || reloaded.Features[0].Counts[1] != 50 {
		t.Fatalf("post-restart data = %+v", reloaded.Features)
	}
	// The batch path serves the reloaded data too.
	postBatch, err := app.QueryBatch([]wire.SubQuery{{Op: wire.OpTopK, Query: wire.QueryRequest{
		Table: "up", ProfileID: 1, Slot: 1, Type: 1,
		RangeKind: query.Current, Span: 365 * 24 * 3_600_000,
		SortBy: query.ByAction, Action: "like", K: 1,
	}}})
	if err != nil {
		t.Fatalf("post-restart batch: %v", err)
	}
	if len(postBatch[0].Features) == 0 || postBatch[0].Features[0].Counts[1] != 50 {
		t.Fatalf("post-restart batch data = %+v", postBatch[0].Features)
	}
}

func TestBulkBackfillWithIsolationSwitch(t *testing.T) {
	// The §III-F operational pattern: enable write isolation for the
	// duration of an offline back-fill so it cannot disturb serving, then
	// merge and restore.
	clock := &simClock{now: 1_700_000_000_000}
	cfg := config.Default()
	cfg.WriteIsolation = false // online default for this cluster

	cl, err := cluster.New(cluster.Options{
		Regions:            []string{"east"},
		InstancesPerRegion: 2,
		Clock:              clock.Now,
		Config:             &cfg,
		Tables:             map[string]*model.Schema{"up": model.NewSchema("like")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	app, err := client.New(client.Options{
		Caller: "backfill", Service: "ips", Region: "east",
		Registry: cl.Registry, CallTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	// Build a historical snapshot: 200 profiles x 30 entries.
	recs := make([]ingest.BulkRecord, 200)
	now := clock.Now()
	for i := range recs {
		entries := make([]wire.AddEntry, 30)
		for j := range entries {
			entries[j] = wire.AddEntry{
				Timestamp: now - model.Millis(j+1)*24*3_600_000,
				Slot:      1, Type: 1, FID: uint64(j % 10), Counts: []int64{1},
			}
		}
		recs[i] = ingest.BulkRecord{ProfileID: model.ProfileID(i + 1), Entries: entries}
	}

	setIsolation := func(on bool) {
		for _, n := range cl.Nodes() {
			if err := n.Instance().Config().Mutate(func(c *config.Config) {
				c.WriteIsolation = on
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	loader := &ingest.BulkLoader{
		Sink: ingest.SinkFunc(func(caller, tbl string, id model.ProfileID, entries []wire.AddEntry) error {
			return app.Add(tbl, id, entries...)
		}),
		Table: "up", Caller: "backfill", Parallelism: 4,
		BeforeRun: func() { setIsolation(true) },
		AfterRun: func() {
			for _, n := range cl.Nodes() {
				n.Instance().MergeAll()
			}
			setIsolation(false)
		},
	}
	if err := loader.Run(&ingest.SliceSource{Records: recs}); err != nil {
		t.Fatal(err)
	}
	if loader.Entries.Load() != 200*30 {
		t.Fatalf("entries = %d", loader.Entries.Load())
	}

	// Every profile's history is fully queryable.
	for id := model.ProfileID(1); id <= 200; id += 17 {
		resp, err := app.TopK(&wire.QueryRequest{
			Table: "up", ProfileID: id, Slot: 1, Type: 1,
			RangeKind: query.Current, Span: 40 * 24 * 3_600_000,
			SortBy: query.ByAction, Action: "like", K: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		var totalLikes int64
		for _, f := range resp.Features {
			totalLikes += f.Counts[0]
		}
		if totalLikes != 30 {
			t.Fatalf("profile %d total = %d, want 30", id, totalLikes)
		}
	}
}
