package discovery

import (
	"testing"
	"time"
)

// startDaemon boots a registry server and returns a dialed client.
func startDaemon(t *testing.T, ttl time.Duration) (*Registry, *RemoteRegistry) {
	t.Helper()
	reg := NewRegistry(ttl)
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	rr := Dial(addr)
	t.Cleanup(func() { rr.Close() })
	return reg, rr
}

func TestRemoteRegisterLookup(t *testing.T) {
	_, rr := startDaemon(t, time.Minute)
	rr.Register(Instance{Service: "ips", Addr: "10.0.0.1:9500", Region: "east"})
	rr.Register(Instance{Service: "ips", Addr: "10.0.0.2:9500", Region: "west"})

	got := rr.Lookup("ips")
	if len(got) != 2 {
		t.Fatalf("lookup = %d instances, want 2", len(got))
	}
	if got[0].Addr != "10.0.0.1:9500" || got[0].Region != "east" {
		t.Fatalf("instances = %+v", got)
	}
	if len(rr.Lookup("ghost")) != 0 {
		t.Fatal("unknown service should be empty")
	}
}

func TestRemoteDeregister(t *testing.T) {
	_, rr := startDaemon(t, time.Minute)
	rr.Register(Instance{Service: "ips", Addr: "a:1"})
	rr.Deregister("ips", "a:1")
	if len(rr.Lookup("ips")) != 0 {
		t.Fatal("deregistered instance still listed")
	}
}

func TestRemoteTTLExpiry(t *testing.T) {
	_, rr := startDaemon(t, 100*time.Millisecond)
	rr.Register(Instance{Service: "ips", Addr: "a:1"})
	if len(rr.Lookup("ips")) != 1 {
		t.Fatal("fresh registration missing")
	}
	time.Sleep(200 * time.Millisecond)
	if len(rr.Lookup("ips")) != 0 {
		t.Fatal("expired registration should be dropped by the daemon")
	}
}

func TestRemoteHeartbeatAndWatcher(t *testing.T) {
	// The full cross-process lifecycle: an "instance" heartbeats against
	// the daemon through a RemoteRegistry; a "client" watches through a
	// second connection.
	_, instanceConn := startDaemon(t, 200*time.Millisecond)
	hb := StartHeartbeat(instanceConn, Instance{Service: "ips", Addr: "a:1", Region: "east"}, 50*time.Millisecond)

	clientConn := instanceConn // same daemon; separate Dial also works
	w := NewWatcher(clientConn, "ips", 30*time.Millisecond, nil)
	defer w.Stop()

	// Survives several TTL windows thanks to heartbeats.
	time.Sleep(600 * time.Millisecond)
	if got := len(w.Current()); got != 1 {
		t.Fatalf("watched instances = %d, want 1", got)
	}
	// Stop heartbeating: the daemon deregisters, the watcher notices.
	hb.Stop()
	deadline := time.After(2 * time.Second)
	for len(w.Current()) != 0 {
		select {
		case <-deadline:
			t.Fatal("watcher never saw the departure")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestRemoteLookupUnreachableDaemon(t *testing.T) {
	rr := Dial("127.0.0.1:1") // nothing there
	defer rr.Close()
	if got := rr.Lookup("ips"); got != nil {
		t.Fatalf("unreachable daemon lookup = %v, want nil", got)
	}
	// Registration against a dead daemon is a silent no-op (heartbeats
	// retry); must not panic.
	rr.Register(Instance{Service: "ips", Addr: "a:1"})
	rr.Deregister("ips", "a:1")
	if rr.String() == "" {
		t.Fatal("String should identify the endpoint")
	}
}
