package discovery

import (
	"sync"
	"testing"
	"time"
)

func TestRegisterLookup(t *testing.T) {
	r := NewRegistry(time.Minute)
	r.Register(Instance{Service: "ips", Addr: "10.0.0.1:9000", Region: "east"})
	r.Register(Instance{Service: "ips", Addr: "10.0.0.2:9000", Region: "west"})
	r.Register(Instance{Service: "other", Addr: "10.0.0.3:9000", Region: "east"})

	got := r.Lookup("ips")
	if len(got) != 2 {
		t.Fatalf("lookup = %d instances, want 2", len(got))
	}
	if got[0].Addr != "10.0.0.1:9000" || got[1].Addr != "10.0.0.2:9000" {
		t.Fatalf("lookup order = %v", got)
	}
	if len(r.Lookup("missing")) != 0 {
		t.Fatal("unknown service should return empty")
	}
	svcs := r.Services()
	if len(svcs) != 2 || svcs[0] != "ips" || svcs[1] != "other" {
		t.Fatalf("services = %v", svcs)
	}
}

func TestLookupRegion(t *testing.T) {
	r := NewRegistry(time.Minute)
	r.Register(Instance{Service: "ips", Addr: "a:1", Region: "east"})
	r.Register(Instance{Service: "ips", Addr: "b:1", Region: "west"})
	east := r.LookupRegion("ips", "east")
	if len(east) != 1 || east[0].Addr != "a:1" {
		t.Fatalf("east = %v", east)
	}
}

func TestRegistrationExpires(t *testing.T) {
	r := NewRegistry(time.Second)
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	r.Register(Instance{Service: "ips", Addr: "a:1"})
	if len(r.Lookup("ips")) != 1 {
		t.Fatal("fresh registration missing")
	}
	now = now.Add(2 * time.Second)
	if len(r.Lookup("ips")) != 0 {
		t.Fatal("expired registration should be filtered")
	}
	// Renewal extends the deadline.
	r.Register(Instance{Service: "ips", Addr: "a:1"})
	now = now.Add(500 * time.Millisecond)
	r.Register(Instance{Service: "ips", Addr: "a:1"})
	now = now.Add(700 * time.Millisecond)
	if len(r.Lookup("ips")) != 1 {
		t.Fatal("renewed registration should survive")
	}
}

func TestDeregister(t *testing.T) {
	r := NewRegistry(time.Minute)
	r.Register(Instance{Service: "ips", Addr: "a:1"})
	r.Deregister("ips", "a:1")
	if len(r.Lookup("ips")) != 0 {
		t.Fatal("deregistered instance still listed")
	}
	r.Deregister("ips", "never-there") // no panic
	r.Deregister("no-service", "x")
}

func TestHeartbeaterKeepsAlive(t *testing.T) {
	r := NewRegistry(100 * time.Millisecond)
	h := StartHeartbeat(r, Instance{Service: "ips", Addr: "a:1"}, 20*time.Millisecond)
	time.Sleep(300 * time.Millisecond)
	if len(r.Lookup("ips")) != 1 {
		t.Fatal("heartbeated instance should stay registered past the TTL")
	}
	h.Stop()
	if len(r.Lookup("ips")) != 0 {
		t.Fatal("stopped heartbeater should deregister")
	}
	h.Stop() // idempotent
}

func TestWatcherSeesChanges(t *testing.T) {
	r := NewRegistry(time.Minute)
	r.Register(Instance{Service: "ips", Addr: "a:1"})

	var mu sync.Mutex
	var updates [][]Instance
	w := NewWatcher(r, "ips", 10*time.Millisecond, func(in []Instance) {
		mu.Lock()
		updates = append(updates, in)
		mu.Unlock()
	})
	defer w.Stop()

	// Initial callback fires immediately.
	mu.Lock()
	n := len(updates)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("initial updates = %d, want 1", n)
	}

	r.Register(Instance{Service: "ips", Addr: "b:1"})
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n = len(updates)
		mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("watcher never saw the new instance")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cur := w.Current()
	if len(cur) != 2 {
		t.Fatalf("current = %v", cur)
	}
	// No spurious callbacks when nothing changes.
	mu.Lock()
	before := len(updates)
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	after := len(updates)
	mu.Unlock()
	if after != before {
		t.Fatalf("watcher fired %d spurious updates", after-before)
	}
}

func TestWatcherStopIdempotent(t *testing.T) {
	r := NewRegistry(time.Minute)
	w := NewWatcher(r, "ips", 10*time.Millisecond, nil)
	w.Stop()
	w.Stop()
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry(time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := string(rune('a'+i)) + ":1"
			for j := 0; j < 200; j++ {
				r.Register(Instance{Service: "ips", Addr: addr})
				r.Lookup("ips")
				if j%10 == 0 {
					r.Deregister("ips", addr)
				}
			}
		}(i)
	}
	wg.Wait()
}
