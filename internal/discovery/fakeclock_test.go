package discovery

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Satellite suite: deterministic fake-clock coverage for Registry TTL
// expiry and heartbeat-renewal races, driven entirely through the `now`
// seam — no sleeps, no wall-clock flake.

// fakeClock is a mutable time source safe for concurrent readers.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTTLBoundaryExact pins the expiry boundary: an entry registered at
// T with TTL d is live at exactly T+d (deadline.Before(now) is false)
// and gone one nanosecond later.
func TestTTLBoundaryExact(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second)
	r.SetClock(clk.Now)
	r.Register(Instance{Service: "ips/main", Addr: "a:1"})

	clk.Advance(time.Second)
	if got := r.Lookup("ips/main"); len(got) != 1 {
		t.Fatalf("entry at exactly TTL must still be live, got %d instances", len(got))
	}
	clk.Advance(time.Nanosecond)
	if got := r.Lookup("ips/main"); len(got) != 0 {
		t.Fatalf("entry past TTL must be expired, got %d instances", len(got))
	}
	// Lazy deletion is permanent: rolling the clock back must not
	// resurrect the entry.
	clk.Advance(-time.Hour)
	if got := r.Lookup("ips/main"); len(got) != 0 {
		t.Fatalf("expired entry resurrected after clock rollback, got %d", len(got))
	}
}

// TestRenewalResetsDeadline: each Register renews the full TTL from the
// renewal instant, not the original registration.
func TestRenewalResetsDeadline(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second)
	r.SetClock(clk.Now)
	in := Instance{Service: "ips/main", Addr: "a:1"}
	r.Register(in)

	// Renew every 600ms; the entry must survive far past the first TTL.
	for i := 0; i < 5; i++ {
		clk.Advance(600 * time.Millisecond)
		if got := r.Lookup("ips/main"); len(got) != 1 {
			t.Fatalf("renewal %d: entry expired despite heartbeats", i)
		}
		r.Register(in)
	}
	// Stop renewing: exactly one TTL later it lapses.
	clk.Advance(time.Second + time.Nanosecond)
	if got := r.Lookup("ips/main"); len(got) != 0 {
		t.Fatal("entry survived a full TTL with no renewal")
	}
}

// TestRenewalRaceNeverServesStale hammers the expiry/renewal race: one
// goroutine advances the clock past the deadline while another renews.
// Whatever interleaving occurs, a Lookup must never return an instance
// whose deadline (under the registry's own clock) has already lapsed —
// the "stale instance past deadline" hazard the dual-read window relies
// on discovery never exhibiting.
func TestRenewalRaceNeverServesStale(t *testing.T) {
	clk := newFakeClock()
	const ttl = 100 * time.Millisecond
	r := NewRegistry(ttl)
	r.SetClock(clk.Now)
	in := Instance{Service: "ips/main", Addr: "a:1", State: StateDraining}
	r.Register(in)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var renews atomic.Int64
	// Renewal goroutine: heartbeats as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			r.Register(in)
			renews.Add(1)
		}
	}()
	// Clock goroutine: repeatedly jumps the clock right past the TTL. At
	// least 2000 jumps, and never stop before the renewer has run at all
	// — on a loaded box it may not be scheduled within the first burst.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000 || renews.Load() == 0; i++ {
			clk.Advance(ttl + time.Nanosecond)
			if renews.Load() == 0 {
				runtime.Gosched()
			}
		}
		stop.Store(true)
	}()
	// Reader: hammer the lazy-delete path concurrently with renewals and
	// clock jumps; -race guards the interleavings, and the frozen-clock
	// check below pins the staleness invariant itself.
	for !stop.Load() {
		_ = r.Lookup("ips/main")
	}
	wg.Wait()
	if renews.Load() == 0 {
		t.Fatal("renewal goroutine never ran")
	}

	// Deterministic endgame with all goroutines stopped: the entry was
	// last renewed at some clock instant; freeze the clock one TTL+1ns
	// later and the entry must be gone, no matter how the race above
	// interleaved.
	clk.Advance(ttl + time.Nanosecond)
	if got := r.Lookup("ips/main"); len(got) != 0 {
		t.Fatal("entry served a full TTL past its last renewal")
	}
	// And a final renewal resurrects it cleanly, State intact.
	r.Register(in)
	got := r.Lookup("ips/main")
	if len(got) != 1 || got[0].State != StateDraining {
		t.Fatalf("post-race renewal lost the instance or its state: %+v", got)
	}
}

// TestStateTransitionPropagates: re-registering with a new State value
// (what Heartbeater.Set does) is visible on the very next Lookup, and
// the watcher's struct comparison treats it as a membership change.
func TestStateTransitionPropagates(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second)
	r.SetClock(clk.Now)
	in := Instance{Service: "ips/main", Addr: "a:1", State: StateJoining}
	r.Register(in)

	got := r.Lookup("ips/main")
	if len(got) != 1 || got[0].State != StateJoining {
		t.Fatalf("joining state lost: %+v", got)
	}
	in.State = StateActive
	r.Register(in)
	got = r.Lookup("ips/main")
	if len(got) != 1 || got[0].State != StateActive {
		t.Fatalf("flip to active lost: %+v", got)
	}
	// sameInstances must see the difference (the watcher's change
	// detector is what propagates cutover to clients).
	a := []Instance{{Service: "s", Addr: "a", State: StateJoining}}
	b := []Instance{{Service: "s", Addr: "a", State: StateActive}}
	if sameInstances(a, b) {
		t.Fatal("state transition invisible to the watcher comparator")
	}
}

// TestHeartbeaterSetSwitchesRegistration: Set republishes immediately
// under the new state and the stop path deregisters the CURRENT
// registration, not the original one.
func TestHeartbeaterSetSwitchesRegistration(t *testing.T) {
	r := NewRegistry(time.Minute)
	in := Instance{Service: "ips/main", Addr: "a:1"}
	hb := StartHeartbeat(r, in, time.Hour) // ticker never fires in-test
	defer hb.Stop()

	in.State = StateDraining
	hb.Set(r, in)
	got := r.Lookup("ips/main")
	if len(got) != 1 || got[0].State != StateDraining {
		t.Fatalf("Set did not republish immediately: %+v", got)
	}
	if hb.Instance().State != StateDraining {
		t.Fatal("heartbeater kept renewing the old instance")
	}

	// Changing the registration key drops the old entry.
	moved := Instance{Service: "ips/main", Addr: "b:2", State: StateJoining}
	hb.Set(r, moved)
	got = r.Lookup("ips/main")
	if len(got) != 1 || got[0].Addr != "b:2" {
		t.Fatalf("old registration key survived a Set with a new addr: %+v", got)
	}

	hb.Stop()
	if got := r.Lookup("ips/main"); len(got) != 0 {
		t.Fatalf("Stop deregistered the wrong key: %+v", got)
	}
}
