package discovery

import (
	"fmt"
	"time"

	"ips/internal/codec"
	"ips/internal/rpc"
)

// Catalog is the read side of service discovery — what clients and
// watchers need. Both the in-process Registry and the RemoteRegistry
// (registry daemon over RPC) satisfy it, so a unified client works the
// same in a single process and across processes.
type Catalog interface {
	Lookup(service string) []Instance
}

// Registrar is the write side: what instances use to announce themselves.
type Registrar interface {
	Register(inst Instance)
	Deregister(service, addr string)
}

var (
	_ Catalog   = (*Registry)(nil)
	_ Registrar = (*Registry)(nil)
	_ Catalog   = (*RemoteRegistry)(nil)
	_ Registrar = (*RemoteRegistry)(nil)
)

// RPC method names of the registry protocol.
const (
	methodRegister   = "disc.register"
	methodDeregister = "disc.deregister"
	methodLookup     = "disc.lookup"
)

// Instance wire encoding.
const (
	fInstService = 1
	fInstAddr    = 2
	fInstRegion  = 3
	fInstState   = 4
)

func encodeInstance(e *codec.Buffer, in Instance) {
	e.String(fInstService, in.Service)
	e.String(fInstAddr, in.Addr)
	e.String(fInstRegion, in.Region)
	if in.State != StateActive {
		e.String(fInstState, in.State)
	}
}

func decodeInstance(r *codec.Reader) (Instance, error) {
	var in Instance
	for !r.Done() {
		f, wt, err := r.Next()
		if err != nil {
			return in, err
		}
		switch f {
		case fInstService:
			in.Service, err = r.String()
		case fInstAddr:
			in.Addr, err = r.String()
		case fInstRegion:
			in.Region, err = r.String()
		case fInstState:
			in.State, err = r.String()
		default:
			err = r.Skip(wt)
		}
		if err != nil {
			return in, err
		}
	}
	return in, nil
}

// Server exposes a Registry over the RPC framework so IPS instances and
// clients in separate processes share one catalog — the role Consul plays
// in the paper's deployment (§III).
type Server struct {
	reg *Registry
	srv *rpc.Server
}

// NewServer wraps reg.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, srv: rpc.NewServer()}
	s.register()
	return s
}

// Listen binds the registry service and returns the bound address.
func (s *Server) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Close stops serving.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) register() {
	s.srv.Handle(methodRegister, func(payload []byte) ([]byte, error) {
		in, err := decodeInstance(codec.NewReader(payload))
		if err != nil {
			return nil, err
		}
		s.reg.Register(in)
		return nil, nil
	})
	s.srv.Handle(methodDeregister, func(payload []byte) ([]byte, error) {
		in, err := decodeInstance(codec.NewReader(payload))
		if err != nil {
			return nil, err
		}
		s.reg.Deregister(in.Service, in.Addr)
		return nil, nil
	})
	s.srv.Handle(methodLookup, func(payload []byte) ([]byte, error) {
		r := codec.NewReader(payload)
		service := ""
		for !r.Done() {
			f, wt, err := r.Next()
			if err != nil {
				return nil, err
			}
			if f == 1 {
				if service, err = r.String(); err != nil {
					return nil, err
				}
			} else if err := r.Skip(wt); err != nil {
				return nil, err
			}
		}
		var e codec.Buffer
		for _, in := range s.reg.Lookup(service) {
			e.Message(1, func(b *codec.Buffer) { encodeInstance(b, in) })
		}
		return append([]byte(nil), e.Bytes()...), nil
	})
}

// RemoteRegistry is the client to a registry daemon. Lookups and
// registrations travel over RPC; registration TTLs are enforced by the
// daemon, so callers heartbeat exactly as they do against an in-process
// Registry (StartHeartbeat accepts any Registrar).
type RemoteRegistry struct {
	c *rpc.Client
}

// Dial connects to a registry daemon at addr.
func Dial(addr string) *RemoteRegistry {
	c := rpc.NewClient(addr)
	c.CallTimeout = 2 * time.Second
	return &RemoteRegistry{c: c}
}

// Register implements Registrar; failures are dropped (the next heartbeat
// retries), matching best-effort registration semantics.
func (r *RemoteRegistry) Register(inst Instance) {
	var e codec.Buffer
	encodeInstance(&e, inst)
	_, _ = r.c.Call(methodRegister, append([]byte(nil), e.Bytes()...))
}

// Deregister implements Registrar.
func (r *RemoteRegistry) Deregister(service, addr string) {
	var e codec.Buffer
	encodeInstance(&e, Instance{Service: service, Addr: addr})
	_, _ = r.c.Call(methodDeregister, append([]byte(nil), e.Bytes()...))
}

// Lookup implements Catalog; an unreachable daemon yields an empty list
// (the caller's watcher keeps its last snapshot).
func (r *RemoteRegistry) Lookup(service string) []Instance {
	var e codec.Buffer
	e.String(1, service)
	raw, err := r.c.Call(methodLookup, append([]byte(nil), e.Bytes()...))
	if err != nil {
		return nil
	}
	rd := codec.NewReader(raw)
	var out []Instance
	for !rd.Done() {
		f, wt, err := rd.Next()
		if err != nil {
			return out
		}
		if f != 1 {
			if rd.Skip(wt) != nil {
				return out
			}
			continue
		}
		sub, err := rd.Message()
		if err != nil {
			return out
		}
		in, err := decodeInstance(sub)
		if err != nil {
			return out
		}
		out = append(out, in)
	}
	return out
}

// Close releases the connection.
func (r *RemoteRegistry) Close() error { return r.c.Close() }

// String identifies the remote endpoint.
func (r *RemoteRegistry) String() string {
	return fmt.Sprintf("discovery.RemoteRegistry(%s)", r.c.Addr())
}
