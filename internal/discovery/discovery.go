// Package discovery is the service-discovery substrate standing in for
// Consul (§III): IPS instances register their address when ready; clients
// refresh the instance list periodically. Registrations carry a TTL and
// must be renewed by heartbeat, so a crashed instance drops out of the
// catalog automatically.
package discovery

import (
	"sort"
	"sync"
	"time"
)

// Instance is one registered service endpoint.
type Instance struct {
	// Service is the logical service name, e.g. "ips/main".
	Service string
	// Addr is the host:port the instance serves on.
	Addr string
	// Region is the data-center the instance runs in (§III-G).
	Region string
	// State is the membership lifecycle phase used by elastic resharding
	// (DESIGN.md "Elastic resharding"): "" (StateActive) for a settled
	// member, StateJoining while a new node is receiving its shard, and
	// StateDraining while a departing node hands its shard off. Clients
	// fold joining/draining members into a dual-read window; the
	// transition propagates by heartbeat renewal, not restart.
	State string
}

// Membership lifecycle states.
const (
	// StateActive is a settled member: it owns its ring range
	// exclusively. The zero value, so pre-resharding registrations are
	// active by default.
	StateActive = ""
	// StateJoining marks a node being added: it appears in the new
	// (authority) ring but not the old one, and clients dual-read.
	StateJoining = "joining"
	// StateDraining marks a node being removed: it appears in the old
	// ring but not the authority ring, and clients dual-read.
	StateDraining = "draining"
)

// Registry is the service catalog. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]map[string]regEntry // service -> addr -> entry
	ttl     time.Duration
	now     func() time.Time
}

type regEntry struct {
	inst     Instance
	deadline time.Time
}

// DefaultTTL is how long a registration survives without a heartbeat.
const DefaultTTL = 5 * time.Second

// NewRegistry creates a registry with the given TTL (DefaultTTL if <= 0).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Registry{
		entries: make(map[string]map[string]regEntry),
		ttl:     ttl,
		now:     time.Now,
	}
}

// SetClock overrides the time source, for tests.
func (r *Registry) SetClock(now func() time.Time) { r.now = now }

// Register adds or renews inst. Instances call this when ready and then
// heartbeat it before the TTL lapses.
func (r *Registry) Register(inst Instance) {
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.entries[inst.Service]
	if svc == nil {
		svc = make(map[string]regEntry)
		r.entries[inst.Service] = svc
	}
	svc[inst.Addr] = regEntry{inst: inst, deadline: r.now().Add(r.ttl)}
}

// Deregister removes inst immediately (graceful shutdown).
func (r *Registry) Deregister(service, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if svc := r.entries[service]; svc != nil {
		delete(svc, addr)
	}
}

// Lookup returns the live instances of service, sorted by address.
// Expired registrations are filtered (and lazily removed).
func (r *Registry) Lookup(service string) []Instance {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.entries[service]
	out := make([]Instance, 0, len(svc))
	for addr, e := range svc {
		if e.deadline.Before(now) {
			delete(svc, addr)
			continue
		}
		out = append(out, e.inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// LookupRegion returns the live instances of service in region.
func (r *Registry) LookupRegion(service, region string) []Instance {
	all := r.Lookup(service)
	out := all[:0]
	for _, in := range all {
		if in.Region == region {
			out = append(out, in)
		}
	}
	return out
}

// Services returns all service names with at least one live instance.
func (r *Registry) Services() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	now := r.now()
	var out []string
	for name, svc := range r.entries {
		for _, e := range svc {
			if !e.deadline.Before(now) {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Heartbeater renews a registration on a fixed cadence until stopped —
// what a live IPS instance runs in the background.
type Heartbeater struct {
	mu   sync.Mutex
	inst Instance
	stop chan struct{}
	done chan struct{}
}

// StartHeartbeat registers inst now and renews it every interval. It
// accepts any Registrar: the in-process Registry or a RemoteRegistry
// connection to a registry daemon.
func StartHeartbeat(r Registrar, inst Instance, interval time.Duration) *Heartbeater {
	h := &Heartbeater{inst: inst, stop: make(chan struct{}), done: make(chan struct{})}
	r.Register(inst)
	go func() {
		defer close(h.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Register(h.Instance())
			case <-h.stop:
				cur := h.Instance()
				r.Deregister(cur.Service, cur.Addr)
				return
			}
		}
	}()
	return h
}

// Instance returns the registration currently being renewed.
func (h *Heartbeater) Instance() Instance {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inst
}

// Set replaces the registration the heartbeat renews — how a node
// announces a lifecycle transition (StateJoining -> StateActive,
// StateActive -> StateDraining) without re-registering out of band. The
// new instance is registered immediately so the transition propagates
// within one catalog poll, not one heartbeat interval.
func (h *Heartbeater) Set(r Registrar, inst Instance) {
	h.mu.Lock()
	old := h.inst
	h.inst = inst
	h.mu.Unlock()
	if old.Service != inst.Service || old.Addr != inst.Addr {
		// The registration key changed: drop the old entry so the node
		// does not appear twice.
		r.Deregister(old.Service, old.Addr)
	}
	r.Register(inst)
}

// Stop halts heartbeating and deregisters.
func (h *Heartbeater) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// Watcher polls the registry for a service and pushes updated instance
// lists to subscribers — the client-side periodic refresh the paper
// describes.
type Watcher struct {
	reg      Catalog
	service  string
	interval time.Duration
	mu       sync.Mutex
	current  []Instance
	onChange func([]Instance)
	stop     chan struct{}
	done     chan struct{}
}

// NewWatcher starts watching service with the given refresh interval;
// onChange fires whenever the membership differs from the last poll (and
// once immediately with the initial list).
func NewWatcher(reg Catalog, service string, interval time.Duration, onChange func([]Instance)) *Watcher {
	w := &Watcher{
		reg: reg, service: service, interval: interval,
		onChange: onChange,
		stop:     make(chan struct{}), done: make(chan struct{}),
	}
	w.current = reg.Lookup(service)
	if onChange != nil {
		onChange(w.current)
	}
	go w.loop()
	return w
}

func (w *Watcher) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			next := w.reg.Lookup(w.service)
			w.mu.Lock()
			changed := !sameInstances(w.current, next)
			if changed {
				w.current = next
			}
			w.mu.Unlock()
			if changed && w.onChange != nil {
				w.onChange(next)
			}
		case <-w.stop:
			return
		}
	}
}

// Current returns the last observed instance list.
func (w *Watcher) Current() []Instance {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Instance(nil), w.current...)
}

// Stop halts the watcher.
func (w *Watcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

func sameInstances(a, b []Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
