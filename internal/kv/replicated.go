package kv

import (
	"sync"
	"time"
)

// Replicated wires a master store to one replica per region with
// asynchronous replication, reproducing the multi-region persistence layout
// of §III-G (Fig. 15): one region's IPS instance persists to the master
// cluster, every other region reads its local replica (slave) cluster.
// Replication is asynchronous, so a replica may serve stale data — the
// weak-consistency anomaly the paper explicitly accepts.
type Replicated struct {
	master   Store
	mu       sync.Mutex
	replicas map[string]Store
	queue    chan repOp
	wg       sync.WaitGroup
	closed   bool
	// Lag artificially delays replication per op, letting tests and the
	// harness provoke stale reads deterministically.
	Lag time.Duration
	// enqueued / completed track replication progress: completed counts
	// ops fully applied to every replica, so Drain can wait for in-flight
	// work, not just an empty queue.
	enqueued  int64
	completed int64
	progress  sync.Mutex
	appliedMu sync.Mutex
	appliedN  map[string]int64
}

type repOp struct {
	op      byte // opSet / opDelete
	key     string
	value   []byte
	version Version
}

// NewReplicated wraps master; replicas attach via AddReplica.
func NewReplicated(master Store) *Replicated {
	r := &Replicated{
		master:   master,
		replicas: make(map[string]Store),
		queue:    make(chan repOp, 8192),
		appliedN: make(map[string]int64),
	}
	r.wg.Add(1)
	go r.replicator()
	return r
}

// AddReplica registers the replica store serving region.
func (r *Replicated) AddReplica(region string, s Store) {
	r.mu.Lock()
	r.replicas[region] = s
	r.mu.Unlock()
}

// Replica returns the store serving region, or nil.
func (r *Replicated) Replica(region string) Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replicas[region]
}

// Master returns the master store.
func (r *Replicated) Master() Store { return r.master }

func (r *Replicated) replicator() {
	defer r.wg.Done()
	for op := range r.queue {
		if r.Lag > 0 {
			time.Sleep(r.Lag)
		}
		r.mu.Lock()
		reps := make(map[string]Store, len(r.replicas))
		for name, s := range r.replicas {
			reps[name] = s
		}
		r.mu.Unlock()
		for region, s := range reps {
			switch op.op {
			case opSet:
				_ = s.Set(op.key, op.value)
			case opDelete:
				_ = s.Delete(op.key)
			}
			r.appliedMu.Lock()
			r.appliedN[region]++
			r.appliedMu.Unlock()
		}
		r.progress.Lock()
		r.completed++
		r.progress.Unlock()
	}
}

// Applied reports how many ops have been applied to region's replica.
func (r *Replicated) Applied(region string) int64 {
	r.appliedMu.Lock()
	defer r.appliedMu.Unlock()
	return r.appliedN[region]
}

func (r *Replicated) enqueue(op repOp) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	r.progress.Lock()
	r.enqueued++
	r.progress.Unlock()
	// Block rather than drop: replication order must be preserved.
	r.queue <- op
}

// Set writes to the master and replicates asynchronously.
func (r *Replicated) Set(key string, value []byte) error {
	if err := r.master.Set(key, value); err != nil {
		return err
	}
	r.enqueue(repOp{op: opSet, key: key, value: clone(value)})
	return nil
}

// Get reads from the master (strongly consistent path).
func (r *Replicated) Get(key string) ([]byte, error) { return r.master.Get(key) }

// Delete removes from the master and replicates asynchronously.
func (r *Replicated) Delete(key string) error {
	if err := r.master.Delete(key); err != nil {
		return err
	}
	r.enqueue(repOp{op: opDelete, key: key})
	return nil
}

// XSet performs a versioned write on the master and replicates it.
func (r *Replicated) XSet(key string, value []byte, expected Version) (Version, error) {
	v, err := r.master.XSet(key, value, expected)
	if err != nil {
		return v, err
	}
	r.enqueue(repOp{op: opSet, key: key, value: clone(value), version: v})
	return v, nil
}

// XGet reads the versioned value from the master.
func (r *Replicated) XGet(key string) ([]byte, Version, error) { return r.master.XGet(key) }

// Len reports the master's key count.
func (r *Replicated) Len() int { return r.master.Len() }

// Close stops replication (draining the queue) and closes the master. It
// does not close replicas, which may be shared.
func (r *Replicated) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.queue)
	r.wg.Wait()
	return r.master.Close()
}

// Drain blocks until every replication op enqueued so far has been applied
// to all replicas, for tests.
func (r *Replicated) Drain() {
	for {
		r.progress.Lock()
		done := r.completed >= r.enqueued
		r.progress.Unlock()
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

var _ Store = (*Replicated)(nil)
var _ Store = (*Memory)(nil)
var _ Store = (*Disk)(nil)
