package kv

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// storeSuite runs the contract tests against any Store implementation.
func storeSuite(t *testing.T, open func(t *testing.T) Store) {
	t.Run("SetGet", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.Set("a", []byte("1")); err != nil {
			t.Fatal(err)
		}
		v, err := s.Get("a")
		if err != nil || string(v) != "1" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if _, err := s.Get("missing"); err != ErrNotFound {
			t.Fatalf("missing key err = %v, want ErrNotFound", err)
		}
		if s.Len() != 1 {
			t.Fatalf("Len = %d, want 1", s.Len())
		}
	})

	t.Run("Overwrite", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		_ = s.Set("k", []byte("v1"))
		_ = s.Set("k", []byte("v2"))
		v, _ := s.Get("k")
		if string(v) != "v2" {
			t.Fatalf("Get = %q, want v2", v)
		}
		if s.Len() != 1 {
			t.Fatalf("Len = %d", s.Len())
		}
	})

	t.Run("Delete", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		_ = s.Set("k", []byte("v"))
		if err := s.Delete("k"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("k"); err != ErrNotFound {
			t.Fatalf("deleted key err = %v", err)
		}
		if err := s.Delete("never-existed"); err != nil {
			t.Fatalf("deleting absent key: %v", err)
		}
	})

	t.Run("ValueIsolation", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		buf := []byte("mutable")
		_ = s.Set("k", buf)
		buf[0] = 'X'
		v, _ := s.Get("k")
		if string(v) != "mutable" {
			t.Fatal("store must copy values on Set")
		}
		v[0] = 'Y'
		v2, _ := s.Get("k")
		if string(v2) != "mutable" {
			t.Fatal("store must copy values on Get")
		}
	})

	t.Run("XSetXGet", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		v1, err := s.XSet("k", []byte("a"), 0)
		if err != nil {
			t.Fatal(err)
		}
		val, ver, err := s.XGet("k")
		if err != nil || string(val) != "a" || ver != v1 {
			t.Fatalf("XGet = %q, %d, %v", val, ver, err)
		}
		// Write with the right version succeeds and bumps it.
		v2, err := s.XSet("k", []byte("b"), v1)
		if err != nil || v2 <= v1 {
			t.Fatalf("XSet = %d, %v", v2, err)
		}
		// Write with a stale version is rejected (Fig. 14).
		if _, err := s.XSet("k", []byte("c"), v1); err != ErrStaleVersion {
			t.Fatalf("stale XSet err = %v, want ErrStaleVersion", err)
		}
		val, _, _ = s.XGet("k")
		if string(val) != "b" {
			t.Fatalf("value after rejected write = %q, want b", val)
		}
		if _, _, err := s.XGet("absent"); err != ErrNotFound {
			t.Fatalf("XGet absent err = %v", err)
		}
	})

	t.Run("XSetZeroExpectedAlwaysWrites", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		_, _ = s.XSet("k", []byte("a"), 0)
		if _, err := s.XSet("k", []byte("b"), 0); err != nil {
			t.Fatalf("unconditional XSet: %v", err)
		}
	})

	t.Run("Concurrent", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					key := fmt.Sprintf("k%d", i%10)
					_ = s.Set(key, []byte{byte(w), byte(i)})
					_, _ = s.Get(key)
				}
			}(w)
		}
		wg.Wait()
		if s.Len() != 10 {
			t.Fatalf("Len = %d, want 10", s.Len())
		}
	})

	t.Run("ClosedErrors", func(t *testing.T) {
		s := open(t)
		s.Close()
		if err := s.Set("k", nil); err != ErrClosed {
			t.Fatalf("Set after close = %v", err)
		}
		if _, err := s.Get("k"); err != ErrClosed {
			t.Fatalf("Get after close = %v", err)
		}
	})
}

func TestMemoryStore(t *testing.T) {
	storeSuite(t, func(t *testing.T) Store { return NewMemory() })
}

func TestDiskStore(t *testing.T) {
	storeSuite(t, func(t *testing.T) Store {
		d, err := OpenDisk(filepath.Join(t.TempDir(), "kv.log"))
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.log")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = d.Delete("k50")
	v, err := d.XSet("k0", []byte("versioned"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 99 {
		t.Fatalf("recovered %d keys, want 99", d2.Len())
	}
	if _, err := d2.Get("k50"); err != ErrNotFound {
		t.Fatal("deleted key resurrected")
	}
	got, ver, err := d2.XGet("k0")
	if err != nil || string(got) != "versioned" {
		t.Fatalf("XGet after recovery = %q, %v", got, err)
	}
	if ver != v {
		t.Fatalf("version after recovery = %d, want %d", ver, v)
	}
	// And the recovered store accepts new versioned writes consistently.
	if _, err := d2.XSet("k0", []byte("next"), ver); err != nil {
		t.Fatalf("versioned write after recovery: %v", err)
	}
}

func TestDiskCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.log")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Set("good", []byte("data"))
	_ = d.Close()

	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte{0xde, 0xad, 0xbe})
	_ = f.Close()

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("reopen with corrupt tail: %v", err)
	}
	defer d2.Close()
	v, err := d2.Get("good")
	if err != nil || string(v) != "data" {
		t.Fatalf("good record lost: %q, %v", v, err)
	}
	// New writes after recovery must survive another reopen.
	_ = d2.Set("after", []byte("x"))
	_ = d2.Close()
	d3, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if _, err := d3.Get("after"); err != nil {
		t.Fatalf("post-recovery write lost: %v", err)
	}
}

func TestDiskCloseSyncs(t *testing.T) {
	// Regression: Close used to flush the bufio layer but never fsync, so
	// a clean shutdown could still lose the tail to a power failure.
	path := filepath.Join(t.TempDir(), "kv.log")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := d.Syncs(); got != 0 {
		t.Fatalf("syncs before close = %d, want 0 (SyncEvery disabled)", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := d.syncs; got != 1 {
		t.Fatalf("syncs after close = %d, want 1", got)
	}

	// SyncEvery still counts its periodic fsyncs on top of the final one.
	d2, err := OpenDisk(filepath.Join(t.TempDir(), "kv2.log"))
	if err != nil {
		t.Fatal(err)
	}
	d2.SyncEvery = 2
	for i := 0; i < 5; i++ {
		if err := d2.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := d2.Syncs(); got != 2 {
		t.Fatalf("periodic syncs = %d, want 2", got)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := d2.syncs; got != 3 {
		t.Fatalf("syncs after close = %d, want 3", got)
	}
}

func TestDiskTornTailEveryByte(t *testing.T) {
	// Truncating a valid log at every byte boundary must recover exactly
	// the records whose frames fit the remaining prefix — the longest good
	// prefix, never an error, never a partial record.
	path := filepath.Join(t.TempDir(), "kv.log")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := d.Set(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw)%n != 0 {
		t.Fatalf("expected %d equal-size records, file is %d bytes", n, len(raw))
	}
	recSize := len(raw) / n
	for cut := 0; cut <= len(raw); cut++ {
		p := filepath.Join(t.TempDir(), "cut.log")
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		dc, err := OpenDisk(p)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		want := cut / recSize
		if got := dc.Len(); got != want {
			t.Fatalf("cut %d: recovered %d keys, want %d", cut, got, want)
		}
		for i := 0; i < want; i++ {
			if v, err := dc.Get(fmt.Sprintf("key%d", i)); err != nil || string(v) != fmt.Sprintf("val%d", i) {
				t.Fatalf("cut %d: key%d = %q, %v", cut, i, v, err)
			}
		}
		if err := dc.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen truncated the torn bytes away, so the file is now exactly
		// the surviving records.
		if fi, err := os.Stat(p); err != nil || fi.Size() != int64(want*recSize) {
			t.Fatalf("cut %d: file size %d after recovery, want %d", cut, fi.Size(), want*recSize)
		}
	}
}

func TestDiskRecoveryProperty(t *testing.T) {
	// Property: any sequence of sets/deletes is fully recovered by reopen.
	f := func(ops []struct {
		Key byte
		Val []byte
		Del bool
	}) bool {
		dir, err := os.MkdirTemp("", "kvprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "kv.log")
		d, err := OpenDisk(path)
		if err != nil {
			return false
		}
		want := map[string][]byte{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				_ = d.Delete(key)
				delete(want, key)
			} else {
				_ = d.Set(key, op.Val)
				want[key] = append([]byte(nil), op.Val...)
			}
		}
		d.Close()
		d2, err := OpenDisk(path)
		if err != nil {
			return false
		}
		defer d2.Close()
		if d2.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, err := d2.Get(k)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedBasic(t *testing.T) {
	master := NewMemory()
	r := NewReplicated(master)
	defer r.Close()
	east, west := NewMemory(), NewMemory()
	r.AddReplica("east", east)
	r.AddReplica("west", west)

	if err := r.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Master sees it immediately.
	if v, err := r.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("master get = %q, %v", v, err)
	}
	r.Drain()
	for _, rep := range []*Memory{east, west} {
		v, err := rep.Get("k")
		if err != nil || string(v) != "v" {
			t.Fatalf("replica get = %q, %v", v, err)
		}
	}
	if r.Applied("east") == 0 {
		t.Fatal("applied counter not advancing")
	}
}

func TestReplicatedStaleRead(t *testing.T) {
	// The §III-G anomaly: with replication lag, a replica read after a
	// master write returns stale data.
	master := NewMemory()
	r := NewReplicated(master)
	r.Lag = 50 * time.Millisecond
	defer r.Close()
	east := NewMemory()
	r.AddReplica("east", east)

	_ = r.Set("k", []byte("v1"))
	r.Drain()
	_ = r.Set("k", []byte("v2"))

	// Immediately read the replica: must still see v1 (stale).
	v, err := east.Get("k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("replica read = %q, %v; want stale v1", v, err)
	}
	r.Drain()
	v, _ = east.Get("k")
	if string(v) != "v2" {
		t.Fatalf("replica read after drain = %q, want v2", v)
	}
}

func TestReplicatedDelete(t *testing.T) {
	r := NewReplicated(NewMemory())
	defer r.Close()
	east := NewMemory()
	r.AddReplica("east", east)
	_ = r.Set("k", []byte("v"))
	_ = r.Delete("k")
	r.Drain()
	if _, err := east.Get("k"); err != ErrNotFound {
		t.Fatalf("replica should see delete, got %v", err)
	}
}

func TestReplicatedXSetReplicates(t *testing.T) {
	r := NewReplicated(NewMemory())
	defer r.Close()
	east := NewMemory()
	r.AddReplica("east", east)
	if _, err := r.XSet("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	if v, err := east.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("replica = %q, %v", v, err)
	}
}

func TestReplicatedCloseIdempotent(t *testing.T) {
	r := NewReplicated(NewMemory())
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Writes after close fail on the closed master.
	if err := r.Set("k", nil); err == nil {
		t.Fatal("Set after close should fail")
	}
}

func BenchmarkMemorySet(b *testing.B) {
	s := NewMemory()
	defer s.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Set(fmt.Sprintf("k%d", i%4096), val)
	}
}

func BenchmarkDiskSet(b *testing.B) {
	d, err := OpenDisk(filepath.Join(b.TempDir(), "kv.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Set(fmt.Sprintf("k%d", i%4096), val)
	}
}
