// Package kv implements the persistent key-value substrate IPS flushes
// profile data into (§III-E). In production this is an HBase-like
// distributed store; here it is a from-scratch versioned KV store with the
// same API surface the paper relies on:
//
//   - plain Set/Get for the bulk (whole-profile) persistence mode, and
//   - XSet/XGet carrying generation versions for the fine-grained
//     (slice-split) mode, whose consistency protocol (Fig. 14) requires
//     writes to be rejected when the caller holds a stale version.
//
// Two implementations are provided: a purely in-memory store and a
// disk-backed store (append-only log + in-memory index) for durability
// testing. A Replicated wrapper adds master/replica asynchronous
// replication with observable lag, reproducing the weak-consistency
// behaviour §III-G describes.
package kv

import (
	"errors"
	"sync"
)

// Version is the generation number attached to a value by XSet.
type Version uint64

// Errors returned by stores.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("kv: key not found")
	// ErrStaleVersion reports an XSet or XGet carrying a version older
	// than the stored one; the caller must reload before retrying
	// (Fig. 14).
	ErrStaleVersion = errors.New("kv: stale version")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("kv: store closed")
)

// Store is the interface the persistence layer programs against. All
// implementations are safe for concurrent use.
type Store interface {
	// Set stores value under key unconditionally.
	Set(key string, value []byte) error
	// Get returns the value for key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes key; deleting an absent key is not an error.
	Delete(key string) error

	// XSet stores value only if expected matches the stored version
	// (0 means "key must be absent or any version on first write").
	// It returns the new version, or ErrStaleVersion.
	XSet(key string, value []byte, expected Version) (Version, error)
	// XGet returns the value and its current version.
	XGet(key string) ([]byte, Version, error)

	// Len returns the number of stored keys.
	Len() int
	// Close releases resources.
	Close() error
}

type entry struct {
	value   []byte
	version Version
}

// Memory is an in-memory Store.
type Memory struct {
	mu     sync.RWMutex
	data   map[string]entry
	closed bool

	// Latency hooks let the benchmark harness model the 2–4ms penalty of
	// a KV round trip on cache miss (Table II); nil means no delay.
	BeforeOp func(op string, key string)
}

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{data: make(map[string]entry)}
}

func (m *Memory) hook(op, key string) {
	if m.BeforeOp != nil {
		m.BeforeOp(op, key)
	}
}

// Set implements Store.
func (m *Memory) Set(key string, value []byte) error {
	m.hook("set", key)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	e := m.data[key]
	m.data[key] = entry{value: clone(value), version: e.version + 1}
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, error) {
	m.hook("get", key)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	e, ok := m.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	return clone(e.value), nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.hook("delete", key)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.data, key)
	return nil
}

// XSet implements Store.
func (m *Memory) XSet(key string, value []byte, expected Version) (Version, error) {
	m.hook("xset", key)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	e, ok := m.data[key]
	if expected != 0 && (!ok || e.version != expected) {
		return e.version, ErrStaleVersion
	}
	nv := e.version + 1
	m.data[key] = entry{value: clone(value), version: nv}
	return nv, nil
}

// XGet implements Store.
func (m *Memory) XGet(key string) ([]byte, Version, error) {
	m.hook("xget", key)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, 0, ErrClosed
	}
	e, ok := m.data[key]
	if !ok {
		return nil, 0, ErrNotFound
	}
	return clone(e.value), e.version, nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.data = nil
	return nil
}

// Keys returns a snapshot of all keys, for tests and replication bootstrap.
func (m *Memory) Keys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.data))
	for k := range m.data {
		out = append(out, k)
	}
	return out
}

func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
