package kv

import (
	"errors"
	"sync"
)

// ErrInjected is the failure a Flaky store returns when tripped.
var ErrInjected = errors.New("kv: injected failure")

// Flaky wraps a Store and fails operations on demand — the storage-outage
// injector behind the cache layer's failure tests. It is deterministic:
// failures are toggled, not random.
type Flaky struct {
	Inner Store

	mu         sync.Mutex
	failReads  bool
	failWrites bool
	// failNextN fails the next N operations of any kind, then recovers.
	failNextN int
	// ops counts operations that reached the wrapper.
	ops int64
}

// NewFlaky wraps inner.
func NewFlaky(inner Store) *Flaky { return &Flaky{Inner: inner} }

// FailReads toggles read failures.
func (f *Flaky) FailReads(on bool) {
	f.mu.Lock()
	f.failReads = on
	f.mu.Unlock()
}

// FailWrites toggles write failures.
func (f *Flaky) FailWrites(on bool) {
	f.mu.Lock()
	f.failWrites = on
	f.mu.Unlock()
}

// FailNext makes the next n operations fail, then auto-recovers.
func (f *Flaky) FailNext(n int) {
	f.mu.Lock()
	f.failNextN = n
	f.mu.Unlock()
}

// Ops reports how many operations reached the store.
func (f *Flaky) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

func (f *Flaky) gate(write bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.failNextN > 0 {
		f.failNextN--
		return ErrInjected
	}
	if write && f.failWrites {
		return ErrInjected
	}
	if !write && f.failReads {
		return ErrInjected
	}
	return nil
}

// Set implements Store.
func (f *Flaky) Set(key string, value []byte) error {
	if err := f.gate(true); err != nil {
		return err
	}
	return f.Inner.Set(key, value)
}

// Get implements Store.
func (f *Flaky) Get(key string) ([]byte, error) {
	if err := f.gate(false); err != nil {
		return nil, err
	}
	return f.Inner.Get(key)
}

// Delete implements Store.
func (f *Flaky) Delete(key string) error {
	if err := f.gate(true); err != nil {
		return err
	}
	return f.Inner.Delete(key)
}

// XSet implements Store.
func (f *Flaky) XSet(key string, value []byte, expected Version) (Version, error) {
	if err := f.gate(true); err != nil {
		return 0, err
	}
	return f.Inner.XSet(key, value, expected)
}

// XGet implements Store.
func (f *Flaky) XGet(key string) ([]byte, Version, error) {
	if err := f.gate(false); err != nil {
		return nil, 0, err
	}
	return f.Inner.XGet(key)
}

// Len implements Store.
func (f *Flaky) Len() int { return f.Inner.Len() }

// Close implements Store.
func (f *Flaky) Close() error { return f.Inner.Close() }

var _ Store = (*Flaky)(nil)
