package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Disk is a durable Store backed by an append-only log with an in-memory
// index. It provides the durability role HBase plays under IPS: if the
// process dies, Reopen replays the log and recovers every acknowledged
// write.
//
// Record format (little endian):
//
//	u32 crc (of everything after this field)
//	u8  op (1=set, 2=delete)
//	u64 version
//	u32 keyLen,  key bytes
//	u32 valLen,  value bytes (op=set only)
type Disk struct {
	mu     sync.RWMutex
	data   map[string]entry
	f      *os.File
	w      *bufio.Writer
	path   string
	closed bool
	// SyncEvery forces an fsync every N appended records; 0 disables
	// per-record fsync (fastest, loses the tail on power failure —
	// acceptable for IPS, which tolerates small data loss by design).
	// Close always fsyncs regardless of SyncEvery: a clean shutdown must
	// leave nothing in the kernel page cache.
	SyncEvery int
	sinceSync int
	syncs     int64
}

const (
	opSet    = 1
	opDelete = 2
)

// OpenDisk opens (or creates) a disk-backed store at path, replaying any
// existing log.
func OpenDisk(path string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("kv: mkdir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kv: open: %w", err)
	}
	d := &Disk{data: make(map[string]entry), f: f, path: path}
	if err := d.replay(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, err
	}
	d.w = bufio.NewWriter(f)
	return d, nil
}

// replay rebuilds the index from the log, stopping at the first corrupt or
// truncated record (the tail of a crashed write) and truncating it away.
func (d *Disk) replay() error {
	r := bufio.NewReader(d.f)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Corrupt tail: truncate to the last good record.
			if terr := d.f.Truncate(off); terr != nil {
				return fmt.Errorf("kv: truncate corrupt tail: %w", terr)
			}
			break
		}
		off += int64(n)
		switch rec.op {
		case opSet:
			d.data[rec.key] = entry{value: rec.value, version: Version(rec.version)}
		case opDelete:
			delete(d.data, rec.key)
		}
	}
	return nil
}

type record struct {
	op      byte
	version uint64
	key     string
	value   []byte
}

func readRecord(r *bufio.Reader) (record, int, error) {
	var hdr [4 + 1 + 8 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, errors.New("kv: truncated record header")
		}
		return record{}, 0, err
	}
	crc := binary.LittleEndian.Uint32(hdr[0:])
	op := hdr[4]
	version := binary.LittleEndian.Uint64(hdr[5:])
	keyLen := binary.LittleEndian.Uint32(hdr[13:])
	const maxLen = 1 << 30
	if keyLen > maxLen {
		return record{}, 0, errors.New("kv: absurd key length")
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r, key); err != nil {
		return record{}, 0, errors.New("kv: truncated key")
	}
	var value []byte
	n := len(hdr) + int(keyLen)
	if op == opSet {
		var vl [4]byte
		if _, err := io.ReadFull(r, vl[:]); err != nil {
			return record{}, 0, errors.New("kv: truncated value length")
		}
		valLen := binary.LittleEndian.Uint32(vl[:])
		if valLen > maxLen {
			return record{}, 0, errors.New("kv: absurd value length")
		}
		value = make([]byte, valLen)
		if _, err := io.ReadFull(r, value); err != nil {
			return record{}, 0, errors.New("kv: truncated value")
		}
		n += 4 + int(valLen)
	}
	// Verify CRC over op|version|keyLen|key|valLen|value.
	h := crc32.NewIEEE()
	h.Write(hdr[4:])
	h.Write(key)
	if op == opSet {
		var vl [4]byte
		binary.LittleEndian.PutUint32(vl[:], uint32(len(value)))
		h.Write(vl[:])
		h.Write(value)
	}
	if h.Sum32() != crc {
		return record{}, 0, errors.New("kv: crc mismatch")
	}
	return record{op: op, version: version, key: string(key), value: value}, n, nil
}

func (d *Disk) append(op byte, version uint64, key string, value []byte) error {
	var hdr [4 + 1 + 8 + 4]byte
	hdr[4] = op
	binary.LittleEndian.PutUint64(hdr[5:], version)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(key)))
	h := crc32.NewIEEE()
	h.Write(hdr[4:])
	h.Write([]byte(key))
	var vl [4]byte
	if op == opSet {
		binary.LittleEndian.PutUint32(vl[:], uint32(len(value)))
		h.Write(vl[:])
		h.Write(value)
	}
	binary.LittleEndian.PutUint32(hdr[0:], h.Sum32())
	if _, err := d.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := d.w.WriteString(key); err != nil {
		return err
	}
	if op == opSet {
		if _, err := d.w.Write(vl[:]); err != nil {
			return err
		}
		if _, err := d.w.Write(value); err != nil {
			return err
		}
	}
	if err := d.w.Flush(); err != nil {
		return err
	}
	if d.SyncEvery > 0 {
		d.sinceSync++
		if d.sinceSync >= d.SyncEvery {
			d.sinceSync = 0
			d.syncs++
			return d.f.Sync()
		}
	}
	return nil
}

// Syncs returns the number of fsyncs issued, for durability tests.
func (d *Disk) Syncs() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.syncs
}

// Set implements Store.
func (d *Disk) Set(key string, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	nv := d.data[key].version + 1
	if err := d.append(opSet, uint64(nv), key, value); err != nil {
		return err
	}
	d.data[key] = entry{value: clone(value), version: nv}
	return nil
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	e, ok := d.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	return clone(e.value), nil
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.data[key]; !ok {
		return nil
	}
	if err := d.append(opDelete, 0, key, nil); err != nil {
		return err
	}
	delete(d.data, key)
	return nil
}

// XSet implements Store.
func (d *Disk) XSet(key string, value []byte, expected Version) (Version, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	e, ok := d.data[key]
	if expected != 0 && (!ok || e.version != expected) {
		return e.version, ErrStaleVersion
	}
	nv := e.version + 1
	if err := d.append(opSet, uint64(nv), key, value); err != nil {
		return 0, err
	}
	d.data[key] = entry{value: clone(value), version: nv}
	return nv, nil
}

// XGet implements Store.
func (d *Disk) XGet(key string) ([]byte, Version, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, 0, ErrClosed
	}
	e, ok := d.data[key]
	if !ok {
		return nil, 0, ErrNotFound
	}
	return clone(e.value), e.version, nil
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data)
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.w.Flush(); err != nil {
		_ = d.f.Close()
		return err
	}
	// Flush only moved the tail into the kernel page cache; without this
	// fsync a post-Close power loss could still drop acknowledged writes.
	if err := d.f.Sync(); err != nil {
		_ = d.f.Close()
		return err
	}
	d.syncs++
	return d.f.Close()
}
