// Package query implements the IPS read path (§II-B2): locating the slices
// that fall into a requested time range, multi-way merging and aggregating
// feature counts, applying optional time-decay, filtering, and final
// sorting / top-K selection.
//
// Queries operate on a snapshot of a profile's slice list taken under the
// profile's read lock, so computation proceeds without blocking writers.
package query

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"ips/internal/model"
)

// RangeKind selects how a query's time window is interpreted (§II-B2).
type RangeKind uint8

// Supported time-range kinds.
const (
	// Current windows end at the query's "now": [now-Span, now).
	Current RangeKind = iota
	// Relative windows end at the profile's most recent action:
	// [latest-Span, latest].
	Relative
	// Absolute windows are given explicitly: [From, To).
	Absolute
)

// String names the range kind as the paper does.
func (k RangeKind) String() string {
	switch k {
	case Current:
		return "CURRENT"
	case Relative:
		return "RELATIVE"
	case Absolute:
		return "ABSOLUTE"
	default:
		return fmt.Sprintf("RangeKind(%d)", uint8(k))
	}
}

// TimeRange specifies the queried window.
type TimeRange struct {
	Kind RangeKind
	// Span is the window length in milliseconds for Current and Relative
	// ranges.
	Span model.Millis
	// From and To bound Absolute ranges: [From, To).
	From, To model.Millis
}

// CurrentRange returns a CURRENT range covering the last span milliseconds.
func CurrentRange(span model.Millis) TimeRange {
	return TimeRange{Kind: Current, Span: span}
}

// RelativeRange returns a RELATIVE range covering span milliseconds back
// from the profile's most recent action.
func RelativeRange(span model.Millis) TimeRange {
	return TimeRange{Kind: Relative, Span: span}
}

// AbsoluteRange returns an ABSOLUTE range [from, to).
func AbsoluteRange(from, to model.Millis) TimeRange {
	return TimeRange{Kind: Absolute, From: from, To: to}
}

// Resolve converts the range to absolute bounds given the query time and
// the profile's latest event timestamp.
//
//ips:hotpath-trust error construction only runs on invalid ranges, off the steady state
func (r TimeRange) Resolve(now, latest model.Millis) (from, to model.Millis, err error) {
	switch r.Kind {
	case Current:
		if r.Span <= 0 {
			return 0, 0, errors.New("query: CURRENT range needs positive span")
		}
		// Inclusive of "the current moment": an event stamped exactly now
		// is part of the window.
		return now - r.Span, now + 1, nil
	case Relative:
		if r.Span <= 0 {
			return 0, 0, errors.New("query: RELATIVE range needs positive span")
		}
		// Inclusive of the latest event itself.
		return latest - r.Span, latest + 1, nil
	case Absolute:
		if r.From >= r.To {
			return 0, 0, fmt.Errorf("query: ABSOLUTE range [%d,%d) is empty", r.From, r.To)
		}
		return r.From, r.To, nil
	default:
		return 0, 0, fmt.Errorf("query: unknown range kind %d", r.Kind)
	}
}

// SortBy selects the final ordering of aggregated features (§II-B2: sort by
// a certain attribute count, timestamp, or feature id).
type SortBy uint8

// Supported sort types.
const (
	// ByAction sorts by one action-count attribute, descending.
	ByAction SortBy = iota
	// ByTimestamp sorts by the most recent slice a feature appeared in,
	// descending (most recent first).
	ByTimestamp
	// ByFeatureID sorts by FID ascending, giving a deterministic order.
	ByFeatureID
	// ByTotal sorts by the sum of all action counts, descending.
	ByTotal
	// ByUDAF sorts by a user-defined aggregate function's score,
	// descending; the Request carries the function (or its registered
	// name, resolved by the server).
	ByUDAF
)

// DecayFunc identifies the decay function applied to older slices
// (§II-B2, get_profile_decay).
type DecayFunc uint8

// Supported decay functions.
const (
	// DecayNone applies no decay.
	DecayNone DecayFunc = iota
	// DecayExp multiplies counts by factor^age, where age is the slice's
	// distance from the window end in units of the slice's own width.
	DecayExp
	// DecayLinear multiplies counts by max(0, 1 - factor*ageFraction)
	// where ageFraction is the slice age divided by the window length.
	DecayLinear
	// DecayStep zeroes counts older than factor fraction of the window.
	DecayStep
)

// Filter restricts which features survive aggregation.
type Filter struct {
	// MinCount drops features whose sort attribute is below the bound.
	MinCount int64
	// FIDs, when non-nil, keeps only the listed feature IDs.
	FIDs map[model.FeatureID]bool
	// Predicate, when non-nil, is applied last to each aggregated feature.
	Predicate func(Feature) bool
}

// Request describes one feature query against a single profile.
type Request struct {
	Slot model.SlotID
	Type model.TypeID
	// AllTypes aggregates across every type in the slot, ignoring Type.
	AllTypes bool
	Range    TimeRange
	// SortBy picks the ordering; Action names the attribute for ByAction.
	SortBy SortBy
	Action string
	// K limits the result count; K <= 0 returns everything.
	K int
	// Decay and DecayFactor configure optional time decay.
	Decay       DecayFunc
	DecayFactor float64
	// Filter restricts the result set.
	Filter *Filter
	// UDAF scores each aggregated feature when SortBy is ByUDAF; it also
	// populates Feature.Score. Remote callers name a registered function
	// instead (resolved to this field by the server).
	UDAF UDAF
	// MinScore drops features whose UDAF score is below the bound
	// (requires UDAF).
	MinScore float64
}

// Feature is one aggregated feature in a query result.
type Feature struct {
	FID model.FeatureID
	// Counts is the aggregated (possibly decayed) count vector.
	Counts []int64
	// LastSeen is the newest slice-end the feature appeared in, a proxy
	// for recency used by ByTimestamp sorting.
	LastSeen model.Millis
	// Score is the UDAF result when the query used one.
	Score float64
}

// Result is a query response.
type Result struct {
	Features []Feature
	// SlicesScanned counts the slices that overlapped the window, a cost
	// metric surfaced to the benchmark harness.
	SlicesScanned int
}

// errUDAFRequired is preallocated so the invalid-request check stays off
// the allocation profile of the hot path that performs it.
var errUDAFRequired = errors.New("query: ByUDAF requires a UDAF")

// Scratch holds the reusable working storage for query execution: the
// feature accumulator (fid index map, flat Feature slice, count-vector
// arena) plus top-K selection state. A warmed Scratch lets the whole
// aggregation pipeline run without heap allocation — the zero-alloc read
// path the paper's serving shape demands.
//
// A Result produced through a Scratch aliases its storage: it is valid
// only until the next run with the same Scratch. Callers that retain
// results must copy them out first. A Scratch is not safe for concurrent
// use.
type Scratch struct {
	idx   map[model.FeatureID]int32
	feats []Feature
	arena []int64
	width int

	heap []int32
	out  []Feature

	sorter  featureSorter
	hsorter heapSorter
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a pooled Scratch.
//
//ips:hotpath-trust pool misses allocate once; the steady state recycles
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch recycles sc. The caller must be done with every Result
// produced through it — their Features alias the scratch storage.
//
//ips:hotpath
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// reset prepares the scratch for a run over count vectors of the given
// width, retaining all backing storage from previous runs.
//
//ips:hotpath
func (sc *Scratch) reset(width int) {
	if sc.idx == nil {
		//ipslint:ignore hotpathalloc first use of a scratch builds its index map; reuse clears it in place
		sc.idx = make(map[model.FeatureID]int32, 64)
	} else {
		clear(sc.idx)
	}
	sc.feats = sc.feats[:0]
	sc.arena = sc.arena[:0]
	sc.width = width
}

// get returns the Feature accumulating fid, creating it on first sight.
// The returned pointer is valid until the next get call appends to feats;
// callers use it immediately.
//
//ips:hotpath
func (sc *Scratch) get(fid model.FeatureID) *Feature {
	if i, ok := sc.idx[fid]; ok {
		return &sc.feats[i]
	}
	if cap(sc.arena)-len(sc.arena) < sc.width {
		// Doubling means the newest chunk alone eventually covers a whole
		// steady-state run, so reuse reaches zero allocations. Vectors
		// carved from abandoned chunks stay valid — feats still points at
		// them.
		grow := 2 * cap(sc.arena)
		if min := 64 * sc.width; grow < min {
			grow = min
		}
		//ipslint:ignore hotpathalloc arena growth amortizes away under scratch reuse
		sc.arena = make([]int64, 0, grow)
	}
	n := len(sc.arena)
	sc.arena = sc.arena[:n+sc.width]
	counts := sc.arena[n : n+sc.width : n+sc.width]
	clear(counts)
	sc.idx[fid] = int32(len(sc.feats))
	sc.feats = append(sc.feats, Feature{FID: fid, Counts: counts})
	return &sc.feats[len(sc.feats)-1]
}

// accumulate merges one slice's feature stats for one type into the
// accumulator with weight w; end stamps recency.
//
//ips:hotpath
func (sc *Scratch) accumulate(schema *model.Schema, fs *model.FeatureStats, w float64, end model.Millis) {
	for _, st := range fs.View() {
		f := sc.get(st.FID)
		for i, c := range st.Counts {
			if i >= len(f.Counts) {
				break
			}
			f.Counts[i] = schemaReduceMerge(schema, i, f.Counts[i], weighted(c, w))
		}
		if end > f.LastSeen {
			f.LastSeen = end
		}
	}
}

// Run executes the request against the profile at the given query time,
// holding the profile's read lock for the duration: the head slice is
// mutable, so reading its feature maps without the lock would race with
// writers. Keeping writers out of large profiles during queries is
// exactly the contention the paper's read-write isolation (§III-F)
// relieves — with isolation on, online writes land in the small write
// table instead of these locked main-table profiles.
//
// Run allocates fresh result storage per call; latency-critical callers
// reuse storage via RunScratch.
func Run(p *model.Profile, schema *model.Schema, req Request, now model.Millis) (Result, error) {
	var sc Scratch
	return RunScratch(p, schema, req, now, &sc)
}

// RunScratch is Run with caller-owned (typically pooled) working storage.
// The Result aliases sc's storage and is valid until sc's next run.
//
//ips:hotpath
func RunScratch(p *model.Profile, schema *model.Schema, req Request, now model.Millis, sc *Scratch) (Result, error) {
	p.RLock()
	defer p.RUnlock()
	return runOnSlices(p.Slices(), schema, req, now, p.Latest(), sc)
}

// RunMany executes several requests against the same profile under a
// single acquisition of its read lock, at the same query time. This is the
// engine half of the batch query path: when a batch RPC carries multiple
// sub-queries for one profile (a ranking request scoring many candidate
// windows of the same user), the profile is locked and its slice list
// walked once per request but fetched/pinned only once. Results and errors
// are per-request, in input order.
func RunMany(p *model.Profile, schema *model.Schema, reqs []Request, now model.Millis) ([]Result, []error) {
	results := make([]Result, len(reqs))
	errs := make([]error, len(reqs))
	p.RLock()
	defer p.RUnlock()
	slices, latest := p.Slices(), p.Latest()
	for i := range reqs {
		var sc Scratch
		results[i], errs[i] = runOnSlices(slices, schema, reqs[i], now, latest, &sc)
	}
	return results, errs
}

// RunSealed is Run for a profile the caller guarantees no writer can
// reach — GCache's hot read replicas, which are private clones
// invalidated (never mutated) on write. Skipping the read lock matters
// precisely where hot replicas are used: thousands of concurrent readers
// of one Zipf-head profile would otherwise all bounce the same
// RWMutex reader-count cache line even though none of them blocks.
func RunSealed(p *model.Profile, schema *model.Schema, req Request, now model.Millis) (Result, error) {
	var sc Scratch
	return RunSealedScratch(p, schema, req, now, &sc)
}

// RunSealedScratch is RunSealed with caller-owned working storage, the
// zero-allocation fast path for cache-hit reads off hot replicas.
//
//ips:hotpath
func RunSealedScratch(p *model.Profile, schema *model.Schema, req Request, now model.Millis, sc *Scratch) (Result, error) {
	return runOnSlices(p.Slices(), schema, req, now, p.Latest(), sc)
}

// RunManySealed is RunMany minus the lock, under the same immutability
// contract as RunSealed.
func RunManySealed(p *model.Profile, schema *model.Schema, reqs []Request, now model.Millis) ([]Result, []error) {
	results := make([]Result, len(reqs))
	errs := make([]error, len(reqs))
	slices, latest := p.Slices(), p.Latest()
	for i := range reqs {
		var sc Scratch
		results[i], errs[i] = runOnSlices(slices, schema, reqs[i], now, latest, &sc)
	}
	return results, errs
}

// RunOnSlices executes the request against an explicit slice list (newest
// first). The caller must guarantee the slices are not concurrently
// mutated (e.g. by holding the owning profile's read lock, or operating
// on sealed copies).
func RunOnSlices(slices []*model.Slice, schema *model.Schema, req Request, now, latest model.Millis) (Result, error) {
	var sc Scratch
	return runOnSlices(slices, schema, req, now, latest, &sc)
}

//ips:hotpath
func runOnSlices(slices []*model.Slice, schema *model.Schema, req Request, now, latest model.Millis, sc *Scratch) (Result, error) {
	from, to, err := req.Range.Resolve(now, latest)
	if err != nil {
		return Result{}, err
	}
	actionIdx := 0
	if req.SortBy == ByAction {
		if req.Action != "" {
			if actionIdx, err = schema.ActionIndex(req.Action); err != nil {
				return Result{}, err
			}
		}
	}

	// Step 1 (§II-B2): locate the slices in range. Step 2: multi-way merge
	// and aggregate over all features under the requested slot. The
	// accumulator is a flat Feature slice addressed through a fid index
	// (one map entry, no per-feature pointer), with all count vectors
	// carved from the scratch's arena.
	sc.reset(schema.NumActions())
	scanned := 0
	for _, s := range slices {
		if !s.Overlaps(from, to) {
			continue
		}
		scanned++
		set := s.Slot(req.Slot)
		if set == nil {
			continue
		}
		w := decayWeight(req, s, from, to)
		if w == 0 {
			continue
		}
		end := s.End
		if req.AllTypes {
			//ipslint:ignore hotpathalloc all-types fan-out is an analytics shape, off the steady-state topK path
			set.Each(func(_ model.TypeID, fs *model.FeatureStats) { sc.accumulate(schema, fs, w, end) })
		} else if fs := set.Get(req.Type); fs != nil {
			sc.accumulate(schema, fs, w, end)
		}
	}

	if req.SortBy == ByUDAF && req.UDAF == nil {
		return Result{}, errUDAFRequired
	}
	feats := sc.feats
	kept := feats[:0]
	for i := range feats {
		f := &feats[i]
		if req.UDAF != nil {
			//ipslint:ignore hotpathalloc UDAF scoring is a dynamic call by design, off the default topK shape
			f.Score = req.UDAF(f.Counts)
			if f.Score < req.MinScore {
				continue
			}
		}
		if keep(req.Filter, f, actionIdx) {
			kept = append(kept, *f)
		}
	}

	if req.K > 0 && len(kept) > 2*req.K {
		// Partial selection: keep only the top K via an index heap, then
		// sort those K — avoids moving full Feature structs through a
		// complete sort when K << N (the common serving shape).
		kept = sc.selectTop(kept, req.K, req.SortBy, actionIdx)
	} else {
		sc.sorter = featureSorter{feats: kept, by: req.SortBy, actionIdx: actionIdx}
		sort.Sort(&sc.sorter)
		sc.sorter.feats = nil
		if req.K > 0 && len(kept) > req.K {
			kept = kept[:req.K]
		}
	}
	return Result{Features: kept, SlicesScanned: scanned}, nil
}

// selectTop returns the top k features, sorted, using the scratch's heap
// and output storage. It operates on indices so Feature structs move only
// once, at the end.
//
//ips:hotpath
func (sc *Scratch) selectTop(feats []Feature, k int, by SortBy, actionIdx int) []Feature {
	// Max-heap of the "weakest" current member at the root: heap[0] is
	// the element that would be evicted first.
	heap := sc.heap[:0]
	for i := range feats {
		idx := int32(i)
		if len(heap) < k {
			heap = append(heap, idx)
			siftUp(heap, feats, by, actionIdx, len(heap)-1)
			continue
		}
		// Replace the root if the candidate beats the weakest member.
		if cmpFeatures(by, actionIdx, &feats[idx], &feats[heap[0]]) {
			heap[0] = idx
			siftDown(heap, feats, by, actionIdx, 0)
		}
	}
	sc.heap = heap
	sc.hsorter = heapSorter{heap: heap, feats: feats, by: by, actionIdx: actionIdx}
	sort.Sort(&sc.hsorter)
	sc.hsorter = heapSorter{}
	out := sc.out[:0]
	for _, idx := range heap {
		out = append(out, feats[idx])
	}
	sc.out = out
	return out
}

// worse reports whether index i's feature sorts after index j's — i would
// be evicted from the top-K set before j.
//
//ips:hotpath
func worse(feats []Feature, by SortBy, actionIdx int, i, j int32) bool {
	return cmpFeatures(by, actionIdx, &feats[j], &feats[i])
}

//ips:hotpath
func siftDown(heap []int32, feats []Feature, by SortBy, actionIdx, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(heap) && worse(feats, by, actionIdx, heap[l], heap[worst]) {
			worst = l
		}
		if r < len(heap) && worse(feats, by, actionIdx, heap[r], heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		heap[i], heap[worst] = heap[worst], heap[i]
		i = worst
	}
}

//ips:hotpath
func siftUp(heap []int32, feats []Feature, by SortBy, actionIdx, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(feats, by, actionIdx, heap[i], heap[parent]) {
			return
		}
		heap[i], heap[parent] = heap[parent], heap[i]
		i = parent
	}
}

// featureSorter sorts a Feature slice in place under cmpFeatures; a
// pointer to a scratch-resident instance passes through sort.Sort without
// boxing allocation.
type featureSorter struct {
	feats     []Feature
	by        SortBy
	actionIdx int
}

//ips:hotpath
func (s *featureSorter) Len() int { return len(s.feats) }

//ips:hotpath
func (s *featureSorter) Less(i, j int) bool {
	return cmpFeatures(s.by, s.actionIdx, &s.feats[i], &s.feats[j])
}

//ips:hotpath
func (s *featureSorter) Swap(i, j int) { s.feats[i], s.feats[j] = s.feats[j], s.feats[i] }

// heapSorter sorts the index heap for final top-K output ordering.
type heapSorter struct {
	heap      []int32
	feats     []Feature
	by        SortBy
	actionIdx int
}

//ips:hotpath
func (h *heapSorter) Len() int { return len(h.heap) }

//ips:hotpath
func (h *heapSorter) Less(i, j int) bool {
	return cmpFeatures(h.by, h.actionIdx, &h.feats[h.heap[i]], &h.feats[h.heap[j]])
}

//ips:hotpath
func (h *heapSorter) Swap(i, j int) { h.heap[i], h.heap[j] = h.heap[j], h.heap[i] }

// schemaReduceMerge merges one attribute across slices. Window aggregation
// honours the schema's reducer so LAST/MAX semantics survive the merge: the
// slice list is iterated newest-first, so for ReduceLast the first value
// seen wins.
//
//ips:hotpath
func schemaReduceMerge(schema *model.Schema, i int, have, incoming int64) int64 {
	switch r := reducerOf(schema, i); r {
	case model.ReduceSum:
		return have + incoming
	case model.ReduceMax:
		if incoming > have {
			return incoming
		}
		return have
	case model.ReduceMin:
		if incoming < have {
			return incoming
		}
		return have
	case model.ReduceLast:
		if have == 0 {
			return incoming
		}
		return have
	default:
		return have + incoming
	}
}

//ips:hotpath
func reducerOf(s *model.Schema, i int) model.Reduce {
	if s.Reducers == nil || i >= len(s.Reducers) {
		return model.ReduceSum
	}
	return s.Reducers[i]
}

//ips:hotpath
func weighted(c int64, w float64) int64 {
	if w == 1 {
		return c
	}
	return int64(math.Round(float64(c) * w))
}

// decayWeight computes the decay multiplier for a slice inside the window.
//
//ips:hotpath
func decayWeight(req Request, s *model.Slice, from, to model.Millis) float64 {
	if req.Decay == DecayNone {
		return 1
	}
	window := float64(to - from)
	if window <= 0 {
		return 1
	}
	// Age of the slice's midpoint relative to the window end.
	mid := float64(s.Start+s.End) / 2
	age := float64(to) - mid
	if age < 0 {
		age = 0
	}
	frac := age / window
	switch req.Decay {
	case DecayExp:
		// factor in (0,1]; weight = factor^(age in slice-widths), with a
		// floor of one width so head slices are not over-weighted.
		width := float64(s.Width())
		if width <= 0 {
			width = 1
		}
		f := req.DecayFactor
		if f <= 0 || f > 1 {
			f = 0.5
		}
		return math.Pow(f, age/width)
	case DecayLinear:
		f := req.DecayFactor
		if f <= 0 {
			f = 1
		}
		w := 1 - f*frac
		if w < 0 {
			return 0
		}
		return w
	case DecayStep:
		f := req.DecayFactor
		if f <= 0 || f > 1 {
			f = 0.5
		}
		if frac > f {
			return 0
		}
		return 1
	default:
		return 1
	}
}

//ips:hotpath
func keep(f *Filter, feat *Feature, actionIdx int) bool {
	if f == nil {
		return true
	}
	if f.MinCount > 0 {
		idx := actionIdx
		if idx >= len(feat.Counts) {
			idx = 0
		}
		if len(feat.Counts) == 0 || feat.Counts[idx] < f.MinCount {
			return false
		}
	}
	if f.FIDs != nil && !f.FIDs[feat.FID] {
		return false
	}
	//ipslint:ignore hotpathalloc user predicates are a dynamic call by design, off the default topK shape
	if f.Predicate != nil && !f.Predicate(*feat) {
		return false
	}
	return true
}

// cmpFeatures reports whether a comes before b under the sort type; ties
// break by ascending FID for determinism. A plain function (not a closure
// factory) keeps the comparison allocation-free on the hot path.
//
//ips:hotpath
func cmpFeatures(by SortBy, actionIdx int, a, b *Feature) bool {
	switch by {
	case ByTimestamp:
		if a.LastSeen != b.LastSeen {
			return a.LastSeen > b.LastSeen
		}
		return a.FID < b.FID
	case ByFeatureID:
		return a.FID < b.FID
	case ByTotal:
		x, y := total(a), total(b)
		if x != y {
			return x > y
		}
		return a.FID < b.FID
	case ByUDAF:
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.FID < b.FID
	default: // ByAction
		x, y := count(a, actionIdx), count(b, actionIdx)
		if x != y {
			return x > y
		}
		return a.FID < b.FID
	}
}

//ips:hotpath
func count(f *Feature, i int) int64 {
	if i < len(f.Counts) {
		return f.Counts[i]
	}
	return 0
}

//ips:hotpath
func total(f *Feature) int64 {
	var t int64
	for _, c := range f.Counts {
		t += c
	}
	return t
}
