package query

import (
	"errors"
	"testing"

	"ips/internal/model"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	sum, err := r.Lookup("sum")
	if err != nil {
		t.Fatal(err)
	}
	if got := sum([]int64{1, 2, 3}); got != 6 {
		t.Fatalf("sum = %v", got)
	}
	max, _ := r.Lookup("max")
	if got := max([]int64{1, 7, 3}); got != 7 {
		t.Fatalf("max = %v", got)
	}
	ctr, _ := r.Lookup("ctr")
	if got := ctr([]int64{10, 4}); got != 0.4 {
		t.Fatalf("ctr = %v", got)
	}
	if got := ctr([]int64{0, 4}); got != 0 {
		t.Fatalf("ctr with zero impressions = %v", got)
	}
	if got := ctr([]int64{5}); got != 0 {
		t.Fatalf("ctr with short vector = %v", got)
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrUnknownUDAF) {
		t.Fatalf("err = %v", err)
	}
	if err := r.Register("", nil); err == nil {
		t.Fatal("empty registration should fail")
	}
	if err := r.Register("ok", func([]int64) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 4 { // sum, max, ctr, ok
		t.Fatalf("names = %v", names)
	}
}

func TestWeightedSum(t *testing.T) {
	fn := WeightedSum(1, 3, 5)
	if got := fn([]int64{2, 1, 1}); got != 10 {
		t.Fatalf("weighted = %v", got)
	}
	// Unweighted positions default to 1.
	if got := fn([]int64{1, 0, 0, 4}); got != 5 {
		t.Fatalf("overflow weights = %v", got)
	}
}

func TestQueryByUDAF(t *testing.T) {
	// Multi-dimensional top-K: shares weighted 5x outrank raw likes.
	sch := model.NewSchema("like", "share")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 100, []int64{10, 0}) // 10 score
	_ = p.Add(sch, 1500, 1000, 1, 1, 200, []int64{2, 3})  // 17 score
	p.Unlock()

	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000),
		SortBy: ByUDAF, UDAF: WeightedSum(1, 5),
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].FID != 200 {
		t.Fatalf("udaf top = %d, want 200", res.Features[0].FID)
	}
	if res.Features[0].Score != 17 || res.Features[1].Score != 10 {
		t.Fatalf("scores = %v, %v", res.Features[0].Score, res.Features[1].Score)
	}
}

func TestQueryByUDAFRequiresFunction(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	if _, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(1000), SortBy: ByUDAF,
	}, 2000); err == nil {
		t.Fatal("ByUDAF without a UDAF should fail")
	}
}

func TestQueryMinScore(t *testing.T) {
	sch := model.NewSchema("imp", "click")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 1, []int64{100, 5})  // ctr 0.05
	_ = p.Add(sch, 1500, 1000, 1, 1, 2, []int64{100, 60}) // ctr 0.60
	p.Unlock()

	reg := NewRegistry()
	ctr, _ := reg.Lookup("ctr")
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000),
		SortBy: ByUDAF, UDAF: ctr, MinScore: 0.5,
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 || res.Features[0].FID != 2 {
		t.Fatalf("min-score filter = %+v", res.Features)
	}
}

func TestUDAFScorePopulatedWithoutUDAFSort(t *testing.T) {
	// UDAF can annotate scores even when sorting by something else.
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 9, []int64{4})
	p.Unlock()
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000),
		SortBy: ByFeatureID, UDAF: WeightedSum(2),
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].Score != 8 {
		t.Fatalf("score = %v, want 8", res.Features[0].Score)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Register("dynamic", WeightedSum(float64(i)))
		}
	}()
	for i := 0; i < 200; i++ {
		_, _ = r.Lookup("dynamic")
		r.Names()
	}
	<-done
}
