package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ips/internal/model"
)

const (
	slotSports model.SlotID = 1
	typeBall   model.TypeID = 2
)

func newProfileWithPaperExample(t *testing.T) (*model.Profile, *model.Schema) {
	t.Helper()
	// Reproduce the paper's motivating example (Table I): Alice liked,
	// commented on and shared a Lakers video ten days ago, then liked two
	// Warriors videos two days ago.
	sch := model.NewSchema("like", "comment", "share")
	p := model.NewProfile(1)
	p.Lock()
	defer p.Unlock()
	const day = 24 * 3600 * 1000
	const now = 100 * day
	const lakers, warriors = 100, 200
	if err := p.Add(sch, now-10*day, day, slotSports, typeBall, lakers, []int64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(sch, now-2*day, day, slotSports, typeBall, warriors, []int64{2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	return p, sch
}

func TestPaperMotivatingExample(t *testing.T) {
	// "Alice's topmost liked feature in Sports/Basketball over the last 10
	// days" must be Golden State Warriors (Listing 1 / Fig. 4).
	p, sch := newProfileWithPaperExample(t)
	const day = 24 * 3600 * 1000
	const now = 100 * day
	res, err := Run(p, sch, Request{
		Slot:   slotSports,
		Type:   typeBall,
		Range:  CurrentRange(10*day + 1),
		SortBy: ByAction,
		Action: "like",
		K:      1,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 {
		t.Fatalf("got %d features, want 1", len(res.Features))
	}
	if res.Features[0].FID != 200 {
		t.Fatalf("top liked = %d, want 200 (Warriors)", res.Features[0].FID)
	}
	if res.Features[0].Counts[0] != 2 {
		t.Fatalf("likes = %d, want 2", res.Features[0].Counts[0])
	}
}

func TestWindowExcludesOldData(t *testing.T) {
	p, sch := newProfileWithPaperExample(t)
	const day = 24 * 3600 * 1000
	const now = 100 * day
	// A 5-day window must exclude the Lakers row from 10 days ago.
	res, err := Run(p, sch, Request{
		Slot: slotSports, Type: typeBall,
		Range: CurrentRange(5 * day), SortBy: ByAction, Action: "like",
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 || res.Features[0].FID != 200 {
		t.Fatalf("5-day window = %+v, want only Warriors", res.Features)
	}
	// A 30-day window includes both.
	res, err = Run(p, sch, Request{
		Slot: slotSports, Type: typeBall,
		Range: CurrentRange(30 * day), SortBy: ByAction, Action: "like",
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 2 {
		t.Fatalf("30-day window = %d features, want 2", len(res.Features))
	}
}

func TestRelativeRange(t *testing.T) {
	p, sch := newProfileWithPaperExample(t)
	const day = 24 * 3600 * 1000
	// Relative window of 1 day back from the latest action (2 days ago)
	// must include only the Warriors row, regardless of "now".
	res, err := Run(p, sch, Request{
		Slot: slotSports, Type: typeBall,
		Range: RelativeRange(1 * day), SortBy: ByFeatureID,
	}, 500*day)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 || res.Features[0].FID != 200 {
		t.Fatalf("relative window = %+v, want only Warriors", res.Features)
	}
	// Relative window of 9 days covers both rows.
	res, err = Run(p, sch, Request{
		Slot: slotSports, Type: typeBall,
		Range: RelativeRange(9 * day), SortBy: ByFeatureID,
	}, 500*day)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 2 {
		t.Fatalf("wide relative window = %d features, want 2", len(res.Features))
	}
}

func TestAbsoluteRange(t *testing.T) {
	p, sch := newProfileWithPaperExample(t)
	const day = 24 * 3600 * 1000
	const now = 100 * day
	res, err := Run(p, sch, Request{
		Slot: slotSports, Type: typeBall,
		Range:  AbsoluteRange(now-11*day, now-9*day),
		SortBy: ByFeatureID,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 || res.Features[0].FID != 100 {
		t.Fatalf("absolute window = %+v, want only Lakers", res.Features)
	}
}

func TestRangeValidation(t *testing.T) {
	p, sch := newProfileWithPaperExample(t)
	if _, err := Run(p, sch, Request{Range: CurrentRange(0)}, 1000); err == nil {
		t.Fatal("zero CURRENT span should error")
	}
	if _, err := Run(p, sch, Request{Range: RelativeRange(-5)}, 1000); err == nil {
		t.Fatal("negative RELATIVE span should error")
	}
	if _, err := Run(p, sch, Request{Range: AbsoluteRange(10, 10)}, 1000); err == nil {
		t.Fatal("empty ABSOLUTE range should error")
	}
	if _, err := Run(p, sch, Request{Range: TimeRange{Kind: RangeKind(9), Span: 1}}, 1000); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, err := Run(p, sch, Request{Range: CurrentRange(100), SortBy: ByAction, Action: "nope"}, 1000); err == nil {
		t.Fatal("unknown action should error")
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	sch := model.NewSchema("clicks")
	p := model.NewProfile(1)
	p.Lock()
	for fid := model.FeatureID(1); fid <= 10; fid++ {
		n := int64(fid % 5) // duplicate counts force tie-breaking
		if err := p.Add(sch, 5000, 1000, 1, 1, fid, []int64{n}); err != nil {
			t.Fatal(err)
		}
	}
	p.Unlock()
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000),
		SortBy: ByAction, Action: "clicks", K: 4,
	}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 4 {
		t.Fatalf("k=4 returned %d", len(res.Features))
	}
	// counts: fid%5 → 4 for fids 4,9; 3 for 3,8. Ties break by lower FID.
	wantOrder := []model.FeatureID{4, 9, 3, 8}
	for i, want := range wantOrder {
		if res.Features[i].FID != want {
			t.Fatalf("pos %d = fid %d, want %d", i, res.Features[i].FID, want)
		}
	}
}

func TestSortByTimestampAndFID(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 30, []int64{1})
	_ = p.Add(sch, 2500, 1000, 1, 1, 10, []int64{1})
	_ = p.Add(sch, 3500, 1000, 1, 1, 20, []int64{1})
	p.Unlock()

	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByTimestamp}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	got := [3]model.FeatureID{res.Features[0].FID, res.Features[1].FID, res.Features[2].FID}
	if got != [3]model.FeatureID{20, 10, 30} {
		t.Fatalf("ByTimestamp order = %v, want [20 10 30]", got)
	}

	res, err = Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByFeatureID}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	got = [3]model.FeatureID{res.Features[0].FID, res.Features[1].FID, res.Features[2].FID}
	if got != [3]model.FeatureID{10, 20, 30} {
		t.Fatalf("ByFeatureID order = %v, want [10 20 30]", got)
	}
}

func TestSortByTotal(t *testing.T) {
	sch := model.NewSchema("a", "b")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 1, []int64{5, 0})
	_ = p.Add(sch, 1500, 1000, 1, 1, 2, []int64{2, 9})
	p.Unlock()
	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByTotal}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].FID != 2 {
		t.Fatalf("ByTotal top = %d, want 2", res.Features[0].FID)
	}
}

func TestAllTypesAggregation(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 7, []int64{1})
	_ = p.Add(sch, 1500, 1000, 1, 2, 7, []int64{2})  // same fid, other type
	_ = p.Add(sch, 1500, 1000, 2, 1, 7, []int64{50}) // other slot: excluded
	p.Unlock()
	res, err := Run(p, sch, Request{Slot: 1, AllTypes: true, Range: CurrentRange(10_000), SortBy: ByFeatureID}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 || res.Features[0].Counts[0] != 3 {
		t.Fatalf("AllTypes = %+v, want fid 7 with count 3", res.Features)
	}
}

func TestMultiSliceAggregation(t *testing.T) {
	// Counts for the same fid across many slices must sum.
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	for i := 0; i < 20; i++ {
		_ = p.Add(sch, model.Millis(1000+i*1000+5), 1000, 1, 1, 42, []int64{1})
	}
	p.Unlock()
	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(100_000), SortBy: ByAction}, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlicesScanned != 20 {
		t.Fatalf("scanned %d slices, want 20", res.SlicesScanned)
	}
	if res.Features[0].Counts[0] != 20 {
		t.Fatalf("aggregated = %d, want 20", res.Features[0].Counts[0])
	}
}

func TestReduceLastAcrossSlices(t *testing.T) {
	// LAST semantics: the newest slice's value wins across the window —
	// the advertising bid-price use case (§I-d).
	sch := model.NewSchema("bid").WithReducer("bid", model.ReduceLast)
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 9, []int64{100})
	_ = p.Add(sch, 2500, 1000, 1, 1, 9, []int64{70})
	_ = p.Add(sch, 3500, 1000, 1, 1, 9, []int64{85})
	p.Unlock()
	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(100_000), SortBy: ByFeatureID}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].Counts[0] != 85 {
		t.Fatalf("bid = %d, want 85 (latest)", res.Features[0].Counts[0])
	}
}

func TestReduceMaxAcrossSlices(t *testing.T) {
	sch := model.NewSchema("hwm").WithReducer("hwm", model.ReduceMax)
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 9, []int64{10})
	_ = p.Add(sch, 2500, 1000, 1, 1, 9, []int64{30})
	_ = p.Add(sch, 3500, 1000, 1, 1, 9, []int64{20})
	p.Unlock()
	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(100_000), SortBy: ByFeatureID}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].Counts[0] != 30 {
		t.Fatalf("hwm = %d, want 30", res.Features[0].Counts[0])
	}
}

func TestDecayExpFavoursRecent(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	// Old feature has a big count; recent feature a small one.
	_ = p.Add(sch, 1500, 1000, 1, 1, 1, []int64{10}) // old
	_ = p.Add(sch, 9500, 1000, 1, 1, 2, []int64{4})  // recent
	p.Unlock()

	// Without decay, the old feature wins.
	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByAction}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].FID != 1 {
		t.Fatalf("undecayed top = %d, want 1", res.Features[0].FID)
	}

	// With aggressive exponential decay, the recent feature wins.
	res, err = Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByAction,
		Decay: DecayExp, DecayFactor: 0.5,
	}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features[0].FID != 2 {
		t.Fatalf("decayed top = %d, want 2", res.Features[0].FID)
	}
}

func TestDecayStepDropsOld(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 1500, 1000, 1, 1, 1, []int64{10}) // old: ~85% into window
	_ = p.Add(sch, 9500, 1000, 1, 1, 2, []int64{4})
	p.Unlock()
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByAction,
		Decay: DecayStep, DecayFactor: 0.5,
	}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 || res.Features[0].FID != 2 {
		t.Fatalf("step decay = %+v, want only fid 2", res.Features)
	}
}

func TestDecayLinear(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	_ = p.Add(sch, 9500, 1000, 1, 1, 2, []int64{100})
	p.Unlock()
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByAction,
		Decay: DecayLinear, DecayFactor: 1,
	}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Features[0].Counts[0]
	// Slice midpoint is at 9000 in a [0,10000) window: age fraction 0.1,
	// weight 0.9 → 90.
	if got < 85 || got > 95 {
		t.Fatalf("linear decayed count = %d, want ~90", got)
	}
}

func TestFilterMinCount(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	for fid := model.FeatureID(1); fid <= 10; fid++ {
		_ = p.Add(sch, 1500, 1000, 1, 1, fid, []int64{int64(fid)})
	}
	p.Unlock()
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByAction,
		Filter: &Filter{MinCount: 8},
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 3 {
		t.Fatalf("min-count filter kept %d, want 3", len(res.Features))
	}
}

func TestFilterFIDsAndPredicate(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	p.Lock()
	for fid := model.FeatureID(1); fid <= 10; fid++ {
		_ = p.Add(sch, 1500, 1000, 1, 1, fid, []int64{int64(fid)})
	}
	p.Unlock()
	res, err := Run(p, sch, Request{
		Slot: 1, Type: 1, Range: CurrentRange(10_000), SortBy: ByFeatureID,
		Filter: &Filter{
			FIDs:      map[model.FeatureID]bool{2: true, 4: true, 6: true},
			Predicate: func(f Feature) bool { return f.FID != 4 },
		},
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 2 || res.Features[0].FID != 2 || res.Features[1].FID != 6 {
		t.Fatalf("filters = %+v, want fids [2 6]", res.Features)
	}
}

func TestEmptyProfileQuery(t *testing.T) {
	sch := model.NewSchema("n")
	p := model.NewProfile(1)
	res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: CurrentRange(1000)}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 0 || res.SlicesScanned != 0 {
		t.Fatalf("empty profile query = %+v", res)
	}
}

func TestTopKSubsetProperty(t *testing.T) {
	// Property: top-K is a prefix of the full sorted result, and K bounds
	// the result size.
	sch := model.NewSchema("n")
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := model.NewProfile(1)
		p.Lock()
		for i := 0; i < 60; i++ {
			_ = p.Add(sch, model.Millis(1+rng.Intn(50_000)), 1000, 1, 1,
				model.FeatureID(rng.Intn(25)), []int64{rng.Int63n(20)})
		}
		p.Unlock()
		k := int(kRaw%12) + 1
		base := Request{Slot: 1, Type: 1, Range: CurrentRange(60_000), SortBy: ByAction}
		full, err := Run(p, sch, base, 55_000)
		if err != nil {
			return false
		}
		base.K = k
		topk, err := Run(p, sch, base, 55_000)
		if err != nil {
			return false
		}
		if len(topk.Features) > k {
			return false
		}
		for i := range topk.Features {
			if topk.Features[i].FID != full.Features[i].FID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregationMatchesBruteForceProperty(t *testing.T) {
	// Property: windowed SUM aggregation equals a brute-force recount of
	// the raw events in the window (events are placed at slice granularity
	// so slice membership is deterministic).
	sch := model.NewSchema("n")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := model.NewProfile(1)
		type ev struct {
			ts  model.Millis
			fid model.FeatureID
		}
		var evs []ev
		p.Lock()
		for i := 0; i < 80; i++ {
			e := ev{ts: model.Millis(1 + rng.Intn(100)*1000), fid: model.FeatureID(rng.Intn(10))}
			evs = append(evs, e)
			if err := p.Add(sch, e.ts, 1000, 1, 1, e.fid, []int64{1}); err != nil {
				p.Unlock()
				return false
			}
		}
		p.Unlock()
		from := model.Millis(rng.Intn(50)) * 1000
		to := from + model.Millis(1+rng.Intn(60))*1000
		res, err := Run(p, sch, Request{Slot: 1, Type: 1, Range: AbsoluteRange(from, to), SortBy: ByFeatureID}, 0)
		if err != nil {
			return false
		}
		want := map[model.FeatureID]int64{}
		for _, e := range evs {
			// Event lands in slice [align(ts), align(ts)+1000).
			s := e.ts - e.ts%1000
			if s < to && s+1000 > from {
				want[e.fid]++
			}
		}
		if len(res.Features) != len(want) {
			return false
		}
		for _, f := range res.Features {
			if want[f.FID] != f.Counts[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueryTopK(b *testing.B) {
	sch := model.NewSchema("like", "comment", "share")
	p := model.NewProfile(1)
	rng := rand.New(rand.NewSource(2))
	p.Lock()
	for i := 0; i < 5000; i++ {
		_ = p.Add(sch, model.Millis(1+rng.Intn(3600)*1000), 60_000,
			model.SlotID(rng.Intn(4)), model.TypeID(rng.Intn(4)),
			model.FeatureID(rng.Intn(300)), []int64{1, 0, 1})
	}
	p.Unlock()
	req := Request{Slot: 1, Type: 1, Range: CurrentRange(3_600_000), SortBy: ByAction, Action: "like", K: 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, sch, req, 3_600_000); err != nil {
			b.Fatal(err)
		}
	}
}
