package query

import (
	"errors"
	"fmt"
	"sync"
)

// UDAF is a user-defined aggregate function (one of the paper's headline
// capabilities: "complex feature computations such as multi-dimensional
// top K query and user defined aggregate functions over arbitrary time
// windows"). It maps a feature's aggregated count vector to a score;
// queries can sort and filter by that score, giving feature engineers
// derived metrics — CTR, engagement blends, weighted multi-dimensional
// ranks — computed inline at serving time.
type UDAF func(counts []int64) float64

// Registry holds named UDAFs. IPS instances own one registry; names travel
// on the wire so the unified client can request any registered function.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]UDAF
}

// NewRegistry creates a registry preloaded with the built-in functions:
//
//	sum          — total of all counts
//	max          — maximum count
//	ctr          — counts[1]/counts[0] (click-through rate when the
//	               schema is impression,click,...)
//	weighted:... — registered by applications via Register
func NewRegistry() *Registry {
	r := &Registry{fns: make(map[string]UDAF)}
	r.MustRegister("sum", func(counts []int64) float64 {
		var t int64
		for _, c := range counts {
			t += c
		}
		return float64(t)
	})
	r.MustRegister("max", func(counts []int64) float64 {
		var m int64
		for i, c := range counts {
			if i == 0 || c > m {
				m = c
			}
		}
		return float64(m)
	})
	r.MustRegister("ctr", func(counts []int64) float64 {
		if len(counts) < 2 || counts[0] <= 0 {
			return 0
		}
		return float64(counts[1]) / float64(counts[0])
	})
	return r
}

// ErrUnknownUDAF reports a lookup of an unregistered function.
var ErrUnknownUDAF = errors.New("query: unknown UDAF")

// Register adds fn under name; re-registering a name replaces the
// function (hot reload of feature logic, §V-b).
func (r *Registry) Register(name string, fn UDAF) error {
	if name == "" || fn == nil {
		return errors.New("query: UDAF needs a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[name] = fn
	return nil
}

// MustRegister panics on error; for static built-ins.
func (r *Registry) MustRegister(name string, fn UDAF) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Lookup resolves a UDAF by name.
//
//ips:hotpath
func (r *Registry) Lookup(name string) (UDAF, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[name]
	if !ok {
		//ipslint:ignore hotpathalloc the unknown-function error is off the steady state
		return nil, fmt.Errorf("%w: %q", ErrUnknownUDAF, name)
	}
	return fn, nil
}

// Names lists the registered function names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fns))
	for n := range r.fns {
		out = append(out, n)
	}
	return out
}

// WeightedSum builds a UDAF scoring counts by fixed per-action weights —
// the workhorse for multi-dimensional top-K (e.g. like=1, comment=3,
// share=5).
func WeightedSum(weights ...float64) UDAF {
	ws := append([]float64(nil), weights...)
	return func(counts []int64) float64 {
		var s float64
		for i, c := range counts {
			w := 1.0
			if i < len(ws) {
				w = ws[i]
			}
			s += w * float64(c)
		}
		return s
	}
}
