package hashring

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyRing(t *testing.T) {
	r := New(0)
	if got := r.Get(42); got != "" {
		t.Fatalf("empty ring Get = %q", got)
	}
	if got := r.GetN(42, 3); got != nil {
		t.Fatalf("empty ring GetN = %v", got)
	}
	if r.Len() != 0 {
		t.Fatal("empty ring Len != 0")
	}
}

func TestSingleNode(t *testing.T) {
	r := New(8)
	r.Add("a")
	for k := uint64(0); k < 100; k++ {
		if got := r.Get(k); got != "a" {
			t.Fatalf("Get(%d) = %q", k, got)
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	r := New(8)
	r.Add("a")
	r.Add("a")
	if len(r.points) != 8 {
		t.Fatalf("points = %d, want 8", len(r.points))
	}
}

func TestRemove(t *testing.T) {
	r := New(8)
	r.Add("a")
	r.Add("b")
	r.Remove("a")
	r.Remove("never-there")
	for k := uint64(0); k < 100; k++ {
		if got := r.Get(k); got != "b" {
			t.Fatalf("Get(%d) = %q after removal", k, got)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	r := New(DefaultVirtualNodes)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	counts := map[string]int{}
	const keys = 50_000
	for k := uint64(0); k < keys; k++ {
		counts[r.Get(k)]++
	}
	want := keys / nodes
	for node, got := range counts {
		if got < want/2 || got > want*2 {
			t.Fatalf("node %s owns %d keys; want within 2x of %d", node, got, want)
		}
	}
}

func TestMinimalRemapOnMembershipChange(t *testing.T) {
	// Consistent hashing's defining property: removing one of N nodes
	// remaps only ~1/N of the keys.
	r := New(DefaultVirtualNodes)
	const nodes = 10
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	const keys = 20_000
	before := make([]string, keys)
	for k := range before {
		before[k] = r.Get(uint64(k))
	}
	r.Remove("node-3")
	moved := 0
	for k := range before {
		after := r.Get(uint64(k))
		if after != before[k] {
			moved++
			if before[k] != "node-3" {
				t.Fatalf("key %d moved from surviving node %s to %s", k, before[k], after)
			}
		}
	}
	// Expect ~10% moved; allow 5%..20%.
	if moved < keys/20 || moved > keys/5 {
		t.Fatalf("moved %d of %d keys; expected ~1/%d", moved, keys, nodes)
	}
}

func TestSetMembersMatchesIncrementalAdds(t *testing.T) {
	a := New(32)
	b := New(32)
	nodes := []string{"x", "y", "z"}
	for _, n := range nodes {
		a.Add(n)
	}
	b.SetMembers(nodes)
	for k := uint64(0); k < 1000; k++ {
		if a.Get(k) != b.Get(k) {
			t.Fatalf("key %d: add-built %q != set-built %q", k, a.Get(k), b.Get(k))
		}
	}
	// Duplicates in SetMembers are ignored.
	b.SetMembers([]string{"x", "x", "y", "z"})
	if b.Len() != 3 || len(b.points) != 3*32 {
		t.Fatalf("dup SetMembers: len=%d points=%d", b.Len(), len(b.points))
	}
}

func TestGetNDistinct(t *testing.T) {
	r := New(32)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	got := r.GetN(123, 3)
	if len(got) != 3 {
		t.Fatalf("GetN = %v", got)
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("duplicate node in GetN: %v", got)
		}
		seen[n] = true
	}
	if got[0] != r.Get(123) {
		t.Fatal("GetN[0] must equal Get")
	}
	// Request more than membership: capped.
	if got := r.GetN(123, 99); len(got) != 5 {
		t.Fatalf("GetN(99) = %d nodes, want 5", len(got))
	}
}

func TestLookupDeterministicProperty(t *testing.T) {
	r := New(64)
	r.SetMembers([]string{"a", "b", "c", "d"})
	f := func(key uint64) bool {
		return r.Get(key) == r.Get(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				node := fmt.Sprintf("n%d", i%8)
				switch i % 3 {
				case 0:
					r.Add(node)
				case 1:
					r.Get(uint64(i))
				case 2:
					if w == 0 {
						r.Remove(node)
					} else {
						r.GetN(uint64(i), 2)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMembersSorted(t *testing.T) {
	r := New(4)
	r.Add("zeta")
	r.Add("alpha")
	m := r.Members()
	if len(m) != 2 || m[0] != "alpha" || m[1] != "zeta" {
		t.Fatalf("Members = %v", m)
	}
}

func BenchmarkGet(b *testing.B) {
	r := New(DefaultVirtualNodes)
	for i := 0; i < 16; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Get(uint64(i))
	}
}
