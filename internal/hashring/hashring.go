// Package hashring implements the ID-based consistent hashing IPS clients
// use for load balancing across instances (§III). Each instance owns many
// virtual nodes on a 64-bit ring; a profile ID maps to the first virtual
// node clockwise from its hash. Adding or removing an instance only
// remaps the keys adjacent to its virtual nodes, which is what lets the
// cluster scale horizontally without a full reshuffle.
package hashring

import (
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-instance virtual node count; more nodes
// smooth the key distribution at the cost of ring size.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping uint64 keys to named nodes. It is
// safe for concurrent use; lookups take a read lock only.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by hash
	members map[string]struct{}
}

type point struct {
	hash uint64
	node string
}

// New creates a ring with the given virtual-node count per member
// (DefaultVirtualNodes if vnodes <= 0).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// hash64 mixes a 64-bit key (splitmix64 finalizer) — fast and well
// distributed for sequential IDs.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString hashes a node name + virtual index (FNV-1a then mixed).
func hashString(s string, idx int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= uint64(idx)
	h *= prime64
	return hash64(h)
}

// Add inserts a node; adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hashString(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and its virtual nodes.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	out := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			out = append(out, p)
		}
	}
	r.points = out
}

// SetMembers replaces the membership wholesale (the client's periodic
// refresh from service discovery).
func (r *Ring) SetMembers(nodes []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members = make(map[string]struct{}, len(nodes))
	r.points = r.points[:0]
	for _, n := range nodes {
		if _, dup := r.members[n]; dup {
			continue
		}
		r.members[n] = struct{}{}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{hash: hashString(n, i), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Get returns the node owning key, or "" when the ring is empty.
func (r *Ring) Get(key uint64) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// GetN returns the first n distinct nodes clockwise from key, for
// replicated placement. Fewer are returned when the ring has fewer members.
func (r *Ring) GetN(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for len(out) < n {
		if i == len(r.points) {
			i = 0
		}
		node := r.points[i].node
		if _, dup := seen[node]; !dup {
			seen[node] = struct{}{}
			out = append(out, node)
		}
		i++
	}
	return out
}

// Clone returns an independent ring with the same virtual-node count and
// membership. The rebalance planner derives old-vs-new ownership views
// ("the ring after this join/drain") from the live ring without
// perturbing it.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{vnodes: r.vnodes, members: make(map[string]struct{}, len(r.members))}
	for n := range r.members {
		c.members[n] = struct{}{}
	}
	c.points = append([]point(nil), r.points...)
	return c
}

// Members returns the current node set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}
