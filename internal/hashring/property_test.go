package hashring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Satellite property suite for the ring's resharding contract
// (testing/quick): adding one member to an N-member ring remaps at most
// c/N of sampled keys (and every remapped key lands on the new member),
// removing it restores the exact prior mapping, and lookups are
// deterministic across the sort rebuilds SetMembers performs.

const sampleKeys = 2048

// mappingOf snapshots Get over a deterministic key sample.
func mappingOf(r *Ring, rng *rand.Rand) map[uint64]string {
	m := make(map[uint64]string, sampleKeys)
	for i := 0; i < sampleKeys; i++ {
		k := rng.Uint64()
		m[k] = r.Get(k)
	}
	return m
}

func membersFor(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// TestQuickAddRemapBound: for random member counts and key samples,
// Add(one) remaps a bounded fraction, every remapped key maps to the
// added node, and Remove(one) is an exact inverse.
func TestQuickAddRemapBound(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%14) // 2..15 members
		r := New(0)
		r.SetMembers(membersFor(n))

		before := mappingOf(r, rand.New(rand.NewSource(seed)))
		r.Add("joiner")

		remapped := 0
		for k, old := range before {
			now := r.Get(k)
			if now != old {
				remapped++
				if now != "joiner" {
					t.Errorf("n=%d seed=%d: key %d remapped %q -> %q, not to the joiner", n, seed, k, old, now)
					return false
				}
			}
		}
		// Expected fraction is 1/(n+1); allow 3x for vnode placement
		// variance at 128 vnodes.
		bound := 3 * len(before) / (n + 1)
		if remapped > bound {
			t.Errorf("n=%d seed=%d: %d of %d keys remapped, bound %d", n, seed, remapped, len(before), bound)
			return false
		}
		if remapped == 0 {
			// A joiner owning zero of 2048 sampled keys would mean its
			// vnodes landed nowhere — statistically impossible.
			t.Errorf("n=%d seed=%d: joiner took no keys", n, seed)
			return false
		}

		r.Remove("joiner")
		after := mappingOf(r, rand.New(rand.NewSource(seed)))
		for k, old := range before {
			if after[k] != old {
				t.Errorf("n=%d seed=%d: remove did not restore key %d: %q != %q", n, seed, k, after[k], old)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLookupDeterminism: the mapping is a pure function of the
// member SET — identical across insertion orders, SetMembers-vs-Add
// construction, duplicate members, and repeated rebuilds.
func TestQuickLookupDeterminism(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%12)
		members := membersFor(n)

		a := New(0)
		a.SetMembers(members)

		// Same set, shuffled insertion order, built point by point.
		b := New(0)
		shuffled := append([]string(nil), members...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for _, m := range shuffled {
			b.Add(m)
		}

		// Same set with duplicates through SetMembers (forced rebuild).
		c := New(0)
		c.SetMembers(append(append([]string(nil), shuffled...), members...))

		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 512; i++ {
			k := rng.Uint64()
			ga, gb, gc := a.Get(k), b.Get(k), c.Get(k)
			if ga != gb || ga != gc {
				t.Errorf("n=%d seed=%d key=%d: %q / %q / %q diverge", n, seed, k, ga, gb, gc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIndependence: a clone answers identically at clone time and
// diverges only through its own mutations — the planner's old-vs-new
// comparison must never perturb the live ring.
func TestCloneIndependence(t *testing.T) {
	r := New(0)
	r.SetMembers(membersFor(5))
	c := r.Clone()

	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = rng.Uint64()
		if r.Get(keys[i]) != c.Get(keys[i]) {
			t.Fatal("clone diverges at clone time")
		}
	}
	c.Add("joiner")
	if c.Len() != 6 || r.Len() != 5 {
		t.Fatalf("clone mutation leaked: clone %d, live %d members", c.Len(), r.Len())
	}
	moved := 0
	for _, k := range keys {
		if r.Get(k) != c.Get(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("clone+Add mapped no keys to the joiner")
	}
	for _, k := range keys {
		if got := r.Get(k); got == "joiner" {
			t.Fatalf("live ring maps key %d to the clone's joiner", k)
		}
	}
}
