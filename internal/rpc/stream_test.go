package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// startStreamServer serves a handful of stream shapes used across the
// stream tests.
func startStreamServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	// count.N pushes N frames "0".."N-1" then closes cleanly.
	s.HandleStream("count", func(ctx context.Context, payload []byte, st *ServerStream) error {
		n := int(payload[0])
		for i := 0; i < n; i++ {
			if err := st.Send([]byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	// hold pushes one frame then blocks until the client closes.
	s.HandleStream("hold", func(ctx context.Context, payload []byte, st *ServerStream) error {
		if err := st.Send(payload); err != nil {
			return err
		}
		<-ctx.Done()
		return ctx.Err()
	})
	// fail closes with an error without pushing anything.
	s.HandleStream("failstream", func(ctx context.Context, payload []byte, st *ServerStream) error {
		return errors.New("stream boom")
	})
	// panicstream panics; the framework must contain it.
	s.HandleStream("panicstream", func(ctx context.Context, payload []byte, st *ServerStream) error {
		panic("kaboom")
	})
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestStreamCountAndCleanClose(t *testing.T) {
	_, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	ctx := context.Background()
	st, err := c.Stream(ctx, "count", []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 5; i++ {
		p, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(p) != 1 || int(p[0]) != i {
			t.Fatalf("recv %d = %v", i, p)
		}
	}
	if _, err := st.Recv(ctx); err != io.EOF {
		t.Fatalf("after clean close: %v, want io.EOF", err)
	}
}

func TestStreamServerError(t *testing.T) {
	_, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	ctx := context.Background()
	st, err := c.Stream(ctx, "failstream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.Recv(ctx)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "stream boom" {
		t.Fatalf("recv err = %v", err)
	}
}

func TestStreamHandlerPanicContained(t *testing.T) {
	_, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	ctx := context.Background()
	st, err := c.Stream(ctx, "panicstream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.Recv(ctx)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("recv err = %v, want RemoteError", err)
	}
	// The connection must survive the panic for ordinary calls.
	if resp, err := c.Call("echo", []byte("still alive")); err != nil || string(resp) != "still alive" {
		t.Fatalf("echo after panic = %q, %v", resp, err)
	}
}

func TestStreamUnknownMethod(t *testing.T) {
	_, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	ctx := context.Background()
	st, err := c.Stream(ctx, "no.such.stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.Recv(ctx)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("recv err = %v, want RemoteError", err)
	}
}

func TestStreamClientCloseCancelsHandler(t *testing.T) {
	s := NewServer()
	released := make(chan struct{})
	s.HandleStream("hold", func(ctx context.Context, payload []byte, st *ServerStream) error {
		<-ctx.Done()
		close(released)
		return ctx.Err()
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr)
	defer c.Close()
	st, err := c.Stream(context.Background(), "hold", nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("server handler not canceled by client close")
	}
	if _, err := st.Recv(context.Background()); err != ErrClosed {
		t.Fatalf("recv after close = %v, want ErrClosed", err)
	}
}

func TestStreamServerCloseFailsStreams(t *testing.T) {
	s, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	ctx := context.Background()
	st, err := c.Stream(ctx, "hold", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := st.Recv(ctx); err == nil {
		t.Fatal("recv after server close succeeded")
	}
}

func TestStreamInterleavesWithCalls(t *testing.T) {
	_, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	ctx := context.Background()
	st, err := c.Stream(ctx, "hold", []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if p, err := st.Recv(ctx); err != nil || string(p) != "first" {
		t.Fatalf("stream recv = %q, %v", p, err)
	}
	// The held stream must not block pooled calls on the same client.
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("call-%d", i)
			resp, err := c.Call("echo", []byte(msg))
			if err != nil || string(resp) != msg {
				t.Errorf("call %d = %q, %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestStreamSlowConsumerDoesNotBlockConnection(t *testing.T) {
	s := NewServer()
	s.HandleStream("burst", func(ctx context.Context, payload []byte, st *ServerStream) error {
		for i := 0; i < 2000; i++ {
			if err := st.Send(make([]byte, 128)); err != nil {
				return err
			}
		}
		<-ctx.Done()
		return ctx.Err()
	})
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr)
	c.PoolSize = 1 // force calls onto the stream's connection
	defer c.Close()
	st, err := c.Stream(context.Background(), "burst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Never Recv: the 2000 pushed frames buffer client-side. Calls on the
	// same connection must still complete.
	for i := 0; i < 10; i++ {
		if _, err := c.Call("echo", []byte("ping")); err != nil {
			t.Fatalf("call %d with unread stream backlog: %v", i, err)
		}
	}
	// Now drain a few to prove the backlog is intact and ordered.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 100; i++ {
		if _, err := st.Recv(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
}

func TestStreamRecvContextCanceled(t *testing.T) {
	_, addr := startStreamServer(t)
	c := NewClient(addr)
	defer c.Close()
	st, err := c.Stream(context.Background(), "hold", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := st.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv = %v, want deadline exceeded", err)
	}
}
