package rpc

// Allocation gates for the frame layer: encode into a reused buffer,
// read+parse through a reused per-connection buffer. These are the
// transport stages of the zero-allocation read path; the end-to-end gate
// lives in internal/server.

import (
	"bytes"
	"testing"
)

// loopReader replays one encoded frame forever, standing in for a
// socket that keeps delivering identical requests.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestFrameCodecAllocFree(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	encoded, err := appendFrame(nil, 42, kindRequest, "ips.query.topk", payload)
	if err != nil {
		t.Fatal(err)
	}
	lr := &loopReader{data: encoded}
	var rbuf, out []byte
	var fr frame
	for i := 0; i < 8; i++ {
		if fr, rbuf, err = readFrameReuse(lr, rbuf); err != nil {
			t.Fatal(err)
		}
		if out, err = appendFrame(out[:0], fr.seq, kindRequest, "ips.query.topk", fr.payload); err != nil {
			t.Fatal(err)
		}
	}
	if fr.seq != 42 || string(fr.method) != "ips.query.topk" || !bytes.Equal(fr.payload, payload) {
		t.Fatalf("frame roundtrip corrupted: seq=%d method=%q", fr.seq, fr.method)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if fr, rbuf, err = readFrameReuse(lr, rbuf); err != nil {
			t.Fatal(err)
		}
		if out, err = appendFrame(out[:0], fr.seq, kindRequest, "ips.query.topk", fr.payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed frame read+parse+encode: %.2f allocs/run, want 0", allocs)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	var out []byte
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out, err = appendFrame(out[:0], uint64(i), kindRequest, "ips.query.topk", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameReadParse(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	encoded, err := appendFrame(nil, 42, kindRequest, "ips.query.topk", payload)
	if err != nil {
		b.Fatal(err)
	}
	lr := &loopReader{data: encoded}
	var rbuf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, rbuf, err = readFrameReuse(lr, rbuf); err != nil {
			b.Fatal(err)
		}
	}
}
