// Package rpc is the from-scratch framed binary RPC framework that plays
// the role of the paper's internal C++ Thrift stack (§III): the transport
// between the unified IPS client and the compute-cache layer.
//
// Wire protocol (little endian):
//
//	u32 frameLen      (bytes after this field; capped)
//	u64 sequenceID    (request/response correlation)
//	u8  kind          (0 = request, 1 = response, 2 = error response)
//	u16 methodLen, method bytes  (requests only)
//	payload bytes     (method-specific, opaque to the framework)
//
// A single connection multiplexes any number of in-flight requests:
// responses match requests by sequence ID, so a slow call does not block
// the calls behind it (the server handles each frame on its own
// goroutine). Clients pool connections per address.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameSize bounds a single frame; larger frames poison the connection
// and are rejected.
const MaxFrameSize = 16 << 20

// Frame kinds.
const (
	kindRequest  = 0
	kindResponse = 1
	kindError    = 2
)

// Errors returned by the framework.
var (
	ErrClosed        = errors.New("rpc: connection closed")
	ErrTimeout       = errors.New("rpc: request timed out")
	ErrFrameTooLarge = errors.New("rpc: frame exceeds MaxFrameSize")
	ErrNoMethod      = errors.New("rpc: unknown method")
)

// RemoteError is a server-side failure transported back to the caller.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Handler processes one request payload and returns the response payload.
type Handler func(payload []byte) ([]byte, error)

// Server serves RPC over a TCP listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	// delay and dropRate inject faults; set via SetDelay / SetDropRate,
	// which are safe to call while serving.
	delay    atomic.Pointer[func(method string) time.Duration]
	dropRate atomic.Pointer[func() float64]
}

// SetDelay installs an artificial per-request service latency (fault and
// latency modelling in the harness); nil removes it. Safe while serving.
func (s *Server) SetDelay(f func(method string) time.Duration) {
	if f == nil {
		s.delay.Store(nil)
		return
	}
	s.delay.Store(&f)
}

// SetDropRate installs a response-drop probability source in [0,1] for
// fault injection — the client sees a timeout; nil removes it. Safe while
// serving.
func (s *Server) SetDropRate(f func() float64) {
	if f == nil {
		s.dropRate.Store(nil)
		return
	}
	s.dropRate.Store(&f)
}

// NewServer creates a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a handler for method, replacing any previous one.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Serve starts accepting on ln and returns immediately; use Close to stop.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed.Load() {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
}

// Listen is a convenience wrapper: listen on addr and serve. It returns
// the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex // serialize response frames
	for {
		seq, kind, method, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if kind != kindRequest {
			continue // ignore stray frames
		}
		s.mu.RLock()
		h := s.handlers[method]
		s.mu.RUnlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dispatch(conn, &writeMu, seq, method, h, payload)
		}()
	}
}

func (s *Server) dispatch(conn net.Conn, writeMu *sync.Mutex, seq uint64, method string, h Handler, payload []byte) {
	if d := s.delay.Load(); d != nil {
		if dur := (*d)(method); dur > 0 {
			time.Sleep(dur)
		}
	}
	var resp []byte
	var herr error
	if h == nil {
		herr = fmt.Errorf("%w: %s", ErrNoMethod, method)
	} else {
		func() {
			defer func() {
				if r := recover(); r != nil {
					herr = fmt.Errorf("rpc: handler panic: %v", r)
				}
			}()
			resp, herr = h(payload)
		}()
	}
	if dr := s.dropRate.Load(); dr != nil {
		if rate := (*dr)(); rate > 0 && pseudoRand(seq) < rate {
			return // drop the response: client times out
		}
	}
	writeMu.Lock()
	defer writeMu.Unlock()
	if herr != nil {
		_ = writeFrame(conn, seq, kindError, "", []byte(herr.Error()))
		return
	}
	_ = writeFrame(conn, seq, kindResponse, "", resp)
}

// pseudoRand maps a sequence number to [0,1) deterministically, so drop
// behaviour in tests is reproducible.
func pseudoRand(seq uint64) float64 {
	seq ^= seq >> 33
	seq *= 0xff51afd7ed558ccd
	seq ^= seq >> 33
	return float64(seq%10_000) / 10_000
}

func writeFrame(w io.Writer, seq uint64, kind byte, method string, payload []byte) error {
	frameLen := 8 + 1 + len(payload)
	if kind == kindRequest {
		frameLen += 2 + len(method)
	}
	if frameLen > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(buf, uint32(frameLen))
	binary.LittleEndian.PutUint64(buf[4:], seq)
	buf[12] = kind
	off := 13
	if kind == kindRequest {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(method)))
		off += 2
		copy(buf[off:], method)
		off += len(method)
	}
	copy(buf[off:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (seq uint64, kind byte, method string, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen > MaxFrameSize || frameLen < 9 {
		err = ErrFrameTooLarge
		return
	}
	frame := make([]byte, frameLen)
	if _, err = io.ReadFull(r, frame); err != nil {
		return
	}
	seq = binary.LittleEndian.Uint64(frame)
	kind = frame[8]
	off := 9
	if kind == kindRequest {
		if len(frame) < off+2 {
			err = errors.New("rpc: truncated method length")
			return
		}
		ml := int(binary.LittleEndian.Uint16(frame[off:]))
		off += 2
		if len(frame) < off+ml {
			err = errors.New("rpc: truncated method")
			return
		}
		method = string(frame[off : off+ml])
		off += ml
	}
	payload = frame[off:]
	return
}
