// Package rpc is the from-scratch framed binary RPC framework that plays
// the role of the paper's internal C++ Thrift stack (§III): the transport
// between the unified IPS client and the compute-cache layer.
//
// Wire protocol (little endian):
//
//	u32 frameLen      (bytes after this field; capped)
//	u64 sequenceID    (request/response correlation)
//	u8  kind          (0 = request, 1 = response, 2 = error response,
//	                   3 = traced request, 4 = traced response)
//	u16 methodLen, method bytes  (requests only)
//	u64 traceID, u64 parentSpanID (traced requests only)
//	u32 spanBlobLen, span blob    (traced responses only; trace.EncodeSpans)
//	payload bytes     (method-specific, opaque to the framework)
//
// Traced frames (kinds 3/4) are the optional tracing header from
// DESIGN.md "Request tracing": a traced request carries the caller's
// trace ID and the span the roundtrip runs under; the matching traced
// response carries the server's span set, which the client grafts into
// its own trace. Servers answer untraced requests with untraced
// responses, so the header costs nothing when sampling is off.
//
// A single connection multiplexes any number of in-flight requests:
// responses match requests by sequence ID, so a slow call does not block
// the calls behind it (the server handles each frame on its own
// goroutine). Clients pool connections per address.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/trace"
)

// MaxFrameSize bounds a single frame; larger frames poison the connection
// and are rejected.
const MaxFrameSize = 16 << 20

// Frame kinds.
const (
	kindRequest        = 0
	kindResponse       = 1
	kindError          = 2
	kindRequestTraced  = 3
	kindResponseTraced = 4
)

// Errors returned by the framework.
var (
	ErrClosed        = errors.New("rpc: connection closed")
	ErrTimeout       = errors.New("rpc: request timed out")
	ErrFrameTooLarge = errors.New("rpc: frame exceeds MaxFrameSize")
	ErrNoMethod      = errors.New("rpc: unknown method")
)

// RemoteError is a server-side failure transported back to the caller.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Handler processes one request payload and returns the response payload.
type Handler func(payload []byte) ([]byte, error)

// HandlerCtx is a Handler that receives the request context, which
// carries the request's trace when the caller sampled it.
type HandlerCtx func(ctx context.Context, payload []byte) ([]byte, error)

// Server serves RPC over a TCP listener.
type Server struct {
	// Tracer, when non-nil, samples requests that arrive untraced and
	// aggregates the server-side spans of traced ones. Set it before
	// Serve/Listen.
	Tracer *trace.Tracer

	mu       sync.RWMutex
	handlers map[string]HandlerCtx
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	// delay and dropRate inject faults; set via SetDelay / SetDropRate,
	// which are safe to call while serving.
	delay    atomic.Pointer[func(method string) time.Duration]
	dropRate atomic.Pointer[func() float64]
}

// SetDelay installs an artificial per-request service latency (fault and
// latency modelling in the harness); nil removes it. Safe while serving.
func (s *Server) SetDelay(f func(method string) time.Duration) {
	if f == nil {
		s.delay.Store(nil)
		return
	}
	s.delay.Store(&f)
}

// SetDropRate installs a response-drop probability source in [0,1] for
// fault injection — the client sees a timeout; nil removes it. Safe while
// serving.
func (s *Server) SetDropRate(f func() float64) {
	if f == nil {
		s.dropRate.Store(nil)
		return
	}
	s.dropRate.Store(&f)
}

// NewServer creates a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]HandlerCtx), conns: make(map[net.Conn]struct{})}
}

// Handle registers a context-less handler for method, replacing any
// previous one.
func (s *Server) Handle(method string, h Handler) {
	s.HandleCtx(method, func(_ context.Context, payload []byte) ([]byte, error) {
		return h(payload)
	})
}

// HandleCtx registers a context-aware handler for method, replacing any
// previous one. The context carries the request's trace when sampled.
func (s *Server) HandleCtx(method string, h HandlerCtx) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Serve starts accepting on ln and returns immediately; use Close to stop.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed.Load() {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
}

// Listen is a convenience wrapper: listen on addr and serve. It returns
// the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex // serialize response frames
	for {
		fr, err := readFrame(conn)
		if err != nil {
			return
		}
		if fr.kind != kindRequest && fr.kind != kindRequestTraced {
			continue // ignore stray frames
		}
		s.mu.RLock()
		h := s.handlers[fr.method]
		s.mu.RUnlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dispatch(conn, &writeMu, fr, h)
		}()
	}
}

func (s *Server) dispatch(conn net.Conn, writeMu *sync.Mutex, fr frame, h HandlerCtx) {
	if d := s.delay.Load(); d != nil {
		if dur := (*d)(fr.method); dur > 0 {
			time.Sleep(dur)
		}
	}
	// A traced request continues the caller's trace even without a local
	// Tracer (the spans only ship back over the wire); an untraced one
	// may win the local sampling draw.
	ctx := context.Background()
	var tr *trace.Trace
	traced := fr.kind == kindRequestTraced
	if traced {
		tr = trace.Adopt(fr.traceID, fr.parentSpan)
		ctx = trace.NewContext(ctx, tr)
	} else {
		ctx, tr = s.Tracer.StartRequest(ctx)
	}
	dctx, dspan := trace.StartSpan(ctx, trace.StageServerDispatch)
	var resp []byte
	var herr error
	if h == nil {
		herr = fmt.Errorf("%w: %s", ErrNoMethod, fr.method)
	} else {
		func() {
			defer func() {
				if r := recover(); r != nil {
					herr = fmt.Errorf("rpc: handler panic: %v", r)
				}
			}()
			resp, herr = h(dctx, fr.payload)
		}()
	}
	dspan.EndErr(herr)
	s.Tracer.Done(tr)
	if dr := s.dropRate.Load(); dr != nil {
		if rate := (*dr)(); rate > 0 && pseudoRand(fr.seq) < rate {
			return // drop the response: client times out
		}
	}
	writeMu.Lock()
	defer writeMu.Unlock()
	if herr != nil {
		_ = writeFrame(conn, fr.seq, kindError, "", []byte(herr.Error()))
		return
	}
	if traced {
		_ = writeTracedResponse(conn, fr.seq, trace.EncodeSpans(tr.Spans()), resp)
		return
	}
	_ = writeFrame(conn, fr.seq, kindResponse, "", resp)
}

// pseudoRand maps a sequence number to [0,1) deterministically, so drop
// behaviour in tests is reproducible.
func pseudoRand(seq uint64) float64 {
	seq ^= seq >> 33
	seq *= 0xff51afd7ed558ccd
	seq ^= seq >> 33
	return float64(seq%10_000) / 10_000
}

// frame is one decoded wire frame.
type frame struct {
	seq        uint64
	kind       byte
	method     string // requests only
	traceID    uint64 // traced requests only
	parentSpan uint64 // traced requests only
	blob       []byte // traced responses only: encoded server spans
	payload    []byte
}

func writeFrame(w io.Writer, seq uint64, kind byte, method string, payload []byte) error {
	frameLen := 8 + 1 + len(payload)
	if kind == kindRequest {
		frameLen += 2 + len(method)
	}
	if frameLen > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(buf, uint32(frameLen))
	binary.LittleEndian.PutUint64(buf[4:], seq)
	buf[12] = kind
	off := 13
	if kind == kindRequest {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(method)))
		off += 2
		copy(buf[off:], method)
		off += len(method)
	}
	copy(buf[off:], payload)
	_, err := w.Write(buf)
	noteWrite(len(buf))
	return err
}

// writeTracedRequest writes a kindRequestTraced frame carrying the
// caller's trace ID and the span ID the roundtrip runs under.
func writeTracedRequest(w io.Writer, seq uint64, method string, traceID, parentSpan uint64, payload []byte) error {
	frameLen := 8 + 1 + 2 + len(method) + 16 + len(payload)
	if frameLen > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(buf, uint32(frameLen))
	binary.LittleEndian.PutUint64(buf[4:], seq)
	buf[12] = kindRequestTraced
	off := 13
	binary.LittleEndian.PutUint16(buf[off:], uint16(len(method)))
	off += 2
	copy(buf[off:], method)
	off += len(method)
	binary.LittleEndian.PutUint64(buf[off:], traceID)
	binary.LittleEndian.PutUint64(buf[off+8:], parentSpan)
	off += 16
	copy(buf[off:], payload)
	_, err := w.Write(buf)
	noteWrite(len(buf))
	return err
}

// writeTracedResponse writes a kindResponseTraced frame: the span blob,
// then the payload.
func writeTracedResponse(w io.Writer, seq uint64, blob, payload []byte) error {
	frameLen := 8 + 1 + 4 + len(blob) + len(payload)
	if frameLen > MaxFrameSize {
		// Too many spans to ship: degrade to an untraced response rather
		// than poison the connection.
		return writeFrame(w, seq, kindResponse, "", payload)
	}
	buf := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(buf, uint32(frameLen))
	binary.LittleEndian.PutUint64(buf[4:], seq)
	buf[12] = kindResponseTraced
	off := 13
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(blob)))
	off += 4
	copy(buf[off:], blob)
	off += len(blob)
	copy(buf[off:], payload)
	_, err := w.Write(buf)
	noteWrite(len(buf))
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var fr frame
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fr, err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen > MaxFrameSize || frameLen < 9 {
		return fr, ErrFrameTooLarge
	}
	raw := make([]byte, frameLen)
	if _, err := io.ReadFull(r, raw); err != nil {
		return fr, err
	}
	noteRead(4 + len(raw))
	fr.seq = binary.LittleEndian.Uint64(raw)
	fr.kind = raw[8]
	off := 9
	if fr.kind == kindRequest || fr.kind == kindRequestTraced {
		if len(raw) < off+2 {
			return fr, errors.New("rpc: truncated method length")
		}
		ml := int(binary.LittleEndian.Uint16(raw[off:]))
		off += 2
		if len(raw) < off+ml {
			return fr, errors.New("rpc: truncated method")
		}
		fr.method = string(raw[off : off+ml])
		off += ml
		if fr.kind == kindRequestTraced {
			if len(raw) < off+16 {
				return fr, errors.New("rpc: truncated trace header")
			}
			fr.traceID = binary.LittleEndian.Uint64(raw[off:])
			fr.parentSpan = binary.LittleEndian.Uint64(raw[off+8:])
			off += 16
		}
	}
	if fr.kind == kindResponseTraced {
		if len(raw) < off+4 {
			return fr, errors.New("rpc: truncated span blob length")
		}
		bl := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		if len(raw) < off+bl {
			return fr, errors.New("rpc: truncated span blob")
		}
		fr.blob = raw[off : off+bl]
		off += bl
	}
	fr.payload = raw[off:]
	return fr, nil
}
