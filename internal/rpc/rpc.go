// Package rpc is the from-scratch framed binary RPC framework that plays
// the role of the paper's internal C++ Thrift stack (§III): the transport
// between the unified IPS client and the compute-cache layer.
//
// Wire protocol (little endian):
//
//	u32 frameLen      (bytes after this field; capped)
//	u64 sequenceID    (request/response correlation)
//	u8  kind          (0 = request, 1 = response, 2 = error response,
//	                   3 = traced request, 4 = traced response,
//	                   5 = stream open, 6 = stream data, 7 = stream close)
//	u16 methodLen, method bytes  (requests and stream opens only)
//	u64 traceID, u64 parentSpanID (traced requests only)
//	u32 spanBlobLen, span blob    (traced responses only; trace.EncodeSpans)
//	payload bytes     (method-specific, opaque to the framework)
//
// Traced frames (kinds 3/4) are the optional tracing header from
// DESIGN.md "Request tracing": a traced request carries the caller's
// trace ID and the span the roundtrip runs under; the matching traced
// response carries the server's span set, which the client grafts into
// its own trace. Servers answer untraced requests with untraced
// responses, so the header costs nothing when sampling is off.
//
// Stream frames (kinds 5/6/7) are the push transport behind continuous
// queries (DESIGN.md "Continuous queries"): a stream open carries a
// method and payload like a request, after which the server pushes data
// frames under the same sequence ID until either side closes the stream.
// See stream.go for the client/server stream APIs.
//
// A single connection multiplexes any number of in-flight requests:
// responses match requests by sequence ID, so a slow call does not block
// the calls behind it (the server handles each frame on its own
// goroutine). Clients pool connections per address.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/trace"
)

// MaxFrameSize bounds a single frame; larger frames poison the connection
// and are rejected.
const MaxFrameSize = 16 << 20

// Frame kinds.
const (
	kindRequest        = 0
	kindResponse       = 1
	kindError          = 2
	kindRequestTraced  = 3
	kindResponseTraced = 4
	kindStreamOpen     = 5
	kindStreamData     = 6
	kindStreamClose    = 7
)

// Errors returned by the framework.
var (
	ErrClosed        = errors.New("rpc: connection closed")
	ErrTimeout       = errors.New("rpc: request timed out")
	ErrFrameTooLarge = errors.New("rpc: frame exceeds MaxFrameSize")
	ErrNoMethod      = errors.New("rpc: unknown method")
)

// RemoteError is a server-side failure transported back to the caller.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Handler processes one request payload and returns the response payload.
type Handler func(payload []byte) ([]byte, error)

// HandlerCtx is a Handler that receives the request context, which
// carries the request's trace when the caller sampled it.
type HandlerCtx func(ctx context.Context, payload []byte) ([]byte, error)

// FastHandler is the inline-dispatch handler shape: the response payload
// is appended into dst (a per-connection buffer the server reuses) and
// the extended slice returned. Appending into caller-owned storage is
// what lets a fast handler answer with zero heap allocations — there is
// no ownership gap between the handler returning and the frame encode
// copying the payload out.
type FastHandler func(ctx context.Context, payload, dst []byte) ([]byte, error)

// Server serves RPC over a TCP listener.
type Server struct {
	// Tracer, when non-nil, samples requests that arrive untraced and
	// aggregates the server-side spans of traced ones. Set it before
	// Serve/Listen.
	Tracer *trace.Tracer

	mu       sync.RWMutex
	handlers map[string]HandlerCtx
	// streamHandlers holds methods served as long-lived push streams
	// (HandleStream); see stream.go.
	streamHandlers map[string]StreamHandler
	// fast holds methods whose handlers run inline on the connection's
	// read loop (HandleFast): short, non-blocking handlers on the
	// steady-state read path, dispatched with zero per-request
	// allocations. Everything else gets the goroutine-per-frame path.
	fast   map[string]FastHandler
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// delay and dropRate inject faults; set via SetDelay / SetDropRate,
	// which are safe to call while serving.
	delay    atomic.Pointer[func(method string) time.Duration]
	dropRate atomic.Pointer[func() float64]
}

// SetDelay installs an artificial per-request service latency (fault and
// latency modelling in the harness); nil removes it. Safe while serving.
func (s *Server) SetDelay(f func(method string) time.Duration) {
	if f == nil {
		s.delay.Store(nil)
		return
	}
	s.delay.Store(&f)
}

// SetDropRate installs a response-drop probability source in [0,1] for
// fault injection — the client sees a timeout; nil removes it. Safe while
// serving.
func (s *Server) SetDropRate(f func() float64) {
	if f == nil {
		s.dropRate.Store(nil)
		return
	}
	s.dropRate.Store(&f)
}

// NewServer creates a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]HandlerCtx), fast: make(map[string]FastHandler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a context-less handler for method, replacing any
// previous one.
func (s *Server) Handle(method string, h Handler) {
	s.HandleCtx(method, func(_ context.Context, payload []byte) ([]byte, error) {
		return h(payload)
	})
}

// HandleCtx registers a context-aware handler for method, replacing any
// previous one. The context carries the request's trace when sampled.
func (s *Server) HandleCtx(method string, h HandlerCtx) {
	s.mu.Lock()
	s.handlers[method] = h
	delete(s.fast, method)
	s.mu.Unlock()
}

// HandleFast registers an inline-dispatch handler for method: untraced,
// unsampled requests run directly on the connection's read loop with the
// request payload aliasing the reusable read buffer and the response
// appended into a reusable per-connection buffer — no goroutine, no
// frame copy, no allocations. Fast handlers must be short and
// non-blocking (a slow one head-of-line blocks its connection), and must
// not retain either buffer after returning. Traced, sampled, or
// fault-delayed requests for the same method transparently fall back to
// the goroutine path through an adapter.
func (s *Server) HandleFast(method string, h FastHandler) {
	s.mu.Lock()
	s.handlers[method] = func(ctx context.Context, payload []byte) ([]byte, error) {
		return h(ctx, payload, nil)
	}
	s.fast[method] = h
	s.mu.Unlock()
}

// Serve starts accepting on ln and returns immediately; use Close to stop.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed.Load() {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
}

// Listen is a convenience wrapper: listen on addr and serve. It returns
// the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

//ips:hotpath-trust the slow path deep-copies frames and spawns goroutines by design; the fast path is checked in dispatchFast
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	cw := &connWriter{w: conn}
	cs := &connStreams{}
	defer cs.cancelAll() // connection death cancels its open streams
	var rbuf, respBuf []byte
	for {
		fr, buf, err := readFrameReuse(conn, rbuf)
		rbuf = buf
		if err != nil {
			return
		}
		if fr.kind == kindStreamOpen {
			// The payload escapes to the handler goroutine; detach it
			// from the reusable read buffer.
			s.startStream(cw, cs, fr.seq, string(fr.method), append([]byte(nil), fr.payload...))
			continue
		}
		if fr.kind == kindStreamClose {
			cs.cancel(fr.seq)
			continue
		}
		if fr.kind != kindRequest && fr.kind != kindRequestTraced {
			continue // ignore stray frames
		}
		s.mu.RLock()
		h := s.handlers[string(fr.method)] // no-copy map lookup
		fh := s.fast[string(fr.method)]
		s.mu.RUnlock()
		// Inline fast path: the payload aliases the reusable read buffer,
		// which is safe only because the handler completes before the
		// next readFrameReuse. Sampled requests fall back to the
		// goroutine path (span collection allocates anyway).
		forceTrace := false
		if fh != nil && fr.kind == kindRequest && s.delay.Load() == nil {
			done, rb := s.dispatchFast(cw, fr, fh, respBuf)
			respBuf = rb
			if done {
				continue
			}
			// dispatchFast consumed a winning sampling draw; make the
			// goroutine path honor it.
			forceTrace = true
		}
		// Slow path: the frame escapes this loop, so detach it from the
		// reusable buffer.
		fr.method = append([]byte(nil), fr.method...)
		fr.payload = append([]byte(nil), fr.payload...)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dispatch(cw, fr, h, forceTrace)
		}()
	}
}

// dispatchFast runs a fast handler inline, appending its response into
// the connection's reusable response buffer and writing the frame
// through the reused write buffer. It reports false — without consuming
// the request — when the server-side sampling draw wins, sending the
// request down the goroutine path that knows how to collect spans. The
// returned slice is the (possibly grown) response buffer for the
// caller's next request.
//
//ips:hotpath
func (s *Server) dispatchFast(cw *connWriter, fr frame, h FastHandler, respBuf []byte) (bool, []byte) {
	if s.Tracer.Sample() {
		return false, respBuf
	}
	resp, herr := safeCallFast(h, contextBG, fr.payload, respBuf[:0])
	if resp != nil {
		respBuf = resp // retain grown storage for the next request
	}
	if dr := s.dropRate.Load(); dr != nil {
		//ipslint:ignore hotpathalloc fault injection is a test-only configuration
		if rate := (*dr)(); rate > 0 && pseudoRand(fr.seq) < rate {
			return true, respBuf // drop the response: client times out
		}
	}
	if herr != nil {
		//ipslint:ignore hotpathalloc error responses materialize the message; errors are off the steady state
		_ = cw.send(fr.seq, kindError, "", []byte(herr.Error()))
		return true, respBuf
	}
	_ = cw.send(fr.seq, kindResponse, "", resp)
	return true, respBuf
}

// contextBG is the shared background context for untraced dispatches.
var contextBG = context.Background()

// safeCall invokes h with panic containment.
//
//ips:hotpath-trust panic recovery needs a deferred closure; the steady state never triggers it
func safeCall(h HandlerCtx, ctx context.Context, payload []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(ctx, payload)
}

// safeCallFast is safeCall for the append-style fast handler shape.
//
//ips:hotpath-trust panic recovery needs a deferred closure; the steady state never triggers it
func safeCallFast(h FastHandler, ctx context.Context, payload, dst []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(ctx, payload, dst)
}

func (s *Server) dispatch(cw *connWriter, fr frame, h HandlerCtx, forceTrace bool) {
	if d := s.delay.Load(); d != nil {
		if dur := (*d)(string(fr.method)); dur > 0 {
			time.Sleep(dur)
		}
	}
	// A traced request continues the caller's trace even without a local
	// Tracer (the spans only ship back over the wire); an untraced one
	// may win the local sampling draw.
	ctx := context.Background()
	var tr *trace.Trace
	traced := fr.kind == kindRequestTraced
	switch {
	case traced:
		tr = trace.Adopt(fr.traceID, fr.parentSpan)
		ctx = trace.NewContext(ctx, tr)
	case forceTrace:
		// dispatchFast already won the sampling draw for this request.
		tr = trace.New()
		ctx = trace.NewContext(ctx, tr)
	default:
		ctx, tr = s.Tracer.StartRequest(ctx)
	}
	dctx, dspan := trace.StartSpan(ctx, trace.StageServerDispatch)
	var resp []byte
	var herr error
	if h == nil {
		herr = fmt.Errorf("%w: %s", ErrNoMethod, fr.method)
	} else {
		resp, herr = safeCall(h, dctx, fr.payload)
	}
	dspan.EndErr(herr)
	s.Tracer.Done(tr)
	if dr := s.dropRate.Load(); dr != nil {
		if rate := (*dr)(); rate > 0 && pseudoRand(fr.seq) < rate {
			return // drop the response: client times out
		}
	}
	if herr != nil {
		_ = cw.send(fr.seq, kindError, "", []byte(herr.Error()))
		return
	}
	if traced {
		_ = cw.sendTraced(fr.seq, trace.EncodeSpans(tr.Spans()), resp)
		return
	}
	_ = cw.send(fr.seq, kindResponse, "", resp)
}

// pseudoRand maps a sequence number to [0,1) deterministically, so drop
// behaviour in tests is reproducible.
func pseudoRand(seq uint64) float64 {
	seq ^= seq >> 33
	seq *= 0xff51afd7ed558ccd
	seq ^= seq >> 33
	return float64(seq%10_000) / 10_000
}

// frame is one decoded wire frame. method, blob, and payload alias the
// buffer the frame was parsed from: a frame handed to another goroutine
// must be deep-copied first (see serveConn's slow path).
type frame struct {
	seq        uint64
	kind       byte
	method     []byte // requests only
	traceID    uint64 // traced requests only
	parentSpan uint64 // traced requests only
	blob       []byte // traced responses only: encoded server spans
	payload    []byte
}

// appendFrame serializes a request/response/error frame into dst's
// storage and returns the extended slice. Callers that reuse dst (the
// per-connection write buffers) pay zero allocations per frame in the
// steady state.
//
//ips:hotpath
func appendFrame(dst []byte, seq uint64, kind byte, method string, payload []byte) ([]byte, error) {
	frameLen := 8 + 1 + len(payload)
	if kind == kindRequest || kind == kindStreamOpen {
		frameLen += 2 + len(method)
	}
	if frameLen > MaxFrameSize {
		return dst, ErrFrameTooLarge
	}
	dst = appendUint32(dst, uint32(frameLen))
	dst = appendUint64(dst, seq)
	dst = append(dst, kind)
	if kind == kindRequest || kind == kindStreamOpen {
		dst = appendUint16(dst, uint16(len(method)))
		dst = append(dst, method...)
	}
	dst = append(dst, payload...)
	return dst, nil
}

// appendTracedRequest serializes a kindRequestTraced frame carrying the
// caller's trace ID and the span ID the roundtrip runs under.
//
//ips:hotpath
func appendTracedRequest(dst []byte, seq uint64, method string, traceID, parentSpan uint64, payload []byte) ([]byte, error) {
	frameLen := 8 + 1 + 2 + len(method) + 16 + len(payload)
	if frameLen > MaxFrameSize {
		return dst, ErrFrameTooLarge
	}
	dst = appendUint32(dst, uint32(frameLen))
	dst = appendUint64(dst, seq)
	dst = append(dst, kindRequestTraced)
	dst = appendUint16(dst, uint16(len(method)))
	dst = append(dst, method...)
	dst = appendUint64(dst, traceID)
	dst = appendUint64(dst, parentSpan)
	dst = append(dst, payload...)
	return dst, nil
}

// appendTracedResponse serializes a kindResponseTraced frame: the span
// blob, then the payload. Oversized span sets degrade to an untraced
// response rather than poison the connection.
func appendTracedResponse(dst []byte, seq uint64, blob, payload []byte) ([]byte, error) {
	frameLen := 8 + 1 + 4 + len(blob) + len(payload)
	if frameLen > MaxFrameSize {
		return appendFrame(dst, seq, kindResponse, "", payload)
	}
	dst = appendUint32(dst, uint32(frameLen))
	dst = appendUint64(dst, seq)
	dst = append(dst, kindResponseTraced)
	dst = appendUint32(dst, uint32(len(blob)))
	dst = append(dst, blob...)
	dst = append(dst, payload...)
	return dst, nil
}

//ips:hotpath
func appendUint16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

//ips:hotpath
func appendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

//ips:hotpath
func appendUint64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// connWriter serializes response frames onto one connection through a
// reused write buffer: the buffer is encoded and flushed under the mutex,
// so steady-state responses allocate nothing.
type connWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

//ips:hotpath
func (cw *connWriter) send(seq uint64, kind byte, method string, payload []byte) error {
	cw.mu.Lock()
	buf, err := appendFrame(cw.buf[:0], seq, kind, method, payload)
	cw.buf = buf
	if err == nil {
		//ipslint:ignore hotpathalloc net.Conn.Write is an interface call into the runtime socket, not an allocation site we control
		_, err = cw.w.Write(buf)
		noteWrite(len(buf))
	}
	cw.mu.Unlock()
	return err
}

// sendTracedRequest writes a kindRequestTraced frame through the reused
// write buffer. Traced requests are the sampled path, but the encode
// itself stays allocation-free.
//
//ips:hotpath
func (cw *connWriter) sendTracedRequest(seq uint64, method string, traceID, parentSpan uint64, payload []byte) error {
	cw.mu.Lock()
	buf, err := appendTracedRequest(cw.buf[:0], seq, method, traceID, parentSpan, payload)
	cw.buf = buf
	if err == nil {
		//ipslint:ignore hotpathalloc net.Conn.Write is an interface call into the runtime socket, not an allocation site we control
		_, err = cw.w.Write(buf)
		noteWrite(len(buf))
	}
	cw.mu.Unlock()
	return err
}

func (cw *connWriter) sendTraced(seq uint64, blob, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	buf, err := appendTracedResponse(cw.buf[:0], seq, blob, payload)
	cw.buf = buf
	if err != nil {
		return err
	}
	_, err = cw.w.Write(buf)
	noteWrite(len(buf))
	return err
}

// writeFrame is the allocating one-shot form, kept for callers without a
// reusable buffer.
func writeFrame(w io.Writer, seq uint64, kind byte, method string, payload []byte) error {
	buf, err := appendFrame(nil, seq, kind, method, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	noteWrite(len(buf))
	return err
}

// parseFrame decodes a frame from raw (the bytes after the length
// prefix). The frame's method, blob, and payload alias raw.
//
//ips:hotpath
func parseFrame(raw []byte) (frame, error) {
	var fr frame
	if len(raw) < 9 {
		return fr, errTruncatedHeader
	}
	fr.seq = binary.LittleEndian.Uint64(raw)
	fr.kind = raw[8]
	off := 9
	if fr.kind == kindRequest || fr.kind == kindRequestTraced || fr.kind == kindStreamOpen {
		if len(raw) < off+2 {
			return fr, errTruncatedMethodLen
		}
		ml := int(binary.LittleEndian.Uint16(raw[off:]))
		off += 2
		if len(raw) < off+ml {
			return fr, errTruncatedMethod
		}
		fr.method = raw[off : off+ml]
		off += ml
		if fr.kind == kindRequestTraced {
			if len(raw) < off+16 {
				return fr, errTruncatedTraceHdr
			}
			fr.traceID = binary.LittleEndian.Uint64(raw[off:])
			fr.parentSpan = binary.LittleEndian.Uint64(raw[off+8:])
			off += 16
		}
	}
	if fr.kind == kindResponseTraced {
		if len(raw) < off+4 {
			return fr, errTruncatedBlobLen
		}
		bl := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		if len(raw) < off+bl {
			return fr, errTruncatedBlob
		}
		fr.blob = raw[off : off+bl]
		off += bl
	}
	fr.payload = raw[off:]
	return fr, nil
}

// Preallocated parse errors keep the malformed-frame branches off the
// hot path's allocation profile.
var (
	errTruncatedHeader    = errors.New("rpc: truncated frame header")
	errTruncatedMethodLen = errors.New("rpc: truncated method length")
	errTruncatedMethod    = errors.New("rpc: truncated method")
	errTruncatedTraceHdr  = errors.New("rpc: truncated trace header")
	errTruncatedBlobLen   = errors.New("rpc: truncated span blob length")
	errTruncatedBlob      = errors.New("rpc: truncated span blob")
)

// readFrameReuse reads one frame, reusing buf for the body when it has
// capacity; it returns the frame (aliasing the returned buffer) and the
// possibly-grown buffer for the caller's next read. Single-reader use
// only: the previous frame's contents are dead once this is called.
//
//ips:hotpath
func readFrameReuse(r io.Reader, buf []byte) (frame, []byte, error) {
	// The length prefix reads into the reusable buffer too: a local
	// array would escape through the io.Reader interface call and cost
	// one heap allocation per frame.
	if cap(buf) < 4 {
		//ipslint:ignore hotpathalloc the first read on a connection sizes its buffer; reuse amortizes it away
		buf = make([]byte, 4096)
	}
	//ipslint:ignore hotpathalloc io.ReadFull into an existing buffer does not allocate; the interface call is the runtime socket
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return frame{}, buf, err
	}
	frameLen := binary.LittleEndian.Uint32(buf[:4])
	if frameLen > MaxFrameSize || frameLen < 9 {
		return frame{}, buf, ErrFrameTooLarge
	}
	if cap(buf) < int(frameLen) {
		//ipslint:ignore hotpathalloc read-buffer growth amortizes away under per-connection reuse
		buf = make([]byte, frameLen)
	}
	raw := buf[:frameLen]
	//ipslint:ignore hotpathalloc io.ReadFull into an existing buffer does not allocate; the interface call is the runtime socket
	if _, err := io.ReadFull(r, raw); err != nil {
		return frame{}, buf, err
	}
	noteRead(4 + len(raw))
	fr, err := parseFrame(raw)
	return fr, buf, err
}

// readFrame reads one frame into fresh storage — the form for callers
// that hand the frame to another goroutine.
func readFrame(r io.Reader) (frame, error) {
	fr, _, err := readFrameReuse(r, nil)
	return fr, err
}
