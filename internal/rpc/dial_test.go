package rpc

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestDialDoesNotBlockHealthyConnection is the regression test for the
// head-of-line blocking bug where pick() held c.mu across net.DialTimeout:
// one blackholed address stalled every concurrent call on the client for up
// to DialTimeout. With dials moved outside the lock, a call must ride an
// existing healthy connection at full speed while a pool top-up dial hangs.
func TestDialDoesNotBlockHealthyConnection(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	c.PoolSize = 2
	c.DialTimeout = 300 * time.Millisecond
	defer c.Close()

	release := make(chan struct{})
	defer close(release)
	var dials atomic.Int32
	c.DialFunc = func(a string, timeout time.Duration) (net.Conn, error) {
		if dials.Add(1) == 1 {
			return net.DialTimeout("tcp", a, timeout)
		}
		// Every later dial is blackholed: it hangs until the test ends.
		<-release
		return nil, errors.New("blackholed")
	}

	// First call dials the one healthy connection (and kicks off a
	// background top-up dial that hangs on the blackhole).
	if _, err := c.Call("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// While that dial is hung, calls must complete promptly on the healthy
	// pooled connection.
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := c.Call("echo", []byte("fast")); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("call %d took %v while a dial was hung; head-of-line blocking is back", i, elapsed)
		}
	}
	if dials.Load() < 2 {
		t.Fatal("background top-up dial never started; test exercised nothing")
	}
}

// TestPickWaitersWakeWhenDialSettles covers the zero-connection path: a
// caller that finds another caller's dial in flight must block until that
// dial settles and then resolve (here: fail, the address is unreachable) —
// not deadlock on a lost wakeup.
func TestPickWaitersWakeWhenDialSettles(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens here
	c.DialTimeout = 100 * time.Millisecond
	defer c.Close()

	gate := make(chan struct{})
	c.DialFunc = func(a string, timeout time.Duration) (net.Conn, error) {
		<-gate
		return nil, errors.New("unreachable")
	}

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Call("echo", nil)
			errs <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let one dial start and one waiter park
	close(gate)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("call against unreachable address should fail")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("pick waiter never woke after the dial settled")
		}
	}
}
