package rpc

import (
	"context"
	"testing"
	"time"

	"ips/internal/trace"
)

// TestTracedCallGraftsServerSpans proves the traced frame round trip:
// the server continues the client's trace, its spans come back in the
// traced response, and the client grafts them under the roundtrip span.
func TestTracedCallGraftsServerSpans(t *testing.T) {
	srv := NewServer()
	srv.HandleCtx("echo", func(ctx context.Context, p []byte) ([]byte, error) {
		sp := trace.StartLeaf(ctx, trace.StageCacheGet)
		sp.SetFlags(trace.FlagCacheHit)
		sp.End()
		return p, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(addr)
	defer cl.Close()

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	ctx, root := trace.StartSpan(ctx, trace.StageClientQuery)
	resp, err := cl.CallCtx(ctx, "echo", []byte("hi"))
	root.End()
	if err != nil || string(resp) != "hi" {
		t.Fatalf("CallCtx: %q, %v", resp, err)
	}

	spans := tr.Spans()
	if err := trace.Validate(spans, 5*time.Millisecond); err != nil {
		t.Fatalf("grafted trace ill-formed: %v\nspans: %+v", err, spans)
	}
	stages := map[trace.Stage]trace.Span{}
	for _, sp := range spans {
		stages[sp.Stage] = sp
	}
	for _, want := range []trace.Stage{trace.StageClientQuery, trace.StageRPCDial,
		trace.StageRPCRoundtrip, trace.StageServerDispatch, trace.StageCacheGet} {
		if _, ok := stages[want]; !ok {
			t.Fatalf("stage %v missing from trace: %+v", want, spans)
		}
	}
	if stages[trace.StageServerDispatch].Parent != stages[trace.StageRPCRoundtrip].ID {
		t.Fatal("server dispatch span not grafted under the roundtrip span")
	}
	if stages[trace.StageCacheGet].Flags&trace.FlagCacheHit == 0 {
		t.Fatal("server span flags lost in transit")
	}
}

// TestUntracedCallStaysUntraced pins that a context without a trace uses
// the legacy frame kinds and the handler sees an untraced context.
func TestUntracedCallStaysUntraced(t *testing.T) {
	srv := NewServer()
	srv.HandleCtx("probe", func(ctx context.Context, p []byte) ([]byte, error) {
		if trace.FromContext(ctx) != nil {
			t.Error("handler context unexpectedly traced")
		}
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(addr)
	defer cl.Close()
	if _, err := cl.Call("probe", nil); err != nil {
		t.Fatal(err)
	}
}

// TestServerLocalSampling pins that a server with its own Tracer samples
// untraced requests and aggregates dispatch spans.
func TestServerLocalSampling(t *testing.T) {
	srv := NewServer()
	srv.Tracer = trace.NewTracer(trace.Config{SampleEvery: 1})
	srv.Handle("noop", func(p []byte) ([]byte, error) { return nil, nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(addr)
	defer cl.Close()
	if _, err := cl.Call("noop", nil); err != nil {
		t.Fatal(err)
	}
	st := srv.Tracer.Stats()
	if st.Traces != 1 {
		t.Fatalf("server tracer saw %d traces, want 1", st.Traces)
	}
	for _, s := range st.Stages {
		if s.Stage == trace.StageServerDispatch && s.Snapshot.Count != 1 {
			t.Fatalf("dispatch histogram count %d, want 1", s.Snapshot.Count)
		}
	}
}
