package rpc

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/trace"
)

// Client issues RPC calls to one address over a small pool of multiplexed
// connections.
type Client struct {
	addr string
	// PoolSize is the connection count; default 2.
	PoolSize int
	// DialTimeout bounds connection establishment; default 1s.
	DialTimeout time.Duration
	// CallTimeout is the default per-call deadline; default 1s.
	CallTimeout time.Duration
	// DialFunc overrides connection establishment, for tests (e.g. to
	// simulate a blackholed address whose dial hangs). Nil means
	// net.DialTimeout("tcp", addr, DialTimeout).
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

	mu       sync.Mutex
	conns    []*clientConn
	dialing  int           // in-flight dials; at most one per client
	dialDone chan struct{} // closed when the in-flight dial finishes
	next     atomic.Uint64
	closed   bool
}

// clientConn is one multiplexed connection with a reader goroutine
// dispatching responses to waiting calls by sequence ID.
type clientConn struct {
	conn    net.Conn
	writeMu sync.Mutex
	mu      sync.Mutex
	pending map[uint64]chan result
	seq     atomic.Uint64
	dead    atomic.Bool
}

type result struct {
	payload []byte
	blob    []byte // traced responses: encoded server spans
	err     error
}

// NewClient creates a client for addr; connections are dialed lazily.
func NewClient(addr string) *Client {
	return &Client{addr: addr, PoolSize: 2, DialTimeout: time.Second, CallTimeout: time.Second}
}

// Addr returns the remote address this client talks to.
func (c *Client) Addr() string { return c.addr }

// Call issues method with payload and waits for the response, applying the
// default call timeout.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	return c.call(context.Background(), method, payload, c.CallTimeout)
}

// CallCtx is Call with a request context. When ctx carries a sampled
// trace the request goes out as a traced frame — the server continues
// the trace and ships its spans back, which are grafted under this
// call's rpc.roundtrip span.
func (c *Client) CallCtx(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.call(ctx, method, payload, c.CallTimeout)
}

// CallTimeoutT issues a call with an explicit timeout.
func (c *Client) CallTimeoutT(method string, payload []byte, timeout time.Duration) ([]byte, error) {
	return c.call(context.Background(), method, payload, timeout)
}

func (c *Client) call(ctx context.Context, method string, payload []byte, timeout time.Duration) ([]byte, error) {
	tr := trace.FromContext(ctx)
	cc, err := c.pick(ctx)
	if err != nil {
		return nil, err
	}
	seq := cc.seq.Add(1)
	ch := make(chan result, 1)
	cc.mu.Lock()
	cc.pending[seq] = ch
	cc.mu.Unlock()

	rtSpan := trace.StartLeaf(ctx, trace.StageRPCRoundtrip)
	cc.writeMu.Lock()
	if rtSpan.Active() {
		err = writeTracedRequest(cc.conn, seq, method, tr.ID, rtSpan.ID(), payload)
	} else {
		err = writeFrame(cc.conn, seq, kindRequest, method, payload)
	}
	cc.writeMu.Unlock()
	if err != nil {
		rtSpan.EndErr(err)
		cc.fail(err)
		c.drop(cc)
		return nil, err
	}

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case res := <-ch:
		rtSpan.EndErr(res.err)
		if res.blob != nil && tr != nil {
			if spans, derr := trace.DecodeSpans(res.blob); derr == nil {
				tr.Graft(spans, rtSpan.ID())
			}
		}
		return res.payload, res.err
	case <-timeoutCh:
		cc.mu.Lock()
		delete(cc.pending, seq)
		cc.mu.Unlock()
		rtSpan.EndErr(ErrTimeout)
		return nil, ErrTimeout
	}
}

// pick returns a live pooled connection, dialing if needed. Dials happen
// OUTSIDE c.mu — holding the lock across a dial would let one unreachable
// address head-of-line block every concurrent call on this client for up
// to DialTimeout. At most one dial is in flight per client (singleflight):
// when live connections exist the pool tops up in the background and the
// call proceeds on an existing connection; only a caller with no live
// connection at all waits for the dial's outcome.
func (c *Client) pick(ctx context.Context) (*clientConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		// Drop dead connections.
		live := c.conns[:0]
		for _, cc := range c.conns {
			if !cc.dead.Load() {
				live = append(live, cc)
			}
		}
		c.conns = live
		startDial := c.dialing == 0 && len(c.conns) < c.PoolSize
		if startDial {
			c.dialing++
			c.dialDone = make(chan struct{})
		}
		if len(c.conns) > 0 {
			cc := c.conns[int(c.next.Add(1))%len(c.conns)]
			c.mu.Unlock()
			if startDial {
				go c.dial() // top up the pool without blocking this call
			}
			return cc, nil
		}
		if startDial {
			c.mu.Unlock()
			// This call blocks on its own dial: attribute the wait.
			sp := trace.StartLeaf(ctx, trace.StageRPCDial)
			err := c.dial()
			sp.EndErr(err)
			if err != nil {
				return nil, err
			}
			continue // re-check the pool: our dial installed a connection
		}
		// No live connection and another caller's dial is in flight: wait
		// for it to settle, then re-evaluate. The wait is dial time from
		// this request's point of view.
		done := c.dialDone
		c.mu.Unlock()
		sp := trace.StartLeaf(ctx, trace.StageRPCDial)
		<-done
		sp.End()
	}
}

// dial establishes one new pooled connection and installs it; it must be
// entered with c.dialing already claimed. Waiters blocked in pick are woken
// whether the dial succeeded or not.
func (c *Client) dial() error {
	dial := c.DialFunc
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(c.addr, c.DialTimeout)

	c.mu.Lock()
	c.dialing--
	close(c.dialDone)
	if err == nil {
		if closed := c.closed; closed || len(c.conns) >= c.PoolSize {
			c.mu.Unlock()
			conn.Close()
			if closed {
				return ErrClosed
			}
			return nil
		}
		cc := &clientConn{conn: conn, pending: make(map[uint64]chan result)}
		go cc.readLoop()
		c.conns = append(c.conns, cc)
	}
	c.mu.Unlock()
	return err
}

func (c *Client) drop(dead *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.conns[:0]
	for _, cc := range c.conns {
		if cc != dead {
			out = append(out, cc)
		}
	}
	c.conns = out
}

// Close closes all pooled connections; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.conns {
		cc.fail(ErrClosed)
	}
	c.conns = nil
	return nil
}

func (cc *clientConn) readLoop() {
	for {
		fr, err := readFrame(cc.conn)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[fr.seq]
		delete(cc.pending, fr.seq)
		cc.mu.Unlock()
		if !ok {
			continue // timed-out call's late response
		}
		switch fr.kind {
		case kindResponse:
			ch <- result{payload: fr.payload}
		case kindResponseTraced:
			ch <- result{payload: fr.payload, blob: fr.blob}
		case kindError:
			ch <- result{err: &RemoteError{Msg: string(fr.payload)}}
		}
	}
}

// fail marks the connection dead and fails all pending calls.
func (cc *clientConn) fail(err error) {
	if cc.dead.Swap(true) {
		return
	}
	cc.conn.Close()
	cc.mu.Lock()
	for seq, ch := range cc.pending {
		ch <- result{err: err}
		delete(cc.pending, seq)
	}
	cc.mu.Unlock()
}
