package rpc

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ips/internal/trace"
)

// Client issues RPC calls to one address over a small pool of multiplexed
// connections.
type Client struct {
	addr string
	// PoolSize is the connection count; default 2.
	PoolSize int
	// DialTimeout bounds connection establishment; default 1s.
	DialTimeout time.Duration
	// CallTimeout is the default per-call deadline; default 1s.
	CallTimeout time.Duration
	// DialFunc overrides connection establishment, for tests (e.g. to
	// simulate a blackholed address whose dial hangs). Nil means
	// net.DialTimeout("tcp", addr, DialTimeout).
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

	mu       sync.Mutex
	conns    []*clientConn
	dialing  int           // in-flight dials; at most one per client
	dialDone chan struct{} // closed when the in-flight dial finishes
	next     atomic.Uint64
	closed   bool
}

// clientConn is one multiplexed connection with a reader goroutine
// dispatching responses to waiting calls by sequence ID.
type clientConn struct {
	conn    net.Conn
	cw      connWriter
	mu      sync.Mutex
	pending map[uint64]*callSlot
	// streams holds the open client streams multiplexed on this
	// connection, keyed by the same sequence-ID namespace as pending
	// (see stream.go).
	streams map[uint64]*ClientStream
	seq     atomic.Uint64
	dead    atomic.Bool
}

type result struct {
	payload []byte
	blob    []byte // traced responses: encoded server spans
	err     error
}

// callSlot is one in-flight call's rendezvous point: a reusable channel
// plus owned response storage the readLoop copies into. Slots recycle
// through slotPool so the steady state allocates nothing per call. A
// slot whose call timed out (or raced connection teardown) is abandoned,
// never recycled: the readLoop may still deliver a late response into
// it.
type callSlot struct {
	ch   chan result
	buf  []byte // response payload storage
	blob []byte // traced responses: span blob storage
}

var slotPool = sync.Pool{New: func() any { return &callSlot{ch: make(chan result, 1)} }}

//ips:hotpath-trust sync.Pool misses allocate a fresh slot by design; steady-state Get reuses
func getSlot() *callSlot { return slotPool.Get().(*callSlot) }

//ips:hotpath
func putSlot(s *callSlot) { slotPool.Put(s) }

// timerPool recycles call-timeout timers; a timer goes back Reset-able
// (stopped and drained).
var timerPool sync.Pool

//ips:hotpath-trust pool misses construct a timer by design; steady-state Get just resets
func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

//ips:hotpath
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// NewClient creates a client for addr; connections are dialed lazily.
func NewClient(addr string) *Client {
	return &Client{addr: addr, PoolSize: 2, DialTimeout: time.Second, CallTimeout: time.Second}
}

// Addr returns the remote address this client talks to.
func (c *Client) Addr() string { return c.addr }

// Call issues method with payload and waits for the response, applying the
// default call timeout.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	return c.call(context.Background(), method, payload, c.CallTimeout)
}

// CallCtx is Call with a request context. When ctx carries a sampled
// trace the request goes out as a traced frame — the server continues
// the trace and ships its spans back, which are grafted under this
// call's rpc.roundtrip span.
func (c *Client) CallCtx(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.call(ctx, method, payload, c.CallTimeout)
}

// CallTimeoutT issues a call with an explicit timeout.
func (c *Client) CallTimeoutT(method string, payload []byte, timeout time.Duration) ([]byte, error) {
	return c.call(context.Background(), method, payload, timeout)
}

// CallAppendCtx issues method and appends the response payload into dst,
// returning the extended slice. With a caller-reused dst the whole
// roundtrip (frame encode, response read, rendezvous) allocates nothing
// in the steady state. A nil dst falls back to handing the caller a
// freshly owned slice.
func (c *Client) CallAppendCtx(ctx context.Context, method string, payload, dst []byte) ([]byte, error) {
	return c.callAppend(ctx, method, payload, dst, c.CallTimeout)
}

//ips:hotpath
func (c *Client) call(ctx context.Context, method string, payload []byte, timeout time.Duration) ([]byte, error) {
	return c.callAppend(ctx, method, payload, nil, timeout)
}

//ips:hotpath
func (c *Client) callAppend(ctx context.Context, method string, payload, dst []byte, timeout time.Duration) ([]byte, error) {
	tr := trace.FromContext(ctx)
	cc, err := c.pick(ctx)
	if err != nil {
		return dst, err
	}
	seq := cc.seq.Add(1)
	slot := getSlot()
	cc.mu.Lock()
	//ipslint:ignore hotpathalloc the pending map reuses cells freed by completed calls once the in-flight high-water mark is reached
	cc.pending[seq] = slot
	cc.mu.Unlock()

	rtSpan := trace.StartLeaf(ctx, trace.StageRPCRoundtrip)
	if rtSpan.Active() {
		err = cc.cw.sendTracedRequest(seq, method, tr.ID, rtSpan.ID(), payload)
	} else {
		err = cc.cw.send(seq, kindRequest, method, payload)
	}
	if err != nil {
		rtSpan.EndErr(err)
		//ipslint:ignore hotpathalloc connection teardown is terminal, not steady state
		cc.fail(err)
		//ipslint:ignore hotpathalloc connection teardown is terminal, not steady state
		c.drop(cc)
		// fail delivered an error into every pending slot, including
		// ours; drain it so the slot can recycle.
		<-slot.ch
		putSlot(slot)
		return dst, err
	}

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = getTimer(timeout)
		timeoutCh = timer.C
	}
	select {
	case res := <-slot.ch:
		if timer != nil {
			putTimer(timer)
		}
		rtSpan.EndErr(res.err)
		if res.blob != nil && tr != nil {
			//ipslint:ignore hotpathalloc span grafting is the sampled path
			if spans, derr := trace.DecodeSpans(res.blob); derr == nil {
				//ipslint:ignore hotpathalloc span grafting is the sampled path
				tr.Graft(spans, rtSpan.ID())
			}
		}
		if res.err != nil {
			putSlot(slot)
			return dst, res.err
		}
		if dst != nil {
			dst = append(dst, res.payload...)
			putSlot(slot)
			return dst, nil
		}
		// Legacy callers own the returned slice: hand over the slot's
		// buffer and let the pool grow a fresh one next time.
		out := res.payload
		slot.buf = nil
		putSlot(slot)
		return out, nil
	case <-timeoutCh:
		cc.mu.Lock()
		delete(cc.pending, seq)
		cc.mu.Unlock()
		// The timer fired and was drained by the select; it can recycle
		// directly. The slot cannot: a late response may still land in it.
		timerPool.Put(timer)
		rtSpan.EndErr(ErrTimeout)
		return dst, ErrTimeout
	}
}

// pick returns a live pooled connection, dialing if needed. Dials happen
// OUTSIDE c.mu — holding the lock across a dial would let one unreachable
// address head-of-line block every concurrent call on this client for up
// to DialTimeout. At most one dial is in flight per client (singleflight):
// when live connections exist the pool tops up in the background and the
// call proceeds on an existing connection; only a caller with no live
// connection at all waits for the dial's outcome.
//
//ips:hotpath-trust dialing and pool top-up allocate by design; the steady state indexes an existing live connection under the lock
func (c *Client) pick(ctx context.Context) (*clientConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		// Drop dead connections.
		live := c.conns[:0]
		for _, cc := range c.conns {
			if !cc.dead.Load() {
				live = append(live, cc)
			}
		}
		c.conns = live
		startDial := c.dialing == 0 && len(c.conns) < c.PoolSize
		if startDial {
			c.dialing++
			c.dialDone = make(chan struct{})
		}
		if len(c.conns) > 0 {
			cc := c.conns[int(c.next.Add(1))%len(c.conns)]
			c.mu.Unlock()
			if startDial {
				go c.dial() // top up the pool without blocking this call
			}
			return cc, nil
		}
		if startDial {
			c.mu.Unlock()
			// This call blocks on its own dial: attribute the wait.
			sp := trace.StartLeaf(ctx, trace.StageRPCDial)
			err := c.dial()
			sp.EndErr(err)
			if err != nil {
				return nil, err
			}
			continue // re-check the pool: our dial installed a connection
		}
		// No live connection and another caller's dial is in flight: wait
		// for it to settle, then re-evaluate. The wait is dial time from
		// this request's point of view.
		done := c.dialDone
		c.mu.Unlock()
		sp := trace.StartLeaf(ctx, trace.StageRPCDial)
		<-done
		sp.End()
	}
}

// dial establishes one new pooled connection and installs it; it must be
// entered with c.dialing already claimed. Waiters blocked in pick are woken
// whether the dial succeeded or not.
func (c *Client) dial() error {
	dial := c.DialFunc
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(c.addr, c.DialTimeout)

	c.mu.Lock()
	c.dialing--
	close(c.dialDone)
	if err == nil {
		if closed := c.closed; closed || len(c.conns) >= c.PoolSize {
			c.mu.Unlock()
			conn.Close()
			if closed {
				return ErrClosed
			}
			return nil
		}
		cc := &clientConn{conn: conn, pending: make(map[uint64]*callSlot)}
		cc.cw.w = conn
		go cc.readLoop()
		c.conns = append(c.conns, cc)
	}
	c.mu.Unlock()
	return err
}

func (c *Client) drop(dead *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.conns[:0]
	for _, cc := range c.conns {
		if cc != dead {
			out = append(out, cc)
		}
	}
	c.conns = out
}

// Close closes all pooled connections; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.conns {
		cc.fail(ErrClosed)
	}
	c.conns = nil
	return nil
}

//ips:hotpath
func (cc *clientConn) readLoop() {
	var rbuf []byte
	for {
		fr, buf, err := readFrameReuse(cc.conn, rbuf)
		rbuf = buf
		if err != nil {
			//ipslint:ignore hotpathalloc connection teardown is terminal, not steady state
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		slot, ok := cc.pending[fr.seq]
		delete(cc.pending, fr.seq)
		cc.mu.Unlock()
		if !ok {
			if fr.kind == kindStreamData || fr.kind == kindStreamClose || fr.kind == kindError {
				//ipslint:ignore hotpathalloc stream delivery copies the pushed frame out of the reused buffer; streams are off the pooled-call steady state
				if cc.handleStreamFrame(fr) {
					continue
				}
			}
			continue // timed-out call's late response
		}
		// The frame aliases the reusable read buffer: copy the response
		// into the slot's owned storage before handing it over.
		switch fr.kind {
		case kindResponse:
			slot.buf = append(slot.buf[:0], fr.payload...)
			slot.ch <- result{payload: slot.buf}
		case kindResponseTraced:
			slot.buf = append(slot.buf[:0], fr.payload...)
			slot.blob = append(slot.blob[:0], fr.blob...)
			slot.ch <- result{payload: slot.buf, blob: slot.blob}
		case kindError:
			//ipslint:ignore hotpathalloc error responses materialize a message; errors are off the steady state
			slot.ch <- result{err: &RemoteError{Msg: string(fr.payload)}}
		}
	}
}

// fail marks the connection dead and fails all pending calls.
func (cc *clientConn) fail(err error) {
	if cc.dead.Swap(true) {
		return
	}
	cc.conn.Close()
	cc.mu.Lock()
	for seq, slot := range cc.pending {
		slot.ch <- result{err: err}
		delete(cc.pending, seq)
	}
	streams := cc.streams
	cc.streams = nil
	cc.mu.Unlock()
	for _, st := range streams {
		st.finish(err)
	}
}
