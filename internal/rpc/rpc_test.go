package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func startEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	s.Handle("upper", func(p []byte) ([]byte, error) { return bytes.ToUpper(p), nil })
	s.Handle("fail", func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	s.Handle("panic", func(p []byte) ([]byte, error) { panic("kaboom") })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallEcho(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	defer c.Close()
	resp, err := c.Call("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Fatalf("resp = %q", resp)
	}
	resp, err = c.Call("upper", []byte("abc"))
	if err != nil || string(resp) != "ABC" {
		t.Fatalf("upper = %q, %v", resp, err)
	}
}

func TestEmptyPayloads(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	defer c.Close()
	resp, err := c.Call("echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Fatalf("resp = %q", resp)
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	defer c.Close()
	big := bytes.Repeat([]byte("x"), 1<<20)
	resp, err := c.CallTimeoutT("echo", big, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload mangled")
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	defer c.Close()
	_, err := c.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "boom") {
		t.Fatalf("msg = %q", re.Msg)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	defer c.Close()
	_, err := c.Call("panic", nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	// Connection survives the panic.
	if _, err := c.Call("echo", []byte("still alive")); err != nil {
		t.Fatalf("post-panic call: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	defer c.Close()
	_, err := c.Call("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiplexedConcurrentCalls(t *testing.T) {
	s, addr := startEchoServer(t)
	// A slow method must not block fast calls on the same connection.
	s.Handle("slow", func(p []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return p, nil
	})
	c := NewClient(addr)
	c.PoolSize = 1 // force one shared connection
	defer c.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.CallTimeoutT("slow", []byte("s"), 5*time.Second); err != nil {
			t.Errorf("slow call: %v", err)
		}
	}()
	// Give the slow call a head start on the wire.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if _, err := c.Call("echo", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("fast call took %v behind a slow call; multiplexing broken", elapsed)
	}
	<-done
}

func TestConcurrentLoad(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	c.PoolSize = 3
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				msg := []byte(fmt.Sprintf("w%d-%d", w, i))
				resp, err := c.CallTimeoutT("echo", msg, 5*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- fmt.Errorf("response mismatch: %q != %q", resp, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestCallTimeout(t *testing.T) {
	s, addr := startEchoServer(t)
	s.Handle("hang", func(p []byte) ([]byte, error) {
		time.Sleep(2 * time.Second)
		return p, nil
	})
	c := NewClient(addr)
	defer c.Close()
	start := time.Now()
	_, err := c.CallTimeoutT("hang", nil, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("timeout took too long")
	}
	// Late response for the timed-out call must not break later calls.
	if _, err := c.CallTimeoutT("echo", []byte("ok"), 5*time.Second); err != nil {
		t.Fatalf("post-timeout call: %v", err)
	}
}

func TestServerDelayInjection(t *testing.T) {
	s, addr := startEchoServer(t)
	s.SetDelay(func(method string) time.Duration { return 30 * time.Millisecond })
	c := NewClient(addr)
	defer c.Close()
	start := time.Now()
	if _, err := c.Call("echo", nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("injected delay not applied")
	}
}

func TestServerDropInjection(t *testing.T) {
	s, addr := startEchoServer(t)
	s.SetDropRate(func() float64 { return 1.0 }) // drop everything
	c := NewClient(addr)
	defer c.Close()
	if _, err := c.CallTimeoutT("echo", nil, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout from dropped response", err)
	}
	s.SetDropRate(nil)
	if _, err := c.Call("echo", nil); err != nil {
		t.Fatalf("after drop disabled: %v", err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	s, addr := startEchoServer(t)
	s.Handle("block", func(p []byte) ([]byte, error) {
		time.Sleep(5 * time.Second)
		return p, nil
	})
	c := NewClient(addr)
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.CallTimeoutT("block", nil, 10*time.Second)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// Closing the client fails the in-flight call immediately.
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("in-flight call should fail on close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung after close")
	}
	_ = s
}

func TestCallAfterClientClose(t *testing.T) {
	_, addr := startEchoServer(t)
	c := NewClient(addr)
	c.Close()
	if _, err := c.Call("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDialFailure(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens here
	c.DialTimeout = 100 * time.Millisecond
	defer c.Close()
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("dial to dead address should fail")
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr)
	defer c.Close()
	if _, err := c.Call("echo", []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Calls fail while the server is down.
	if _, err := c.CallTimeoutT("echo", []byte("2"), 100*time.Millisecond); err == nil {
		t.Fatal("call to downed server should fail")
	}

	// Restart on the same address; the client dials fresh connections.
	s2 := NewServer()
	s2.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	if _, err := net0Listen(s2, addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()

	var ok bool
	for i := 0; i < 20; i++ {
		if _, err := c.CallTimeoutT("echo", []byte("3"), 200*time.Millisecond); err == nil {
			ok = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ok {
		t.Fatal("client never recovered after server restart")
	}
}

func net0Listen(s *Server, addr string) (string, error) { return s.Listen(addr) }

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, 1, kindRequest, "m", make([]byte, MaxFrameSize))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func BenchmarkCallRoundTrip(b *testing.B) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr)
	defer c.Close()
	payload := bytes.Repeat([]byte("x"), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallTimeoutT("echo", payload, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
