package rpc

// Long-lived streams beside the pooled call path.
//
// A stream is opened by the client with a kindStreamOpen frame (same
// shape as a request: method + payload), after which the server may push
// any number of kindStreamData frames carrying the opened stream's
// sequence ID. Either side ends the stream with kindStreamClose; a
// non-empty close payload is an error message, an empty one is a clean
// end. Data flows server→client only: the open payload is the
// subscription's full description, and anything else (acks, flow
// control) belongs in the method's payload design, not the framework.
//
// Streams multiplex over the same pooled connections as calls — the
// sequence-ID namespace is shared, so a data frame dispatches to its
// stream exactly like a response dispatches to its call. A slow stream
// consumer must not head-of-line block the calls sharing its connection,
// so the client buffers received frames in an unbounded per-stream queue;
// bounding the damage a slow consumer can do is the pushing layer's job
// (internal/sub drops and resyncs), not the transport's.

import (
	"context"
	"errors"
	"io"
	"sync"
)

// StreamHandler serves one server-side stream: payload is the opening
// request's payload, st pushes data frames to the client. The handler
// owns the stream's lifetime — when it returns, the framework sends the
// close frame (clean if the error is nil or the context's cancellation).
// ctx is canceled when the client closes the stream or the connection
// dies; handlers must return promptly then.
type StreamHandler func(ctx context.Context, payload []byte, st *ServerStream) error

// ServerStream is the server-side push half of one open stream.
type ServerStream struct {
	cw  *connWriter
	seq uint64
}

// Send pushes one data frame to the client. It is safe for concurrent
// use and returns the connection's write error, if any — a failed Send
// means the connection is dying and the handler should return.
func (st *ServerStream) Send(payload []byte) error {
	return st.cw.send(st.seq, kindStreamData, "", payload)
}

// HandleStream registers a stream handler for method, replacing any
// previous one. Stream methods live in their own namespace entry but
// share the method string space with call handlers; don't register both
// shapes under one name.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.mu.Lock()
	if s.streamHandlers == nil {
		s.streamHandlers = make(map[string]StreamHandler)
	}
	s.streamHandlers[method] = h
	s.mu.Unlock()
}

// connStreams tracks the open streams of one server connection so a
// client close frame (or connection death) can cancel the handler.
type connStreams struct {
	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
}

func (cs *connStreams) add(seq uint64, cancel context.CancelFunc) {
	cs.mu.Lock()
	if cs.cancels == nil {
		cs.cancels = make(map[uint64]context.CancelFunc)
	}
	cs.cancels[seq] = cancel
	cs.mu.Unlock()
}

func (cs *connStreams) remove(seq uint64) {
	cs.mu.Lock()
	delete(cs.cancels, seq)
	cs.mu.Unlock()
}

func (cs *connStreams) cancel(seq uint64) {
	cs.mu.Lock()
	cancel := cs.cancels[seq]
	delete(cs.cancels, seq)
	cs.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (cs *connStreams) cancelAll() {
	cs.mu.Lock()
	cancels := cs.cancels
	cs.cancels = nil
	cs.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// safeCallStream invokes h with panic containment.
func safeCallStream(h StreamHandler, ctx context.Context, payload []byte, st *ServerStream) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("rpc: stream handler panic")
		}
	}()
	return h(ctx, payload, st)
}

// startStream launches the handler goroutine for one kindStreamOpen
// frame. payload must already be detached from the reusable read buffer.
func (s *Server) startStream(cw *connWriter, cs *connStreams, seq uint64, method string, payload []byte) {
	s.mu.RLock()
	h := s.streamHandlers[method]
	s.mu.RUnlock()
	if h == nil {
		_ = cw.send(seq, kindStreamClose, "", []byte(ErrNoMethod.Error()+": "+method))
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cs.add(seq, cancel)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		err := safeCallStream(h, ctx, payload, &ServerStream{cw: cw, seq: seq})
		cs.remove(seq)
		var msg []byte
		if err != nil && !errors.Is(err, context.Canceled) {
			msg = []byte(err.Error())
		}
		_ = cw.send(seq, kindStreamClose, "", msg)
	}()
}

// ClientStream is the client-side receive half of one open stream.
// Frames the server pushed are buffered without bound so a slow Recv
// caller cannot stall the pooled connection the stream shares with
// ordinary calls.
type ClientStream struct {
	cc  *clientConn
	seq uint64

	mu    sync.Mutex
	queue [][]byte
	err   error // terminal condition; io.EOF on clean server close
	ready chan struct{}
}

// Stream opens a stream for method with the given opening payload and
// returns its receive half. The caller must drain it with Recv and
// release it with Close. ctx bounds only the open (dial wait), not the
// stream's lifetime.
func (c *Client) Stream(ctx context.Context, method string, payload []byte) (*ClientStream, error) {
	cc, err := c.pick(ctx)
	if err != nil {
		return nil, err
	}
	seq := cc.seq.Add(1)
	st := &ClientStream{cc: cc, seq: seq, ready: make(chan struct{}, 1)}
	cc.mu.Lock()
	if cc.streams == nil {
		cc.streams = make(map[uint64]*ClientStream)
	}
	cc.streams[seq] = st
	cc.mu.Unlock()
	// fail() may have swept the streams map between our registration and
	// here; dead is set before the sweep, so observing it false means the
	// sweep (when it comes) will see our entry.
	if cc.dead.Load() {
		cc.removeStream(seq)
		return nil, ErrClosed
	}
	if err := cc.cw.send(seq, kindStreamOpen, method, payload); err != nil {
		cc.fail(err)
		c.drop(cc)
		cc.removeStream(seq)
		return nil, err
	}
	return st, nil
}

// Recv returns the next pushed payload (caller-owned storage). It blocks
// until a frame arrives, the stream ends, or ctx is done. A clean server
// close yields io.EOF after the buffered frames drain; a server error
// yields it as a *RemoteError.
func (st *ClientStream) Recv(ctx context.Context) ([]byte, error) {
	for {
		st.mu.Lock()
		if len(st.queue) > 0 {
			payload := st.queue[0]
			st.queue = st.queue[1:]
			st.mu.Unlock()
			return payload, nil
		}
		err := st.err
		st.mu.Unlock()
		if err != nil {
			return nil, err
		}
		select {
		case <-st.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Close releases the stream: the server's handler context is canceled
// and any blocked or future Recv returns ErrClosed (after buffered
// frames drain). Safe to call more than once.
func (st *ClientStream) Close() error {
	st.cc.removeStream(st.seq)
	st.finish(ErrClosed)
	_ = st.cc.cw.send(st.seq, kindStreamClose, "", nil)
	return nil
}

// deliver copies one pushed frame into the stream's queue. Called only
// from the connection's read loop; payload aliases the reusable read
// buffer and is copied out here.
func (st *ClientStream) deliver(payload []byte) {
	st.mu.Lock()
	st.queue = append(st.queue, append([]byte(nil), payload...))
	st.mu.Unlock()
	st.signal()
}

// finish records the stream's terminal condition (first one wins) and
// wakes any blocked Recv.
func (st *ClientStream) finish(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.signal()
}

func (st *ClientStream) signal() {
	select {
	case st.ready <- struct{}{}:
	default:
	}
}

func (cc *clientConn) removeStream(seq uint64) {
	cc.mu.Lock()
	delete(cc.streams, seq)
	cc.mu.Unlock()
}

// handleStreamFrame dispatches one frame whose sequence ID belongs to an
// open stream. Returns false when no stream claims the sequence (a
// late frame for a closed stream — dropped, like a timed-out call's
// response).
func (cc *clientConn) handleStreamFrame(fr frame) bool {
	cc.mu.Lock()
	st := cc.streams[fr.seq]
	cc.mu.Unlock()
	if st == nil {
		return false
	}
	switch fr.kind {
	case kindStreamData:
		st.deliver(fr.payload)
	case kindStreamClose, kindError:
		cc.removeStream(fr.seq)
		if fr.kind == kindStreamClose && len(fr.payload) == 0 {
			st.finish(io.EOF)
		} else {
			st.finish(&RemoteError{Msg: string(fr.payload)})
		}
	}
	return true
}
