package rpc

import "sync/atomic"

// Process-wide wire accounting. Every frame that crosses a connection —
// client or server side, either direction — bumps these counters with
// its full on-wire size (length prefix included). They exist so
// experiments can attribute byte savings to an encoding change (e.g.
// batch v2's shared-structure responses) using what actually hit the
// socket, not what an encoder said it produced.
//
// The counters are global rather than per-connection because the bench
// harness runs client and server in one process and wants one number;
// they are monotonic, so callers measure intervals by subtracting two
// IOStats() snapshots rather than resetting.
var (
	ioBytesWritten  atomic.Uint64
	ioBytesRead     atomic.Uint64
	ioFramesWritten atomic.Uint64
	ioFramesRead    atomic.Uint64
)

// IOStatsSnapshot is one reading of the process-wide wire counters.
type IOStatsSnapshot struct {
	BytesWritten  uint64
	BytesRead     uint64
	FramesWritten uint64
	FramesRead    uint64
}

// IOStats returns the current wire totals. Subtract two snapshots to
// meter an interval.
func IOStats() IOStatsSnapshot {
	return IOStatsSnapshot{
		BytesWritten:  ioBytesWritten.Load(),
		BytesRead:     ioBytesRead.Load(),
		FramesWritten: ioFramesWritten.Load(),
		FramesRead:    ioFramesRead.Load(),
	}
}

// Sub returns the interval s - prev, counter-wise.
func (s IOStatsSnapshot) Sub(prev IOStatsSnapshot) IOStatsSnapshot {
	return IOStatsSnapshot{
		BytesWritten:  s.BytesWritten - prev.BytesWritten,
		BytesRead:     s.BytesRead - prev.BytesRead,
		FramesWritten: s.FramesWritten - prev.FramesWritten,
		FramesRead:    s.FramesRead - prev.FramesRead,
	}
}

//ips:hotpath
func noteWrite(n int) {
	ioBytesWritten.Add(uint64(n))
	ioFramesWritten.Add(1)
}

//ips:hotpath
func noteRead(n int) {
	ioBytesRead.Add(uint64(n))
	ioFramesRead.Add(1)
}
