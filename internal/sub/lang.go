// Package sub implements continuous queries (DESIGN.md "Continuous
// queries"): standing queries expressed in a small composable pipeline
// language, a per-profile subscriber index that re-evaluates affected
// standing queries when writes land, and bounded per-subscriber push
// queues with drop-and-resync recovery for slow consumers.
//
// The pipeline language is the subscription's wire form — a text program
// of the shape
//
//	source(user_profile, 42, 99) | window(current, 1h) | decay(exp, 0.5) | topk(10)
//
// parsed here into the existing query operator set (a wire.QueryRequest
// template plus the profile set it stands over). See DESIGN.md for the
// grammar.
package sub

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// Limits on a single standing query.
const (
	// MaxIDs bounds the profiles one subscription may stand over; larger
	// sets should be split across subscriptions.
	MaxIDs = 4096
	// MaxK bounds topk(n).
	MaxK = 4096
)

// DefaultSpan is the window when a pipeline omits its window stage:
// current(24h).
const DefaultSpan = model.Millis(24 * 60 * 60 * 1000)

// DefaultK is the result bound when a pipeline omits topk(n).
const DefaultK = 10

// Query is one parsed standing query: the profile set it watches and the
// read-path request template its updates are evaluated with. The
// template's Caller and ProfileID are filled in by the runtime (hub or
// client) per evaluation.
type Query struct {
	Table string
	IDs   []model.ProfileID
	Req   wire.QueryRequest
}

// Parse compiles a pipeline program into a Query. The program must start
// with a source stage; later stages refine the window, filter, decay,
// ordering and result bound, each at most once.
func Parse(src string) (*Query, error) {
	if len(src) > wire.MaxPipelineLen {
		return nil, fmt.Errorf("sub: pipeline text of %d bytes exceeds %d", len(src), wire.MaxPipelineLen)
	}
	stages, err := lex(src)
	if err != nil {
		return nil, err
	}
	if len(stages) == 0 {
		return nil, errors.New("sub: empty pipeline")
	}
	if stages[0].name != "source" {
		return nil, fmt.Errorf("sub: pipeline must start with source(table, ids), got %s at offset %d", stages[0].name, stages[0].off)
	}
	q := &Query{Req: wire.QueryRequest{
		AllTypes:  true,
		RangeKind: query.Current,
		Span:      DefaultSpan,
		SortBy:    query.ByTotal,
		K:         DefaultK,
	}}
	seen := make(map[string]bool, len(stages))
	for i, st := range stages {
		if i > 0 && st.name == "source" {
			return nil, fmt.Errorf("sub: source must be the first stage (offset %d)", st.off)
		}
		// alltypes and type are two spellings of one knob.
		key := st.name
		if key == "alltypes" {
			key = "type"
		}
		if seen[key] {
			return nil, fmt.Errorf("sub: duplicate %s stage at offset %d", st.name, st.off)
		}
		seen[key] = true
		if err := applyStage(q, st); err != nil {
			return nil, err
		}
	}
	q.Req.Table = q.Table
	return q, nil
}

// applyStage folds one stage into the query under construction.
func applyStage(q *Query, st stage) error {
	switch st.name {
	case "source":
		if len(st.args) < 2 {
			return fmt.Errorf("sub: source needs a table and at least one profile id (offset %d)", st.off)
		}
		if err := checkKeys(st, ""); err != nil {
			return err
		}
		q.Table = st.args[0].val
		if q.Table == "" || !isIdent(q.Table) {
			return fmt.Errorf("sub: source table %q is not a bare name (offset %d)", q.Table, st.off)
		}
		for _, a := range st.args[1:] {
			id, err := strconv.ParseUint(a.val, 10, 64)
			if err != nil {
				return fmt.Errorf("sub: source profile id %q: %v (offset %d)", a.val, err, st.off)
			}
			q.IDs = append(q.IDs, id)
		}
		if len(q.IDs) > MaxIDs {
			return fmt.Errorf("sub: source lists %d profiles, max %d per subscription", len(q.IDs), MaxIDs)
		}
	case "slot":
		n, err := oneUint(st, 32)
		if err != nil {
			return err
		}
		q.Req.Slot = model.SlotID(n)
	case "type":
		n, err := oneUint(st, 32)
		if err != nil {
			return err
		}
		q.Req.Type = model.TypeID(n)
		q.Req.AllTypes = false
	case "alltypes":
		if len(st.args) != 0 {
			return fmt.Errorf("sub: alltypes takes no arguments (offset %d)", st.off)
		}
		q.Req.AllTypes = true
	case "window":
		return applyWindow(q, st)
	case "filter":
		return applyFilter(q, st)
	case "decay":
		if len(st.args) != 2 {
			return fmt.Errorf("sub: decay needs (exp|linear|step, factor) (offset %d)", st.off)
		}
		if err := checkKeys(st, ""); err != nil {
			return err
		}
		switch st.args[0].val {
		case "exp":
			q.Req.Decay = query.DecayExp
		case "linear":
			q.Req.Decay = query.DecayLinear
		case "step":
			q.Req.Decay = query.DecayStep
		default:
			return fmt.Errorf("sub: unknown decay function %q (offset %d)", st.args[0].val, st.off)
		}
		f, err := strconv.ParseFloat(st.args[1].val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("sub: decay factor %q must be a number in [0,1] (offset %d)", st.args[1].val, st.off)
		}
		q.Req.DecayFactor = f
	case "sort":
		return applySort(q, st)
	case "topk":
		n, err := oneUint(st, 31)
		if err != nil {
			return err
		}
		if n == 0 || n > MaxK {
			return fmt.Errorf("sub: topk(%d) out of range [1,%d] (offset %d)", n, MaxK, st.off)
		}
		q.Req.K = int(n)
	default:
		return fmt.Errorf("sub: unknown stage %q at offset %d", st.name, st.off)
	}
	return nil
}

func applyWindow(q *Query, st stage) error {
	if err := checkKeys(st, ""); err != nil {
		return err
	}
	if len(st.args) == 0 {
		return fmt.Errorf("sub: window needs (current|relative, dur) or (absolute, from, to) (offset %d)", st.off)
	}
	switch st.args[0].val {
	case "current", "relative":
		if len(st.args) != 2 {
			return fmt.Errorf("sub: window(%s, dur) takes exactly one duration (offset %d)", st.args[0].val, st.off)
		}
		span, err := parseDur(st.args[1].val)
		if err != nil || span <= 0 {
			return fmt.Errorf("sub: window duration %q must be a positive duration (offset %d)", st.args[1].val, st.off)
		}
		q.Req.Span = span
		if st.args[0].val == "current" {
			q.Req.RangeKind = query.Current
		} else {
			q.Req.RangeKind = query.Relative
		}
	case "absolute":
		if len(st.args) != 3 {
			return fmt.Errorf("sub: window(absolute, from, to) takes two timestamps (offset %d)", st.off)
		}
		from, err1 := strconv.ParseInt(st.args[1].val, 10, 64)
		to, err2 := strconv.ParseInt(st.args[2].val, 10, 64)
		if err1 != nil || err2 != nil || from >= to {
			return fmt.Errorf("sub: window(absolute, %q, %q) needs from < to in millis (offset %d)", st.args[1].val, st.args[2].val, st.off)
		}
		q.Req.RangeKind = query.Absolute
		q.Req.From, q.Req.To = from, to
		q.Req.Span = 0
	default:
		return fmt.Errorf("sub: unknown window kind %q (offset %d)", st.args[0].val, st.off)
	}
	return nil
}

func applyFilter(q *Query, st stage) error {
	if len(st.args) == 0 {
		return fmt.Errorf("sub: filter needs min= and/or fid= arguments (offset %d)", st.off)
	}
	for _, a := range st.args {
		switch a.key {
		case "min":
			n, err := strconv.ParseInt(a.val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("sub: filter min=%q must be a non-negative count (offset %d)", a.val, st.off)
			}
			q.Req.MinCount = n
		case "fid":
			fid, err := strconv.ParseUint(a.val, 10, 64)
			if err != nil {
				return fmt.Errorf("sub: filter fid=%q: %v (offset %d)", a.val, err, st.off)
			}
			q.Req.FIDs = append(q.Req.FIDs, fid)
		default:
			return fmt.Errorf("sub: filter argument %q=%q not understood (offset %d)", a.key, a.val, st.off)
		}
	}
	return nil
}

func applySort(q *Query, st stage) error {
	if len(st.args) == 0 {
		return fmt.Errorf("sub: sort needs (total|time|fid) or (action, name) or (udaf, name[, min=score]) (offset %d)", st.off)
	}
	switch st.args[0].val {
	case "total", "time", "fid":
		if len(st.args) != 1 {
			return fmt.Errorf("sub: sort(%s) takes no further arguments (offset %d)", st.args[0].val, st.off)
		}
		switch st.args[0].val {
		case "total":
			q.Req.SortBy = query.ByTotal
		case "time":
			q.Req.SortBy = query.ByTimestamp
		case "fid":
			q.Req.SortBy = query.ByFeatureID
		}
	case "action":
		if len(st.args) != 2 || st.args[1].key != "" {
			return fmt.Errorf("sub: sort(action, name) takes exactly an action name (offset %d)", st.off)
		}
		q.Req.SortBy = query.ByAction
		q.Req.Action = st.args[1].val
	case "udaf":
		if len(st.args) < 2 || st.args[1].key != "" {
			return fmt.Errorf("sub: sort(udaf, name[, min=score]) needs a UDAF name (offset %d)", st.off)
		}
		q.Req.SortBy = query.ByUDAF
		q.Req.UDAFName = st.args[1].val
		for _, a := range st.args[2:] {
			if a.key != "min" {
				return fmt.Errorf("sub: sort(udaf) argument %q=%q not understood (offset %d)", a.key, a.val, st.off)
			}
			f, err := strconv.ParseFloat(a.val, 64)
			if err != nil {
				return fmt.Errorf("sub: sort(udaf) min=%q must be a number (offset %d)", a.val, st.off)
			}
			q.Req.MinScore = f
		}
	default:
		return fmt.Errorf("sub: unknown sort key %q (offset %d)", st.args[0].val, st.off)
	}
	return nil
}

// Render emits the query's full canonical pipeline text: every stage
// explicit, durations in milliseconds, ids in the query's order.
// Parse(q.Render()) reproduces q exactly.
func (q *Query) Render() string { return q.RenderFor(q.IDs) }

// RenderFor renders the canonical pipeline with ids substituted for the
// query's own profile set — how the client re-renders one subscription
// into per-owner shards.
func (q *Query) RenderFor(ids []model.ProfileID) string {
	var b strings.Builder
	b.WriteString("source(")
	b.WriteString(q.Table)
	for _, id := range ids {
		b.WriteString(", ")
		b.WriteString(strconv.FormatUint(id, 10))
	}
	b.WriteString(")")
	fmt.Fprintf(&b, " | slot(%d)", q.Req.Slot)
	if q.Req.AllTypes {
		b.WriteString(" | alltypes()")
	} else {
		fmt.Fprintf(&b, " | type(%d)", q.Req.Type)
	}
	switch q.Req.RangeKind {
	case query.Current:
		fmt.Fprintf(&b, " | window(current, %d)", q.Req.Span)
	case query.Relative:
		fmt.Fprintf(&b, " | window(relative, %d)", q.Req.Span)
	case query.Absolute:
		fmt.Fprintf(&b, " | window(absolute, %d, %d)", q.Req.From, q.Req.To)
	}
	if q.Req.MinCount > 0 || len(q.Req.FIDs) > 0 {
		b.WriteString(" | filter(")
		sep := ""
		if q.Req.MinCount > 0 {
			fmt.Fprintf(&b, "min=%d", q.Req.MinCount)
			sep = ", "
		}
		for _, fid := range q.Req.FIDs {
			fmt.Fprintf(&b, "%sfid=%d", sep, fid)
			sep = ", "
		}
		b.WriteString(")")
	}
	if q.Req.Decay != query.DecayNone {
		name := "exp"
		switch q.Req.Decay {
		case query.DecayLinear:
			name = "linear"
		case query.DecayStep:
			name = "step"
		}
		fmt.Fprintf(&b, " | decay(%s, %s)", name, strconv.FormatFloat(q.Req.DecayFactor, 'g', -1, 64))
	}
	switch q.Req.SortBy {
	case query.ByTotal:
		b.WriteString(" | sort(total)")
	case query.ByTimestamp:
		b.WriteString(" | sort(time)")
	case query.ByFeatureID:
		b.WriteString(" | sort(fid)")
	case query.ByAction:
		fmt.Fprintf(&b, " | sort(action, %s)", q.Req.Action)
	case query.ByUDAF:
		if q.Req.MinScore != 0 {
			fmt.Fprintf(&b, " | sort(udaf, %s, min=%s)", q.Req.UDAFName, strconv.FormatFloat(q.Req.MinScore, 'g', -1, 64))
		} else {
			fmt.Fprintf(&b, " | sort(udaf, %s)", q.Req.UDAFName)
		}
	}
	fmt.Fprintf(&b, " | topk(%d)", q.Req.K)
	return b.String()
}

// Sig is the query-shape signature: the canonical pipeline with the
// profile set elided. Subscriptions with equal signatures watching the
// same dirty profile are evaluated once and multicast (the hub's
// evaluate-once grouping).
func (q *Query) Sig() string { return q.RenderFor(nil) }

// --- lexing ---

// stage is one `name(arg, ...)` call; off is its byte offset in the
// source, for error messages.
type stage struct {
	name string
	off  int
	args []arg
}

// arg is one argument, optionally keyed (`min=3`).
type arg struct {
	key string
	val string
}

// lex splits src into stages. Tokens are bare words (idents, numbers,
// durations); whitespace is free between any two tokens.
func lex(src string) ([]stage, error) {
	var stages []stage
	pos := 0
	skipWS := func() {
		for pos < len(src) && isSpace(src[pos]) {
			pos++
		}
	}
	for {
		skipWS()
		if pos >= len(src) {
			if len(stages) == 0 {
				return nil, errors.New("sub: empty pipeline")
			}
			return nil, fmt.Errorf("sub: trailing | at offset %d", pos)
		}
		start := pos
		for pos < len(src) && isIdentByte(src[pos]) {
			pos++
		}
		name := src[start:pos]
		if name == "" {
			return nil, fmt.Errorf("sub: expected stage name at offset %d", pos)
		}
		skipWS()
		if pos >= len(src) || src[pos] != '(' {
			return nil, fmt.Errorf("sub: expected ( after %s at offset %d", name, pos)
		}
		pos++
		st := stage{name: name, off: start}
		for {
			skipWS()
			if pos < len(src) && src[pos] == ')' {
				pos++
				break
			}
			if len(st.args) > 0 {
				if pos >= len(src) || src[pos] != ',' {
					return nil, fmt.Errorf("sub: expected , or ) in %s at offset %d", name, pos)
				}
				pos++
				skipWS()
			}
			tok, next, err := lexToken(src, pos)
			if err != nil {
				return nil, err
			}
			pos = next
			a := arg{val: tok}
			skipWS()
			if pos < len(src) && src[pos] == '=' {
				pos++
				skipWS()
				if !isIdent(tok) {
					return nil, fmt.Errorf("sub: argument key %q must be a bare name at offset %d", tok, pos)
				}
				a.key = tok
				a.val, next, err = lexToken(src, pos)
				if err != nil {
					return nil, err
				}
				pos = next
			}
			st.args = append(st.args, a)
		}
		stages = append(stages, st)
		skipWS()
		if pos >= len(src) {
			return stages, nil
		}
		if src[pos] != '|' {
			return nil, fmt.Errorf("sub: expected | between stages at offset %d", pos)
		}
		pos++
	}
}

// lexToken reads one bare token starting at pos.
func lexToken(src string, pos int) (string, int, error) {
	start := pos
	for pos < len(src) && isTokenByte(src[pos]) {
		pos++
	}
	if pos == start {
		return "", pos, fmt.Errorf("sub: expected a value at offset %d", pos)
	}
	return src[start:pos], pos, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// isTokenByte admits idents, numbers, durations, and signed/decimal
// number bytes.
func isTokenByte(c byte) bool {
	return isIdentByte(c) || c == '.' || c == '-' || c == '+'
}

func isIdent(s string) bool {
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
	}
	return true
}

// checkKeys rejects keyed arguments in stages that take only positional
// ones (allowed lists the one exception, "" for none).
func checkKeys(st stage, allowed string) error {
	for _, a := range st.args {
		if a.key != "" && a.key != allowed {
			return fmt.Errorf("sub: %s does not take %s= arguments (offset %d)", st.name, a.key, st.off)
		}
	}
	return nil
}

// oneUint reads a stage's single positional unsigned argument of the
// given bit width.
func oneUint(st stage, bits int) (uint64, error) {
	if len(st.args) != 1 || st.args[0].key != "" {
		return 0, fmt.Errorf("sub: %s takes exactly one number (offset %d)", st.name, st.off)
	}
	n, err := strconv.ParseUint(st.args[0].val, 10, bits)
	if err != nil {
		return 0, fmt.Errorf("sub: %s(%s): %v (offset %d)", st.name, st.args[0].val, err, st.off)
	}
	return n, nil
}

// parseDur reads a duration token: a bare integer is milliseconds, and
// the suffixes ms/s/m/h/d scale it.
func parseDur(s string) (model.Millis, error) {
	mult := model.Millis(1)
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		num, mult = s[:len(s)-1], 1000
	case strings.HasSuffix(s, "m"):
		num, mult = s[:len(s)-1], 60_000
	case strings.HasSuffix(s, "h"):
		num, mult = s[:len(s)-1], 3_600_000
	case strings.HasSuffix(s, "d"):
		num, mult = s[:len(s)-1], 86_400_000
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, err
	}
	return model.Millis(n) * mult, nil
}
