package sub

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"ips/internal/metrics"
	"ips/internal/model"
	"ips/internal/wire"
)

// EvalCaller is the reserved caller identity the hub evaluates standing
// queries under. Operators can quota it like any other caller
// (ips.mgmt.set_quota) to bound push-side evaluation load.
const EvalCaller = "ips.sub"

// Eval re-evaluates one standing query: req names the profile and the
// operator set, resp receives the current answer. The hub owns both
// structs for the duration of the call; resp's storage must be fresh per
// call (results are shared read-only across subscriber queues after).
type Eval func(ctx context.Context, req *wire.QueryRequest, resp *wire.QueryResponse) error

// Sink receives one subscriber's pushed updates in order. Push may block
// (it writes to the network); blocking a Sink only stalls its own
// subscriber's pump, never the hub. A Push error tears the subscriber
// down.
type Sink interface {
	Push(u *wire.SubUpdate) error
}

// Options configures a Hub.
type Options struct {
	// Eval re-evaluates standing queries; required.
	Eval Eval
	// QueueLen bounds each subscriber's update queue; a full queue drops
	// the update and schedules a resync (drop-and-resync). Default 64.
	QueueLen int
	// ResyncInterval paces the sweep that retries dropped (lost)
	// profiles and failed evaluations. Default 250ms.
	ResyncInterval time.Duration
}

// Hub is the per-profile subscriber index and the evaluation fan-out:
// writes notify it with (table, profile), it re-evaluates each affected
// distinct standing query once, and multicasts the result to every
// subscriber watching that profile — through bounded per-subscriber
// queues so one stalled consumer cannot wedge ingest or other
// subscribers.
type Hub struct {
	opts Options

	mu        sync.RWMutex
	byProfile map[profileKey]map[*Subscriber]struct{}
	subs      map[*Subscriber]struct{}
	closed    bool

	dirtyMu sync.Mutex
	dirty   map[profileKey]struct{}
	wake    chan struct{}

	stop chan struct{}
	done chan struct{}
	// inspect runs a closure on the evaluator goroutine, which owns the
	// subscriber bookkeeping maps (PendingResync).
	inspect chan func(map[*Subscriber]struct{})

	// Metrics (OPERATIONS.md "Metrics catalog", sub_* entries).
	Active    metrics.Gauge   // live subscribers
	Watched   metrics.Gauge   // distinct (table, profile) keys with subscribers
	Evals     metrics.Counter // standing-query evaluations
	EvalErrs  metrics.Counter // evaluations that failed (retried via resync sweep)
	Skips     metrics.Counter // evaluations suppressed: result unchanged
	Pushes    metrics.Counter // updates enqueued to subscriber queues
	Drops     metrics.Counter // updates dropped on full queues (slow consumer)
	Resyncs   metrics.Counter // resync (full-state) updates enqueued
	EvalLat   metrics.Histogram
	NotifyLat metrics.Histogram // write notify -> update enqueued
}

// profileKey identifies one watched profile.
type profileKey struct {
	table string
	id    model.ProfileID
}

// Subscriber is one registered standing query's server-side state. All
// bookkeeping maps (seq, lastHash, lost) are confined to the hub's
// evaluator goroutine; the pump goroutine only consumes the queue.
type Subscriber struct {
	hub   *Hub
	query *Query
	sig   string
	sink  Sink

	queue chan *wire.SubUpdate
	stop  chan struct{}
	once  sync.Once
	done  chan struct{}

	// Evaluator-confined state, keyed by profile.
	seq      map[model.ProfileID]uint64
	lastHash map[model.ProfileID]uint64
	lost     map[model.ProfileID]int64 // present => needs a resync; value is the notify time that went missing
}

// NewHub starts a hub; Close releases it.
func NewHub(opts Options) *Hub {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 64
	}
	if opts.ResyncInterval <= 0 {
		opts.ResyncInterval = 250 * time.Millisecond
	}
	h := &Hub{
		opts:      opts,
		byProfile: make(map[profileKey]map[*Subscriber]struct{}),
		subs:      make(map[*Subscriber]struct{}),
		dirty:     make(map[profileKey]struct{}),
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		inspect:   make(chan func(map[*Subscriber]struct{})),
	}
	go h.run()
	return h
}

// Subscribe registers a standing query whose updates are pushed to sink.
// Every watched profile is scheduled for an immediate Resync-flagged
// baseline update. The subscriber stays registered until Unsubscribe,
// a sink error, or hub Close; its Done channel closes when its pump
// exits.
func (h *Hub) Subscribe(q *Query, sink Sink) (*Subscriber, error) {
	if len(q.IDs) == 0 {
		return nil, errors.New("sub: subscription watches no profiles")
	}
	if len(q.IDs) > MaxIDs {
		return nil, errors.New("sub: subscription watches too many profiles")
	}
	s := &Subscriber{
		hub:      h,
		query:    q,
		sig:      q.Sig(),
		sink:     sink,
		queue:    make(chan *wire.SubUpdate, h.opts.QueueLen),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		seq:      make(map[model.ProfileID]uint64, len(q.IDs)),
		lastHash: make(map[model.ProfileID]uint64, len(q.IDs)),
		lost:     make(map[model.ProfileID]int64, len(q.IDs)),
	}
	// Every profile starts lost: the first delivered update is the
	// Resync-flagged baseline, and the same sweep that recovers slow
	// consumers delivers it.
	now := time.Now().UnixNano()
	for _, id := range q.IDs {
		s.lost[id] = now
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("sub: hub closed")
	}
	h.subs[s] = struct{}{}
	for _, id := range q.IDs {
		k := profileKey{q.Table, id}
		set := h.byProfile[k]
		if set == nil {
			set = make(map[*Subscriber]struct{}, 1)
			h.byProfile[k] = set
		}
		set[s] = struct{}{}
	}
	h.Active.Set(int64(len(h.subs)))
	h.Watched.Set(int64(len(h.byProfile)))
	h.mu.Unlock()
	go s.pump()
	// Schedule the baseline evaluations.
	for _, id := range q.IDs {
		h.Notify(q.Table, id)
	}
	return s, nil
}

// Unsubscribe removes s from the index and stops its pump. Safe to call
// more than once and concurrently with hub activity.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	if _, live := h.subs[s]; live {
		delete(h.subs, s)
		for _, id := range s.query.IDs {
			k := profileKey{s.query.Table, id}
			if set := h.byProfile[k]; set != nil {
				delete(set, s)
				if len(set) == 0 {
					delete(h.byProfile, k)
				}
			}
		}
		h.Active.Set(int64(len(h.subs)))
		h.Watched.Set(int64(len(h.byProfile)))
	}
	h.mu.Unlock()
	s.once.Do(func() { close(s.stop) })
}

// Done closes when the subscriber's pump has exited (sink error,
// Unsubscribe, or hub Close).
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Notify marks (table, id) dirty: some write made the profile's standing
// answers potentially stale. Cheap when nobody watches the profile — one
// read-locked map probe — so it sits on every write path (direct adds,
// write-table merges, deletes, migration installs).
func (h *Hub) Notify(table string, id model.ProfileID) {
	h.mu.RLock()
	_, watched := h.byProfile[profileKey{table, id}]
	h.mu.RUnlock()
	if !watched {
		return
	}
	h.dirtyMu.Lock()
	h.dirty[profileKey{table, id}] = struct{}{}
	h.dirtyMu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Close stops the evaluator and every subscriber pump.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		<-h.done
		return
	}
	h.closed = true
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		h.Unsubscribe(s)
	}
	close(h.stop)
	<-h.done
}

// PendingResync reports how many (subscriber, profile) pairs still await
// a resync — the conservation tests quiesce on this reaching zero.
func (h *Hub) PendingResync() int {
	type reply struct{ n int }
	ch := make(chan reply, 1)
	select {
	case h.inspect <- func(subs map[*Subscriber]struct{}) {
		n := 0
		for s := range subs {
			n += len(s.lost)
		}
		ch <- reply{n}
	}:
	case <-h.done:
		return 0
	}
	select {
	case r := <-ch:
		return r.n
	case <-h.done:
		return 0
	}
}

// run is the evaluator loop: it owns all subscriber bookkeeping state.
func (h *Hub) run() {
	defer close(h.done)
	ticker := time.NewTicker(h.opts.ResyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-h.wake:
		case <-ticker.C:
			h.sweepLost()
		case f := <-h.inspect:
			h.mu.RLock()
			f(h.subs)
			h.mu.RUnlock()
			continue
		}
		h.drainDirty()
	}
}

// sweepLost re-dirties every lost (subscriber, profile) pair so the next
// drain retries its resync — recovering from dropped updates and failed
// evaluations once queue space (or the table) comes back.
func (h *Hub) sweepLost() {
	h.mu.RLock()
	var keys []profileKey
	for s := range h.subs {
		for id := range s.lost {
			keys = append(keys, profileKey{s.query.Table, id})
		}
	}
	h.mu.RUnlock()
	if len(keys) == 0 {
		return
	}
	h.dirtyMu.Lock()
	for _, k := range keys {
		h.dirty[k] = struct{}{}
	}
	h.dirtyMu.Unlock()
}

// drainDirty evaluates every dirty profile: subscribers watching it are
// grouped by query signature, each distinct standing query evaluated
// once, and the shared result fanned out to each group member's queue.
func (h *Hub) drainDirty() {
	h.dirtyMu.Lock()
	dirty := h.dirty
	h.dirty = make(map[profileKey]struct{})
	h.dirtyMu.Unlock()
	for k := range dirty {
		h.evalProfile(k)
	}
}

// group is one distinct standing query over one dirty profile.
type group struct {
	tmpl *wire.QueryRequest
	subs []*Subscriber
}

func (h *Hub) evalProfile(k profileKey) {
	notifyNS := time.Now().UnixNano()
	h.mu.RLock()
	set := h.byProfile[k]
	groups := make(map[string]*group, 1)
	for s := range set {
		g := groups[s.sig]
		if g == nil {
			g = &group{tmpl: &s.query.Req}
			groups[s.sig] = g
		}
		g.subs = append(g.subs, s)
	}
	h.mu.RUnlock()
	for _, g := range groups {
		h.evalGroup(k, g, notifyNS)
	}
}

func (h *Hub) evalGroup(k profileKey, g *group, notifyNS int64) {
	req := *g.tmpl // shallow copy; FIDs slice shared read-only
	req.Caller = EvalCaller
	req.Table = k.table
	req.ProfileID = k.id
	resp := &wire.QueryResponse{}
	start := time.Now()
	err := h.opts.Eval(context.Background(), &req, resp)
	h.EvalLat.Observe(time.Since(start))
	h.Evals.Inc()
	if err != nil {
		// Leave (or mark) the profile lost for every group member: the
		// resync sweep retries until evaluation succeeds.
		h.EvalErrs.Inc()
		for _, s := range g.subs {
			if _, already := s.lost[k.id]; !already {
				s.lost[k.id] = notifyNS
			}
		}
		return
	}
	hash := hashFeatures(resp)
	for _, s := range g.subs {
		_, needResync := s.lost[k.id]
		if !needResync && s.lastHash[k.id] == hash {
			h.Skips.Inc()
			continue
		}
		u := &wire.SubUpdate{ProfileID: k.id, Seq: s.seq[k.id] + 1, Resync: needResync, Result: *resp}
		select {
		case s.queue <- u:
			s.seq[k.id] = u.Seq
			s.lastHash[k.id] = hash
			if needResync {
				// The resync covers everything missed since the drop.
				t := s.lost[k.id]
				delete(s.lost, k.id)
				h.Resyncs.Inc()
				h.NotifyLat.Observe(time.Duration(time.Now().UnixNano() - t))
			} else {
				h.NotifyLat.Observe(time.Duration(time.Now().UnixNano() - notifyNS))
			}
			h.Pushes.Inc()
		default:
			// Queue full: drop this update and schedule a resync. Seq is
			// not consumed — delivered sequence numbers stay gapless, the
			// Resync flag (not a gap) is the loss signal.
			if _, already := s.lost[k.id]; !already {
				s.lost[k.id] = notifyNS
			}
			h.Drops.Inc()
		}
	}
}

// pump drains one subscriber's queue into its sink, preserving order.
func (s *Subscriber) pump() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case u := <-s.queue:
			if err := s.sink.Push(u); err != nil {
				s.hub.Unsubscribe(s)
				return
			}
		}
	}
}

// QueueDepth reports the subscriber's current backlog (metrics surface).
func (s *Subscriber) QueueDepth() int { return len(s.queue) }

// Query returns the subscriber's parsed standing query.
func (s *Subscriber) Query() *Query { return s.query }

// hashFeatures fingerprints a result's payload-bearing fields (features
// only — per-evaluation bookkeeping like ServerNanos or CacheHit must
// not defeat change suppression). FNV-1a over the feature tuples.
func hashFeatures(r *wire.QueryResponse) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(r.Features)))
	for i := range r.Features {
		f := &r.Features[i]
		mix(f.FID)
		mix(uint64(f.LastSeen))
		mix(math.Float64bits(f.Score))
		mix(uint64(len(f.Counts)))
		for _, c := range f.Counts {
			mix(uint64(c))
		}
	}
	return h
}
