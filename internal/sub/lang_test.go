package sub

import (
	"reflect"
	"strings"
	"testing"

	"ips/internal/model"
	"ips/internal/query"
)

func TestParseFullPipeline(t *testing.T) {
	q, err := Parse("source(user_profile, 42, 99) | slot(1) | type(2) | window(relative, 90m) | filter(min=3, fid=7, fid=8) | decay(exp, 0.5) | sort(action, click) | topk(25)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "user_profile" || !reflect.DeepEqual(q.IDs, []model.ProfileID{42, 99}) {
		t.Fatalf("source parsed as %q %v", q.Table, q.IDs)
	}
	r := q.Req
	if r.Slot != 1 || r.Type != 2 || r.AllTypes {
		t.Fatalf("slot/type: %+v", r)
	}
	if r.RangeKind != query.Relative || r.Span != 90*60_000 {
		t.Fatalf("window: %+v", r)
	}
	if r.MinCount != 3 || !reflect.DeepEqual(r.FIDs, []model.FeatureID{7, 8}) {
		t.Fatalf("filter: %+v", r)
	}
	if r.Decay != query.DecayExp || r.DecayFactor != 0.5 {
		t.Fatalf("decay: %+v", r)
	}
	if r.SortBy != query.ByAction || r.Action != "click" {
		t.Fatalf("sort: %+v", r)
	}
	if r.K != 25 {
		t.Fatalf("topk: %+v", r)
	}
}

func TestParseDefaults(t *testing.T) {
	q, err := Parse("source(t, 1)")
	if err != nil {
		t.Fatal(err)
	}
	r := q.Req
	if !r.AllTypes || r.RangeKind != query.Current || r.Span != DefaultSpan || r.SortBy != query.ByTotal || r.K != DefaultK {
		t.Fatalf("defaults: %+v", r)
	}
}

func TestParseDurations(t *testing.T) {
	for _, tc := range []struct {
		tok  string
		want model.Millis
	}{
		{"500ms", 500}, {"30s", 30_000}, {"5m", 300_000}, {"2h", 7_200_000}, {"1d", 86_400_000}, {"1500", 1500},
	} {
		q, err := Parse("source(t, 1) | window(current, " + tc.tok + ")")
		if err != nil {
			t.Fatalf("%s: %v", tc.tok, err)
		}
		if q.Req.Span != tc.want {
			t.Fatalf("%s parsed as %d, want %d", tc.tok, q.Req.Span, tc.want)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	programs := []string{
		"source(t, 1)",
		"source(user_profile, 42, 99) | slot(1) | type(2) | window(relative, 90m) | filter(min=3, fid=7) | decay(linear, 0.25) | sort(action, click) | topk(25)",
		"source(t, 5) | window(absolute, 1000, 2000) | sort(fid) | topk(1)",
		"source(t, 1, 2, 3) | sort(udaf, engagement, min=0.5) | topk(100)",
		"source(t, 9) | alltypes() | decay(step, 0.75) | sort(time)",
	}
	for _, src := range programs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		again, err := Parse(q.Render())
		if err != nil {
			t.Fatalf("render of %q not parseable: %v\nrender: %s", src, err, q.Render())
		}
		if !reflect.DeepEqual(q, again) {
			t.Fatalf("round trip drifted:\n%+v\n%+v\nrender: %s", q, again, q.Render())
		}
		// Canonical form is a fixpoint.
		if q.Render() != again.Render() {
			t.Fatalf("canonical render not stable: %q vs %q", q.Render(), again.Render())
		}
	}
}

func TestRenderForSubset(t *testing.T) {
	q, err := Parse("source(t, 1, 2, 3) | topk(5)")
	if err != nil {
		t.Fatal(err)
	}
	shard, err := Parse(q.RenderFor([]model.ProfileID{2}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shard.IDs, []model.ProfileID{2}) {
		t.Fatalf("shard ids = %v", shard.IDs)
	}
	shard.IDs = q.IDs
	if !reflect.DeepEqual(shard, q) {
		t.Fatalf("shard drifted beyond ids:\n%+v\n%+v", shard, q)
	}
	if q.Sig() != shard.Sig() {
		t.Fatalf("sig differs across shards: %q vs %q", q.Sig(), shard.Sig())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"topk(5)",                               // no source
		"source()",                              // no table
		"source(t)",                             // no ids
		"source(t, x)",                          // bad id
		"source(t, 1) | source(t, 2)",           // duplicate source
		"source(t, 1) | topk(0)",                // k out of range
		"source(t, 1) | topk(5) | topk(6)",      // duplicate stage
		"source(t, 1) | type(1) | alltypes()",   // conflicting spellings
		"source(t, 1) | window(current)",        // missing span
		"source(t, 1) | window(absolute, 5, 5)", // empty window
		"source(t, 1) | decay(cubic, 0.5)",      // unknown decay
		"source(t, 1) | decay(exp, 1.5)",        // factor out of range
		"source(t, 1) | sort(action)",           // missing action name
		"source(t, 1) | sort(banana)",           // unknown sort
		"source(t, 1) | filter()",               // empty filter
		"source(t, 1) | filter(max=3)",          // unknown filter key
		"source(t, 1) | mystery(1)",             // unknown stage
		"source(t, 1) |",                        // trailing pipe
		"source(t, 1) | topk(5",                 // unterminated stage
		"source(t 1)",                           // missing comma
		"source(t, 1) | slot(1,2)",              // arity
		"source(t, 1) | window(current, -5s)",   // negative span
		"source(t, 1) | filter(min=3) extra",    // trailing garbage
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseTooManyIDs(t *testing.T) {
	var b strings.Builder
	b.WriteString("source(t")
	for i := 0; i <= MaxIDs; i++ {
		b.WriteString(", 1")
	}
	b.WriteString(")")
	if _, err := Parse(b.String()); err == nil {
		t.Fatal("over-MaxIDs source accepted")
	}
}
