package sub

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ips/internal/model"
	"ips/internal/query"
	"ips/internal/wire"
)

// mapEval is a deterministic Eval over an in-memory counter table: the
// "result" for a profile is one feature whose count is the profile's
// current value. Changing the value changes the answer; notifying
// without changing it exercises change suppression.
type mapEval struct {
	mu    sync.Mutex
	vals  map[model.ProfileID]int64
	evals atomic.Int64
	fail  atomic.Bool
}

func (m *mapEval) set(id model.ProfileID, v int64) {
	m.mu.Lock()
	if m.vals == nil {
		m.vals = make(map[model.ProfileID]int64)
	}
	m.vals[id] = v
	m.mu.Unlock()
}

func (m *mapEval) eval(_ context.Context, req *wire.QueryRequest, resp *wire.QueryResponse) error {
	m.evals.Add(1)
	if m.fail.Load() {
		return errors.New("eval down")
	}
	m.mu.Lock()
	v := m.vals[req.ProfileID]
	m.mu.Unlock()
	resp.Features = []query.Feature{{FID: 1, Counts: []int64{v}}}
	resp.ServerNanos = time.Now().UnixNano() // must not defeat change suppression
	return nil
}

// chanSink collects pushed updates.
type chanSink struct {
	ch    chan *wire.SubUpdate
	block chan struct{} // when non-nil, Push waits on it (stall storm)
	err   atomic.Bool
}

func newChanSink(n int) *chanSink { return &chanSink{ch: make(chan *wire.SubUpdate, n)} }

func (c *chanSink) Push(u *wire.SubUpdate) error {
	if c.err.Load() {
		return errors.New("sink failed")
	}
	if c.block != nil {
		<-c.block
	}
	c.ch <- u
	return nil
}

func recvUpdate(t *testing.T, c *chanSink) *wire.SubUpdate {
	t.Helper()
	select {
	case u := <-c.ch:
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for update")
		return nil
	}
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestHubBaselineThenIncremental(t *testing.T) {
	ev := &mapEval{}
	ev.set(1, 5)
	h := NewHub(Options{Eval: ev.eval, ResyncInterval: 10 * time.Millisecond})
	defer h.Close()
	sink := newChanSink(16)
	s, err := h.Subscribe(mustParse(t, "source(t, 1) | topk(3)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(s)
	u := recvUpdate(t, sink)
	if !u.Resync || u.ProfileID != 1 || u.Seq != 1 {
		t.Fatalf("baseline = %+v", u)
	}
	if u.Result.Features[0].Counts[0] != 5 {
		t.Fatalf("baseline value = %+v", u.Result.Features)
	}
	// A write that changes the answer pushes an incremental update.
	ev.set(1, 6)
	h.Notify("t", 1)
	u = recvUpdate(t, sink)
	if u.Resync || u.Seq != 2 || u.Result.Features[0].Counts[0] != 6 {
		t.Fatalf("incremental = %+v", u)
	}
}

func TestHubChangeSuppression(t *testing.T) {
	ev := &mapEval{}
	ev.set(1, 5)
	h := NewHub(Options{Eval: ev.eval, ResyncInterval: time.Hour})
	defer h.Close()
	sink := newChanSink(16)
	s, err := h.Subscribe(mustParse(t, "source(t, 1)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(s)
	recvUpdate(t, sink) // baseline
	// Notify without a data change: evaluated, but not pushed.
	h.Notify("t", 1)
	h.Notify("t", 1)
	deadline := time.Now().Add(2 * time.Second)
	for h.Skips.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Skips.Value() == 0 {
		t.Fatal("no-change notify was not suppressed")
	}
	select {
	case u := <-sink.ch:
		t.Fatalf("unexpected push %+v for unchanged result", u)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHubNotifyUnwatchedIsCheap(t *testing.T) {
	ev := &mapEval{}
	h := NewHub(Options{Eval: ev.eval})
	defer h.Close()
	sink := newChanSink(16)
	s, err := h.Subscribe(mustParse(t, "source(t, 1)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(s)
	recvUpdate(t, sink)
	before := ev.evals.Load()
	for i := 0; i < 1000; i++ {
		h.Notify("t", 999)   // unwatched profile
		h.Notify("other", 1) // unwatched table
	}
	time.Sleep(20 * time.Millisecond)
	if got := ev.evals.Load(); got != before {
		t.Fatalf("unwatched notifies triggered %d evaluations", got-before)
	}
}

func TestHubEvaluateOnceMulticast(t *testing.T) {
	ev := &mapEval{}
	ev.set(1, 5)
	h := NewHub(Options{Eval: ev.eval, ResyncInterval: time.Hour})
	defer h.Close()
	const n = 8
	sinks := make([]*chanSink, n)
	for i := range sinks {
		sinks[i] = newChanSink(16)
		s, err := h.Subscribe(mustParse(t, "source(t, 1) | topk(3)"), sinks[i])
		if err != nil {
			t.Fatal(err)
		}
		defer h.Unsubscribe(s)
		recvUpdate(t, sinks[i]) // baseline
	}
	before := ev.evals.Load()
	ev.set(1, 6)
	h.Notify("t", 1)
	for i := range sinks {
		u := recvUpdate(t, sinks[i])
		if u.Result.Features[0].Counts[0] != 6 {
			t.Fatalf("sink %d got %+v", i, u.Result.Features)
		}
	}
	// Identical standing queries share one evaluation (multicast), not n.
	if got := ev.evals.Load() - before; got != 1 {
		t.Fatalf("dirty profile with %d identical subscribers evaluated %d times, want 1", n, got)
	}
}

func TestHubDistinctQueriesEvaluateSeparately(t *testing.T) {
	ev := &mapEval{}
	ev.set(1, 5)
	h := NewHub(Options{Eval: ev.eval, ResyncInterval: time.Hour})
	defer h.Close()
	sinkA, sinkB := newChanSink(16), newChanSink(16)
	sa, err := h.Subscribe(mustParse(t, "source(t, 1) | topk(3)"), sinkA)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(sa)
	sb, err := h.Subscribe(mustParse(t, "source(t, 1) | topk(5)"), sinkB)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(sb)
	recvUpdate(t, sinkA)
	recvUpdate(t, sinkB)
	before := ev.evals.Load()
	ev.set(1, 6)
	h.Notify("t", 1)
	recvUpdate(t, sinkA)
	recvUpdate(t, sinkB)
	if got := ev.evals.Load() - before; got != 2 {
		t.Fatalf("two distinct standing queries evaluated %d times, want 2", got)
	}
}

func TestHubDropAndResync(t *testing.T) {
	ev := &mapEval{}
	ev.set(1, 0)
	h := NewHub(Options{Eval: ev.eval, QueueLen: 1, ResyncInterval: 10 * time.Millisecond})
	defer h.Close()
	sink := newChanSink(1024)
	sink.block = make(chan struct{})
	s, err := h.Subscribe(mustParse(t, "source(t, 1)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(s)
	// The pump is stalled on the first (baseline) push. Burst writes: the
	// 1-slot queue must overflow and drop.
	for i := 1; i <= 50; i++ {
		ev.set(1, int64(i))
		h.Notify("t", 1)
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Drops.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Drops.Value() == 0 {
		t.Fatal("stalled consumer never dropped")
	}
	// Unstall. The subscriber must converge to the final state via a
	// Resync-flagged update, with gapless sequence numbers.
	close(sink.block)
	var last *wire.SubUpdate
	sawResyncAfterDrop := false
	prevSeq := uint64(0)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case u := <-sink.ch:
			if u.Seq != prevSeq+1 {
				t.Fatalf("sequence gap: %d after %d", u.Seq, prevSeq)
			}
			prevSeq = u.Seq
			if u.Resync && u.Seq > 1 {
				sawResyncAfterDrop = true
			}
			last = u
		case <-time.After(100 * time.Millisecond):
		}
		if last != nil && last.Result.Features[0].Counts[0] == 50 && h.PendingResync() == 0 {
			break
		}
	}
	if last == nil || last.Result.Features[0].Counts[0] != 50 {
		t.Fatalf("did not converge to final state: %+v", last)
	}
	if !sawResyncAfterDrop {
		t.Fatal("drops happened but no update after the baseline carried Resync")
	}
	if h.Resyncs.Value() == 0 {
		t.Fatal("drop recovery did not count a resync")
	}
}

func TestHubEvalErrorRetries(t *testing.T) {
	ev := &mapEval{}
	ev.set(1, 7)
	ev.fail.Store(true)
	h := NewHub(Options{Eval: ev.eval, ResyncInterval: 10 * time.Millisecond})
	defer h.Close()
	sink := newChanSink(16)
	s, err := h.Subscribe(mustParse(t, "source(t, 1)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unsubscribe(s)
	deadline := time.Now().Add(2 * time.Second)
	for h.EvalErrs.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.EvalErrs.Value() == 0 {
		t.Fatal("failing eval not observed")
	}
	select {
	case u := <-sink.ch:
		t.Fatalf("got update %+v while eval failing", u)
	default:
	}
	// Recovery: the sweep retries and delivers the baseline.
	ev.fail.Store(false)
	u := recvUpdate(t, sink)
	if !u.Resync || u.Result.Features[0].Counts[0] != 7 {
		t.Fatalf("recovered baseline = %+v", u)
	}
}

func TestHubSinkErrorTearsDown(t *testing.T) {
	ev := &mapEval{}
	h := NewHub(Options{Eval: ev.eval})
	defer h.Close()
	sink := newChanSink(16)
	sink.err.Store(true)
	s, err := h.Subscribe(mustParse(t, "source(t, 1)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("sink error did not tear the subscriber down")
	}
	if h.Active.Value() != 0 {
		t.Fatalf("active = %d after teardown", h.Active.Value())
	}
}

func TestHubCloseReleasesSubscribers(t *testing.T) {
	ev := &mapEval{}
	h := NewHub(Options{Eval: ev.eval})
	sink := newChanSink(16)
	s, err := h.Subscribe(mustParse(t, "source(t, 1)"), sink)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not stop the pump")
	}
	if _, err := h.Subscribe(mustParse(t, "source(t, 2)"), sink); err == nil {
		t.Fatal("Subscribe after Close succeeded")
	}
}

func TestHashFeaturesSensitivity(t *testing.T) {
	base := &wire.QueryResponse{Features: []query.Feature{{FID: 1, Counts: []int64{2, 3}, LastSeen: 100, Score: 1.5}}}
	same := &wire.QueryResponse{Features: []query.Feature{{FID: 1, Counts: []int64{2, 3}, LastSeen: 100, Score: 1.5}}, ServerNanos: 999, CacheHit: true, SlicesScanned: 7}
	if hashFeatures(base) != hashFeatures(same) {
		t.Fatal("bookkeeping fields perturbed the feature hash")
	}
	for _, mut := range []*wire.QueryResponse{
		{Features: []query.Feature{{FID: 2, Counts: []int64{2, 3}, LastSeen: 100, Score: 1.5}}},
		{Features: []query.Feature{{FID: 1, Counts: []int64{2, 4}, LastSeen: 100, Score: 1.5}}},
		{Features: []query.Feature{{FID: 1, Counts: []int64{2, 3}, LastSeen: 101, Score: 1.5}}},
		{Features: []query.Feature{{FID: 1, Counts: []int64{2, 3}, LastSeen: 100, Score: 1.25}}},
		{Features: []query.Feature{}},
		{Features: []query.Feature{{FID: 1, Counts: []int64{2, 3}, LastSeen: 100, Score: 1.5}, {FID: 2}}},
	} {
		if hashFeatures(base) == hashFeatures(mut) {
			t.Fatalf("hash collision for mutated result %+v", mut)
		}
	}
}
